// Ablation A7 — distributed-transaction commit latency vs conflict rate.
// Eight client nodes hammer one replicated KV object with two-key
// transactions drawn from a shrinking hot-key space: the smaller the space,
// the more often two in-flight transactions prepare the same key and the
// loser pays a restart (fresh epoch, re-prepare) before its commit lands.
// The table reports the realized conflict rate next to the commit-latency
// distribution, so the cost of optimistic 2PC under contention is a single
// read-across.
//
//   ablation_dtx [--smoke]   # --smoke: 2 client nodes, 2 key-space sizes (CI)
//
// BENCH_ablation_dtx.json column mapping (the shared JsonRow schema is
// bandwidth-shaped): x = hot-key-space size, write_gibs = committed tx/s,
// read_gibs = conflict rate (restarts / attempts), read_p99_us = commit p50
// in us, write_p99_us = commit p99 in us.
#include <chrono>

#include "client/tx.hpp"
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace daosim;
  using cluster::kPoolUuid;
  using sim::CoTask;

  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::uint32_t clients = smoke ? 2 : 8;
  const std::uint32_t txs_per_client = smoke ? 10 : 50;
  const std::vector<std::uint32_t> key_spaces =
      smoke ? std::vector<std::uint32_t>{16, 2} : std::vector<std::uint32_t>{256, 32, 8, 2};

  std::printf("# A7 DTX — commit latency vs conflict rate (%u clients x %u txs, 2 keys/tx)\n",
              clients, txs_per_client);
  std::printf("%-10s %10s %10s %10s %12s %12s %12s\n", "hot_keys", "commits", "restarts",
              "conflict", "p50_us", "p99_us", "commits/s");

  std::vector<bench::JsonRow> rows;
  for (const std::uint32_t keys : key_spaces) {
    cluster::ClusterConfig cfg;
    cfg.server_nodes = 4;
    cfg.engines_per_server = 2;
    cfg.targets_per_engine = 8;
    cfg.client_nodes = clients;
    cluster::Testbed tb(cfg);
    tb.start();

    const std::uint64_t events0 = tb.sched().events_processed();
    const auto wall0 = std::chrono::steady_clock::now();
    const auto oid = client::make_oid(1, client::ObjClass::RP_2G2);
    sim::Time span = 0;

    tb.run([&]() -> CoTask<void> {
      auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
      DAOSIM_REQUIRE(created.ok(), "cont_create: %s", errno_name(created.error()));
      const sim::Time t0 = tb.sched().now();
      sim::WaitGroup wg(tb.sched());
      for (std::uint32_t c = 0; c < clients; ++c) {
        wg.spawn([&, c]() -> CoTask<void> {
          auto& cl = tb.client(c);
          for (std::uint32_t t = 0; t < txs_per_client; ++t) {
            // Deterministic two-key pick from the hot space (no RNG: draw
            // order must not depend on coroutine interleaving).
            const std::uint32_t k1 = (c * 7 + t * 13) % keys;
            std::uint32_t k2 = (c * 11 + t * 3 + 1) % keys;
            if (k2 == k1) k2 = (k2 + 1) % keys;
            const std::string val = strfmt("c%u.t%u", c, t);
            (void)co_await cl.run_tx(kPoolUuid, [&](client::TxHandle& tx) -> CoTask<Errno> {
              tx.kv_put(oid, strfmt("k%u", k1), "v", std::as_bytes(std::span(val)));
              tx.kv_put(oid, strfmt("k%u", k2), "v", std::as_bytes(std::span(val)));
              co_return Errno::ok;
            });
          }
        });
      }
      co_await wg.wait();
      span = tb.sched().now() - t0;
    });

    std::uint64_t commits = 0;
    std::uint64_t restarts = 0;
    telemetry::DurationHistogram::State lat;
    for (std::uint32_t c = 0; c < clients; ++c) {
      commits += tb.client(c).tx_commits();
      restarts += tb.client(c).tx_restarts();
      const auto* h =
          tb.client(c).telemetry().find<telemetry::DurationHistogram>("tx/commit_time_ns");
      if (h != nullptr) lat += h->state();
    }
    const std::uint64_t events = tb.sched().events_processed() - events0;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
    tb.stop();

    const double conflict =
        commits + restarts > 0 ? double(restarts) / double(commits + restarts) : 0;
    const double p50 = lat.percentile_ns(50) / 1e3;
    const double p99 = lat.percentile_ns(99) / 1e3;
    const double rate = span > 0 ? double(commits) / sim::to_seconds(span) : 0;
    std::printf("%-10u %10llu %10llu %9.1f%% %12.1f %12.1f %12.0f\n", keys,
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(restarts), conflict * 100, p50, p99, rate);

    rows.push_back(bench::JsonRow{double(keys), "dtx", conflict, rate, p50, p99, events,
                                  wall_s});
  }

  bench::write_bench_json("ablation_dtx", rows);
  return 0;
}
