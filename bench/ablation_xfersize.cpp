// Ablation — transfer-size sweep for the vectorized I/O path.
//
// Small-object regime: DFS chunk 8 KiB and object class S1, so every
// transfer splits into transfer/8KiB chunk pieces that all live on the same
// target and are eligible for coalescing into one multi-extent RPC. At this
// chunk size the per-RPC server CPU (9 us) exceeds the per-chunk media time
// (~4.4 us at 1.8 GB/s), so the unbatched path is CPU-bound at the target
// xstream while the batched path (2 us marginal CPU per extent) stays
// media-bound — the regime where vectored I/O pays. Series:
//   batch16      max_batch_extents=16, blocking transfers (eq_depth 1)
//   batch1       max_batch_extents=1 — the legacy one-RPC-per-extent path
//   batch16-eq8  batching plus 8 transfers in flight per rank (EventQueue)
// Both IOR modes run: easy (file-per-process) and hard (shared file). A
// 256 KiB transfer is 32 extents, so batch16 sends 2 RPCs where batch1
// sends 32.
//
//   ablation_xfersize [--smoke]   # --smoke: 2 client nodes, 2 sizes (CI)
#include <array>

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace daosim;
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::uint32_t nodes = smoke ? 2 : 16;
  const std::uint32_t ppn = 16;
  const std::uint64_t block = smoke ? 8 * kMiB : 32 * kMiB;
  const std::uint64_t chunk = 8 * kKiB;
  const std::vector<std::uint64_t> sizes =
      smoke ? std::vector<std::uint64_t>{256 * kKiB, 8 * kMiB}
            : std::vector<std::uint64_t>{256 * kKiB, 1 * kMiB, 4 * kMiB, 8 * kMiB};

  struct Spec {
    const char* name;
    std::uint32_t max_batch;
    std::uint32_t eq_depth;
  };
  const std::array<Spec, 3> specs{{{"batch16", 16, 1}, {"batch1", 1, 1}, {"batch16-eq8", 16, 8}}};

  std::vector<bench::JsonRow> rows;
  // Headline numbers for the analysis: hard-mode write GiB/s per (series, size).
  std::map<std::string, std::map<std::uint64_t, double>> hard_write;

  for (const Spec& spec : specs) {
    cluster::ClusterConfig ccfg = bench::nextgenio_cluster(nodes);
    ccfg.client.max_batch_extents = spec.max_batch;
    cluster::Testbed tb(ccfg);
    tb.start();
    ior::IorRunner runner(tb, ppn, chunk);
    for (const bool fpp : {true, false}) {
      const char* mode = fpp ? "easy" : "hard";
      for (const std::uint64_t xfer : sizes) {
        ior::IorConfig cfg;
        cfg.api = ior::Api::dfs;
        cfg.transfer_size = xfer;
        cfg.block_size = block;
        cfg.file_per_process = fpp;
        cfg.oclass = std::uint8_t(client::ObjClass::S1);
        cfg.eq_depth = spec.eq_depth;
        const std::uint64_t events0 = tb.sched().events_processed();
        const auto wall0 = std::chrono::steady_clock::now();
        const ior::IorResult r = runner.run(cfg);
        bench::JsonRow row;
        row.x = double(xfer) / double(kKiB);
        row.series = std::string(mode) + "/" + spec.name;
        row.read_gibs = r.read.gib_per_sec();
        row.write_gibs = r.write.gib_per_sec();
        row.read_p99_us = r.read_rpc_latency.percentile_ns(99) / 1e3;
        row.write_p99_us = r.write_rpc_latency.percentile_ns(99) / 1e3;
        row.events = tb.sched().events_processed() - events0;
        row.wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
        std::fprintf(stderr, "  %-4s %-12s t=%-8s write %8.2f GiB/s  read %8.2f GiB/s\n", mode,
                     spec.name, format_bytes(xfer).c_str(), row.write_gibs, row.read_gibs);
        if (!fpp) hard_write[spec.name][xfer] = row.write_gibs;
        rows.push_back(std::move(row));
      }
    }
    tb.stop();
  }

  std::printf("\n# Ablation — transfer size vs batching (DFS, chunk %s, S1, %u nodes)\n",
              format_bytes(chunk).c_str(), nodes);
  std::printf("%-10s %-14s %12s %12s\n", "mode", "series", "xfer", "write GiB/s");
  for (const auto& row : rows) {
    std::printf("%-10s %14s %10.0fK %12.2f\n",
                row.series.substr(0, row.series.find('/')).c_str(),
                row.series.substr(row.series.find('/') + 1).c_str(), row.x, row.write_gibs);
  }
  const std::uint64_t small = sizes.front(), large = sizes.back();
  const double gain =
      100.0 * (hard_write["batch16"][small] / hard_write["batch1"][small] - 1.0);
  const double large_delta =
      100.0 * (hard_write["batch16"][large] / hard_write["batch1"][large] - 1.0);
  std::printf("\nhard-mode write, batch16 vs batch1: %+.1f%% at %s, %+.1f%% at %s\n", gain,
              format_bytes(small).c_str(), large_delta, format_bytes(large).c_str());

  bench::write_bench_json("ablation_xfersize", rows);
  return 0;
}
