// Ablation A2 — DFuse cost model: per-request kernel-crossing cost and the
// FUSE max-request size, POSIX backend, file-per-process at 8 client nodes.
#include "figure_common.hpp"

int main() {
  using namespace daosim;
  ior::IorConfig cfg;
  cfg.api = ior::Api::posix;
  cfg.transfer_size = 8 * kMiB;
  cfg.block_size = 32 * kMiB;
  cfg.oclass = std::uint8_t(client::ObjClass::SX);

  std::printf("\n# A2 DFuse cost ablation — POSIX backend, 8 client nodes, 16 ppn\n");
  std::printf("%-12s %-14s %12s %12s\n", "op_cost_us", "max_request", "write_GiB/s",
              "read_GiB/s");
  for (const sim::Time op_cost : {sim::Time(0), 35 * sim::kUs, 100 * sim::kUs}) {
    for (const std::uint64_t max_req : {256 * kKiB, 1 * kMiB, 4 * kMiB}) {
      posix::DfuseConfig dfuse;
      dfuse.op_cost = op_cost;
      dfuse.max_request_bytes = max_req;
      cluster::Testbed tb(bench::nextgenio_cluster(8));
      tb.start();
      ior::IorRunner runner(tb, 16, 1 * kMiB, dfuse);
      const ior::IorResult r = runner.run(cfg);
      std::printf("%-12llu %-14s %12.2f %12.2f\n",
                  static_cast<unsigned long long>(op_cost / sim::kUs), format_bytes(max_req).c_str(),
                  r.write.gib_per_sec(), r.read.gib_per_sec());
      tb.stop();
    }
  }
  std::printf("\n");
  return 0;
}
