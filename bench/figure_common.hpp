// Shared sweep driver for the figure benchmarks: builds the NEXTGenIO-like
// testbed at each client-node count, runs one IOR job per series, and prints
// the read/write bandwidth tables the paper's figures plot.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ior/ior.hpp"

namespace daosim::bench {

struct Series {
  std::string name;
  ior::IorConfig cfg;
};

struct SweepOptions {
  std::vector<std::uint32_t> node_counts{1, 2, 4, 8, 16};
  std::uint32_t ppn = 16;
  std::uint64_t dfs_chunk = 1 * kMiB;
  posix::DfuseConfig dfuse{};
  std::uint64_t seed = 42;
  /// Causal-trace sampling for the critical-path tables: 1 in N client ops
  /// (0 = no tracing). Sampling is seeded and zero-perturbation, so the
  /// bandwidth numbers are bit-identical either way (docs/tracing.md).
  std::uint64_t trace_sample = 16;
};

/// The paper's benchmark deployment: 8 server nodes, 2 engines each.
inline cluster::ClusterConfig nextgenio_cluster(std::uint32_t client_nodes,
                                                std::uint64_t seed = 42) {
  cluster::ClusterConfig cfg;
  cfg.server_nodes = 8;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 8;
  cfg.client_nodes = client_nodes;
  cfg.payload = vos::PayloadMode::discard;  // timing-only at benchmark scale
  cfg.seed = seed;
  return cfg;
}

struct Cell {
  double read_gibs = 0;
  double write_gibs = 0;
  /// Per-phase client RPC latency (µs) alongside the bandwidth the figures
  /// plot — derived from the telemetry histograms, so collecting it cannot
  /// change the bandwidth numbers.
  double read_p50_us = 0, read_p99_us = 0;
  double write_p50_us = 0, write_p99_us = 0;
  /// Simulator cost of the job: scheduler events processed and host
  /// wall-clock. The perf-trajectory JSON tracks both so a change that
  /// trades simulated bandwidth for simulation slowness is visible.
  std::uint64_t events = 0;
  double wall_s = 0;
  /// Critical-path stage attribution of the sampled data ops (arr_write /
  /// arr_read trees), for the per-phase tables printed after the latency
  /// tables. Empty (count 0) when SweepOptions::trace_sample is 0.
  telemetry::TraceLog::OpProfile write_path, read_path;
};

/// One row of the machine-readable BENCH_*.json perf trajectory.
struct JsonRow {
  double x = 0;  // sweep coordinate (client nodes, transfer KiB, ...)
  std::string series;
  double read_gibs = 0, write_gibs = 0;
  double read_p99_us = 0, write_p99_us = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
};

/// Writes BENCH_<bench>.json in the current directory: a flat row list so CI
/// and the trajectory tooling parse it with nothing but the json module.
inline void write_bench_json(const std::string& bench, const std::vector<JsonRow>& rows) {
  const std::string path = "BENCH_" + bench + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", bench.c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::fprintf(f,
                 "    {\"x\": %g, \"series\": \"%s\", \"read_gibs\": %.4f, "
                 "\"write_gibs\": %.4f, \"read_p99_us\": %.1f, \"write_p99_us\": %.1f, "
                 "\"events\": %llu, \"wall_s\": %.3f}%s\n",
                 r.x, r.series.c_str(), r.read_gibs, r.write_gibs, r.read_p99_us,
                 r.write_p99_us, static_cast<unsigned long long>(r.events), r.wall_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

/// Flattens a node-count sweep into JSON rows (x = client nodes).
inline std::vector<JsonRow> sweep_rows(const std::vector<Series>& series,
                                       const SweepOptions& opt,
                                       const std::vector<std::vector<Cell>>& results) {
  std::vector<JsonRow> rows;
  for (std::size_t i = 0; i < opt.node_counts.size(); ++i) {
    for (std::size_t j = 0; j < series.size(); ++j) {
      const Cell& c = results[i][j];
      rows.push_back(JsonRow{double(opt.node_counts[i]), series[j].name, c.read_gibs,
                             c.write_gibs, c.read_p99_us, c.write_p99_us, c.events, c.wall_s});
    }
  }
  return rows;
}

/// Runs the sweep; returns results[node_count_index][series_index].
inline std::vector<std::vector<Cell>> run_sweep(const std::vector<Series>& series,
                                                const SweepOptions& opt) {
  std::vector<std::vector<Cell>> results;
  for (const std::uint32_t nodes : opt.node_counts) {
    cluster::ClusterConfig ccfg = nextgenio_cluster(nodes, opt.seed);
    ccfg.client.trace_sample = opt.trace_sample;
    ccfg.client.trace_seed = opt.seed;
    cluster::Testbed tb(ccfg);
    tb.start();
    ior::IorRunner runner(tb, opt.ppn, opt.dfs_chunk, opt.dfuse);
    std::vector<Cell> row;
    for (const Series& s : series) {
      // Fresh per-series span log, keeping only the sampled trees so memory
      // stays bounded by the sampling rate. Attaching it never perturbs
      // timing (span ids are allocated whether or not a sink listens).
      telemetry::TraceLog trace;
      trace.set_keep_unsampled(false);
      if (opt.trace_sample != 0) tb.attach_trace(&trace);
      const std::uint64_t events0 = tb.sched().events_processed();
      const auto wall0 = std::chrono::steady_clock::now();
      const ior::IorResult r = runner.run(s.cfg);
      Cell cell{r.read.gib_per_sec(), r.write.gib_per_sec()};
      cell.read_p50_us = r.read_rpc_latency.percentile_ns(50) / 1e3;
      cell.read_p99_us = r.read_rpc_latency.percentile_ns(99) / 1e3;
      cell.write_p50_us = r.write_rpc_latency.percentile_ns(50) / 1e3;
      cell.write_p99_us = r.write_rpc_latency.percentile_ns(99) / 1e3;
      cell.events = tb.sched().events_processed() - events0;
      cell.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
      if (opt.trace_sample != 0) {
        const auto prof = trace.profile_ops();
        if (const auto it = prof.find("arr_write"); it != prof.end()) cell.write_path = it->second;
        if (const auto it = prof.find("arr_read"); it != prof.end()) cell.read_path = it->second;
        tb.attach_trace(nullptr);
      }
      row.push_back(cell);
      std::fprintf(stderr,
                   "  [%2u nodes] %-10s write %8.2f GiB/s (p99 %7.0f us)"
                   "  read %8.2f GiB/s (p99 %7.0f us)\n",
                   nodes, s.name.c_str(), r.write.gib_per_sec(), cell.write_p99_us,
                   r.read.gib_per_sec(), cell.read_p99_us);
    }
    results.push_back(std::move(row));
    tb.stop();
  }
  return results;
}

inline void print_table(const char* title, bool read, const std::vector<Series>& series,
                        const SweepOptions& opt,
                        const std::vector<std::vector<Cell>>& results) {
  std::printf("\n# %s — %s bandwidth (GiB/s)\n", title, read ? "read" : "write");
  std::printf("%-12s", "client_nodes");
  for (const auto& s : series) std::printf(" %12s", s.name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < opt.node_counts.size(); ++i) {
    std::printf("%-12u", opt.node_counts[i]);
    for (std::size_t j = 0; j < series.size(); ++j) {
      std::printf(" %12.2f", read ? results[i][j].read_gibs : results[i][j].write_gibs);
    }
    std::printf("\n");
  }
}

/// Per-phase RPC latency table mirroring the bandwidth table's layout:
/// "p50/p99" in µs per cell. Printed after the bandwidth tables so existing
/// output (and any parser of it) is untouched.
inline void print_latency_table(const char* title, bool read, const std::vector<Series>& series,
                                const SweepOptions& opt,
                                const std::vector<std::vector<Cell>>& results) {
  std::printf("\n# %s — %s RPC latency p50/p99 (us)\n", title, read ? "read" : "write");
  std::printf("%-12s", "client_nodes");
  for (const auto& s : series) std::printf(" %16s", s.name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < opt.node_counts.size(); ++i) {
    std::printf("%-12u", opt.node_counts[i]);
    for (std::size_t j = 0; j < series.size(); ++j) {
      const Cell& c = results[i][j];
      const std::string cell = strfmt("%.0f/%.0f", read ? c.read_p50_us : c.write_p50_us,
                                      read ? c.read_p99_us : c.write_p99_us);
      std::printf(" %16s", cell.c_str());
    }
    std::printf("\n");
  }
}

/// Per-phase critical-path table: one row per (node count, series), mean us
/// per sampled data op attributed across the six pipeline stages. Printed in
/// long format next to the p50/p99 tables (six numbers don't fit a cell).
inline void print_critical_path_table(const char* title, bool read,
                                      const std::vector<Series>& series,
                                      const SweepOptions& opt,
                                      const std::vector<std::vector<Cell>>& results) {
  using telemetry::TraceLog;
  std::printf("\n# %s — %s critical path (1/%llu sampled, mean us/op by stage)\n", title,
              read ? "read" : "write", static_cast<unsigned long long>(opt.trace_sample));
  std::printf("%-12s %-10s %8s", "client_nodes", "series", "ops");
  for (std::size_t st = 0; st < TraceLog::kStages; ++st) {
    std::printf(" %12s", TraceLog::stage_name(st));
  }
  std::printf(" %12s\n", "total");
  for (std::size_t i = 0; i < opt.node_counts.size(); ++i) {
    for (std::size_t j = 0; j < series.size(); ++j) {
      const TraceLog::OpProfile& p =
          read ? results[i][j].read_path : results[i][j].write_path;
      if (p.count == 0) continue;
      std::printf("%-12u %-10s %8llu", opt.node_counts[i], series[j].name.c_str(),
                  static_cast<unsigned long long>(p.count));
      for (std::size_t st = 0; st < TraceLog::kStages; ++st) {
        std::printf(" %12.1f", double(p.stages.ns[st]) / double(p.count) / 1e3);
      }
      std::printf(" %12.1f\n", double(p.stages.total_ns()) / double(p.count) / 1e3);
    }
  }
}

inline void print_figure(const char* title, const std::vector<Series>& series,
                         const SweepOptions& opt, const char* json_name = nullptr) {
  const auto results = run_sweep(series, opt);
  print_table(title, /*read=*/true, series, opt, results);
  print_table(title, /*read=*/false, series, opt, results);
  print_latency_table(title, /*read=*/true, series, opt, results);
  print_latency_table(title, /*read=*/false, series, opt, results);
  if (opt.trace_sample != 0) {
    print_critical_path_table(title, /*read=*/true, series, opt, results);
    print_critical_path_table(title, /*read=*/false, series, opt, results);
  }
  std::printf("\n");
  if (json_name != nullptr) write_bench_json(json_name, sweep_rows(series, opt, results));
}

/// The figure-1/2 series: DFS ("DAOS") under S1/S2/SX plus MPI-IO and HDF5
/// over the DFuse mount, as in the paper's legends.
inline std::vector<Series> paper_series(bool file_per_process, std::uint64_t transfer,
                                        std::uint64_t block) {
  auto base = [&](ior::Api api, client::ObjClass oc) {
    ior::IorConfig cfg;
    cfg.api = api;
    cfg.transfer_size = transfer;
    cfg.block_size = block;
    cfg.file_per_process = file_per_process;
    cfg.oclass = std::uint8_t(oc);
    cfg.verify = false;
    return cfg;
  };
  return {
      {"DAOS-S1", base(ior::Api::dfs, client::ObjClass::S1)},
      {"DAOS-S2", base(ior::Api::dfs, client::ObjClass::S2)},
      {"DAOS-SX", base(ior::Api::dfs, client::ObjClass::SX)},
      {"MPIIO", base(ior::Api::mpiio, client::ObjClass::SX)},
      {"HDF5", base(ior::Api::hdf5, client::ObjClass::SX)},
  };
}

}  // namespace daosim::bench
