// Ablation A8 — sustained overwrite endurance: evtree depth vs background
// aggregation. One client overwrites the same array object pass after pass
// in small transfers, then reads it back. Without aggregation every pass
// stacks another epoch onto every byte range, so read-side visibility
// resolution walks an ever-deeper version history; with the background
// aggregation service enabled, committed epochs are flattened between passes
// and the per-read probe cost stays flat no matter how many passes ran.
//
//   ablation_overwrite [--smoke]   # --smoke: 4 passes, 256 KiB object (CI)
//
// BENCH_ablation_overwrite.json column mapping (the shared JsonRow schema is
// bandwidth-shaped): x = overwrite pass (1-based), series = agg_on/agg_off,
// write_gibs / read_gibs = that pass's bandwidths, read_p99_us = evtree
// probes per read op (the flatness metric: deterministic, no wall-clock
// noise), write_p99_us = simulated write time per op in us, events = the
// pass's total vos/extent_probes delta. CI asserts read_p99_us of the final
// agg_on pass stays within 1.2x of the first pass, and that agg_off grows.
#include <chrono>

#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace daosim;
  using cluster::kPoolUuid;
  using sim::CoTask;

  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::uint32_t passes = smoke ? 4 : 30;
  const std::uint64_t obj_size = smoke ? 256 * kKiB : 1 * kMiB;
  const std::uint64_t xfer = 4 * kKiB;
  const std::uint64_t chunk = 64 * kKiB;
  // Settle window after each pass: with the 100ms aggregation tick below,
  // several passes of the service fit inside it. The *same* delay runs in
  // the agg_off series so simulated-time comparisons stay apples-to-apples.
  const sim::Time settle = 500 * sim::kMs;

  std::printf("# A8 overwrite endurance — %u passes x %llu ops of %llu KiB (agg on/off)\n",
              passes, static_cast<unsigned long long>(obj_size / xfer),
              static_cast<unsigned long long>(xfer / kKiB));
  std::printf("%-8s %-8s %10s %12s %12s %12s\n", "series", "pass", "probes/op", "write_us/op",
              "wr_gibs", "rd_gibs");

  std::vector<bench::JsonRow> rows;
  for (const bool agg_on : {false, true}) {
    cluster::ClusterConfig cfg;
    cfg.server_nodes = 2;
    cfg.engines_per_server = 2;
    cfg.targets_per_engine = 4;
    cfg.client_nodes = 1;
    cfg.agg.enabled = agg_on;
    cfg.agg.tick = 100 * sim::kMs;
    cfg.agg.shards_per_run = 64;  // small testbed: every shard, every pass
    cluster::Testbed tb(cfg);
    tb.start();

    // Cumulative evtree read-probe counter summed over every engine.
    auto probes = [&tb]() {
      std::uint64_t n = 0;
      for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
        for (std::uint32_t t = 0; t < tb.engine(e).target_count(); ++t) {
          n += tb.engine(e).vos_target(t).tree_stats().extent_probes;
        }
      }
      return n;
    };

    const char* series = agg_on ? "agg_on" : "agg_off";
    const std::uint64_t ops = obj_size / xfer;
    std::vector<std::byte> buf(xfer);
    std::vector<std::byte> out(xfer);

    tb.run([&]() -> CoTask<void> {
      auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
      DAOSIM_REQUIRE(created.ok(), "cont_create: %s", errno_name(created.error()));
      client::ArrayObject arr(tb.client(0), kPoolUuid,
                              client::make_oid(1, client::ObjClass::SX), chunk);
      for (std::uint32_t pass = 0; pass < passes; ++pass) {
        const auto wall0 = std::chrono::steady_clock::now();
        // Write pass: overwrite the whole object front to back.
        const sim::Time w0 = tb.sched().now();
        for (std::uint64_t off = 0; off < obj_size; off += xfer) {
          // Deterministic payload tied to (pass, offset): readback checks
          // catch any aggregation bug that survives the unit tests.
          for (std::uint64_t i = 0; i < xfer; ++i) {
            buf[i] = std::byte(std::uint8_t(pass * 31 + off / xfer + i));
          }
          const Errno st = co_await arr.write(off, xfer, buf);
          DAOSIM_REQUIRE(st == Errno::ok, "write: %s", errno_name(st));
        }
        const sim::Time w_span = tb.sched().now() - w0;
        // Let the background service flatten the pass (same idle window in
        // both series).
        co_await tb.sched().delay(settle);
        // Read pass: measure evtree probes per op, the depth signal.
        const std::uint64_t probes0 = probes();
        const sim::Time r0 = tb.sched().now();
        for (std::uint64_t off = 0; off < obj_size; off += xfer) {
          auto got = co_await arr.read(off, out);
          DAOSIM_REQUIRE(got.ok() && *got == xfer, "read at %llu: %llu filled",
                         static_cast<unsigned long long>(off),
                         static_cast<unsigned long long>(got.ok() ? *got : 0));
          for (std::uint64_t i = 0; i < xfer; i += 509) {  // spot-check bytes
            DAOSIM_REQUIRE(out[i] == std::byte(std::uint8_t(pass * 31 + off / xfer + i)),
                           "readback mismatch pass %u off %llu i %llu", pass,
                           static_cast<unsigned long long>(off),
                           static_cast<unsigned long long>(i));
          }
        }
        const sim::Time r_span = tb.sched().now() - r0;
        const std::uint64_t probe_delta = probes() - probes0;

        const double probes_per_op = double(probe_delta) / double(ops);
        const double write_us_per_op = sim::to_seconds(w_span) * 1e6 / double(ops);
        const double wr_gibs =
            sim::to_seconds(w_span) > 0 ? double(obj_size) / double(kGiB) / sim::to_seconds(w_span) : 0;
        const double rd_gibs =
            sim::to_seconds(r_span) > 0 ? double(obj_size) / double(kGiB) / sim::to_seconds(r_span) : 0;
        const double wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
        std::printf("%-8s %-8u %10.2f %12.2f %12.3f %12.3f\n", series, pass + 1, probes_per_op,
                    write_us_per_op, wr_gibs, rd_gibs);
        rows.push_back(bench::JsonRow{double(pass + 1), series, rd_gibs, wr_gibs, probes_per_op,
                                      write_us_per_op, probe_delta, wall_s});
      }
    });
    tb.stop();
  }

  bench::write_bench_json("ablation_overwrite", rows);
  return 0;
}
