// Ablation A8 — pool-map dissemination after a forced eviction: IV deltas
// vs the point-query stampede. An engine is crashed and evicted, then N
// stale clients (10^3..10^4) all learn about the new pool map at once:
//
//   point  SWIM/IV disabled. Every client does what the legacy path did —
//          a full map_query against the pool-service leader. Leader RPC
//          load is O(N) and the replies serialize on one node's NIC.
//   iv     SWIM/IV enabled. Every client issues one small object fetch to
//          a live engine; the reply arrives stamped with the newer map
//          version, the client detects the staleness passively and pulls
//          version deltas from that engine (single-flight per client).
//          The leader serves ZERO client map RPCs — load is O(1) in N,
//          spread across every engine in the pool.
//
//   ablation_membership [--smoke]   # --smoke: one 50-client point (CI)
//
// BENCH_ablation_membership.json column mapping (the shared JsonRow schema
// is bandwidth-shaped): x = client count, read_gibs = map RPCs served by
// the pool-service leader, write_gibs = delta fetches served by ordinary
// engines, read_p99_us = time-to-consistent-map in us (eviction committed
// -> every client at the new version), write_p99_us = clients still stale
// at the end (must be 0).
#include <chrono>

#include "figure_common.hpp"

namespace {

using namespace daosim;
using sim::CoTask;

/// Forced eviction through the admin path (the `dmg pool exclude`
/// equivalent): submit pool_evict to the service replicas until a leader
/// accepts it. Used by the point series, where no failure detector runs.
CoTask<void> admin_evict(cluster::Testbed* tb, net::NodeId victim) {
  for (int round = 0; round < 100; ++round) {
    for (std::uint32_t s = 0; s < tb->svc_replica_count(); ++s) {
      engine::PoolSvcReq req{strfmt("pool_evict %u", victim)};
      net::Reply r = co_await tb->engine(0).endpoint().call(
          tb->engine(s).node(), engine::kOpPoolSvc, net::Body::make(std::move(req)), 128);
      if (r.status == Errno::ok &&
          r.body.get<engine::PoolSvcResp>().response.rfind("ok", 0) == 0) {
        co_return;
      }
    }
    co_await tb->sched().delay(50 * sim::kMs);
  }
  raise("admin eviction never accepted");
}

/// One client of the iv wave: a minimal fetch against a live engine whose
/// stamped reply reveals the staleness and triggers the IV delta pull.
CoTask<void> iv_wave_op(client::DaosClient* cl, std::uint32_t map_target) {
  net::Body b = net::Body::make(engine::ObjFetchReq{});
  (void)co_await cl->call_target(map_target, engine::kOpObjFetch, std::move(b), 64);
}

/// One client of the point wave: the legacy full map query at the leader.
CoTask<void> point_wave_op(client::DaosClient* cl) {
  (void)co_await cl->refresh_pool_map();  // daosim-lint: allow(ignored-result): measured stampede; the stale-count column catches failures
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  const std::vector<std::uint32_t> counts =
      smoke ? std::vector<std::uint32_t>{50} : std::vector<std::uint32_t>{1000, 3162, 10000};
  const std::uint32_t victim = 4;

  std::printf("# A8 membership — leader load and time-to-consistent map after an eviction\n");
  std::printf("%-8s %-7s %12s %12s %15s %10s\n", "clients", "series", "leader_rpcs",
              "delta_fetch", "consistent_ms", "stale");

  std::vector<bench::JsonRow> rows;
  for (const std::uint32_t n : counts) {
    for (const bool iv : {false, true}) {
      cluster::ClusterConfig cfg;
      cfg.server_nodes = 3;
      cfg.engines_per_server = 2;
      cfg.targets_per_engine = 4;
      cfg.client_nodes = n;
      cfg.swim.enabled = iv;
      cfg.swim.probe_period = 100 * sim::kMs;
      cfg.swim.suspect_timeout = 1 * sim::kSec;
      cluster::Testbed tb(cfg);
      tb.start();

      const std::uint64_t events0 = tb.sched().events_processed();
      const auto wall0 = std::chrono::steady_clock::now();

      // Phase 1 (not measured): crash the victim and commit its eviction —
      // by SWIM detection when the detector runs, by the admin path when
      // not — then let every engine converge on the new version.
      tb.run([&]() -> CoTask<void> {
        tb.crash_engine(victim);
        if (!iv) co_await admin_evict(&tb, tb.engine(victim).node());
        const sim::Time deadline = tb.sched().now() + 10 * sim::kSec;
        while (tb.sched().now() < deadline) {
          if (const auto l = tb.svc_leader()) {
            if (tb.svc_replica(*l).meta().map_version() >= 2) break;
          }
          co_await tb.sched().delay(20 * sim::kMs);
        }
        if (iv) co_await tb.sched().delay(2 * sim::kSec);  // engines pull deltas
      });

      // Phase 2 (measured): every client learns the new map at once.
      sim::Time span = 0;
      tb.run([&]() -> CoTask<void> {
        const sim::Time t0 = tb.sched().now();
        sim::WaitGroup wg(tb.sched());
        const std::uint32_t live[] = {0, 1, 2, 3, 5};
        for (std::uint32_t c = 0; c < n; ++c) {
          if (iv) {
            const std::uint32_t eng = live[c % 5];
            const std::uint32_t tgt = (c / 5) % cfg.targets_per_engine;
            wg.spawn(iv_wave_op(&tb.client(c), eng * cfg.targets_per_engine + tgt));
          } else {
            wg.spawn(point_wave_op(&tb.client(c)));
          }
        }
        co_await wg.wait();
        span = tb.sched().now() - t0;
      });

      std::uint64_t leader_rpcs = 0;
      std::uint64_t delta_fetches = 0;
      std::uint64_t stale = 0;
      for (std::uint32_t c = 0; c < n; ++c) {
        leader_rpcs += tb.client(c).map_refreshes();
        delta_fetches += tb.client(c).map_delta_fetches();
        if (tb.client(c).pool_map().version < 2) ++stale;
      }
      const std::uint64_t events = tb.sched().events_processed() - events0;
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
      tb.stop();

      const char* series = iv ? "iv" : "point";
      std::printf("%-8u %-7s %12llu %12llu %15.2f %10llu\n", n, series,
                  static_cast<unsigned long long>(leader_rpcs),
                  static_cast<unsigned long long>(delta_fetches),
                  sim::to_seconds(span) * 1e3, static_cast<unsigned long long>(stale));

      rows.push_back(bench::JsonRow{double(n), series, double(leader_rpcs),
                                    double(delta_fetches), sim::to_seconds(span) * 1e6,
                                    double(stale), events, wall_s});
    }
  }

  bench::write_bench_json("ablation_membership", rows);
  return 0;
}
