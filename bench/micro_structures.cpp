// Micro-benchmarks (google-benchmark): the hot data structures under the
// stack — B+tree, placement, VOS extent resolution — and the DES kernel.
#include <benchmark/benchmark.h>

#include <map>

#include "client/object_class.hpp"
#include "client/placement.hpp"
#include "sim/bandwidth.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "vos/btree.hpp"
#include "vos/value_store.hpp"

namespace {

using namespace daosim;

void BM_BTreeInsert(benchmark::State& state) {
  const auto n = std::size_t(state.range(0));
  sim::Xoshiro256 rng(1);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  for (auto _ : state) {
    vos::BPlusTree<std::uint64_t, std::uint64_t> t;
    for (auto k : keys) t.insert_or_assign(k, k);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(n));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_StdMapInsert(benchmark::State& state) {  // baseline comparator
  const auto n = std::size_t(state.range(0));
  sim::Xoshiro256 rng(1);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  for (auto _ : state) {
    std::map<std::uint64_t, std::uint64_t> t;
    for (auto k : keys) t.insert_or_assign(k, k);
    benchmark::DoNotOptimize(t.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * std::int64_t(n));
}
BENCHMARK(BM_StdMapInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeFind(benchmark::State& state) {
  sim::Xoshiro256 rng(2);
  vos::BPlusTree<std::uint64_t, std::uint64_t> t;
  std::vector<std::uint64_t> keys(100000);
  for (auto& k : keys) {
    k = rng();
    t.insert_or_assign(k, k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.find(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_BTreeFind);

void BM_BTreeEraseInsertChurn(benchmark::State& state) {
  sim::Xoshiro256 rng(3);
  vos::BPlusTree<std::uint64_t, std::uint64_t> t;
  for (int i = 0; i < 50000; ++i) t.insert_or_assign(rng() % 100000, 1);
  for (auto _ : state) {
    const std::uint64_t k = rng() % 100000;
    t.erase(k);
    t.insert_or_assign(k + 1, 1);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 2);
}
BENCHMARK(BM_BTreeEraseInsertChurn);

void BM_PlacementLayout(benchmark::State& state) {
  const auto shards = std::uint32_t(state.range(0));
  std::uint64_t seq = 0;
  for (auto _ : state) {
    auto layout = client::compute_layout(client::make_oid(seq++, client::ObjClass::SX),
                                         shards, 128);
    benchmark::DoNotOptimize(layout.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()));
}
BENCHMARK(BM_PlacementLayout)->Arg(1)->Arg(8)->Arg(128);

void BM_JumpConsistentHash(benchmark::State& state) {
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client::jump_consistent_hash(client::mix64(k++), 128));
  }
}
BENCHMARK(BM_JumpConsistentHash);

void BM_ArrayStoreWrite(benchmark::State& state) {
  for (auto _ : state) {
    vos::ArrayStore a;
    for (vos::Epoch e = 1; e <= 64; ++e) {
      a.write((e - 1) * 4096, 4096, {}, e, vos::PayloadMode::discard);
    }
    benchmark::DoNotOptimize(a.extent_count());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 64);
}
BENCHMARK(BM_ArrayStoreWrite);

void BM_ArrayStoreReadResolve(benchmark::State& state) {
  vos::ArrayStore a;
  sim::Xoshiro256 rng(4);
  std::vector<std::byte> data(1024);
  for (vos::Epoch e = 1; e <= 256; ++e) {
    a.write(rng.uniform(64 * 1024), 1024, data, e, vos::PayloadMode::store);
  }
  std::vector<std::byte> out(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.read(rng.uniform(60 * 1024), out, 200));
  }
}
BENCHMARK(BM_ArrayStoreReadResolve);

void BM_SchedulerEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler s;
    for (int i = 0; i < 1000; ++i) {
      s.schedule_callback(sim::Time(i), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_processed());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_SchedulerEventThroughput);

void BM_SharedBandwidthFairShare(benchmark::State& state) {
  const int flows = int(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    sim::SharedBandwidth bw(s, 1e9);
    for (int i = 0; i < flows; ++i) {
      s.spawn([&bw]() -> sim::CoTask<void> { co_await bw.transfer(1'000'000); });
    }
    s.run();
    benchmark::DoNotOptimize(bw.bytes_served());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * flows);
}
BENCHMARK(BM_SharedBandwidthFairShare)->Arg(4)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
