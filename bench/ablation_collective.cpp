// Ablation A4 — MPI-IO on the shared file: independent vs two-phase
// collective buffering across transfer sizes (collective pays a shuffle but
// wins once independent transfers become small).
#include "figure_common.hpp"

int main() {
  using namespace daosim;
  std::printf("\n# A4 MPI-IO collective ablation — shared file, 8 client nodes, 16 ppn\n");
  std::printf("%-12s %-12s %12s %12s\n", "transfer", "mode", "write_GiB/s", "read_GiB/s");
  for (const std::uint64_t transfer : {64 * kKiB, 256 * kKiB, 1 * kMiB, 8 * kMiB}) {
    for (const bool collective : {false, true}) {
      ior::IorConfig cfg;
      cfg.api = ior::Api::mpiio;
      cfg.file_per_process = false;
      cfg.transfer_size = transfer;
      cfg.block_size = 8 * kMiB;
      cfg.collective = collective;
      cfg.oclass = std::uint8_t(client::ObjClass::SX);
      cluster::Testbed tb(bench::nextgenio_cluster(8));
      tb.start();
      ior::IorRunner runner(tb, 16);
      const ior::IorResult r = runner.run(cfg);
      std::printf("%-12s %-12s %12.2f %12.2f\n", format_bytes(transfer).c_str(),
                  collective ? "collective" : "independent", r.write.gib_per_sec(),
                  r.read.gib_per_sec());
      tb.stop();
    }
  }
  std::printf("\n");
  return 0;
}
