// Figure 3 (extension) — the paper's §V future work: "extending benchmarking
// to use the DAOS API (rather than DFS or DFuse POSIX-based backends)".
// Compares the native array API against DFS and the DFuse-based POSIX path
// in both IOR modes.
#include "figure_common.hpp"

int main() {
  using namespace daosim;
  auto base = [&](ior::Api api, bool fpp) {
    ior::IorConfig cfg;
    cfg.api = api;
    cfg.transfer_size = 8 * kMiB;
    cfg.block_size = 32 * kMiB;
    cfg.file_per_process = fpp;
    cfg.oclass = std::uint8_t(client::ObjClass::SX);
    return cfg;
  };
  bench::SweepOptions opt;

  const std::vector<bench::Series> easy = {
      {"DAOS-API", base(ior::Api::daos_array, true)},
      {"DFS", base(ior::Api::dfs, true)},
      {"POSIX", base(ior::Api::posix, true)},
  };
  bench::print_figure("Fig.3a DAOS API vs file interfaces (file-per-process)", easy, opt);

  const std::vector<bench::Series> hard = {
      {"DAOS-API", base(ior::Api::daos_array, false)},
      {"DFS", base(ior::Api::dfs, false)},
      {"POSIX", base(ior::Api::posix, false)},
  };
  bench::print_figure("Fig.3b DAOS API vs file interfaces (shared-file)", hard, opt);
  return 0;
}
