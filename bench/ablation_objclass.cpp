// Ablation A1 — full object-class sweep (S1/S2/S4/S8/SX) for the DFS API in
// both IOR modes, isolating how shard count drives placement balance vs
// per-target stream locality.
#include "figure_common.hpp"

int main() {
  using namespace daosim;
  using client::ObjClass;
  auto mk = [&](ObjClass oc, bool fpp) {
    ior::IorConfig cfg;
    cfg.api = ior::Api::dfs;
    cfg.transfer_size = 8 * kMiB;
    cfg.block_size = 32 * kMiB;
    cfg.file_per_process = fpp;
    cfg.oclass = std::uint8_t(oc);
    return cfg;
  };
  bench::SweepOptions opt;
  for (const bool fpp : {true, false}) {
    const std::vector<bench::Series> series = {
        {"S1", mk(ObjClass::S1, fpp)}, {"S2", mk(ObjClass::S2, fpp)},
        {"S4", mk(ObjClass::S4, fpp)}, {"S8", mk(ObjClass::S8, fpp)},
        {"SX", mk(ObjClass::SX, fpp)},
    };
    bench::print_figure(fpp ? "A1 object classes (file-per-process)"
                            : "A1 object classes (shared-file)",
                        series, opt);
  }
  return 0;
}
