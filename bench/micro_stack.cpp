// Micro-benchmarks of the simulated stack itself: wall-clock cost of
// simulating Raft commits and end-to-end object I/O (how fast the simulator
// runs, i.e. events per second of host time).
#include <benchmark/benchmark.h>

#include "common/units.hpp"
#include "cluster/testbed.hpp"
#include "raft/raft.hpp"

namespace {

using namespace daosim;
using sim::CoTask;

void BM_RaftCommitThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    net::Fabric fabric(sched);
    std::vector<net::NodeId> ids;
    for (int i = 0; i < 3; ++i) ids.push_back(fabric.add_node());
    net::RpcDomain dom(fabric);
    struct NullSm final : raft::StateMachine {
      std::string apply(const std::string&) override { return ""; }
      std::string snapshot() const override { return ""; }
      void restore(const std::string&) override {}
    };
    std::vector<std::unique_ptr<net::RpcEndpoint>> eps;
    std::vector<std::unique_ptr<NullSm>> sms;
    std::vector<std::unique_ptr<raft::RaftNode>> nodes;
    for (int i = 0; i < 3; ++i) {
      eps.push_back(std::make_unique<net::RpcEndpoint>(dom, ids[std::size_t(i)]));
      sms.push_back(std::make_unique<NullSm>());
      nodes.push_back(std::make_unique<raft::RaftNode>(*eps.back(), ids, *sms.back(),
                                                       raft::RaftConfig{}, 42 + i));
    }
    for (auto& n : nodes) n->start();
    raft::RaftNode* leader = nullptr;
    while (leader == nullptr) {
      sched.run_until(sched.now() + 50 * sim::kMs);
      for (auto& n : nodes) {
        if (n->is_leader()) leader = n.get();
      }
    }
    state.ResumeTiming();

    int done = 0;
    for (int i = 0; i < 100; ++i) {
      sched.spawn([leader, &done]() -> CoTask<void> {
        (void)co_await leader->submit("cmd");
        ++done;
      });
    }
    while (done < 100) sched.run_until(sched.now() + 50 * sim::kMs);

    state.PauseTiming();
    for (auto& n : nodes) n->stop();
    sched.run();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) * 100);
}
BENCHMARK(BM_RaftCommitThroughput)->Unit(benchmark::kMillisecond);

void BM_SimulatedArrayWrite(benchmark::State& state) {
  // Host cost of simulating one 8 MiB SX array write end-to-end.
  cluster::ClusterConfig cfg;
  cfg.server_nodes = 8;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 8;
  cfg.payload = vos::PayloadMode::discard;
  cluster::Testbed tb(cfg);
  tb.start();
  bool created = false;
  std::uint64_t seq = 1000;
  for (auto _ : state) {
    tb.run([&]() -> CoTask<void> {
      if (!created) {
        auto cr = co_await tb.client(0).cont_create(cluster::kPoolUuid, {});
        DAOSIM_REQUIRE(cr.ok(), "cont_create: %s", errno_name(cr.error()));
        created = true;
      }
      client::ArrayObject arr(tb.client(0), cluster::kPoolUuid,
                              client::make_oid(seq++, client::ObjClass::SX), 1 * kMiB);
      (void)co_await arr.write(0, 8 * kMiB, {});
    });
  }
  tb.stop();
  state.SetBytesProcessed(std::int64_t(state.iterations()) * std::int64_t(8 * kMiB));
}
BENCHMARK(BM_SimulatedArrayWrite)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
