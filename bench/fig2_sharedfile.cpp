// Figure 2 — "IOR: Shared-file" (paper Fig. 2a read, Fig. 2b write).
//
// IOR hard mode: one shared file, segmented layout, 16 ranks per client
// node. Same series as Figure 1.
#include "figure_common.hpp"

int main() {
  using namespace daosim;
  const auto series = bench::paper_series(/*file_per_process=*/false,
                                          /*transfer=*/8 * kMiB,
                                          /*block=*/32 * kMiB);
  bench::SweepOptions opt;
  bench::print_figure("Fig.2 IOR shared-file (hard)", series, opt, "fig2_sharedfile");
  return 0;
}
