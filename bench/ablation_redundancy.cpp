// Ablation A5 — the price of self-healing redundancy: RP_2GX (2-way
// replication, one group per target pair) against SX (no redundancy) on the
// native DAOS array API, in both IOR modes, 4..16 client nodes. Every
// replicated byte is shipped to two engines, so writes pay an amplification
// factor near 2x (measured directly from engine-side update RPC counts)
// while reads are served from a single replica and stay close to SX.
#include "figure_common.hpp"

int main() {
  using namespace daosim;
  using client::ObjClass;

  auto mk = [](ObjClass oc, bool fpp) {
    ior::IorConfig cfg;
    cfg.api = ior::Api::daos_array;
    cfg.transfer_size = 4 * kMiB;
    cfg.block_size = 16 * kMiB;
    cfg.file_per_process = fpp;
    cfg.oclass = std::uint8_t(oc);
    return cfg;
  };

  const std::vector<std::uint32_t> node_counts{4, 8, 16};
  for (const bool fpp : {true, false}) {
    std::printf("\n# A5 redundancy (%s) — DAOS array API, RP_2GX vs SX\n",
                fpp ? "file-per-process" : "shared-file");
    std::printf("%-12s %12s %12s %12s %12s %14s\n", "client_nodes", "SX write", "RP write",
                "SX read", "RP read", "write amp");
    for (const std::uint32_t nodes : node_counts) {
      cluster::Testbed tb(bench::nextgenio_cluster(nodes));
      tb.start();
      ior::IorRunner runner(tb, /*ppn=*/16);

      const std::uint64_t u0 = tb.total_updates();
      const ior::IorResult sx = runner.run(mk(ObjClass::SX, fpp));
      const std::uint64_t u1 = tb.total_updates();
      const ior::IorResult rp = runner.run(mk(ObjClass::RP_2GX, fpp));
      const std::uint64_t u2 = tb.total_updates();
      tb.stop();

      const double amp = u1 > u0 ? double(u2 - u1) / double(u1 - u0) : 0;
      std::printf("%-12u %12.2f %12.2f %12.2f %12.2f %14.2f\n", nodes,
                  sx.write.gib_per_sec(), rp.write.gib_per_sec(), sx.read.gib_per_sec(),
                  rp.read.gib_per_sec(), amp);
    }
  }
  return 0;
}
