// Figure 1 — "IOR: File-per-process" (paper Fig. 1a read, Fig. 1b write).
//
// IOR easy mode: one file per rank, 16 ranks per client node, large
// contiguous transfers, sweeping client nodes 1..16 over the 8-server
// (16-engine) testbed. Series: DFS API under object classes S1/S2/SX, plus
// MPI-I/O and HDF5 over the DFuse mount.
#include "figure_common.hpp"

int main() {
  using namespace daosim;
  const auto series = bench::paper_series(/*file_per_process=*/true,
                                          /*transfer=*/8 * kMiB,
                                          /*block=*/32 * kMiB);
  bench::SweepOptions opt;
  bench::print_figure("Fig.1 IOR file-per-process (easy)", series, opt, "fig1_fileperprocess");
  return 0;
}
