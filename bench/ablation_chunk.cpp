// Ablation A3 — DFS chunk size: how the array chunking granularity trades
// per-RPC overhead against striping parallelism (DFS backend, 8 nodes).
#include "figure_common.hpp"

int main() {
  using namespace daosim;
  ior::IorConfig cfg;
  cfg.api = ior::Api::dfs;
  cfg.transfer_size = 8 * kMiB;
  cfg.block_size = 32 * kMiB;
  cfg.oclass = std::uint8_t(client::ObjClass::SX);

  std::printf("\n# A3 DFS chunk-size ablation — DFS backend, 8 client nodes, 16 ppn\n");
  std::printf("%-12s %12s %12s\n", "chunk", "write_GiB/s", "read_GiB/s");
  for (const std::uint64_t chunk : {256 * kKiB, 512 * kKiB, 1 * kMiB, 2 * kMiB, 4 * kMiB}) {
    cluster::Testbed tb(bench::nextgenio_cluster(8));
    tb.start();
    ior::IorRunner runner(tb, 16, chunk);
    const ior::IorResult r = runner.run(cfg);
    std::printf("%-12s %12.2f %12.2f\n", format_bytes(chunk).c_str(), r.write.gib_per_sec(),
                r.read.gib_per_sec());
    tb.stop();
  }
  std::printf("\n");
  return 0;
}
