#!/usr/bin/env bash
# daosim CI entrypoint: lint pass + a build/test matrix.
#
#   tools/ci.sh            run everything (lint, RelWithDebInfo, ASan+UBSan)
#   tools/ci.sh lint       lint only
#   tools/ci.sh release    RelWithDebInfo build + ctest only
#   tools/ci.sh asan       ASan+UBSan (+ runtime audits) build + ctest only
#   tools/ci.sh tsan       TSan build + ctest (optional; sim is single-threaded)
#   tools/ci.sh faults     fault-injection suite only (release build; the
#                          asan stage re-runs it under ASan+UBSan)
#   tools/ci.sh rebuild    self-healing redundancy suite only (release build;
#                          the asan stage re-runs it under ASan+UBSan)
#   tools/ci.sh telemetry  telemetry suite only: dump determinism, fault
#                          counters, metrics_diff, plus a live ior_cli run
#                          validating the Chrome trace JSON
#   tools/ci.sh trace      causal-tracing suite only: same-seed trace JSON
#                          determinism, zero-perturbation (trace_hash invariant
#                          to sink/sampling), span-tree well-formedness, the
#                          trace_analyze tool, plus a live seeded ior_cli run
#                          whose flow events and span trees are re-validated
#                          offline with trace_analyze.py --check
#   tools/ci.sh dtx        distributed-transaction suite (2PC, snapshots,
#                          crash recovery, serializability property) under
#                          ASan+UBSan with the runtime audits on — undefined
#                          behaviour in the conflict paths must fail loudly
#   tools/ci.sh swim       membership suite (SWIM failure detection,
#                          refutation, partition heal, IV dissemination,
#                          client staleness piggyback) under ASan+UBSan with
#                          the runtime audits on — the detector's coroutines
#                          and gossip buffers must be lifetime-clean
#   tools/ci.sh agg        evtree + background-aggregation suite (the extent
#                          index property tests against the flat oracle, the
#                          service's floor/determinism/crash battery, and the
#                          DTX/snapshot aggregation pins) under ASan+UBSan
#                          with the runtime audits on — the merge passes
#                          splice version vectors in place and must be
#                          lifetime- and UB-clean
#   tools/ci.sh bench-smoke  tiny-scale ablation_xfersize + ablation_dtx +
#                          ablation_overwrite runs asserting the BENCH_*.json
#                          perf trajectories parse, are non-empty, and that
#                          background aggregation keeps the overwrite
#                          endurance read cost flat (<= 1.2x first pass)
#                          while the agg-off series grows
#   tools/ci.sh analyze    libclang suspension-safety analyzer: rule self-test
#                          on the seeded fixtures, then the AST scan of every
#                          src/ TU via compile_commands.json. Standalone runs
#                          --require (missing libclang fails); under `all` it
#                          skips gracefully so bare local hosts stay green.
#
# Every configuration runs the full ctest suite, which itself includes the
# lint tree scan and lint self-test, so `ctest` alone also catches violations.
# A per-stage wall-clock summary prints on exit (also after a failure, for the
# stages that completed).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=${JOBS:-$(nproc)}
STAGE=${1:-all}

STAGE_SUMMARY=""
_stage_name=""
_stage_t0=0
stage_begin() { _stage_name=$1; _stage_t0=$SECONDS; }
stage_end() {
  STAGE_SUMMARY+=$(printf '  %-12s %4ds' "$_stage_name" $((SECONDS - _stage_t0)))$'\n'
}
print_stage_summary() {
  if [[ -n $STAGE_SUMMARY ]]; then
    echo "=== stage timing ==="
    printf '%s' "$STAGE_SUMMARY"
  fi
}
trap print_stage_summary EXIT

run_config() {
  local name=$1
  shift
  echo "=== [$name] configure: $* ==="
  cmake -B "build-ci-$name" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "build-ci-$name" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "build-ci-$name" --output-on-failure -j "$JOBS"
}

if [[ $STAGE == lint || $STAGE == all ]]; then
  stage_begin lint
  echo "=== [lint] tree scan + rule self-test ==="
  python3 tools/lint/daosim_lint.py --root .
  python3 tools/lint/daosim_lint.py --self-test --root .
  stage_end
fi

if [[ $STAGE == release || $STAGE == all ]]; then
  stage_begin release
  run_config release -DCMAKE_BUILD_TYPE=RelWithDebInfo
  stage_end
fi

if [[ $STAGE == asan || $STAGE == all ]]; then
  stage_begin asan
  # Audits ride along with the sanitizer config: same "slow but thorough"
  # budget, and ASan stack traces make audit failures easy to localise.
  run_config asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDAOSIM_SANITIZE="address;undefined" -DDAOSIM_AUDIT=ON
  stage_end
fi

if [[ $STAGE == tsan ]]; then
  stage_begin tsan
  run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDAOSIM_SANITIZE=thread
  stage_end
fi

if [[ $STAGE == faults ]]; then
  stage_begin faults
  # Focused fault-injection run: crash/restart/drop/delay/stall schedules,
  # retry/backoff, eviction, Raft failover, and seeded-trace determinism.
  echo "=== [faults] configure + build ==="
  cmake -B build-ci-faults -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-faults -j "$JOBS" --target fault_test
  echo "=== [faults] ctest ==="
  ctest --test-dir build-ci-faults --output-on-failure -j "$JOBS" \
    -R 'FaultSchedule|FaultDeterminism|FaultAcceptance|FaultDelayOnly|RetryBackoff|RetryPath|RaftFailover|Idempotency|RpcInflight|Placement\.'
  stage_end
fi

if [[ $STAGE == rebuild ]]; then
  stage_begin rebuild
  # Focused self-healing run: replicated placement, the rebuild-task state
  # machine, degraded reads/data-loss, crash-mid-IOR healing, reintegration
  # resync, and seeded rebuild-trace determinism.
  echo "=== [rebuild] configure + build ==="
  cmake -B build-ci-rebuild -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-rebuild -j "$JOBS" --target rebuild_test determinism_test
  echo "=== [rebuild] ctest ==="
  ctest --test-dir build-ci-rebuild --output-on-failure -j "$JOBS" \
    -R 'GroupPlacement|RebuildSm|Rebuild\.|RebuildDeterminism'
  stage_end
fi

if [[ $STAGE == telemetry ]]; then
  stage_begin telemetry
  # Focused observability run: metric-tree unit tests, byte-identical
  # same-seed dumps (easy/hard x DFS/MPI-IO/HDF5), span-sink invariance,
  # exact fault counters, and the metrics_diff tool against real dumps.
  echo "=== [telemetry] configure + build ==="
  cmake -B build-ci-telemetry -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-telemetry -j "$JOBS" --target telemetry_test ior_cli
  echo "=== [telemetry] ctest ==="
  ctest --test-dir build-ci-telemetry --output-on-failure -j "$JOBS" \
    -R 'Registry\.|Histogram\.|Dump|Trace\.|SpanSink|FaultCounters|BatchTelemetry|StatsEmpty|tools.metrics_diff'
  echo "=== [telemetry] trace export validates ==="
  build-ci-telemetry/examples/ior_cli -a DFS -t 1m -b 4m -N 2 -n 4 -S 2 \
    --metrics-dump=build-ci-telemetry/metrics.json \
    --trace-out=build-ci-telemetry/trace.json
  python3 - <<'EOF'
import json
trace = json.load(open("build-ci-telemetry/trace.json"))
events = trace["traceEvents"]
assert events, "trace is empty"
cats = {e.get("cat") for e in events if e.get("ph") == "X"}
assert {"rpc", "xfer", "media"} <= cats, f"missing span categories: {cats}"
metrics = json.load(open("build-ci-telemetry/metrics.json"))
assert any(p.endswith("rpc/update/sent") for p in metrics), "metrics dump is empty"
print(f"trace OK: {len(events)} events, categories {sorted(c for c in cats if c)}")
EOF
  stage_end
fi

if [[ $STAGE == trace ]]; then
  stage_begin trace
  # Focused causal-tracing run: trace determinism (byte-identical same-seed
  # JSON, trace_hash invariant to sink attachment and sampling rate), span
  # trees (every sampled op one well-formed cross-node tree; DTX 2PC and
  # crash->rebuild chains as single traces), stage attribution partitioning
  # every root exactly, the slow-op report, and the offline analyzer. Then a
  # live seeded hard-mode ior_cli run re-validated from the outside: flow
  # events must reference emitted span ids, and trace_analyze.py --check must
  # reassemble the trees with zero orphans.
  echo "=== [trace] configure + build ==="
  cmake -B build-ci-trace -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-trace -j "$JOBS" --target tracing_test ior_cli
  echo "=== [trace] ctest ==="
  ctest --test-dir build-ci-trace --output-on-failure -j "$JOBS" \
    -R 'TracingDeterminism|TracingTrees|SlowOps|tools.trace_analyze'
  echo "=== [trace] seeded hard-mode run ==="
  build-ci-trace/examples/ior_cli -a DFS -t 1m -b 4m -N 2 -n 4 -S 2 \
    --trace-out=build-ci-trace/trace.json --critical-path --slow-ops=0
  echo "=== [trace] flow events resolve ==="
  python3 - <<'EOF'
import json
trace = json.load(open("build-ci-trace/trace.json"))
events = trace["traceEvents"]
spans = {e["args"]["span"] for e in events
         if e.get("ph") == "X" and "args" in e and "span" in e["args"]}
assert spans, "no spans in trace"
flows = [e for e in events if e.get("ph") in ("s", "f")]
assert flows, "no flow events in trace"
dangling = [e["id"] for e in flows if e["id"] not in spans]
assert not dangling, f"flow events reference unknown span ids: {dangling[:5]}"
roots = sum(1 for e in events
            if e.get("ph") == "X" and e.get("cat") == "op"
            and e["args"].get("parent") == 0)
assert roots, "no op roots in trace"
print(f"flow OK: {len(flows)} flow events over {len(spans)} spans, {roots} op roots")
EOF
  echo "=== [trace] analyzer --check ==="
  python3 tools/trace_analyze.py build-ci-trace/trace.json --check
  stage_end
fi

if [[ $STAGE == dtx ]]; then
  stage_begin dtx
  # Focused distributed-transaction run under the harshest configuration:
  # ASan+UBSan plus the runtime determinism audits. The DTX paths are the
  # ones that juggle prepared-entry lifetimes across crashes and concurrent
  # coroutines — exactly where a lifetime bug would hide — so this suite
  # always runs sanitized, not just when the full asan stage does.
  echo "=== [dtx] configure + build ==="
  cmake -B build-ci-dtx -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDAOSIM_SANITIZE="address;undefined" -DDAOSIM_AUDIT=ON
  cmake --build build-ci-dtx -j "$JOBS" --target dtx_test ior_test
  echo "=== [dtx] ctest ==="
  ctest --test-dir build-ci-dtx --output-on-failure -j "$JOBS" \
    -R 'DtxVos|DtxCluster|DtxFault|DtxProperty|Ior\.ReadAtSnapshot'
  stage_end
fi

if [[ $STAGE == swim ]]; then
  stage_begin swim
  # Focused membership run, always sanitized: the SWIM detector juggles
  # per-member state across probe coroutines and gossip piggybacks, and the
  # IV path resumes parked waiters off a shared single-flight gate — the
  # classic places for a lifetime bug to hide. Covers detection, refutation,
  # partition heal (plus the partition fault grammar/behavior suite), the
  # client staleness piggyback, and seeded-trace determinism.
  echo "=== [swim] configure + build ==="
  cmake -B build-ci-swim -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDAOSIM_SANITIZE="address;undefined" -DDAOSIM_AUDIT=ON
  cmake --build build-ci-swim -j "$JOBS" --target swim_test fault_test
  echo "=== [swim] ctest ==="
  ctest --test-dir build-ci-swim --output-on-failure -j "$JOBS" \
    -R 'SwimDetect|SwimRefute|SwimPartition|IvPiggyback|SwimDeterminism|PartitionFault|FaultSchedule'
  stage_end
fi

if [[ $STAGE == agg ]]; then
  stage_begin agg
  # Focused evtree/aggregation run, always sanitized: the aggregation passes
  # erase and splice version vectors while read paths hold spans into them,
  # and the service interleaves with DTX commits, snapshots, rebuild floors,
  # and engine crashes — exactly where a dangling span or UB would hide.
  echo "=== [agg] configure + build ==="
  cmake -B build-ci-agg -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDAOSIM_SANITIZE="address;undefined" -DDAOSIM_AUDIT=ON
  cmake --build build-ci-agg -j "$JOBS" --target evtree_test agg_test dtx_test
  echo "=== [agg] ctest ==="
  ctest --test-dir build-ci-agg --output-on-failure -j "$JOBS" \
    -R 'Evtree|AggService|AggDeterminism|AggFloors|AggFault|DtxVos\.PreparedEntriesPinAggregation|DtxCluster\.SnapshotPinsAggregationUntilDestroyed'
  stage_end
fi

if [[ $STAGE == bench-smoke ]]; then
  stage_begin bench-smoke
  # Perf-trajectory smoke: the batching/EQ ablation at tiny scale. Guards the
  # bench binary, the machine-readable JSON output, and the invariant that
  # batched coalescing never loses to the legacy per-extent path.
  echo "=== [bench-smoke] configure + build ==="
  cmake -B build-ci-bench -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-ci-bench -j "$JOBS" \
    --target ablation_xfersize ablation_dtx ablation_overwrite
  echo "=== [bench-smoke] run ==="
  (cd build-ci-bench/bench && ./ablation_xfersize --smoke && ./ablation_dtx --smoke &&
   ./ablation_overwrite --smoke)
  echo "=== [bench-smoke] JSON validates ==="
  python3 - <<'EOF'
import json
bench = json.load(open("build-ci-bench/bench/BENCH_ablation_xfersize.json"))
rows = bench["rows"]
assert rows, "perf-trajectory JSON has no rows"
assert all(r["write_gibs"] > 0 and r["read_gibs"] > 0 for r in rows), "zero bandwidth row"
assert all(r["events"] > 0 for r in rows), "zero-event job"
by = {(r["series"], r["x"]): r["write_gibs"] for r in rows}
small = min(r["x"] for r in rows)
assert by[("hard/batch16", small)] >= by[("hard/batch1", small)] * 0.98, \
    "batched hard-mode write lost to the unbatched path at the smallest transfer"
print(f"bench-smoke OK: {len(rows)} rows")

# ablation_dtx column mapping (see bench/ablation_dtx.cpp): x = hot-key-space
# size, read_gibs = conflict rate in [0,1), write_gibs = commits/s,
# read_p99_us = commit p50 us, write_p99_us = commit p99 us.
dtx = json.load(open("build-ci-bench/bench/BENCH_ablation_dtx.json"))
rows = dtx["rows"]
assert rows, "DTX trajectory JSON has no rows"
assert all(r["write_gibs"] > 0 for r in rows), "zero commit throughput row"
assert all(0.0 <= r["read_gibs"] < 1.0 for r in rows), "conflict rate out of range"
assert all(r["write_p99_us"] >= r["read_p99_us"] > 0 for r in rows), "p99 below p50"
assert all(r["events"] > 0 for r in rows), "zero-event sweep point"
print(f"bench-smoke OK: {len(rows)} DTX rows")

# ablation_overwrite column mapping (see bench/ablation_overwrite.cpp):
# x = overwrite pass, read_p99_us = evtree probes per read op (deterministic),
# events = the pass's total extent-probe delta. The flat-cost acceptance bar:
# with aggregation on the final pass costs <= 1.2x the first; off, it grows.
ow = json.load(open("build-ci-bench/bench/BENCH_ablation_overwrite.json"))
rows = ow["rows"]
assert rows, "overwrite trajectory JSON has no rows"
on = sorted((r for r in rows if r["series"] == "agg_on"), key=lambda r: r["x"])
off = sorted((r for r in rows if r["series"] == "agg_off"), key=lambda r: r["x"])
assert on and off, "missing agg_on/agg_off series"
assert all(r["read_p99_us"] > 0 and r["events"] > 0 for r in rows), "zero-probe pass"
assert on[-1]["read_p99_us"] <= 1.2 * on[0]["read_p99_us"], \
    f"agg-on read cost not flat: {on[0]['read_p99_us']} -> {on[-1]['read_p99_us']}"
assert off[-1]["read_p99_us"] > off[0]["read_p99_us"], \
    f"agg-off read cost did not grow: {off[0]['read_p99_us']} -> {off[-1]['read_p99_us']}"
print(f"bench-smoke OK: overwrite flat-cost "
      f"{on[0]['read_p99_us']:.2f} -> {on[-1]['read_p99_us']:.2f} probes/op (agg on), "
      f"{off[0]['read_p99_us']:.2f} -> {off[-1]['read_p99_us']:.2f} (off)")
EOF
  stage_end
fi

if [[ $STAGE == analyze || $STAGE == all ]]; then
  stage_begin analyze
  # AST-level suspension-safety pass: parses the real src/ TUs with libclang.
  # Standalone (CI) the toolchain is mandatory; under `all` the analyzer's own
  # graceful-skip path keeps hosts without libclang green.
  require=()
  [[ $STAGE == analyze ]] && require=(--require)
  echo "=== [analyze] configure (compile_commands.json) ==="
  cmake -B build-ci-analyze -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  echo "=== [analyze] rule self-test on seeded fixtures ==="
  python3 tools/analyze/daosim_check.py --self-test ${require[@]+"${require[@]}"}
  echo "=== [analyze] src/ tree scan ==="
  python3 tools/analyze/daosim_check.py --root . --build build-ci-analyze \
    ${require[@]+"${require[@]}"}
  stage_end
fi

echo "=== CI ($STAGE) passed ==="
