#!/usr/bin/env python3
"""Tier-1 test for trace_analyze.py.

Drives ior_cli in hard mode (shared file) with tracing on to produce a real
cross-node trace, then checks:
  * --check passes: every sampled op reassembles into a single well-formed
    span tree (zero orphans), every flow event resolves, and stage
    attribution sums exactly to each root's duration;
  * two same-seed runs produce byte-identical trace JSON;
  * the analyzer's aggregate table matches ior_cli's in-process
    critical-path table line for line;
plus synthetic traces covering orphan detection, parent-interval escapes,
bad flow references and the parse-error exit.

Usage: trace_analyze_test.py <trace_analyze.py> <ior_cli>
"""

import json
import os
import re
import subprocess
import sys
import tempfile

FAILURES = []


def check(name, ok, detail=""):
    if ok:
        print(f"ok   {name}")
    else:
        FAILURES.append(name)
        print(f"FAIL {name} {detail}")


def run_ior(ior_cli, out):
    # Hard mode: one shared file, so every rank's ops cross the fabric.
    cmd = [ior_cli, "-a", "DFS", "-t", "1m", "-b", "4m", "-N", "2", "-n", "4",
           "-S", "2", f"--trace-out={out}"]
    return subprocess.run(cmd, check=True, stdout=subprocess.PIPE, text=True).stdout


def analyze(tool, trace, *flags):
    return subprocess.run([sys.executable, tool, trace, *flags],
                          stdout=subprocess.PIPE, text=True)


def span(trace_id, span_id, parent, begin_ns, end_ns, cat="op", name="x", pid=1):
    return {"name": name, "cat": cat, "ph": "X", "ts": begin_ns / 1000.0,
            "dur": (end_ns - begin_ns) / 1000.0, "pid": pid, "tid": 0,
            "args": {"trace": trace_id, "span": span_id, "parent": parent}}


def write_trace(path, events):
    with open(path, "w") as f:
        json.dump({"traceEvents": events}, f)


def main():
    tool, ior_cli = sys.argv[1], sys.argv[2]
    with tempfile.TemporaryDirectory() as td:
        a = os.path.join(td, "a.json")
        b = os.path.join(td, "b.json")
        out_a = run_ior(ior_cli, a)
        run_ior(ior_cli, b)

        with open(a, "rb") as f1, open(b, "rb") as f2:
            check("same-seed trace JSON byte-identical", f1.read() == f2.read())

        r = analyze(tool, a, "--check")
        check("real trace passes --check", r.returncode == 0, r.stdout[-400:])
        check("zero orphans reported", "0 orphans" in r.stdout, r.stdout[:200])

        # The in-process table (ior_cli) and the offline one must agree.
        def table_rows(text):
            return [re.sub(r"\s+", " ", line.strip()) for line in text.splitlines()
                    if re.match(r"\s+(arr_|kv_|tx_)", line)]
        cli_rows = table_rows(out_a)
        check("ior_cli printed a critical-path table", len(cli_rows) > 0, out_a[:400])
        check("offline table matches in-process table",
              cli_rows == table_rows(r.stdout),
              f"cli={cli_rows} offline={table_rows(r.stdout)}")

        # Orphan span: parent id never emitted.
        orphan = os.path.join(td, "orphan.json")
        write_trace(orphan, [span(1, 1, 0, 0, 100),
                             span(1, 3, 2, 10, 20, cat="rpc")])
        r = analyze(tool, orphan, "--check")
        check("orphan detected", r.returncode == 1 and "orphaned" in r.stdout, r.stdout)

        # Child interval escaping its parent.
        escape = os.path.join(td, "escape.json")
        write_trace(escape, [span(1, 1, 0, 0, 100),
                             span(1, 2, 1, 50, 150, cat="rpc")])
        r = analyze(tool, escape, "--check")
        check("parent-interval escape detected",
              r.returncode == 1 and "escapes" in r.stdout, r.stdout)

        # Flow event referencing a span id that does not exist.
        badflow = os.path.join(td, "badflow.json")
        write_trace(badflow, [span(1, 1, 0, 0, 100),
                              {"name": "flow", "cat": "trace", "ph": "s", "id": 99,
                               "pid": 1, "tid": 0, "ts": 0.0}])
        r = analyze(tool, badflow, "--check")
        check("dangling flow id detected",
              r.returncode == 1 and "unknown span id 99" in r.stdout, r.stdout)

        # A healthy synthetic tree still checks clean.
        good = os.path.join(td, "good.json")
        write_trace(good, [span(1, 1, 0, 0, 100),
                           span(1, 2, 1, 10, 90, cat="rpc", pid=1),
                           span(1, 3, 2, 20, 80, cat="svc", pid=2)])
        r = analyze(tool, good, "--check")
        check("well-formed synthetic tree passes", r.returncode == 0, r.stdout)

        bad = os.path.join(td, "bad.json")
        with open(bad, "w") as f:
            f.write("not json")
        r = analyze(tool, bad)
        check("parse error exits 2", r.returncode == 2, f"rc={r.returncode}")

    if FAILURES:
        print(f"{len(FAILURES)} failure(s): {', '.join(FAILURES)}", file=sys.stderr)
        return 1
    print("trace_analyze_test: all checks passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
