// Fixture: orphan-span — a TraceContext brace-literal with members mints
// span/trace ids outside Scheduler::alloc_span_id(). Hand-picked ids collide
// with allocator-issued ones or parent a span that was never emitted, and
// trace_analyze.py rejects the resulting orphan. TraceContext::root() and
// ctx.child() (both fed from alloc_span_id()) are the only sanctioned
// origins; the empty `TraceContext{}` is the inactive context and stays
// free. The src/sim/ exemption (where root()/child() themselves spell the
// triple out) is path-based and therefore not representable in a fixture.
#pragma once

#include <cstdint>

namespace fixture {

struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  bool active() const { return trace_id != 0; }
  TraceContext child(std::uint64_t id) const;
  static TraceContext root(std::uint64_t id);
};

std::uint64_t alloc_span_id();
void emit(TraceContext ctx);

inline void cases() {
  emit(TraceContext{7, 7, 0});            // EXPECT-LINT: orphan-span
  TraceContext forged{1, 2, 3};           // EXPECT-LINT: orphan-span
  emit(TraceContext{alloc_span_id(),      // EXPECT-LINT: orphan-span
                    alloc_span_id(), 0});

  // GOOD: the inactive context carries no ids and traces nothing.
  emit(TraceContext{});
  TraceContext inactive{};

  // GOOD: the sanctioned origins route every id through the allocator.
  TraceContext op = TraceContext::root(alloc_span_id());
  emit(op.child(alloc_span_id()));

  // GOOD: a site with a real reason may suppress explicitly.
  emit(TraceContext{9, 9, 0});  // daosim-lint: allow(orphan-span): fixture proves the suppression path

  (void)forged; (void)inactive;
}

}  // namespace fixture
