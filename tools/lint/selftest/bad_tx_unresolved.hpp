// Fixture: tx-unresolved — a TxHandle from tx_begin() that reaches the end
// of its scope without a co_await'ed commit()/abort(). The prepared DTX
// entries it staged stay undecided on every participating shard: conflicting
// writers restart against them and aggregation is pinned until the orphan
// reaper ages the transaction out and aborts it server-side.
#pragma once
#include <utility>

namespace fixture {

struct CoTaskErrno {};
struct TxHandle {
  void kv_put(int oid, const char* dkey, const char* akey, int v);
  CoTaskErrno commit();
  CoTaskErrno abort();
};
struct Client {
  TxHandle tx_begin(int cont);
};
void stash(TxHandle h);

inline CoTaskErrno cases(Client& cl) {
  {
    // BAD: staged writes, handle dies unresolved at the closing brace.
    auto tx = cl.tx_begin(1);  // EXPECT-LINT: tx-unresolved
    tx.kv_put(7, "dkey", "akey", 1);
  }

  {
    // BAD: commit() without co_await discards the CoTask; no RPC ever runs.
    auto tx = cl.tx_begin(1);  // EXPECT-LINT: tx-unresolved
    tx.kv_put(7, "dkey", "akey", 2);
    tx.commit();
  }

  {
    // GOOD: awaited commit resolves the handle.
    auto tx = cl.tx_begin(1);
    tx.kv_put(7, "dkey", "akey", 3);
    co_await tx.commit();
  }

  {
    // GOOD: an awaited abort is also a resolution.
    TxHandle tx = cl.tx_begin(1);
    co_await tx.abort();
  }

  {
    // GOOD: the awaited call may sit inside a larger expression/statement.
    auto tx = cl.tx_begin(1);
    if ((co_await tx.commit(), true)) {
    }
  }

  {
    // GOOD: ownership escapes via std::move; the recipient resolves it.
    auto tx = cl.tx_begin(1);
    stash(std::move(tx));
  }

  // GOOD (suppressed): intentionally-orphaned handle in a reaper test.
  {
    auto tx = cl.tx_begin(1);  // daosim-lint: allow(tx-unresolved): fixture proves the suppression path
    tx.kv_put(7, "dkey", "akey", 4);
  }
  co_return CoTaskErrno{};
}

inline TxHandle factory(Client& cl) {
  // GOOD: the handle is returned; the caller owns resolution.
  auto tx = cl.tx_begin(1);
  return tx;
}

}  // namespace fixture
