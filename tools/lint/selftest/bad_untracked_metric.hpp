// Seeded violations for the untracked-metric rule: metric nodes constructed
// outside telemetry::Registry never get a path and never reach a dump.
#pragma once

#include <memory>

namespace daosim::telemetry {
class Counter;
class Gauge;
class StatGauge;
class Registry;
}  // namespace daosim::telemetry

namespace fixture {

struct GoodHolder {
  // Pointers into a registry are the sanctioned pattern — no finding.
  daosim::telemetry::Counter* tracked = nullptr;
  daosim::telemetry::Gauge& bound_ref();
  // Registries themselves (and nested value types) are not metric nodes.
  daosim::telemetry::Registry* reg = nullptr;
};

struct BadHolder {
  daosim::telemetry::Counter loose;  // EXPECT-LINT: untracked-metric
};

inline void make_loose_metrics() {
  auto owned = std::make_unique<daosim::telemetry::Gauge>();  // EXPECT-LINT: untracked-metric
  auto* leaked = new daosim::telemetry::StatGauge();  // EXPECT-LINT: untracked-metric
  (void)owned;
  (void)leaked;
}

// Suppressible like every rule, e.g. for a unit test of the node type itself:
struct Allowed {
  daosim::telemetry::Counter standalone;  // daosim-lint: allow(untracked-metric): fixture proves the suppression path
};

}  // namespace fixture
