// Fixture: raw-rpc-call — client code must not co_await RpcEndpoint::call
// directly; every client RPC goes through the deadline/retry/eviction
// wrappers on DaosClient.
#pragma once

namespace fixture {

struct Reply { int status; };
struct Endpoint {
  Reply call(int dst, int opcode);
  Reply call_retry(int dst, int opcode);
  Reply call_with_deadline(int dst, int opcode, long deadline);
  Reply call_target(int map_target, int opcode);
};
Endpoint* endpoint();

inline void cases(Endpoint& ep, Endpoint* pep) {
  auto a = co_await ep.call(1, 0x20);                     // EXPECT-LINT: raw-rpc-call
  auto b = co_await pep->call(1, 0x20);                   // EXPECT-LINT: raw-rpc-call
  auto c = co_await endpoint()->call(1, 0x20);            // EXPECT-LINT: raw-rpc-call
  auto d = co_await ep.call(                              // EXPECT-LINT: raw-rpc-call
      1, 0x21);  // the receiver and argument list may span lines

  // GOOD: the sanctioned resilient wrappers do not fire.
  auto e = co_await ep.call_retry(1, 0x20);
  auto f = co_await ep.call_with_deadline(1, 0x20, 100);
  auto g = co_await ep.call_target(3, 0x20);

  // GOOD: `call` only fires when awaited — a synchronous helper named call
  // on a non-RPC type is someone else's business.
  auto h = ep.call(1, 0x20);

  // GOOD: the single bootstrap site may be suppressed explicitly.
  auto i = co_await ep.call(1, 0x20);  // daosim-lint: allow(raw-rpc-call): fixture proves the suppression path

  (void)a; (void)b; (void)c; (void)d; (void)e; (void)f; (void)g; (void)h; (void)i;
}

}  // namespace fixture
