// Fixture: wall-clock — host time and global randomness are banned in src/.
#pragma once
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline long cases() {
  auto t0 = std::chrono::system_clock::now();           // EXPECT-LINT: wall-clock
  auto t1 = std::chrono::steady_clock::now();           // EXPECT-LINT: wall-clock
  auto t2 = std::chrono::high_resolution_clock::now();  // EXPECT-LINT: wall-clock
  int r = rand();                                       // EXPECT-LINT: wall-clock
  srand(42);                                            // EXPECT-LINT: wall-clock
  std::random_device rd;                                // EXPECT-LINT: wall-clock
  long now = time(nullptr);                             // EXPECT-LINT: wall-clock
  std::mt19937 unseeded;                                // EXPECT-LINT: wall-clock
  std::mt19937_64 braced{};                             // EXPECT-LINT: wall-clock

  // GOOD: an explicitly seeded engine does not trip the unseeded rule (though
  // new code should still prefer sim/random.hpp).
  std::mt19937 seeded(12345);

  // GOOD: identifiers merely containing the banned words are untouched.
  long busy_time_ns = 0;
  struct { long time_ms; } stats{0};
  busy_time_ns += stats.time_ms;

  // GOOD: comments and strings never fire: rand() system_clock time(nullptr).
  const char* label = "rand() std::random_device time(0)";

  (void)t0; (void)t1; (void)t2; (void)r; (void)rd; (void)label;
  (void)seeded; (void)unseeded; (void)braced;
  return now + busy_time_ns;
}

}  // namespace fixture
