// Fixture: ignored-result — Errno propagation must not be dropped.
#pragma once

namespace fixture {

enum class Errno : int { ok = 0, io };

template <typename T>
class Result {
 public:
  Result(T) {}
  Result(Errno) {}
  bool ok() const { return true; }
};

// Declarations mimicking src/ headers: the linter collects these names.
Result<int> frob_fixture(int fd);
Result<int> unlink_fixture(const char* path);

struct Dir {
  Result<int> remove_fixture(const char* name);
};

inline void cases(Dir& d) {
  // BAD: bare expression statement — the Errno vanishes.
  frob_fixture(3);  // EXPECT-LINT: ignored-result

  // BAD: method call through a receiver, same silent drop.
  d.remove_fixture("x");  // EXPECT-LINT: ignored-result

  // BAD: (void) hides the drop from [[nodiscard]] but not from the linter;
  // intentional discards must carry a lint-allow comment instead.
  (void)unlink_fixture("/tmp/y");  // EXPECT-LINT: ignored-result

  // GOOD: captured.
  auto r1 = frob_fixture(4);
  (void)r1;

  // GOOD: checked inline.
  if (d.remove_fixture("z").ok()) {
    frob_fixture(5).ok();
  }

  // GOOD (suppressed): best-effort cleanup where failure is acceptable.
  unlink_fixture("/tmp/scratch");  // daosim-lint: allow(ignored-result): best-effort cleanup, ENOENT is fine

  // BAD: a control-clause prefix does not make the statement any less bare —
  // the drop is just conditional.
  if (d.remove_fixture("w").ok()) unlink_fixture("/tmp/w");  // EXPECT-LINT: ignored-result
  while (frob_fixture(6).ok()) frob_fixture(7);  // EXPECT-LINT: ignored-result

  // GOOD: the call's value is consumed by the condition itself.
  if (frob_fixture(8).ok()) {
  }
}

// BAD: a call-expression receiver (`dir().x()`) is still a bare statement.
inline Dir& dir();
inline void receiver_cases() {
  dir().remove_fixture("r");  // EXPECT-LINT: ignored-result

  // GOOD: chained past the call — the Result is consumed.
  if (!dir().remove_fixture("s").ok()) {
  }
}

}  // namespace fixture
