// Fixture: ignored-result — Errno propagation must not be dropped.
#pragma once

namespace fixture {

enum class Errno : int { ok = 0, io };

template <typename T>
class Result {
 public:
  Result(T) {}
  Result(Errno) {}
  bool ok() const { return true; }
};

// Declarations mimicking src/ headers: the linter collects these names.
Result<int> frob_fixture(int fd);
Result<int> unlink_fixture(const char* path);

struct Dir {
  Result<int> remove_fixture(const char* name);
};

inline void cases(Dir& d) {
  // BAD: bare expression statement — the Errno vanishes.
  frob_fixture(3);  // EXPECT-LINT: ignored-result

  // BAD: method call through a receiver, same silent drop.
  d.remove_fixture("x");  // EXPECT-LINT: ignored-result

  // BAD: (void) hides the drop from [[nodiscard]] but not from the linter;
  // intentional discards must carry a lint-allow comment instead.
  (void)unlink_fixture("/tmp/y");  // EXPECT-LINT: ignored-result

  // GOOD: captured.
  auto r1 = frob_fixture(4);
  (void)r1;

  // GOOD: checked inline.
  if (d.remove_fixture("z").ok()) {
    frob_fixture(5).ok();
  }

  // GOOD (suppressed): best-effort cleanup where failure is acceptable.
  unlink_fixture("/tmp/scratch");  // daosim-lint: allow(ignored-result)
}

}  // namespace fixture
