// Fixture: spawn-temporary — the CP.51 dangling-closure trap.
#pragma once
#include <coroutine>

namespace fixture {

struct CoTaskVoid {};
struct Sched {
  void spawn(CoTaskVoid) {}
  template <typename F>
  void spawn(F) {}
};

inline void cases(Sched& s, int fd) {
  // BAD: the lambda temporary is invoked inline; its closure dies at the end
  // of the full expression while the coroutine frame still references it.
  s.spawn([&fd]() -> CoTaskVoid { return {}; }());  // EXPECT-LINT: spawn-temporary

  // BAD: same trap split over multiple lines — reported at the spawn line.
  s.spawn([&fd]() -> CoTaskVoid {  // EXPECT-LINT: spawn-temporary
    return {};
  }());

  // GOOD: pass the callable itself; the wrapper frame keeps the closure alive.
  s.spawn([&fd]() -> CoTaskVoid { return {}; });

  // GOOD: spawning a named task factory's result is fine (no closure involved).
  s.spawn(CoTaskVoid{});

  // GOOD (suppressed): capture-free immediately-invoked lambda has no state to
  // dangle; an explicit allow documents that.
  s.spawn([]() -> CoTaskVoid { return {}; }());  // daosim-lint: allow(spawn-temporary): fixture proves the suppression path
}

}  // namespace fixture
