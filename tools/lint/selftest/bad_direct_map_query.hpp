// Fixture: direct-map-query — the pool-service map_query point query may
// only be issued from client/refresh.cpp (the IV fallback). Every other
// client site must learn map versions passively from reply stamps and pull
// deltas from engines (docs/membership.md). The rule matches the quoted
// command literal, so unquoted comment mentions — like this sentence's
// map_query — never fire. The refresh.cpp exemption is path-based and
// therefore not representable in a fixture.
#pragma once

#include <string>

namespace fixture {

std::string svc_command(std::string cmd);

inline void cases() {
  auto a = svc_command("map_query");                      // EXPECT-LINT: direct-map-query
  const char* cmd = "map_query";                          // EXPECT-LINT: direct-map-query
  auto b = svc_command(std::string("map_query") + " 3");  // EXPECT-LINT: direct-map-query

  // GOOD: other pool-service commands are not map point queries.
  auto c = svc_command("pool_reint 4");
  auto d = svc_command("pool_evict 4");

  // GOOD: the one sanctioned bootstrap site may suppress explicitly.
  auto e = svc_command("map_query");  // daosim-lint: allow(direct-map-query): fixture proves the suppression path

  (void)a; (void)cmd; (void)b; (void)c; (void)d; (void)e;
}

}  // namespace fixture
