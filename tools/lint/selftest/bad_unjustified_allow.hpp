// Fixture: unjustified-allow — every suppression marker must say why the
// checker is wrong on that line, and must name a rule that exists. A bare
// allow() is an unreviewable "trust me"; a typo'd rule name suppresses
// nothing while looking like it does.
#pragma once

namespace fixture_allow {

inline int helper() { return 0; }

inline void cases() {
  // BAD: no justification after the marker.
  helper();  // daosim-lint: allow(wall-clock)  // EXPECT-LINT: unjustified-allow

  // BAD: analyzer markers are held to the same standard.
  helper();  // daosim-check: allow(ref-across-suspend)  // EXPECT-LINT: unjustified-allow

  // BAD: unknown rule name — the marker suppresses nothing. (The justification
  // is present, so only the unknown-name arm fires.)
  helper();  // daosim-lint: allow(no-such-rule): reason text  // EXPECT-LINT: unjustified-allow

  // BAD: empty rule list.
  helper();  // daosim-lint: allow(): forgot the rule  // EXPECT-LINT: unjustified-allow

  // GOOD: justified line marker, real rule.
  helper();  // daosim-lint: allow(wall-clock): fixture text, not a real clock read

  // GOOD: justified analyzer marker.
  helper();  // daosim-check: allow(guard-across-suspend): fixture text, no real guard here
}

}  // namespace fixture_allow
