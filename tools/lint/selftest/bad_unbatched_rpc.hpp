// Fixture: unbatched-extent-rpc — a loop that builds one ObjUpdateReq/
// ObjFetchReq per extent and serializes it with Body::make sends one RPC per
// extent, bypassing the client batcher. Collect the extents and let
// ArrayObject's update_batch/fetch_batch coalesce them per (target, replica).
#pragma once

namespace fixture {

struct ObjUpdateReq { int target; long offset, length; };
struct ObjFetchReq { int target; long offset, length; };
struct Body {
  static Body make(ObjUpdateReq r);
  static Body make(ObjFetchReq r);
};
void send(Body b);

inline void cases(long npieces) {
  for (long i = 0; i < npieces; ++i) {                    // EXPECT-LINT: unbatched-extent-rpc
    ObjUpdateReq req;
    req.offset = i * 4096;
    req.length = 4096;
    send(Body::make(req));
  }

  long j = 0;
  while (j < npieces) {                                   // EXPECT-LINT: unbatched-extent-rpc
    ObjFetchReq req{0, j * 4096, 4096};
    send(Body::make(req));
    ++j;
  }

  // GOOD: the loop only *builds* per-extent requests; serialization happens
  // once, outside, where the batcher can coalesce them.
  ObjUpdateReq batched;
  for (long i = 0; i < npieces; ++i) {
    batched.length += 4096;
  }
  send(Body::make(batched));

  // GOOD: a request declared outside the loop with per-iteration Body::make
  // is the replica fan-out of ONE extent, not a per-extent loop.
  ObjFetchReq fan{0, 0, 4096};
  for (long rep = 0; rep < 3; ++rep) {
    send(Body::make(fan));
  }

  // GOOD: the legacy A/B path may be suppressed explicitly.
  for (long i = 0; i < npieces; ++i) {  // daosim-lint: allow(unbatched-extent-rpc): fixture proves the suppression path
    ObjUpdateReq req{0, i * 4096, 4096};
    send(Body::make(req));
  }
}

}  // namespace fixture
