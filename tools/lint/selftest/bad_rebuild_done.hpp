// Fixture: rebuild-idempotency — the "rebuild_done" command dispatch must be
// duplicate-apply guarded. Reports are retried on lost replies and re-driven
// tasks, so the same (engine, version) reaches apply() more than once.
#pragma once

#include <map>
#include <set>
#include <string>

namespace fixture {

struct Task {
  std::set<unsigned> done;
};

struct GuardedSm {
  std::map<unsigned, Task> rebuilds;

  // GOOD: insert(..).second absorbs the duplicate before it can count.
  std::string apply(const std::string& op, unsigned engine, unsigned version) {
    if (op == "rebuild_done") {
      auto it = rebuilds.find(version);
      if (it == rebuilds.end()) return "ok stale";
      if (!it->second.done.insert(engine).second) return "ok dup";
      return "ok";
    }
    return "EINVAL";
  }
};

struct MembershipSm {
  std::map<unsigned, Task> rebuilds;

  // GOOD: contains() membership test before mutating.
  std::string apply(const std::string& op, unsigned engine, unsigned version) {
    if (op == "rebuild_done") {
      if (rebuilds[version].done.contains(engine)) return "ok dup";
      rebuilds[version].done.emplace(engine);
      return "ok";
    }
    return "EINVAL";
  }
};

struct UnguardedSm {
  std::map<unsigned, Task> rebuilds;
  unsigned reports = 0;

  // BAD: a retried report re-runs the body and double-counts the engine.
  std::string apply(const std::string& op, unsigned engine, unsigned version) {
    if (op == "rebuild_done") {  // EXPECT-LINT: rebuild-idempotency
      rebuilds[version].done.emplace(engine);
      ++reports;
      return "ok";
    }
    return "EINVAL";
  }
};

}  // namespace fixture
