// Fixture: unordered-iteration — hash-order must never reach the event queue.
#pragma once
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Handle { void resume() {} };
struct Sched {
  void schedule(std::uint64_t, Handle) {}
  template <typename F>
  void spawn(F) {}
};

struct Node {
  std::unordered_map<int, Handle> waiters_;
  std::unordered_set<int> peers_;
  Sched sched_;
  std::uint64_t total_ = 0;

  void cases() {
    // BAD: iteration order of waiters_ is address/rehash dependent, and each
    // element lands in the scheduler queue in that order.
    for (auto& [id, h] : waiters_) {  // EXPECT-LINT: unordered-iteration
      sched_.schedule(0, h);
    }

    // BAD: resuming coroutine handles straight out of a hash set.
    for (auto id : peers_) {  // EXPECT-LINT: unordered-iteration
      Handle h;
      h.resume();
      total_ += std::uint64_t(id);
    }

    // GOOD: pure accumulation never observes ordering.
    for (const auto& [id, h] : waiters_) total_ += std::uint64_t(id);

    // GOOD: iterating an ordered container into the scheduler is fine; this
    // loop's range is not an unordered container.
    Handle hs[2];
    for (auto& h : hs) sched_.schedule(0, h);

    // GOOD (suppressed): sole-element maps cannot expose an order.
    for (auto& [id, h] : waiters_) {  // daosim-lint: allow(unordered-iteration): fixture proves the suppression path
      sched_.schedule(1, h);
    }
  }
};

}  // namespace fixture
