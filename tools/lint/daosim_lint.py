#!/usr/bin/env python3
"""daosim-lint: project-specific correctness rules the compiler can't enforce.

The simulator's core claim is determinism: one seed, one virtual-time trace.
These rules ban the constructs that historically break that claim in
coroutine-heavy C++ codebases:

  spawn-temporary     Scheduler::spawn(lambda()) on an immediately-invoked
                      closure. The temporary closure dies at the end of the
                      full expression while the coroutine frame keeps pointing
                      at it (CppCoreGuidelines CP.51). Pass the callable
                      itself: spawn(lambda).
  wall-clock          std::chrono clocks, time()/gettimeofday(), rand()/
                      srand(), std::random_device, or an unseeded
                      std::mt19937 inside src/. All simulation time must be
                      virtual (sim/time.hpp) and all randomness must flow
                      through sim/random.hpp so runs replay from a seed.
  unordered-iteration Range-for over a std::unordered_map/std::unordered_set
                      whose body schedules work (spawn/schedule/resume/
                      co_await). Hash-table iteration order depends on
                      pointer values and rehash history; feeding it into the
                      event queue makes traces machine-dependent.
  ignored-result      A call to a Result<T>-returning function used as a bare
                      expression statement (or discarded via (void)). Errno
                      propagation is the recoverable-error channel; dropping
                      it silently loses failures.
  raw-rpc-call        `co_await ... call(...)` (RpcEndpoint::call) inside
                      src/client/. Client code must go through the resilient
                      wrappers (call_with_deadline / call_retry / call_target)
                      so every RPC gets a deadline, bounded retries, and the
                      eviction path; a raw call hangs forever on a dead node.
  rebuild-idempotency A dispatch on the "rebuild_done" command whose handler
                      body has no duplicate-apply guard (set insert(..).second,
                      .count(, or .contains(). rebuild_done reports are retried
                      on lost replies and re-driven tasks, so an unguarded
                      handler double-counts the reporting engine and declares
                      rebuild complete too early.
  untracked-metric    Direct construction of a telemetry metric node
                      (telemetry::Counter/Gauge/StatGauge/DurationHistogram/
                      Probe) by value, new, or make_unique outside
                      src/telemetry/. A node that does not live in a
                      telemetry::Registry has no path and never appears in a
                      dump; obtain nodes via Registry::find_or_create /
                      add_probe and hold pointers.
  unbatched-extent-rpc A for/while loop in src/client/ that both declares an
                      ObjUpdateReq/ObjFetchReq and calls Body::make in its
                      body: one RPC per extent, bypassing the vectorized
                      batcher. Build the extent vector first and let
                      ArrayObject's update_batch/fetch_batch coalesce pieces
                      per (target, replica), bounded by
                      ClientConfig::max_batch_extents.

  direct-map-query    The pool-service "map_query" command issued from a
                      src/client/ file other than client/refresh.cpp. The
                      point query hits the pool-service leader — O(clients)
                      leader load per membership change. Clients learn map
                      versions passively from stamped replies and pull deltas
                      from engines (docs/membership.md); only the refresh
                      module's sanctioned fallback may query the leader.
  tx-unresolved       A TxHandle obtained from tx_begin() that reaches the end
                      of its scope without a co_await'ed .commit() or .abort()
                      (and without escaping via return/std::move). An
                      unresolved handle leaves prepared DTX entries on every
                      touched shard; they pin aggregation until the orphan
                      reaper times them out and aborts them seconds later.
  orphan-span         A TraceContext brace-literal with members written outside
                      src/sim/. Hand-rolled {trace, span, parent} triples mint
                      span ids outside Scheduler::alloc_span_id() and parent
                      ids nothing emitted, producing orphan spans the analyzer
                      rejects. TraceContext::root(alloc_span_id()) and
                      ctx.child(alloc_span_id()) are the only sanctioned
                      origins; `{}` (the inactive context) stays free.
  unjustified-allow   A daosim-lint or daosim-check suppression marker without
                      a trailing justification, or naming a rule that does not
                      exist. Every allow is a claim that the checker is wrong
                      here; the claim must say why, and it must point at a
                      real rule or it silences nothing.

Suppression: append  // daosim-lint: allow(<rule>): <reason>  to the offending
line, or put  // daosim-lint: allow-file(<rule>): <reason>  anywhere in the
file. The reason is mandatory (enforced by unjustified-allow).

Usage:
  daosim_lint.py --root <repo> [--quiet]      lint the tree (src/tests/bench/
                                              examples); exit 1 on violations
  daosim_lint.py --self-test                  run the seeded-violation fixtures
                                              under selftest/; exit 1 unless
                                              every EXPECT-LINT line matches
"""

import argparse
import os
import re
import sys

RULES = ("spawn-temporary", "wall-clock", "unordered-iteration", "ignored-result",
         "raw-rpc-call", "rebuild-idempotency", "untracked-metric",
         "unbatched-extent-rpc", "direct-map-query", "tx-unresolved",
         "orphan-span", "unjustified-allow")

# Rules owned by the libclang analyzer (tools/analyze/daosim_check.py). The
# unjustified-allow rule validates daosim-check markers against this list, and
# the meta-selftest requires a seeded fixture per analyzer rule, so the plain
# ctest suite catches a rule/fixture drift even on hosts without libclang.
CHECK_RULES = ("ref-across-suspend", "ref-capture-spawn", "guard-across-suspend",
               "discarded-task", "unordered-source-of-order")

# wall-clock applies to src/ only: tests and benches may legitimately measure
# host time; the simulation itself never may.
TREE_DIRS = ("src", "tests", "bench", "examples")
WALL_CLOCK_DIRS = ("src",)
# raw-rpc-call applies to the client library only: engines, raft, and tests
# drive endpoints directly by design; client code must use the retry wrappers.
# unbatched-extent-rpc shares this scope: only the client library owns the
# extent batcher; servers and tests build per-extent requests legitimately.
RAW_RPC_DIRS = ("src/client",)
# untracked-metric applies everywhere except the telemetry library itself,
# which is the one place sanctioned to materialize nodes.
UNTRACKED_METRIC_EXCLUDE = ("src/telemetry",)

CPP_EXTS = (".hpp", ".cpp", ".h", ".cc", ".cxx")

# The marker may appear anywhere inside a comment, possibly after other text:
#   foo();  // EEXIST is fine; daosim-lint: allow(ignored-result)
ALLOW_LINE_RE = re.compile(r"daosim-lint:\s*allow\(([\w,\s-]+)\)")
ALLOW_FILE_RE = re.compile(r"daosim-lint:\s*allow-file\(([\w,\s-]+)\)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def blank_comments_and_strings(text):
    """Returns text with comments, string and char literals replaced by spaces
    (newlines preserved) so rule regexes never match inside them."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                if i + 1 < n:
                    out[i + 1] = " "
                i += 2
        elif c == '"' or c == "'":
            quote = c
            # Raw strings: R"delim( ... )delim"
            if quote == '"' and i > 0 and text[i - 1] == "R" and (i < 2 or not text[i - 2].isalnum()):
                m = re.match(r'R"([^(\s]{0,16})\(', text[i - 1:])
                if m:
                    delim = m.group(1)
                    end = text.find(f"){delim}\"", i)
                    if end < 0:
                        end = n - 1
                    for j in range(i, min(end + len(delim) + 2, n)):
                        if text[j] != "\n":
                            out[j] = " "
                    i = end + len(delim) + 2
                    continue
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def skip_balanced(text, pos, open_ch, close_ch):
    """pos points at open_ch; returns index one past the matching close_ch."""
    depth = 0
    n = len(text)
    while pos < n:
        c = text[pos]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return pos + 1
        pos += 1
    return n


# ---------------------------------------------------------------- rules ----

SPAWN_RE = re.compile(r"\bspawn\s*\(")


def check_spawn_temporary(path, text, clean):
    """spawn( [capture](...) {...} () )  — closure invoked before spawn sees it."""
    out = []
    for m in SPAWN_RE.finditer(clean):
        open_paren = m.end() - 1
        end = skip_balanced(clean, open_paren, "(", ")")
        arg = clean[open_paren + 1 : end - 1].strip()
        if arg.startswith("[") and arg.endswith(")"):
            out.append(
                Violation(
                    path,
                    line_of(clean, m.start()),
                    "spawn-temporary",
                    "spawn() on an immediately-invoked lambda: the closure is a "
                    "temporary that dies before the coroutine runs (CP.51); pass "
                    "the callable itself, spawn(std::move(f))",
                )
            )
    return out


WALL_CLOCK_PATTERNS = (
    (re.compile(r"std\s*::\s*chrono\s*::\s*(system|steady|high_resolution)_clock"),
     "std::chrono::{}_clock reads the host clock; use virtual sim::Time"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?s?rand\s*\("),
     "rand()/srand() is global-state randomness; use sim/random.hpp (Xoshiro256)"),
    (re.compile(r"std\s*::\s*random_device"),
     "std::random_device is nondeterministic; seed a Xoshiro256 instead"),
    (re.compile(r"(?<![\w:.])(?:std\s*::\s*)?(?:time|gettimeofday|clock_gettime)\s*\("),
     "host wall-clock call; all simulation time must be virtual"),
)
UNSEEDED_MT_RE = re.compile(r"std\s*::\s*mt19937(?:_64)?\s+\w+\s*(;|\{\s*\}|\(\s*\))")
MT_RE = re.compile(r"std\s*::\s*mt19937(?:_64)?\b")


def check_wall_clock(path, text, clean):
    out = []
    for pat, msg in WALL_CLOCK_PATTERNS:
        for m in pat.finditer(clean):
            detail = msg.format(m.group(1)) if "{}" in msg else msg
            out.append(Violation(path, line_of(clean, m.start()), "wall-clock", detail))
    for m in UNSEEDED_MT_RE.finditer(clean):
        out.append(
            Violation(
                path,
                line_of(clean, m.start()),
                "wall-clock",
                "unseeded std::mt19937 (default seed hides intent and invites "
                "random_device seeding later); use sim/random.hpp",
            )
        )
    return out


UNORDERED_DECL_RE = re.compile(r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
SCHEDULING_RE = re.compile(r"\b(?:spawn|schedule|schedule_callback|co_await)\b|\.\s*resume\s*\(")


def unordered_container_names(clean):
    """Names of variables/members declared with an unordered container type."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(clean):
        end = skip_balanced(clean, m.end() - 1, "<", ">")
        tail = clean[end:]
        dm = re.match(r"\s*&?\s*(\w+)\s*[;={(,)]", tail)
        if dm:
            names.add(dm.group(1))
    return names


def check_unordered_iteration(path, text, clean):
    names = unordered_container_names(clean)
    if not names:
        return []
    out = []
    for m in RANGE_FOR_RE.finditer(clean):
        open_paren = m.end() - 1
        head_end = skip_balanced(clean, open_paren, "(", ")")
        head = clean[open_paren + 1 : head_end - 1]
        if ":" not in head:
            continue
        range_expr = head.split(":", 1)[1]
        used = [n for n in names if re.search(rf"\b{re.escape(n)}\b", range_expr)]
        if not used:
            continue
        # Body: balanced braces, or a single statement up to ';'.
        body_start = head_end
        while body_start < len(clean) and clean[body_start].isspace():
            body_start += 1
        if body_start < len(clean) and clean[body_start] == "{":
            body_end = skip_balanced(clean, body_start, "{", "}")
        else:
            body_end = clean.find(";", body_start) + 1
        body = clean[body_start:body_end]
        if SCHEDULING_RE.search(body):
            out.append(
                Violation(
                    path,
                    line_of(clean, m.start()),
                    "unordered-iteration",
                    f"iterating '{used[0]}' (unordered container) and scheduling "
                    "work in the loop body: hash order is address-dependent and "
                    "leaks into the event queue; iterate a sorted view instead",
                )
            )
    return out


# A function returning Result<T> directly or asynchronously (CoTask<Result<T>>).
RESULT_FN_DECL_RE = re.compile(r"\bResult\s*<[^;{}()]*>\s+(\w+)\s*\(")
# Any function-shaped declaration: return-type tokens, optional class
# qualifiers, name, open paren. Used to find names that are ALSO declared with
# a non-Result return type — such ambiguous names are dropped from the rule,
# because a by-name checker cannot tell the overloads apart at the call site.
ANY_FN_DECL_RE = re.compile(
    r"(?:^|[;{}\n])\s*(?:static\s+|virtual\s+|inline\s+|constexpr\s+|explicit\s+|friend\s+)*"
    r"([A-Za-z_][\w:]*(?:\s*<[^;{}]*?>)?(?:\s*[*&])*)\s+"
    r"(?:[A-Za-z_]\w*\s*::\s*)*([A-Za-z_]\w*)\s*\("
)
DECL_KEYWORDS = {
    "return", "co_return", "co_await", "co_yield", "throw", "new", "delete",
    "else", "case", "goto", "using", "typedef", "namespace", "template",
    "public", "private", "protected", "operator", "sizeof", "alignof",
}


def scan_decls(clean, result_names, other_names):
    for m in RESULT_FN_DECL_RE.finditer(clean):
        result_names.add(m.group(1))
    for m in ANY_FN_DECL_RE.finditer(clean):
        ret, name = m.group(1), m.group(2)
        first_tok = re.match(r"[A-Za-z_][\w]*", ret)
        if first_tok and first_tok.group(0) in DECL_KEYWORDS:
            continue
        if "Result" not in ret:
            other_names.add(name)


def result_returning_functions(root):
    """Names unambiguously declared to return Result<...> (or
    CoTask<Result<...>>) across src/: names that also appear with a non-Result
    return type anywhere are excluded."""
    result_names, other_names = set(), set()
    src = os.path.join(root, "src")
    for dirpath, _dirs, files in os.walk(src):
        for f in files:
            if f.endswith(CPP_EXTS):
                try:
                    text = open(os.path.join(dirpath, f), encoding="utf-8", errors="replace").read()
                except OSError:
                    continue
                scan_decls(blank_comments_and_strings(text), result_names, other_names)
    return result_names - other_names


# '(' is deliberately absent: a *closed* paren group may be a call link in a
# receiver chain (`endpoint().unlink();`), which RECEIVER_RE judges; an
# unclosed one fails its fullmatch anyway.
STMT_PREFIX_EXCLUDE_RE = re.compile(
    r"[=,]|\breturn\b|\bco_return\b|\bco_yield\b|\bif\b|\bwhile\b|\bfor\b|\bswitch\b|\bcase\b"
)
# A pure receiver chain: `a.`, `x->y.`, `ns::obj->`, possibly templated, with
# at most one call link per segment (`endpoint().`, `mount(id)->`) whose
# arguments stay flat — nested parens or `;` mean we are not looking at a
# simple receiver anymore.
RECEIVER_RE = re.compile(
    r"(?:[A-Za-z_]\w*(?:\s*<[^<>;]*>)?(?:\s*\([^();]*\))?\s*(?:\.|->|::)\s*)+")
CONTROL_HEAD_RE = re.compile(r"(?:if|while|for|switch)\s*(?:constexpr\s*)?\(")


def close_of_paren(s, pos):
    """pos points at '('; returns the index one past its matching ')', or -1
    when the group does not close inside s."""
    depth = 0
    for i in range(pos, len(s)):
        if s[i] == "(":
            depth += 1
        elif s[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def peel_control_prefix(stripped):
    """Strips complete leading control clauses — `if (...)`, `while (...)`,
    `for (...)`, `switch (...)`, `else`, `do` — so that the call in
    `if (cached) co_await flush();` is judged as the statement it is. A clause
    whose parens do NOT close inside the prefix means the call sits in the
    condition itself (its value is used); the prefix is returned unpeeled and
    the caller's exclusion test rejects it."""
    while True:
        stripped = stripped.strip()
        m = CONTROL_HEAD_RE.match(stripped)
        if m:
            end = close_of_paren(stripped, m.end() - 1)
            if end < 0:
                return stripped
            stripped = stripped[end:]
            continue
        m = re.match(r"(?:else|do)\b", stripped)
        if m:
            stripped = stripped[m.end():]
            continue
        return stripped


def check_ignored_result(path, text, clean, result_fns):
    if not result_fns:
        return []
    out = []
    fn_alt = "|".join(sorted(re.escape(f) for f in result_fns))
    call_re = re.compile(rf"\b({fn_alt})\s*\(")
    for m in call_re.finditer(clean):
        # Find the start of the enclosing statement.
        stmt_start = max(clean.rfind(";", 0, m.start()), clean.rfind("{", 0, m.start()),
                         clean.rfind("}", 0, m.start())) + 1
        stripped = peel_control_prefix(clean[stmt_start : m.start()].strip())
        void_cast = False
        vm = re.match(r"\(\s*void\s*\)", stripped)
        if vm:
            void_cast = True
            stripped = stripped[vm.end():].strip()
        am = re.match(r"co_await\b", stripped)  # discarding an awaited Result
        if am:
            stripped = stripped[am.end():].strip()
        if STMT_PREFIX_EXCLUDE_RE.search(stripped):
            continue
        # Only bare calls and receiver chains; anything else (declarations,
        # comparisons, initialisers) is not a discarded call statement.
        if stripped and not RECEIVER_RE.fullmatch(stripped):
            continue
        call_end = skip_balanced(clean, m.end() - 1, "(", ")")
        tail = clean[call_end:].lstrip()
        if not tail.startswith(";"):
            continue  # chained: .value(), .ok(), operator*, ...
        what = "explicitly (void)-discarded" if void_cast else "silently ignored"
        out.append(
            Violation(
                path,
                line_of(clean, m.start()),
                "ignored-result",
                f"Result-returning call '{m.group(1)}(...)' {what}; check .ok() "
                "or propagate the Errno (suppress only with a lint allow comment)",
            )
        )
    return out


# `co_await <anything but a statement break> call(` — matches RpcEndpoint::call
# through any receiver chain (ep.call, ep->call, endpoint().call) but not the
# sanctioned wrappers (call_retry/call_with_deadline/call_target: `call` is
# not followed by `(` there).
RAW_RPC_RE = re.compile(r"\bco_await\b[^;]*?\bcall\s*\(")


def check_raw_rpc_call(path, text, clean):
    out = []
    for m in RAW_RPC_RE.finditer(clean):
        out.append(
            Violation(
                path,
                line_of(clean, m.start()),
                "raw-rpc-call",
                "raw RpcEndpoint::call in client code: no deadline, no retry, "
                "no eviction reporting; use call_with_deadline/call_retry/"
                "call_target (DaosClient)",
            )
        )
    return out


# The dispatch literal lives in the RAW text (string literals are blanked in
# `clean`), but structure scanning and the guard search use `clean` so that a
# comment merely mentioning ".contains(" never counts as a guard. Offsets are
# aligned: blanking preserves positions.
REBUILD_DISPATCH_RE = re.compile(r'==\s*"rebuild_done"')
REBUILD_GUARD_RE = re.compile(
    r"\.\s*insert\s*\([^;]*?\)\s*\.\s*second|\.\s*count\s*\(|\.\s*contains\s*\(")


def check_rebuild_idempotency(path, text, clean):
    """A `== "rebuild_done"` dispatch must guard its handler body against
    duplicate application: reports are retried on lost replies and re-driven
    tasks, so the same (engine, version) reaches the handler more than once."""
    out = []
    n = len(clean)
    for m in REBUILD_DISPATCH_RE.finditer(text):
        # Find the close of the enclosing if-condition: we are nested one
        # paren deep. Bail to a fixed window if the comparison turns out not
        # to sit inside parens (e.g. assigned to a flag dispatched elsewhere).
        pos, depth = m.end(), 1
        while pos < n and depth > 0 and clean[pos] not in ";{":
            if clean[pos] == "(":
                depth += 1
            elif clean[pos] == ")":
                depth -= 1
            pos += 1
        if depth == 0:
            while pos < n and clean[pos].isspace():
                pos += 1
            if pos < n and clean[pos] == "{":
                body = clean[pos : skip_balanced(clean, pos, "{", "}")]
            else:
                body = clean[pos : clean.find(";", pos) + 1]
        else:
            body = clean[m.end() : m.end() + 600]
        if not REBUILD_GUARD_RE.search(body):
            out.append(
                Violation(
                    path,
                    line_of(text, m.start()),
                    "rebuild-idempotency",
                    'the "rebuild_done" handler has no duplicate-apply guard: '
                    "retried reports double-count the engine; record done-set "
                    "membership via insert(..).second / count() / contains()",
                )
            )
    return out


# A per-extent RPC loop: the loop body both declares an object-I/O request
# (one extent each) and serializes it with Body::make — N extents become N
# RPCs, bypassing the client batcher. Loops that only *build* requests (and
# hand them to update_batch/fetch_batch for coalescing) don't call Body::make
# inside the loop and stay clean.
LOOP_HEAD_RE = re.compile(r"\b(?:for|while)\s*\(")
EXTENT_REQ_DECL_RE = re.compile(r"\bObj(?:Update|Fetch)Req\s+[A-Za-z_]\w*\s*[;{=]")
BODY_MAKE_RE = re.compile(r"\bBody\s*::\s*make\s*\(")


def check_unbatched_extent_rpc(path, text, clean):
    out = []
    for m in LOOP_HEAD_RE.finditer(clean):
        head_end = skip_balanced(clean, m.end() - 1, "(", ")")
        body_start = head_end
        while body_start < len(clean) and clean[body_start].isspace():
            body_start += 1
        if body_start < len(clean) and clean[body_start] == "{":
            body_end = skip_balanced(clean, body_start, "{", "}")
        else:
            body_end = clean.find(";", body_start) + 1
        body = clean[body_start:body_end]
        dm = EXTENT_REQ_DECL_RE.search(body)
        if dm and BODY_MAKE_RE.search(body):
            out.append(
                Violation(
                    path,
                    line_of(clean, m.start()),
                    "unbatched-extent-rpc",
                    "loop declares an ObjUpdateReq/ObjFetchReq and serializes it "
                    "with Body::make per iteration: one RPC per extent bypasses "
                    "the batcher; collect extents and go through ArrayObject's "
                    "update_batch/fetch_batch (ClientConfig::max_batch_extents)",
                )
            )
    return out


METRIC_TYPES = "Counter|Gauge|StatGauge|DurationHistogram|Probe"
# Value declaration (`telemetry::Counter x`), heap construction (`new
# telemetry::Counter`), or make_unique — each bypasses the registry. Pointer
# and reference declarations (`telemetry::Counter*`/`&`) and nested names
# (`telemetry::DurationHistogram::State`) don't match: the identifier must
# follow the type name directly.
UNTRACKED_METRIC_RE = re.compile(
    rf"\bnew\s+(?:daosim\s*::\s*)?telemetry\s*::\s*(?:{METRIC_TYPES})\b"
    rf"|make_unique\s*<\s*(?:daosim\s*::\s*)?telemetry\s*::\s*(?:{METRIC_TYPES})\s*>"
    rf"|\btelemetry\s*::\s*(?:{METRIC_TYPES})\s+[A-Za-z_]"
)


def check_untracked_metric(path, text, clean):
    out = []
    for m in UNTRACKED_METRIC_RE.finditer(clean):
        out.append(
            Violation(
                path,
                line_of(clean, m.start()),
                "untracked-metric",
                "telemetry node constructed outside a Registry: it has no path "
                "and never appears in a metrics dump; use "
                "Registry::find_or_create<T>(path) / add_probe and hold a pointer",
            )
        )
    return out


# The "map_query" string literal itself, matched in the RAW text (string
# literals are blanked in `clean`): the command only exists to be sent to the
# pool service, so quoting it in client code IS issuing the point query.
# Unquoted mentions in comments stay free. Shares the raw-rpc-call scope
# (src/client/); the refresh module owns the sanctioned fallback.
MAP_QUERY_RE = re.compile(r'"map_query')
MAP_QUERY_EXEMPT_SUFFIX = "client/refresh.cpp"


def check_direct_map_query(path, text, clean):
    if path.replace(os.sep, "/").endswith(MAP_QUERY_EXEMPT_SUFFIX):
        return []
    out = []
    for m in MAP_QUERY_RE.finditer(text):
        out.append(
            Violation(
                path,
                line_of(text, m.start()),
                "direct-map-query",
                "pool-map point query outside client/refresh.cpp: map_query "
                "hits the pool-service leader (O(clients) load per membership "
                "change); rely on the IV piggyback + delta fetch, or call "
                "refresh_pool_map() if the authoritative fallback is required",
            )
        )
    return out


# A handle bound from tx_begin(): `auto tx = cl.tx_begin(...)` or
# `TxHandle tx = tx_begin(...)`. The receiver chain mirrors RECEIVER_RE so
# `tb.client(0).tx_begin(...)` matches too. The *definition* of tx_begin
# (`TxHandle DaosClient::tx_begin(vos::Uuid cont)`) has no `=` before the name
# and never matches.
TX_BEGIN_ASSIGN_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*=\s*"
    r"(?:[A-Za-z_][\w:]*(?:\s*\([^();]*\))?\s*(?:\.|->|::)\s*)*"
    r"tx_begin\s*\(")


def enclosing_scope_end(clean, pos):
    """Index of the '}' closing the scope that contains pos (file end if the
    declaration sits at namespace level)."""
    depth = 0
    n = len(clean)
    while pos < n:
        c = clean[pos]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth < 0:
                return pos
        pos += 1
    return n


def check_tx_unresolved(path, text, clean):
    """Every tx_begin() handle must reach a co_await'ed commit()/abort() (or
    escape the scope via return/std::move) before its scope closes. A handle
    that silently dies leaves prepared-but-undecided DTX entries on every
    participating shard: readers conflict against them and aggregation stalls
    until the server-side orphan reaper ages them out."""
    out = []
    for m in TX_BEGIN_ASSIGN_RE.finditer(clean):
        name = m.group(1)
        scope = clean[m.end():enclosing_scope_end(clean, m.end())]
        # Resolution: the handle's commit/abort awaited somewhere in the rest
        # of the scope. A bare `tx.commit();` without co_await does NOT count:
        # it discards the CoTask and the RPCs never run.
        resolved = re.search(
            rf"\bco_await\b[^;]*\b{re.escape(name)}\s*\.\s*(?:commit|abort)\s*\(",
            scope)
        # Escape: ownership moves out of this scope; resolution is the
        # recipient's job.
        escaped = re.search(
            rf"\b(?:co_)?return\s+(?:std\s*::\s*move\s*\(\s*)?{re.escape(name)}\b"
            rf"|std\s*::\s*move\s*\(\s*{re.escape(name)}\s*\)",
            scope)
        if not resolved and not escaped:
            out.append(
                Violation(
                    path,
                    line_of(clean, m.start()),
                    "tx-unresolved",
                    f"TxHandle '{name}' from tx_begin() is never resolved: no "
                    "co_await'ed .commit()/.abort() before end of scope; the "
                    "prepared entries block conflicting writers and pin "
                    "aggregation until the orphan reaper aborts them",
                )
            )
    return out


# A TraceContext brace-literal with members: `TraceContext{a, b, c}` or a
# declaration `TraceContext ctx{a, ...}`. Only sim/scheduler.hpp (where
# root()/child() live) may spell the triple out; everyone else either forwards
# a context they were handed, derives one with ctx.child(alloc_span_id()), or
# starts a protocol trace with TraceContext::root(alloc_span_id()). The empty
# `TraceContext{}` is the inactive context and stays free.
ORPHAN_SPAN_RE = re.compile(
    r"(?<!struct )(?<!class )\bTraceContext\s*(?:[A-Za-z_]\w*\s*)?\{\s*[^}\s]")
ORPHAN_SPAN_EXEMPT_PREFIX = "src/sim/"


def check_orphan_span(path, text, clean):
    if path.replace(os.sep, "/").startswith(ORPHAN_SPAN_EXEMPT_PREFIX):
        return []
    out = []
    for m in ORPHAN_SPAN_RE.finditer(clean):
        out.append(
            Violation(
                path,
                line_of(clean, m.start()),
                "orphan-span",
                "hand-rolled TraceContext literal: span ids minted outside "
                "Scheduler::alloc_span_id() collide or parent nothing, and the "
                "trace analyzer rejects the orphan; use "
                "TraceContext::root(alloc_span_id()) or ctx.child(alloc_span_id())",
            )
        )
    return out


# Any suppression marker, from either tool, line- or file-scoped. Group 1 is
# the tool, group 2 the optional "-file", group 3 the rule list, and the
# justification (": <reason>") is judged from the text that follows.
ALLOW_MARKER_RE = re.compile(r"daosim-(lint|check):\s*allow(-file)?\(([^)\n]*)\)")


def check_unjustified_allow(path, text, clean):
    """Every allow marker asserts the checker is wrong on that line; the
    assertion must carry a reason and name a rule that exists. Scans the raw
    text: markers live in comments, which `clean` blanks out."""
    out = []
    for m in ALLOW_MARKER_RE.finditer(text):
        tool = m.group(1)
        marker = f"daosim-{tool}: allow{m.group(2) or ''}(...)"
        known = RULES if tool == "lint" else CHECK_RULES
        names = [r.strip() for r in m.group(3).split(",")]
        line = line_of(text, m.start())
        for name in names:
            if name and name not in known:
                out.append(
                    Violation(
                        path, line, "unjustified-allow",
                        f"{marker} names unknown rule '{name}': it suppresses "
                        "nothing (known: " + ", ".join(known) + ")",
                    )
                )
        if not any(names):
            out.append(
                Violation(
                    path, line, "unjustified-allow",
                    f"{marker} lists no rule: it suppresses nothing",
                )
            )
        rest_of_line = text[m.end():].split("\n", 1)[0]
        if not re.match(r"\s*:\s*\S", rest_of_line):
            out.append(
                Violation(
                    path, line, "unjustified-allow",
                    f"{marker} has no justification: write "
                    f"allow(<rule>): <why this specific line is safe>",
                )
            )
    return out


# ----------------------------------------------------------- driver ----


def lint_file(path, rel, result_fns, wall_clock_scope, raw_rpc_scope=False,
              untracked_metric_scope=True):
    try:
        text = open(path, encoding="utf-8", errors="replace").read()
    except OSError as e:
        return [Violation(rel, 1, "io", str(e))]
    clean = blank_comments_and_strings(text)
    violations = []
    violations += check_spawn_temporary(rel, text, clean)
    if wall_clock_scope:
        violations += check_wall_clock(rel, text, clean)
    violations += check_unordered_iteration(rel, text, clean)
    violations += check_ignored_result(rel, text, clean, result_fns)
    if raw_rpc_scope:
        violations += check_raw_rpc_call(rel, text, clean)
        violations += check_unbatched_extent_rpc(rel, text, clean)
        violations += check_direct_map_query(rel, text, clean)
    violations += check_rebuild_idempotency(rel, text, clean)
    violations += check_tx_unresolved(rel, text, clean)
    violations += check_orphan_span(rel, text, clean)
    if untracked_metric_scope:
        violations += check_untracked_metric(rel, text, clean)
    violations += check_unjustified_allow(rel, text, clean)

    # Apply suppressions from the original text (comments live there).
    file_allows = set()
    for m in ALLOW_FILE_RE.finditer(text):
        file_allows.update(r.strip() for r in m.group(1).split(","))
    lines = text.split("\n")
    kept = []
    for v in violations:
        if v.rule in file_allows:
            continue
        line_txt = lines[v.line - 1] if v.line - 1 < len(lines) else ""
        am = ALLOW_LINE_RE.search(line_txt)
        if am and v.rule in {r.strip() for r in am.group(1).split(",")}:
            continue
        kept.append(v)
    return kept


def iter_tree_files(root):
    for top in TREE_DIRS:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirs, files in os.walk(base):
            dirs[:] = [d for d in dirs if not d.startswith(("build", "."))]
            for f in sorted(files):
                if f.endswith(CPP_EXTS):
                    full = os.path.join(dirpath, f)
                    rel = os.path.relpath(full, root)
                    posix_rel = rel.replace(os.sep, "/")
                    rpc = posix_rel.startswith(tuple(d + "/" for d in RAW_RPC_DIRS))
                    untracked = not posix_rel.startswith(
                        tuple(d + "/" for d in UNTRACKED_METRIC_EXCLUDE))
                    yield full, rel, top in WALL_CLOCK_DIRS, rpc, untracked


def run_tree(root, quiet):
    result_fns = result_returning_functions(root)
    violations = []
    nfiles = 0
    for full, rel, wall, rpc, untracked in iter_tree_files(root):
        nfiles += 1
        violations.extend(lint_file(full, rel, result_fns, wall, rpc, untracked))
    for v in violations:
        print(v)
    if nfiles == 0:
        # A typo'd --root must not read as a clean scan.
        print(f"daosim-lint: error: no C++ files found under {root!r} "
              f"(expected subdirectories: {', '.join(TREE_DIRS)})", file=sys.stderr)
        return 2
    if not quiet:
        print(f"daosim-lint: {nfiles} files, {len(violations)} violation(s)", file=sys.stderr)
    return 1 if violations else 0


EXPECT_RE = re.compile(r"//\s*EXPECT-LINT:\s*([\w-]+)")


def run_self_test(root):
    """Each selftest fixture seeds violations and annotates the offending lines
    with  // EXPECT-LINT: <rule>.  The fixture set must produce exactly the
    annotated findings — nothing more, nothing less — proving every rule both
    fires and stays quiet."""
    fixture_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "selftest")
    # Fixtures play the role of src/ files: wall-clock in scope. Result-returning
    # names come from the fixtures themselves (same ambiguity subtraction as the
    # real tree scan).
    result_names, other_names = set(), set()
    for dirpath, _dirs, files in os.walk(fixture_dir):
        for f in files:
            if f.endswith(CPP_EXTS):
                text = open(os.path.join(dirpath, f), encoding="utf-8", errors="replace").read()
                scan_decls(blank_comments_and_strings(text), result_names, other_names)
    result_fns = result_names - other_names

    failures = []
    total_expected = 0
    covered = set()  # lint rules with at least one seeded fixture
    for dirpath, _dirs, files in os.walk(fixture_dir):
        for f in sorted(files):
            if not f.endswith(CPP_EXTS):
                continue
            full = os.path.join(dirpath, f)
            rel = os.path.relpath(full, fixture_dir)
            text = open(full, encoding="utf-8", errors="replace").read()
            expected = {}  # (line, rule) -> count
            for i, line in enumerate(text.split("\n"), start=1):
                for em in EXPECT_RE.finditer(line):
                    expected[(i, em.group(1))] = expected.get((i, em.group(1)), 0) + 1
                    total_expected += 1
                    covered.add(em.group(1))
            got = {}
            for v in lint_file(full, rel, result_fns, wall_clock_scope=True,
                               raw_rpc_scope=True):
                got[(v.line, v.rule)] = got.get((v.line, v.rule), 0) + 1
            for key, cnt in expected.items():
                if got.get(key, 0) < cnt:
                    failures.append(f"{rel}:{key[0]}: expected [{key[1]}] but the rule did not fire")
            for key, cnt in got.items():
                if expected.get(key, 0) < cnt:
                    failures.append(f"{rel}:{key[0]}: unexpected [{key[1]}] finding")

    # Meta-check: a rule without a seeded fixture is a rule nobody has proven
    # fires. Covers this linter's RULES (via EXPECT-LINT above) and the
    # analyzer's CHECK_RULES (via EXPECT-CHECK markers in its fixtures, read
    # textually so the check runs even on hosts without libclang).
    for rule in RULES:
        if rule not in covered:
            failures.append(
                f"selftest/: lint rule [{rule}] has no seeded fixture; add one "
                "with an EXPECT-LINT line")
    analyze_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               os.pardir, "analyze", "selftest")
    check_covered = set()
    check_expect_re = re.compile(r"//\s*EXPECT-CHECK:\s*([\w-]+)")
    if os.path.isdir(analyze_dir):
        for f in sorted(os.listdir(analyze_dir)):
            if f.endswith(CPP_EXTS):
                text = open(os.path.join(analyze_dir, f), encoding="utf-8",
                            errors="replace").read()
                check_covered.update(m.group(1) for m in check_expect_re.finditer(text))
    for rule in CHECK_RULES:
        if rule not in check_covered:
            failures.append(
                f"../analyze/selftest/: analyzer rule [{rule}] has no seeded "
                "fixture; add one with an EXPECT-CHECK line")
    for rule in sorted(check_covered - set(CHECK_RULES)):
        failures.append(
            f"../analyze/selftest/: EXPECT-CHECK names [{rule}], which is not "
            "in CHECK_RULES; update the lists together")

    for msg in failures:
        print(msg)
    print(
        f"daosim-lint self-test: {total_expected} seeded violations, "
        f"{len(failures)} mismatch(es)",
        file=sys.stderr,
    )
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    ap.add_argument("--self-test", action="store_true", help="run the seeded-violation fixtures")
    ap.add_argument("--quiet", action="store_true", help="suppress the summary line")
    args = ap.parse_args()
    if args.self_test:
        return run_self_test(os.path.abspath(args.root))
    return run_tree(os.path.abspath(args.root), args.quiet)


if __name__ == "__main__":
    sys.exit(main())
