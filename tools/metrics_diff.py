#!/usr/bin/env python3
"""metrics_diff: compare two daosim metrics JSON dumps (ior_cli --metrics-dump,
Testbed::dump_metrics).

Reports, in sorted path order:
  + <path>              metric present only in the second dump
  - <path>              metric present only in the first dump
  ~ <path> field: a -> b (+x%)   changed field value (percent delta for
                                 numeric fields, against the first dump)
  ~ <path> buckets[k] [lo, hi) ns: a -> b (+x%)
                        histogram bucket vectors are diffed element-wise
                        (bucket k counts durations with bit_width k), so a
                        p50/p99 shift is explainable bucket by bucket

Exit status: 0 when the dumps are identical, 1 when they differ, 2 on a
usage/parse error — so a determinism harness can assert `metrics_diff a b`
succeeds on same-seed runs and fails when something drifted.

Usage:
  metrics_diff.py A.json B.json [--ignore-kinds probe] [--quiet]
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"metrics_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        print(f"metrics_diff: {path}: expected a JSON object of path -> fields",
              file=sys.stderr)
        sys.exit(2)
    return doc


def fmt_delta(old, new):
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if old != 0:
            return f" ({(new - old) / old * 100.0:+.1f}%)"
        return " (new from zero)" if new != 0 else ""
    return ""


def diff_buckets(path, old, new):
    """Element-wise diff of two DurationHistogram bucket vectors; returns the
    number of changed buckets. Bucket k counts durations with bit_width k,
    i.e. [2^(k-1), 2^k) ns (bucket 0 is the zero-duration bucket); the dumps
    trim trailing zero buckets, so the vectors may differ in length."""
    changed = 0
    for k in range(max(len(old), len(new))):
        ca = old[k] if k < len(old) else 0
        cb = new[k] if k < len(new) else 0
        if ca == cb:
            continue
        changed += 1
        lo, hi = (0, 1) if k == 0 else (1 << (k - 1), 1 << k)
        print(f"~ {path} buckets[{k}] [{lo}, {hi}) ns: {ca} -> {cb}{fmt_delta(ca, cb)}")
    return changed


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("first")
    ap.add_argument("second")
    ap.add_argument("--ignore-kinds", default="",
                    help="comma-separated node kinds to skip (e.g. probe,gauge)")
    ap.add_argument("--quiet", action="store_true", help="suppress the summary line")
    args = ap.parse_args()

    a = load(args.first)
    b = load(args.second)
    ignored = {k.strip() for k in args.ignore_kinds.split(",") if k.strip()}

    def kept(doc):
        return {p: v for p, v in doc.items()
                if not (isinstance(v, dict) and v.get("kind") in ignored)}

    a, b = kept(a), kept(b)
    added = sorted(set(b) - set(a))
    removed = sorted(set(a) - set(b))
    changed = 0

    for p in removed:
        print(f"- {p}")
    for p in added:
        print(f"+ {p}")
    for p in sorted(set(a) & set(b)):
        va, vb = a[p], b[p]
        if va == vb:
            continue
        if not (isinstance(va, dict) and isinstance(vb, dict)):
            changed += 1
            print(f"~ {p}: {va!r} -> {vb!r}")
            continue
        for field in sorted(set(va) | set(vb)):
            fa, fb = va.get(field), vb.get(field)
            if fa == fb:
                continue
            if field == "buckets" and isinstance(fa, list) and isinstance(fb, list):
                changed += diff_buckets(p, fa, fb)
                continue
            changed += 1
            print(f"~ {p} {field}: {fa} -> {fb}{fmt_delta(fa, fb)}")

    ndiff = len(added) + len(removed) + changed
    if not args.quiet:
        print(f"metrics_diff: {len(added)} added, {len(removed)} removed, "
              f"{changed} changed field(s)", file=sys.stderr)
    return 1 if ndiff else 0


if __name__ == "__main__":
    sys.exit(main())
