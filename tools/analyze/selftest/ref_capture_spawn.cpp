// Seeded violations for [ref-capture-spawn]: by-reference and `this` lambda
// captures handed to spawn(), whose frames detach and can outlive the scope.
#include "check_support.hpp"

CoTask<void> idle() { co_await suspend(); }

void bad_ref_capture(Scheduler& sched) {
  int local = 0;
  sched.spawn([&local]() -> CoTask<void> {  // EXPECT-CHECK: ref-capture-spawn
    use(local);
    co_await suspend();
  }());
}

void bad_default_ref(Scheduler& sched) {
  int local = 0;
  sched.spawn([&]() -> CoTask<void> {  // EXPECT-CHECK: ref-capture-spawn
    use(local);
    co_await suspend();
  }());
}

struct Service {
  void bad_this_capture() {
    sched.spawn([this]() -> CoTask<void> {  // EXPECT-CHECK: ref-capture-spawn
      use(counter);
      co_await suspend();
    }());
  }

  // By-value captures (including an init-capture whose initializer merely
  // takes an address) do not detach a dangling reference.
  void good_value_capture() {
    int local = 7;
    sched.spawn([local, copy = counter]() -> CoTask<void> {
      use(local);
      use(copy);
      co_await suspend();
    }());
  }

  Scheduler sched;
  int counter = 0;
};

// Spawning a named coroutine (no lambda at all) is the common good shape.
void good_spawn_task(Scheduler& sched) { sched.spawn(idle()); }
