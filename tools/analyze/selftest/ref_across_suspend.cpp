// Seeded violations for [ref-across-suspend]: container-lookup results that
// stay live across a co_await. Each EXPECT-CHECK line must be reported by
// daosim_check.py --self-test; unmarked code must stay finding-free.
#include "check_support.hpp"

// An iterator from find() survives a suspension: the map can rehash/erase
// while the frame is parked.
CoTask<void> bad_iterator(std::map<int, int>& table) {
  auto it = table.find(1);  // EXPECT-CHECK: ref-across-suspend
  co_await suspend();
  use(it->second);
}

// Same defect through a pointer taken from an unordered container, where the
// canonical-type check must see through `auto`.
CoTask<void> bad_pointer(std::unordered_map<int, int>& table) {
  auto* slot = &table.at(2);  // EXPECT-CHECK: ref-across-suspend
  co_await suspend();
  use(slot);
}

// The fix shape: copy the value out before suspending.
CoTask<void> good_copy(std::map<int, int>& table) {
  int value = 0;
  if (auto it = table.find(1); it != table.end()) value = it->second;
  co_await suspend();
  use(value);
}

// Lookup placed after the last suspension is fine.
CoTask<void> good_lookup_after(std::map<int, int>& table) {
  co_await suspend();
  auto it = table.find(1);
  if (it != table.end()) use(it->second);
}

// Suppression grammar: the allow() marker on the reported line silences the
// finding (self-test fails with "unexpected finding" if it ever stops doing
// so).
CoTask<void> suppressed(std::map<int, int>& table) {
  auto it = table.find(3);  // daosim-check: allow(ref-across-suspend): fixture exercises the suppression path
  co_await suspend();
  use(it->second);
}
