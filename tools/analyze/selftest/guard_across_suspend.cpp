// Seeded violations for [guard-across-suspend]: host RAII locks held across
// co_await. Under cooperative single-threaded scheduling the second frame
// touching the mutex deadlocks the process instead of suspending.
#include "check_support.hpp"

CoTask<void> bad_lock_guard(std::mutex& m) {
  std::lock_guard<std::mutex> hold(m);  // EXPECT-CHECK: guard-across-suspend
  co_await suspend();
}

CoTask<void> bad_unique_lock(std::mutex& m) {
  std::unique_lock<std::mutex> hold(m);  // EXPECT-CHECK: guard-across-suspend
  co_await suspend();
  hold.unlock();
}

// Scoping the guard so it releases before the suspension is the fix (when the
// critical section really is synchronous).
CoTask<void> good_scoped_release(std::mutex& m, int& counter) {
  {
    std::lock_guard<std::mutex> hold(m);
    ++counter;
  }
  co_await suspend();
}

// A guard in a coroutine with no suspension in scope is plain RAII.
CoTask<void> good_no_suspend_in_scope(std::mutex& m, int& counter) {
  co_await suspend();
  std::lock_guard<std::mutex> hold(m);
  ++counter;
}
