// Seeded violations for [unordered-source-of-order]: range-for over an
// unordered container whose body schedules work. Hash order is
// address-dependent, so it must never feed the event queue. The rule checks
// the range's canonical type, so aliases and `auto` cannot hide the hazard
// from it the way they do from the regex linter.
#include "check_support.hpp"

CoTask<void> ping(int) { co_await suspend(); }

void bad_spawn_in_hash_order(Scheduler& sched, std::unordered_map<int, int>& peers) {
  for (const auto& [id, state] : peers) {  // EXPECT-CHECK: unordered-source-of-order
    sched.spawn(ping(id));
  }
}

// The alias case the regex linter cannot see: canonical type is still
// std::unordered_map.
using PeerTable = std::unordered_map<int, int>;

void bad_alias_hides_hash(Scheduler& sched, PeerTable& peers) {
  for (const auto& [id, state] : peers) {  // EXPECT-CHECK: unordered-source-of-order
    sched.spawn(ping(id));
  }
}

CoTask<void> bad_await_in_hash_order(std::unordered_map<int, int>& peers) {
  for (const auto& [id, state] : peers) {  // EXPECT-CHECK: unordered-source-of-order
    co_await ping(id);
  }
}

// Pure aggregation over a hash map is fine: no ordering escapes.
int good_pure_aggregation(const std::unordered_map<int, int>& peers) {
  int total = 0;
  for (const auto& [id, state] : peers) total += state;
  return total;
}

// An ordered map is a legitimate source of order.
void good_ordered_map(Scheduler& sched, std::map<int, int>& peers) {
  for (const auto& [id, state] : peers) {
    sched.spawn(ping(id));
  }
}
