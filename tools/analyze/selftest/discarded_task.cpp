// Seeded violations for [discarded-task]: CoTask values created and then
// dropped. CoTask is lazily started, so a discarded task is work that
// silently never runs.
#include "check_support.hpp"

CoTask<int> work() { co_return 42; }

// A bare call statement drops the task on the floor.
CoTask<void> bad_bare_call() {
  work();  // EXPECT-CHECK: discarded-task
  co_await suspend();
}

// (void)-casting does not make the discard any less of a bug.
CoTask<void> bad_void_cast() {
  (void)work();  // EXPECT-CHECK: discarded-task
  co_await suspend();
}

// A task bound to a local that is never awaited, spawned, or moved.
CoTask<void> bad_unused_local() {
  CoTask<int> pending = work();  // EXPECT-CHECK: discarded-task
  co_await suspend();
}

// The good shapes: await it, hand it to the scheduler, or move it onward.
CoTask<void> good_awaited() {
  int v = co_await work();
  use(v);
}

void good_spawned(Scheduler& sched) {
  sched.spawn([]() -> CoTask<void> { co_await work(); }());
}

CoTask<void> good_moved_local(Scheduler& sched) {
  CoTask<int> pending = work();
  int v = co_await std::move(pending);
  use(v);
}
