// Minimal coroutine scaffolding for the daosim-check seeded-violation
// fixtures. The analyzer matches on canonical type spellings (std::map,
// std::unordered_map, std::lock_guard, CoTask<...>) and on member names
// (find/at/begin/spawn), so the fixtures use the real standard containers and
// a purpose-built CoTask just rich enough to make each fixture a valid C++20
// translation unit. Keep this header finding-free: self-test fixtures assert
// an exact finding set and anything flagged here would show up as noise.
#pragma once

#include <coroutine>
#include <map>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>

template <typename T>
struct CoTask;

namespace detail {

template <typename T>
struct Promise {
  CoTask<T> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  std::suspend_always final_suspend() noexcept { return {}; }
  void return_value(T) {}
  void unhandled_exception() {}
};

template <>
struct Promise<void> {
  CoTask<void> get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }
  std::suspend_always final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() {}
};

}  // namespace detail

template <typename T>
struct CoTask {
  using promise_type = detail::Promise<T>;

  explicit CoTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  CoTask(CoTask&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  CoTask(const CoTask&) = delete;
  ~CoTask() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) noexcept {}
  T await_resume() {
    if constexpr (!std::is_void_v<T>) return T{};
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

template <typename T>
CoTask<T> Promise<T>::get_return_object() {
  return CoTask<T>{std::coroutine_handle<Promise<T>>::from_promise(*this)};
}

inline CoTask<void> Promise<void>::get_return_object() {
  return CoTask<void>{std::coroutine_handle<Promise<void>>::from_promise(*this)};
}

}  // namespace detail

/// A bare suspension point: co_await suspend() parks the frame.
struct SuspendAwaiter {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<>) noexcept {}
  void await_resume() const noexcept {}
};

inline SuspendAwaiter suspend() { return {}; }

/// Stand-in for sim::Scheduler: owns detached frames handed to spawn().
struct Scheduler {
  void spawn(CoTask<void>&&) {}
  template <typename F>
  void spawn(F&&) {}
};

inline void use(int) {}
inline void use(const int*) {}
