#!/usr/bin/env python3
"""daosim-check: libclang-based suspension-safety and determinism analyzer.

daosim-lint (tools/lint) is a fast regex pass; this tool parses real
translation units through CMake's compile_commands.json and walks coroutine
bodies with cursor-level precision, so its facts are AST facts: canonical
types (aliases and `auto` resolved), real declarations and uses, real lambda
capture lists, and real `co_await` suspension points from the token stream.

The simulator's core claim is determinism under cooperative coroutine
scheduling: one seed, one virtual-time trace. The rules ban the lifetime and
ordering mistakes that survive a regex but not a suspension:

  ref-across-suspend    A reference, pointer, or iterator derived from a
                        container lookup (find/at/operator[]/begin/...) that
                        is still used after a later `co_await` in the same
                        scope. While the frame is suspended another coroutine
                        can insert/erase/rehash the container; the resumed
                        frame then touches freed or relocated memory. This is
                        the PR-1 ASan class (H5File::open_dataset held a
                        shadow-map iterator across a pread) and this PR's
                        DfuseMount class (fd-table iterator across a DFS
                        write racing close()). Copy the value, pin shared
                        ownership, or re-look-up after resuming.
  ref-capture-spawn     A lambda handed to Scheduler::spawn / WaitGroup::spawn
                        that captures by reference or captures `this`. The
                        spawned frame is detached: it can outlive the scope
                        that owns the captured objects. Capture by value, or
                        suppress with a justification naming why the referent
                        provably outlives the frame.
  guard-across-suspend  A host RAII lock (std::lock_guard / unique_lock /
                        scoped_lock / shared_lock) held across `co_await`.
                        The simulation is single-threaded and cooperative: a
                        second coroutine resuming on the same OS thread and
                        touching the same mutex deadlocks the process. Use
                        sim::Mutex + sim::ScopedLock, which suspend instead
                        of blocking.
  discarded-task        A sim::CoTask created and never co_awaited, spawned,
                        or stored for later use — also `(void)`-casts of a
                        task. CoTask is lazily started: a dropped task is
                        work that silently never ran.
  unordered-source-of-order  Range-for over a std::unordered_{map,set,...}
                        (checked on the range's *canonical* type, so aliases
                        and `auto&` count) whose body schedules work (spawn /
                        schedule / resume / co_await). Hash order is
                        address-dependent; feeding it into the event queue
                        makes traces machine-dependent. Iterate a sorted
                        snapshot instead. This is the AST-accurate
                        replacement for daosim-lint's regex rule.

Suppression: append  // daosim-check: allow(<rule>): <reason>  to the line
the finding is reported on, or put  // daosim-check: allow-file(<rule>): <reason>
anywhere in the file. daosim-lint's `unjustified-allow` rule enforces that
the reason is present.

Usage:
  daosim_check.py --root <repo> [--build <dir>] [--require] [--quiet]
      Analyze every src/ translation unit listed in the build directory's
      compile_commands.json (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON,
      which this repo's CMakeLists sets by default). Exit 1 on findings.
  daosim_check.py --self-test [--require]
      Parse the seeded-violation fixtures under selftest/ and require the
      findings to match their // EXPECT-CHECK annotations exactly; also
      require every rule to be covered by at least one fixture.

Without libclang + the clang.cindex Python bindings the tool prints a SKIP
notice and exits 0 so local tier-1 runs stay green; pass --require (the CI
analyze stage does) to turn a missing toolchain into a failure.
"""

import argparse
import glob
import json
import os
import re
import shlex
import sys

RULES = (
    "ref-across-suspend",
    "ref-capture-spawn",
    "guard-across-suspend",
    "discarded-task",
    "unordered-source-of-order",
)

ALLOW_LINE_RE = re.compile(r"daosim-check:\s*allow\(([\w,\s-]+)\)")
ALLOW_FILE_RE = re.compile(r"daosim-check:\s*allow-file\(([\w,\s-]+)\)")
EXPECT_RE = re.compile(r"//\s*EXPECT-CHECK:\s*([\w-]+)")

# Lookups whose result points into the container's node storage only when the
# receiver is an associative container (references survive a vector push_back
# until reallocation, but map/set lookups are the class that bit us).
MAP_LOOKUPS = frozenset(
    ("find", "at", "operator[]", "lower_bound", "upper_bound", "equal_range",
     "emplace", "try_emplace", "insert"))
# Iterator/element accessors that pin container internals for any container.
ANY_LOOKUPS = frozenset(
    ("begin", "end", "cbegin", "cend", "rbegin", "rend", "crbegin", "crend",
     "front", "back", "data", "c_str"))

MAPLIKE_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:multi)?(?:map|set)\s*<")
CONTAINERISH_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:multi)?(?:map|set)\s*<"
    r"|\bstd::(?:vector|deque|list|array|basic_string|span)\s*<")
UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<")
GUARD_RE = re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\s*<")
TASK_RE = re.compile(r"\bCoTask\s*<")
SPAWN_SINKS = frozenset(("spawn",))
SCHEDULING_TOKENS = frozenset(("spawn", "schedule", "schedule_callback", "resume", "co_await"))


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule, self.message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ------------------------------------------------------------ toolchain ----


def load_cindex():
    """Returns (cindex_module, Index) or (None, reason)."""
    try:
        from clang import cindex  # python3-clang / pip libclang
    except ImportError:
        return None, "python bindings not importable (apt: python3-clang, pip: libclang)"
    if cindex.Config.library_file is None and cindex.Config.library_path is None:
        import ctypes.util
        if ctypes.util.find_library("clang") is None:
            candidates = sorted(
                glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*")
                + glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
                + glob.glob("/usr/lib/*/libclang-*.so*")
                + glob.glob("/usr/lib/*/libclang.so*"),
                reverse=True)
            import ctypes
            for cand in candidates:
                try:
                    ctypes.CDLL(cand)
                except OSError:
                    continue
                cindex.Config.set_library_file(cand)
                break
    try:
        index = cindex.Index.create()
    except Exception as e:  # LibclangError: no loadable libclang anywhere
        return None, f"libclang shared library unavailable ({e})"
    return (cindex, index), None


# ------------------------------------------------- compile_commands.json ----


def find_build_dir(root, build):
    if build:
        return build if os.path.isfile(os.path.join(build, "compile_commands.json")) else None
    for d in sorted(glob.glob(os.path.join(root, "build*"))):
        if os.path.isfile(os.path.join(d, "compile_commands.json")):
            return d
    return None


def sanitize_args(raw, directory):
    """Keep only include paths, defines and the language standard: the rest of
    a GCC command line (warnings, sanitizers, -o, codegen flags) is noise that
    libclang may not accept."""
    keep = []
    it = iter(raw)
    for a in it:
        if a in ("-I", "-isystem", "-iquote", "-D", "-U", "-include"):
            nxt = next(it, None)
            if nxt is None:
                break
            if a in ("-I", "-isystem", "-iquote", "-include") and not os.path.isabs(nxt):
                nxt = os.path.normpath(os.path.join(directory, nxt))
            keep += [a, nxt]
        elif a.startswith(("-I", "-D", "-U")) and len(a) > 2:
            flag, val = a[:2], a[2:]
            if flag == "-I" and not os.path.isabs(val):
                val = os.path.normpath(os.path.join(directory, val))
            keep.append(flag + val)
        elif a.startswith(("-isystem", "-iquote")) and len(a) > 8:
            keep.append(a)
        elif a.startswith("-std="):
            keep.append(a)
    if not any(a.startswith("-std=") for a in keep):
        keep.append("-std=c++20")
    return keep


def src_translation_units(root, build_dir):
    """Sorted [(source_path, parse_args)] for TUs under <root>/src."""
    with open(os.path.join(build_dir, "compile_commands.json"), encoding="utf-8") as f:
        data = json.load(f)
    src_prefix = os.path.join(os.path.realpath(root), "src") + os.sep
    out = {}
    for entry in data:
        path = entry["file"]
        if not os.path.isabs(path):
            path = os.path.normpath(os.path.join(entry["directory"], path))
        path = os.path.realpath(path)
        if not path.startswith(src_prefix):
            continue
        raw = entry.get("arguments") or shlex.split(entry["command"])
        out[path] = sanitize_args(raw[1:], entry["directory"])
    return sorted(out.items())


# ------------------------------------------------------------- analysis ----


class Analyzer:
    """Per-process analysis state: rule drivers plus finding collection."""

    def __init__(self, cindex, root):
        self.ci = cindex
        self.root = os.path.realpath(root)
        self.findings = {}  # key -> Finding (dedup across TUs sharing headers)
        self.files_seen = set()

    # -- cursor helpers ----------------------------------------------------

    def in_scope_file(self, cursor, scope_prefixes):
        loc = cursor.location
        if loc.file is None:
            return None
        path = os.path.realpath(loc.file.name)
        if not path.startswith(self.root + os.sep):
            return None
        rel = os.path.relpath(path, self.root).replace(os.sep, "/")
        if scope_prefixes and not rel.startswith(scope_prefixes):
            return None
        return rel

    def function_units(self, tu, scope_prefixes):
        """Yields (rel_path, fn_cursor, body_cursor) for every function,
        method, and lambda definition in project files. Lambdas are their own
        units: a co_await inside a nested lambda suspends the lambda's frame,
        not the enclosing function's."""
        ck = self.ci.CursorKind
        fn_kinds = {ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                    ck.DESTRUCTOR, ck.CONVERSION_FUNCTION, ck.FUNCTION_TEMPLATE,
                    ck.LAMBDA_EXPR}
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind not in fn_kinds:
                continue
            if cursor.kind != ck.LAMBDA_EXPR and not cursor.is_definition():
                continue
            rel = self.in_scope_file(cursor, scope_prefixes)
            if rel is None:
                continue
            body = None
            for child in cursor.get_children():
                if child.kind == ck.COMPOUND_STMT:
                    body = child
            if body is not None:
                yield rel, cursor, body

    def walk_pruned(self, cursor):
        """Preorder walk that yields lambdas but does not descend into them:
        their bodies belong to their own unit."""
        ck = self.ci.CursorKind
        stack = [cursor]
        while stack:
            c = stack.pop()
            yield c
            if c is not cursor and c.kind == ck.LAMBDA_EXPR:
                continue
            stack.extend(reversed(list(c.get_children())))

    def lambda_extents(self, body):
        ck = self.ci.CursorKind
        out = []
        for c in self.walk_pruned(body):
            if c is not body and c.kind == ck.LAMBDA_EXPR:
                ext = c.extent
                out.append((ext.start.offset, ext.end.offset))
        return out

    def suspend_points(self, body, holes):
        """(offset, line) of every co_await keyword in the unit's own body —
        token-stream accurate, so strings and comments never match — with
        nested-lambda extents (`holes`) excluded."""
        points = []
        for tok in body.get_tokens():
            if tok.spelling != "co_await":
                continue
            off = tok.extent.start.offset
            if any(a <= off < b for a, b in holes):
                continue
            points.append((off, tok.location.line))
        return points

    def compound_extents(self, body):
        ck = self.ci.CursorKind
        out = []
        for c in self.walk_pruned(body):
            if c.kind == ck.COMPOUND_STMT:
                out.append((c.extent.start.offset, c.extent.end.offset))
        return out

    def enclosing_scope(self, compounds, offset):
        best = None
        for a, b in compounds:
            if a <= offset < b and (best is None or (a, -b) > best[:2]):
                best = (a, -b, b)
        return (best[0], best[2]) if best else None

    def canonical(self, type_obj):
        try:
            return type_obj.get_canonical().spelling
        except Exception:
            return ""

    def report(self, rel, line, rule, message):
        f = Finding(rel, line, rule, message)
        self.findings.setdefault(f.key(), f)
        self.files_seen.add(rel)

    # -- rules -------------------------------------------------------------

    def lookup_origin(self, var_cursor):
        """If the declaration's initializer contains a container lookup call,
        returns the lookup's member name, else None."""
        ck = self.ci.CursorKind
        for c in self.walk_pruned(var_cursor):
            if c.kind != ck.CALL_EXPR:
                continue
            name = c.spelling
            if name in MAP_LOOKUPS:
                pattern = MAPLIKE_RE
            elif name in ANY_LOOKUPS:
                pattern = CONTAINERISH_RE
            else:
                continue
            for sub in self.walk_pruned(c):
                if sub is c:
                    continue
                if pattern.search(self.canonical(sub.type)):
                    return name
        return None

    def check_ref_across_suspend(self, rel, body, suspends, compounds):
        ck = self.ci.CursorKind
        tk = self.ci.TypeKind
        if not suspends:
            return
        candidates = {}  # var cursor hash -> (cursor, lookup_name, decl_end)
        for c in self.walk_pruned(body):
            if c.kind != ck.VAR_DECL:
                continue
            canon = c.type.get_canonical()
            refish = canon.kind in (tk.POINTER, tk.LVALUEREFERENCE, tk.RVALUEREFERENCE) \
                or "iterator" in canon.spelling
            if not refish:
                continue
            origin = self.lookup_origin(c)
            if origin is not None:
                candidates[c.hash] = (c, origin, c.extent.end.offset)
        if not candidates:
            return
        uses = {}  # var hash -> [(offset, line)]
        for c in self.walk_pruned(body):
            if c.kind != ck.DECL_REF_EXPR:
                continue
            ref = c.referenced
            if ref is not None and ref.hash in candidates:
                uses.setdefault(ref.hash, []).append(
                    (c.location.offset, c.location.line))
        for var_hash, (var, origin, decl_end) in sorted(
                candidates.items(), key=lambda kv: kv[1][2]):
            scope = self.enclosing_scope(compounds, var.location.offset)
            lo, hi = scope if scope else (decl_end, body.extent.end.offset)
            for s_off, s_line in suspends:
                if not (decl_end < s_off < hi):
                    continue
                after = [(o, ln) for o, ln in uses.get(var_hash, ())
                         if s_off < o < hi]
                if after:
                    u_line = min(after)[1]
                    kind = "reference" if var.type.get_canonical().kind in (
                        tk.LVALUEREFERENCE, tk.RVALUEREFERENCE) else (
                        "pointer" if var.type.get_canonical().kind == tk.POINTER
                        else "iterator")
                    self.report(
                        rel, var.location.line, "ref-across-suspend",
                        f"{kind} '{var.spelling}' (from '{origin}') is live "
                        f"across co_await at line {s_line} and used at line "
                        f"{u_line}: the container can mutate while the frame "
                        "is suspended; copy the value or re-look-up after "
                        "resuming")
                    break

    def lambda_capture_tokens(self, lam):
        """Token spellings of the capture list: everything between the opening
        '[' and its matching ']'."""
        toks = []
        depth = 0
        for tok in lam.get_tokens():
            s = tok.spelling
            if depth == 0:
                if s != "[":
                    # Attributes or whitespace shouldn't precede the
                    # introducer; bail rather than misparse.
                    return []
                depth = 1
                continue
            if s == "[":
                depth += 1
            elif s == "]":
                depth -= 1
                if depth == 0:
                    return toks
            toks.append(s)
        return toks

    def check_ref_capture_spawn(self, rel, body):
        ck = self.ci.CursorKind
        for c in self.walk_pruned(body):
            if c.kind != ck.CALL_EXPR or c.spelling not in SPAWN_SINKS:
                continue
            lambdas = [sub for sub in self.walk_pruned(c)
                       if sub is not c and sub.kind == ck.LAMBDA_EXPR]
            for lam in lambdas:
                toks = self.lambda_capture_tokens(lam)
                bad = []
                for i, s in enumerate(toks):
                    # '&' introduces a by-reference capture only at the start
                    # of a capture item ('[&]', '[&x]', '[&x = y]'); an '&'
                    # after '=' is address-of in an init-capture ('[p = &v]').
                    if s == "&" and (i == 0 or toks[i - 1] == ","):
                        nxt = toks[i + 1] if i + 1 < len(toks) else ""
                        bad.append("&" + (nxt if nxt not in (",", "") else ""))
                    elif s == "this" and (i == 0 or toks[i - 1] in (",",)):
                        bad.append("this")
                if bad:
                    self.report(
                        rel, lam.location.line, "ref-capture-spawn",
                        f"lambda passed to spawn() captures [{', '.join(bad)}] "
                        "by reference: the detached frame can outlive the "
                        "enclosing scope; capture by value or pass owning "
                        "handles")

    def check_guard_across_suspend(self, rel, body, suspends, compounds):
        ck = self.ci.CursorKind
        if not suspends:
            return
        for c in self.walk_pruned(body):
            if c.kind != ck.VAR_DECL:
                continue
            if not GUARD_RE.search(self.canonical(c.type)):
                continue
            scope = self.enclosing_scope(compounds, c.location.offset)
            lo, hi = scope if scope else (c.extent.end.offset, body.extent.end.offset)
            decl_end = c.extent.end.offset
            for s_off, s_line in suspends:
                if decl_end < s_off < hi:
                    self.report(
                        rel, c.location.line, "guard-across-suspend",
                        f"host RAII lock '{c.spelling}' is held across "
                        f"co_await at line {s_line}: cooperative scheduling "
                        "is single-threaded, so a second coroutine touching "
                        "the same mutex deadlocks; use sim::Mutex + "
                        "sim::ScopedLock")
                    break

    def unwrap_expr(self, c):
        ck = self.ci.CursorKind
        while c.kind == ck.UNEXPOSED_EXPR:
            kids = list(c.get_children())
            if len(kids) != 1:
                break
            c = kids[0]
        return c

    def check_discarded_task(self, rel, body, holes):
        ck = self.ci.CursorKind
        # (a) task-typed locals never referenced again
        task_vars = {}
        used = set()
        for c in self.walk_pruned(body):
            if c.kind == ck.VAR_DECL and TASK_RE.search(self.canonical(c.type)):
                task_vars[c.hash] = c
            elif c.kind == ck.DECL_REF_EXPR:
                ref = c.referenced
                if ref is not None:
                    used.add(ref.hash)
        for h, c in sorted(task_vars.items(), key=lambda kv: kv[1].location.offset):
            if h in used:
                continue
            canon = self.canonical(c.type)
            if not canon.startswith(("daosim::sim::CoTask", "sim::CoTask", "CoTask")):
                continue  # containers of tasks are judged by their own uses
            self.report(
                rel, c.location.line, "discarded-task",
                f"'{c.spelling}' ({canon}) is created but never co_awaited, "
                "spawned, or moved: CoTask is lazily started, so this work "
                "silently never runs")
        # (b) statement-level discards: bare calls and (void)-casts
        for c in self.walk_pruned(body):
            if c.kind != ck.COMPOUND_STMT:
                continue
            for stmt in c.get_children():
                ext = stmt.extent
                off = ext.start.offset
                if any(a <= off < b for a, b in holes):
                    continue
                inner = self.unwrap_expr(stmt)
                if inner.kind == ck.CSTYLE_CAST_EXPR or inner.kind == ck.CXX_STATIC_CAST_EXPR:
                    kids = [self.unwrap_expr(k) for k in inner.get_children()]
                    if any(k.kind == ck.CALL_EXPR
                           and TASK_RE.search(self.canonical(k.type)) for k in kids):
                        self.report(
                            rel, inner.location.line, "discarded-task",
                            "(void)-cast discards a CoTask: the coroutine is "
                            "lazily started and this work silently never runs")
                    continue
                if inner.kind != ck.CALL_EXPR:
                    continue
                if not TASK_RE.search(self.canonical(inner.type)):
                    continue
                if any("co_await" == t.spelling for t in stmt.get_tokens()):
                    continue
                self.report(
                    rel, inner.location.line, "discarded-task",
                    f"result of '{inner.spelling}(...)' is a CoTask dropped on "
                    "the floor: co_await it, spawn it, or store it")

    def check_unordered_source_of_order(self, rel, body):
        ck = self.ci.CursorKind
        for c in self.walk_pruned(body):
            if c.kind != ck.CXX_FOR_RANGE_STMT:
                continue
            kids = list(c.get_children())
            if len(kids) < 2:
                continue
            loop_body, range_kids = kids[-1], kids[:-1]
            unordered_type = None
            for rk in range_kids:
                for sub in self.walk_pruned(rk):
                    canon = self.canonical(sub.type)
                    if UNORDERED_RE.search(canon):
                        unordered_type = canon
                        break
                if unordered_type:
                    break
            if not unordered_type:
                continue
            schedules = None
            for tok in loop_body.get_tokens():
                if tok.spelling in SCHEDULING_TOKENS:
                    schedules = tok.spelling
                    break
            if schedules:
                short = unordered_type.split("<", 1)[0]
                self.report(
                    rel, c.location.line, "unordered-source-of-order",
                    f"range-for over '{short}' (canonical type of the range) "
                    f"schedules work ('{schedules}') in its body: hash order "
                    "is address-dependent and leaks into the event queue; "
                    "iterate a sorted snapshot instead")

    # -- driver ------------------------------------------------------------

    def analyze_tu(self, tu, scope_prefixes):
        for rel, _fn, body in self.function_units(tu, scope_prefixes):
            holes = self.lambda_extents(body)
            suspends = self.suspend_points(body, holes)
            compounds = self.compound_extents(body)
            self.check_ref_across_suspend(rel, body, suspends, compounds)
            self.check_ref_capture_spawn(rel, body)
            self.check_guard_across_suspend(rel, body, suspends, compounds)
            self.check_discarded_task(rel, body, holes)
            self.check_unordered_source_of_order(rel, body)

    def suppressed_findings(self):
        """Applies // daosim-check: allow(...) suppressions; returns the kept
        findings sorted for byte-stable output."""
        kept = []
        file_cache = {}
        for f in self.findings.values():
            path = os.path.join(self.root, f.path)
            if path not in file_cache:
                try:
                    text = open(path, encoding="utf-8", errors="replace").read()
                except OSError:
                    text = ""
                allows = set()
                for m in ALLOW_FILE_RE.finditer(text):
                    allows.update(r.strip() for r in m.group(1).split(","))
                file_cache[path] = (text.split("\n"), allows)
            lines, file_allows = file_cache[path]
            if f.rule in file_allows:
                continue
            line_txt = lines[f.line - 1] if f.line - 1 < len(lines) else ""
            m = ALLOW_LINE_RE.search(line_txt)
            if m and f.rule in {r.strip() for r in m.group(1).split(",")}:
                continue
            kept.append(f)
        kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
        return kept


# -------------------------------------------------------------- drivers ----


def run_tree(cindex, index, root, build, quiet):
    build_dir = find_build_dir(root, build)
    if build_dir is None:
        print("daosim-check: error: no compile_commands.json found "
              f"(looked in {build or os.path.join(root, 'build*')}); configure "
              "with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)",
              file=sys.stderr)
        return 2
    units = src_translation_units(root, build_dir)
    if not units:
        print(f"daosim-check: error: {build_dir}/compile_commands.json lists "
              "no translation units under src/", file=sys.stderr)
        return 2
    analyzer = Analyzer(cindex, root)
    parse_failures = []
    for path, args in units:
        try:
            tu = index.parse(path, args=args)
        except Exception as e:
            parse_failures.append(f"{os.path.relpath(path, root)}: {e}")
            continue
        errors = [d for d in tu.diagnostics
                  if d.severity >= cindex.Diagnostic.Error]
        if errors:
            rel = os.path.relpath(path, root)
            parse_failures.append(
                f"{rel}: {errors[0].spelling} (+{len(errors) - 1} more)"
                if len(errors) > 1 else f"{rel}: {errors[0].spelling}")
            continue
        analyzer.analyze_tu(tu, ("src/",))
    if parse_failures:
        for msg in parse_failures:
            print(f"daosim-check: parse error: {msg}", file=sys.stderr)
        return 2
    kept = analyzer.suppressed_findings()
    for f in kept:
        print(f)
    if not quiet:
        print(f"daosim-check: {len(units)} translation units, "
              f"{len(kept)} finding(s)", file=sys.stderr)
    return 1 if kept else 0


def run_self_test(cindex, index):
    fixture_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "selftest")
    fixtures = sorted(
        f for f in glob.glob(os.path.join(fixture_dir, "*.cpp")))
    if not fixtures:
        print("daosim-check self-test: error: no fixtures under selftest/",
              file=sys.stderr)
        return 2
    failures = []
    total_expected = 0
    covered = set()
    for path in fixtures:
        rel = os.path.basename(path)
        text = open(path, encoding="utf-8", errors="replace").read()
        expected = {}
        for i, line in enumerate(text.split("\n"), start=1):
            for em in EXPECT_RE.finditer(line):
                expected[(i, em.group(1))] = expected.get((i, em.group(1)), 0) + 1
                total_expected += 1
                covered.add(em.group(1))
        analyzer = Analyzer(cindex, fixture_dir)
        try:
            tu = index.parse(path, args=["-std=c++20", "-I", fixture_dir])
        except Exception as e:
            failures.append(f"{rel}: parse exception: {e}")
            continue
        errors = [d for d in tu.diagnostics
                  if d.severity >= cindex.Diagnostic.Error]
        if errors:
            failures.append(f"{rel}: fixture does not parse: {errors[0].spelling}")
            continue
        analyzer.analyze_tu(tu, ())
        got = {}
        for f in analyzer.suppressed_findings():
            if f.path != rel:
                # The shared support header must stay finding-free; anything
                # here is fixture noise, not a seeded violation.
                failures.append(
                    f"{rel}: stray finding in {f.path}:{f.line} [{f.rule}]")
                continue
            got[(f.line, f.rule)] = got.get((f.line, f.rule), 0) + 1
        for key, cnt in sorted(expected.items()):
            if got.get(key, 0) < cnt:
                failures.append(
                    f"{rel}:{key[0]}: expected [{key[1]}] but the rule did not fire")
        for key, cnt in sorted(got.items()):
            if expected.get(key, 0) < cnt:
                failures.append(f"{rel}:{key[0]}: unexpected [{key[1]}] finding")
    for rule in RULES:
        if rule not in covered:
            failures.append(
                f"selftest/: rule [{rule}] has no seeded fixture (every rule "
                "must prove it fires; add a fixture with an EXPECT-CHECK line)")
    for msg in failures:
        print(msg)
    print(f"daosim-check self-test: {len(fixtures)} fixtures, "
          f"{total_expected} seeded violations, {len(failures)} mismatch(es)",
          file=sys.stderr)
    return 1 if failures else 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    ap.add_argument("--build", default=None,
                    help="build directory holding compile_commands.json "
                         "(default: newest <root>/build*)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation fixtures")
    ap.add_argument("--require", action="store_true",
                    help="fail (exit 3) instead of skipping when libclang is missing")
    ap.add_argument("--quiet", action="store_true", help="suppress the summary line")
    args = ap.parse_args()

    # Validate paths before the libclang probe: a typo'd --root must exit 2
    # everywhere, not read as a SKIP on hosts without libclang.
    if not args.self_test and not os.path.isdir(os.path.join(args.root, "src")):
        print(f"daosim-check: error: no src/ under '{args.root}' — not a repo root",
              file=sys.stderr)
        return 2

    loaded, reason = load_cindex()
    if loaded is None:
        mode = "self-test" if args.self_test else "tree scan"
        if args.require:
            print(f"daosim-check: FAIL: libclang required but {reason}", file=sys.stderr)
            return 3
        print(f"daosim-check: SKIP ({mode}): {reason}; the CI analyze stage "
              "runs this with libclang installed", file=sys.stderr)
        return 0
    cindex, index = loaded
    if args.self_test:
        return run_self_test(cindex, index)
    return run_tree(cindex, index, os.path.abspath(args.root), args.build, args.quiet)


if __name__ == "__main__":
    sys.exit(main())
