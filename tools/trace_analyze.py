#!/usr/bin/env python3
"""trace_analyze: reassemble causal span trees from a daosim Chrome trace
(ior_cli --trace-out, telemetry::TraceLog::write_chrome_json) and attribute
each sampled op's wall time to the six pipeline stages.

The segmentation mirrors telemetry::TraceLog::attribute() bit for bit — the
root interval is cut at every span boundary and each segment is charged to
its deepest covering span (ties: later pipeline stage, then smaller span id)
— so the in-process and offline breakdowns agree exactly.

Reports:
  * per-trace tree health: orphan spans (parent id absent from the trace),
    multiple/missing roots, child intervals escaping their parent;
  * flow events ("s"/"f") referencing span ids that exist in the log;
  * aggregate critical path per op name, mean us across the six stages;
  * --top N: the N slowest root ops with their stage breakdowns.

--check exits 1 unless every tree is well-formed, every flow id resolves and
every root's stage attribution sums exactly to its duration (the attribution
invariant). Exit 2 on a parse/usage error.

Usage:
  trace_analyze.py TRACE.json [--check] [--top N] [--quiet]
"""

import argparse
import json
import sys

STAGES = ["client-queue", "fabric", "engine-queue", "service", "vos", "media"]
_STAGE_OF = {"rpc": 1, "xfer": 1, "queue": 2, "svc": 3, "vos": 4, "media": 5}


def stage_of(category):
    """Mirror of TraceLog::stage_of: everything else is client-side/self time."""
    return _STAGE_OF.get(category, 0)


class Span:
    __slots__ = ("name", "category", "pid", "tid", "begin_ns", "end_ns",
                 "trace", "span", "parent")

    def __init__(self, ev):
        self.name = ev.get("name", "")
        self.category = ev.get("cat", "")
        self.pid = ev.get("pid", 0)
        self.tid = ev.get("tid", 0)
        # write_chrome_json emits ts/dur as ns/1000.0; ns < 2**53 round-trips.
        self.begin_ns = round(ev["ts"] * 1000.0)
        self.end_ns = self.begin_ns + round(ev["dur"] * 1000.0)
        args = ev.get("args", {})
        self.trace = args.get("trace", 0)
        self.span = args.get("span", 0)
        self.parent = args.get("parent", 0)

    @property
    def dur_ns(self):
        return self.end_ns - self.begin_ns


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_analyze: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print(f"trace_analyze: {path}: no traceEvents array", file=sys.stderr)
        sys.exit(2)
    spans, flows = [], []
    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            spans.append(Span(ev))
        elif ph in ("s", "f"):
            flows.append(ev)
    return spans, flows


def attribute(by_id, root):
    """Stage breakdown of one trace; exact mirror of attribute_group()."""
    out = [0] * len(STAGES)
    if root is None:
        return out
    # Depth (hops to the root) decides segment ownership: deepest span wins.
    depth = {}
    for sid in sorted(by_id):
        d = 0
        cur = by_id[sid]
        while cur.parent != 0 and d <= len(by_id):
            nxt = by_id.get(cur.parent)
            if nxt is None:
                break  # orphan: treat its link as the root
            cur = nxt
            d += 1
        depth[sid] = d
    cuts = {root.begin_ns, root.end_ns}
    for sid in by_id:
        sp = by_id[sid]
        if root.begin_ns < sp.begin_ns < root.end_ns:
            cuts.add(sp.begin_ns)
        if root.begin_ns < sp.end_ns < root.end_ns:
            cuts.add(sp.end_ns)
    cuts = sorted(cuts)
    for i in range(len(cuts) - 1):
        a, b = cuts[i], cuts[i + 1]
        win_stage, win_depth, found = 0, 0, False
        for sid in sorted(by_id):
            sp = by_id[sid]
            if sp.begin_ns > a or sp.end_ns < b:
                continue  # does not cover [a, b]
            d, st = depth[sid], stage_of(sp.category)
            if not found or d > win_depth or (d == win_depth and st > win_stage):
                found, win_depth, win_stage = True, d, st
        out[win_stage] += b - a
    return out


def check_tree(trace_id, by_id, errors):
    """Well-formedness: single root, no orphans, parents contain children."""
    roots = [sp for sp in by_id.values() if sp.parent == 0]
    if len(roots) != 1:
        errors.append(f"trace {trace_id}: {len(roots)} roots (want 1)")
        return None
    for sid in sorted(by_id):
        sp = by_id[sid]
        if sp.parent == 0:
            continue
        parent = by_id.get(sp.parent)
        if parent is None:
            errors.append(f"trace {trace_id}: span {sid} ({sp.category}/{sp.name}) "
                          f"orphaned: parent {sp.parent} not in trace")
            continue
        if sp.begin_ns < parent.begin_ns or sp.end_ns > parent.end_ns:
            errors.append(
                f"trace {trace_id}: span {sid} [{sp.begin_ns}, {sp.end_ns}] escapes "
                f"parent {sp.parent} [{parent.begin_ns}, {parent.end_ns}]")
    return roots[0]


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("trace")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on any tree/flow/attribution violation")
    ap.add_argument("--top", type=int, default=0, metavar="N",
                    help="also print the N slowest root ops")
    ap.add_argument("--quiet", action="store_true", help="suppress the tables")
    args = ap.parse_args()

    spans, flows = load(args.trace)
    traces = {}
    span_ids = set()
    for sp in spans:
        if sp.trace == 0:
            continue  # unsampled span: no causal ids attached
        traces.setdefault(sp.trace, {})[sp.span] = sp
        span_ids.add(sp.span)

    errors = []
    roots = {}
    for trace_id in sorted(traces):
        root = check_tree(trace_id, traces[trace_id], errors)
        if root is not None:
            roots[trace_id] = root

    for ev in flows:
        if ev.get("id") not in span_ids:
            errors.append(f"flow event ({ev.get('ph')}) references unknown span id "
                          f"{ev.get('id')}")

    # Aggregate critical path per op name; verify the partition invariant.
    profile = {}  # name -> [count, [stage ns]]
    breakdowns = {}
    for trace_id in sorted(roots):
        root = roots[trace_id]
        bd = attribute(traces[trace_id], root)
        breakdowns[trace_id] = bd
        if sum(bd) != root.dur_ns:
            errors.append(f"trace {trace_id}: stage attribution sums to {sum(bd)} ns, "
                          f"root duration is {root.dur_ns} ns")
        if root.category == "op":
            entry = profile.setdefault(root.name, [0, [0] * len(STAGES)])
            entry[0] += 1
            for st in range(len(STAGES)):
                entry[1][st] += bd[st]

    n_orphans = sum("orphaned" in e for e in errors)
    print(f"trace_analyze: {len(spans)} spans, {len(traces)} traces, "
          f"{len(roots)} trees, {len(flows)} flow events, {n_orphans} orphans")
    if not args.quiet and profile:
        hdr = "  {:<14} {:>8}".format("op", "count")
        hdr += "".join(f" {s:>12}" for s in STAGES) + f" {'total':>12}"
        print("critical path (mean us/op by stage):")
        print(hdr)
        for name in sorted(profile):
            count, ns = profile[name]
            row = f"  {name:<14} {count:>8}"
            row += "".join(f" {v / count / 1e3:>12.1f}" for v in ns)
            row += f" {sum(ns) / count / 1e3:>12.1f}"
            print(row)
    if not args.quiet and args.top > 0:
        ops = [(trace_id, roots[trace_id]) for trace_id in sorted(roots)
               if roots[trace_id].category == "op"]
        ops.sort(key=lambda item: (-item[1].dur_ns, item[1].begin_ns, item[1].span))
        print(f"top {min(args.top, len(ops))} slowest ops:")
        for trace_id, root in ops[:args.top]:
            bd = breakdowns[trace_id]
            stages = " | ".join(f"{STAGES[st]} {bd[st]}" for st in range(len(STAGES)))
            print(f"  trace {trace_id} pid {root.pid} {root.name}: "
                  f"{root.dur_ns} ns | {stages}")

    for e in errors:
        print(f"ERROR {e}")
    if args.check:
        print(f"check: {'FAIL' if errors else 'ok'} ({len(errors)} violation(s))")
        return 1 if errors else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
