#!/usr/bin/env python3
"""Tier-1 test for metrics_diff.py.

Drives ior_cli to produce real dumps:
  * two same-seed runs must diff clean (exit 0) — the determinism contract;
  * runs with different workloads must diff dirty (exit 1), reporting changed
    counter fields;
plus synthetic dumps covering added/removed paths and the parse-error exit.

Usage: metrics_diff_test.py <metrics_diff.py> <ior_cli>
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(name, ok, detail=""):
    if ok:
        print(f"ok   {name}")
    else:
        FAILURES.append(name)
        print(f"FAIL {name} {detail}")


def run_ior(ior_cli, out, extra):
    cmd = [ior_cli, "-a", "DFS", "-t", "1m", "-b", "4m", "-N", "2", "-n", "4",
           "-S", "2", f"--metrics-dump={out}"] + extra
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)


def diff(tool, a, b, *flags):
    return subprocess.run([sys.executable, tool, a, b, *flags],
                          stdout=subprocess.PIPE, text=True)


def main():
    tool, ior_cli = sys.argv[1], sys.argv[2]
    with tempfile.TemporaryDirectory() as td:
        a = os.path.join(td, "a.json")
        b = os.path.join(td, "b.json")
        c = os.path.join(td, "c.json")
        run_ior(ior_cli, a, [])
        run_ior(ior_cli, b, [])
        run_ior(ior_cli, c, ["-s", "2"])

        r = diff(tool, a, b)
        check("same-seed dumps diff clean", r.returncode == 0 and not r.stdout.strip(),
              f"rc={r.returncode} out={r.stdout[:200]!r}")

        r = diff(tool, a, c)
        check("different workloads diff dirty", r.returncode == 1, f"rc={r.returncode}")
        check("changed fields reported", "~ " in r.stdout, r.stdout[:200])
        check("percent delta reported", "%" in r.stdout, r.stdout[:200])
        check("histogram buckets diffed element-wise", "buckets[" in r.stdout,
              r.stdout[:400])

        # Synthetic histogram fixture: a p99 shift must be explainable bucket
        # by bucket, with per-bucket ns ranges and percent deltas.
        h1 = os.path.join(td, "h1.json")
        h2 = os.path.join(td, "h2.json")
        with open(h1, "w") as f:
            json.dump({"client/0/rpc/latency_ns": {
                "kind": "histogram", "count": 6, "p50_ns": 3.0, "p99_ns": 7.0,
                "buckets": [0, 1, 2, 3]}}, f)
        with open(h2, "w") as f:
            json.dump({"client/0/rpc/latency_ns": {
                "kind": "histogram", "count": 7, "p50_ns": 3.0, "p99_ns": 14.0,
                "buckets": [0, 1, 2, 3, 1]}}, f)
        r = diff(tool, h1, h2)
        check("grown bucket reported with range",
              "buckets[4] [8, 16) ns: 0 -> 1" in r.stdout, r.stdout)
        check("unchanged buckets not reported", "buckets[1]" not in r.stdout, r.stdout)
        check("percentile delta reported",
              "p99_ns: 7.0 -> 14.0 (+100.0%)" in r.stdout, r.stdout)

        # Synthetic added/removed paths.
        x = os.path.join(td, "x.json")
        y = os.path.join(td, "y.json")
        with open(x, "w") as f:
            json.dump({"engine/0/a": {"kind": "counter", "value": 1},
                       "engine/0/b": {"kind": "counter", "value": 2}}, f)
        with open(y, "w") as f:
            json.dump({"engine/0/b": {"kind": "counter", "value": 2},
                       "engine/0/c": {"kind": "probe", "value": 3}}, f)
        r = diff(tool, x, y)
        check("added path reported", "+ engine/0/c" in r.stdout, r.stdout)
        check("removed path reported", "- engine/0/a" in r.stdout, r.stdout)
        r = diff(tool, x, y, "--ignore-kinds", "probe,counter")
        check("ignore-kinds filters everything", r.returncode == 0, r.stdout)

        bad = os.path.join(td, "bad.json")
        with open(bad, "w") as f:
            f.write("not json")
        r = diff(tool, x, bad)
        check("parse error exits 2", r.returncode == 2, f"rc={r.returncode}")

    if FAILURES:
        print(f"{len(FAILURES)} failure(s): {', '.join(FAILURES)}", file=sys.stderr)
        return 1
    print("metrics_diff_test: all checks passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
