// Causal-tracing tests: the zero-perturbation contract (same-seed trace_hash
// is bit-identical with tracing on, off, or at any sampling rate), same-seed
// byte-identical trace JSON, well-formed cross-node span trees for the data
// path, DTX 2PC and crash->rebuild, the critical-path attribution invariant
// (stage times partition the root's duration exactly), and the deterministic
// slow-op log.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "client/tx.hpp"
#include "co_assert.hpp"
#include "fault/fault.hpp"
#include "ior/ior.hpp"
#include "telemetry/telemetry.hpp"

namespace daosim::telemetry {
namespace {

using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

ClusterConfig small_cluster(std::uint64_t trace_sample = 1) {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 2;
  cfg.client.trace_sample = trace_sample;
  return cfg;
}

ior::IorConfig hard_job() {
  ior::IorConfig cfg;
  cfg.api = ior::Api::dfs;
  cfg.transfer_size = 256 * kKiB;
  cfg.block_size = 1 * kMiB;
  cfg.segments = 2;
  cfg.file_per_process = false;  // shared file: ops cross the fabric
  return cfg;
}

std::vector<std::byte> bytes(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

/// Groups the log's context-carrying spans by trace id.
std::map<std::uint64_t, std::map<std::uint64_t, const TraceLog::Span*>> trees_of(
    const TraceLog& log) {
  std::map<std::uint64_t, std::map<std::uint64_t, const TraceLog::Span*>> trees;
  for (const TraceLog::Span& s : log.spans()) {
    if (s.ctx.active()) trees[s.ctx.trace_id].emplace(s.ctx.span_id, &s);
  }
  return trees;
}

/// Asserts one trace is a single well-formed tree: exactly one root, every
/// parent id resolves within the trace (no orphans), and every child's
/// interval is contained in its parent's.
void expect_well_formed(std::uint64_t trace_id,
                        const std::map<std::uint64_t, const TraceLog::Span*>& by_id) {
  std::size_t roots = 0;
  for (const auto& [id, sp] : by_id) {
    if (sp->ctx.parent_id == 0) {
      ++roots;
      continue;
    }
    const auto parent = by_id.find(sp->ctx.parent_id);
    ASSERT_NE(parent, by_id.end())
        << "trace " << trace_id << ": span " << id << " (" << sp->category << "/" << sp->name
        << ") is orphaned: parent " << sp->ctx.parent_id << " missing";
    EXPECT_GE(sp->begin, parent->second->begin)
        << "trace " << trace_id << ": span " << id << " starts before parent";
    EXPECT_LE(sp->end, parent->second->end)
        << "trace " << trace_id << ": span " << id << " ends after parent";
  }
  EXPECT_EQ(roots, 1u) << "trace " << trace_id << " is not a single tree";
}

struct TracedRun {
  std::string trace_json;
  std::string slow_ops;
  std::uint64_t trace_hash = 0;
  double write_seconds = 0;
  double read_seconds = 0;
};

TracedRun run_traced(std::uint64_t trace_sample, bool attach, TraceLog* out = nullptr) {
  Testbed tb(small_cluster(trace_sample));
  TraceLog local;
  TraceLog& log = out != nullptr ? *out : local;
  if (attach) tb.attach_trace(&log);
  tb.start();
  ior::IorRunner runner(tb, /*ppn=*/4);
  const ior::IorResult res = runner.run(hard_job());
  TracedRun r;
  std::ostringstream slow;
  tb.dump_slow_ops(slow, /*threshold=*/0, /*top_k=*/5);
  tb.stop();
  std::ostringstream os;
  log.write_chrome_json(os);
  r.trace_json = os.str();
  r.slow_ops = slow.str();
  r.trace_hash = tb.sched().trace_hash();
  r.write_seconds = res.write.seconds;
  r.read_seconds = res.read.seconds;
  return r;
}

// ---------------------------------------------------------------------------
// Determinism battery

TEST(TracingDeterminism, SameSeedRunsProduceByteIdenticalTraceJson) {
  const TracedRun a = run_traced(/*trace_sample=*/1, /*attach=*/true);
  const TracedRun b = run_traced(/*trace_sample=*/1, /*attach=*/true);
  EXPECT_GT(a.trace_json.size(), 2u);
  EXPECT_EQ(a.trace_json, b.trace_json) << "trace JSON drifted across same-seed runs";
  EXPECT_EQ(a.slow_ops, b.slow_ops) << "slow-op log drifted across same-seed runs";
}

TEST(TracingDeterminism, TraceHashInvariantToSinkAttachment) {
  const TracedRun off = run_traced(/*trace_sample=*/1, /*attach=*/false);
  const TracedRun on = run_traced(/*trace_sample=*/1, /*attach=*/true);
  EXPECT_EQ(off.trace_hash, on.trace_hash) << "attaching the trace sink perturbed the run";
  EXPECT_EQ(off.write_seconds, on.write_seconds);
  EXPECT_EQ(off.read_seconds, on.read_seconds);
}

TEST(TracingDeterminism, TraceHashInvariantToSamplingRate) {
  const TracedRun all = run_traced(/*trace_sample=*/1, /*attach=*/true);
  const TracedRun some = run_traced(/*trace_sample=*/4, /*attach=*/true);
  const TracedRun none = run_traced(/*trace_sample=*/0, /*attach=*/true);
  EXPECT_EQ(all.trace_hash, some.trace_hash) << "sampling rate perturbed the run";
  EXPECT_EQ(all.trace_hash, none.trace_hash) << "disabling sampling perturbed the run";
  EXPECT_EQ(all.write_seconds, some.write_seconds);
  EXPECT_EQ(all.write_seconds, none.write_seconds);
}

TEST(TracingDeterminism, SamplingThinsRootsWithoutRenumberingSpans) {
  TraceLog all, some, none;
  (void)run_traced(/*trace_sample=*/1, /*attach=*/true, &all);
  (void)run_traced(/*trace_sample=*/4, /*attach=*/true, &some);
  (void)run_traced(/*trace_sample=*/0, /*attach=*/true, &none);
  auto active_ops = [](const TraceLog& log) {
    std::size_t n = 0;
    for (const TraceLog::Span& s : log.spans()) {
      if (std::string_view(s.category) == "op" && s.ctx.active()) ++n;
    }
    return n;
  };
  EXPECT_GT(active_ops(all), active_ops(some));
  EXPECT_GT(active_ops(some), 0u);
  EXPECT_EQ(active_ops(none), 0u);
  // Span ids are allocated whether or not an op is sampled, so the ids any
  // given trace uses are identical at every sampling rate: every tree in the
  // thinned log appears, span for span, in the full one.
  const auto full = trees_of(all);
  for (const auto& [trace_id, by_id] : trees_of(some)) {
    const auto it = full.find(trace_id);
    ASSERT_NE(it, full.end()) << "sampled trace " << trace_id << " absent from the full log";
    EXPECT_EQ(by_id.size(), it->second.size());
  }
}

// ---------------------------------------------------------------------------
// Tree shape and the attribution invariant

TEST(TracingTrees, HardModeOpsFormSingleCrossNodeTrees) {
  TraceLog log;
  (void)run_traced(/*trace_sample=*/1, /*attach=*/true, &log);
  const auto trees = trees_of(log);
  ASSERT_GT(trees.size(), 0u);
  std::size_t cross_node = 0;
  std::size_t op_roots = 0;
  for (const auto& [trace_id, by_id] : trees) {
    expect_well_formed(trace_id, by_id);
    std::uint32_t root_pid = 0;
    bool is_op = false;
    bool remote = false;
    for (const auto& [id, sp] : by_id) {
      if (sp->ctx.parent_id == 0) {
        root_pid = sp->pid;
        is_op = std::string_view(sp->category) == "op";
      }
    }
    for (const auto& [id, sp] : by_id) {
      if (sp->pid != root_pid) remote = true;
    }
    op_roots += is_op ? 1 : 0;
    cross_node += (is_op && remote) ? 1 : 0;
  }
  EXPECT_GT(op_roots, 0u);
  EXPECT_GT(cross_node, 0u) << "no sampled op reached another node in hard mode";
}

TEST(TracingTrees, StageAttributionPartitionsEveryRootExactly) {
  TraceLog log;
  (void)run_traced(/*trace_sample=*/1, /*attach=*/true, &log);
  std::size_t checked = 0;
  for (const TraceLog::Span& s : log.spans()) {
    if (!s.ctx.active() || s.ctx.parent_id != 0) continue;
    const TraceLog::StageBreakdown bd = log.attribute(s.ctx.trace_id);
    EXPECT_EQ(bd.total_ns(), s.end - s.begin)
        << "trace " << s.ctx.trace_id << " (" << s.name << "): stages do not sum to the root";
    ++checked;
  }
  EXPECT_GT(checked, 0u);
  // The aggregate profile covers the same ops the roots do.
  std::uint64_t profiled = 0;
  for (const auto& [name, p] : log.profile_ops()) profiled += p.count;
  EXPECT_GT(profiled, 0u);
}

TEST(TracingTrees, Dtx2pcCommitIsOneTraceAcrossParticipants) {
  Testbed tb(small_cluster());
  TraceLog log;
  tb.attach_trace(&log);
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    auto tx = cl.tx_begin(kPoolUuid);
    // Several objects so the prepare/commit fans hit multiple shards.
    for (std::uint64_t i = 1; i <= 4; ++i) {
      tx.kv_put(client::make_oid(i, client::ObjClass::S1), "d", "a", bytes("v"));
    }
    CO_ASSERT_ERRNO(co_await tx.commit(), Errno::ok);
  });
  tb.stop();

  const TraceLog::Span* root = nullptr;
  for (const TraceLog::Span& s : log.spans()) {
    if (s.name == "tx_commit" && s.ctx.active() && s.ctx.parent_id == 0) root = &s;
  }
  ASSERT_NE(root, nullptr) << "no sampled tx_commit root span";
  const auto trees = trees_of(log);
  const auto& tree = trees.at(root->ctx.trace_id);
  expect_well_formed(root->ctx.trace_id, tree);
  // Prepare fan-out + leader decision + commit fan: several RPCs, served on
  // engine nodes (pids other than the client's), all under the one root.
  std::size_t rpcs = 0, remote_svc = 0;
  for (const auto& [id, sp] : tree) {
    rpcs += std::string_view(sp->category) == "rpc" ? 1 : 0;
    remote_svc +=
        (std::string_view(sp->category) == "svc" && sp->pid != root->pid) ? 1 : 0;
  }
  EXPECT_GE(rpcs, 3u) << "2PC should fan out prepares plus the decision";
  EXPECT_GE(remote_svc, 3u);
  EXPECT_EQ(log.attribute(root->ctx.trace_id).total_ns(), root->end - root->begin);
}

TEST(TracingTrees, CrashRebuildTracesAreWellFormedAndCrossNode) {
  Testbed tb(small_cluster());
  TraceLog log;
  tb.attach_trace(&log);
  tb.start();
  auto schedule = fault::Schedule::parse("crash@5ms:e3");
  ASSERT_TRUE(schedule.ok());
  tb.inject_faults(*schedule, /*seed=*/7);
  ior::IorRunner runner(tb, /*ppn=*/4);
  ior::IorConfig job = hard_job();
  job.api = ior::Api::daos_array;
  job.oclass = std::uint8_t(client::ObjClass::RP_2GX);
  (void)runner.run(job);
  EXPECT_TRUE(tb.wait_rebuild());
  tb.stop();

  // Every rebuild assignment roots its own always-sampled trace; the pull
  // chain (fetch RPC to the surviving replica, local re-write) hangs under
  // it, crossing nodes.
  std::size_t rebuild_roots = 0, cross_node = 0;
  const auto trees = trees_of(log);
  for (const auto& [trace_id, by_id] : trees) {
    const TraceLog::Span* root = nullptr;
    for (const auto& [id, sp] : by_id) {
      if (sp->ctx.parent_id == 0) root = sp;
    }
    if (root == nullptr || std::string_view(root->category) != "rebuild") continue;
    ++rebuild_roots;
    expect_well_formed(trace_id, by_id);
    for (const auto& [id, sp] : by_id) {
      if (sp->pid != root->pid) {
        ++cross_node;
        break;
      }
    }
  }
  EXPECT_GT(rebuild_roots, 0u) << "no rebuild trace roots recorded";
  EXPECT_GT(cross_node, 0u) << "rebuild pulls never crossed a node";
}

// ---------------------------------------------------------------------------
// Slow-op log

TEST(SlowOps, ReportIsThresholdedBoundedAndDeterministic) {
  TraceLog log;
  (void)run_traced(/*trace_sample=*/1, /*attach=*/true, &log);
  std::ostringstream all, top2, none;
  log.write_slow_ops(all, /*threshold=*/0, /*top_k=*/1000);
  log.write_slow_ops(top2, /*threshold=*/0, /*top_k=*/2);
  log.write_slow_ops(none, /*threshold=*/sim::Time(3600) * sim::kSec, /*top_k=*/1000);
  auto lines = [](const std::string& s) {
    std::size_t n = 0;
    for (const char c : s) n += c == '\n' ? 1 : 0;
    return n;
  };
  EXPECT_GT(lines(all.str()), 3u);
  EXPECT_EQ(lines(top2.str()), 3u);  // header + 2 ops
  EXPECT_EQ(lines(none.str()), 1u);  // header only
  EXPECT_NE(all.str().find("slow ops >= 0 ns"), std::string::npos);
  EXPECT_NE(all.str().find("| media"), std::string::npos);
  std::ostringstream again;
  log.write_slow_ops(again, /*threshold=*/0, /*top_k=*/1000);
  EXPECT_EQ(all.str(), again.str());
}

TEST(SlowOps, UnsampledSpansCanBeDroppedAtRecordTime) {
  TraceLog keep, drop;
  drop.set_keep_unsampled(false);
  (void)run_traced(/*trace_sample=*/4, /*attach=*/true, &keep);
  (void)run_traced(/*trace_sample=*/4, /*attach=*/true, &drop);
  EXPECT_LT(drop.size(), keep.size());
  for (const TraceLog::Span& s : drop.spans()) {
    EXPECT_TRUE(s.ctx.active());
  }
  // The sampled trees themselves are identical either way.
  const auto a = trees_of(keep);
  const auto b = trees_of(drop);
  EXPECT_EQ(a.size(), b.size());
}

}  // namespace
}  // namespace daosim::telemetry
