// SWIM failure-detector + IV map-dissemination suite: bounded-time detection
// and auto-eviction of a crashed engine with zero client traffic, incarnation
// refutation keeping briefly-down or packet-lossy engines alive, partition
// heal without duplicate or stale evictions, client-side piggyback staleness
// detection with a single-flight delta fetch, and bit-identical same-seed
// replay with SWIM enabled. Protocol spec: docs/membership.md.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "co_assert.hpp"
#include "cluster/testbed.hpp"
#include "fault/fault.hpp"

namespace daosim {
namespace {

using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

/// 6 engines (svc replicas on e0..e2 = IV tree roots), fast SWIM timings so
/// detection fits in a few simulated seconds. iv_fanout=2 gives the tree a
/// second level: e3/e4 fetch from e1, e5 from e2.
ClusterConfig swim_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 3;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 1;
  cfg.swim.enabled = true;
  cfg.swim.probe_period = 100 * sim::kMs;
  cfg.swim.suspect_timeout = 1 * sim::kSec;
  cfg.swim.witnesses = 2;
  cfg.swim.iv_fanout = 2;
  return cfg;
}

/// Polls the pool-service leader until its committed map version reaches `v`.
CoTask<bool> wait_map_version(Testbed* tb, std::uint32_t v, sim::Time timeout) {
  const sim::Time deadline = tb->sched().now() + timeout;
  while (tb->sched().now() < deadline) {
    if (const auto l = tb->svc_leader()) {
      if (tb->svc_replica(*l).meta().map_version() >= v) co_return true;
    }
    co_await tb->sched().delay(20 * sim::kMs);
  }
  co_return false;
}

std::uint64_t total_suspects(Testbed& tb) {
  std::uint64_t n = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) n += tb.swim_service(e).suspects_raised();
  return n;
}

std::uint64_t total_deaths(Testbed& tb) {
  std::uint64_t n = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) n += tb.swim_service(e).deaths_declared();
  return n;
}

// ---------------------------------------------------------------------------
// Detection: a crashed engine is auto-evicted with zero client traffic

TEST(SwimDetect, CrashedEngineAutoEvictedWithinSuspicionBound) {
  Testbed tb(swim_cluster());
  tb.start();
  const std::uint32_t victim = 4;  // non-root, non-svc
  tb.run([&]() -> CoTask<void> {
    const sim::Time t0 = tb.sched().now();
    tb.crash_engine(victim);
    // Bound: worst-case probe rotation (~5 periods to hit the victim) + the
    // suspicion timeout + eviction submission/commit slack.
    const bool evicted = co_await wait_map_version(&tb, 2, 3 * sim::kSec);
    EXPECT_TRUE(evicted) << "SWIM never evicted the crashed engine";
    const sim::Time detect = tb.sched().now() - t0;
    EXPECT_LE(detect, 3 * sim::kSec);
    EXPECT_GE(detect, tb.config().swim.suspect_timeout) << "death declared before the timeout";

    const auto leader = tb.svc_leader();
    CO_ASSERT_TRUE(leader.has_value());
    const auto& excluded = tb.svc_replica(*leader).meta().excluded_engines();
    EXPECT_EQ(excluded.size(), 1u) << "an engine other than the victim was evicted";
    EXPECT_EQ(excluded.count(tb.engine(victim).node()), 1u);

    // Detection was engine-driven: the client never sent a single RPC.
    EXPECT_EQ(tb.client(0).rpcs_sent(), 0u);
    EXPECT_EQ(tb.client(0).evictions_reported(), 0u);
    EXPECT_GE(total_suspects(tb), 1u);
    EXPECT_GE(total_deaths(tb), 1u);

    // IV dissemination: every live engine converges on version 2 — roots by
    // polling their co-located replica, non-roots by fetching deltas over the
    // tree (at least one real delta fetch must have happened).
    co_await tb.sched().delay(1 * sim::kSec);
    std::uint64_t fetches = 0;
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      if (e == victim) continue;
      EXPECT_EQ(tb.engine(e).cached_map_version(), 2u) << "engine " << e << " is stale";
      fetches += tb.swim_service(e).delta_fetches();
    }
    EXPECT_GE(fetches, 1u) << "no engine ever took the tree fetch path";
  });
  EXPECT_TRUE(tb.wait_rebuild()) << "auto-eviction never triggered rebuild";
  tb.stop();
}

// ---------------------------------------------------------------------------
// Refutation: a stalled-but-alive engine — its endpoint is up but the network
// drops most of its traffic, with ambient delay/stall noise on top — gets
// suspected, hears the suspicion through gossip, and refutes it by bumping
// its incarnation. Zero evictions, the map never moves.

TEST(SwimRefute, LossyButAliveEngineRefutesInsteadOfDying) {
  ClusterConfig cfg = swim_cluster();
  // Refutation needs one gossip round trip through a 60%-lossy link, so give
  // the suspicion timeout some slack over the probe period.
  cfg.swim.suspect_timeout = 1500 * sim::kMs;
  Testbed tb(cfg);
  tb.start();
  auto sched = fault::Schedule::parse(
      "drop@0s-2s:e4:0.6,delay@0s-2s:*:200us,stall@100ms:e3.1:300ms");
  ASSERT_TRUE(sched.ok());
  ASSERT_TRUE(sched->validate(tb.engine_count(), tb.config().targets_per_engine).ok());
  tb.inject_faults(*sched, /*seed=*/11);

  tb.run([&]() -> CoTask<void> {
    co_await tb.sched().delay(5 * sim::kSec);
    // Suspicion was raised against the lossy engine...
    EXPECT_GE(total_suspects(tb), 1u) << "the lossy window was never noticed";
    // ...and it heard about itself and refuted with an incarnation bump.
    EXPECT_GE(tb.swim_service(4).refutations(), 1u) << "no refutation ever happened";
    // Zero evictions: the map never moved and nobody is excluded.
    EXPECT_EQ(total_deaths(tb), 0u);
    const auto leader = tb.svc_leader();
    CO_ASSERT_TRUE(leader.has_value());
    EXPECT_EQ(tb.svc_replica(*leader).meta().map_version(), 1u)
        << "a stalled-but-alive engine was falsely evicted";
    EXPECT_TRUE(tb.svc_replica(*leader).meta().excluded_engines().empty());
    EXPECT_EQ(tb.client(0).evictions_reported(), 0u);
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Partition: the majority side evicts the unreachable minority exactly once;
// the minority's stale death verdicts are never replayed after the heal.

TEST(SwimPartition, HealRejoinsWithoutDuplicateEvictions) {
  Testbed tb(swim_cluster());
  tb.start();
  // Cut {e4,e5} off from the majority (and the whole pool service) for 6s —
  // long past the suspicion timeout on both sides. The minority's evict
  // campaigns must burn out against the unreachable service and NOT be
  // replayed once the partition heals.
  auto sched = fault::Schedule::parse("partition@0s-6s:e0+e1+e2+e3|e4+e5");
  ASSERT_TRUE(sched.ok());
  ASSERT_TRUE(sched->validate(tb.engine_count(), tb.config().targets_per_engine).ok());
  fault::Injector& inj = tb.inject_faults(*sched, /*seed=*/13);

  tb.run([&]() -> CoTask<void> {
    // Wait for BOTH minority engines to be evicted (version counting would be
    // fragile here: evicting e5 mid-rebuild of e4's eviction requeues tasks,
    // which legitimately bumps the map version without a membership change).
    const sim::Time deadline = tb.sched().now() + 6 * sim::kSec;
    while (tb.sched().now() < deadline) {
      if (const auto l = tb.svc_leader()) {
        if (tb.svc_replica(*l).meta().excluded_engines().size() >= 2) break;
      }
      co_await tb.sched().delay(20 * sim::kMs);
    }
    const auto leader = tb.svc_leader();
    CO_ASSERT_TRUE(leader.has_value());
    const auto& excluded = tb.svc_replica(*leader).meta().excluded_engines();
    EXPECT_EQ(excluded.size(), 2u) << "majority never evicted the partitioned minority";
    EXPECT_EQ(excluded.count(tb.engine(4).node()), 1u);
    EXPECT_EQ(excluded.count(tb.engine(5).node()), 1u);
    EXPECT_GT(inj.calls_partitioned(), 0u);
  });
  EXPECT_TRUE(tb.wait_rebuild());

  tb.run([&]() -> CoTask<void> {
    // Outlive the partition window, then reintegrate both minority engines.
    while (tb.sched().now() < 7 * sim::kSec) co_await tb.sched().delay(100 * sim::kMs);
    CO_ASSERT_OK(co_await tb.client(0).pool_reint(tb.engine(4).node()));
    CO_ASSERT_OK(co_await tb.client(0).pool_reint(tb.engine(5).node()));
    EXPECT_TRUE(tb.client(0).pool_map().version >= 5u);  // 2 evicts + 2 reints (+ requeues)
  });
  EXPECT_TRUE(tb.wait_rebuild());

  std::uint32_t settled_version = 0;
  tb.run([&]() -> CoTask<void> {
    // Long settle: the minority declared the ENTIRE majority dead during the
    // partition, so if its stale verdicts were replayed after the heal the
    // map version would move and healthy engines would be excluded. The one
    // bounded evict campaign per death declaration makes both impossible.
    const auto l0 = tb.svc_leader();
    CO_ASSERT_TRUE(l0.has_value());
    settled_version = tb.svc_replica(*l0).meta().map_version();
    co_await tb.sched().delay(5 * sim::kSec);
    const auto leader = tb.svc_leader();
    CO_ASSERT_TRUE(leader.has_value());
    EXPECT_EQ(tb.svc_replica(*leader).meta().map_version(), settled_version)
        << "a stale partition-era eviction was replayed after the heal";
    EXPECT_TRUE(tb.svc_replica(*leader).meta().excluded_engines().empty());
    EXPECT_EQ(tb.client(0).evictions_reported(), 0u);
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// IV piggyback on the client: staleness detected passively from a stamped
// object reply, resolved by ONE delta fetch (single-flight) from an engine —
// never by querying the pool-service leader.

CoTask<void> one_fetch(client::DaosClient* cl, std::uint32_t mt) {
  net::Body b = net::Body::make(engine::ObjFetchReq{});
  (void)co_await cl->call_target(mt, engine::kOpObjFetch, std::move(b), 64);
}

TEST(IvPiggyback, ConcurrentStaleOpsCoalesceIntoOneDeltaFetch) {
  Testbed tb(swim_cluster());
  tb.start();
  const std::uint32_t victim = 4;
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    tb.crash_engine(victim);
    CO_ASSERT_TRUE(co_await wait_map_version(&tb, 2, 3 * sim::kSec));
    co_await tb.sched().delay(1 * sim::kSec);  // let every engine converge on v2

    // The client slept through the whole eviction: its map is still v1.
    EXPECT_EQ(cl.pool_map().version, 1u);
    EXPECT_EQ(cl.map_staleness_detected(), 0u);

    // 8 concurrent ops against a healthy engine: every reply is stamped v2,
    // at least one op detects the staleness, and the single-flight gate
    // allows exactly ONE delta fetch for all of them.
    sim::WaitGroup wg(tb.sched());
    for (int i = 0; i < 8; ++i) wg.spawn(one_fetch(&cl, /*map_target=*/0));
    co_await wg.wait();

    EXPECT_EQ(cl.pool_map().version, 2u);
    EXPECT_GE(cl.map_staleness_detected(), 1u);
    EXPECT_EQ(cl.map_delta_fetches(), 1u) << "single-flight gate failed to coalesce";
    EXPECT_EQ(cl.map_full_fetches(), 0u) << "delta path fell back to the point query";
    EXPECT_EQ(cl.map_refreshes(), 0u) << "the leader was queried for the map";
    EXPECT_EQ(cl.evictions_reported(), 0u);
    for (std::uint32_t t = victim * tb.config().targets_per_engine;
         t < (victim + 1) * tb.config().targets_per_engine; ++t) {
      EXPECT_EQ(cl.pool_map().targets[t].health, pool::TargetHealth::excluded) << t;
    }
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Determinism: same seed, same faults, SWIM on -> bit-identical trace

struct SwimDigest {
  std::uint64_t trace_hash = 0;
  std::uint64_t events = 0;
  std::uint32_t map_version = 0;
  std::uint64_t suspects = 0;
  std::uint64_t deaths = 0;
};

SwimDigest run_swim_scenario(std::uint64_t fault_seed) {
  Testbed tb(swim_cluster());
  tb.start();
  auto sched = fault::Schedule::parse("crash@100ms:e4,drop@0s-1s:e1:0.2");
  EXPECT_TRUE(sched.ok());
  tb.inject_faults(*sched, fault_seed);
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    client::KvObject kv(cl, kPoolUuid, client::make_oid(9, client::ObjClass::S4));
    std::vector<std::byte> v(32, std::byte{0x5C});
    for (int i = 0; i < 8; ++i) {
      (void)co_await kv.put(strfmt("k%d", i), "a", v);  // stale mid-eviction is fine
    }
    (void)co_await wait_map_version(&tb, 2, 5 * sim::kSec);
    co_await tb.sched().delay(1 * sim::kSec);
  });
  tb.wait_rebuild();
  SwimDigest d;
  if (const auto l = tb.svc_leader()) d.map_version = tb.svc_replica(*l).meta().map_version();
  d.suspects = total_suspects(tb);
  d.deaths = total_deaths(tb);
  tb.stop();
  d.trace_hash = tb.sched().trace_hash();
  d.events = tb.sched().events_processed();
  return d;
}

TEST(SwimDeterminism, SameSeedReplaysBitIdentically) {
  const SwimDigest a = run_swim_scenario(77);
  const SwimDigest b = run_swim_scenario(77);
  EXPECT_EQ(a.trace_hash, b.trace_hash)
      << "SWIM runs diverged — probe order or gossip reached the scheduler nondeterministically";
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.map_version, b.map_version);
  EXPECT_EQ(a.suspects, b.suspects);
  EXPECT_EQ(a.deaths, b.deaths);
  EXPECT_EQ(a.map_version, 2u);
  EXPECT_GE(a.deaths, 1u);
}

TEST(SwimDeterminism, DifferentSeedPerturbsTheTrace) {
  const SwimDigest a = run_swim_scenario(77);
  const SwimDigest b = run_swim_scenario(31337);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

}  // namespace
}  // namespace daosim
