// Tests for the simulated fabric and RPC layer.
#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/rpc.hpp"
#include "sim/scheduler.hpp"

namespace daosim::net {
namespace {

using sim::CoTask;
using sim::Time;

FabricConfig test_config() {
  FabricConfig cfg;
  cfg.rail_bytes_per_sec = 1e9;  // 1 byte/ns per rail
  cfg.rails_per_node = 1;
  cfg.latency = 1000;  // 1 us
  cfg.message_header_bytes = 0;
  return cfg;
}

TEST(Fabric, PointToPointTiming) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  auto a = f.add_node();
  auto b = f.add_node();
  Time done = 0;
  s.spawn([&]() -> CoTask<void> {
    co_await f.transfer(a, b, 1'000'000);
    done = s.now();
  });
  s.run();
  // 1us latency + 1MB at 1 byte/ns.
  EXPECT_NEAR(double(done), 1000.0 + 1'000'000.0, 5.0);
}

TEST(Fabric, LoopbackPaysOnlyLatency) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  auto a = f.add_node();
  Time done = 0;
  s.spawn([&]() -> CoTask<void> {
    co_await f.transfer(a, a, 100'000'000);
    done = s.now();
  });
  s.run();
  EXPECT_EQ(done, 500u);  // half the fabric latency
}

TEST(Fabric, EgressContentionHalvesThroughput) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  auto a = f.add_node();
  auto b = f.add_node();
  auto c = f.add_node();
  Time done = 0;
  auto send = [&](NodeId dst) -> CoTask<void> {
    co_await f.transfer(a, dst, 1'000'000);
    done = std::max(done, s.now());
  };
  s.spawn(send(b));
  s.spawn(send(c));
  s.run();
  // Both leave through a's egress: 2 MB at 1 byte/ns.
  EXPECT_NEAR(double(done), 1000.0 + 2'000'000.0, 10.0);
}

TEST(Fabric, FullDuplexDoesNotContend) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  auto a = f.add_node();
  auto b = f.add_node();
  Time done = 0;
  auto xfer = [&](NodeId src, NodeId dst) -> CoTask<void> {
    co_await f.transfer(src, dst, 1'000'000);
    done = std::max(done, s.now());
  };
  s.spawn(xfer(a, b));
  s.spawn(xfer(b, a));
  s.run();
  // Opposite directions use separate ingress/egress pipes (switch is 2x).
  EXPECT_NEAR(double(done), 1000.0 + 1'000'000.0, 10.0);
}

TEST(Fabric, DistinctPairsRunAtFullRate) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  std::vector<NodeId> n;
  for (int i = 0; i < 4; ++i) n.push_back(f.add_node());
  Time done = 0;
  auto xfer = [&](NodeId src, NodeId dst) -> CoTask<void> {
    co_await f.transfer(src, dst, 1'000'000);
    done = std::max(done, s.now());
  };
  s.spawn(xfer(n[0], n[1]));
  s.spawn(xfer(n[2], n[3]));
  s.run();
  EXPECT_NEAR(double(done), 1000.0 + 1'000'000.0, 10.0);
}

TEST(Fabric, HeaderBytesAreCharged) {
  sim::Scheduler s;
  auto cfg = test_config();
  cfg.message_header_bytes = 128;
  Fabric f(s, cfg);
  auto a = f.add_node();
  auto b = f.add_node();
  s.spawn([&]() -> CoTask<void> { co_await f.transfer(a, b, 1000); });
  s.run();
  EXPECT_EQ(f.bytes_sent(a), 1128u);
}

TEST(Fabric, SwitchCapacityLimitsAggregate) {
  sim::Scheduler s;
  auto cfg = test_config();
  cfg.switch_bytes_per_sec = 1e9;  // same as one NIC: aggregate bottleneck
  Fabric f(s, cfg);
  std::vector<NodeId> n;
  for (int i = 0; i < 4; ++i) n.push_back(f.add_node());
  Time done = 0;
  auto xfer = [&](NodeId src, NodeId dst) -> CoTask<void> {
    co_await f.transfer(src, dst, 1'000'000);
    done = std::max(done, s.now());
  };
  s.spawn(xfer(n[0], n[1]));
  s.spawn(xfer(n[2], n[3]));
  s.run();
  // Two disjoint pairs but the shared core switch caps them at 1 byte/ns.
  EXPECT_NEAR(double(done), 1000.0 + 2'000'000.0, 10.0);
}

// ---------------------------------------------------------------------------
// RPC

constexpr std::uint16_t kEcho = 1;
constexpr std::uint16_t kAdd = 2;

TEST(Rpc, RoundTripWithHandler) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  RpcDomain dom(f);
  RpcEndpoint client(dom, f.add_node());
  RpcEndpoint server(dom, f.add_node());

  server.register_handler(kEcho, [&](Request req) -> CoTask<Reply> {
    co_return Reply{Errno::ok, req.wire_bytes, std::move(req.body)};
  });

  std::string got;
  Time done = 0;
  s.spawn([&]() -> CoTask<void> {
    Reply r = co_await client.call(server.node(), kEcho, Body::make(std::string("ping")), 1000);
    got = r.body.get<std::string>();
    done = s.now();
  });
  s.run();
  EXPECT_EQ(got, "ping");
  // Two fabric traversals: 2 * (latency + 1000 bytes).
  EXPECT_NEAR(double(done), 2 * (1000.0 + 1000.0), 10.0);
}

TEST(Rpc, HandlerComputesOnServer) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  RpcDomain dom(f);
  RpcEndpoint client(dom, f.add_node());
  RpcEndpoint server(dom, f.add_node());

  server.register_handler(kAdd, [&](Request req) -> CoTask<Reply> {
    auto [x, y] = req.body.get<std::pair<int, int>>();
    co_await s.delay(500);  // server CPU time
    co_return Reply{Errno::ok, 8, Body::make(x + y)};
  });

  int sum = 0;
  s.spawn([&]() -> CoTask<void> {
    Reply r = co_await client.call(server.node(), kAdd, Body::make(std::make_pair(20, 22)), 16);
    sum = r.body.get<int>();
  });
  s.run();
  EXPECT_EQ(sum, 42);
}

TEST(Rpc, UnknownOpcodeReturnsNotSupported) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  RpcDomain dom(f);
  RpcEndpoint client(dom, f.add_node());
  RpcEndpoint server(dom, f.add_node());
  Errno status = Errno::ok;
  s.spawn([&]() -> CoTask<void> {
    Reply r = co_await client.call(server.node(), 999, {}, 16);
    status = r.status;
  });
  s.run();
  EXPECT_EQ(status, Errno::not_supported);
}

TEST(Rpc, DownNodeTimesOut) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  RpcDomain dom(f);
  RpcEndpoint client(dom, f.add_node());
  RpcEndpoint server(dom, f.add_node());
  server.register_handler(kEcho, [](Request req) -> CoTask<Reply> {
    co_return Reply{Errno::ok, 0, std::move(req.body)};
  });
  server.set_down(true);
  Errno status = Errno::ok;
  s.spawn([&]() -> CoTask<void> {
    Reply r = co_await client.call(server.node(), kEcho, {}, 16);
    status = r.status;
  });
  s.run();
  EXPECT_EQ(status, Errno::timed_out);
  EXPECT_GE(s.now(), kRpcTimeout);
}

TEST(Rpc, ManyConcurrentCallsAllServed) {
  sim::Scheduler s;
  Fabric f(s, test_config());
  RpcDomain dom(f);
  RpcEndpoint client(dom, f.add_node());
  RpcEndpoint server(dom, f.add_node());
  server.register_handler(kEcho, [](Request req) -> CoTask<Reply> {
    co_return Reply{Errno::ok, 64, std::move(req.body)};
  });
  int ok = 0;
  for (int i = 0; i < 64; ++i) {
    s.spawn([&]() -> CoTask<void> {
      Reply r = co_await client.call(server.node(), kEcho, Body::make(1), 64);
      if (r.status == Errno::ok) ++ok;
    });
  }
  s.run();
  EXPECT_EQ(ok, 64);
  EXPECT_EQ(server.calls_served(), 64u);
  EXPECT_EQ(client.calls_made(), 64u);
}

}  // namespace
}  // namespace daosim::net
