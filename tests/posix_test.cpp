// POSIX layer tests: MemVfs semantics, and DFuse request splitting, thread
// pool limits, and cost accounting over a real DFS mount.
#include <gtest/gtest.h>

#include "co_assert.hpp"
#include "ior/ior.hpp"
#include "posix/dfuse.hpp"
#include "posix/vfs.hpp"

namespace daosim::posix {
namespace {

using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;
using sim::Time;

// ---------------------------------------------------------------------------
// MemVfs

TEST(MemVfs, CreateWriteReadRoundTrip) {
  sim::Scheduler s;
  MemVfs vfs;
  s.spawn([&]() -> CoTask<void> {
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await vfs.open("/f", flags);
    CO_ASSERT_OK(fd);
    std::vector<std::byte> data(100, std::byte{5});
    auto w = co_await vfs.pwrite(*fd, 50, data.size(), data);
    CO_ASSERT_OK(w);
    std::vector<std::byte> out(100);
    auto r = co_await vfs.pread(*fd, 50, out);
    CO_ASSERT_OK(r);
    CO_ASSERT_EQ(*r, 100u);
    CO_ASSERT_TRUE(out == data);
    auto sz = co_await vfs.fsize(*fd);
    CO_ASSERT_OK(sz);
    CO_ASSERT_EQ(*sz, 150u);
    CO_ASSERT_ERRNO(co_await vfs.close(*fd), Errno::ok);
    CO_ASSERT_ERRNO(co_await vfs.close(*fd), Errno::bad_fd);
  });
  s.run();
}

TEST(MemVfs, DirectoryOperations) {
  sim::Scheduler s;
  MemVfs vfs;
  s.spawn([&]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await vfs.mkdir("/d"), Errno::ok);
    CO_ASSERT_ERRNO(co_await vfs.mkdir("/d"), Errno::exists);
    CO_ASSERT_ERRNO(co_await vfs.mkdir("/missing/sub"), Errno::no_entry);
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await vfs.open("/d/f", flags);
    CO_ASSERT_OK(fd);
    auto names = co_await vfs.readdir("/d");
    CO_ASSERT_OK(names);
    CO_ASSERT_EQ(names->size(), 1u);
    CO_ASSERT_ERRNO(co_await vfs.rmdir("/d"), Errno::not_empty);
    CO_ASSERT_ERRNO(co_await vfs.unlink("/d/f"), Errno::ok);
    CO_ASSERT_ERRNO(co_await vfs.rmdir("/d"), Errno::ok);
  });
  s.run();
}

TEST(MemVfs, RenameAndStat) {
  sim::Scheduler s;
  MemVfs vfs;
  s.spawn([&]() -> CoTask<void> {
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await vfs.open("/a", flags);
    CO_ASSERT_OK(fd);
    std::vector<std::byte> d(7, std::byte{1});
    CO_ASSERT_OK(co_await vfs.pwrite(*fd, 0, d.size(), d));
    CO_ASSERT_ERRNO(co_await vfs.rename("/a", "/b"), Errno::ok);
    auto st = co_await vfs.stat("/b");
    CO_ASSERT_OK(st);
    CO_ASSERT_EQ(st->size, 7u);
    CO_ASSERT_EQ((co_await vfs.stat("/a")).error(), Errno::no_entry);
  });
  s.run();
}

TEST(MemVfs, ReadPastEofReturnsShort) {
  sim::Scheduler s;
  MemVfs vfs;
  s.spawn([&]() -> CoTask<void> {
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await vfs.open("/f", flags);
    CO_ASSERT_OK(fd);
    std::vector<std::byte> d(10, std::byte{2});
    CO_ASSERT_OK(co_await vfs.pwrite(*fd, 0, d.size(), d));
    std::vector<std::byte> out(20);
    auto r = co_await vfs.pread(*fd, 5, out);
    CO_ASSERT_OK(r);
    CO_ASSERT_EQ(*r, 5u);
  });
  s.run();
}

// ---------------------------------------------------------------------------
// DFuse over a real testbed

class DfuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig cfg;
    cfg.server_nodes = 2;
    cfg.engines_per_server = 2;
    cfg.targets_per_engine = 4;
    tb_ = std::make_unique<Testbed>(cfg);
    tb_->start();
    tb_->run([this]() -> CoTask<void> {
      CO_ASSERT_OK(co_await tb_->client(0).cont_create(kPoolUuid, {}));
      auto m = co_await dfs::DfsMount::mount(tb_->client(0), kPoolUuid);
      CO_ASSERT_OK(m);
      dfs_ = std::move(*m);
      dfuse_ = std::make_unique<DfuseMount>(tb_->sched(), *dfs_, DfuseConfig{});
    });
    ASSERT_NE(dfuse_, nullptr);
  }
  void TearDown() override {
    dfuse_.reset();
    dfs_.reset();
    tb_->stop();
  }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<dfs::DfsMount> dfs_;
  std::unique_ptr<DfuseMount> dfuse_;
};

TEST_F(DfuseTest, RoundTripThroughMount) {
  tb_->run([this]() -> CoTask<void> {
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await dfuse_->open("/f", flags);
    CO_ASSERT_OK(fd);
    std::vector<std::byte> data(300'000);
    ior::fill_pattern(data, 0, 3);
    auto w = co_await dfuse_->pwrite(*fd, 0, data.size(), data);
    CO_ASSERT_OK(w);
    std::vector<std::byte> out(data.size());
    auto r = co_await dfuse_->pread(*fd, 0, out);
    CO_ASSERT_OK(r);
    CO_ASSERT_EQ(*r, data.size());
    CO_ASSERT_EQ(ior::check_pattern(out, 0, 3), 0u);
    CO_ASSERT_ERRNO(co_await dfuse_->close(*fd), Errno::ok);
  });
}

TEST_F(DfuseTest, LargeIoSplitsIntoMaxRequestPieces) {
  tb_->run([this]() -> CoTask<void> {
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await dfuse_->open("/big", flags);
    CO_ASSERT_OK(fd);
    const std::uint64_t before = dfuse_->requests_served();
    const std::uint64_t bytes = 8 * kMiB;  // 8 pieces at the 1 MiB FUSE limit
    auto w = co_await dfuse_->pwrite(*fd, 0, bytes, {});
    CO_ASSERT_OK(w);
    CO_ASSERT_EQ(dfuse_->requests_served() - before, 8u);
  });
}

TEST_F(DfuseTest, PerOpCostIsCharged) {
  tb_->run([this]() -> CoTask<void> {
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await dfuse_->open("/cost", flags);
    CO_ASSERT_OK(fd);
    const Time t0 = tb_->sched().now();
    auto w = co_await dfuse_->pwrite(*fd, 0, 4096, {});
    CO_ASSERT_OK(w);
    const Time elapsed = tb_->sched().now() - t0;
    // At least the kernel-crossing cost, plus the backend RPC time.
    CO_ASSERT_TRUE(elapsed >= dfuse_->config().op_cost);
  });
}

TEST_F(DfuseTest, MetadataOpsForwarded) {
  tb_->run([this]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await dfuse_->mkdir("/dir"), Errno::ok);
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await dfuse_->open("/dir/f", flags);
    CO_ASSERT_OK(fd);
    std::vector<std::byte> d(64, std::byte{1});
    (void)co_await dfuse_->pwrite(*fd, 0, d.size(), d);
    auto st = co_await dfuse_->stat("/dir/f");
    CO_ASSERT_OK(st);
    CO_ASSERT_EQ(st->size, 64u);
    auto names = co_await dfuse_->readdir("/dir");
    CO_ASSERT_OK(names);
    CO_ASSERT_EQ(names->size(), 1u);
    CO_ASSERT_ERRNO(co_await dfuse_->close(*fd), Errno::ok);
    CO_ASSERT_ERRNO(co_await dfuse_->unlink("/dir/f"), Errno::ok);
    CO_ASSERT_ERRNO(co_await dfuse_->rmdir("/dir"), Errno::ok);
  });
}

TEST_F(DfuseTest, RenameThroughMount) {
  tb_->run([this]() -> CoTask<void> {
    VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await dfuse_->open("/src", flags);
    CO_ASSERT_OK(fd);
    CO_ASSERT_ERRNO(co_await dfuse_->close(*fd), Errno::ok);
    CO_ASSERT_ERRNO(co_await dfuse_->rename("/src", "/dst"), Errno::ok);
    auto st = co_await dfuse_->stat("/dst");
    CO_ASSERT_OK(st);
  });
}

TEST_F(DfuseTest, BadFdRejected) {
  tb_->run([this]() -> CoTask<void> {
    std::vector<std::byte> out(8);
    auto r = co_await dfuse_->pread(999, 0, out);
    CO_ASSERT_EQ(r.error(), Errno::bad_fd);
    auto w = co_await dfuse_->pwrite(999, 0, 8, {});
    CO_ASSERT_EQ(w.error(), Errno::bad_fd);
  });
}

}  // namespace
}  // namespace daosim::posix
