// Tests for the Raft consensus substrate: election safety, log replication,
// fail-over, log repair, snapshots, and randomized fault-injection properties.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "raft/raft.hpp"

namespace daosim::raft {
namespace {

using sim::CoTask;
using sim::Time;

/// Deterministic state machine: an append-only journal with a running hash.
class Journal : public StateMachine {
 public:
  std::string apply(const std::string& cmd) override {
    entries.push_back(cmd);
    hash = hash * 1099511628211ULL + std::hash<std::string>{}(cmd);
    return strfmt("applied#%zu:%s", entries.size(), cmd.c_str());
  }
  std::string snapshot() const override {
    std::ostringstream os;
    os << hash << '\n' << entries.size() << '\n';
    for (const auto& e : entries) os << e.size() << ':' << e;
    return os.str();
  }
  void restore(const std::string& snap) override {
    entries.clear();
    hash = 14695981039346656037ULL;
    if (snap.empty()) return;
    std::istringstream is(snap);
    std::size_t n = 0;
    char nl;
    is >> hash >> n;
    is.get(nl);
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t len;
      char colon;
      is >> len;
      is.get(colon);
      std::string s(len, '\0');
      is.read(s.data(), std::streamsize(len));
      entries.push_back(std::move(s));
    }
  }

  std::vector<std::string> entries;
  std::uint64_t hash = 14695981039346656037ULL;
};

struct Cluster {
  explicit Cluster(std::size_t n, std::uint64_t seed = 42, RaftConfig cfg = {}) : fabric(sched) {
    std::vector<net::NodeId> ids;
    for (std::size_t i = 0; i < n; ++i) ids.push_back(fabric.add_node());
    domain = std::make_unique<net::RpcDomain>(fabric);
    for (std::size_t i = 0; i < n; ++i) {
      eps.push_back(std::make_unique<net::RpcEndpoint>(*domain, ids[i]));
      sms.push_back(std::make_unique<Journal>());
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<RaftNode>(*eps[i], ids, *sms[i], cfg, seed + i));
    }
  }

  void start_all() {
    for (auto& n : nodes) n->start();
  }
  void stop_all() {
    for (auto& n : nodes) {
      if (n->running()) n->stop();
    }
    sched.run();  // drain retired loops
  }

  /// Runs the simulation until exactly one live leader exists (or time cap).
  RaftNode* await_leader(Time cap = 5 * sim::kSec) {
    const Time deadline = sched.now() + cap;
    while (sched.now() < deadline) {
      sched.run_until(sched.now() + 20 * sim::kMs);
      RaftNode* leader = nullptr;
      int count = 0;
      for (auto& n : nodes) {
        if (n->is_leader()) {
          ++count;
          leader = n.get();
        }
      }
      if (count == 1 && leader->commit_index() >= leader->snapshot_index()) return leader;
    }
    return nullptr;
  }

  /// Submits via the current leader, retrying across elections.
  std::string must_submit(const std::string& cmd, Time cap = 10 * sim::kSec) {
    const Time deadline = sched.now() + cap;
    std::string out;
    bool done = false;
    while (!done && sched.now() < deadline) {
      RaftNode* leader = await_leader();
      if (leader == nullptr) continue;
      bool finished = false;
      sched.spawn([&, leader]() -> CoTask<void> {
        SubmitResult r = co_await leader->submit(cmd);
        if (r.status == Errno::ok) {
          out = r.response;
          done = true;
        }
        finished = true;
      });
      while (!finished && sched.now() < deadline) sched.run_until(sched.now() + 10 * sim::kMs);
    }
    DAOSIM_REQUIRE(done, "submit did not complete: %s", cmd.c_str());
    return out;
  }

  void settle(Time dt) { sched.run_until(sched.now() + dt); }

  sim::Scheduler sched;
  net::Fabric fabric;
  std::unique_ptr<net::RpcDomain> domain;
  std::vector<std::unique_ptr<net::RpcEndpoint>> eps;
  std::vector<std::unique_ptr<Journal>> sms;
  std::vector<std::unique_ptr<RaftNode>> nodes;
};

TEST(Raft, ElectsExactlyOneLeader) {
  Cluster c(3);
  c.start_all();
  RaftNode* leader = c.await_leader();
  ASSERT_NE(leader, nullptr);
  int leaders = 0;
  for (auto& n : c.nodes) leaders += n->is_leader();
  EXPECT_EQ(leaders, 1);
  c.stop_all();
}

TEST(Raft, SingleNodeGroupSelfElectsAndCommits) {
  Cluster c(1);
  c.start_all();
  RaftNode* leader = c.await_leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_EQ(c.must_submit("solo"), "applied#1:solo");
  c.stop_all();
}

TEST(Raft, ReplicatesToAllMembers) {
  Cluster c(5);
  c.start_all();
  for (int i = 0; i < 10; ++i) c.must_submit(strfmt("cmd-%d", i));
  c.settle(500 * sim::kMs);  // let followers catch up
  for (auto& sm : c.sms) {
    ASSERT_EQ(sm->entries.size(), 10u);
    EXPECT_EQ(sm->entries.front(), "cmd-0");
    EXPECT_EQ(sm->entries.back(), "cmd-9");
  }
  c.stop_all();
}

TEST(Raft, AllStateMachinesAgree) {
  Cluster c(3);
  c.start_all();
  for (int i = 0; i < 25; ++i) c.must_submit(strfmt("op-%d", i));
  c.settle(500 * sim::kMs);
  for (auto& sm : c.sms) EXPECT_EQ(sm->hash, c.sms[0]->hash);
  c.stop_all();
}

TEST(Raft, SubmitToFollowerRedirects) {
  Cluster c(3);
  c.start_all();
  RaftNode* leader = c.await_leader();
  ASSERT_NE(leader, nullptr);
  RaftNode* follower = nullptr;
  for (auto& n : c.nodes) {
    if (n.get() != leader) follower = n.get();
  }
  SubmitResult res;
  bool finished = false;
  c.sched.spawn([&]() -> CoTask<void> {
    res = co_await follower->submit("x");
    finished = true;
  });
  c.settle(100 * sim::kMs);
  ASSERT_TRUE(finished);
  EXPECT_EQ(res.status, Errno::again);
  ASSERT_TRUE(res.leader_hint.has_value());
  EXPECT_EQ(*res.leader_hint, leader->id());
  c.stop_all();
}

TEST(Raft, LeaderCrashTriggersFailover) {
  Cluster c(3);
  c.start_all();
  RaftNode* first = c.await_leader();
  ASSERT_NE(first, nullptr);
  c.must_submit("before-crash");
  first->crash();
  RaftNode* second = c.await_leader();
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second, first);
  EXPECT_GT(second->current_term(), 0u);
  c.must_submit("after-crash");
  c.settle(500 * sim::kMs);
  for (auto& n : c.nodes) {
    if (n.get() == first) continue;
    const auto& sm = *c.sms[&n - c.nodes.data()];
    ASSERT_EQ(sm.entries.size(), 2u);
    EXPECT_EQ(sm.entries[0], "before-crash");
    EXPECT_EQ(sm.entries[1], "after-crash");
  }
  c.stop_all();
}

TEST(Raft, CrashedNodeCatchesUpAfterRestart) {
  Cluster c(3);
  c.start_all();
  RaftNode* leader = c.await_leader();
  ASSERT_NE(leader, nullptr);
  // Crash a follower, commit entries without it, restart it.
  RaftNode* victim = nullptr;
  for (auto& n : c.nodes) {
    if (n.get() != leader) victim = n.get();
  }
  victim->crash();
  for (int i = 0; i < 5; ++i) c.must_submit(strfmt("v-%d", i));
  victim->restart();
  c.settle(2 * sim::kSec);
  const auto& sm = *c.sms[&*std::find_if(c.nodes.begin(), c.nodes.end(),
                                         [&](auto& n) { return n.get() == victim; }) -
                          c.nodes.data()];
  EXPECT_EQ(sm.entries.size(), 5u);
  c.stop_all();
}

TEST(Raft, MinorityPartitionCannotCommit) {
  Cluster c(5);
  c.start_all();
  RaftNode* leader = c.await_leader();
  ASSERT_NE(leader, nullptr);
  // Partition the leader plus one follower away from the other three.
  RaftNode* companion = nullptr;
  for (auto& n : c.nodes) {
    if (n.get() != leader) {
      companion = n.get();
      break;
    }
  }
  for (auto& n : c.nodes) {
    if (n.get() != leader && n.get() != companion) n->crash();
  }
  SubmitResult res;
  bool finished = false;
  c.sched.spawn([&]() -> CoTask<void> {
    res = co_await leader->submit("lost");
    finished = true;
  });
  c.settle(2 * sim::kSec);
  // The entry cannot commit without a majority: either the submit is still
  // hanging, or it failed when the leader stepped down.
  if (finished) {
    EXPECT_NE(res.status, Errno::ok);
  }
  EXPECT_EQ(leader->commit_index(), 1u);  // only the initial no-op barrier
  for (auto& n : c.nodes) {
    if (!n->running()) n->restart();
  }
  c.settle(2 * sim::kSec);
  c.stop_all();
}

TEST(Raft, DivergentLogIsRepaired) {
  Cluster c(3);
  c.start_all();
  RaftNode* leader = c.await_leader();
  ASSERT_NE(leader, nullptr);
  c.must_submit("stable");
  // Isolate the leader; it accepts entries it can never commit.
  RaftNode* old_leader = leader;
  for (auto& n : c.nodes) {
    if (n.get() != old_leader) n->crash();
  }
  bool hang_finished = false;
  c.sched.spawn([&]() -> CoTask<void> {
    (void)co_await old_leader->submit("orphan-1");
    hang_finished = true;
  });
  c.settle(300 * sim::kMs);
  EXPECT_GE(old_leader->last_log_index(), 3u);  // no-op + stable + orphan
  // Heal the others; they elect a new leader and commit different entries.
  old_leader->crash();
  for (auto& n : c.nodes) {
    if (n.get() != old_leader) n->restart();
  }
  c.must_submit("winner");
  // Old leader rejoins; its orphan entry must be overwritten.
  old_leader->restart();
  c.settle(3 * sim::kSec);
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    const auto& e = c.sms[i]->entries;
    ASSERT_GE(e.size(), 2u) << "node " << i;
    EXPECT_EQ(e[0], "stable");
    EXPECT_EQ(e[1], "winner");
    EXPECT_EQ(e.size(), 2u);
  }
  c.stop_all();
}

TEST(Raft, SnapshotCompactsLog) {
  RaftConfig cfg;
  cfg.snapshot_threshold = 16;
  Cluster c(3, 42, cfg);
  c.start_all();
  for (int i = 0; i < 64; ++i) c.must_submit(strfmt("s-%d", i));
  c.settle(time_t(1) * sim::kSec);
  RaftNode* leader = c.await_leader();
  ASSERT_NE(leader, nullptr);
  EXPECT_GT(leader->snapshot_index(), 0u);
  EXPECT_LE(leader->log_size(), 17u);
  c.stop_all();
}

TEST(Raft, LaggardReceivesSnapshot) {
  RaftConfig cfg;
  cfg.snapshot_threshold = 8;
  Cluster c(3, 7, cfg);
  c.start_all();
  RaftNode* leader = c.await_leader();
  ASSERT_NE(leader, nullptr);
  RaftNode* victim = nullptr;
  for (auto& n : c.nodes) {
    if (n.get() != leader) victim = n.get();
  }
  victim->crash();
  for (int i = 0; i < 40; ++i) c.must_submit(strfmt("z-%d", i));
  victim->restart();
  c.settle(3 * sim::kSec);
  std::size_t vi = 0;
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    if (c.nodes[i].get() == victim) vi = i;
  }
  EXPECT_EQ(c.sms[vi]->entries.size(), 40u);
  EXPECT_GT(victim->snapshot_index(), 0u);  // caught up via InstallSnapshot
  c.stop_all();
}

TEST(Raft, TermsIncreaseMonotonically) {
  Cluster c(3);
  c.start_all();
  RaftNode* l1 = c.await_leader();
  ASSERT_NE(l1, nullptr);
  const std::uint64_t t1 = l1->current_term();
  l1->crash();
  RaftNode* l2 = c.await_leader();
  ASSERT_NE(l2, nullptr);
  EXPECT_GT(l2->current_term(), t1);
  c.stop_all();
}

// Property: under repeated random crash/restart churn, at most one leader per
// term, all state machines converge, and no committed entry is ever lost.
class RaftChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaftChurnProperty, SafetyUnderCrashChurn) {
  const std::uint64_t seed = GetParam();
  sim::Xoshiro256 rng(seed);
  Cluster c(5, seed);
  c.start_all();
  std::vector<std::string> committed;
  for (int round = 0; round < 6; ++round) {
    // Random minority crash.
    const std::size_t nvictims = rng.uniform(3);  // 0..2 of 5
    std::vector<std::size_t> idx{0, 1, 2, 3, 4};
    rng.shuffle(idx);
    for (std::size_t v = 0; v < nvictims; ++v) c.nodes[idx[v]]->crash();
    // Commit a few entries through whatever majority remains.
    for (int k = 0; k < 3; ++k) {
      const std::string cmd = strfmt("r%d-k%d", round, k);
      c.must_submit(cmd);
      committed.push_back(cmd);
    }
    for (std::size_t v = 0; v < nvictims; ++v) c.nodes[idx[v]]->restart();
    c.settle(500 * sim::kMs);
  }
  c.settle(3 * sim::kSec);
  // Every node converged to exactly the committed sequence.
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    EXPECT_EQ(c.sms[i]->entries, committed) << "node " << i;
  }
  c.stop_all();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftChurnProperty, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace daosim::raft
