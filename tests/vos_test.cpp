// Tests for the Versioned Object Store: single-value epochs, array extent
// visibility, punches, enumeration, aggregation — including a randomized
// property suite cross-checked against a flat byte-map oracle.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "sim/random.hpp"
#include "vos/container.hpp"
#include "vos/target.hpp"

namespace daosim::vos {
namespace {

std::vector<std::byte> bytes(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}
std::string str(std::span<const std::byte> s) {
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

constexpr ObjId kOid{1, 100};

TEST(SingleValue, LatestVisibleAtEpoch) {
  SingleValueStore sv;
  auto v1 = bytes("one"), v2 = bytes("two");
  sv.put(v1, 10, PayloadMode::store);
  sv.put(v2, 20, PayloadMode::store);
  EXPECT_FALSE(sv.get(9).exists);
  EXPECT_EQ(str(sv.get(10).data), "one");
  EXPECT_EQ(str(sv.get(15).data), "one");
  EXPECT_EQ(str(sv.get(20).data), "two");
  EXPECT_EQ(str(sv.get(kEpochMax).data), "two");
}

TEST(SingleValue, PunchHidesValue) {
  SingleValueStore sv;
  auto v = bytes("x");
  sv.put(v, 5, PayloadMode::store);
  sv.punch(8);
  EXPECT_TRUE(sv.get(7).exists);
  EXPECT_FALSE(sv.get(8).exists);
  EXPECT_FALSE(sv.get(100).exists);
}

TEST(SingleValue, RewriteAfterPunch) {
  SingleValueStore sv;
  auto v1 = bytes("a"), v2 = bytes("b");
  sv.put(v1, 1, PayloadMode::store);
  sv.punch(2);
  sv.put(v2, 3, PayloadMode::store);
  EXPECT_FALSE(sv.get(2).exists);
  EXPECT_EQ(str(sv.get(3).data), "b");
}

TEST(SingleValue, AggregateDropsShadowedVersions) {
  SingleValueStore sv;
  for (Epoch e = 1; e <= 10; ++e) {
    auto v = bytes(strfmt("v%llu", static_cast<unsigned long long>(e)));
    sv.put(v, e, PayloadMode::store);
  }
  EXPECT_EQ(sv.version_count(), 10u);
  sv.aggregate(7);
  EXPECT_EQ(sv.version_count(), 4u);  // v7 + v8..v10
  EXPECT_EQ(str(sv.get(7).data), "v7");
  EXPECT_EQ(str(sv.get(9).data), "v9");
}

TEST(ArrayStore, WriteReadRoundTrip) {
  ArrayStore a;
  auto d = bytes("hello world");
  a.write(100, d.size(), d, 1, PayloadMode::store);
  std::vector<std::byte> out(11);
  EXPECT_EQ(a.read(100, out, 1), 11u);
  EXPECT_EQ(str(out), "hello world");
  EXPECT_EQ(a.size(1), 111u);
}

TEST(ArrayStore, HolesReadAsZero) {
  ArrayStore a;
  auto d = bytes("xy");
  a.write(10, 2, d, 1, PayloadMode::store);
  std::vector<std::byte> out(6);
  EXPECT_EQ(a.read(8, out, 1), 2u);
  EXPECT_EQ(out[0], std::byte{0});
  EXPECT_EQ(out[1], std::byte{0});
  EXPECT_EQ(char(out[2]), 'x');
  EXPECT_EQ(char(out[3]), 'y');
  EXPECT_EQ(out[4], std::byte{0});
}

TEST(ArrayStore, NewerEpochShadowsOlder) {
  ArrayStore a;
  auto d1 = bytes("aaaa"), d2 = bytes("BB");
  a.write(0, 4, d1, 1, PayloadMode::store);
  a.write(1, 2, d2, 2, PayloadMode::store);
  std::vector<std::byte> out(4);
  a.read(0, out, 2);
  EXPECT_EQ(str(out), "aBBa");
  a.read(0, out, 1);  // time travel: old epoch still intact
  EXPECT_EQ(str(out), "aaaa");
}

TEST(ArrayStore, RangePunchZeroes) {
  ArrayStore a;
  auto d = bytes("abcdef");
  a.write(0, 6, d, 1, PayloadMode::store);
  a.punch_range(2, 2, 2);
  std::vector<std::byte> out(6);
  EXPECT_EQ(a.read(0, out, 2), 4u);
  EXPECT_EQ(str(out), std::string("ab\0\0ef", 6));
}

TEST(ArrayStore, FullPunchResetsSize) {
  ArrayStore a;
  auto d = bytes("data");
  a.write(100, 4, d, 1, PayloadMode::store);
  a.punch_all(5);
  EXPECT_EQ(a.size(5), 0u);
  EXPECT_EQ(a.size(4), 104u);
  auto d2 = bytes("x");
  a.write(0, 1, d2, 6, PayloadMode::store);
  EXPECT_EQ(a.size(6), 1u);
  std::vector<std::byte> out(1);
  EXPECT_EQ(a.read(100, out, 6), 0u);  // pre-punch data invisible
}

TEST(ArrayStore, DiscardModeTracksSizesOnly) {
  ArrayStore a;
  a.write(0, 1024, {}, 1, PayloadMode::discard);
  EXPECT_EQ(a.size(1), 1024u);
  EXPECT_EQ(a.stored_bytes(), 0u);
  std::vector<std::byte> out(16);
  EXPECT_EQ(a.read(0, out, 1), 16u);  // filled (zeros), counts as data
}

TEST(ArrayStore, AggregateMergesAndPreservesView) {
  ArrayStore a;
  auto d1 = bytes("aaaaaaaa"), d2 = bytes("bbbb"), d3 = bytes("cc");
  a.write(0, 8, d1, 1, PayloadMode::store);
  a.write(2, 4, d2, 2, PayloadMode::store);
  a.write(4, 2, d3, 3, PayloadMode::store);
  std::vector<std::byte> before(8);
  a.read(0, before, 3);
  a.aggregate(3, PayloadMode::store);
  std::vector<std::byte> after(8);
  a.read(0, after, kEpochMax);
  EXPECT_EQ(str(before), str(after));
  EXPECT_EQ(str(after), "aabbccaa");  // e2 covers [2,6): bytes 6-7 stay from e1
  EXPECT_LE(a.extent_count(), 3u);
  EXPECT_EQ(a.size(kEpochMax), 8u);
}

TEST(ArrayStore, AggregateKeepsNewerVersions) {
  ArrayStore a;
  auto d1 = bytes("1111"), d2 = bytes("22");
  a.write(0, 4, d1, 1, PayloadMode::store);
  a.write(0, 2, d2, 10, PayloadMode::store);
  a.aggregate(5, PayloadMode::store);
  std::vector<std::byte> out(4);
  a.read(0, out, 5);
  EXPECT_EQ(str(out), "1111");
  a.read(0, out, 10);
  EXPECT_EQ(str(out), "2211");
}

TEST(ArrayStore, MaskNewerThanMarksOnlyBytesTouchedAfterCut) {
  ArrayStore a;
  auto d1 = bytes("aaaaaaaa"), d2 = bytes("bb");
  a.write(0, 8, d1, 5, PayloadMode::store);
  a.write(2, 2, d2, 9, PayloadMode::store);
  std::vector<bool> mask(8, false);
  a.mask_newer_than(0, 5, mask);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(mask[i], i == 2 || i == 3) << "byte " << i;
  }
  // A range punch is an edit too: its bytes count as touched.
  a.punch_range(6, 1, 12);
  std::vector<bool> punched(8, false);
  a.mask_newer_than(0, 5, punched);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(punched[i], i == 2 || i == 3 || i == 6) << "byte " << i;
  }
  // Existing bits survive: the helper only sets, never clears.
  std::vector<bool> keep(8, true);
  a.mask_newer_than(0, 100, keep);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(keep[i]);
}

TEST(ArrayStore, MaskNewerThanFullPunchCoversEverything) {
  ArrayStore a;
  auto d = bytes("data");
  a.write(0, 4, d, 3, PayloadMode::store);
  a.punch_all(7);
  std::vector<bool> mask(6, false);
  a.mask_newer_than(0, 5, mask);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_TRUE(mask[i]) << "byte " << i;
  // A punch at or below the cut does not count, and neither do older writes.
  std::vector<bool> none(6, false);
  a.mask_newer_than(0, 7, none);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FALSE(none[i]) << "byte " << i;
}

// ---------------------------------------------------------------------------
// Container-level

TEST(Container, KvPutGet) {
  VosContainer c(PayloadMode::store);
  auto v = bytes("value");
  c.kv_put(kOid, "dir-entry", "entry", v, c.next_epoch());
  auto view = c.kv_get(kOid, "dir-entry", "entry", kEpochMax);
  ASSERT_TRUE(view.exists);
  EXPECT_EQ(str(view.data), "value");
  EXPECT_FALSE(c.kv_get(kOid, "missing", "entry", kEpochMax).exists);
}

TEST(Container, KvLatestEpochTracksPutsAndPunches) {
  VosContainer c(PayloadMode::store);
  EXPECT_EQ(c.kv_latest_epoch(kOid, "d", "a"), 0u);
  auto v = bytes("value");
  const Epoch put_at = c.next_epoch();
  c.kv_put(kOid, "d", "a", v, put_at);
  EXPECT_EQ(c.kv_latest_epoch(kOid, "d", "a"), put_at);
  // A punch is the newest version too: resync must not resurrect a value a
  // reintegrated replica deleted after the floor.
  const Epoch punch_at = c.next_epoch();
  c.punch_akey(kOid, "d", "a", punch_at);
  EXPECT_EQ(c.kv_latest_epoch(kOid, "d", "a"), punch_at);
}

TEST(Container, ArrayAcrossDkeys) {
  VosContainer c(PayloadMode::store);
  auto d0 = bytes("chunk0"), d1 = bytes("chunk1");
  c.array_write(kOid, "0", "data", 0, 6, d0, c.next_epoch());
  c.array_write(kOid, "1", "data", 0, 6, d1, c.next_epoch());
  std::vector<std::byte> out(6);
  c.array_read(kOid, "1", "data", 0, out, kEpochMax);
  EXPECT_EQ(str(out), "chunk1");
  EXPECT_EQ(c.array_size(kOid, "0", "data", kEpochMax), 6u);
}

TEST(Container, MixingKvAndArrayOnSameAkeyThrows) {
  VosContainer c(PayloadMode::store);
  auto v = bytes("v");
  c.kv_put(kOid, "d", "a", v, c.next_epoch());
  EXPECT_THROW(c.array_write(kOid, "d", "a", 0, 1, v, c.next_epoch()), DaosimError);
}

TEST(Container, PunchDkeyHidesFromEnumeration) {
  VosContainer c(PayloadMode::store);
  auto v = bytes("v");
  c.kv_put(kOid, "file-a", "entry", v, c.next_epoch());
  c.kv_put(kOid, "file-b", "entry", v, c.next_epoch());
  EXPECT_EQ(c.list_dkeys(kOid, kEpochMax).size(), 2u);
  c.punch_dkey(kOid, "file-a", c.next_epoch());
  auto keys = c.list_dkeys(kOid, kEpochMax);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "file-b");
  // Older epochs still see both (snapshot semantics).
  EXPECT_EQ(c.list_dkeys(kOid, 2).size(), 2u);
}

TEST(Container, PunchObjectHidesEverything) {
  VosContainer c(PayloadMode::store);
  auto v = bytes("v");
  c.kv_put(kOid, "d1", "a", v, c.next_epoch());
  c.array_write(kOid, "d2", "arr", 0, 1, v, c.next_epoch());
  c.punch_object(kOid, c.next_epoch());
  EXPECT_TRUE(c.list_dkeys(kOid, kEpochMax).empty());
}

TEST(Container, ListAkeysFiltersPunched) {
  VosContainer c(PayloadMode::store);
  auto v = bytes("v");
  c.kv_put(kOid, "d", "a1", v, c.next_epoch());
  c.kv_put(kOid, "d", "a2", v, c.next_epoch());
  c.punch_akey(kOid, "d", "a1", c.next_epoch());
  auto akeys = c.list_akeys(kOid, "d", kEpochMax);
  ASSERT_EQ(akeys.size(), 1u);
  EXPECT_EQ(akeys[0], "a2");
}

TEST(Container, ArrayEndHint) {
  VosContainer c(PayloadMode::store);
  c.note_array_end(kOid, 4096);
  c.note_array_end(kOid, 1024);  // smaller: ignored
  EXPECT_EQ(c.array_end_hint(kOid), 4096u);
  EXPECT_EQ(c.array_end_hint(ObjId{9, 9}), 0u);
}

TEST(Container, ObjectEnumeration) {
  VosContainer c(PayloadMode::store);
  auto v = bytes("v");
  c.kv_put(ObjId{2, 1}, "d", "a", v, c.next_epoch());
  c.kv_put(ObjId{1, 5}, "d", "a", v, c.next_epoch());
  auto oids = c.list_objects();
  ASSERT_EQ(oids.size(), 2u);
  EXPECT_EQ(oids[0], (ObjId{1, 5}));  // sorted
  EXPECT_EQ(oids[1], (ObjId{2, 1}));
}

TEST(Target, ContainersAreIsolated) {
  VosTarget t(PayloadMode::store);
  auto v = bytes("v");
  auto& c1 = t.container(Uuid{1, 1});
  auto& c2 = t.container(Uuid{2, 2});
  c1.kv_put(kOid, "d", "a", v, c1.next_epoch());
  EXPECT_TRUE(c1.kv_get(kOid, "d", "a", kEpochMax).exists);
  EXPECT_FALSE(c2.kv_get(kOid, "d", "a", kEpochMax).exists);
  EXPECT_EQ(t.container_count(), 2u);
  EXPECT_TRUE(t.destroy_container(Uuid{2, 2}));
  EXPECT_EQ(t.container_count(), 1u);
}

TEST(Target, StoredBytesAccounting) {
  VosTarget t(PayloadMode::store);
  auto& c = t.container(Uuid{1, 1});
  auto d = bytes("12345678");
  c.array_write(kOid, "0", "data", 0, 8, d, c.next_epoch());
  EXPECT_EQ(t.stored_bytes(), 8u);
  EXPECT_EQ(t.logical_bytes_written(), 8u);
}

// ---------------------------------------------------------------------------
// Property: array visibility matches a per-epoch byte-map oracle.

class ArrayOracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArrayOracleProperty, MatchesByteOracle) {
  sim::Xoshiro256 rng(GetParam() * 2654435761ULL);
  ArrayStore a;
  // Oracle: full byte image + fill mask snapshot after every epoch.
  struct Snapshot {
    std::vector<char> img;
    std::vector<bool> filled;
  };
  const std::uint64_t space = 512;
  std::vector<Snapshot> snaps;  // snaps[e-1] = state at epoch e
  Snapshot cur{std::vector<char>(space, 0), std::vector<bool>(space, false)};

  for (Epoch e = 1; e <= 60; ++e) {
    const int op = int(rng.uniform(10));
    if (op < 7) {  // write
      const std::uint64_t off = rng.uniform(space - 1);
      const std::uint64_t len = 1 + rng.uniform(std::min<std::uint64_t>(64, space - off));
      std::vector<std::byte> data(len);
      for (auto& b : data) b = std::byte(rng.uniform(256));
      a.write(off, len, data, e, PayloadMode::store);
      for (std::uint64_t i = 0; i < len; ++i) {
        cur.img[off + i] = char(data[i]);
        cur.filled[off + i] = true;
      }
    } else if (op < 9) {  // range punch
      const std::uint64_t off = rng.uniform(space - 1);
      const std::uint64_t len = 1 + rng.uniform(std::min<std::uint64_t>(64, space - off));
      a.punch_range(off, len, e);
      for (std::uint64_t i = 0; i < len; ++i) {
        cur.img[off + i] = 0;
        cur.filled[off + i] = false;
      }
    } else {  // full punch
      a.punch_all(e);
      std::fill(cur.img.begin(), cur.img.end(), 0);
      std::fill(cur.filled.begin(), cur.filled.end(), false);
    }
    snaps.push_back(cur);
  }

  // Every epoch's full view matches, including after aggregation.
  for (int pass = 0; pass < 2; ++pass) {
    for (Epoch e = 1; e <= snaps.size(); ++e) {
      // After aggregating to epoch A, views at e >= A must still match.
      if (pass == 1 && e < 30) continue;
      std::vector<std::byte> out(space);
      a.read(0, out, e);
      const auto& snap = snaps[e - 1];
      for (std::uint64_t i = 0; i < space; ++i) {
        ASSERT_EQ(char(out[i]), snap.img[i]) << "epoch " << e << " byte " << i << " pass " << pass;
      }
    }
    if (pass == 0) a.aggregate(30, PayloadMode::store);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrayOracleProperty, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace daosim::vos
