// Determinism audit: the simulator's core claim is that a scenario replays
// bit-identically from its configuration. Scheduler::trace_hash() folds every
// dispatched event (virtual time, sequence, kind) into an FNV-1a digest;
// running the same scenario twice in one process must produce the same digest.
// Address-order nondeterminism (hash-map iteration feeding the event queue),
// wall-clock leakage, or unseeded randomness all diverge the digest, because
// the second run allocates at different addresses than the first.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "co_assert.hpp"
#include "fault/fault.hpp"
#include "ior/ior.hpp"
#include "sim/scheduler.hpp"

namespace daosim::ior {
namespace {

using cluster::ClusterConfig;
using cluster::Testbed;
using sim::CoTask;
using sim::Scheduler;

// ---------------------------------------------------------------------------
// Unit-level properties of the trace digest itself.

TEST(TraceHash, FreshSchedulerHasStableSeed) {
  Scheduler a, b;
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  a.run();
  EXPECT_EQ(a.trace_hash(), b.trace_hash()) << "empty run must not perturb the digest";
}

TEST(TraceHash, IdenticalSchedulesProduceIdenticalDigests) {
  auto drive = [] {
    Scheduler s;
    int hits = 0;
    s.schedule_callback(10, [&] { ++hits; });
    s.schedule_callback(20, [&] { ++hits; });
    s.spawn([&s]() -> CoTask<void> {
      co_await s.delay(15);
      co_await s.delay(15);
    });
    s.run();
    return s.trace_hash();
  };
  EXPECT_EQ(drive(), drive());
}

TEST(TraceHash, DifferentTimingsDiverge) {
  auto drive = [](sim::Time t) {
    Scheduler s;
    s.schedule_callback(t, [] {});
    s.run();
    return s.trace_hash();
  };
  EXPECT_NE(drive(10), drive(11));
}

TEST(TraceHash, DifferentOrderDiverges) {
  auto drive = [](bool swap) {
    Scheduler s;
    // Same two events; scheduling order decides the (time, seq) pairing.
    if (swap) {
      s.schedule_callback(20, [] {});
      s.schedule_callback(10, [] {});
    } else {
      s.schedule_callback(10, [] {});
      s.schedule_callback(20, [] {});
    }
    s.run();
    return s.trace_hash();
  };
  EXPECT_NE(drive(false), drive(true));
}

TEST(TraceHash, CancelledTimerChangesEventKind) {
  auto drive = [](bool cancel) {
    Scheduler s;
    sim::Timer t = s.schedule_callback(10, [] {});
    if (cancel) t.cancel();
    s.run();
    return s.trace_hash();
  };
  EXPECT_NE(drive(false), drive(true));
}

// ---------------------------------------------------------------------------
// End-to-end: each paper scenario (easy/hard x DFS/MPI-IO/HDF5) replays with a
// bit-identical event trace and bandwidth result.

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 2;
  return cfg;
}

IorConfig small_job(Api api, bool fpp) {
  IorConfig cfg;
  cfg.api = api;
  cfg.transfer_size = 256 * kKiB;
  cfg.block_size = 1 * kMiB;
  cfg.segments = 2;
  cfg.file_per_process = fpp;
  cfg.verify = true;
  return cfg;
}

struct RunDigest {
  std::uint64_t trace_hash;
  std::uint64_t events;
  std::uint64_t write_bytes;
  std::uint64_t read_bytes;
  double write_seconds;
  double read_seconds;
};

RunDigest run_scenario(Api api, bool fpp) {
  Testbed tb(small_cluster());
  tb.start();
  IorRunner runner(tb, /*ppn=*/4);
  const IorResult res = runner.run(small_job(api, fpp));
  tb.stop();
  return RunDigest{tb.sched().trace_hash(), tb.sched().events_processed(),
                   res.write.bytes,         res.read.bytes,
                   res.write.seconds,       res.read.seconds};
}

class DeterminismAudit
    : public ::testing::TestWithParam<std::tuple<Api, bool /*file_per_process*/>> {};

TEST_P(DeterminismAudit, BackToBackRunsReplayBitIdentically) {
  const auto [api, fpp] = GetParam();
  const RunDigest first = run_scenario(api, fpp);
  const RunDigest second = run_scenario(api, fpp);

  EXPECT_EQ(first.trace_hash, second.trace_hash)
      << to_string(api) << (fpp ? " easy" : " hard")
      << ": event traces diverged — hidden nondeterminism reached the scheduler";
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.write_bytes, second.write_bytes);
  EXPECT_EQ(first.read_bytes, second.read_bytes);
  EXPECT_EQ(first.write_seconds, second.write_seconds);
  EXPECT_EQ(first.read_seconds, second.read_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    EasyAndHard, DeterminismAudit,
    ::testing::Combine(::testing::Values(Api::dfs, Api::mpiio, Api::hdf5),
                       ::testing::Values(true, false)),
    [](const auto& tp) {
      return std::string(to_string(std::get<0>(tp.param))) +
             (std::get<1>(tp.param) ? "_easy" : "_hard");
    });

// ---------------------------------------------------------------------------
// Rebuild determinism: crash -> eviction -> scan -> throttled pulls ->
// rebuild_done all run through the scheduler, so a seeded crash + rebuild +
// readback scenario must fold into a bit-identical digest on replay.

std::uint64_t run_rebuild_scenario(const std::string& faults, bool readback) {
  Testbed tb(small_cluster());
  tb.start();
  auto schedule = fault::Schedule::parse(faults);
  EXPECT_TRUE(schedule.ok());
  tb.inject_faults(*schedule, /*seed=*/7);

  IorRunner runner(tb, /*ppn=*/4);
  IorConfig job = small_job(Api::daos_array, /*fpp=*/false);
  // RP_2GX spreads redundancy groups over every target, so the crashed
  // engine always hosts replicas and a real rebuild always runs.
  job.oclass = std::uint8_t(client::ObjClass::RP_2GX);
  const IorResult res = runner.run(job);
  EXPECT_EQ(res.verify_errors, 0u);
  EXPECT_TRUE(tb.wait_rebuild());

  if (readback) {
    // Post-heal readback folds degraded-read placement and the rebuilt
    // replicas' contents into the digest.
    const auto oid =
        client::make_oid(runner.last_job().oid_base, client::ObjClass::RP_2GX);
    const std::uint64_t seed = runner.last_job().file_seed;
    const std::uint64_t total =
        std::uint64_t(runner.ranks()) * job.block_size * job.segments;
    tb.run([&]() -> CoTask<void> {
      client::ArrayObject arr(tb.client(0), cluster::kPoolUuid, oid, 1 * kMiB);
      std::vector<std::byte> buf(256 * kKiB);
      std::uint64_t bad = 0;
      for (std::uint64_t off = 0; off < total; off += buf.size()) {
        auto n = co_await arr.read(off, buf);
        CO_ASSERT_TRUE(n.ok());
        if (*n != buf.size()) ++bad;
        bad += check_pattern(buf, off, seed);
      }
      EXPECT_EQ(bad, 0u);
    });
  }
  tb.stop();
  return tb.sched().trace_hash();
}

TEST(RebuildDeterminism, CrashRebuildReadbackReplaysBitIdentically) {
  const std::string faults = "crash@5ms:e3";
  const std::uint64_t first = run_rebuild_scenario(faults, /*readback=*/true);
  const std::uint64_t second = run_rebuild_scenario(faults, /*readback=*/true);
  EXPECT_EQ(first, second)
      << "rebuild traffic diverged — nondeterminism in scan/pull/apply ordering";
}

TEST(RebuildDeterminism, LeaderCrashMidRebuildResumesBitIdentically) {
  // Which replica won the first election is itself deterministic: probe it
  // once, then crash exactly that engine while the rebuild for engine 3 is
  // still in flight. The new leader must resume the task from the
  // Raft-committed done-set, and both runs must replay identically.
  std::uint32_t leader = 0;
  {
    Testbed probe(small_cluster());
    probe.start();
    const auto l = probe.svc_leader();
    ASSERT_TRUE(l.has_value());
    leader = *l;
    probe.stop();
  }
  const std::string faults = strfmt("crash@5ms:e3,crash@700ms:e%u", leader);
  const std::uint64_t first = run_rebuild_scenario(faults, /*readback=*/false);
  const std::uint64_t second = run_rebuild_scenario(faults, /*readback=*/false);
  EXPECT_EQ(first, second)
      << "leader failover mid-rebuild diverged — resume path is nondeterministic";
}

// ---------------------------------------------------------------------------
// Vectorized-path determinism: extent batching groups pieces through ordered
// std::maps and the EventQueue credit window gates launches through the
// scheduler, so batched and pipelined configurations must replay
// bit-identically too — and the knobs must actually reach the event trace.

std::uint64_t run_batched_scenario(std::uint32_t max_batch, std::uint32_t eq_depth) {
  ClusterConfig cluster = small_cluster();
  cluster.client.max_batch_extents = max_batch;
  Testbed tb(cluster);
  tb.start();
  // 32 KiB DFS chunks under 256 KiB transfers: eight extents per transfer,
  // so batching and the legacy per-extent path genuinely diverge.
  IorRunner runner(tb, /*ppn=*/4, /*chunk_size=*/32 * kKiB);
  IorConfig job = small_job(Api::dfs, /*fpp=*/false);
  job.eq_depth = eq_depth;
  const IorResult res = runner.run(job);
  EXPECT_EQ(res.verify_errors, 0u);
  EXPECT_EQ(res.read_fill_errors, 0u);
  tb.stop();
  return tb.sched().trace_hash();
}

TEST(BatchDeterminism, BatchedRunReplaysBitIdentically) {
  EXPECT_EQ(run_batched_scenario(16, 1), run_batched_scenario(16, 1));
}

TEST(BatchDeterminism, LegacyCapOneReplaysBitIdentically) {
  EXPECT_EQ(run_batched_scenario(1, 1), run_batched_scenario(1, 1));
}

TEST(BatchDeterminism, PipelinedEqReplaysBitIdentically) {
  EXPECT_EQ(run_batched_scenario(16, 4), run_batched_scenario(16, 4));
}

TEST(BatchDeterminism, KnobsPerturbTheTrace) {
  // Distinct configurations must not collapse onto one schedule; otherwise
  // the A/B ablation would be comparing identical runs.
  EXPECT_NE(run_batched_scenario(16, 1), run_batched_scenario(1, 1));
  EXPECT_NE(run_batched_scenario(16, 1), run_batched_scenario(16, 4));
}

}  // namespace
}  // namespace daosim::ior
