// Determinism audit: the simulator's core claim is that a scenario replays
// bit-identically from its configuration. Scheduler::trace_hash() folds every
// dispatched event (virtual time, sequence, kind) into an FNV-1a digest;
// running the same scenario twice in one process must produce the same digest.
// Address-order nondeterminism (hash-map iteration feeding the event queue),
// wall-clock leakage, or unseeded randomness all diverge the digest, because
// the second run allocates at different addresses than the first.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "ior/ior.hpp"
#include "sim/scheduler.hpp"

namespace daosim::ior {
namespace {

using cluster::ClusterConfig;
using cluster::Testbed;
using sim::CoTask;
using sim::Scheduler;

// ---------------------------------------------------------------------------
// Unit-level properties of the trace digest itself.

TEST(TraceHash, FreshSchedulerHasStableSeed) {
  Scheduler a, b;
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  a.run();
  EXPECT_EQ(a.trace_hash(), b.trace_hash()) << "empty run must not perturb the digest";
}

TEST(TraceHash, IdenticalSchedulesProduceIdenticalDigests) {
  auto drive = [] {
    Scheduler s;
    int hits = 0;
    s.schedule_callback(10, [&] { ++hits; });
    s.schedule_callback(20, [&] { ++hits; });
    s.spawn([&s]() -> CoTask<void> {
      co_await s.delay(15);
      co_await s.delay(15);
    });
    s.run();
    return s.trace_hash();
  };
  EXPECT_EQ(drive(), drive());
}

TEST(TraceHash, DifferentTimingsDiverge) {
  auto drive = [](sim::Time t) {
    Scheduler s;
    s.schedule_callback(t, [] {});
    s.run();
    return s.trace_hash();
  };
  EXPECT_NE(drive(10), drive(11));
}

TEST(TraceHash, DifferentOrderDiverges) {
  auto drive = [](bool swap) {
    Scheduler s;
    // Same two events; scheduling order decides the (time, seq) pairing.
    if (swap) {
      s.schedule_callback(20, [] {});
      s.schedule_callback(10, [] {});
    } else {
      s.schedule_callback(10, [] {});
      s.schedule_callback(20, [] {});
    }
    s.run();
    return s.trace_hash();
  };
  EXPECT_NE(drive(false), drive(true));
}

TEST(TraceHash, CancelledTimerChangesEventKind) {
  auto drive = [](bool cancel) {
    Scheduler s;
    sim::Timer t = s.schedule_callback(10, [] {});
    if (cancel) t.cancel();
    s.run();
    return s.trace_hash();
  };
  EXPECT_NE(drive(false), drive(true));
}

// ---------------------------------------------------------------------------
// End-to-end: each paper scenario (easy/hard x DFS/MPI-IO/HDF5) replays with a
// bit-identical event trace and bandwidth result.

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 2;
  return cfg;
}

IorConfig small_job(Api api, bool fpp) {
  IorConfig cfg;
  cfg.api = api;
  cfg.transfer_size = 256 * kKiB;
  cfg.block_size = 1 * kMiB;
  cfg.segments = 2;
  cfg.file_per_process = fpp;
  cfg.verify = true;
  return cfg;
}

struct RunDigest {
  std::uint64_t trace_hash;
  std::uint64_t events;
  std::uint64_t write_bytes;
  std::uint64_t read_bytes;
  double write_seconds;
  double read_seconds;
};

RunDigest run_scenario(Api api, bool fpp) {
  Testbed tb(small_cluster());
  tb.start();
  IorRunner runner(tb, /*ppn=*/4);
  const IorResult res = runner.run(small_job(api, fpp));
  tb.stop();
  return RunDigest{tb.sched().trace_hash(), tb.sched().events_processed(),
                   res.write.bytes,         res.read.bytes,
                   res.write.seconds,       res.read.seconds};
}

class DeterminismAudit
    : public ::testing::TestWithParam<std::tuple<Api, bool /*file_per_process*/>> {};

TEST_P(DeterminismAudit, BackToBackRunsReplayBitIdentically) {
  const auto [api, fpp] = GetParam();
  const RunDigest first = run_scenario(api, fpp);
  const RunDigest second = run_scenario(api, fpp);

  EXPECT_EQ(first.trace_hash, second.trace_hash)
      << to_string(api) << (fpp ? " easy" : " hard")
      << ": event traces diverged — hidden nondeterminism reached the scheduler";
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.write_bytes, second.write_bytes);
  EXPECT_EQ(first.read_bytes, second.read_bytes);
  EXPECT_EQ(first.write_seconds, second.write_seconds);
  EXPECT_EQ(first.read_seconds, second.read_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    EasyAndHard, DeterminismAudit,
    ::testing::Combine(::testing::Values(Api::dfs, Api::mpiio, Api::hdf5),
                       ::testing::Values(true, false)),
    [](const auto& tp) {
      return std::string(to_string(std::get<0>(tp.param))) +
             (std::get<1>(tp.param) ? "_easy" : "_hard");
    });

}  // namespace
}  // namespace daosim::ior
