// Coroutine-safe assertion macros: gtest's ASSERT_* use `return`, which is
// illegal inside a coroutine; these record the failure and co_return.
#pragma once

#include <gtest/gtest.h>

#define CO_ASSERT_TRUE(cond)                              \
  do {                                                    \
    if (!(cond)) {                                        \
      ADD_FAILURE() << "CO_ASSERT_TRUE(" #cond ")";       \
      co_return;                                          \
    }                                                     \
  } while (0)

#define CO_ASSERT_OK(expr)                                               \
  do {                                                                   \
    const auto& co_assert_val = (expr);                                  \
    if (!co_assert_val.ok()) {                                           \
      ADD_FAILURE() << #expr << " failed: "                              \
                    << ::daosim::errno_name(co_assert_val.error());      \
      co_return;                                                         \
    }                                                                    \
  } while (0)

#define CO_ASSERT_EQ(a, b)                                \
  do {                                                    \
    if (!((a) == (b))) {                                  \
      ADD_FAILURE() << "CO_ASSERT_EQ(" #a ", " #b ")";    \
      co_return;                                          \
    }                                                     \
  } while (0)

#define CO_ASSERT_ERRNO(expr, expected)                                      \
  do {                                                                       \
    const auto co_assert_rc = (expr);                                        \
    if (co_assert_rc != (expected)) {                                        \
      ADD_FAILURE() << #expr << " = " << ::daosim::errno_name(co_assert_rc)  \
                    << ", expected " << ::daosim::errno_name(expected);      \
      co_return;                                                             \
    }                                                                        \
  } while (0)
