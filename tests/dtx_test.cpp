// Distributed-transaction suite: the VOS DTX tables (prepared staging,
// key locks, sticky decisions, aggregation floor), the client-coordinated
// two-phase commit across shards (atomic visibility, conflict restart,
// snapshots and read-at-snapshot), the crash/resync matrix from docs/dtx.md
// (orphan reaping, resync after a coordinator or participant failure,
// pool-service leader loss during 2PC), and a randomized many-client
// serializability property that must replay bit-identically.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/tx.hpp"
#include "cluster/testbed.hpp"
#include "co_assert.hpp"
#include "engine/proto.hpp"
#include "fault/fault.hpp"
#include "vos/container.hpp"
#include "vos/dtx.hpp"

namespace daosim {
namespace {

using client::ObjClass;
using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;  // 4 engines; svc replicas on engines 0..2
  cfg.targets_per_engine = 4;  // 16 targets
  cfg.client_nodes = 2;
  return cfg;
}

std::vector<std::byte> bytes(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string str(const std::vector<std::byte>& v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

std::string str(const vos::SingleValueStore::View& v) {
  return std::string(reinterpret_cast<const char*>(v.data.data()), v.data.size());
}

vos::DtxOp kv_op(vos::ObjId oid, const vos::Key& dkey, const vos::Key& akey,
                 const std::string& value) {
  vos::DtxOp op;
  op.oid = oid;
  op.dkey = dkey;
  op.akey = akey;
  op.single_value = true;
  op.length = value.size();
  op.data = std::make_shared<std::vector<std::byte>>(bytes(value));
  return op;
}

vos::DtxOp arr_op(vos::ObjId oid, const vos::Key& dkey, const vos::Key& akey,
                  std::uint64_t offset, const std::string& value) {
  vos::DtxOp op;
  op.oid = oid;
  op.dkey = dkey;
  op.akey = akey;
  op.single_value = false;
  op.offset = offset;
  op.length = value.size();
  op.array_end_hint = offset + value.size();
  op.data = std::make_shared<std::vector<std::byte>>(bytes(value));
  return op;
}

vos::DtxEntry make_entry(std::uint64_t seq, vos::Epoch epoch, std::vector<vos::DtxOp> ops) {
  vos::DtxEntry e;
  e.id = vos::DtxId{/*client=*/7, seq};
  e.epoch = epoch;
  e.ops = std::move(ops);
  return e;
}

/// Testbed engine index owning fabric node `node`.
std::uint32_t engine_index(Testbed& tb, net::NodeId node) {
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    if (tb.engine(e).node() == node) return e;
  }
  ADD_FAILURE() << "no engine for node " << node;
  return 0;
}

/// The engine-side container shard behind pool-map target `mt`.
vos::VosContainer& shard_of(Testbed& tb, std::uint32_t mt) {
  const pool::TargetRef ref = tb.pool_map().targets[mt];
  return tb.engine(engine_index(tb, ref.engine)).vos_target(ref.target).container(kPoolUuid);
}

// ---------------------------------------------------------------------------
// Part A — VOS DTX tables (pure unit tests on one container shard).

TEST(DtxVos, HlcEpochLayout) {
  EXPECT_EQ(vos::hlc_base(5), vos::Epoch(5) << vos::kHlcLogicalBits);
  // Client epochs sit in the upper half of the nanosecond's logical range.
  EXPECT_EQ(vos::hlc_client(5, 3), (vos::Epoch(5) << 8) | 0x80 | 3);
  EXPECT_GT(vos::hlc_client(5, 0), vos::hlc_base(5));
  EXPECT_LT(vos::hlc_client(5, 0x7F), vos::hlc_base(6));
  // Distinct client nodes never collide within one nanosecond.
  EXPECT_NE(vos::hlc_client(5, 1), vos::hlc_client(5, 2));
  // Node ids wrap at 7 bits (the documented >127-clients caveat).
  EXPECT_EQ(vos::hlc_client(5, 0x80 | 9), vos::hlc_client(5, 9));

  // An engine clock run forward to hlc_base(now) issues epochs strictly
  // below every client epoch of the same nanosecond.
  vos::VosContainer c(vos::PayloadMode::store);
  c.observe_time(vos::hlc_base(100));
  EXPECT_LT(c.next_epoch(), vos::hlc_client(100, 0));
  // observe_time never runs the clock backwards.
  c.observe_time(vos::hlc_base(50));
  EXPECT_GT(c.current_epoch(), vos::hlc_base(100));
}

TEST(DtxVos, PrepareIsInvisibleToReads) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto oid = client::make_oid(1, ObjClass::S1);
  auto e = make_entry(1, vos::hlc_client(10, 1), {kv_op(oid, "d", "a", "staged")});
  const vos::DtxId id = e.id;
  ASSERT_EQ(c.dtx_prepare(std::move(e)), Errno::ok);

  EXPECT_FALSE(c.kv_get(oid, "d", "a", vos::kEpochMax).exists);
  EXPECT_EQ(c.dtx_state(id), vos::DtxState::prepared);
  EXPECT_EQ(c.dtx_prepared_count(), 1u);
  ASSERT_NE(c.dtx_find_prepared(id), nullptr);
  EXPECT_EQ(c.dtx_find_prepared(id)->epoch, vos::hlc_client(10, 1));
}

TEST(DtxVos, CommitAppliesEveryStagedOp) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto o1 = client::make_oid(1, ObjClass::S1);
  const auto o2 = client::make_oid(2, ObjClass::S1);
  const vos::Epoch ep = vos::hlc_client(10, 1);
  auto e = make_entry(1, ep,
                      {kv_op(o1, "d", "a", "alpha"), kv_op(o2, "d2", "a", "beta"),
                       arr_op(o1, "0", "arr", 3, "gamma")});
  const vos::DtxId id = e.id;
  ASSERT_EQ(c.dtx_prepare(std::move(e)), Errno::ok);
  EXPECT_TRUE(c.dtx_commit(id));

  // All three ops became visible at the transaction epoch, atomically.
  const auto v1 = c.kv_get(o1, "d", "a", vos::kEpochMax);
  const auto v2 = c.kv_get(o2, "d2", "a", vos::kEpochMax);
  ASSERT_TRUE(v1.exists && v2.exists);
  EXPECT_EQ(str(v1), "alpha");
  EXPECT_EQ(str(v2), "beta");
  std::vector<std::byte> out(5);
  EXPECT_EQ(c.array_read(o1, "0", "arr", 3, out, vos::kEpochMax), 5u);
  EXPECT_EQ(str(out), "gamma");
  // Nothing is visible below the commit epoch.
  EXPECT_FALSE(c.kv_get(o1, "d", "a", ep - 1).exists);
  EXPECT_EQ(c.dtx_state(id), vos::DtxState::committed);
  EXPECT_EQ(c.dtx_prepared_count(), 0u);
}

TEST(DtxVos, AbortLeavesNoTrace) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto oid = client::make_oid(1, ObjClass::S1);
  auto e = make_entry(1, vos::hlc_client(10, 1), {kv_op(oid, "d", "a", "never")});
  const vos::DtxId id = e.id;
  ASSERT_EQ(c.dtx_prepare(std::move(e)), Errno::ok);
  c.dtx_abort(id);

  EXPECT_FALSE(c.kv_get(oid, "d", "a", vos::kEpochMax).exists);
  EXPECT_EQ(c.kv_latest_epoch(oid, "d", "a"), 0u);
  EXPECT_EQ(c.dtx_state(id), vos::DtxState::aborted);
  EXPECT_EQ(c.dtx_prepared_count(), 0u);
}

TEST(DtxVos, PreparedKeysLockOutConcurrentTransactions) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto oid = client::make_oid(1, ObjClass::S1);
  auto e1 = make_entry(1, vos::hlc_client(10, 1), {kv_op(oid, "d", "a", "first")});
  const vos::DtxId id1 = e1.id;
  ASSERT_EQ(c.dtx_prepare(std::move(e1)), Errno::ok);

  // Same (oid, dkey, akey): write-write conflict, the later arrival restarts.
  EXPECT_EQ(c.dtx_prepare(make_entry(2, vos::hlc_client(11, 2), {kv_op(oid, "d", "a", "loser")})),
            Errno::tx_restart);
  // A different akey is an independent lock.
  EXPECT_EQ(c.dtx_prepare(make_entry(3, vos::hlc_client(11, 3), {kv_op(oid, "d", "b", "fine")})),
            Errno::ok);
  // Once the holder commits, the key is free again (at a higher epoch).
  EXPECT_TRUE(c.dtx_commit(id1));
  EXPECT_EQ(c.dtx_prepare(make_entry(4, vos::hlc_client(12, 2), {kv_op(oid, "d", "a", "next")})),
            Errno::ok);
}

TEST(DtxVos, LostUpdateConflictsWithNewerCommittedRecord) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto oid = client::make_oid(1, ObjClass::S1);
  c.observe_time(vos::hlc_base(100));
  const vos::Epoch committed = c.next_epoch();
  c.kv_put(oid, "d", "a", bytes("committed"), committed);

  // A transaction whose epoch predates the committed record would shadow it.
  EXPECT_EQ(c.dtx_prepare(make_entry(1, vos::hlc_client(50, 1), {kv_op(oid, "d", "a", "old")})),
            Errno::tx_restart);
  // At a newer epoch the same write prepares fine.
  EXPECT_EQ(c.dtx_prepare(make_entry(2, vos::hlc_client(200, 1), {kv_op(oid, "d", "a", "new")})),
            Errno::ok);
}

TEST(DtxVos, EqualEpochCommitConflictsInsteadOfSilentOverwrite) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto oid = client::make_oid(1, ObjClass::S1);
  // hlc_client keys client epochs by only 7 node bits: two clients whose
  // node ids collide mod 128 mint the SAME epoch in the same virtual
  // nanosecond.
  const vos::Epoch ep = vos::hlc_client(10, 1);
  ASSERT_EQ(vos::hlc_client(10, 0x80 | 1), ep);

  auto e1 = make_entry(1, ep, {kv_op(oid, "d", "a", "first")});
  const vos::DtxId id1 = e1.id;
  ASSERT_EQ(c.dtx_prepare(std::move(e1)), Errno::ok);
  EXPECT_TRUE(c.dtx_commit(id1));

  // A second transaction at the equal epoch must conflict: committing it
  // would silently replace the first value (insert_sorted overwrites
  // same-epoch records) — an undetected lost update, not a visible race.
  EXPECT_EQ(c.dtx_prepare(make_entry(2, ep, {kv_op(oid, "d", "a", "second")})),
            Errno::tx_restart);
  const auto v = c.kv_get(oid, "d", "a", vos::kEpochMax);
  ASSERT_TRUE(v.exists);
  EXPECT_EQ(str(v), "first");
}

TEST(DtxVos, DecisionsAreStickyAndIdempotent) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto oid = client::make_oid(1, ObjClass::S1);

  // Commit decided before any prepare arrived (lost prepare reply): the
  // decision is recorded and a late prepare retry reports success.
  const vos::DtxId ic{7, 1};
  EXPECT_TRUE(c.dtx_commit(ic));
  EXPECT_EQ(c.dtx_state(ic), vos::DtxState::committed);
  EXPECT_EQ(c.dtx_prepare(make_entry(1, vos::hlc_client(10, 1), {kv_op(oid, "d", "a", "x")})),
            Errno::ok);
  // A decision never flips.
  c.dtx_abort(ic);
  EXPECT_EQ(c.dtx_state(ic), vos::DtxState::committed);

  // Abort decided first (the reaper won a race): a late prepare restarts and
  // a late commit reports the abort.
  const vos::DtxId ia{7, 2};
  c.dtx_abort(ia);
  EXPECT_EQ(c.dtx_prepare(make_entry(2, vos::hlc_client(10, 2), {kv_op(oid, "d", "b", "y")})),
            Errno::tx_restart);
  EXPECT_FALSE(c.dtx_commit(ia));
  EXPECT_EQ(c.dtx_state(ia), vos::DtxState::aborted);

  // Duplicate prepare of a live transaction is a no-op success.
  auto e = make_entry(3, vos::hlc_client(11, 1), {kv_op(oid, "d", "c", "z")});
  ASSERT_EQ(c.dtx_prepare(e), Errno::ok);
  EXPECT_EQ(c.dtx_prepare(e), Errno::ok);
  EXPECT_EQ(c.dtx_prepared_count(), 1u);
}

TEST(DtxVos, CommitLandsBelowAdvancedEpochClock) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto oid = client::make_oid(1, ObjClass::S1);
  // Ordinary writes run the shard clock far past the transaction's epoch.
  c.observe_time(vos::hlc_base(1000));
  c.kv_put(oid, "d", "other", bytes("late"), c.next_epoch());

  const vos::Epoch ep = vos::hlc_client(500, 1);
  auto e = make_entry(1, ep, {kv_op(oid, "d", "a", "tx")});
  const vos::DtxId id = e.id;
  ASSERT_EQ(c.dtx_prepare(std::move(e)), Errno::ok);
  EXPECT_TRUE(c.dtx_commit(id));

  // The commit inserted in sorted epoch order below the clock: visible both
  // at its own epoch and at the present.
  EXPECT_EQ(str(c.kv_get(oid, "d", "a", ep)), "tx");
  EXPECT_EQ(str(c.kv_get(oid, "d", "a", vos::kEpochMax)), "tx");
  EXPECT_GT(c.current_epoch(), vos::hlc_base(1000));

  // A later put at a higher epoch shadows it only above that epoch.
  c.kv_put(oid, "d", "a", bytes("newer"), c.next_epoch());
  EXPECT_EQ(str(c.kv_get(oid, "d", "a", ep)), "tx");
  EXPECT_EQ(str(c.kv_get(oid, "d", "a", vos::kEpochMax)), "newer");
}

TEST(DtxVos, PreparedEntriesPinAggregation) {
  vos::VosContainer c(vos::PayloadMode::store);
  const auto oid = client::make_oid(1, ObjClass::S1);
  c.observe_time(vos::hlc_base(10));
  const vos::Epoch e1 = c.next_epoch();
  c.kv_put(oid, "d", "a", bytes("v1"), e1);

  // Prepare between v1 and a later v3; the undecided entry floors aggregation.
  const vos::Epoch ep = vos::hlc_client(20, 1);
  auto e = make_entry(1, ep, {kv_op(oid, "d", "a", "tx")});
  const vos::DtxId id = e.id;
  ASSERT_EQ(c.dtx_prepare(std::move(e)), Errno::ok);
  EXPECT_EQ(c.dtx_min_prepared_epoch(), ep);

  c.observe_time(vos::hlc_base(30));
  const vos::Epoch e3 = c.next_epoch();
  c.kv_put(oid, "d", "a", bytes("v3"), e3);

  // Unclamped this would merge v1 away; the DTX floor keeps everything the
  // pending commit at `ep` could still be read against.
  c.aggregate(vos::kEpochMax);
  EXPECT_EQ(str(c.kv_get(oid, "d", "a", e1)), "v1");

  EXPECT_TRUE(c.dtx_commit(id));
  EXPECT_EQ(str(c.kv_get(oid, "d", "a", ep)), "tx");
  EXPECT_EQ(str(c.kv_get(oid, "d", "a", vos::kEpochMax)), "v3");
  EXPECT_EQ(c.dtx_min_prepared_epoch(), vos::kEpochMax);

  // With the table drained the same aggregation now squashes history.
  c.aggregate(vos::kEpochMax);
  EXPECT_FALSE(c.kv_get(oid, "d", "a", e1).exists);
  EXPECT_EQ(str(c.kv_get(oid, "d", "a", vos::kEpochMax)), "v3");
}

// ---------------------------------------------------------------------------
// Part B — client transactions on the live cluster.

TEST(DtxCluster, CommitIsAtomicAcrossObjectsAndShards) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto o1 = client::make_oid(1, ObjClass::S2);
    const auto o2 = client::make_oid(2, ObjClass::S2);
    client::KvObject k1(cl, kPoolUuid, o1);
    client::KvObject k2(cl, kPoolUuid, o2);

    auto tx = cl.tx_begin(kPoolUuid);
    tx.kv_put(o1, "rank0", "state", bytes("alpha"));
    tx.kv_put(o1, "rank1", "state", bytes("beta"));
    tx.kv_put(o2, "rank0", "state", bytes("gamma"));
    CO_ASSERT_EQ(tx.staged_ops(), 3u);
    CO_ASSERT_TRUE(tx.participants() >= 2);  // S2 dkeys spread over 2 shards

    // Nothing is visible while staged.
    CO_ASSERT_ERRNO((co_await k1.get("rank0", "state")).error(), Errno::no_entry);

    CO_ASSERT_ERRNO(co_await tx.commit(), Errno::ok);
    CO_ASSERT_TRUE(tx.committed());
    CO_ASSERT_TRUE(tx.commit_epoch() > 0);

    // Everything is visible, with the staged bytes, on every touched shard.
    auto r1 = co_await k1.get("rank0", "state");
    auto r2 = co_await k1.get("rank1", "state");
    auto r3 = co_await k2.get("rank0", "state");
    CO_ASSERT_OK(r1);
    CO_ASSERT_OK(r2);
    CO_ASSERT_OK(r3);
    CO_ASSERT_EQ(str(*r1), "alpha");
    CO_ASSERT_EQ(str(*r2), "beta");
    CO_ASSERT_EQ(str(*r3), "gamma");
    // And nothing is visible below the commit epoch: the cut is atomic.
    CO_ASSERT_ERRNO((co_await k1.get("rank0", "state", tx.commit_epoch() - 1)).error(),
                    Errno::no_entry);
    CO_ASSERT_OK(co_await k1.get("rank1", "state", tx.commit_epoch()));
  });
  tb.stop();
}

TEST(DtxCluster, EmptyTransactionCommits) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    auto tx = cl.tx_begin(kPoolUuid);
    CO_ASSERT_EQ(tx.staged_ops(), 0u);
    CO_ASSERT_ERRNO(co_await tx.commit(), Errno::ok);
    CO_ASSERT_TRUE(tx.committed());
    CO_ASSERT_EQ(cl.tx_commits(), 1u);
  });
  tb.stop();
}

TEST(DtxCluster, AbortDropsStagedWrites) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto oid = client::make_oid(1, ObjClass::S1);
    client::KvObject kv(cl, kPoolUuid, oid);

    auto tx = cl.tx_begin(kPoolUuid);
    tx.kv_put(oid, "d", "a", bytes("discarded"));
    CO_ASSERT_ERRNO(co_await tx.abort(), Errno::ok);
    CO_ASSERT_TRUE(!tx.open());

    CO_ASSERT_ERRNO((co_await kv.get("d", "a")).error(), Errno::no_entry);
    CO_ASSERT_EQ(cl.tx_aborts(), 1u);
    CO_ASSERT_EQ(cl.tx_commits(), 0u);
  });
  tb.stop();
}

TEST(DtxCluster, WriteWriteConflictHasOneWinner) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& ca = tb.client(0);
    auto& cb = tb.client(1);
    CO_ASSERT_OK(co_await ca.cont_create(kPoolUuid, {}));
    const auto oid = client::make_oid(1, ObjClass::S1);

    Errno ra = Errno::ok;
    Errno rb = Errno::ok;
    vos::Epoch ea = 0;
    vos::Epoch eb = 0;
    sim::WaitGroup wg(tb.sched());
    wg.spawn([&]() -> CoTask<void> {
      auto tx = ca.tx_begin(kPoolUuid);
      tx.kv_put(oid, "shared", "a", bytes("from-A"));
      ra = co_await tx.commit();
      ea = tx.commit_epoch();
    });
    wg.spawn([&]() -> CoTask<void> {
      auto tx = cb.tx_begin(kPoolUuid);
      tx.kv_put(oid, "shared", "a", bytes("from-B"));
      rb = co_await tx.commit();
      eb = tx.commit_epoch();
    });
    co_await wg.wait();

    // Exactly one transaction wins; the loser is told to restart.
    const bool a_won = ra == Errno::ok;
    const bool b_won = rb == Errno::ok;
    CO_ASSERT_TRUE(a_won != b_won);
    CO_ASSERT_ERRNO(a_won ? rb : ra, Errno::tx_restart);
    CO_ASSERT_EQ(ca.tx_restarts() + cb.tx_restarts(), 1u);
    CO_ASSERT_EQ(ca.tx_commits() + cb.tx_commits(), 1u);

    client::KvObject kv(ca, kPoolUuid, oid);
    auto r = co_await kv.get("shared", "a");
    CO_ASSERT_OK(r);
    CO_ASSERT_EQ(str(*r), a_won ? "from-A" : "from-B");
    // The winner's epoch is the one the value is visible at.
    CO_ASSERT_OK(co_await kv.get("shared", "a", a_won ? ea : eb));
  });
  tb.stop();
}

TEST(DtxCluster, RunTxRetriesConflictsToCommit) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& ca = tb.client(0);
    auto& cb = tb.client(1);
    CO_ASSERT_OK(co_await ca.cont_create(kPoolUuid, {}));
    const auto oid = client::make_oid(1, ObjClass::S1);

    Errno ra = Errno::ok;
    Errno rb = Errno::ok;
    sim::WaitGroup wg(tb.sched());
    wg.spawn([&]() -> CoTask<void> {
      ra = co_await ca.run_tx(kPoolUuid, [&](client::TxHandle& tx) -> CoTask<Errno> {
        tx.kv_put(oid, "shared", "a", bytes("A"));
        tx.kv_put(oid, "shared", "b", bytes("A"));
        co_return Errno::ok;
      });
    });
    wg.spawn([&]() -> CoTask<void> {
      rb = co_await cb.run_tx(kPoolUuid, [&](client::TxHandle& tx) -> CoTask<Errno> {
        tx.kv_put(oid, "shared", "a", bytes("B"));
        tx.kv_put(oid, "shared", "b", bytes("B"));
        co_return Errno::ok;
      });
    });
    co_await wg.wait();

    // The restart loop absorbs the conflict: both eventually commit.
    CO_ASSERT_ERRNO(ra, Errno::ok);
    CO_ASSERT_ERRNO(rb, Errno::ok);
    CO_ASSERT_EQ(ca.tx_commits() + cb.tx_commits(), 2u);
    CO_ASSERT_TRUE(ca.tx_restarts() + cb.tx_restarts() >= 1);

    // Atomicity held through the retries: both akeys carry one writer.
    client::KvObject kv(ca, kPoolUuid, oid);
    auto r1 = co_await kv.get("shared", "a");
    auto r2 = co_await kv.get("shared", "b");
    CO_ASSERT_OK(r1);
    CO_ASSERT_OK(r2);
    CO_ASSERT_EQ(str(*r1), str(*r2));
  });
  tb.stop();
}

TEST(DtxCluster, TransactionalArrayWriteRoundTrips) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto oid = client::make_oid(1, ObjClass::S4);
    const std::uint64_t chunk = 64;

    std::string payload;
    for (int i = 0; i < 200; ++i) payload.push_back(char('a' + i % 23));

    auto tx = cl.tx_begin(kPoolUuid);
    // Offset 10, length 200 with 64-byte chunks: spans chunks 0..3.
    tx.array_write(oid, chunk, 10, payload.size(), bytes(payload));
    CO_ASSERT_TRUE(tx.staged_ops() >= 4);
    CO_ASSERT_ERRNO(co_await tx.commit(), Errno::ok);

    client::ArrayObject arr(cl, kPoolUuid, oid, chunk);
    std::vector<std::byte> out(payload.size());
    auto rd = co_await arr.read(10, out);
    CO_ASSERT_OK(rd);
    CO_ASSERT_EQ(*rd, payload.size());
    CO_ASSERT_EQ(str(out), payload);
    auto sz = co_await arr.size();
    CO_ASSERT_OK(sz);
    CO_ASSERT_EQ(*sz, 10u + payload.size());
  });
  tb.stop();
}

TEST(DtxCluster, ReadAtSnapshotIsolatesFromLaterWrites) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto oid = client::make_oid(1, ObjClass::S2);
    client::KvObject kv(cl, kPoolUuid, oid);

    CO_ASSERT_ERRNO(co_await kv.put("d", "a", bytes("gen-1")), Errno::ok);
    auto snap = co_await cl.snapshot_create(kPoolUuid);
    CO_ASSERT_OK(snap);
    const vos::Epoch e1 = *snap;
    CO_ASSERT_ERRNO(co_await kv.put("d", "a", bytes("gen-2")), Errno::ok);
    CO_ASSERT_ERRNO(co_await kv.put("d", "b", bytes("new-key")), Errno::ok);

    // Present reads see the overwrite; the snapshot still reads gen-1 and
    // keys created after it do not exist there.
    auto now = co_await kv.get("d", "a");
    auto old = co_await kv.get("d", "a", e1);
    CO_ASSERT_OK(now);
    CO_ASSERT_OK(old);
    CO_ASSERT_EQ(str(*now), "gen-2");
    CO_ASSERT_EQ(str(*old), "gen-1");
    CO_ASSERT_ERRNO((co_await kv.get("d", "b", e1)).error(), Errno::no_entry);
  });
  tb.stop();
}

TEST(DtxCluster, SnapshotPinsAggregationUntilDestroyed) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto oid = client::make_oid(1, ObjClass::S2);
    client::KvObject kv(cl, kPoolUuid, oid);

    CO_ASSERT_ERRNO(co_await kv.put("d", "a", bytes("pinned")), Errno::ok);
    auto snap = co_await cl.snapshot_create(kPoolUuid);
    CO_ASSERT_OK(snap);
    const vos::Epoch e1 = *snap;
    CO_ASSERT_ERRNO(co_await kv.put("d", "a", bytes("current")), Errno::ok);

    // Aggregation clamps below the registered snapshot: the pinned version
    // survives and the snapshot read still answers.
    CO_ASSERT_OK(co_await cl.cont_aggregate(kPoolUuid));
    auto old = co_await kv.get("d", "a", e1);
    CO_ASSERT_OK(old);
    CO_ASSERT_EQ(str(*old), "pinned");

    // Destroying the snapshot unpins the epoch; the next aggregation merges
    // the old version away and the time-travel read comes back empty.
    CO_ASSERT_OK(co_await cl.snapshot_destroy(kPoolUuid, e1));
    CO_ASSERT_OK(co_await cl.cont_aggregate(kPoolUuid));
    CO_ASSERT_ERRNO((co_await kv.get("d", "a", e1)).error(), Errno::no_entry);
    auto now = co_await kv.get("d", "a");
    CO_ASSERT_OK(now);
    CO_ASSERT_EQ(str(*now), "current");
  });
  tb.stop();
}

TEST(DtxCluster, SnapshotRegistryListsAndDestroys) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));

    auto s1 = co_await cl.snapshot_create(kPoolUuid);
    CO_ASSERT_OK(s1);
    auto s2 = co_await cl.snapshot_create(kPoolUuid);
    CO_ASSERT_OK(s2);
    CO_ASSERT_TRUE(*s1 < *s2);

    auto ls = co_await cl.list_snapshots(kPoolUuid);
    CO_ASSERT_OK(ls);
    CO_ASSERT_EQ(ls->size(), 2u);
    CO_ASSERT_EQ((*ls)[0], *s1);
    CO_ASSERT_EQ((*ls)[1], *s2);

    CO_ASSERT_OK(co_await cl.snapshot_destroy(kPoolUuid, *s1));
    ls = co_await cl.list_snapshots(kPoolUuid);
    CO_ASSERT_OK(ls);
    CO_ASSERT_EQ(ls->size(), 1u);
    CO_ASSERT_EQ((*ls)[0], *s2);

    // Destroy is not idempotent: the registry reports the missing epoch.
    CO_ASSERT_ERRNO((co_await cl.snapshot_destroy(kPoolUuid, *s1)).error(), Errno::no_entry);
    // Snapshots of an unknown container are rejected.
    CO_ASSERT_TRUE(!(co_await cl.snapshot_create(vos::Uuid{0xBAD, 0xBAD})).ok());
  });
  tb.stop();
}

TEST(DtxCluster, TelemetryCountsOutcomesAndEngineVerbs) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto oid = client::make_oid(1, ObjClass::S2);

    CO_ASSERT_ERRNO(co_await cl.run_tx(kPoolUuid,
                                       [&](client::TxHandle& tx) -> CoTask<Errno> {
                                         tx.kv_put(oid, "d", "a", bytes("x"));
                                         co_return Errno::ok;
                                       }),
                    Errno::ok);
    auto tx = cl.tx_begin(kPoolUuid);
    tx.kv_put(oid, "d", "b", bytes("y"));
    CO_ASSERT_ERRNO(co_await tx.abort(), Errno::ok);

    CO_ASSERT_EQ(cl.tx_commits(), 1u);
    CO_ASSERT_EQ(cl.tx_aborts(), 1u);
    const auto* h = cl.telemetry().find<telemetry::DurationHistogram>("tx/commit_time_ns");
    CO_ASSERT_TRUE(h != nullptr);
    CO_ASSERT_TRUE(h->state().count >= 1);

    // Engine-side DTX counters saw the prepare and the commit.
    std::uint64_t prepares = 0;
    std::uint64_t commits = 0;
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      const auto& reg = tb.engine(e).telemetry();
      if (const auto* p = reg.find<telemetry::Counter>("dtx/prepares")) prepares += p->value();
      if (const auto* c = reg.find<telemetry::Counter>("dtx/commits")) commits += c->value();
    }
    CO_ASSERT_TRUE(prepares >= 1);
    CO_ASSERT_TRUE(commits >= 1);
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Part C — the failure matrix (docs/dtx.md), driven with raw protocol RPCs
// where the scenario needs a transaction frozen between 2PC phases.

/// Stages a single-op prepare on map target `mt` directly (bypassing
/// TxHandle), as a coordinator that is about to disappear would.
CoTask<void> raw_prepare(client::DaosClient& cl, const pool::PoolMap& map, std::uint32_t mt,
                         std::uint32_t leader, vos::DtxId id, vos::Epoch epoch, vos::ObjId oid,
                         const std::string& dkey, const std::string& value, Errno* out) {
  engine::TxPrepareReq req;
  req.cont = kPoolUuid;
  req.tx_client = id.client;
  req.tx_seq = id.seq;
  req.epoch = epoch;
  req.target = map.targets[mt].target;
  req.leader = leader;
  engine::TxOpDesc op;
  op.oid = oid;
  op.dkey = dkey;
  op.akey = "a";
  op.type = engine::RecordType::single_value;
  op.length = value.size();
  op.data = std::make_shared<std::vector<std::byte>>(bytes(value));
  req.ops.push_back(std::move(op));
  const std::uint64_t wire = engine::obj_wire_bytes(1, value.size());
  net::Body body = net::Body::make(std::move(req));
  auto rep = co_await cl.call_target(mt, engine::kOpTxPrepare, std::move(body), wire);
  *out = rep.status;
}

CoTask<void> raw_decide(client::DaosClient& cl, const pool::PoolMap& map, std::uint32_t mt,
                        std::uint16_t opcode, vos::DtxId id, Errno* out) {
  engine::TxDecideReq req;
  req.cont = kPoolUuid;
  req.tx_client = id.client;
  req.tx_seq = id.seq;
  req.target = map.targets[mt].target;
  net::Body body = net::Body::make(std::move(req));
  auto rep = co_await cl.call_target(mt, opcode, std::move(body), engine::kObjRpcHeader);
  *out = rep.status;
}

// Snapshot-stable reads (placed here because it freezes a transaction
// between 2PC phases with the raw helpers above): a transaction prepared
// BELOW a snapshot epoch must not pop into the snapshot retroactively when
// it commits. The engine parks the epoch-bounded read until the prepared
// entry settles, so the first snapshot read already sees the commit and
// every later read of the same snapshot agrees with it.
TEST(DtxCluster, SnapshotReadsAreStableAgainstInFlightCommits) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();
    const auto oid = client::make_oid(1, ObjClass::S1);
    const auto layout = client::compute_group_layout(oid, 1, 1, map);
    const std::uint32_t mt = layout.at(0, 0);

    // Prepare below the snapshot, snapshot, THEN commit: the classic
    // unstable-read interleaving.
    const vos::DtxId id{9999, 6};
    const vos::Epoch ep = cl.tx_alloc_epoch();
    Errno rc = Errno::ok;
    co_await raw_prepare(cl, map, mt, /*leader=*/mt, id, ep, oid, "d", "staged", &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);
    auto snap = co_await cl.snapshot_create(kPoolUuid);
    CO_ASSERT_OK(snap);
    const vos::Epoch s = *snap;
    CO_ASSERT_TRUE(s > ep);

    client::KvObject kv(cl, kPoolUuid, oid);
    // Plain (present-time) reads never wait on prepared entries.
    CO_ASSERT_ERRNO((co_await kv.get("d", "a")).error(), Errno::no_entry);

    // Commit lands 200ms later, from a second client.
    Errno drc = Errno::ok;
    sim::WaitGroup wg(tb.sched());
    wg.spawn([&]() -> CoTask<void> {
      co_await tb.sched().delay(200 * sim::kMs);
      co_await raw_decide(tb.client(1), map, mt, engine::kOpTxCommit, id, &drc);
    });

    // The snapshot read blocks until the commit settles instead of answering
    // no_entry now and "staged" on the next read of the SAME epoch.
    const sim::Time t0 = tb.sched().now();
    auto r1 = co_await kv.get("d", "a", s);
    CO_ASSERT_OK(r1);
    CO_ASSERT_EQ(str(*r1), "staged");
    CO_ASSERT_TRUE(tb.sched().now() - t0 >= 200 * sim::kMs);
    co_await wg.wait();
    CO_ASSERT_ERRNO(drc, Errno::ok);

    // Re-reading the snapshot agrees with the first read.
    auto r2 = co_await kv.get("d", "a", s);
    CO_ASSERT_OK(r2);
    CO_ASSERT_EQ(str(*r2), "staged");
  });
  tb.stop();
}

TEST(DtxFault, OrphanedPrepareIsReapedAndAborted) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();
    const auto oid = client::make_oid(1, ObjClass::S1);
    const auto layout = client::compute_group_layout(oid, 1, 1, map);
    const std::uint32_t mt = layout.at(0, 0);
    const std::uint32_t ei = engine_index(tb, map.targets[mt].engine);

    // A coordinator prepares its single (leader) shard and then dies: the
    // decision RPC never arrives.
    const vos::DtxId id{9999, 1};
    Errno prc = Errno::ok;
    co_await raw_prepare(cl, map, mt, /*leader=*/mt, id, cl.tx_alloc_epoch(), oid, "d",
                         "orphan", &prc);
    CO_ASSERT_ERRNO(prc, Errno::ok);
    CO_ASSERT_EQ(shard_of(tb, mt).dtx_state(id), vos::DtxState::prepared);

    // Past the orphan timeout the leader-local reaper aborts authoritatively.
    co_await tb.sched().delay(tb.dtx_service(ei).config().orphan_timeout + 2 * sim::kSec);
    CO_ASSERT_TRUE(tb.dtx_service(ei).orphans_aborted() >= 1);
    CO_ASSERT_EQ(shard_of(tb, mt).dtx_state(id), vos::DtxState::aborted);
    CO_ASSERT_EQ(shard_of(tb, mt).dtx_prepared_count(), 0u);
    client::KvObject kv(cl, kPoolUuid, oid);
    CO_ASSERT_ERRNO((co_await kv.get("d", "a")).error(), Errno::no_entry);

    // A fresh transaction on the reaped key proceeds normally.
    CO_ASSERT_ERRNO(co_await cl.run_tx(kPoolUuid,
                                       [&](client::TxHandle& tx) -> CoTask<Errno> {
                                         tx.kv_put(oid, "d", "a", bytes("after"));
                                         co_return Errno::ok;
                                       }),
                    Errno::ok);
    auto r = co_await kv.get("d", "a");
    CO_ASSERT_OK(r);
    CO_ASSERT_EQ(str(*r), "after");
  });
  tb.stop();
}

TEST(DtxFault, ResyncCommitsParticipantAfterCoordinatorDies) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();
    const auto oid = client::make_oid(1, ObjClass::RP_2G1);
    const auto layout = client::compute_group_layout(oid, 1, 2, map);
    const std::uint32_t leader = std::min(layout.at(0, 0), layout.at(0, 1));
    const std::uint32_t follower = std::max(layout.at(0, 0), layout.at(0, 1));
    const std::uint32_t fei = engine_index(tb, map.targets[follower].engine);

    // The coordinator prepares both replicas, records the commit on the
    // leader — the durable commit point — and dies before the fan-out.
    const vos::DtxId id{9999, 2};
    const vos::Epoch ep = cl.tx_alloc_epoch();
    Errno rc = Errno::ok;
    co_await raw_prepare(cl, map, leader, leader, id, ep, oid, "d", "payload", &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);
    co_await raw_prepare(cl, map, follower, leader, id, ep, oid, "d", "payload", &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);
    co_await raw_decide(cl, map, leader, engine::kOpTxCommit, id, &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);
    CO_ASSERT_EQ(shard_of(tb, follower).dtx_state(id), vos::DtxState::prepared);

    // The follower's reaper resolves against the leader's decision table and
    // finishes the commit — the transaction is NOT lost.
    co_await tb.sched().delay(tb.dtx_service(fei).config().orphan_timeout + 2 * sim::kSec);
    CO_ASSERT_EQ(shard_of(tb, follower).dtx_state(id), vos::DtxState::committed);
    CO_ASSERT_TRUE(tb.dtx_service(fei).resyncs_resolved() >= 1);

    // Byte-correct on BOTH replicas: resync applied the staged ops.
    const auto v1 = shard_of(tb, leader).kv_get(oid, "d", "a", vos::kEpochMax);
    const auto v2 = shard_of(tb, follower).kv_get(oid, "d", "a", vos::kEpochMax);
    CO_ASSERT_TRUE(v1.exists && v2.exists);
    CO_ASSERT_EQ(str(v1), "payload");
    CO_ASSERT_EQ(str(v2), "payload");
    client::KvObject kv(cl, kPoolUuid, oid);
    auto r = co_await kv.get("d", "a");
    CO_ASSERT_OK(r);
    CO_ASSERT_EQ(str(*r), "payload");
  });
  tb.stop();
}

TEST(DtxFault, EngineCrashMidCommitResolvesOnRestart) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();
    const auto oid = client::make_oid(1, ObjClass::RP_2G1);
    const auto layout = client::compute_group_layout(oid, 1, 2, map);
    const std::uint32_t leader = std::min(layout.at(0, 0), layout.at(0, 1));
    const std::uint32_t follower = std::max(layout.at(0, 0), layout.at(0, 1));
    const std::uint32_t fei = engine_index(tb, map.targets[follower].engine);

    const vos::DtxId id{9999, 3};
    const vos::Epoch ep = cl.tx_alloc_epoch();
    Errno rc = Errno::ok;
    co_await raw_prepare(cl, map, leader, leader, id, ep, oid, "d", "mid-commit", &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);
    co_await raw_prepare(cl, map, follower, leader, id, ep, oid, "d", "mid-commit", &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);

    // The follower engine crashes between the leader's commit and its own
    // decision RPC. Its VOS (and the prepared entry) survive the crash.
    co_await raw_decide(cl, map, leader, engine::kOpTxCommit, id, &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);
    tb.crash_engine(fei);
    CO_ASSERT_EQ(shard_of(tb, follower).dtx_state(id), vos::DtxState::prepared);

    // Restart schedules the forced resync sweep: the prepared entry resolves
    // against the leader without waiting out the orphan timeout.
    co_await tb.sched().delay(200 * sim::kMs);
    tb.restart_engine(fei);
    co_await tb.sched().delay(1 * sim::kSec);
    CO_ASSERT_EQ(shard_of(tb, follower).dtx_state(id), vos::DtxState::committed);
    CO_ASSERT_TRUE(tb.dtx_service(fei).resyncs_resolved() >= 1);
    const auto v = shard_of(tb, follower).kv_get(oid, "d", "a", vos::kEpochMax);
    CO_ASSERT_TRUE(v.exists);
    CO_ASSERT_EQ(str(v), "mid-commit");
  });
  tb.stop();
}

TEST(DtxFault, PoolServiceLeaderCrashDoesNotBlock2PC) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();

    // Pick an S2 object whose both shards avoid the pool-service leader's
    // engine, so the transaction itself needs nothing from that engine.
    const auto lead = tb.svc_leader();
    CO_ASSERT_TRUE(lead.has_value());
    const std::uint32_t svc_engine = *lead;  // replica i lives on engine i
    const net::NodeId avoid = tb.engine(svc_engine).node();
    vos::ObjId oid{};
    bool found = false;
    for (std::uint64_t seq = 1; seq < 500 && !found; ++seq) {
      const auto cand = client::make_oid(seq, ObjClass::S2);
      const auto layout = client::compute_group_layout(cand, 2, 1, map);
      if (map.targets[layout.at(0, 0)].engine != avoid &&
          map.targets[layout.at(1, 0)].engine != avoid) {
        oid = cand;
        found = true;
      }
    }
    CO_ASSERT_TRUE(found);

    // Kill the pool-service leader, then run the transaction while the Raft
    // group is mid-election: 2PC is client-coordinated and must not stall.
    tb.crash_engine(svc_engine);
    CO_ASSERT_ERRNO(co_await cl.run_tx(kPoolUuid,
                                       [&](client::TxHandle& tx) -> CoTask<Errno> {
                                         tx.kv_put(oid, "rank0", "a", bytes("unfazed"));
                                         tx.kv_put(oid, "rank1", "a", bytes("unfazed"));
                                         co_return Errno::ok;
                                       }),
                    Errno::ok);
    client::KvObject kv(cl, kPoolUuid, oid);
    auto r = co_await kv.get("rank0", "a");
    CO_ASSERT_OK(r);
    CO_ASSERT_EQ(str(*r), "unfazed");

    // Snapshot creation needs the pool service: it succeeds once the
    // surviving replicas elect a new leader (svc_command re-discovers it).
    bool snapped = false;
    for (int i = 0; i < 60 && !snapped; ++i) {
      if ((co_await cl.snapshot_create(kPoolUuid)).ok()) snapped = true;
      else co_await tb.sched().delay(50 * sim::kMs);
    }
    CO_ASSERT_TRUE(snapped);
    tb.restart_engine(svc_engine);
    co_await tb.sched().delay(200 * sim::kMs);
  });
  tb.stop();
}

TEST(DtxFault, CrashedParticipantEvictsAndTxRestages) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();

    // An S1 key placed on engine 3 (no pool-service replica there).
    const net::NodeId want = tb.engine(3).node();
    vos::ObjId oid{};
    bool found = false;
    for (std::uint64_t seq = 1; seq < 500 && !found; ++seq) {
      const auto cand = client::make_oid(seq, ObjClass::S1);
      const auto layout = client::compute_group_layout(cand, 1, 1, map);
      if (map.targets[layout.at(0, 0)].engine == want) {
        oid = cand;
        found = true;
      }
    }
    CO_ASSERT_TRUE(found);

    // The participant is down before the transaction starts: the prepare
    // exhausts its retry budget, the engine is evicted, commit() reports
    // Errno::stale and run_tx restages against the refreshed map.
    tb.crash_engine(3);
    CO_ASSERT_ERRNO(co_await cl.run_tx(kPoolUuid,
                                       [&](client::TxHandle& tx) -> CoTask<Errno> {
                                         tx.kv_put(oid, "d", "a", bytes("replaced"));
                                         co_return Errno::ok;
                                       }),
                    Errno::ok);
    CO_ASSERT_TRUE(cl.evictions_reported() >= 1);

    client::KvObject kv(cl, kPoolUuid, oid);
    auto r = co_await kv.get("d", "a");
    CO_ASSERT_OK(r);
    CO_ASSERT_EQ(str(*r), "replaced");
  });
  // The eviction opened a rebuild task; let it settle before teardown.
  EXPECT_TRUE(tb.wait_rebuild());
  tb.stop();
}

TEST(DtxFault, ParticipantOrphanFencesLeaderBeforeLocalAbort) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();

    // A replicated object whose leader and follower shards live on DIFFERENT
    // engines, so the fence is a real cross-engine RPC.
    vos::ObjId oid{};
    std::uint32_t leader = 0;
    std::uint32_t follower = 0;
    bool found = false;
    for (std::uint64_t seq = 1; seq < 500 && !found; ++seq) {
      const auto cand = client::make_oid(seq, ObjClass::RP_2G1);
      const auto layout = client::compute_group_layout(cand, 1, 2, map);
      const std::uint32_t lo = std::min(layout.at(0, 0), layout.at(0, 1));
      const std::uint32_t hi = std::max(layout.at(0, 0), layout.at(0, 1));
      if (map.targets[lo].engine != map.targets[hi].engine) {
        oid = cand;
        leader = lo;
        follower = hi;
        found = true;
      }
    }
    CO_ASSERT_TRUE(found);
    const std::uint32_t fei = engine_index(tb, map.targets[follower].engine);

    // The coordinator prepares ONLY the follower and dies: the leader never
    // hears of the transaction (its prepare could still be in flight).
    const vos::DtxId id{9999, 7};
    Errno rc = Errno::ok;
    co_await raw_prepare(cl, map, follower, leader, id, cl.tx_alloc_epoch(), oid, "d",
                         "fenced", &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);
    CO_ASSERT_EQ(shard_of(tb, leader).dtx_state(id), vos::DtxState::unknown);

    // The follower's reaper resolves `unknown` at the leader past the orphan
    // timeout. It must NOT just abort locally: it plants a sticky abort at
    // the leader first, closing the door on any late prepare+commit there.
    co_await tb.sched().delay(tb.dtx_service(fei).config().orphan_timeout + 2 * sim::kSec);
    CO_ASSERT_EQ(shard_of(tb, leader).dtx_state(id), vos::DtxState::aborted);
    CO_ASSERT_EQ(shard_of(tb, follower).dtx_state(id), vos::DtxState::aborted);
    CO_ASSERT_TRUE(tb.dtx_service(fei).orphans_aborted() >= 1);

    // The late coordinator now bounces off the fence at every step: the
    // delayed prepare is refused, and so is a commit attempt — no path
    // reports this transaction committed.
    co_await raw_prepare(cl, map, leader, leader, id, cl.tx_alloc_epoch(), oid, "d",
                         "late", &rc);
    CO_ASSERT_ERRNO(rc, Errno::tx_restart);
    co_await raw_decide(cl, map, leader, engine::kOpTxCommit, id, &rc);
    CO_ASSERT_ERRNO(rc, Errno::tx_restart);
    client::KvObject kv(cl, kPoolUuid, oid);
    CO_ASSERT_ERRNO((co_await kv.get("d", "a")).error(), Errno::no_entry);
  });
  tb.stop();
}

TEST(DtxFault, ExcludedLeaderEngineAbandonsPreparedEntry) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();
    const net::NodeId doomed = tb.engine(3).node();  // no svc replica there

    // One S1 key on engine 3 (its shard will be the dead leader, and a
    // transaction against it drives the eviction) and one off it (the
    // surviving participant holding the stuck prepared entry).
    vos::ObjId on3{};
    vos::ObjId off3{};
    std::uint32_t lt = 0;
    std::uint32_t ft = 0;
    bool f1 = false;
    bool f2 = false;
    for (std::uint64_t seq = 1; seq < 500 && !(f1 && f2); ++seq) {
      const auto cand = client::make_oid(seq, ObjClass::S1);
      const auto layout = client::compute_group_layout(cand, 1, 1, map);
      const std::uint32_t t = layout.at(0, 0);
      if (!f1 && map.targets[t].engine == doomed) {
        on3 = cand;
        lt = t;
        f1 = true;
      } else if (!f2 && map.targets[t].engine != doomed) {
        off3 = cand;
        ft = t;
        f2 = true;
      }
    }
    CO_ASSERT_TRUE(f1 && f2);
    const std::uint32_t fei = engine_index(tb, map.targets[ft].engine);

    const vos::DtxId id{9999, 8};
    Errno rc = Errno::ok;
    co_await raw_prepare(cl, map, ft, /*leader=*/lt, id, cl.tx_alloc_epoch(), off3, "d",
                         "stuck", &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);

    // The leader engine dies for good and is evicted through the usual
    // client path: a transaction against its key exhausts retries, reports
    // the eviction, and restages against the refreshed map.
    tb.crash_engine(3);
    CO_ASSERT_ERRNO(co_await cl.run_tx(kPoolUuid,
                                       [&](client::TxHandle& tx) -> CoTask<Errno> {
                                         tx.kv_put(on3, "d", "a", bytes("replaced"));
                                         co_return Errno::ok;
                                       }),
                    Errno::ok);
    CO_ASSERT_TRUE(cl.evictions_reported() >= 1);

    // With the leader engine EXCLUDED in the pool map, the participant's
    // reaper abandons the entry instead of resolving against it forever —
    // the aggregation floor is released.
    co_await tb.sched().delay(8 * sim::kSec);
    CO_ASSERT_EQ(shard_of(tb, ft).dtx_state(id), vos::DtxState::aborted);
    CO_ASSERT_TRUE(tb.dtx_service(fei).orphans_aborted() >= 1);
    CO_ASSERT_EQ(shard_of(tb, ft).dtx_prepared_count(), 0u);
    CO_ASSERT_EQ(shard_of(tb, ft).dtx_min_prepared_epoch(), vos::kEpochMax);
  });
  // The eviction opened a rebuild task; let it settle before teardown.
  EXPECT_TRUE(tb.wait_rebuild());
  tb.stop();
}

TEST(DtxFault, UnreachableLeaderBackstopAbandonsPreparedEntry) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const auto& map = tb.pool_map();
    const net::NodeId doomed = tb.engine(3).node();

    vos::ObjId off3{};
    std::uint32_t lt = 0;
    std::uint32_t ft = 0;
    bool f1 = false;
    bool f2 = false;
    for (std::uint64_t seq = 1; seq < 500 && !(f1 && f2); ++seq) {
      const auto cand = client::make_oid(seq, ObjClass::S1);
      const auto layout = client::compute_group_layout(cand, 1, 1, map);
      const std::uint32_t t = layout.at(0, 0);
      if (!f1 && map.targets[t].engine == doomed) {
        lt = t;
        f1 = true;
      } else if (!f2 && map.targets[t].engine != doomed) {
        off3 = cand;
        ft = t;
        f2 = true;
      }
    }
    CO_ASSERT_TRUE(f1 && f2);
    const std::uint32_t fei = engine_index(tb, map.targets[ft].engine);

    const vos::DtxId id{9999, 9};
    Errno rc = Errno::ok;
    co_await raw_prepare(cl, map, ft, /*leader=*/lt, id, cl.tx_alloc_epoch(), off3, "d",
                         "limbo", &rc);
    CO_ASSERT_ERRNO(rc, Errno::ok);

    // The leader engine crashes but is NEVER evicted: no client traffic
    // touches it, so the pool map keeps reporting it healthy and the
    // exclusion check keeps answering no.
    tb.crash_engine(3);

    // Well past the orphan timeout the entry is still prepared — a merely
    // unreachable leader is not authoritative evidence by itself.
    co_await tb.sched().delay(4 * sim::kSec);
    CO_ASSERT_EQ(shard_of(tb, ft).dtx_state(id), vos::DtxState::prepared);

    // But the consecutive-failed-resolve backstop eventually is: the entry
    // cannot pin dtx_min_prepared_epoch (and aggregation) forever. Each
    // failed resolve eats the 100ms RPC timeout on top of the reap tick, so
    // 16 of them take ~7.5s from the prepare.
    co_await tb.sched().delay(6 * sim::kSec);
    CO_ASSERT_EQ(shard_of(tb, ft).dtx_state(id), vos::DtxState::aborted);
    CO_ASSERT_TRUE(tb.dtx_service(fei).orphans_aborted() >= 1);
    CO_ASSERT_EQ(shard_of(tb, ft).dtx_prepared_count(), 0u);
    CO_ASSERT_EQ(shard_of(tb, ft).dtx_min_prepared_epoch(), vos::kEpochMax);
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Part D — randomized many-client serializability property + replay.

struct TxRecord {
  vos::Epoch epoch = 0;
  bool known = false;  // commit() returned ok; false = in doubt
  std::map<std::string, std::string> writes;
};

/// Deterministic key set for client c's t-th transaction (no RNG: draws
/// from a shared generator would depend on coroutine interleaving).
std::vector<std::string> keys_for(std::uint32_t c, std::uint32_t t, std::uint32_t nkeys) {
  const std::uint32_t k1 = (2 * c + 3 * t) % nkeys;
  std::uint32_t k2 = (c + 5 * t + 1) % nkeys;
  if (k2 == k1) k2 = (k2 + 1) % nkeys;
  return {"key" + std::to_string(k1), "key" + std::to_string(k2)};
}

/// Drives `clients` x `txs` conflicting multi-key transactions against one
/// replicated object while engine 3 crashes and restarts underneath, then
/// checks the final state is the serial order by commit epoch. Returns the
/// scheduler's trace digest for the replay test.
std::uint64_t run_property_scenario(std::uint32_t clients, std::uint32_t txs,
                                    bool check = true) {
  ClusterConfig cfg = small_cluster();
  cfg.client_nodes = clients;
  Testbed tb(cfg);
  tb.start();

  constexpr std::uint32_t kKeys = 6;
  const auto oid = client::make_oid(1, ObjClass::RP_2G2);
  std::vector<TxRecord> recs;

  tb.run([&]() -> CoTask<void> {
    auto& cl0 = tb.client(0);
    CO_ASSERT_OK(co_await cl0.cont_create(kPoolUuid, {}));

    // Engine 3 (no svc replica) crashes mid-run and comes back; a stall on
    // engine 2 jitters service times without losing state.
    tb.inject_faults(fault::Schedule()
                         .crash(150 * sim::kMs, 3)
                         .restart(450 * sim::kMs, 3)
                         .stall(200 * sim::kMs, 2, 0, 50 * sim::kMs),
                     /*seed=*/7);

    sim::WaitGroup wg(tb.sched());
    for (std::uint32_t c = 0; c < clients; ++c) {
      wg.spawn([&, c]() -> CoTask<void> {
        auto& cl = tb.client(c);
        // No stagger: the first wave of transactions must genuinely contend.
        for (std::uint32_t t = 0; t < txs; ++t) {
          const auto keys = keys_for(c, t, kKeys);
          const std::string val = "c" + std::to_string(c) + ".t" + std::to_string(t);
          for (int attempt = 0; attempt < 20; ++attempt) {
            auto tx = cl.tx_begin(kPoolUuid);
            for (const auto& k : keys) tx.kv_put(oid, k, "v", bytes(val));
            const Errno rc = co_await tx.commit();
            if (rc == Errno::ok || (rc != Errno::tx_restart && rc != Errno::stale)) {
              // ok = serial-order point known; anything else = in doubt
              // (resync decides; the write may or may not land).
              TxRecord rec;
              rec.epoch = tx.commit_epoch();
              rec.known = rc == Errno::ok;
              for (const auto& k : keys) rec.writes[k] = val;
              recs.push_back(std::move(rec));
              break;
            }
            co_await tb.sched().delay((c + 1) * sim::kMs);
          }
        }
      });
    }
    co_await wg.wait();

    // Quiesce: eviction-triggered rebuilds finish and the DTX reapers settle
    // every in-doubt transaction before the final read-back.
    co_await tb.sched().delay(5 * sim::kSec);
  });
  EXPECT_TRUE(tb.wait_rebuild());

  std::uint64_t commits = 0;
  std::uint64_t restarts = 0;
  for (std::uint32_t c = 0; c < clients; ++c) {
    commits += tb.client(c).tx_commits();
    restarts += tb.client(c).tx_restarts();
  }

  if (check) {
    tb.run([&]() -> CoTask<void> {
      // Serializability of write transactions: every key holds the value of
      // the highest-commit-epoch transaction that wrote it — the outcome of
      // replaying the committed transactions in epoch order. In-doubt
      // transactions above that epoch may have committed during resync, so
      // their values are also admissible.
      client::KvObject kv(tb.client(0), kPoolUuid, oid);
      for (std::uint32_t k = 0; k < kKeys; ++k) {
        const std::string key = "key" + std::to_string(k);
        vos::Epoch winner_epoch = 0;
        std::string winner;
        bool have = false;
        for (const auto& rec : recs) {
          if (!rec.known || !rec.writes.contains(key)) continue;
          if (rec.epoch > winner_epoch) {
            winner_epoch = rec.epoch;
            winner = rec.writes.at(key);
            have = true;
          }
        }
        std::set<std::string> admissible;
        if (have) admissible.insert(winner);
        for (const auto& rec : recs) {
          if (rec.known || !rec.writes.contains(key)) continue;
          if (rec.epoch > winner_epoch) admissible.insert(rec.writes.at(key));
        }
        auto r = co_await kv.get(key, "v");
        if (r.ok()) {
          CO_ASSERT_TRUE(admissible.contains(str(*r)));
        } else {
          // Only acceptable when no transaction is known to have committed
          // this key.
          CO_ASSERT_TRUE(!have);
        }
      }
    });

    // The schedule must actually have exercised contention and commits.
    EXPECT_GE(commits, std::uint64_t(clients * txs) / 2);
    EXPECT_GE(restarts, 1u);
  }

  tb.stop();
  return tb.sched().trace_hash();
}

TEST(DtxProperty, SerializableUnderConflictsAndFaults) {
  run_property_scenario(/*clients=*/8, /*txs=*/3);
}

TEST(DtxProperty, SameSeedReplaysBitIdentically) {
  const std::uint64_t a = run_property_scenario(4, 2, /*check=*/false);
  const std::uint64_t b = run_property_scenario(4, 2, /*check=*/false);
  EXPECT_EQ(a, b) << "DTX scenario diverged between identical runs";
}

}  // namespace
}  // namespace daosim
