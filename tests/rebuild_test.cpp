// Self-healing redundancy suite: replicated-class placement invariants, the
// Raft-replicated rebuild-task state machine, data-loss surfacing when a
// whole redundancy group is gone, the end-to-end crash -> scan -> pull ->
// rebuild_done healing path under a live IOR job, and reintegration resync
// (epoch-diff catch-up of writes the evicted engine missed).
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "co_assert.hpp"
#include "engine/proto.hpp"
#include "fault/fault.hpp"
#include "ior/ior.hpp"

namespace daosim {
namespace {

using client::ObjClass;
using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;   // 4 engines; svc replicas on engines 0..2
  cfg.targets_per_engine = 4;   // 16 targets
  cfg.client_nodes = 2;
  return cfg;
}

pool::PoolMap unit_map(std::uint32_t engines, std::uint32_t tpe) {
  pool::PoolMap map;
  map.pool = kPoolUuid;
  for (std::uint32_t e = 0; e < engines; ++e) {
    for (std::uint32_t t = 0; t < tpe; ++t) {
      map.targets.push_back(pool::TargetRef{e, t, pool::TargetHealth::up});
    }
  }
  return map;
}

std::vector<std::byte> bytes(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string str(const std::vector<std::byte>& v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

/// Finds an RP_2G1 object whose single redundancy group has one replica on
/// `want_engine` (by testbed index). Returns the OID sequence and reports the
/// other replica's engine index through `other`. Lets tests crash both
/// replica engines while at most one pool-service replica goes with them.
std::uint64_t find_group_on_engine(Testbed& tb, std::uint32_t want_engine,
                                   std::uint32_t& other) {
  const pool::PoolMap& map = tb.pool_map();
  const net::NodeId want = tb.engine(want_engine).node();
  for (std::uint64_t seq = 1; seq < 500; ++seq) {
    const auto oid = client::make_oid(seq, ObjClass::RP_2G1);
    const auto nom = client::compute_nominal_layout(oid, 1, 2, map);
    const net::NodeId ea = map.targets[nom.at(0, 0)].engine;
    const net::NodeId eb = map.targets[nom.at(0, 1)].engine;
    if (ea != want && eb != want) continue;
    const net::NodeId oth = ea == want ? eb : ea;
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      if (tb.engine(e).node() == oth) other = e;
    }
    return seq;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Replicated placement (pure functions)

TEST(GroupPlacement, ReplicasOnDistinctEngines) {
  const pool::PoolMap map = unit_map(4, 4);
  for (std::uint64_t seq = 1; seq <= 50; ++seq) {
    const auto oid = client::make_oid(seq, ObjClass::RP_2GX);
    const std::uint32_t groups = client::group_count(ObjClass::RP_2GX, map.target_count());
    ASSERT_EQ(groups, 8u);  // 16 targets / 2 replicas
    const auto layout = client::compute_nominal_layout(oid, groups, 2, map);
    for (std::uint32_t g = 0; g < groups; ++g) {
      EXPECT_NE(map.targets[layout.at(g, 0)].engine, map.targets[layout.at(g, 1)].engine)
          << "oid " << seq << " group " << g << " replicas share an engine";
    }
    // Deterministic: recomputation is byte-identical.
    EXPECT_EQ(layout.targets, client::compute_nominal_layout(oid, groups, 2, map).targets);
  }
}

TEST(GroupPlacement, SingleReplicaMatchesClassicLayout) {
  pool::PoolMap map = unit_map(4, 4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    map.targets[4 + t].health = pool::TargetHealth::excluded;  // engine 1 out
  }
  for (std::uint64_t seq = 1; seq <= 50; ++seq) {
    const auto oid = client::make_oid(seq, ObjClass::SX);
    const auto grouped = client::compute_group_layout(oid, 16, 1, map);
    EXPECT_EQ(grouped.targets, client::compute_layout(oid, 16, map))
        << "R=1 group layout diverged from the classic walk for oid " << seq;
  }
}

TEST(GroupPlacement, SurvivorsNeverMoveUnderExclusion) {
  pool::PoolMap map = unit_map(4, 4);
  const pool::PoolMap healthy = map;
  for (std::uint32_t t = 0; t < 4; ++t) {
    map.targets[8 + t].health = pool::TargetHealth::excluded;  // engine 2 out
  }
  for (std::uint64_t seq = 1; seq <= 50; ++seq) {
    const auto oid = client::make_oid(seq, ObjClass::RP_2GX);
    const std::uint32_t groups = client::group_count(ObjClass::RP_2GX, map.target_count());
    const auto nominal = client::compute_nominal_layout(oid, groups, 2, healthy);
    const auto degraded = client::compute_group_layout(oid, groups, 2, map);
    for (std::uint32_t g = 0; g < groups; ++g) {
      for (std::uint32_t r = 0; r < 2; ++r) {
        const std::uint32_t nom = nominal.at(g, r);
        const std::uint32_t cur = degraded.at(g, r);
        if (map.targets[nom].health == pool::TargetHealth::up) {
          EXPECT_EQ(cur, nom) << "healthy replica moved (oid " << seq << ")";
        } else {
          EXPECT_EQ(map.targets[cur].health, pool::TargetHealth::up)
              << "substitute is excluded (oid " << seq << ")";
        }
      }
      // Post-substitution the group still spans two engines.
      EXPECT_NE(map.targets[degraded.at(g, 0)].engine, map.targets[degraded.at(g, 1)].engine);
    }
  }
}

// ---------------------------------------------------------------------------
// Rebuild-task state machine (Raft-replicated pool metadata)

TEST(RebuildSm, EvictionCreatesTaskAndDoneIsGuarded) {
  pool::PoolMetaSm sm;
  sm.set_engines({10, 11, 12, 13});
  EXPECT_EQ(sm.map_version(), 1u);

  EXPECT_EQ(sm.apply("pool_evict 11"), "ok 2");
  ASSERT_EQ(sm.rebuild_tasks().size(), 1u);
  const auto* task = sm.rebuild_task(2);
  ASSERT_NE(task, nullptr);
  EXPECT_FALSE(task->resync);
  EXPECT_EQ(task->node, 11u);
  EXPECT_EQ(task->participants, (std::set<net::NodeId>{10, 12, 13}));
  EXPECT_FALSE(task->complete());
  EXPECT_EQ(sm.rebuilds_incomplete(), 1u);

  // Idempotent eviction: same version, no second task.
  EXPECT_EQ(sm.apply("pool_evict 11"), "ok 2");
  EXPECT_EQ(sm.rebuild_tasks().size(), 1u);

  // Duplicate and stale reports are absorbed, not double-counted.
  EXPECT_EQ(sm.apply("rebuild_done 10 2"), "ok");
  EXPECT_EQ(sm.apply("rebuild_done 10 2"), "ok dup");
  EXPECT_EQ(sm.apply("rebuild_done 10 7"), "ok stale");
  EXPECT_EQ(task->done.size(), 1u);

  EXPECT_EQ(sm.apply("rebuild_done 12 2"), "ok");
  EXPECT_FALSE(task->complete());
  EXPECT_EQ(sm.apply("rebuild_done 13 2"), "ok");
  EXPECT_TRUE(task->complete());
  EXPECT_EQ(sm.rebuilds_incomplete(), 0u);
}

TEST(RebuildSm, NewerMapChangeSupersedesAndReintResyncs) {
  pool::PoolMetaSm sm;
  sm.set_engines({1, 2, 3, 4});

  EXPECT_EQ(sm.apply("pool_evict 3"), "ok 2");
  EXPECT_EQ(sm.apply("pool_evict 4"), "ok 3");
  // The v2 scan is invalidated by the newer map; v3 covers its work.
  EXPECT_TRUE(sm.rebuild_task(2)->superseded);
  EXPECT_TRUE(sm.rebuild_task(2)->complete());
  ASSERT_TRUE(sm.newest_incomplete_rebuild().has_value());
  EXPECT_EQ(*sm.newest_incomplete_rebuild(), 3u);

  EXPECT_EQ(sm.apply("rebuild_done 1 3"), "ok");
  EXPECT_EQ(sm.apply("rebuild_done 2 3"), "ok");
  EXPECT_EQ(sm.rebuilds_incomplete(), 0u);

  // Reintegration starts a resync task remembering the eviction's version,
  // so participants copy only the epoch window the engine missed.
  EXPECT_EQ(sm.apply("pool_reint 3"), "ok 4");
  const auto* resync = sm.rebuild_task(4);
  ASSERT_NE(resync, nullptr);
  EXPECT_TRUE(resync->resync);
  EXPECT_EQ(resync->node, 3u);
  EXPECT_EQ(resync->since_version, 2u);
  EXPECT_EQ(resync->participants, (std::set<net::NodeId>{1, 2, 3}));  // 4 still out
  EXPECT_EQ(sm.rebuilds_incomplete(), 1u);
}

TEST(RebuildSm, EvictionRequeuesSupersededResync) {
  pool::PoolMetaSm sm;
  sm.set_engines({1, 2, 3, 4});
  EXPECT_EQ(sm.apply("pool_evict 3"), "ok 2");
  EXPECT_EQ(sm.apply("rebuild_done 1 2"), "ok");
  EXPECT_EQ(sm.apply("rebuild_done 2 2"), "ok");
  EXPECT_EQ(sm.apply("rebuild_done 4 2"), "ok");
  EXPECT_EQ(sm.rebuilds_incomplete(), 0u);
  EXPECT_EQ(sm.apply("pool_reint 3"), "ok 3");
  ASSERT_NE(sm.rebuild_task(3), nullptr);
  EXPECT_TRUE(sm.rebuild_task(3)->resync);

  // An unrelated eviction supersedes the pending resync, but must not drop
  // its work: the eviction scan covers re-replication for the new exclusion
  // set, not engine 3's window diff. The resync is re-queued at a fresh map
  // version — hence "ok 5", one bump for the eviction, one for the re-queue.
  EXPECT_EQ(sm.apply("pool_evict 4"), "ok 5");
  EXPECT_TRUE(sm.rebuild_task(3)->superseded);
  const auto* repair = sm.rebuild_task(4);
  ASSERT_NE(repair, nullptr);
  EXPECT_FALSE(repair->resync);
  EXPECT_EQ(repair->node, 4u);
  const auto* requeued = sm.rebuild_task(5);
  ASSERT_NE(requeued, nullptr);
  EXPECT_TRUE(requeued->resync);
  EXPECT_EQ(requeued->node, 3u);
  EXPECT_EQ(requeued->since_version, 2u);
  EXPECT_EQ(requeued->participants, (std::set<net::NodeId>{1, 2, 3}));
  EXPECT_EQ(sm.incomplete_rebuilds(), (std::vector<std::uint32_t>{4, 5}));

  // Re-evicting the resyncing engine itself drops its resync for good: the
  // eviction rebuild restores its replicas from the survivors instead.
  EXPECT_EQ(sm.apply("pool_evict 3"), "ok 6");
  EXPECT_EQ(sm.incomplete_rebuilds(), (std::vector<std::uint32_t>{6}));
}

TEST(RebuildSm, ReintRequeuesSupersededEvictionRepair) {
  pool::PoolMetaSm sm;
  sm.set_engines({1, 2, 3, 4});
  EXPECT_EQ(sm.apply("pool_evict 3"), "ok 2");
  // A second eviction's scan runs against the full exclusion set, so the
  // superseded v2 task needs no re-queue.
  EXPECT_EQ(sm.apply("pool_evict 4"), "ok 3");
  EXPECT_EQ(sm.incomplete_rebuilds(), (std::vector<std::uint32_t>{3}));

  // Reintegrating 3 supersedes the v3 repair, but a resync scan does not
  // re-replicate data for engine 4 (still excluded): the repair is re-queued
  // against the new map alongside the resync task.
  EXPECT_EQ(sm.apply("pool_reint 3"), "ok 5");
  const auto* resync = sm.rebuild_task(4);
  ASSERT_NE(resync, nullptr);
  EXPECT_TRUE(resync->resync);
  EXPECT_EQ(resync->node, 3u);
  EXPECT_EQ(resync->since_version, 2u);
  const auto* repair = sm.rebuild_task(5);
  ASSERT_NE(repair, nullptr);
  EXPECT_FALSE(repair->resync);
  EXPECT_EQ(repair->excluded, (std::set<net::NodeId>{4}));
  EXPECT_EQ(repair->participants, (std::set<net::NodeId>{1, 2, 3}));
  EXPECT_EQ(sm.incomplete_rebuilds(), (std::vector<std::uint32_t>{4, 5}));

  // A new leader restoring a snapshot resumes both re-queued tasks.
  const std::string snap = sm.snapshot();
  pool::PoolMetaSm fresh;
  fresh.set_engines({1, 2, 3, 4});
  fresh.restore(snap);
  EXPECT_EQ(fresh.incomplete_rebuilds(), (std::vector<std::uint32_t>{4, 5}));
  EXPECT_EQ(fresh.snapshot(), snap);
}

TEST(RebuildSm, SnapshotRoundTripsRebuildState) {
  pool::PoolMetaSm sm;
  sm.set_engines({1, 2, 3, 4});
  EXPECT_EQ(sm.apply("cont_create 9 9 1048576 5"), "ok");
  EXPECT_EQ(sm.apply("pool_evict 2"), "ok 2");
  EXPECT_EQ(sm.apply("rebuild_done 1 2"), "ok");

  const std::string snap = sm.snapshot();
  pool::PoolMetaSm fresh;
  fresh.set_engines({1, 2, 3, 4});
  fresh.restore(snap);

  EXPECT_EQ(fresh.map_version(), 2u);
  EXPECT_TRUE(fresh.excluded_engines().contains(2u));
  const auto* task = fresh.rebuild_task(2);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->participants, (std::set<net::NodeId>{1, 3, 4}));
  EXPECT_EQ(task->done, (std::set<net::NodeId>{1}));
  EXPECT_FALSE(task->complete());
  // A leader restoring this snapshot resumes where the old one stopped.
  EXPECT_EQ(fresh.apply("rebuild_done 1 2"), "ok dup");
  EXPECT_EQ(fresh.snapshot(), snap);
}

// ---------------------------------------------------------------------------
// Data-loss surfacing

TEST(Rebuild, ReadSurfacesDataLossWhenGroupIsGone) {
  Testbed tb(small_cluster());
  tb.start();
  std::uint32_t other = 0;
  const std::uint64_t seq = find_group_on_engine(tb, 3, other);
  ASSERT_NE(seq, 0u);
  ASSERT_NE(other, 3u);

  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    client::KvObject kv(cl, kPoolUuid, client::make_oid(seq, ObjClass::RP_2G1));
    auto v = bytes("survives-one-crash-not-two");
    CO_ASSERT_ERRNO(co_await kv.put("d", "a", v), Errno::ok);

    // Both replica engines die in the same instant: nothing is left to pull
    // from, so rebuild cannot resurrect the group.
    tb.crash_engine(3);
    tb.crash_engine(other);

    auto got = co_await kv.get("d", "a");
    CO_ASSERT_TRUE(!got.ok());
    EXPECT_EQ(got.error(), Errno::data_loss);
    EXPECT_GE(cl.data_loss_events(), 1u);
    // The diagnostic names the object so an operator can find the victim.
    EXPECT_NE(cl.last_data_loss().find("group"), std::string::npos) << cl.last_data_loss();
  });
  tb.stop();
}

// A miss is only definitive when every replica answered. Here one replica's
// engine — and every walk-forward substitute the re-placement loop tries
// after the resulting eviction — drops fetches on the wire, so the surviving
// replica's ok-but-missing answer must surface the failure rather than a
// confident no_entry (the unreachable replica could hold the key). The pool
// is sized so the substitute walk still has fresh engines when the
// re-placement rounds run out; a smaller pool would relax the walk back onto
// the answering engine and legitimately conclude no_entry.
TEST(Rebuild, MissWithFailedReplicaIsNotNoEntry) {
  ClusterConfig cfg = small_cluster();
  cfg.server_nodes = 3;  // 6 engines
  Testbed tb(cfg);
  tb.start();
  std::uint32_t other = 0;
  const std::uint64_t seq = find_group_on_engine(tb, 3, other);
  ASSERT_NE(seq, 0u);
  const auto oid = client::make_oid(seq, ObjClass::RP_2G1);
  const net::NodeId ok_node = tb.engine(other).node();

  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    client::KvObject kv(cl, kPoolUuid, oid);
    auto v1 = bytes("present");
    CO_ASSERT_ERRNO(co_await kv.put("k1", "a", v1), Errno::ok);
    // With every replica answering, a miss is a definitive no_entry.
    auto miss = co_await kv.get("absent", "a");
    CO_ASSERT_ERRNO(miss.error(), Errno::no_entry);
    // Now only `other` answers object fetches.
    tb.domain().set_fault_hook([&](net::NodeId, net::NodeId dst, std::uint16_t op) {
      net::CallFault f;
      f.drop = op == engine::kOpObjFetch && dst != ok_node;
      return f;
    });
    auto g = co_await kv.get("absent", "a");
    tb.domain().set_fault_hook({});
    CO_ASSERT_TRUE(!g.ok());
    EXPECT_NE(g.error(), Errno::no_entry);
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// End-to-end healing (the headline scenario)

TEST(Rebuild, SelfHealsAfterCrashMidWrite) {
  ClusterConfig cfg = small_cluster();
  cfg.payload = vos::PayloadMode::store;
  Testbed tb(cfg);
  tb.start();

  ior::IorConfig job;
  job.api = ior::Api::daos_array;
  job.transfer_size = 256 * kKiB;
  job.block_size = 1 * kMiB;
  job.segments = 2;
  job.file_per_process = false;  // hard mode: one shared replicated file
  job.verify = true;
  job.oclass = std::uint8_t(ObjClass::RP_2G2);

  ior::IorRunner runner(tb, /*ppn=*/4);

  // A fault-free warm-up job pins down the deterministic OID sequence: each
  // daos_array job leases ranks+1 OIDs, so the next job's shared file sits at
  // oid_base + ranks + 1. That lets us crash an engine that actually hosts
  // one of the file's replicas (a 2-group object only touches 4 of the 16
  // targets, so a fixed victim could miss the layout entirely).
  const ior::IorResult warm = runner.run(job);
  EXPECT_EQ(warm.verify_errors, 0u);
  const std::uint64_t next_base = runner.last_job().oid_base + runner.ranks() + 1;
  const auto oid = client::make_oid(next_base, ObjClass::RP_2G2);
  const std::uint32_t groups = client::group_count(ObjClass::RP_2G2, tb.pool_map().target_count());
  const auto nominal = client::compute_nominal_layout(oid, groups, 2, tb.pool_map());
  std::uint32_t victim = tb.engine_count();
  for (std::uint32_t s = 0; s < nominal.size(); ++s) {
    const net::NodeId host = tb.pool_map().targets[nominal.targets[s]].engine;
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      if (tb.engine(e).node() != host) continue;
      if (victim == tb.engine_count()) victim = e;  // fallback: any replica engine
      if (e >= tb.svc_replica_count()) victim = e;  // prefer non-pool-service engines
    }
  }
  ASSERT_LT(victim, tb.engine_count());

  // The victim dies 5 ms into the real job's write phase.
  auto sched = fault::Schedule::parse(strfmt("crash@5ms:e%u", victim));
  ASSERT_TRUE(sched.ok());
  tb.inject_faults(*sched, /*seed=*/1);

  const ior::IorResult res = runner.run(job);
  ASSERT_EQ(runner.last_job().oid_base, next_base);

  // The job rides out the crash: replicas keep every group readable, and
  // foreground bandwidth stays above zero while rebuild traffic flows.
  EXPECT_GT(res.write.gib_per_sec(), 0.0);
  EXPECT_EQ(res.verify_errors, 0u);
  EXPECT_EQ(res.read_fill_errors, 0u);
  EXPECT_EQ(res.data_loss_events, 0u);

  ASSERT_TRUE(tb.wait_rebuild());

  // Redundancy restored: under the healed map every group again has two
  // non-excluded replicas on distinct engines.
  const auto leader = tb.svc_leader();
  ASSERT_TRUE(leader.has_value());
  const auto& sm = tb.svc_replica(*leader).meta();
  EXPECT_TRUE(sm.excluded_engines().contains(tb.engine(victim).node()));
  pool::PoolMap healed = tb.pool_map();
  for (auto& t : healed.targets) {
    if (sm.excluded_engines().contains(t.engine)) t.health = pool::TargetHealth::excluded;
  }
  const auto layout = client::compute_group_layout(oid, groups, 2, healed);
  for (std::uint32_t g = 0; g < groups; ++g) {
    const auto& t0 = healed.targets[layout.at(g, 0)];
    const auto& t1 = healed.targets[layout.at(g, 1)];
    EXPECT_EQ(t0.health, pool::TargetHealth::up);
    EXPECT_EQ(t1.health, pool::TargetHealth::up);
    EXPECT_NE(t0.engine, t1.engine) << "group " << g << " lost engine diversity";
  }

  // The rebuilt replicas hold real data: with the victim still down, a full
  // readback of the shared file is byte-correct.
  const std::uint64_t total =
      std::uint64_t(runner.ranks()) * job.block_size * job.segments;
  const std::uint64_t file_seed = runner.last_job().file_seed;
  tb.run([&]() -> CoTask<void> {
    client::ArrayObject arr(tb.client(1), kPoolUuid, oid, 1 * kMiB);
    std::vector<std::byte> buf(256 * kKiB);
    std::uint64_t bad = 0;
    std::uint64_t short_reads = 0;
    for (std::uint64_t off = 0; off < total; off += buf.size()) {
      auto n = co_await arr.read(off, buf);
      CO_ASSERT_TRUE(n.ok());
      if (*n != buf.size()) ++short_reads;
      bad += ior::check_pattern(buf, off, file_seed);
    }
    EXPECT_EQ(bad, 0u);
    EXPECT_EQ(short_reads, 0u);
  });

  // Data actually moved, and never more than max_inflight pulls at once.
  std::uint64_t moved = 0;
  std::uint32_t peak = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    moved += tb.rebuild_service(e).bytes_rebuilt();
    peak = std::max(peak, tb.rebuild_service(e).peak_inflight());
  }
  EXPECT_GT(moved, 0u);
  EXPECT_GT(peak, 0u);
  EXPECT_LE(peak, cfg.rebuild.max_inflight);
  tb.stop();
}

// ---------------------------------------------------------------------------
// Reintegration resync

TEST(Rebuild, ReintegrationResyncsWindowWrites) {
  Testbed tb(small_cluster());
  tb.start();
  std::uint32_t other = 0;
  const std::uint64_t seq = find_group_on_engine(tb, 3, other);
  ASSERT_NE(seq, 0u);
  const auto oid = client::make_oid(seq, ObjClass::RP_2G1);

  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    client::KvObject kv(cl, kPoolUuid, oid);
    auto v1 = bytes("pre-eviction");
    CO_ASSERT_ERRNO(co_await kv.put("k1", "a", v1), Errno::ok);

    tb.crash_engine(3);
    // This put rides the crash: the client reports the eviction and fans the
    // write to the walk-forward substitute. Engine 3 never sees it.
    auto v2 = bytes("written-while-engine3-was-out");
    CO_ASSERT_ERRNO(co_await kv.put("k2", "a", v2), Errno::ok);
  });
  ASSERT_TRUE(tb.wait_rebuild());  // eviction rebuild converges

  tb.restart_engine(3);  // back up, still EXCLUDED from placement
  tb.run([&]() -> CoTask<void> {
    auto r = co_await tb.client(0).pool_reint(tb.engine(3).node());
    CO_ASSERT_TRUE(r.ok());
  });
  ASSERT_TRUE(tb.wait_rebuild());  // resync copies the missed epoch window

  // The resynced replica alone must now serve both generations of data:
  // take the other nominal replica's engine away and read.
  tb.crash_engine(other);
  tb.run([&]() -> CoTask<void> {
    client::KvObject kv(tb.client(1), kPoolUuid, oid);
    auto g1 = co_await kv.get("k1", "a");
    CO_ASSERT_TRUE(g1.ok());
    EXPECT_EQ(str(*g1), "pre-eviction");
    auto g2 = co_await kv.get("k2", "a");
    CO_ASSERT_TRUE(g2.ok());
    EXPECT_EQ(str(*g2), "written-while-engine3-was-out");
  });
  tb.stop();
}

// A write that lands after pool_reint but before the resync image is applied
// must survive: the apply is epoch-floor-guarded, not a blind overwrite. The
// race window is widened deterministically by wedging the resync source's
// target, so the pulled window image arrives hundreds of milliseconds after
// the post-reintegration put.
TEST(Rebuild, ResyncPreservesPostReintegrationWrites) {
  Testbed tb(small_cluster());
  tb.start();
  std::uint32_t other = 0;
  const std::uint64_t seq = find_group_on_engine(tb, 3, other);
  ASSERT_NE(seq, 0u);
  const auto oid = client::make_oid(seq, ObjClass::RP_2G1);
  const net::NodeId reint_node = tb.engine(3).node();

  // The walk-forward substitute that covered engine 3's replica during the
  // outage holds the window diff, so it is the resync source.
  pool::PoolMap wmap = tb.pool_map();
  for (auto& t : wmap.targets) {
    if (t.engine == reint_node) t.health = pool::TargetHealth::excluded;
  }
  const auto nominal = client::compute_nominal_layout(oid, 1, 2, tb.pool_map());
  const auto windowl = client::compute_group_layout(oid, 1, 2, wmap);
  std::uint32_t sub = std::uint32_t(wmap.targets.size());
  for (std::uint32_t r = 0; r < 2; ++r) {
    if (tb.pool_map().targets[nominal.at(0, r)].engine == reint_node) sub = windowl.at(0, r);
  }
  ASSERT_LT(sub, wmap.targets.size());
  std::uint32_t sub_engine = tb.engine_count();
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    if (tb.engine(e).node() == wmap.targets[sub].engine) sub_engine = e;
  }
  ASSERT_LT(sub_engine, tb.engine_count());

  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    client::KvObject kv(cl, kPoolUuid, oid);
    auto v1 = bytes("pre-eviction");
    CO_ASSERT_ERRNO(co_await kv.put("k1", "a", v1), Errno::ok);
    tb.crash_engine(3);
    auto v2 = bytes("written-while-engine3-was-out");
    CO_ASSERT_ERRNO(co_await kv.put("k2", "a", v2), Errno::ok);
  });
  ASSERT_TRUE(tb.wait_rebuild());

  // A second window write after the eviction rebuild settled: the first k2
  // put races ahead of the eviction scan and lands below the substitute's
  // epoch mark, but this one lands above it, so the resync diff carries it
  // back to the reintegrated replica.
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    client::KvObject kv(cl, kPoolUuid, oid);
    auto v2b = bytes("late-window-write");
    CO_ASSERT_ERRNO(co_await kv.put("k2", "a", v2b), Errno::ok);
  });

  tb.restart_engine(3);
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    auto r = co_await cl.pool_reint(reint_node);
    CO_ASSERT_TRUE(r.ok());
    // Wedge the source before the resync fetch can stream: the window image
    // is exported promptly but applied only after the stall clears, long
    // after this put has been acknowledged on the reintegrated replica.
    tb.engine(sub_engine).stall_target(tb.pool_map().targets[sub].target, 500 * sim::kMs);
    client::KvObject kv(cl, kPoolUuid, oid);
    auto v3 = bytes("overwritten-after-reintegration");
    CO_ASSERT_ERRNO(co_await kv.put("k2", "a", v3), Errno::ok);
  });
  ASSERT_TRUE(tb.wait_rebuild());

  // The window image did reach the reintegrated engine (the guard was
  // exercised, not bypassed) ...
  EXPECT_GT(tb.rebuild_service(3).bytes_rebuilt(), 0u);
  // ... but its replica keeps the newest generation: the stale image lost to
  // the post-reintegration put. Assert the VOS directly — a client read could
  // be served by the other replica and mask a clobbered one.
  std::uint32_t reint_target = std::uint32_t(wmap.targets.size());
  for (std::uint32_t r = 0; r < 2; ++r) {
    const auto& t = tb.pool_map().targets[nominal.at(0, r)];
    if (t.engine == reint_node) reint_target = t.target;
  }
  ASSERT_LT(reint_target, wmap.targets.size());
  const vos::VosContainer* cont =
      tb.engine(3).vos_target(reint_target).find_container(kPoolUuid);
  ASSERT_NE(cont, nullptr);
  const auto g1 = cont->kv_get(oid, "k1", "a", vos::kEpochMax);
  ASSERT_TRUE(g1.exists);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(g1.data.data()), g1.data.size()),
            "pre-eviction");
  const auto g2 = cont->kv_get(oid, "k2", "a", vos::kEpochMax);
  ASSERT_TRUE(g2.exists);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(g2.data.data()), g2.data.size()),
            "overwritten-after-reintegration");
  tb.stop();
}

// A re-driven task must re-scan participants that already reported done:
// sources with empty assignments report done almost immediately, and their
// scans feed other destinations' assignments. Here the destination's first
// pull round is dropped on the wire, forcing a re-drive after every source
// is done — the substitute must still receive the records.
TEST(Rebuild, RedrivenTaskRescansDoneSources) {
  Testbed tb(small_cluster());
  tb.start();
  std::uint32_t other = 0;
  const std::uint64_t seq = find_group_on_engine(tb, 3, other);
  ASSERT_NE(seq, 0u);
  const auto oid = client::make_oid(seq, ObjClass::RP_2G1);

  // Where the rebuild lands: the substitute for engine 3's replica slot.
  pool::PoolMap emap = tb.pool_map();
  const net::NodeId victim_node = tb.engine(3).node();
  for (auto& t : emap.targets) {
    if (t.engine == victim_node) t.health = pool::TargetHealth::excluded;
  }
  const auto nominal = client::compute_nominal_layout(oid, 1, 2, tb.pool_map());
  const auto degraded = client::compute_group_layout(oid, 1, 2, emap);
  std::uint32_t sub = std::uint32_t(emap.targets.size());
  for (std::uint32_t r = 0; r < 2; ++r) {
    if (tb.pool_map().targets[nominal.at(0, r)].engine == victim_node) sub = degraded.at(0, r);
  }
  ASSERT_LT(sub, emap.targets.size());
  std::uint32_t sub_engine = tb.engine_count();
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    if (tb.engine(e).node() == emap.targets[sub].engine) sub_engine = e;
  }
  ASSERT_LT(sub_engine, tb.engine_count());

  // Swallow the destination's first pull round (kFetchAttempts = 3): its
  // assignment fails after the sources have long reported done, and the
  // coordinator re-drives the task from scratch.
  int fetch_drops = 0;
  tb.domain().set_fault_hook([&fetch_drops](net::NodeId, net::NodeId, std::uint16_t opcode) {
    net::CallFault f;
    if (opcode == engine::kOpRebuildFetch && fetch_drops < 3) {
      ++fetch_drops;
      f.drop = true;
    }
    return f;
  });

  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    client::KvObject kv(cl, kPoolUuid, oid);
    auto v1 = bytes("needs-rebuild");
    CO_ASSERT_ERRNO(co_await kv.put("k1", "a", v1), Errno::ok);
    tb.crash_engine(3);
    // Rides the crash, reports the eviction, and starts the rebuild.
    auto v2 = bytes("degraded-window-write");
    CO_ASSERT_ERRNO(co_await kv.put("k2", "a", v2), Errno::ok);
  });
  ASSERT_TRUE(tb.wait_rebuild());
  EXPECT_EQ(fetch_drops, 3);  // the dropped round actually happened
  tb.domain().set_fault_hook({});

  // The re-driven assignment carried the done source's entries: the
  // substitute's VOS holds both generations of the group's data.
  const vos::VosContainer* cont =
      tb.engine(sub_engine).vos_target(emap.targets[sub].target).find_container(kPoolUuid);
  ASSERT_NE(cont, nullptr);
  const auto g1 = cont->kv_get(oid, "k1", "a", vos::kEpochMax);
  ASSERT_TRUE(g1.exists);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(g1.data.data()), g1.data.size()),
            "needs-rebuild");
  const auto g2 = cont->kv_get(oid, "k2", "a", vos::kEpochMax);
  ASSERT_TRUE(g2.exists);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(g2.data.data()), g2.data.size()),
            "degraded-window-write");
  tb.stop();
}

}  // namespace
}  // namespace daosim
