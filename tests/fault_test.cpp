// Fault-injection suite: deterministic fault schedules (crash / restart /
// drop / delay / stall), the client's deadline+retry+backoff machinery, the
// pool-service eviction path (pool-map version bumps, EXCLUDED targets,
// refresh-on-stale re-placement), and the bit-reproducibility of whole IOR
// runs under seeded fault schedules.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "co_assert.hpp"
#include "fault/fault.hpp"
#include "ior/ior.hpp"

namespace daosim {
namespace {

using client::ObjClass;
using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;   // 4 engines; svc replicas on engines 0..2
  cfg.targets_per_engine = 4;   // 16 targets
  cfg.client_nodes = 2;
  return cfg;
}

/// Map-target indices are engine-major: engine e owns [e*tpe, (e+1)*tpe).
std::uint32_t first_target_of_engine(const ClusterConfig& cfg, std::uint32_t engine) {
  return engine * cfg.targets_per_engine;
}

// ---------------------------------------------------------------------------
// Schedule grammar

TEST(FaultSchedule, ParseAcceptsFullGrammar) {
  auto parsed = fault::Schedule::parse(
      "crash@200ms:e3,restart@1.5s:e3,drop@0s-500ms:e1:0.25,delay@100ms-1s:*:200us,"
      "stall@50ms:e0.2:30ms");
  ASSERT_TRUE(parsed.ok());
  const auto& ev = parsed->events();
  ASSERT_EQ(ev.size(), 5u);

  EXPECT_EQ(ev[0].kind, fault::Kind::crash);
  EXPECT_EQ(ev[0].at, 200 * sim::kMs);
  EXPECT_EQ(ev[0].engine, 3u);

  EXPECT_EQ(ev[1].kind, fault::Kind::restart);
  EXPECT_EQ(ev[1].at, 1500 * sim::kMs);

  EXPECT_EQ(ev[2].kind, fault::Kind::drop);
  EXPECT_EQ(ev[2].at, 0u);
  EXPECT_EQ(ev[2].until, 500 * sim::kMs);
  EXPECT_EQ(ev[2].engine, 1u);
  EXPECT_DOUBLE_EQ(ev[2].probability, 0.25);

  EXPECT_EQ(ev[3].kind, fault::Kind::delay);
  EXPECT_EQ(ev[3].engine, fault::kAllEngines);
  EXPECT_EQ(ev[3].amount, 200 * sim::kUs);

  EXPECT_EQ(ev[4].kind, fault::Kind::stall);
  EXPECT_EQ(ev[4].engine, 0u);
  EXPECT_EQ(ev[4].target, 2u);
  EXPECT_EQ(ev[4].amount, 30 * sim::kMs);
}

TEST(FaultSchedule, ParsePartitionSymmetricAndOneWay) {
  auto parsed = fault::Schedule::parse("partition@1s-4s:e0+e1|e2+e3,partition@2s-3s:e0>e3");
  ASSERT_TRUE(parsed.ok());
  const auto& ev = parsed->events();
  ASSERT_EQ(ev.size(), 2u);

  EXPECT_EQ(ev[0].kind, fault::Kind::partition);
  EXPECT_EQ(ev[0].at, 1 * sim::kSec);
  EXPECT_EQ(ev[0].until, 4 * sim::kSec);
  EXPECT_EQ(ev[0].group_a, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(ev[0].group_b, (std::vector<std::uint32_t>{2, 3}));
  EXPECT_FALSE(ev[0].oneway);

  EXPECT_EQ(ev[1].kind, fault::Kind::partition);
  EXPECT_EQ(ev[1].group_a, (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(ev[1].group_b, (std::vector<std::uint32_t>{3}));
  EXPECT_TRUE(ev[1].oneway);
}

TEST(FaultSchedule, ParseRejectsMalformedPartitions) {
  const char* bad[] = {
      "partition@1s:e0|e1",          // point time on a window event
      "partition@2s-1s:e0|e1",       // reversed window
      "partition@1s-2s:e0",          // no group separator
      "partition@1s-2s:e0|",         // empty right group
      "partition@1s-2s:|e1",         // empty left group
      "partition@1s-2s:e0+|e1",      // trailing '+' in a group
      "partition@1s-2s:*|e1",        // wildcard is not a group member
      "partition@1s-2s:e0.1|e1",     // targets don't partition
      "partition@1s-2s:e0|e0",       // overlapping groups
      "partition@1s-2s:e0+e1|e1",    // overlapping groups
      "partition@1s-2s:e0|e1:0.5",   // partition takes no argument
      "partition@1s-2s:e0|e1>e2",    // mixing both separators
  };
  for (const char* spec : bad) {
    auto parsed = fault::Schedule::parse(spec);
    EXPECT_FALSE(parsed.ok()) << "spec accepted: '" << spec << "'";
    EXPECT_EQ(parsed.error(), Errno::invalid) << spec;
  }
}

TEST(FaultSchedule, ValidateChecksPartitionGroupBounds) {
  auto sched = fault::Schedule::parse("partition@1s-2s:e0+e3|e1");
  ASSERT_TRUE(sched.ok());
  EXPECT_TRUE(sched->validate(4, 8).ok());
  EXPECT_EQ(sched->validate(3, 8).error(), Errno::invalid);  // e3 out of range
}

TEST(FaultSchedule, BareNumbersAreSeconds) {
  auto parsed = fault::Schedule::parse("crash@2:e0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->events()[0].at, 2 * sim::kSec);
}

TEST(FaultSchedule, ParseRejectsMalformedSpecs) {
  const char* bad[] = {
      "",                      // empty
      "boom@1s:e0",            // unknown kind
      "crash@:e0",             // missing time
      "crash@1s",              // missing selector
      "crash@1s:*",            // crash needs a concrete engine
      "crash@1s:x3",           // bad selector syntax
      "crash@1s:e0.1",         // crash takes no target
      "crash@1s:e0:junk",      // crash takes no argument
      "crash@1s-2s:e0",        // point event with a window
      "drop@1s:e0:0.5",        // window event with a point time
      "drop@1s-2s:e0:1.5",     // probability out of (0,1]
      "drop@2s-1s:e0:0.5",     // reversed window
      "delay@1s-2s:e0:0s",     // zero delay amount
      "stall@1s:e0:10ms",      // stall needs engine.target
      "stall@1s:*:10ms",       // stall cannot be wildcard
      "crash@1s:e0,,crash@2s:e1",  // empty item
  };
  for (const char* spec : bad) {
    auto parsed = fault::Schedule::parse(spec);
    EXPECT_FALSE(parsed.ok()) << "spec accepted: '" << spec << "'";
    EXPECT_EQ(parsed.error(), Errno::invalid) << spec;
  }
}

// The grammar cannot know the cluster shape; validate() checks a parsed
// schedule against it so CLI front-ends can reject out-of-range selectors
// instead of tripping the Injector's invariant.
TEST(FaultSchedule, ValidateChecksEngineAndTargetBounds) {
  auto sched = fault::Schedule::parse("crash@1s:e3,stall@1s:e0.7:10ms,delay@0s-1s:*:50us");
  ASSERT_TRUE(sched.ok());
  EXPECT_TRUE(sched->validate(4, 8).ok());
  EXPECT_EQ(sched->validate(3, 8).error(), Errno::invalid);  // e3 out of range
  EXPECT_EQ(sched->validate(4, 7).error(), Errno::invalid);  // target 7 out of range
  // The wildcard selector never constrains the engine count.
  EXPECT_TRUE(fault::Schedule().delay(0, sim::kSec, fault::kAllEngines, 50 * sim::kUs)
                  .validate(1, 1)
                  .ok());
}

// ---------------------------------------------------------------------------
// Retry backoff (pure function)

TEST(RetryBackoff, DeterministicDoublingCappedSequence) {
  client::RetryPolicy p;
  p.backoff_base = 10 * sim::kMs;
  p.backoff_cap = 60 * sim::kMs;
  EXPECT_EQ(retry_backoff(p, 1), 10 * sim::kMs);
  EXPECT_EQ(retry_backoff(p, 2), 20 * sim::kMs);
  EXPECT_EQ(retry_backoff(p, 3), 40 * sim::kMs);
  EXPECT_EQ(retry_backoff(p, 4), 60 * sim::kMs);  // capped
  EXPECT_EQ(retry_backoff(p, 5), 60 * sim::kMs);  // stays capped
}

// ---------------------------------------------------------------------------
// Health-aware placement (pure function)

pool::PoolMap unit_map(std::uint32_t engines, std::uint32_t tpe) {
  pool::PoolMap map;
  map.pool = kPoolUuid;
  for (std::uint32_t e = 0; e < engines; ++e) {
    for (std::uint32_t t = 0; t < tpe; ++t) {
      map.targets.push_back(pool::TargetRef{e, t, pool::TargetHealth::up});
    }
  }
  return map;
}

TEST(Placement, MapOverloadMatchesPlainOverloadWhileHealthy) {
  const pool::PoolMap map = unit_map(4, 4);
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    for (ObjClass cls : {ObjClass::S1, ObjClass::S2, ObjClass::S4, ObjClass::SX}) {
      const auto oid = client::make_oid(seq, cls);
      const std::uint32_t shards = client::shard_count(cls, map.target_count());
      EXPECT_EQ(client::compute_layout(oid, shards, map.target_count()),
                client::compute_layout(oid, shards, map))
          << "seq " << seq;
    }
  }
}

TEST(Placement, ExcludedTargetsAreRemappedDeterministically) {
  pool::PoolMap map = unit_map(4, 4);
  for (std::uint32_t t = 8; t < 12; ++t) map.targets[t].health = pool::TargetHealth::excluded;

  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    const auto oid = client::make_oid(seq, ObjClass::SX);
    const auto healthy = client::compute_layout(oid, 16, std::uint32_t(16));
    const auto degraded = client::compute_layout(oid, 16, map);
    ASSERT_EQ(degraded.size(), healthy.size());
    for (std::uint32_t s = 0; s < 16; ++s) {
      EXPECT_NE(map.targets[degraded[s]].health, pool::TargetHealth::excluded)
          << "shard " << s << " of seq " << seq << " placed on an excluded target";
      if (map.targets[healthy[s]].health == pool::TargetHealth::up) {
        EXPECT_EQ(degraded[s], healthy[s]) << "healthy shard " << s << " moved (seq " << seq
                                           << ") — re-placement must be local";
      }
    }
    EXPECT_EQ(degraded, client::compute_layout(oid, 16, map)) << "nondeterministic remap";
  }
}

// ---------------------------------------------------------------------------
// RPC in-flight bound (unit level, no cluster)

TEST(RpcInflight, CallsBeyondTheCapFailBusy) {
  sim::Scheduler s;
  net::Fabric fabric(s, {});
  net::RpcDomain domain(fabric);
  const net::NodeId a = fabric.add_node();
  const net::NodeId ghost = fabric.add_node();  // no endpoint: calls time out
  net::RpcEndpoint ep(domain, a);
  ep.set_max_inflight(4);

  int busy = 0, timed_out = 0;
  for (int i = 0; i < 10; ++i) {
    s.spawn([&ep, &busy, &timed_out, ghost]() -> CoTask<void> {
      // Raw endpoint call on purpose: this unit test exercises RpcEndpoint
      // itself (the raw-rpc-call lint only scopes src/client/).
      const net::Reply r = co_await ep.call(ghost, 0x1, {}, 64);
      if (r.status == Errno::busy) ++busy;
      if (r.status == Errno::timed_out) ++timed_out;
    });
  }
  s.run();
  EXPECT_EQ(busy, 6);
  EXPECT_EQ(timed_out, 4);
  EXPECT_EQ(ep.busy_rejections(), 6u);
  EXPECT_EQ(ep.inflight_calls(), 0u);  // guards all released
  EXPECT_EQ(ep.calls_made(), 4u);      // busy rejections never count as calls
}

// ---------------------------------------------------------------------------
// Client retry budget + deadline against a crashed engine

TEST(RetryPath, BudgetExhaustionReturnsTimedOutAfterExactAttempts) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    const std::uint32_t victim = 3;  // not a pool-service replica
    tb.crash_engine(victim);

    const std::uint64_t calls_before = cl.rpcs_sent();
    const sim::Time t0 = tb.sched().now();
    // call_retry is the bare deadline+backoff loop (no eviction side effects).
    const net::Reply r =
        co_await cl.call_retry(tb.engine(victim).node(), engine::kOpObjFetch, {}, 64);
    const sim::Time elapsed = tb.sched().now() - t0;

    EXPECT_EQ(r.status, Errno::timed_out);
    EXPECT_EQ(cl.rpcs_sent() - calls_before,
              std::uint64_t(cl.retry_policy().max_attempts));
    // 4 attempts burning kRpcTimeout each + backoffs 20+40+80ms, plus a few
    // microseconds of fabric transfer per attempt.
    const sim::Time floor = 4 * net::kRpcTimeout + (20 + 40 + 80) * sim::kMs;
    EXPECT_GE(elapsed, floor);
    EXPECT_LT(elapsed, floor + 10 * sim::kMs);
  });
  tb.stop();
}

TEST(RetryPath, CallTargetEvictsRefreshesAndFailsFastAfterwards) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    const std::uint32_t victim = 3;
    const std::uint32_t mt = first_target_of_engine(tb.config(), victim);
    tb.crash_engine(victim);

    net::Body body = net::Body::make(engine::ObjFetchReq{});
    const net::Reply r = co_await cl.call_target(mt, engine::kOpObjFetch, std::move(body), 64);
    EXPECT_EQ(r.status, Errno::stale);
    EXPECT_EQ(cl.evictions_reported(), 1u);
    EXPECT_EQ(cl.pool_map().version, 2u);
    for (std::uint32_t t = mt; t < mt + tb.config().targets_per_engine; ++t) {
      EXPECT_EQ(cl.pool_map().targets[t].health, pool::TargetHealth::excluded) << t;
    }

    // A second call to the excluded target fails fast: zero RPCs issued.
    const std::uint64_t calls_before = cl.rpcs_sent();
    net::Body body2 = net::Body::make(engine::ObjFetchReq{});
    const net::Reply r2 = co_await cl.call_target(mt, engine::kOpObjFetch, std::move(body2), 64);
    EXPECT_EQ(r2.status, Errno::stale);
    EXPECT_EQ(cl.rpcs_sent(), calls_before);
    EXPECT_EQ(cl.evictions_reported(), 1u);
  });
  tb.stop();
}

TEST(RetryPath, KvPutSurvivesCrashByReplacingShards) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    const std::uint32_t victim = 3;
    tb.crash_engine(victim);

    // S8 object: some shards land on the crashed engine with high probability;
    // put/get must still succeed end to end via stale -> refresh -> re-place.
    client::KvObject kv(cl, kPoolUuid, client::make_oid(42, ObjClass::S8));
    std::vector<std::byte> v(8, std::byte{0x5A});
    for (int i = 0; i < 16; ++i) {
      CO_ASSERT_EQ(co_await kv.put(strfmt("k%02d", i), "a", v), Errno::ok);
    }
    for (int i = 0; i < 16; ++i) {
      auto got = co_await kv.get(strfmt("k%02d", i), "a");
      CO_ASSERT_OK(got);
      CO_ASSERT_EQ(got->size(), 8u);
    }
    EXPECT_EQ(cl.pool_map().version, 2u);
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Idempotency: a stalled target forces duplicate applies; state stays correct

TEST(Idempotency, RetriedUpdateAppliesTwiceWithoutHarm) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));

    const auto oid = client::make_oid(7, ObjClass::S1);
    const auto layout =
        client::compute_layout(oid, 1, cl.pool_map().target_count());
    const std::uint32_t mt = layout[0];
    const std::uint32_t eng = mt / tb.config().targets_per_engine;
    const std::uint32_t tgt = cl.pool_map().targets[mt].target;
    const std::uint64_t updates_before = tb.engine(eng).updates_served();

    // Shrink the per-attempt deadline so the stall forces duplicates (the
    // default deadline is deliberately larger than any legitimate queueing).
    client::RetryPolicy aggressive = cl.retry_policy();
    aggressive.deadline = 150 * sim::kMs;
    cl.set_retry_policy(aggressive);

    // Wedge the target for 400ms: with a 150ms deadline and 20/40ms backoffs,
    // attempts 1 and 2 expire while queued behind the stall; attempt 3 starts
    // at ~360ms and completes once the stall clears at 400ms. All three
    // eventually apply against VOS — the put must still read back correctly.
    fault::Schedule sched;
    sched.stall(0, eng, tgt, 400 * sim::kMs);
    tb.inject_faults(sched, /*seed=*/1);

    client::KvObject kv(cl, kPoolUuid, oid);
    std::vector<std::byte> v(16, std::byte{0x77});
    const sim::Time t0 = tb.sched().now();
    CO_ASSERT_EQ(co_await kv.put("dkey", "akey", v), Errno::ok);
    EXPECT_GE(tb.sched().now() - t0, 400 * sim::kMs);

    // Let the abandoned duplicate attempts drain through the target queue.
    co_await tb.sched().delay(50 * sim::kMs);
    EXPECT_GE(tb.engine(eng).updates_served() - updates_before, 2u)
        << "expected the retry to duplicate-apply behind the stall";

    auto got = co_await kv.get("dkey", "akey");
    CO_ASSERT_OK(got);
    CO_ASSERT_EQ(got->size(), 16u);
    EXPECT_EQ((*got)[0], std::byte{0x77});
    EXPECT_EQ(cl.evictions_reported(), 0u) << "a stall must not escalate to eviction";
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Raft failover: leader crash mid-run, eviction commits exactly once

TEST(RaftFailover, LeaderCrashStillCommitsEvictionExactlyOnce) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    const auto leader = tb.svc_leader();
    CO_ASSERT_TRUE(leader.has_value());
    const std::uint32_t victim = *leader;  // replica index == engine index
    const std::uint32_t mt = first_target_of_engine(tb.config(), victim);
    tb.crash_engine(victim);

    // Client 0 trips over the dead engine: the retry budget burns, the
    // eviction must be committed by a NEW leader elected mid-report.
    auto& c0 = tb.client(0);
    net::Body b0 = net::Body::make(engine::ObjFetchReq{});
    const net::Reply r0 = co_await c0.call_target(mt, engine::kOpObjFetch, std::move(b0), 64);
    EXPECT_EQ(r0.status, Errno::stale);
    EXPECT_EQ(c0.pool_map().version, 2u);
    EXPECT_EQ(c0.evictions_reported(), 1u);

    const auto new_leader = tb.svc_leader();
    CO_ASSERT_TRUE(new_leader.has_value());
    EXPECT_NE(*new_leader, victim);
    const auto& meta = tb.svc_replica(*new_leader).meta();
    EXPECT_EQ(meta.map_version(), 2u);
    EXPECT_EQ(meta.excluded_engines().count(tb.engine(victim).node()), 1u);

    // Client 1 reports the same engine: the state machine must treat the
    // duplicate eviction as a no-op — the version bumps exactly once.
    auto& c1 = tb.client(1);
    net::Body b1 = net::Body::make(engine::ObjFetchReq{});
    const net::Reply r1 = co_await c1.call_target(mt, engine::kOpObjFetch, std::move(b1), 64);
    EXPECT_EQ(r1.status, Errno::stale);
    EXPECT_EQ(c1.pool_map().version, 2u);
    EXPECT_EQ(tb.svc_replica(*new_leader).meta().map_version(), 2u);
  });
  tb.stop();
}

TEST(RaftFailover, RestartDoesNotReintegrateUntilPoolReint) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    const std::uint32_t victim = 3;
    const std::uint32_t mt = first_target_of_engine(tb.config(), victim);
    tb.crash_engine(victim);

    net::Body b0 = net::Body::make(engine::ObjFetchReq{});
    const net::Reply r0 = co_await cl.call_target(mt, engine::kOpObjFetch, std::move(b0), 64);
    EXPECT_EQ(r0.status, Errno::stale);
    EXPECT_EQ(cl.pool_map().version, 2u);

    // Restart alone leaves the engine EXCLUDED (DAOS requires an explicit
    // reintegration): calls to its targets still fail fast with stale.
    tb.restart_engine(victim);
    net::Body b1 = net::Body::make(engine::ObjFetchReq{});
    const net::Reply r1 = co_await cl.call_target(mt, engine::kOpObjFetch, std::move(b1), 64);
    EXPECT_EQ(r1.status, Errno::stale);

    CO_ASSERT_OK(co_await cl.pool_reint(tb.engine(victim).node()));
    EXPECT_EQ(cl.pool_map().version, 3u);
    EXPECT_EQ(cl.pool_map().targets[mt].health, pool::TargetHealth::up);

    net::Body b2 = net::Body::make(engine::ObjFetchReq{});
    const net::Reply r2 = co_await cl.call_target(mt, engine::kOpObjFetch, std::move(b2), 64);
    EXPECT_EQ(r2.status, Errno::ok) << "reintegrated target must serve again";
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Partition windows: engine groups severed symmetrically or one-way

TEST(PartitionFault, IsolatedLeaderLosesLeadershipAndClusterHeals) {
  Testbed tb(small_cluster());
  tb.start();
  const auto leader0 = tb.svc_leader();
  ASSERT_TRUE(leader0.has_value());
  const std::uint32_t old_leader = *leader0;  // replica index == engine index
  std::vector<std::uint32_t> others;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    if (e != old_leader) others.push_back(e);
  }
  fault::Schedule sched;
  sched.partition(0, 2 * sim::kSec, {old_leader}, others);
  fault::Injector& inj = tb.inject_faults(sched, /*seed=*/5);

  tb.run([&]() -> CoTask<void> {
    // The majority side must elect a new leader while the old one is cut off.
    bool new_leader_seen = false;
    const sim::Time deadline = tb.sched().now() + 2 * sim::kSec;
    while (tb.sched().now() < deadline && !new_leader_seen) {
      for (std::uint32_t s = 0; s < tb.svc_replica_count(); ++s) {
        if (s != old_leader && tb.svc_replica(s).is_leader()) new_leader_seen = true;
      }
      if (!new_leader_seen) co_await tb.sched().delay(20 * sim::kMs);
    }
    EXPECT_TRUE(new_leader_seen) << "no failover while the leader was partitioned";
    EXPECT_GT(inj.calls_partitioned(), 0u);
    // After the window closes the old leader rejoins as a follower and the
    // service keeps working — no engine was evicted by the partition itself.
    co_await tb.sched().delay(2500 * sim::kMs);
    CO_ASSERT_OK(co_await tb.client(0).cont_create(kPoolUuid, {}));
    EXPECT_EQ(tb.client(0).evictions_reported(), 0u);
  });
  tb.stop();
}

TEST(PartitionFault, OneWayPartitionSeversOnlyForwardDirection) {
  Testbed tb(small_cluster());
  tb.start();
  fault::Schedule sched;
  sched.partition(0, sim::kSec, {3}, {0}, /*oneway=*/true);
  tb.inject_faults(sched, /*seed=*/5);
  tb.run([&]() -> CoTask<void> {
    // Raw endpoint calls on purpose: this exercises the injector's call hook
    // directly (the raw-rpc-call lint only scopes src/client/).
    net::Body fwd = net::Body::make(engine::SwimPingReq{});
    const net::Reply r1 = co_await tb.engine(3).endpoint().call(
        tb.engine(0).node(), engine::kOpSwimPing, std::move(fwd), 64);
    EXPECT_EQ(r1.status, Errno::timed_out) << "e3 -> e0 must be severed";
    net::Body rev = net::Body::make(engine::SwimPingReq{});
    const net::Reply r2 = co_await tb.engine(0).endpoint().call(
        tb.engine(3).node(), engine::kOpSwimPing, std::move(rev), 64);
    EXPECT_EQ(r2.status, Errno::ok) << "e0 -> e3 must still cross one-way";
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Seeded fault schedules over IOR scenarios: bit-reproducible, seed-sensitive

ior::IorConfig fault_job(bool fpp) {
  ior::IorConfig cfg;
  cfg.api = ior::Api::daos_array;
  cfg.transfer_size = 256 * kKiB;
  cfg.block_size = 4 * kMiB;
  cfg.segments = 2;
  cfg.file_per_process = fpp;
  cfg.verify = false;  // degraded reads legitimately lose unreplicated shards
  return cfg;
}

struct FaultDigest {
  std::uint64_t trace_hash = 0;
  std::uint64_t events = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t injected = 0;
  std::uint64_t dropped = 0;
  std::uint32_t map_version = 0;
};

FaultDigest run_fault_scenario(bool fpp, std::uint64_t fault_seed) {
  Testbed tb(small_cluster());
  tb.start();
  // Crash lands 5ms in (mid-write: the whole healthy write phase is ~11ms of
  // virtual time); the stuck writers then burn their 540ms retry budget, so
  // the run is guaranteed alive for the 500ms restart and the drop window.
  auto sched = fault::Schedule::parse(
      "crash@5ms:e3,restart@500ms:e3,drop@50ms-250ms:e1:0.5,delay@0s-400ms:*:50us");
  EXPECT_TRUE(sched.ok());
  fault::Injector& inj = tb.inject_faults(*sched, fault_seed);
  ior::IorRunner runner(tb, /*ppn=*/4);
  const ior::IorResult res = runner.run(fault_job(fpp));

  FaultDigest d;
  d.write_bytes = res.write.bytes;
  d.read_bytes = res.read.bytes;
  d.injected = inj.faults_injected();
  d.dropped = inj.calls_dropped();
  if (const auto leader = tb.svc_leader()) {
    d.map_version = tb.svc_replica(*leader).meta().map_version();
  }
  tb.stop();
  d.trace_hash = tb.sched().trace_hash();
  d.events = tb.sched().events_processed();
  return d;
}

class FaultDeterminism : public ::testing::TestWithParam<bool /*file_per_process*/> {};

TEST_P(FaultDeterminism, SameSeedReplaysBitIdentically) {
  const bool fpp = GetParam();
  const FaultDigest a = run_fault_scenario(fpp, 1234);
  const FaultDigest b = run_fault_scenario(fpp, 1234);

  EXPECT_EQ(a.trace_hash, b.trace_hash)
      << "fault runs diverged — injection reached the scheduler nondeterministically";
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.write_bytes, b.write_bytes);
  EXPECT_EQ(a.read_bytes, b.read_bytes);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.map_version, b.map_version);

  EXPECT_EQ(a.injected, 2u);  // crash + restart fired
  EXPECT_EQ(a.map_version, 2u) << "the crashed engine was never evicted";
  EXPECT_GT(a.dropped, 0u) << "the drop window never bit — schedule mistimed";
}

TEST_P(FaultDeterminism, DifferentSeedPerturbsTheTrace) {
  const bool fpp = GetParam();
  const FaultDigest a = run_fault_scenario(fpp, 1234);
  const FaultDigest b = run_fault_scenario(fpp, 99991);
  EXPECT_NE(a.trace_hash, b.trace_hash)
      << "drop decisions ignored the seed — fault RNG is not wired through";
}

INSTANTIATE_TEST_SUITE_P(EasyAndHard, FaultDeterminism, ::testing::Values(true, false),
                         [](const auto& tp) { return tp.param ? std::string("easy")
                                                              : std::string("hard"); });

// ---------------------------------------------------------------------------
// Acceptance: IOR hard mode with an engine crashed mid-write completes with
// the target evicted and non-zero bandwidth

TEST(FaultAcceptance, HardModeRunSurvivesMidWriteCrash) {
  Testbed tb(small_cluster());
  tb.start();
  fault::Schedule sched;
  sched.crash(5 * sim::kMs, 3);  // mid-write: the healthy phase takes ~11ms
  tb.inject_faults(sched, /*seed=*/7);

  ior::IorRunner runner(tb, /*ppn=*/4);
  ior::IorConfig cfg = fault_job(/*fpp=*/false);  // shared file (hard mode)
  cfg.do_read = false;                            // isolate the write phase
  const ior::IorResult res = runner.run(cfg);

  EXPECT_EQ(res.write.bytes, 8ull * 4 * 2 * kMiB);  // every rank finished
  EXPECT_GT(res.write.gib_per_sec(), 0.0);
  // The stuck writers burned the full retry budget before re-placing, so the
  // degraded write phase must span at least that long.
  EXPECT_GE(res.write.seconds, 0.3) << "crash landed after the write phase ended";

  const auto leader = tb.svc_leader();
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(tb.svc_replica(*leader).meta().map_version(), 2u);
  EXPECT_EQ(tb.svc_replica(*leader).meta().excluded_engines().count(tb.engine(3).node()), 1u);
  tb.stop();
}

// The same crash against the vectorized path: multi-extent batches in flight
// (32 KiB chunks -> 8 extents per transfer) plus an async window of two
// transfers per rank. A batch that dies mid-flight must be retried or
// re-placed as a unit without losing any member extent's bytes.
TEST(FaultAcceptance, BatchedPipelinedWriteSurvivesMidWriteCrash) {
  Testbed tb(small_cluster());
  tb.start();
  fault::Schedule sched;
  sched.crash(5 * sim::kMs, 3);
  tb.inject_faults(sched, /*seed=*/7);

  ior::IorRunner runner(tb, /*ppn=*/4, /*chunk_size=*/32 * kKiB);
  ior::IorConfig cfg = fault_job(/*fpp=*/false);
  cfg.do_read = false;
  cfg.eq_depth = 2;
  const ior::IorResult res = runner.run(cfg);

  EXPECT_EQ(res.write.bytes, 8ull * 4 * 2 * kMiB);  // every rank finished
  EXPECT_GT(res.write.gib_per_sec(), 0.0);

  const auto leader = tb.svc_leader();
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(tb.svc_replica(*leader).meta().map_version(), 2u);
  EXPECT_EQ(tb.svc_replica(*leader).meta().excluded_engines().count(tb.engine(3).node()), 1u);
  tb.stop();
}

// ---------------------------------------------------------------------------
// Delay-only schedules degrade latency without triggering evictions

TEST(FaultDelayOnly, DfsRunCompletesWithoutEviction) {
  Testbed tb(small_cluster());
  tb.start();
  auto sched = fault::Schedule::parse("delay@0s-300ms:*:100us");
  ASSERT_TRUE(sched.ok());
  fault::Injector& inj = tb.inject_faults(*sched, /*seed=*/3);

  ior::IorRunner runner(tb, /*ppn=*/4);
  ior::IorConfig cfg;
  cfg.api = ior::Api::dfs;
  cfg.transfer_size = 256 * kKiB;
  cfg.block_size = 1 * kMiB;
  cfg.segments = 2;
  cfg.file_per_process = true;
  cfg.verify = true;  // no data is lost under pure delay
  const ior::IorResult res = runner.run(cfg);

  EXPECT_EQ(res.verify_errors, 0u);
  EXPECT_EQ(res.read_fill_errors, 0u);
  EXPECT_GT(inj.calls_delayed(), 0u);
  const auto leader = tb.svc_leader();
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(tb.svc_replica(*leader).meta().map_version(), 1u)
      << "pure delays must never escalate to eviction";
  for (std::uint32_t c = 0; c < tb.client_node_count(); ++c) {
    EXPECT_EQ(tb.client(c).evictions_reported(), 0u);
  }
  tb.stop();
}

}  // namespace
}  // namespace daosim
