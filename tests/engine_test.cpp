// Direct engine tests: the object RPC handlers, target xstream serialization,
// the stream-context (locality) model, media cost accounting, and conditional
// inserts — exercised against a single engine without the client library.
#include <gtest/gtest.h>

#include "common/units.hpp"

#include "co_assert.hpp"
#include "engine/engine.hpp"
#include "net/rpc.hpp"

namespace daosim::engine {
namespace {

using net::Body;
using net::Reply;
using sim::CoTask;
using sim::Time;

struct Env {
  Env(EngineConfig ecfg = {}) : fabric(sched, fabric_cfg()), domain(fabric) {
    const auto enode = fabric.add_node(1);
    media = std::make_unique<media::DcpmmInterleaveSet>(sched);
    eng = std::make_unique<Engine>(domain, enode, *media, ecfg);
    client = std::make_unique<net::RpcEndpoint>(domain, fabric.add_node());
  }
  static net::FabricConfig fabric_cfg() {
    net::FabricConfig cfg;
    cfg.latency = 1 * sim::kUs;
    return cfg;
  }
  template <typename F>
  void run(F f) {  // callable, not invoked: keeps the closure alive (CP.51)
    sched.spawn(std::move(f));
    sched.run();
  }

  CoTask<Reply> update(vos::ObjId oid, std::uint32_t target, std::uint64_t off,
                       std::uint64_t len, vos::Key dkey = "0") {
    ObjUpdateReq req;
    req.cont = vos::Uuid{1, 1};
    req.oid = oid;
    req.target = target;
    req.dkey = std::move(dkey);
    req.akey = "0";
    req.offset = off;
    req.length = len;
    Body body = Body::make(std::move(req));
    co_return co_await client->call(eng->node(), kOpObjUpdate, std::move(body),
                                    kObjRpcHeader + len);
  }

  CoTask<Reply> fetch(vos::ObjId oid, std::uint32_t target, std::uint64_t off,
                      std::uint64_t len) {
    ObjFetchReq req;
    req.cont = vos::Uuid{1, 1};
    req.oid = oid;
    req.target = target;
    req.dkey = "0";
    req.akey = "0";
    req.offset = off;
    req.length = len;
    Body body = Body::make(std::move(req));
    co_return co_await client->call(eng->node(), kOpObjFetch, std::move(body), kObjRpcHeader);
  }

  sim::Scheduler sched;
  net::Fabric fabric;
  net::RpcDomain domain;
  std::unique_ptr<media::DcpmmInterleaveSet> media;
  std::unique_ptr<Engine> eng;
  std::unique_ptr<net::RpcEndpoint> client;
};

constexpr vos::ObjId kOid{0x0100000000000000ULL, 42};

/// Helper: discard a Reply so WaitGroup tasks type-check.
CoTask<void> drop(CoTask<Reply> t) { (void)co_await std::move(t); }

TEST(Engine, UpdateThenFetchRoundTrip) {
  Env env;
  env.run([&]() -> CoTask<void> {
    Reply w = co_await env.update(kOid, 0, 0, 4096);
    CO_ASSERT_ERRNO(w.status, Errno::ok);
    Reply r = co_await env.fetch(kOid, 0, 0, 4096);
    CO_ASSERT_ERRNO(r.status, Errno::ok);
    const auto& resp = r.body.get<ObjFetchResp>();
    CO_ASSERT_EQ(resp.filled, 4096u);
    CO_ASSERT_TRUE(resp.exists);
  });
  EXPECT_EQ(env.eng->updates_served(), 1u);
  EXPECT_EQ(env.eng->fetches_served(), 1u);
}

TEST(Engine, TargetsAreIndependentStores) {
  Env env;
  env.run([&]() -> CoTask<void> {
    (void)co_await env.update(kOid, 0, 0, 128);
    Reply r = co_await env.fetch(kOid, 1, 0, 128);  // other target: nothing
    CO_ASSERT_ERRNO(r.status, Errno::ok);
    CO_ASSERT_EQ(r.body.get<ObjFetchResp>().filled, 0u);
  });
}

TEST(Engine, BadTargetIndexThrows) {
  Env env;
  EXPECT_THROW(env.run([&]() -> CoTask<void> {
                 (void)co_await env.update(kOid, 99, 0, 128);
               }),
               DaosimError);
}

TEST(Engine, StreamContextMissChargesSwitchCost) {
  EngineConfig cfg;
  cfg.stream_contexts = 2;
  cfg.stream_switch_write = 1 * sim::kMs;
  Env env(cfg);
  // Two objects fit; a third keeps evicting -> every access cold.
  env.run([&]() -> CoTask<void> {
    const Time t0 = env.sched.now();
    (void)co_await env.update(vos::ObjId{kOid.hi, 1}, 0, 0, 64);  // miss (new)
    const Time first = env.sched.now() - t0;
    const Time t1 = env.sched.now();
    (void)co_await env.update(vos::ObjId{kOid.hi, 1}, 0, 64, 64);  // hit
    const Time second = env.sched.now() - t1;
    CO_ASSERT_TRUE(first >= 1 * sim::kMs);
    CO_ASSERT_TRUE(second < 1 * sim::kMs);
  });
  EXPECT_EQ(env.eng->shard_cache_misses(), 1u);
}

TEST(Engine, StreamContextLruEvicts) {
  EngineConfig cfg;
  cfg.stream_contexts = 2;
  Env env(cfg);
  env.run([&]() -> CoTask<void> {
    for (std::uint64_t o = 1; o <= 3; ++o) {
      (void)co_await env.update(vos::ObjId{kOid.hi, o}, 0, 0, 64);
    }
    // Object 1 was evicted by 3: touching it again is a miss.
    (void)co_await env.update(vos::ObjId{kOid.hi, 1}, 0, 64, 64);
  });
  EXPECT_EQ(env.eng->shard_cache_misses(), 4u);
}

TEST(Engine, XstreamSerializesPerTargetCpu) {
  EngineConfig cfg;
  cfg.update_cpu = 100 * sim::kUs;
  cfg.stream_switch_write = 0;
  cfg.target_write_bw = 1e12;  // CPU-bound on purpose
  Env env(cfg);
  env.run([&]() -> CoTask<void> {
    sim::WaitGroup wg(env.sched);
    const Time t0 = env.sched.now();
    for (int i = 0; i < 8; ++i) wg.spawn(drop(env.update(kOid, 0, 64ull * i, 64)));
    co_await wg.wait();
    // 8 RPCs through one xstream at 100us each: >= 800us total.
    CO_ASSERT_TRUE(env.sched.now() - t0 >= 800 * sim::kUs);
  });
}

TEST(Engine, DistinctTargetsServeConcurrently) {
  EngineConfig cfg;
  cfg.update_cpu = 100 * sim::kUs;
  cfg.stream_switch_write = 0;
  cfg.target_write_bw = 1e12;
  Env env(cfg);
  env.run([&]() -> CoTask<void> {
    sim::WaitGroup wg(env.sched);
    const Time t0 = env.sched.now();
    for (std::uint32_t t = 0; t < 8; ++t) wg.spawn(drop(env.update(kOid, t, 0, 64)));
    co_await wg.wait();
    // Eight xstreams in parallel: far less than 8 serial CPU slots.
    CO_ASSERT_TRUE(env.sched.now() - t0 < 400 * sim::kUs);
  });
}

TEST(Engine, MediaBytesAccounted) {
  Env env;
  env.run([&]() -> CoTask<void> {
    (void)co_await env.update(kOid, 0, 0, 1 * kMiB);
    (void)co_await env.fetch(kOid, 0, 0, 1 * kMiB);
  });
  EXPECT_GE(env.media->bytes_written(), 1 * kMiB);
  EXPECT_GE(env.media->bytes_read(), 1 * kMiB);
}

TEST(Engine, ConditionalInsertDetectsExisting) {
  Env env;
  env.run([&]() -> CoTask<void> {
    auto put = [&](bool cond) -> CoTask<Reply> {
      ObjUpdateReq req;
      req.cont = vos::Uuid{1, 1};
      req.oid = kOid;
      req.target = 0;
      req.dkey = "entry";
      req.akey = "e";
      req.type = RecordType::single_value;
      req.length = 4;
      req.data = std::make_shared<std::vector<std::byte>>(4, std::byte{1});
      req.cond_insert = cond;
      Body body = Body::make(std::move(req));
      co_return co_await env.client->call(env.eng->node(), kOpObjUpdate, std::move(body),
                                          kObjRpcHeader + 4);
    };
    Reply first = co_await put(true);
    CO_ASSERT_ERRNO(first.status, Errno::ok);
    Reply second = co_await put(true);
    CO_ASSERT_ERRNO(second.status, Errno::exists);
    Reply overwrite = co_await put(false);
    CO_ASSERT_ERRNO(overwrite.status, Errno::ok);
  });
}

TEST(Engine, EnumDkeysReturnsVisibleKeys) {
  Env env;
  env.run([&]() -> CoTask<void> {
    (void)co_await env.update(kOid, 0, 0, 64, "chunk-a");
    (void)co_await env.update(kOid, 0, 0, 64, "chunk-b");
    ObjEnumReq req;
    req.cont = vos::Uuid{1, 1};
    req.oid = kOid;
    req.target = 0;
    Body body = Body::make(std::move(req));
    Reply r = co_await env.client->call(env.eng->node(), kOpObjEnumDkeys, std::move(body),
                                        kObjRpcHeader);
    CO_ASSERT_ERRNO(r.status, Errno::ok);
    CO_ASSERT_EQ(r.body.get<ObjEnumResp>().keys.size(), 2u);
  });
}

TEST(Engine, PunchObjectHidesData) {
  Env env;
  env.run([&]() -> CoTask<void> {
    (void)co_await env.update(kOid, 0, 0, 256);
    ObjPunchReq req;
    req.cont = vos::Uuid{1, 1};
    req.oid = kOid;
    req.target = 0;
    req.scope = PunchScope::object;
    Body body = Body::make(std::move(req));
    Reply p = co_await env.client->call(env.eng->node(), kOpObjPunch, std::move(body),
                                        kObjRpcHeader);
    CO_ASSERT_ERRNO(p.status, Errno::ok);
    Reply r = co_await env.fetch(kOid, 0, 0, 256);
    CO_ASSERT_EQ(r.body.get<ObjFetchResp>().filled, 0u);
  });
}

TEST(Engine, QueryArrayEndHint) {
  Env env;
  env.run([&]() -> CoTask<void> {
    ObjUpdateReq req;
    req.cont = vos::Uuid{1, 1};
    req.oid = kOid;
    req.target = 0;
    req.dkey = "7";
    req.akey = "0";
    req.offset = 0;
    req.length = 512;
    req.array_end_hint = 8 * kMiB;
    Body body = Body::make(std::move(req));
    (void)co_await env.client->call(env.eng->node(), kOpObjUpdate, std::move(body),
                                    kObjRpcHeader + 512);
    ObjQueryReq q;
    q.cont = vos::Uuid{1, 1};
    q.oid = kOid;
    q.target = 0;
    q.kind = QueryKind::array_end_hint;
    Body qbody = Body::make(std::move(q));
    Reply r = co_await env.client->call(env.eng->node(), kOpObjQuery, std::move(qbody),
                                        kObjRpcHeader);
    CO_ASSERT_ERRNO(r.status, Errno::ok);
    CO_ASSERT_EQ(r.body.get<ObjQueryResp>().value, 8 * kMiB);
  });
}

}  // namespace
}  // namespace daosim::engine
