// Unit and property tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/bandwidth.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

namespace daosim::sim {
namespace {

CoTask<void> record_at(Scheduler& s, Time dt, std::vector<Time>& out) {
  co_await s.delay(dt);
  out.push_back(s.now());
}

TEST(Scheduler, DelayAdvancesVirtualTime) {
  Scheduler s;
  std::vector<Time> seen;
  s.spawn(record_at(s, 500, seen));
  s.spawn(record_at(s, 100, seen));
  s.spawn(record_at(s, 300, seen));
  s.run();
  EXPECT_EQ(seen, (std::vector<Time>{100, 300, 500}));
  EXPECT_EQ(s.now(), 500u);
}

TEST(Scheduler, FifoOrderAtEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  auto proc = [&](int id) -> CoTask<void> {
    co_await s.delay(42);
    order.push_back(id);
  };
  for (int i = 0; i < 8; ++i) s.spawn(proc(i));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Scheduler, NestedCoTasksReturnValues) {
  Scheduler s;
  auto leaf = [&](int x) -> CoTask<int> {
    co_await s.delay(10);
    co_return x * 2;
  };
  auto mid = [&](int x) -> CoTask<int> {
    int a = co_await leaf(x);
    int b = co_await leaf(a);
    co_return a + b;
  };
  int result = 0;
  auto top = [&]() -> CoTask<void> {
    result = co_await mid(5);
  };
  s.spawn(top());
  s.run();
  EXPECT_EQ(result, 10 + 20);
  EXPECT_EQ(s.now(), 20u);  // two sequential 10ns leaf delays
}

TEST(Scheduler, ExceptionPropagatesThroughAwaitChain) {
  Scheduler s;
  auto thrower = [&]() -> CoTask<void> {
    co_await s.delay(5);
    throw DaosimError("boom");
  };
  bool caught = false;
  auto top = [&]() -> CoTask<void> {
    try {
      co_await thrower();
    } catch (const DaosimError&) {
      caught = true;
    }
  };
  s.spawn(top());
  s.run();
  EXPECT_TRUE(caught);
}

TEST(Scheduler, UncaughtExceptionAbortsRun) {
  Scheduler s;
  auto thrower = [&]() -> CoTask<void> {
    co_await s.delay(5);
    throw DaosimError("boom");
  };
  s.spawn(thrower());
  EXPECT_THROW(s.run(), DaosimError);
}

TEST(Scheduler, DeadlockDetected) {
  Scheduler s;
  auto ev = std::make_shared<Event>(s);
  auto waiter = [&, ev]() -> CoTask<void> {
    co_await ev->wait();  // never set
  };
  s.spawn(waiter());
  EXPECT_THROW(s.run(), DaosimError);
}

TEST(Scheduler, CancelledTimerDoesNotFire) {
  Scheduler s;
  bool fired = false;
  Timer t = s.schedule_callback(100, [&] { fired = true; });
  t.cancel();
  s.schedule_callback(200, [] {});
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.now(), 200u);
}

TEST(Scheduler, RunUntilStopsAtBoundary) {
  Scheduler s;
  std::vector<Time> seen;
  s.spawn(record_at(s, 100, seen));
  s.spawn(record_at(s, 900, seen));
  const bool more = s.run_until(500);
  EXPECT_TRUE(more);
  EXPECT_EQ(seen, (std::vector<Time>{100}));
  EXPECT_EQ(s.now(), 500u);
  s.run();
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Event, WakesAllWaiters) {
  Scheduler s;
  Event ev(s);
  int woke = 0;
  auto waiter = [&]() -> CoTask<void> {
    co_await ev.wait();
    ++woke;
  };
  for (int i = 0; i < 5; ++i) s.spawn(waiter());
  s.spawn([&]() -> CoTask<void> {
    co_await s.delay(50);
    ev.set();
  });
  s.run();
  EXPECT_EQ(woke, 5);
}

TEST(Event, WaitAfterSetIsImmediate) {
  Scheduler s;
  Event ev(s);
  ev.set();
  Time when = ~0ULL;
  s.spawn([&]() -> CoTask<void> {
    co_await ev.wait();
    when = s.now();
  });
  s.run();
  EXPECT_EQ(when, 0u);
}

TEST(Semaphore, LimitsConcurrency) {
  Scheduler s;
  Semaphore sem(s, 2);
  int active = 0, peak = 0;
  auto worker = [&]() -> CoTask<void> {
    co_await sem.acquire();
    peak = std::max(peak, ++active);
    co_await s.delay(100);
    --active;
    sem.release();
  };
  for (int i = 0; i < 10; ++i) s.spawn(worker());
  s.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(s.now(), 500u);  // 10 workers / 2 wide * 100ns
}

TEST(Semaphore, FifoHandoff) {
  Scheduler s;
  Semaphore sem(s, 1);
  std::vector<int> order;
  auto worker = [&](int id) -> CoTask<void> {
    co_await sem.acquire();
    order.push_back(id);
    co_await s.delay(10);
    sem.release();
  };
  for (int i = 0; i < 6; ++i) s.spawn(worker(i));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Mutex, ScopedLockReleasesOnScopeExit) {
  Scheduler s;
  Mutex m(s);
  int inside = 0;
  bool overlapped = false;
  auto worker = [&]() -> CoTask<void> {
    auto guard = co_await ScopedLock::acquire(m);
    if (++inside > 1) overlapped = true;
    co_await s.delay(10);
    --inside;
  };
  for (int i = 0; i < 4; ++i) s.spawn(worker());
  s.run();
  EXPECT_FALSE(overlapped);
}

TEST(Channel, DeliversInOrder) {
  Scheduler s;
  Channel<int> ch(s);
  std::vector<int> got;
  s.spawn([&]() -> CoTask<void> {
    for (int i = 0; i < 5; ++i) {
      int v = co_await ch.pop();
      got.push_back(v);
    }
  });
  s.spawn([&]() -> CoTask<void> {
    for (int i = 0; i < 5; ++i) {
      co_await s.delay(10);
      ch.push(i);
    }
  });
  s.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, PopBeforePushSuspends) {
  Scheduler s;
  Channel<std::string> ch(s);
  std::string got;
  Time when = 0;
  s.spawn([&]() -> CoTask<void> {
    got = co_await ch.pop();
    when = s.now();
  });
  s.spawn([&]() -> CoTask<void> {
    co_await s.delay(77);
    ch.push("hello");
  });
  s.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(when, 77u);
}

TEST(WaitGroup, JoinsAllChildren) {
  Scheduler s;
  WaitGroup wg(s);
  int done = 0;
  Time joined = 0;
  auto child = [&](Time dt) -> CoTask<void> {
    co_await s.delay(dt);
    ++done;
  };
  s.spawn([&]() -> CoTask<void> {
    wg.spawn(child(100));
    wg.spawn(child(300));
    wg.spawn(child(200));
    co_await wg.wait();
    joined = s.now();
  });
  s.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(joined, 300u);
}

TEST(WaitGroup, WaitWithNoChildrenIsImmediate) {
  Scheduler s;
  WaitGroup wg(s);
  bool reached = false;
  s.spawn([&]() -> CoTask<void> {
    co_await wg.wait();
    reached = true;
  });
  s.run();
  EXPECT_TRUE(reached);
}

TEST(WhenAll, CompletesAtSlowestTask) {
  Scheduler s;
  Time done_at = 0;
  auto sleeper = [&](Time dt) -> CoTask<void> { co_await s.delay(dt); };
  s.spawn([&]() -> CoTask<void> {
    std::vector<CoTask<void>> v;
    v.push_back(sleeper(10));
    v.push_back(sleeper(500));
    v.push_back(sleeper(100));
    co_await when_all(s, std::move(v));
    done_at = s.now();
  });
  s.run();
  EXPECT_EQ(done_at, 500u);
}

// ---------------------------------------------------------------------------
// SharedBandwidth (processor sharing)

TEST(SharedBandwidth, SingleFlowExactTime) {
  Scheduler s;
  SharedBandwidth bw(s, 1e9);  // 1 GB/s = 1 byte/ns
  Time done = 0;
  s.spawn([&]() -> CoTask<void> {
    co_await bw.transfer(1'000'000);
    done = s.now();
  });
  s.run();
  EXPECT_EQ(done, 1'000'000u);
}

TEST(SharedBandwidth, TwoEqualFlowsShareFairly) {
  Scheduler s;
  SharedBandwidth bw(s, 1e9);
  std::vector<Time> done;
  auto flow = [&]() -> CoTask<void> {
    co_await bw.transfer(1'000'000);
    done.push_back(s.now());
  };
  s.spawn(flow());
  s.spawn(flow());
  s.run();
  ASSERT_EQ(done.size(), 2u);
  // Both finish together at 2x the solo time.
  EXPECT_NEAR(double(done[0]), 2'000'000.0, 2.0);
  EXPECT_NEAR(double(done[1]), 2'000'000.0, 2.0);
}

TEST(SharedBandwidth, LateArrivalGetsRemainingShare) {
  Scheduler s;
  SharedBandwidth bw(s, 1e9);
  Time first = 0, second = 0;
  s.spawn([&]() -> CoTask<void> {
    co_await bw.transfer(1'000'000);
    first = s.now();
  });
  s.spawn([&]() -> CoTask<void> {
    co_await s.delay(500'000);  // arrives when flow 1 is half done
    co_await bw.transfer(1'000'000);
    second = s.now();
  });
  s.run();
  // Flow1: 500k solo + 500k shared (takes 1000k) -> done at 1.5e6.
  EXPECT_NEAR(double(first), 1'500'000.0, 5.0);
  // Flow2: 500k shared (takes 1000k) + 500k solo -> done at 2.0e6.
  EXPECT_NEAR(double(second), 2'000'000.0, 5.0);
}

TEST(SharedBandwidth, AggregateRateConserved) {
  Scheduler s;
  SharedBandwidth bw(s, 2e9);
  const int n = 7;
  const std::uint64_t bytes = 3'000'000;
  Time done = 0;
  auto flow = [&]() -> CoTask<void> {
    co_await bw.transfer(bytes);
    done = std::max(done, s.now());
  };
  for (int i = 0; i < n; ++i) s.spawn(flow());
  s.run();
  const double expect_ns = double(n) * double(bytes) / 2.0;  // 2 bytes/ns
  EXPECT_NEAR(double(done), expect_ns, expect_ns * 1e-6 + 10);
  EXPECT_EQ(bw.bytes_served(), std::uint64_t(n) * bytes);
}

TEST(SharedBandwidth, EfficiencyCurveDegradesThroughput) {
  Scheduler s;
  EfficiencyCurve eff{2, 1.0, 0.25};  // halves per doubling beyond 2 flows
  SharedBandwidth bw(s, 1e9, eff);
  Time done = 0;
  for (int i = 0; i < 4; ++i) {
    s.spawn([&]() -> CoTask<void> {
      co_await bw.transfer(1'000'000);
      done = s.now();
    });
  }
  s.run();
  // 4 flows, eff(4) = (2/4)^1 = 0.5 -> total rate 0.5 byte/ns.
  EXPECT_NEAR(double(done), 8'000'000.0, 20.0);
}

TEST(SharedBandwidth, BusyTimeTracksActivity) {
  Scheduler s;
  SharedBandwidth bw(s, 1e9);
  s.spawn([&]() -> CoTask<void> {
    co_await bw.transfer(1000);
    co_await s.delay(5000);  // idle gap
    co_await bw.transfer(1000);
  });
  s.run();
  EXPECT_NEAR(double(bw.busy_time()), 2000.0, 4.0);
}

TEST(SharedBandwidth, ZeroByteTransferIsFree) {
  Scheduler s;
  SharedBandwidth bw(s, 1e9);
  Time done = 1;
  s.spawn([&]() -> CoTask<void> {
    co_await bw.transfer(0);
    done = s.now();
  });
  s.run();
  EXPECT_EQ(done, 0u);
}

// Property: for any mix of flow sizes and arrival times, total service time
// conservation holds: sum(bytes) == bytes_served and the last completion is
// at least sum(bytes)/rate.
class BandwidthProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandwidthProperty, ConservationAndWorkBound) {
  Scheduler s;
  Xoshiro256 rng(GetParam());
  SharedBandwidth bw(s, 1e9);
  const int n = 20;
  std::uint64_t total = 0;
  Time last_done = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t bytes = 1000 + rng.uniform(500'000);
    const Time start = rng.uniform(1'000'000);
    total += bytes;
    s.spawn([&, bytes, start]() -> CoTask<void> {
      co_await s.delay(start);
      co_await bw.transfer(bytes);
      last_done = std::max(last_done, s.now());
    });
  }
  s.run();
  EXPECT_NEAR(double(bw.bytes_served()), double(total), 1.0);
  // Work conservation: cannot finish faster than total/rate.
  EXPECT_GE(double(last_done) + 2.0, double(total) / 1.0);
  // And cannot be slower than serial arrival-adjusted upper bound.
  EXPECT_LE(last_done, Time(2'000'000 + total));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthProperty, ::testing::Values(1, 2, 3, 7, 13, 42, 99));

// ---------------------------------------------------------------------------
// RNG and stats

TEST(Random, DeterministicFromSeed) {
  Xoshiro256 a(123), b(123), c(124);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    auto va = a(), vb = b(), vc = c();
    all_equal &= (va == vb);
    any_diff |= (va != vc);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Random, UniformBoundsRespected) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Random, UniformIsRoughlyUniform) {
  Xoshiro256 rng(11);
  std::map<std::uint64_t, int> counts;
  const int n = 100'000, buckets = 10;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform(buckets)];
  for (auto& [bucket, count] : counts) {
    EXPECT_NEAR(count, n / buckets, n / buckets * 0.1) << "bucket " << bucket;
  }
}

TEST(Random, ForkGivesIndependentStream) {
  Xoshiro256 rng(5);
  auto f1 = rng.fork(1);
  auto f2 = rng.fork(2);
  EXPECT_NE(f1(), f2());
}

TEST(Random, Uniform01InRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stats, SummaryMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
  EXPECT_EQ(s.count(), 5u);
}

TEST(Stats, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(double(i));
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 1e-9);
}

TEST(Stats, PercentileOfEmptyThrows) {
  Samples s;
  EXPECT_THROW(s.percentile(50), DaosimError);
}

}  // namespace
}  // namespace daosim::sim
