// Property tests for the evtree ArrayStore against a flat op-list oracle:
// randomized write / range-punch / full-punch / below-top-commit sequences
// must read byte-identically (data, fill mask, newer-than mask, size) at
// every sampled epoch, before and after aggregation points. Also pins the
// equal-epoch arrival-order rule (DTX below-top commits), the exactness of
// the AggResult accounting, and the probe-counter depth signal the
// endurance bench watches.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/random.hpp"
#include "vos/value_store.hpp"

namespace daosim::vos {
namespace {

// One recorded operation; arrival order is the vector order. A write's byte
// at position b reads as uint8_t(seed + (b - off)).
struct Op {
  std::uint64_t off = 0;
  std::uint64_t len = 0;
  Epoch epoch = 0;
  bool punch = false;
  std::uint8_t seed = 0;
};

// Flat-overlay oracle: replays the op list per query, no index. Visibility
// of byte b at epoch e = the op covering b with the maximum (epoch, arrival)
// among epochs <= e, holed below the newest full punch <= e.
struct FlatOracle {
  std::uint64_t space = 0;
  std::vector<Op> ops;
  std::vector<Epoch> fulls;  // ascending
  Epoch agg = 0;             // last aggregation point applied to the store

  Epoch floor_at(Epoch e) const {
    Epoch f = 0;
    for (Epoch p : fulls) {
      if (p <= e) f = p;
    }
    return f;
  }

  void read(Epoch e, std::vector<std::uint8_t>& img, std::vector<bool>& filled) const {
    img.assign(space, 0);
    filled.assign(space, false);
    const Epoch floor = floor_at(e);
    for (std::uint64_t b = 0; b < space; ++b) {
      int best = -1;
      for (int i = 0; i < int(ops.size()); ++i) {
        const Op& o = ops[i];
        if (o.epoch > e || b < o.off || b >= o.off + o.len) continue;
        if (best < 0 || o.epoch >= ops[best].epoch) best = i;  // ties: later arrival
      }
      if (best < 0 || ops[best].epoch <= floor || ops[best].punch) continue;
      img[b] = std::uint8_t(ops[best].seed + (b - ops[best].off));
      filled[b] = true;
    }
  }

  std::vector<bool> mask_newer(Epoch since) const {
    std::vector<bool> m(space, false);
    for (Epoch p : fulls) {
      if (p > since) {
        m.assign(space, true);
        return m;
      }
    }
    for (const Op& o : ops) {
      if (o.epoch <= since) continue;
      for (std::uint64_t b = o.off; b < o.off + o.len && b < space; ++b) m[b] = true;
    }
    return m;
  }

  std::uint64_t size(Epoch e) const {
    const Epoch floor = floor_at(e);
    std::uint64_t hi = 0;
    for (const Op& o : ops) {
      if (!o.punch && o.epoch > std::max(floor, agg) && o.epoch <= e) {
        hi = std::max(hi, o.off + o.len);
      }
    }
    if (agg > 0 && floor < agg) {
      // Aggregation materializes the image at the agg point (matching the
      // pre-evtree flat store): a write later shadowed by a range punch loses
      // its record, so below the agg point only the visible tail counts.
      std::vector<std::uint8_t> img;
      std::vector<bool> fill;
      read(agg, img, fill);
      for (std::uint64_t b = space; b > 0; --b) {
        if (fill[b - 1]) {
          hi = std::max(hi, b);
          break;
        }
      }
    }
    return hi;
  }
};

std::vector<std::byte> payload_of(const Op& o) {
  std::vector<std::byte> d(o.len);
  for (std::uint64_t i = 0; i < o.len; ++i) d[i] = std::byte(std::uint8_t(o.seed + i));
  return d;
}

void check_view(const ArrayStore& a, const FlatOracle& oracle, Epoch e, const char* where) {
  std::vector<std::uint8_t> want_img;
  std::vector<bool> want_fill;
  oracle.read(e, want_img, want_fill);
  std::vector<std::byte> out(oracle.space);
  std::vector<bool> got_fill;
  const std::uint64_t filled = a.read_masked(0, out, got_fill, e);
  std::uint64_t want_count = 0;
  for (std::uint64_t b = 0; b < oracle.space; ++b) {
    ASSERT_EQ(std::uint8_t(out[b]), want_img[b]) << where << " epoch " << e << " byte " << b;
    ASSERT_EQ(got_fill[b], want_fill[b]) << where << " epoch " << e << " fill bit " << b;
    want_count += want_fill[b];
  }
  ASSERT_EQ(filled, want_count) << where << " epoch " << e;
  ASSERT_EQ(a.size(e), oracle.size(e)) << where << " epoch " << e;
}

void check_mask(const ArrayStore& a, const FlatOracle& oracle, Epoch since, const char* where) {
  std::vector<bool> got(oracle.space, false);
  a.mask_newer_than(0, since, got);
  const std::vector<bool> want = oracle.mask_newer(since);
  for (std::uint64_t b = 0; b < oracle.space; ++b) {
    ASSERT_EQ(got[b], want[b]) << where << " since " << since << " bit " << b;
  }
}

class EvtreeOracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EvtreeOracleProperty, RandomOpsMatchFlatOracle) {
  sim::Xoshiro256 rng(GetParam() * 0x9E3779B97F4A7C15ULL + 7);
  const std::uint64_t space = 256;
  ArrayStore a;
  FlatOracle oracle{space, {}, {}};

  Epoch top = 0;       // newest epoch issued so far
  Epoch agg_floor = 0; // last aggregation point; below-top ops stay above it

  auto sample_epochs = [&](std::vector<Epoch>& es) {
    es.clear();
    for (Epoch e = top > 3 ? top - 3 : 1; e <= top; ++e) es.push_back(e);
    for (int i = 0; i < 8; ++i) {
      const Epoch e = agg_floor + 1 + rng.uniform(top > agg_floor ? top - agg_floor : 1);
      es.push_back(std::min<Epoch>(e, top));
    }
    es.push_back(kEpochMax);
  };

  std::vector<Epoch> epochs;
  for (int step = 1; step <= 100; ++step) {
    const int kind = int(rng.uniform(100));
    Epoch e;
    if (kind < 10 && top > agg_floor + 1) {
      // Below-top epoch (a DTX committing under already-applied writes);
      // may collide with an existing epoch, exercising arrival order.
      e = agg_floor + 1 + rng.uniform(top - agg_floor);
    } else {
      top += 1 + rng.uniform(3);
      e = top;
    }
    if (kind >= 90 && e == top) {
      a.punch_all(e);
      oracle.fulls.push_back(e);
    } else if (kind >= 70) {
      Op o{rng.uniform(space - 1), 0, e, true, 0};
      o.len = 1 + rng.uniform(std::min<std::uint64_t>(48, space - o.off));
      a.punch_range(o.off, o.len, o.epoch);
      oracle.ops.push_back(o);
    } else {
      Op o{rng.uniform(space - 1), 0, e, false, std::uint8_t(rng.uniform(256))};
      o.len = 1 + rng.uniform(std::min<std::uint64_t>(48, space - o.off));
      a.write(o.off, o.len, payload_of(o), o.epoch, PayloadMode::store);
      oracle.ops.push_back(o);
    }

    if (step == 40 || step == 80 || step == 100) {
      sample_epochs(epochs);
      for (Epoch q : epochs) check_view(a, oracle, q, "pre-agg");
      check_mask(a, oracle, agg_floor, "pre-agg");
      check_mask(a, oracle, top, "pre-agg");
      check_mask(a, oracle, agg_floor + (top - agg_floor) / 2, "pre-agg");

      // Aggregate to the midpoint; retired accounting must be exact.
      const Epoch upto = agg_floor + (top - agg_floor) / 2;
      if (upto > agg_floor) {
        const std::size_t before = a.extent_count();
        const ArrayStore::AggResult r = a.aggregate(upto, PayloadMode::store);
        ASSERT_EQ(before - a.extent_count(), r.extents_retired) << "step " << step;
        agg_floor = upto;
        oracle.agg = upto;
        // Every view at or above the aggregation point is preserved.
        sample_epochs(epochs);
        for (Epoch q : epochs) {
          if (q >= agg_floor) check_view(a, oracle, q, "post-agg");
        }
        check_mask(a, oracle, agg_floor, "post-agg");
        check_mask(a, oracle, top, "post-agg");
      }
    }
  }

  // Final full flatten: one version per segment, stored bytes collapse to
  // exactly the bytes visible at the top epoch, re-aggregation is a no-op.
  const std::size_t before = a.extent_count();
  const ArrayStore::AggResult r = a.aggregate(top, PayloadMode::store);
  oracle.agg = top;
  ASSERT_EQ(before - a.extent_count(), r.extents_retired);
  ASSERT_EQ(a.extent_count(), a.segment_count());
  std::vector<std::uint8_t> img;
  std::vector<bool> fill;
  oracle.read(top, img, fill);
  const std::uint64_t visible = std::uint64_t(std::count(fill.begin(), fill.end(), true));
  ASSERT_EQ(a.stored_bytes(), visible);
  check_view(a, oracle, top, "final");
  check_view(a, oracle, kEpochMax, "final");
  const ArrayStore::AggResult again = a.aggregate(top, PayloadMode::store);
  ASSERT_EQ(again.extents_retired, 0u);
  ASSERT_EQ(again.bytes_flattened, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvtreeOracleProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Discard mode: no payload retained, but fill masks, sizes, and newer-than
// masks stay oracle-exact and stored_bytes stays zero.
TEST(EvtreeDiscard, MasksAndSizesWithoutPayload) {
  sim::Xoshiro256 rng(0xD15CA4D);
  const std::uint64_t space = 128;
  ArrayStore a;
  FlatOracle oracle{space, {}, {}};
  Epoch top = 0;
  for (int step = 0; step < 60; ++step) {
    top += 1;
    const int kind = int(rng.uniform(10));
    if (kind >= 9) {
      a.punch_all(top);
      oracle.fulls.push_back(top);
    } else if (kind >= 7) {
      Op o{rng.uniform(space - 1), 0, top, true, 0};
      o.len = 1 + rng.uniform(std::min<std::uint64_t>(32, space - o.off));
      a.punch_range(o.off, o.len, o.epoch);
      oracle.ops.push_back(o);
    } else {
      Op o{rng.uniform(space - 1), 0, top, false, 0};
      o.len = 1 + rng.uniform(std::min<std::uint64_t>(32, space - o.off));
      a.write(o.off, o.len, {}, o.epoch, PayloadMode::discard);
      oracle.ops.push_back(o);
    }
  }
  EXPECT_EQ(a.stored_bytes(), 0u);
  for (Epoch e : std::vector<Epoch>{5, 20, 33, 47, top, kEpochMax}) {
    std::vector<std::uint8_t> img;
    std::vector<bool> want;
    oracle.read(e, img, want);
    std::vector<std::byte> out(space);
    std::vector<bool> got;
    a.read_masked(0, out, got, e);
    for (std::uint64_t b = 0; b < space; ++b) {
      ASSERT_EQ(got[b], want[b]) << "epoch " << e << " bit " << b;
      ASSERT_EQ(out[b], std::byte{0});  // discard mode: zeros, mask only
    }
    ASSERT_EQ(a.size(e), oracle.size(e)) << "epoch " << e;
  }
  const ArrayStore::AggResult r = a.aggregate(top / 2, PayloadMode::discard);
  oracle.agg = top / 2;
  EXPECT_EQ(r.bytes_flattened, 0u);  // nothing stored, nothing flattened
  EXPECT_EQ(a.stored_bytes(), 0u);
  check_mask(a, oracle, top / 2, "post-agg");
  for (Epoch e : std::vector<Epoch>{Epoch(top / 2), top, kEpochMax}) {
    ASSERT_EQ(a.size(e), oracle.size(e)) << "post-agg epoch " << e;
  }
}

// Equal epochs resolve by arrival order — the rule a DTX commit below the
// top relies on (insert_sorted keeps later arrivals after earlier ones).
TEST(EvtreeOrder, EqualEpochKeepsArrivalOrder) {
  ArrayStore a;
  std::vector<std::byte> first(8, std::byte{0x11});
  std::vector<std::byte> second(8, std::byte{0x22});
  a.write(0, 8, first, 5, PayloadMode::store);
  a.write(0, 8, second, 5, PayloadMode::store);  // same epoch, later arrival
  std::vector<std::byte> out(8);
  a.read(0, out, 5);
  EXPECT_EQ(out[0], std::byte{0x22});

  // A below-top commit at the same epoch as an existing version also lands
  // after it, not before.
  std::vector<std::byte> newer(8, std::byte{0x33});
  a.write(0, 8, newer, 9, PayloadMode::store);
  std::vector<std::byte> late(8, std::byte{0x44});
  a.write(0, 8, late, 5, PayloadMode::store);  // below-top, equal epoch
  a.read(0, out, 5);
  EXPECT_EQ(out[0], std::byte{0x44});  // latest arrival among epoch 5
  a.read(0, out, 9);
  EXPECT_EQ(out[0], std::byte{0x33});  // epoch 9 still wins above
}

// The probe counter is the endurance bench's depth signal: overwriting the
// same range for many epochs grows the per-read cost logarithmically, and
// aggregation collapses it back to the flat-read floor.
TEST(EvtreeProbes, AggregationRestoresFlatReadCost) {
  ArrayStore a;
  std::uint64_t probes = 0;
  a.bind_probe_counter(&probes);
  std::vector<std::byte> data(64, std::byte{0xAB});
  for (Epoch e = 1; e <= 64; ++e) a.write(0, 64, data, e, PayloadMode::store);

  std::vector<std::byte> out(64);
  probes = 0;
  a.read(0, out, kEpochMax);
  const std::uint64_t deep = probes;
  // 1 seek + 1 segment * (1 + ceil-log2 of a 64-deep stack).
  EXPECT_EQ(deep, 1 + 1 + 7u);

  a.aggregate(64, PayloadMode::store);
  EXPECT_EQ(a.extent_count(), 1u);
  probes = 0;
  a.read(0, out, kEpochMax);
  EXPECT_EQ(probes, 1 + 1 + 1u);  // flat floor: depth-1 stack
  EXPECT_LT(probes, deep);
  EXPECT_EQ(out[0], std::byte{0xAB});
}

}  // namespace
}  // namespace daosim::vos
