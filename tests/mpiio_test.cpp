// MPI-IO layer tests on MemVfs: collective open, independent vs two-phase
// collective I/O equivalence, interleaved shared-file patterns.
#include <gtest/gtest.h>

#include "co_assert.hpp"
#include "ior/ior.hpp"
#include "mpiio/mpiio.hpp"
#include "posix/vfs.hpp"

namespace daosim::mpiio {
namespace {

using sim::CoTask;

struct World {
  explicit World(int nodes, int ppn) : fabric(sched) {
    std::vector<net::NodeId> rank_nodes;
    for (int n = 0; n < nodes; ++n) {
      const auto id = fabric.add_node();
      for (int r = 0; r < ppn; ++r) rank_nodes.push_back(id);
    }
    world = std::make_unique<mpi::MpiWorld>(sched, fabric, rank_nodes);
  }
  sim::Scheduler sched;
  net::Fabric fabric;
  std::unique_ptr<mpi::MpiWorld> world;
  posix::MemVfs vfs;  // shared by all ranks (one "mount")
};

TEST(MpiIo, CollectiveOpenCreatesOnce) {
  World w(2, 2);
  CollectiveFile cf(*w.world);
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(mpi::Comm)> body = [&](mpi::Comm c) -> CoTask<void> {
      posix::VfsOpenFlags flags;
      flags.create = true;
      CO_ASSERT_ERRNO(co_await cf.open(c, w.vfs, "/shared", flags), Errno::ok);
      CO_ASSERT_ERRNO(co_await cf.close(c), Errno::ok);
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
  EXPECT_EQ(w.vfs.file_count(), 2u);  // "/" + the shared file
}

TEST(MpiIo, IndependentWriteReadRoundTrip) {
  World w(2, 2);
  CollectiveFile cf(*w.world);
  const std::uint64_t block = 64 * 1024;
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(mpi::Comm)> body = [&](mpi::Comm c) -> CoTask<void> {
      posix::VfsOpenFlags flags;
      flags.create = true;
      CO_ASSERT_ERRNO(co_await cf.open(c, w.vfs, "/f", flags), Errno::ok);
      const std::uint64_t off = std::uint64_t(c.rank()) * block;
      std::vector<std::byte> data(block);
      ior::fill_pattern(data, off, 1);
      auto wres = co_await cf.write_at(c, off, block, data);
      CO_ASSERT_OK(wres);
      co_await c.barrier();
      // Read the neighbour's block.
      const std::uint64_t roff = (std::uint64_t(c.rank() + 1) % 4) * block;
      std::vector<std::byte> out(block);
      auto rres = co_await cf.read_at(c, roff, out);
      CO_ASSERT_OK(rres);
      CO_ASSERT_EQ(ior::check_pattern(out, roff, 1), 0u);
      CO_ASSERT_ERRNO(co_await cf.close(c), Errno::ok);
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
}

TEST(MpiIo, CollectiveWriteMatchesIndependent) {
  // Same data written collectively reads back identically.
  World w(2, 2);
  CollectiveFile cf(*w.world);
  const std::uint64_t block = 32 * 1024;
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(mpi::Comm)> body = [&](mpi::Comm c) -> CoTask<void> {
      posix::VfsOpenFlags flags;
      flags.create = true;
      CO_ASSERT_ERRNO(co_await cf.open(c, w.vfs, "/coll", flags), Errno::ok);
      const std::uint64_t off = std::uint64_t(c.rank()) * block;
      std::vector<std::byte> data(block);
      ior::fill_pattern(data, off, 9);
      auto wres = co_await cf.write_at_all(c, off, block, data);
      CO_ASSERT_OK(wres);
      std::vector<std::byte> out(block);
      auto rres = co_await cf.read_at_all(c, off, out);
      CO_ASSERT_OK(rres);
      CO_ASSERT_EQ(ior::check_pattern(out, off, 9), 0u);
      CO_ASSERT_ERRNO(co_await cf.close(c), Errno::ok);
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
}

TEST(MpiIo, CollectiveInterleavedStrides) {
  // Fine-grained interleaving: rank r writes every 4th 1 KiB cell. The
  // two-phase aggregator must reassemble the full contiguous image.
  World w(2, 2);
  CollectiveFile cf(*w.world);
  const std::uint64_t cell = 1024;
  const int cells_per_rank = 16;
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(mpi::Comm)> body = [&](mpi::Comm c) -> CoTask<void> {
      posix::VfsOpenFlags flags;
      flags.create = true;
      CO_ASSERT_ERRNO(co_await cf.open(c, w.vfs, "/strided", flags), Errno::ok);
      for (int k = 0; k < cells_per_rank; ++k) {
        const std::uint64_t off = (std::uint64_t(k) * 4 + std::uint64_t(c.rank())) * cell;
        std::vector<std::byte> data(cell);
        ior::fill_pattern(data, off, 4);
        auto wres = co_await cf.write_at_all(c, off, cell, data);
        CO_ASSERT_OK(wres);
      }
      co_await c.barrier();
      // Rank 0 verifies the whole file image.
      if (c.rank() == 0) {
        std::vector<std::byte> out(cell * 4 * std::uint64_t(cells_per_rank));
        auto rres = co_await cf.read_at(c, 0, out);
        CO_ASSERT_OK(rres);
        CO_ASSERT_EQ(ior::check_pattern(out, 0, 4), 0u);
      }
      CO_ASSERT_ERRNO(co_await cf.close(c), Errno::ok);
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
}

TEST(MpiIo, SizeReflectsWrites) {
  World w(1, 2);
  CollectiveFile cf(*w.world);
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(mpi::Comm)> body = [&](mpi::Comm c) -> CoTask<void> {
      posix::VfsOpenFlags flags;
      flags.create = true;
      CO_ASSERT_ERRNO(co_await cf.open(c, w.vfs, "/sz", flags), Errno::ok);
      if (c.rank() == 1) {
        std::vector<std::byte> data(100, std::byte{1});
        auto wres = co_await cf.write_at(c, 900, 100, data);
        CO_ASSERT_OK(wres);
      }
      co_await c.barrier();
      auto sz = co_await cf.size(c);
      CO_ASSERT_OK(sz);
      CO_ASSERT_EQ(*sz, 1000u);
      CO_ASSERT_ERRNO(co_await cf.close(c), Errno::ok);
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
}

}  // namespace
}  // namespace daosim::mpiio
