// Background aggregation service tests: the per-engine loop flattens
// sustained overwrite history down to the visible image, strictly honors
// snapshot / prepared-DTX / crash-recovery floors, keeps same-seed runs
// bit-identical (and off-runs identical to a build without the service),
// and survives an engine crash mid-aggregation with byte-correct readback.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "cluster/testbed.hpp"
#include "common/units.hpp"

namespace daosim {
namespace {

using cluster::kPoolUuid;
using sim::CoTask;

constexpr std::uint64_t kObjSize = 512 * kKiB;
constexpr std::uint64_t kXfer = 16 * kKiB;
constexpr std::uint64_t kChunk = 64 * kKiB;

cluster::ClusterConfig small_cfg(bool agg_on) {
  cluster::ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 1;
  cfg.agg.enabled = agg_on;
  cfg.agg.tick = 100 * sim::kMs;
  cfg.agg.shards_per_run = 64;  // small testbed: every shard, every pass
  return cfg;
}

std::byte pat(std::uint32_t pass, std::uint64_t byte_off) {
  return std::byte(std::uint8_t(pass * 37 + byte_off % 251));
}

CoTask<void> write_pass(client::ArrayObject& arr, std::uint32_t pass) {
  std::vector<std::byte> buf(kXfer);
  for (std::uint64_t off = 0; off < kObjSize; off += kXfer) {
    for (std::uint64_t i = 0; i < kXfer; ++i) buf[i] = pat(pass, off + i);
    const Errno st = co_await arr.write(off, kXfer, buf);
    DAOSIM_REQUIRE(st == Errno::ok, "write: %s", errno_name(st));
  }
}

CoTask<void> verify_pass(client::ArrayObject& arr, std::uint32_t pass,
                         vos::Epoch epoch = vos::kEpochMax) {
  std::vector<std::byte> out(kXfer);
  for (std::uint64_t off = 0; off < kObjSize; off += kXfer) {
    auto got = co_await arr.read(off, out, epoch);
    DAOSIM_REQUIRE(got.ok() && *got == kXfer, "read at %llu",
                   static_cast<unsigned long long>(off));
    for (std::uint64_t i = 0; i < kXfer; i += 131) {
      DAOSIM_REQUIRE(out[i] == pat(pass, off + i), "mismatch pass %u off %llu i %llu", pass,
                     static_cast<unsigned long long>(off), static_cast<unsigned long long>(i));
    }
  }
}

std::uint64_t cluster_stored_bytes(cluster::Testbed& tb) {
  std::uint64_t total = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    for (std::uint32_t t = 0; t < tb.engine(e).target_count(); ++t) {
      total += tb.engine(e).vos_target(t).stored_bytes();
    }
  }
  return total;
}

std::uint64_t total_extents_retired(cluster::Testbed& tb) {
  std::uint64_t total = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    total += tb.agg_service(e).extents_retired();
  }
  return total;
}

std::string metric_dump(cluster::Testbed& tb) {
  std::ostringstream os;
  tb.dump_metrics(os);
  return os.str();
}

TEST(AggService, FlattensOverwriteHistoryToVisibleImage) {
  cluster::Testbed tb(small_cfg(/*agg_on=*/true));
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
    DAOSIM_REQUIRE(created.ok(), "cont_create");
    client::ArrayObject arr(tb.client(0), kPoolUuid,
                            client::make_oid(1, client::ObjClass::SX), kChunk);
    for (std::uint32_t pass = 0; pass < 6; ++pass) {
      co_await write_pass(arr, pass);
      co_await tb.sched().delay(300 * sim::kMs);
    }
    co_await tb.sched().delay(1 * sim::kSec);  // final settle
    co_await verify_pass(arr, 5);
  });
  std::uint64_t runs = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) runs += tb.agg_service(e).runs();
  EXPECT_GT(runs, 0u);
  EXPECT_GT(total_extents_retired(tb), 0u);
  // Six passes wrote 6x the object; flattening leaves exactly the visible
  // image (plus nothing else — coalescing collapses each chunk to one extent).
  EXPECT_GE(cluster_stored_bytes(tb), kObjSize);
  EXPECT_LE(cluster_stored_bytes(tb), kObjSize + 4 * kKiB);
  EXPECT_NE(metric_dump(tb).find("vos/agg/runs"), std::string::npos);
  tb.stop();
}

TEST(AggService, DisabledKeepsFullHistoryAndMetricTree) {
  cluster::Testbed tb(small_cfg(/*agg_on=*/false));
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
    DAOSIM_REQUIRE(created.ok(), "cont_create");
    client::ArrayObject arr(tb.client(0), kPoolUuid,
                            client::make_oid(1, client::ObjClass::SX), kChunk);
    for (std::uint32_t pass = 0; pass < 6; ++pass) {
      co_await write_pass(arr, pass);
      co_await tb.sched().delay(300 * sim::kMs);
    }
    co_await tb.sched().delay(1 * sim::kSec);
    co_await verify_pass(arr, 5);
  });
  // Every pass's versions are still held: multi-version history intact.
  EXPECT_GE(cluster_stored_bytes(tb), 6 * kObjSize);
  // The disabled service registers nothing in the metric tree.
  EXPECT_EQ(metric_dump(tb).find("vos/agg"), std::string::npos);
  tb.stop();
}

// One deterministic workload run, returning the trace hash after teardown.
std::uint64_t run_workload_hash(bool agg_on) {
  cluster::Testbed tb(small_cfg(agg_on));
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
    DAOSIM_REQUIRE(created.ok(), "cont_create");
    client::ArrayObject arr(tb.client(0), kPoolUuid,
                            client::make_oid(1, client::ObjClass::SX), kChunk);
    for (std::uint32_t pass = 0; pass < 4; ++pass) {
      co_await write_pass(arr, pass);
      co_await tb.sched().delay(300 * sim::kMs);
    }
    co_await verify_pass(arr, 3);
  });
  tb.stop();
  return tb.sched().trace_hash();
}

TEST(AggDeterminism, SameSeedBitIdenticalWithAggOn) {
  EXPECT_EQ(run_workload_hash(true), run_workload_hash(true));
}

TEST(AggDeterminism, SameSeedBitIdenticalWithAggOff) {
  EXPECT_EQ(run_workload_hash(false), run_workload_hash(false));
}

TEST(AggDeterminism, KnobPerturbsTrace) {
  // The service's RPCs, media charges, and trace notes all fold into the
  // hash: enabling aggregation must change it, so "off" provably runs the
  // exact pre-service event stream.
  EXPECT_NE(run_workload_hash(true), run_workload_hash(false));
}

TEST(AggFloors, SnapshotPinsHistoryUntilDestroyed) {
  cluster::Testbed tb(small_cfg(/*agg_on=*/true));
  tb.start();
  vos::Epoch snap = 0;
  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
    DAOSIM_REQUIRE(created.ok(), "cont_create");
    client::ArrayObject arr(tb.client(0), kPoolUuid,
                            client::make_oid(1, client::ObjClass::SX), kChunk);
    for (std::uint32_t pass = 0; pass < 3; ++pass) co_await write_pass(arr, pass);
    auto s = co_await tb.client(0).snapshot_create(kPoolUuid);
    DAOSIM_REQUIRE(s.ok(), "snapshot_create");
    snap = *s;
    for (std::uint32_t pass = 3; pass < 6; ++pass) {
      co_await write_pass(arr, pass);
      co_await tb.sched().delay(300 * sim::kMs);
    }
    co_await tb.sched().delay(1 * sim::kSec);
    // The snapshot cut still reads the pre-snapshot image byte-for-byte,
    // and the live view reads the newest pass.
    co_await verify_pass(arr, 2, snap);
    co_await verify_pass(arr, 5);
  });
  // Aggregation ran, but everything at or above the snapshot epoch was
  // pinned: the three post-snapshot passes are all still stored.
  EXPECT_GT(total_extents_retired(tb), 0u);
  EXPECT_GE(cluster_stored_bytes(tb), 3 * kObjSize);
  const std::uint64_t pinned = cluster_stored_bytes(tb);
  // Destroying the snapshot unpins the floor; the next passes flatten the
  // backlog down to the visible image.
  tb.run([&]() -> CoTask<void> {
    auto d = co_await tb.client(0).snapshot_destroy(kPoolUuid, snap);
    DAOSIM_REQUIRE(d.ok(), "snapshot_destroy");
    co_await tb.sched().delay(1 * sim::kSec);
  });
  EXPECT_LT(cluster_stored_bytes(tb), pinned);
  EXPECT_LE(cluster_stored_bytes(tb), kObjSize + 4 * kKiB);
  tb.stop();
}

TEST(AggFloors, PreparedDtxPinsFloorUntilCommit) {
  cluster::ClusterConfig cfg = small_cfg(/*agg_on=*/true);
  cfg.dtx.orphan_timeout = 3600 * sim::kSec;  // the reaper must not settle for us
  cluster::Testbed tb(cfg);
  tb.start();
  std::optional<client::ArrayObject> arr;
  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
    DAOSIM_REQUIRE(created.ok(), "cont_create");
    arr.emplace(tb.client(0), kPoolUuid, client::make_oid(1, client::ObjClass::SX), kChunk);
    for (std::uint32_t pass = 0; pass < 3; ++pass) co_await write_pass(*arr, pass);
  });

  // Stage an undecided transaction on every shard at an epoch just above
  // phase 1 (a dedicated key, so it conflicts with nothing). Its prepared
  // epoch is each shard's aggregation ceiling until the decision lands.
  vos::Epoch pin = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    for (std::uint32_t t = 0; t < tb.engine(e).target_count(); ++t) {
      const vos::VosContainer* c = tb.engine(e).vos_target(t).find_container(kPoolUuid);
      if (c != nullptr) pin = std::max(pin, c->current_epoch());
    }
  }
  pin += 1;
  std::uint64_t seq = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    for (std::uint32_t t = 0; t < tb.engine(e).target_count(); ++t) {
      vos::DtxEntry entry;
      entry.id = vos::DtxId{999, seq++};
      entry.epoch = pin;
      entry.leader = 0;
      vos::DtxOp op;
      op.oid = vos::ObjId{9999, 1};
      op.dkey = "pin";
      op.akey = "a";
      entry.ops.push_back(op);
      ASSERT_EQ(tb.engine(e).vos_target(t).container(kPoolUuid).dtx_prepare(std::move(entry)),
                Errno::ok);
    }
  }

  tb.run([&]() -> CoTask<void> {
    for (std::uint32_t pass = 3; pass < 6; ++pass) {
      co_await write_pass(*arr, pass);
      co_await tb.sched().delay(300 * sim::kMs);
    }
    co_await tb.sched().delay(1 * sim::kSec);
    co_await verify_pass(*arr, 5);
  });
  // Nothing above the prepared epoch may merge: the three post-prepare
  // passes are all still stored.
  EXPECT_GE(cluster_stored_bytes(tb), 3 * kObjSize);

  // Decide the transaction everywhere; the floors lift and the backlog
  // flattens to the visible image.
  seq = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    for (std::uint32_t t = 0; t < tb.engine(e).target_count(); ++t) {
      EXPECT_TRUE(tb.engine(e).vos_target(t).container(kPoolUuid).dtx_commit(
          vos::DtxId{999, seq++}));
    }
  }
  tb.run([&]() -> CoTask<void> {
    co_await tb.sched().delay(1 * sim::kSec);
    co_await verify_pass(*arr, 5);
  });
  EXPECT_LE(cluster_stored_bytes(tb), kObjSize + 4 * kKiB);
  tb.stop();
}

TEST(AggFault, CrashMidAggregationHealsByteCorrect) {
  cluster::ClusterConfig cfg = small_cfg(/*agg_on=*/true);
  cfg.agg.tick = 50 * sim::kMs;  // keep the service hot around the crash
  cluster::Testbed tb(cfg);
  tb.start();
  vos::Epoch snap = 0;
  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
    DAOSIM_REQUIRE(created.ok(), "cont_create");
    client::ArrayObject arr(tb.client(0), kPoolUuid,
                            client::make_oid(1, client::ObjClass::SX), kChunk);
    for (std::uint32_t pass = 0; pass < 2; ++pass) {
      co_await write_pass(arr, pass);
      co_await tb.sched().delay(120 * sim::kMs);
    }
    auto s = co_await tb.client(0).snapshot_create(kPoolUuid);
    DAOSIM_REQUIRE(s.ok(), "snapshot_create");
    snap = *s;
    // Crash the non-pool-service engine while its aggregation loop is live
    // (VOS survives, as on persistent media), let the cluster tick through
    // the outage, then heal and keep overwriting.
    tb.crash_engine(3);
    co_await tb.sched().delay(200 * sim::kMs);
    tb.restart_engine(3);
    for (std::uint32_t pass = 2; pass < 5; ++pass) {
      co_await write_pass(arr, pass);
      co_await tb.sched().delay(120 * sim::kMs);
    }
    co_await tb.sched().delay(1 * sim::kSec);
    // Byte-correct after heal: the snapshot cut still reads the
    // pre-crash image, the live view the newest pass.
    co_await verify_pass(arr, 1, snap);
    co_await verify_pass(arr, 4);
  });
  EXPECT_GT(total_extents_retired(tb), 0u);
  tb.stop();
}

}  // namespace
}  // namespace daosim
