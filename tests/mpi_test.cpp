// Simulated MPI runtime tests: barrier semantics, reductions, broadcast,
// point-to-point ordering, and node mapping.
#include <gtest/gtest.h>

#include "co_assert.hpp"
#include "mpi/mpi.hpp"

namespace daosim::mpi {
namespace {

using sim::CoTask;
using sim::Time;

struct World {
  explicit World(int nodes, int ppn) : fabric(sched) {
    std::vector<net::NodeId> rank_nodes;
    for (int n = 0; n < nodes; ++n) {
      const auto id = fabric.add_node();
      for (int r = 0; r < ppn; ++r) rank_nodes.push_back(id);
    }
    world = std::make_unique<MpiWorld>(sched, fabric, rank_nodes);
  }
  sim::Scheduler sched;
  net::Fabric fabric;
  std::unique_ptr<MpiWorld> world;
};

TEST(Mpi, BarrierSynchronisesRanks) {
  World w(2, 4);
  std::vector<double> after(8);
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(Comm)> body = [&](Comm c) -> CoTask<void> {
      // Stagger arrival; everyone must leave at (or after) the slowest.
      co_await w.sched.delay(sim::Time(c.rank()) * 100 * sim::kUs);
      co_await c.barrier();
      after[std::size_t(c.rank())] = c.wtime();
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
  const double slowest = 7 * 100e-6;
  for (double t : after) EXPECT_GE(t, slowest);
}

TEST(Mpi, AllreduceOps) {
  World w(2, 3);
  int checked = 0;
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(Comm)> body = [&](Comm c) -> CoTask<void> {
      const double v = double(c.rank() + 1);  // 1..6
      const double mx = co_await c.allreduce(v, ReduceOp::max);
      const double mn = co_await c.allreduce(v, ReduceOp::min);
      const double sm = co_await c.allreduce(v, ReduceOp::sum);
      CO_ASSERT_EQ(mx, 6.0);
      CO_ASSERT_EQ(mn, 1.0);
      CO_ASSERT_EQ(sm, 21.0);
      ++checked;
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
  EXPECT_EQ(checked, 6);
}

TEST(Mpi, AllreduceNonPowerOfTwo) {
  World w(1, 7);
  int checked = 0;
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(Comm)> body = [&](Comm c) -> CoTask<void> {
      const double sm = co_await c.allreduce(1.0, ReduceOp::sum);
      CO_ASSERT_EQ(sm, 7.0);
      ++checked;
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
  EXPECT_EQ(checked, 7);
}

TEST(Mpi, SendRecvDeliversValue) {
  World w(2, 1);
  double got = 0;
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(Comm)> body = [&](Comm c) -> CoTask<void> {
      if (c.rank() == 0) {
        co_await c.send(1, 1024, 42.5);
      } else {
        got = co_await c.recv(0);
      }
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
  EXPECT_EQ(got, 42.5);
}

TEST(Mpi, BcastFromNonzeroRoot) {
  World w(2, 2);
  int done = 0;
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(Comm)> body = [&](Comm c) -> CoTask<void> {
      co_await c.bcast_bytes(4096, /*root=*/2);
      ++done;
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
  EXPECT_EQ(done, 4);
}

TEST(Mpi, WtimeAdvancesWithVirtualClock) {
  World w(1, 2);
  double t0 = -1, t1 = -1;
  w.sched.spawn([&]() -> CoTask<void> {
    std::function<CoTask<void>(Comm)> body = [&](Comm c) -> CoTask<void> {
      if (c.rank() == 0) {
        t0 = c.wtime();
        co_await w.sched.delay(250 * sim::kMs);
        t1 = c.wtime();
      }
      co_return;
    };
    co_await w.world->run_spmd(std::move(body));
  });
  w.sched.run();
  EXPECT_NEAR(t1 - t0, 0.25, 1e-9);
}

TEST(Mpi, CollectivesCostScalesWithRanks) {
  // Barrier on 64 ranks takes longer than on 4 (log-tree over the fabric).
  auto measure = [](int nodes, int ppn) {
    World w(nodes, ppn);
    Time elapsed = 0;
    w.sched.spawn([&]() -> CoTask<void> {
      std::function<CoTask<void>(Comm)> body = [&](Comm c) -> CoTask<void> { co_await c.barrier(); };
      co_await w.world->run_spmd(std::move(body));
      elapsed = w.sched.now();
    });
    w.sched.run();
    return elapsed;
  };
  EXPECT_GT(measure(8, 8), measure(2, 2));
}

}  // namespace
}  // namespace daosim::mpi
