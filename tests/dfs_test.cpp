// DFS tests: namespace semantics (mkdir/create/rename/unlink/symlink),
// chunked file I/O, stat sizes, and a randomized namespace property test
// cross-checked against an in-memory oracle.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "co_assert.hpp"
#include "dfs/dfs.hpp"
#include "ior/ior.hpp"  // fill/check pattern helpers
#include "sim/random.hpp"

namespace daosim::dfs {
namespace {

using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 1;
  return cfg;
}

/// Fixture: testbed + created container + mounted DFS.
class DfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tb_ = std::make_unique<Testbed>(small_cluster());
    tb_->start();
    tb_->run([this]() -> CoTask<void> {
      pool::ContProps props;
      props.chunk_size = 4096;  // small chunks exercise splitting
      auto c = co_await tb_->client(0).cont_create(kPoolUuid, props);
      CO_ASSERT_OK(c);
      auto m = co_await DfsMount::mount(tb_->client(0), kPoolUuid);
      CO_ASSERT_OK(m);
      mount_ = std::move(*m);
    });
    ASSERT_NE(mount_, nullptr);
  }
  void TearDown() override {
    mount_.reset();
    tb_->stop();
  }

  template <typename F>
  void run(F&& f) { tb_->run(std::forward<F>(f)); }

  std::unique_ptr<Testbed> tb_;
  std::unique_ptr<DfsMount> mount_;
};

TEST_F(DfsTest, MkdirAndReaddir) {
  run([this]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/data"), Errno::ok);
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/data/sub"), Errno::ok);
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/data"), Errno::exists);
    auto names = co_await mount_->readdir("/");
    CO_ASSERT_OK(names);
    CO_ASSERT_EQ(names->size(), 1u);
    CO_ASSERT_EQ((*names)[0], "data");
    auto sub = co_await mount_->readdir("/data");
    CO_ASSERT_OK(sub);
    CO_ASSERT_EQ(sub->size(), 1u);
  });
}

TEST_F(DfsTest, CreateWriteReadRoundTrip) {
  run([this]() -> CoTask<void> {
    OpenFlags flags;
    flags.create = true;
    auto f = co_await mount_->open("/file.dat", flags);
    CO_ASSERT_OK(f);
    // Spans several 4 KiB chunks, unaligned start.
    std::vector<std::byte> data(20'000);
    ior::fill_pattern(data, 1234, 7);
    CO_ASSERT_ERRNO(co_await f->write(1234, data.size(), data), Errno::ok);
    std::vector<std::byte> out(data.size());
    auto n = co_await f->read(1234, out);
    CO_ASSERT_OK(n);
    CO_ASSERT_EQ(*n, data.size());
    CO_ASSERT_EQ(ior::check_pattern(out, 1234, 7), 0u);
    auto sz = co_await f->size();
    CO_ASSERT_OK(sz);
    CO_ASSERT_EQ(*sz, 1234u + 20'000u);
  });
}

TEST_F(DfsTest, OpenMissingFileFails) {
  run([this]() -> CoTask<void> {
    auto f = co_await mount_->open("/nope", OpenFlags{});
    CO_ASSERT_EQ(f.error(), Errno::no_entry);
    auto g = co_await mount_->open("/no/dir/file", OpenFlags{.create = true});
    CO_ASSERT_EQ(g.error(), Errno::no_entry);
  });
}

TEST_F(DfsTest, ExclusiveCreate) {
  run([this]() -> CoTask<void> {
    OpenFlags flags;
    flags.create = true;
    flags.excl = true;
    auto f = co_await mount_->open("/x", flags);
    CO_ASSERT_OK(f);
    auto g = co_await mount_->open("/x", flags);
    CO_ASSERT_EQ(g.error(), Errno::exists);
  });
}

TEST_F(DfsTest, TruncateOnOpen) {
  run([this]() -> CoTask<void> {
    OpenFlags flags;
    flags.create = true;
    auto f = co_await mount_->open("/t", flags);
    CO_ASSERT_OK(f);
    std::vector<std::byte> data(5000, std::byte{7});
    CO_ASSERT_ERRNO(co_await f->write(0, data.size(), data), Errno::ok);
    flags.truncate = true;
    auto g = co_await mount_->open("/t", flags);
    CO_ASSERT_OK(g);
    auto sz = co_await g->size();
    CO_ASSERT_OK(sz);
    CO_ASSERT_EQ(*sz, 0u);
  });
}

TEST_F(DfsTest, UnlinkRemovesFile) {
  run([this]() -> CoTask<void> {
    auto f = co_await mount_->open("/gone", OpenFlags{.create = true});
    CO_ASSERT_OK(f);
    CO_ASSERT_ERRNO(co_await mount_->unlink("/gone"), Errno::ok);
    auto st = co_await mount_->stat("/gone");
    CO_ASSERT_EQ(st.error(), Errno::no_entry);
    CO_ASSERT_ERRNO(co_await mount_->unlink("/gone"), Errno::no_entry);
  });
}

TEST_F(DfsTest, RmdirSemantics) {
  run([this]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/d"), Errno::ok);
    auto f = co_await mount_->open("/d/f", OpenFlags{.create = true});
    CO_ASSERT_OK(f);
    CO_ASSERT_ERRNO(co_await mount_->rmdir("/d"), Errno::not_empty);
    CO_ASSERT_ERRNO(co_await mount_->unlink("/d/f"), Errno::ok);
    CO_ASSERT_ERRNO(co_await mount_->rmdir("/d"), Errno::ok);
    CO_ASSERT_ERRNO(co_await mount_->rmdir("/d"), Errno::no_entry);
  });
}

TEST_F(DfsTest, RenameMovesEntry) {
  run([this]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/a"), Errno::ok);
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/b"), Errno::ok);
    auto f = co_await mount_->open("/a/f", OpenFlags{.create = true});
    CO_ASSERT_OK(f);
    std::vector<std::byte> data(100, std::byte{9});
    CO_ASSERT_ERRNO(co_await f->write(0, data.size(), data), Errno::ok);
    CO_ASSERT_ERRNO(co_await mount_->rename("/a/f", "/b/g"), Errno::ok);
    auto old_st = co_await mount_->stat("/a/f");
    CO_ASSERT_EQ(old_st.error(), Errno::no_entry);
    auto st = co_await mount_->stat("/b/g");
    CO_ASSERT_OK(st);
    CO_ASSERT_EQ(st->size, 100u);
  });
}

TEST_F(DfsTest, SymlinkRoundTrip) {
  run([this]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await mount_->symlink("/target/path", "/link"), Errno::ok);
    auto t = co_await mount_->readlink("/link");
    CO_ASSERT_OK(t);
    CO_ASSERT_EQ(*t, "/target/path");
    auto st = co_await mount_->stat("/link");
    CO_ASSERT_OK(st);
    CO_ASSERT_TRUE(st->type == FileType::symlink);
  });
}

TEST_F(DfsTest, PathValidation) {
  run([this]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await mount_->mkdir("relative/path"), Errno::invalid);
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/has/../dots"), Errno::invalid);
    auto f = co_await mount_->open("", OpenFlags{.create = true});
    CO_ASSERT_EQ(f.error(), Errno::invalid);
    const std::string longname(300, 'x');
    const std::string p = "/" + longname;
    CO_ASSERT_ERRNO(co_await mount_->mkdir(p), Errno::name_too_long);
  });
}

TEST_F(DfsTest, StatFileTypeAndDirs) {
  run([this]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/dir"), Errno::ok);
    auto st = co_await mount_->stat("/dir");
    CO_ASSERT_OK(st);
    CO_ASSERT_TRUE(st->type == FileType::directory);
    auto root = co_await mount_->stat("/");
    CO_ASSERT_OK(root);
    CO_ASSERT_TRUE(root->type == FileType::directory);
  });
}

TEST_F(DfsTest, PerFileObjectClassIsHonoured) {
  run([this]() -> CoTask<void> {
    OpenFlags flags;
    flags.create = true;
    flags.oclass = std::uint8_t(client::ObjClass::S1);
    auto f = co_await mount_->open("/s1file", flags);
    CO_ASSERT_OK(f);
    CO_ASSERT_EQ(client::class_of(f->oid()), client::ObjClass::S1);
    flags.oclass = std::uint8_t(client::ObjClass::SX);
    auto g = co_await mount_->open("/sxfile", flags);
    CO_ASSERT_OK(g);
    CO_ASSERT_EQ(client::class_of(g->oid()), client::ObjClass::SX);
  });
}

TEST_F(DfsTest, RemountSeesExistingNamespace) {
  run([this]() -> CoTask<void> {
    CO_ASSERT_ERRNO(co_await mount_->mkdir("/persist"), Errno::ok);
    auto f = co_await mount_->open("/persist/f", OpenFlags{.create = true});
    CO_ASSERT_OK(f);
    std::vector<std::byte> data(64, std::byte{3});
    CO_ASSERT_ERRNO(co_await f->write(0, data.size(), data), Errno::ok);
    // Second mount (same client) sees everything.
    auto m2 = co_await DfsMount::mount(tb_->client(0), kPoolUuid);
    CO_ASSERT_OK(m2);
    auto st = co_await (*m2)->stat("/persist/f");
    CO_ASSERT_OK(st);
    CO_ASSERT_EQ(st->size, 64u);
  });
}

// Randomized namespace property: a sequence of mkdir/create/unlink/rename
// operations matches an in-memory path-set oracle.
class DfsNamespaceProperty : public DfsTest,
                             public ::testing::WithParamInterface<std::uint64_t> {};

TEST_P(DfsNamespaceProperty, MatchesOracle) {
  run([this]() -> CoTask<void> {
    sim::Xoshiro256 rng(GetParam() * 17);
    std::set<std::string> dirs{"/"};
    std::set<std::string> files;
    std::vector<std::string> pool{"alpha", "beta", "gamma", "delta", "eps"};

    auto random_dir = [&]() {
      auto it = dirs.begin();
      std::advance(it, std::ptrdiff_t(rng.uniform(dirs.size())));
      return *it;
    };
    auto join = [](const std::string& d, const std::string& n) {
      return d == "/" ? "/" + n : d + "/" + n;
    };

    for (int step = 0; step < 120; ++step) {
      const auto op = rng.uniform(4);
      const std::string parent = random_dir();
      const std::string name = pool[rng.uniform(pool.size())] + strfmt("%llu",
                               static_cast<unsigned long long>(rng.uniform(4)));
      const std::string path = join(parent, name);
      const bool exists = dirs.contains(path) || files.contains(path);
      if (op == 0) {  // mkdir
        const Errno rc = co_await mount_->mkdir(path);
        CO_ASSERT_ERRNO(rc, exists ? Errno::exists : Errno::ok);
        if (!exists) dirs.insert(path);
      } else if (op == 1) {  // create (excl)
        OpenFlags flags;
        flags.create = true;
        flags.excl = true;
        auto f = co_await mount_->open(path, flags);
        if (exists) {
          CO_ASSERT_TRUE(!f.ok());
        } else {
          CO_ASSERT_OK(f);
          files.insert(path);
        }
      } else if (op == 2) {  // unlink
        const Errno rc = co_await mount_->unlink(path);
        if (files.contains(path)) {
          CO_ASSERT_ERRNO(rc, Errno::ok);
          files.erase(path);
        } else if (dirs.contains(path)) {
          CO_ASSERT_ERRNO(rc, Errno::is_dir);
        } else {
          CO_ASSERT_ERRNO(rc, Errno::no_entry);
        }
      } else {  // rename a random file
        if (files.empty()) continue;
        auto it = files.begin();
        std::advance(it, std::ptrdiff_t(rng.uniform(files.size())));
        const std::string src = *it;
        const std::string dst = join(random_dir(), "renamed" + strfmt("%d", step));
        if (dirs.contains(dst)) continue;
        const Errno rc = co_await mount_->rename(src, dst);
        CO_ASSERT_ERRNO(rc, Errno::ok);
        files.erase(src);
        files.insert(dst);
      }
    }
    // Final check: every tracked path stats correctly; readdir of every dir
    // agrees with the oracle's children.
    for (const auto& f : files) {
      auto st = co_await mount_->stat(f);
      CO_ASSERT_OK(st);
      CO_ASSERT_TRUE(st->type == FileType::regular);
    }
    for (const auto& d : dirs) {
      auto names = co_await mount_->readdir(d);
      CO_ASSERT_OK(names);
      std::set<std::string> expect;
      for (const auto& p : dirs) {
        if (p != "/" && p.substr(0, p.find_last_of('/') + 1) ==
                            (d == "/" ? d : d + "/") &&
            p.find('/', d.size() + (d == "/" ? 0 : 1)) == std::string::npos) {
          expect.insert(p.substr(p.find_last_of('/') + 1));
        }
      }
      for (const auto& p : files) {
        const std::string dir_part = p.substr(0, p.find_last_of('/'));
        if ((dir_part.empty() ? "/" : dir_part) == d) {
          expect.insert(p.substr(p.find_last_of('/') + 1));
        }
      }
      std::set<std::string> got(names->begin(), names->end());
      CO_ASSERT_TRUE(got == expect);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsNamespaceProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace daosim::dfs
