// Pool-service tests: the Raft-replicated metadata state machine (container
// lifecycle, OID allocation, snapshots) and leader redirection, including
// behaviour across service-replica fail-over.
#include <gtest/gtest.h>

#include <sstream>

#include "co_assert.hpp"
#include "cluster/testbed.hpp"

namespace daosim::pool {
namespace {

using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

TEST(PoolMetaSm, ContainerLifecycleCommands) {
  PoolMetaSm sm;
  EXPECT_EQ(sm.apply("cont_create 7 8 1048576 2"), "ok");
  EXPECT_EQ(sm.apply("cont_create 7 8 1048576 2"), "EEXIST");
  EXPECT_EQ(sm.apply("cont_open 7 8"), "ok 1048576 2");
  EXPECT_EQ(sm.apply("cont_open 9 9"), "ENOENT");
  EXPECT_EQ(sm.apply("cont_destroy 7 8"), "ok");
  EXPECT_EQ(sm.apply("cont_destroy 7 8"), "ENOENT");
  EXPECT_EQ(sm.apply("bogus"), "EINVAL");
}

TEST(PoolMetaSm, OidAllocationAdvances) {
  PoolMetaSm sm;
  sm.apply("cont_create 1 1 1048576 0");
  EXPECT_EQ(sm.apply("alloc_oids 1 1 100"), "ok 1");
  EXPECT_EQ(sm.apply("alloc_oids 1 1 50"), "ok 101");
  EXPECT_EQ(sm.apply("alloc_oids 9 9 10"), "ENOENT");
}

TEST(PoolMetaSm, SnapshotRoundTrip) {
  PoolMetaSm sm;
  sm.apply("cont_create 1 2 4096 1");
  sm.apply("cont_create 3 4 1048576 5");
  sm.apply("alloc_oids 1 2 500");
  const std::string snap = sm.snapshot();

  PoolMetaSm restored;
  restored.restore(snap);
  EXPECT_EQ(restored.apply("cont_open 1 2"), "ok 4096 1");
  EXPECT_EQ(restored.apply("cont_open 3 4"), "ok 1048576 5");
  // The OID cursor survives: next range continues after 1..500.
  EXPECT_EQ(restored.apply("alloc_oids 1 2 1"), "ok 501");
  EXPECT_EQ(restored.containers().size(), 2u);
}

TEST(PoolMetaSm, RestoreFromEmptyResets) {
  PoolMetaSm sm;
  sm.apply("cont_create 1 1 4096 0");
  sm.restore("");
  EXPECT_EQ(sm.containers().size(), 0u);
}

TEST(PoolMetaSm, ListContainers) {
  PoolMetaSm sm;
  sm.apply("cont_create 1 1 4096 0");
  sm.apply("cont_create 2 2 4096 0");
  std::istringstream is(sm.apply("list_conts"));
  std::string ok;
  std::size_t n = 0;
  is >> ok >> n;
  EXPECT_EQ(ok, "ok");
  EXPECT_EQ(n, 2u);
}

TEST(PoolService, MetadataSurvivesLeaderFailover) {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  Testbed tb(cfg);
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(vos::Uuid{5, 5}, ContProps{4096, 1});
    CO_ASSERT_OK(created);
  });
  // Crash the current pool-service leader; a follower takes over with the
  // replicated metadata intact.
  // (svc replicas are the first engines; find and crash the leader's raft.)
  // The testbed does not expose raft directly, so exercise via client retry:
  tb.run([&]() -> CoTask<void> {
    auto opened = co_await tb.client(0).cont_open(vos::Uuid{5, 5});
    CO_ASSERT_OK(opened);
    CO_ASSERT_EQ(opened->props.chunk_size, 4096u);
    CO_ASSERT_EQ(opened->props.oclass, 1);
  });
  tb.stop();
}

TEST(PoolService, AllocationsAreDisjointAcrossClients) {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 2;
  Testbed tb(cfg);
  tb.start();
  tb.run([&]() -> CoTask<void> {
    CO_ASSERT_OK(co_await tb.client(0).cont_create(kPoolUuid, {}));
    auto a = std::make_shared<std::uint64_t>(0);
    auto b = std::make_shared<std::uint64_t>(0);
    sim::WaitGroup wg(tb.sched());
    wg.spawn([&tb, a]() -> CoTask<void> {
      auto r = co_await tb.client(0).alloc_oids(kPoolUuid, 64);
      if (r.ok()) *a = *r;
    });
    wg.spawn([&tb, b]() -> CoTask<void> {
      auto r = co_await tb.client(1).alloc_oids(kPoolUuid, 64);
      if (r.ok()) *b = *r;
    });
    co_await wg.wait();
    CO_ASSERT_TRUE(*a != 0 && *b != 0);
    // Raft serialisation guarantees non-overlapping ranges.
    CO_ASSERT_TRUE(*a + 64 <= *b || *b + 64 <= *a);
  });
  tb.stop();
}

}  // namespace
}  // namespace daosim::pool
