// H5Lite tests on MemVfs: format round-trips (real parse of written bytes),
// dataset I/O, attributes, metadata-cache flush accounting, and the
// conversion-buffer request-splitting behaviour the benchmarks rely on.
#include <gtest/gtest.h>

#include "co_assert.hpp"
#include "h5/h5lite.hpp"
#include "ior/ior.hpp"
#include "posix/vfs.hpp"

namespace daosim::h5 {
namespace {

using sim::CoTask;

struct Env {
  sim::Scheduler sched;
  posix::MemVfs vfs;
  template <typename F>
  void run(F f) {
    sched.spawn(std::move(f));
    sched.run();
  }
};

TEST(H5Lite, CreateWriteReadRoundTrip) {
  Env env;
  env.run([&]() -> CoTask<void> {
    auto shadow = std::make_shared<H5Meta>();
    auto f = co_await H5File::create(env.vfs, "/data.h5", shadow);
    CO_ASSERT_OK(f);
    auto d = co_await (*f)->create_dataset("temperature", 64 * 1024);
    CO_ASSERT_OK(d);
    std::vector<std::byte> data(10'000);
    ior::fill_pattern(data, 0, 5);
    CO_ASSERT_ERRNO(co_await d->write(0, data.size(), data), Errno::ok);
    std::vector<std::byte> out(data.size());
    auto n = co_await d->read(0, out);
    CO_ASSERT_OK(n);
    CO_ASSERT_EQ(ior::check_pattern(out, 0, 5), 0u);
    CO_ASSERT_ERRNO(co_await (*f)->close(), Errno::ok);
  });
}

TEST(H5Lite, ReopenParsesRealMetadata) {
  Env env;
  env.run([&]() -> CoTask<void> {
    {
      auto shadow = std::make_shared<H5Meta>();
      auto f = co_await H5File::create(env.vfs, "/p.h5", shadow);
      CO_ASSERT_OK(f);
      auto d = co_await (*f)->create_dataset("x", 4096);
      CO_ASSERT_OK(d);
      std::vector<std::byte> data(4096);
      ior::fill_pattern(data, 0, 11);
      CO_ASSERT_ERRNO(co_await d->write(0, data.size(), data), Errno::ok);
      CO_ASSERT_ERRNO(co_await (*f)->close(), Errno::ok);
    }
    // Fresh shadow: open() must parse the symbol table from the file bytes.
    auto shadow2 = std::make_shared<H5Meta>();
    auto f2 = co_await H5File::open(env.vfs, "/p.h5", shadow2);
    CO_ASSERT_OK(f2);
    auto d2 = co_await (*f2)->open_dataset("x");
    CO_ASSERT_OK(d2);
    CO_ASSERT_EQ(d2->size(), 4096u);
    std::vector<std::byte> out(4096);
    auto n = co_await d2->read(0, out);
    CO_ASSERT_OK(n);
    CO_ASSERT_EQ(ior::check_pattern(out, 0, 11), 0u);
    CO_ASSERT_ERRNO(co_await (*f2)->close(), Errno::ok);
  });
}

TEST(H5Lite, OpenNonH5FileFails) {
  Env env;
  env.run([&]() -> CoTask<void> {
    posix::VfsOpenFlags flags;
    flags.create = true;
    auto fd = co_await env.vfs.open("/junk", flags);
    CO_ASSERT_OK(fd);
    std::vector<std::byte> noise(4096, std::byte{0x42});
    (void)co_await env.vfs.pwrite(*fd, 0, noise.size(), noise);
    (void)co_await env.vfs.close(*fd);
    auto shadow = std::make_shared<H5Meta>();
    auto f = co_await H5File::open(env.vfs, "/junk", shadow);
    CO_ASSERT_EQ(f.error(), Errno::invalid);
  });
}

TEST(H5Lite, MultipleDatasetsAndAttributes) {
  Env env;
  env.run([&]() -> CoTask<void> {
    auto shadow = std::make_shared<H5Meta>();
    auto f = co_await H5File::create(env.vfs, "/multi.h5", shadow);
    CO_ASSERT_OK(f);
    for (int i = 0; i < 10; ++i) {
      const std::string name = strfmt("dset%02d", i);
      auto d = co_await (*f)->create_dataset(name, 1024 * std::uint64_t(i + 1));
      CO_ASSERT_OK(d);
    }
    auto dup = co_await (*f)->create_dataset("dset03", 1);
    CO_ASSERT_EQ(dup.error(), Errno::exists);
    CO_ASSERT_ERRNO(co_await (*f)->write_attribute("units", 16), Errno::ok);
    CO_ASSERT_ERRNO(co_await (*f)->close(), Errno::ok);
    // Reopen and check everything is there.
    auto shadow2 = std::make_shared<H5Meta>();
    auto f2 = co_await H5File::open(env.vfs, "/multi.h5", shadow2);
    CO_ASSERT_OK(f2);
    CO_ASSERT_EQ(shadow2->datasets.size(), 10u);
    CO_ASSERT_EQ(shadow2->attributes.size(), 1u);
    auto d7 = co_await (*f2)->open_dataset("dset07");
    CO_ASSERT_OK(d7);
    CO_ASSERT_EQ(d7->size(), 8u * 1024u);
    CO_ASSERT_ERRNO(co_await (*f2)->close(), Errno::ok);
  });
}

TEST(H5Lite, WriteBeyondDataspaceRejected) {
  Env env;
  env.run([&]() -> CoTask<void> {
    auto shadow = std::make_shared<H5Meta>();
    auto f = co_await H5File::create(env.vfs, "/b.h5", shadow);
    CO_ASSERT_OK(f);
    auto d = co_await (*f)->create_dataset("x", 1000);
    CO_ASSERT_OK(d);
    CO_ASSERT_ERRNO(co_await d->write(900, 200, {}), Errno::invalid);
    CO_ASSERT_ERRNO(co_await (*f)->close(), Errno::ok);
  });
}

TEST(H5Lite, ConversionBufferSplitsRawIo) {
  Env env;
  env.run([&]() -> CoTask<void> {
    auto shadow = std::make_shared<H5Meta>();
    H5Config cfg;
    cfg.conversion_buffer = 64 * 1024;
    auto f = co_await H5File::create(env.vfs, "/split.h5", shadow, cfg);
    CO_ASSERT_OK(f);
    auto d = co_await (*f)->create_dataset("x", 1 * kMiB);
    CO_ASSERT_OK(d);
    const std::uint64_t before = (*f)->raw_ops();
    CO_ASSERT_ERRNO(co_await d->write(0, 1 * kMiB, {}), Errno::ok);
    // One logical write; file-format level issues 16 serial 64 KiB pieces.
    CO_ASSERT_EQ((*f)->raw_ops() - before, 1u);
    CO_ASSERT_ERRNO(co_await (*f)->close(), Errno::ok);
  });
}

TEST(H5Lite, MetadataCacheFlushesPeriodically) {
  Env env;
  env.run([&]() -> CoTask<void> {
    auto shadow = std::make_shared<H5Meta>();
    H5Config cfg;
    cfg.mdc_flush_every = 4;
    auto f = co_await H5File::create(env.vfs, "/mdc.h5", shadow, cfg);
    CO_ASSERT_OK(f);
    auto d = co_await (*f)->create_dataset("x", 1 * kMiB);
    CO_ASSERT_OK(d);
    const std::uint64_t before = (*f)->metadata_writes();
    for (int i = 0; i < 16; ++i) {
      CO_ASSERT_ERRNO(co_await d->write(std::uint64_t(i) * 1024, 1024, {}), Errno::ok);
    }
    // 16 raw ops / flush_every 4 = 4 header evictions.
    CO_ASSERT_EQ((*f)->metadata_writes() - before, 4u);
    CO_ASSERT_ERRNO(co_await (*f)->close(), Errno::ok);
  });
}

TEST(H5Lite, SharedShadowAllowsZeroedPayloadOpen) {
  Env env;
  env.run([&]() -> CoTask<void> {
    // Simulate discard-mode: file exists but reads back zeros. A shared
    // shadow lets a second opener proceed (the cross-rank shared-file case).
    auto shadow = std::make_shared<H5Meta>();
    auto f = co_await H5File::create(env.vfs, "/shadow.h5", shadow);
    CO_ASSERT_OK(f);
    auto d = co_await (*f)->create_dataset("x", 2048);
    CO_ASSERT_OK(d);
    CO_ASSERT_ERRNO(co_await (*f)->close(), Errno::ok);
    // Wipe the metadata bytes to zeros, as a discard-mode store would return.
    posix::VfsOpenFlags wf;
    auto fd = co_await env.vfs.open("/shadow.h5", wf);
    CO_ASSERT_OK(fd);
    std::vector<std::byte> zeros(4096, std::byte{0});
    (void)co_await env.vfs.pwrite(*fd, 0, zeros.size(), zeros);
    (void)co_await env.vfs.close(*fd);
    auto f2 = co_await H5File::open(env.vfs, "/shadow.h5", shadow);
    CO_ASSERT_OK(f2);  // proceeds via the shared shadow
    auto d2 = co_await (*f2)->open_dataset("x");
    CO_ASSERT_OK(d2);
    CO_ASSERT_ERRNO(co_await (*f2)->close(), Errno::ok);
  });
}

TEST(H5Lite, DirectLargeIoBypassesBuffer) {
  Env env;
  env.run([&]() -> CoTask<void> {
    auto shadow = std::make_shared<H5Meta>();
    H5Config cfg;
    cfg.direct_large_io = true;
    auto f = co_await H5File::create(env.vfs, "/direct.h5", shadow, cfg);
    CO_ASSERT_OK(f);
    auto d = co_await (*f)->create_dataset("x", 4 * kMiB);
    CO_ASSERT_OK(d);
    std::vector<std::byte> data(2 * kMiB);
    ior::fill_pattern(data, 0, 2);
    CO_ASSERT_ERRNO(co_await d->write(0, data.size(), data), Errno::ok);
    std::vector<std::byte> out(data.size());
    auto n = co_await d->read(0, out);
    CO_ASSERT_OK(n);
    CO_ASSERT_EQ(ior::check_pattern(out, 0, 2), 0u);
    CO_ASSERT_ERRNO(co_await (*f)->close(), Errno::ok);
  });
}

}  // namespace
}  // namespace daosim::h5
