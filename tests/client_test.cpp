// Tests for object classes, algorithmic placement, and the end-to-end
// client -> engine -> VOS data path on a small simulated cluster.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "cluster/testbed.hpp"

// gtest's ASSERT_* macros use `return`, which is illegal inside a coroutine:
// these CO_ variants record the failure and co_return instead.
#define CO_ASSERT_TRUE(cond)             \
  do {                                   \
    if (!(cond)) {                       \
      ADD_FAILURE() << "CO_ASSERT_TRUE(" #cond ")"; \
      co_return;                         \
    }                                    \
  } while (0)

#define CO_ASSERT_EQ(a, b)               \
  do {                                   \
    if (!((a) == (b))) {                 \
      ADD_FAILURE() << "CO_ASSERT_EQ(" #a ", " #b ")"; \
      co_return;                         \
    }                                    \
  } while (0)

namespace daosim::client {
namespace {

using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

std::vector<std::byte> bytes(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}
std::string str(std::span<const std::byte> s) {
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 1;
  return cfg;
}

// ---------------------------------------------------------------------------
// Object classes & placement (pure functions)

TEST(ObjClass, ShardCounts) {
  EXPECT_EQ(shard_count(ObjClass::S1, 128), 1u);
  EXPECT_EQ(shard_count(ObjClass::S2, 128), 2u);
  EXPECT_EQ(shard_count(ObjClass::S4, 128), 4u);
  EXPECT_EQ(shard_count(ObjClass::S8, 128), 8u);
  EXPECT_EQ(shard_count(ObjClass::SX, 128), 128u);
  EXPECT_EQ(shard_count(ObjClass::SX, 16), 16u);
  EXPECT_EQ(shard_count(ObjClass::S8, 4), 4u);  // clamped to pool size
}

TEST(ObjClass, OidRoundTrip) {
  const auto oid = make_oid(12345, ObjClass::S2);
  EXPECT_EQ(class_of(oid), ObjClass::S2);
  EXPECT_EQ(oid.lo, 12345u);
  EXPECT_THROW(class_of(vos::ObjId{0, 1}), DaosimError);
}

TEST(Placement, DeterministicLayout) {
  const auto oid = make_oid(7, ObjClass::S4);
  const auto l1 = compute_layout(oid, 4, 64);
  const auto l2 = compute_layout(oid, 4, 64);
  EXPECT_EQ(l1, l2);
  EXPECT_EQ(l1.size(), 4u);
}

TEST(Placement, MultiShardLayoutIsCollisionFree) {
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const auto layout = compute_layout(make_oid(seq, ObjClass::SX), 128, 128);
    std::set<std::uint32_t> distinct(layout.begin(), layout.end());
    ASSERT_EQ(distinct.size(), layout.size()) << "oid seq " << seq;
  }
}

TEST(Placement, SingleShardObjectsSpreadAcrossTargets) {
  // Balls-into-bins: 4096 S1 objects over 128 targets. Expect every target
  // used and a max load far below a pathological pile-up.
  std::map<std::uint32_t, int> load;
  const std::uint32_t n = 128;
  for (std::uint64_t seq = 0; seq < 4096; ++seq) {
    load[compute_layout(make_oid(seq, ObjClass::S1), 1, n)[0]]++;
  }
  EXPECT_EQ(load.size(), n);
  int max_load = 0;
  for (auto& [t, c] : load) max_load = std::max(max_load, c);
  EXPECT_LT(max_load, 70);  // mean is 32
  EXPECT_GT(max_load, 32);  // but it is not perfectly uniform (hash-based)
}

TEST(Placement, JumpHashIsStableUnderGrowth) {
  // Jump consistent hash: growing the pool only moves keys to new targets.
  for (std::uint64_t k = 0; k < 500; ++k) {
    const auto h = mix64(k);
    const auto b1 = jump_consistent_hash(h, 100);
    const auto b2 = jump_consistent_hash(h, 101);
    if (b2 != b1) { EXPECT_EQ(b2, 100u) << k; }
  }
}

TEST(Placement, DkeyShardBalance) {
  std::map<std::uint32_t, int> counts;
  for (std::uint64_t c = 0; c < 8000; ++c) counts[dkey_to_shard(c, 8)]++;
  for (auto& [s, n] : counts) EXPECT_NEAR(n, 1000, 220) << "shard " << s;
}

// ---------------------------------------------------------------------------
// End-to-end through the testbed

TEST(Cluster, StartsAndElectsPoolServiceLeader) {
  Testbed tb(small_cluster());
  tb.start();
  int leaders = 0;
  for (std::uint32_t i = 0; i < tb.engine_count(); ++i) leaders += 0;  // silence unused
  (void)leaders;
  EXPECT_EQ(tb.pool_map().target_count(), 16u);
  tb.stop();
}

TEST(Cluster, ContainerLifecycle) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    auto created = co_await cl.cont_create(vos::Uuid{9, 9}, pool::ContProps{1 << 20, 2});
    EXPECT_TRUE(created.ok());
    auto dup = co_await cl.cont_create(vos::Uuid{9, 9}, {});
    EXPECT_EQ(dup.error(), Errno::exists);
    auto opened = co_await cl.cont_open(vos::Uuid{9, 9});
    CO_ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened->props.chunk_size, std::uint64_t{1} << 20);
    EXPECT_EQ(opened->props.oclass, 2);
    auto missing = co_await cl.cont_open(vos::Uuid{1, 2});
    EXPECT_EQ(missing.error(), Errno::no_entry);
    auto destroyed = co_await cl.cont_destroy(vos::Uuid{9, 9});
    EXPECT_TRUE(destroyed.ok());
  });
  tb.stop();
}

TEST(Cluster, OidAllocationIsDisjoint) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    auto a = co_await cl.alloc_oids(kPoolUuid, 100);
    auto b = co_await cl.alloc_oids(kPoolUuid, 100);
    CO_ASSERT_TRUE(a.ok());
    CO_ASSERT_TRUE(b.ok());
    EXPECT_GE(*b, *a + 100);
  });
  tb.stop();
}

TEST(Cluster, KvPutGetRoundTrip) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    KvObject kv(cl, kPoolUuid, make_oid(1, ObjClass::S1));
    auto v = bytes("hello-daos");
    EXPECT_EQ(co_await kv.put("dir", "entry", v), Errno::ok);
    auto got = co_await kv.get("dir", "entry");
    CO_ASSERT_TRUE(got.ok());
    EXPECT_EQ(str(*got), "hello-daos");
    auto missing = co_await kv.get("dir", "nope");
    EXPECT_EQ(missing.error(), Errno::no_entry);
  });
  tb.stop();
}

TEST(Cluster, KvEnumerationAcrossShards) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    KvObject kv(cl, kPoolUuid, make_oid(2, ObjClass::S8));  // multi-shard dir
    auto v = bytes("x");
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(co_await kv.put(strfmt("entry-%02d", i), "e", v), Errno::ok);
    }
    auto keys = co_await kv.list_dkeys();
    CO_ASSERT_TRUE(keys.ok());
    CO_ASSERT_EQ(keys->size(), 20u);
    EXPECT_EQ(keys->front(), "entry-00");  // merged sorted
    EXPECT_EQ(keys->back(), "entry-19");
    // Punch one dkey: disappears from enumeration.
    EXPECT_EQ(co_await kv.punch_dkey("entry-07"), Errno::ok);
    keys = co_await kv.list_dkeys();
    CO_ASSERT_TRUE(keys.ok());
    EXPECT_EQ(keys->size(), 19u);
  });
  tb.stop();
}

TEST(Cluster, ArrayWriteReadRoundTrip) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(3, ObjClass::S2), /*chunk=*/4096);
    // Write a pattern spanning several chunks, unaligned.
    std::vector<std::byte> data(10'000);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 251);
    EXPECT_EQ(co_await arr.write(1000, data.size(), data), Errno::ok);

    std::vector<std::byte> out(data.size());
    auto filled = co_await arr.read(1000, out);
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, data.size());
    EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);

    auto sz = co_await arr.size();
    CO_ASSERT_TRUE(sz.ok());
    EXPECT_EQ(*sz, 11'000u);
  });
  tb.stop();
}

TEST(Cluster, ArrayHolesReadZero) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(4, ObjClass::SX), 4096);
    auto d = bytes("marker");
    EXPECT_EQ(co_await arr.write(100'000, d.size(), d), Errno::ok);
    std::vector<std::byte> out(16);
    auto filled = co_await arr.read(0, out);
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, 0u);
    for (auto b : out) EXPECT_EQ(b, std::byte{0});
  });
  tb.stop();
}

TEST(Cluster, ArrayPunchResetsSize) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(5, ObjClass::S2), 4096);
    auto d = bytes("0123456789");
    EXPECT_EQ(co_await arr.write(0, d.size(), d), Errno::ok);
    EXPECT_EQ(co_await arr.punch(), Errno::ok);
    std::vector<std::byte> out(10);
    auto filled = co_await arr.read(0, out);
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, 0u);
  });
  tb.stop();
}

TEST(Cluster, MetadataOnlyWritesTrackSizes) {
  auto cfg = small_cluster();
  cfg.payload = vos::PayloadMode::discard;
  Testbed tb(cfg);
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(6, ObjClass::SX), 1 << 20);
    EXPECT_EQ(co_await arr.write(0, 64 << 20, {}), Errno::ok);  // 64 MiB, no payload
    auto sz = co_await arr.size();
    CO_ASSERT_TRUE(sz.ok());
    EXPECT_EQ(*sz, std::uint64_t{64} << 20);
    std::vector<std::byte> out(128);
    auto filled = co_await arr.read(0, out);
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, 128u);  // extent metadata says data exists
  });
  tb.stop();
}

TEST(Cluster, SxWritesTouchManyEngines) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(7, ObjClass::SX), 4096);
    std::vector<std::byte> data(64 * 4096);
    EXPECT_EQ(co_await arr.write(0, data.size(), data), Errno::ok);
  });
  int engines_hit = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    if (tb.engine(e).updates_served() > 0) ++engines_hit;
  }
  EXPECT_EQ(engines_hit, 4);  // all engines participate under SX
  tb.stop();
}

TEST(Cluster, S1WritesStayOnOneTarget) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(8, ObjClass::S1), 4096);
    std::vector<std::byte> data(64 * 4096);
    EXPECT_EQ(co_await arr.write(0, data.size(), data), Errno::ok);
  });
  int engines_hit = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    if (tb.engine(e).updates_served() > 0) ++engines_hit;
  }
  EXPECT_EQ(engines_hit, 1);
  tb.stop();
}

TEST(Cluster, EventQueueBackpressureBlocksLaunch) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    constexpr std::size_t kDepth = 2;
    EventQueue eq(tb.sched(), kDepth);
    auto started = std::make_shared<std::vector<sim::Time>>();
    auto finished = std::make_shared<std::vector<sim::Time>>();
    for (int i = 0; i < 8; ++i) {
      auto op = [started, finished, &tb]() -> CoTask<void> {
        started->push_back(tb.sched().now());
        co_await tb.sched().delay(100 * sim::kUs);
        finished->push_back(tb.sched().now());
      };
      co_await eq.launch(std::move(op));
    }
    co_await eq.wait_all();
    CO_ASSERT_EQ(started->size(), 8u);
    // With kDepth slots, op i can only start once op i-kDepth released its
    // slot: launch() blocked the producer instead of queueing unboundedly.
    for (std::size_t i = kDepth; i < started->size(); ++i) {
      EXPECT_GE((*started)[i], (*finished)[i - kDepth]) << "op " << i << " jumped the window";
    }
  });
  tb.stop();
}

TEST(Cluster, EventQueueCompletionsAreOutOfOrderButWaitAllIsABarrier) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    // Unbounded queue, descending delays: completions must reverse the launch
    // order, and wait_all() must still hold until the slowest (first) op ends.
    EventQueue eq(tb.sched(), /*max_inflight=*/0);
    auto done = std::make_shared<std::vector<int>>();
    for (int i = 0; i < 4; ++i) {
      auto op = [done, i, &tb]() -> CoTask<void> {
        co_await tb.sched().delay(sim::Time(4 - i) * 10 * sim::kUs);
        done->push_back(i);
      };
      co_await eq.launch(std::move(op));
    }
    co_await eq.wait_all();
    CO_ASSERT_EQ(done->size(), 4u);
    EXPECT_EQ(*done, (std::vector<int>{3, 2, 1, 0}));
    EXPECT_EQ(eq.inflight(), 0u);
  });
  tb.stop();
}

TEST(Cluster, EventQueueBoundsInflight) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    EventQueue eq(tb.sched(), /*max_inflight=*/4);
    auto peak = std::make_shared<std::size_t>(0);
    for (int i = 0; i < 32; ++i) {
      // Hoisted: GCC 12 double-destroys non-trivial prvalues nested in
      // co_await operands (see co_task.hpp).
      auto op = [&eq, peak, &tb]() -> CoTask<void> {
        *peak = std::max(*peak, eq.inflight());
        co_await tb.sched().delay(10 * sim::kUs);
      };
      co_await eq.launch(std::move(op));
      *peak = std::max(*peak, eq.inflight());
    }
    co_await eq.wait_all();
    EXPECT_LE(*peak, 4u);
    EXPECT_EQ(eq.inflight(), 0u);
  });
  tb.stop();
}

// ---------------------------------------------------------------------------
// Vectorized I/O: chunk pieces coalesce into multi-extent RPCs per
// (target, replica), bounded by ClientConfig::max_batch_extents.

std::uint64_t total_updates(Testbed& tb) {
  std::uint64_t n = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) n += tb.engine(e).updates_served();
  return n;
}

std::uint64_t total_fetches(Testbed& tb) {
  std::uint64_t n = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) n += tb.engine(e).fetches_served();
  return n;
}

TEST(Batch, CoalescesChunkPiecesIntoOneRpc) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    // 16 chunks on an S1 object: one target, one redundancy group — with the
    // default cap of 16 extents the whole write fits in a single RPC.
    ArrayObject arr(cl, kPoolUuid, make_oid(40, ObjClass::S1), /*chunk=*/4096);
    std::vector<std::byte> data(16 * 4096);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 241);
    EXPECT_EQ(co_await arr.write(0, data.size(), data), Errno::ok);
    EXPECT_EQ(total_updates(tb), 1u);

    std::vector<std::byte> out(data.size());
    auto filled = co_await arr.read(0, out);
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, data.size());
    EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
    EXPECT_EQ(total_fetches(tb), 1u);
  });
  tb.stop();
}

TEST(Batch, CapOneRecoversLegacyPerPieceRpcs) {
  auto cfg = small_cluster();
  cfg.client.max_batch_extents = 1;  // the A/B knob: one RPC per extent
  Testbed tb(cfg);
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(41, ObjClass::S1), 4096);
    std::vector<std::byte> data(16 * 4096, std::byte{7});
    EXPECT_EQ(co_await arr.write(0, data.size(), data), Errno::ok);
    EXPECT_EQ(total_updates(tb), 16u);
    std::vector<std::byte> out(data.size());
    auto filled = co_await arr.read(0, out);
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, data.size());
    EXPECT_EQ(total_fetches(tb), 16u);
  });
  tb.stop();
}

TEST(Batch, SplitsAtTheConfiguredCap) {
  auto cfg = small_cluster();
  cfg.client.max_batch_extents = 4;
  Testbed tb(cfg);
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(42, ObjClass::S1), 4096);
    // 10 pieces under a cap of 4 -> sub-batches of 4 + 4 + 2.
    std::vector<std::byte> data(10 * 4096, std::byte{9});
    EXPECT_EQ(co_await arr.write(0, data.size(), data), Errno::ok);
    EXPECT_EQ(total_updates(tb), 3u);
  });
  tb.stop();
}

TEST(Batch, UnalignedWriteSplitsAtChunkBoundaries) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(43, ObjClass::S1), 4096);
    // [1000, 12000): pieces of 3096 + 4096 + 2904 bytes — three extents in
    // one RPC, visible in the engine's extents-per-RPC histogram.
    std::vector<std::byte> data(11'000);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 251);
    EXPECT_EQ(co_await arr.write(1000, data.size(), data), Errno::ok);
    EXPECT_EQ(total_updates(tb), 1u);

    const telemetry::DurationHistogram* h = nullptr;
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      if (tb.engine(e).updates_served() == 0) continue;
      h = tb.engine(e).telemetry().find<telemetry::DurationHistogram>(
          "rpc/obj_update/extents_per_rpc");
    }
    CO_ASSERT_TRUE(h != nullptr);
    EXPECT_EQ(h->state().count, 1u);
    EXPECT_EQ(h->state().sum_ns, 3u);  // extent count rides the ns axis

    std::vector<std::byte> out(data.size());
    auto filled = co_await arr.read(1000, out);
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, data.size());
    EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
  });
  tb.stop();
}

TEST(Batch, ReplicaFanOutSendsOneRpcPerReplica) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    // RP_2G1: one group, two replicas. Eight pieces fan out to exactly two
    // batched updates — one per replica target. The read hashes each piece to
    // a starting replica for load spreading, so it may split across both
    // replicas — but never into more RPCs than replicas, and the batches must
    // carry all eight extents between them.
    ArrayObject arr(cl, kPoolUuid, make_oid(44, ObjClass::RP_2G1), 4096);
    std::vector<std::byte> data(8 * 4096);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 127);
    EXPECT_EQ(co_await arr.write(0, data.size(), data), Errno::ok);
    EXPECT_EQ(total_updates(tb), 2u);
    int engines_hit = 0;
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      if (tb.engine(e).updates_served() > 0) ++engines_hit;
    }
    EXPECT_EQ(engines_hit, 2);  // replicas live on distinct engines

    std::vector<std::byte> out(data.size());
    auto filled = co_await arr.read(0, out);
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, data.size());
    EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
    EXPECT_GE(total_fetches(tb), 1u);
    EXPECT_LE(total_fetches(tb), 2u);
    std::uint64_t fetched_extents = 0;
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      if (const auto* h = tb.engine(e).telemetry().find<telemetry::DurationHistogram>(
              "rpc/obj_fetch/extents_per_rpc")) {
        fetched_extents += h->state().sum_ns;
      }
    }
    EXPECT_EQ(fetched_extents, 8u);
  });
  tb.stop();
}

TEST(Batch, DegradedTargetMidBatchFallsBackPerExtent) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_TRUE((co_await cl.cont_create(kPoolUuid, {})).ok());
    ArrayObject arr(cl, kPoolUuid, make_oid(45, ObjClass::RP_2G1), 4096);
    std::vector<std::byte> data(8 * 4096);
    for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::byte(i % 199);
    EXPECT_EQ(co_await arr.write(0, data.size(), data), Errno::ok);

    // Silence one of the two replica engines for fetches only: pieces hashed
    // to it fail inside their batch and must individually fall back to the
    // surviving replica, while their batch-mates succeed untouched.
    net::NodeId dead{};
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      if (tb.engine(e).updates_served() > 0) {
        dead = tb.engine(e).node();
        break;
      }
    }
    tb.domain().set_fault_hook([dead](net::NodeId, net::NodeId dst, std::uint16_t op) {
      net::CallFault f;
      f.drop = op == engine::kOpObjFetch && dst == dead;
      return f;
    });

    std::vector<std::byte> out(data.size());
    auto filled = co_await arr.read(0, out);
    tb.domain().set_fault_hook({});
    CO_ASSERT_TRUE(filled.ok());
    EXPECT_EQ(*filled, data.size());
    EXPECT_EQ(std::memcmp(out.data(), data.data(), data.size()), 0);
    // The pieces aimed at the silenced replica burned their retry budget,
    // reported the engine, and were individually re-driven — their
    // batch-mates on the healthy replica never re-sent.
    EXPECT_GE(cl.evictions_reported(), 1u);
  });
  tb.stop();
}

TEST(Cluster, ConcurrentClientsFromTwoNodes) {
  auto cfg = small_cluster();
  cfg.client_nodes = 2;
  Testbed tb(cfg);
  tb.start();
  tb.run([&]() -> CoTask<void> {
    (void)co_await tb.client(0).cont_create(kPoolUuid, {});
    sim::WaitGroup wg(tb.sched());
    for (std::uint32_t c = 0; c < 2; ++c) {
      wg.spawn([&tb, c]() -> CoTask<void> {
        ArrayObject arr(tb.client(c), kPoolUuid, make_oid(100 + c, ObjClass::S2), 4096);
        std::vector<std::byte> data(32 * 4096, std::byte(c));
        EXPECT_EQ(co_await arr.write(0, data.size(), data), Errno::ok);
        std::vector<std::byte> out(data.size());
        auto filled = co_await arr.read(0, out);
        CO_ASSERT_TRUE(filled.ok());
        EXPECT_EQ(*filled, data.size());
        EXPECT_EQ(out[17], std::byte(c));
      });
    }
    co_await wg.wait();
  });
  tb.stop();
}

}  // namespace
}  // namespace daosim::client
