// Telemetry tests: the metric-tree primitives, the deterministic exporters,
// the Chrome-trace span sink, and the end-to-end contracts — same-seed runs
// dump byte-identical metrics, attaching a span sink never perturbs the
// simulation, and fault-injection counters match the injector's schedule.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "co_assert.hpp"
#include "fault/fault.hpp"
#include "ior/ior.hpp"
#include "telemetry/telemetry.hpp"

namespace daosim::telemetry {
namespace {

using cluster::ClusterConfig;
using cluster::kPoolUuid;
using cluster::Testbed;
using sim::CoTask;

// ---------------------------------------------------------------------------
// Registry & node primitives

TEST(Registry, FindOrCreateReturnsTheSameNode) {
  Registry r("unit");
  Counter& a = r.find_or_create<Counter>("x/count");
  a.inc(3);
  Counter& b = r.find_or_create<Counter>("x/count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(r.nodes().size(), 1u);
}

TEST(Registry, KindMismatchIsRejected) {
  Registry r("unit");
  r.find_or_create<Counter>("x");
  EXPECT_THROW(r.find_or_create<Gauge>("x"), DaosimError);
  EXPECT_EQ(r.find<Gauge>("x"), nullptr);          // wrong kind -> null
  EXPECT_NE(r.find<Counter>("x"), nullptr);        // right kind -> node
  EXPECT_EQ(r.find<Counter>("absent"), nullptr);   // absent -> null
}

TEST(Registry, GaugeTracksLevelAndHighWater) {
  Registry r("unit");
  Gauge& g = r.find_or_create<Gauge>("depth");
  g.set(5);
  g.add(3);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_seen(), 8);
}

TEST(Registry, StatGaugeWrapsSummary) {
  Registry r("unit");
  StatGauge& s = r.find_or_create<StatGauge>("queue");
  s.sample(1.0);
  s.sample(3.0);
  EXPECT_EQ(s.stats().count(), 2u);
  EXPECT_EQ(s.stats().min(), 1.0);
  EXPECT_EQ(s.stats().max(), 3.0);
}

TEST(Registry, ProbePollsItsCallback) {
  Registry r("unit");
  std::uint64_t live = 7;
  r.add_probe("live", [&] { return live; });
  live = 42;
  std::vector<Field> fields;
  r.find<Probe>("live")->fields(fields);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].value, "42");
}

// ---------------------------------------------------------------------------
// DurationHistogram

TEST(Histogram, ExactStatsAndClampedPercentiles) {
  Registry r("unit");
  DurationHistogram& h = r.find_or_create<DurationHistogram>("lat");
  h.record(1000);
  EXPECT_EQ(h.state().count, 1u);
  EXPECT_EQ(h.state().sum_ns, 1000u);
  EXPECT_EQ(h.state().min_ns, 1000u);
  EXPECT_EQ(h.state().max_ns, 1000u);
  // A single sample: every percentile clamps to the exact value.
  EXPECT_EQ(h.state().percentile_ns(0), 1000.0);
  EXPECT_EQ(h.state().percentile_ns(50), 1000.0);
  EXPECT_EQ(h.state().percentile_ns(100), 1000.0);

  h.record(1);
  h.record(2);
  h.record(1u << 20);
  const DurationHistogram::State& s = h.state();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min_ns, 1u);
  EXPECT_EQ(s.max_ns, 1u << 20);
  EXPECT_LE(s.percentile_ns(50), s.percentile_ns(99));
  EXPECT_GE(s.percentile_ns(0), 1.0);
  EXPECT_LE(s.percentile_ns(100), double(1u << 20));
  EXPECT_DOUBLE_EQ(s.mean_ns(), double(1000 + 1 + 2 + (1u << 20)) / 4.0);
}

TEST(Histogram, DeltaIsolatesAPhase) {
  Registry r("unit");
  DurationHistogram& h = r.find_or_create<DurationHistogram>("lat");
  h.record(100);
  h.record(200);
  const DurationHistogram::State before = h.snapshot();
  h.record(1000);
  const DurationHistogram::State delta = h.snapshot() - before;
  EXPECT_EQ(delta.count, 1u);
  EXPECT_EQ(delta.sum_ns, 1000u);
  // min/max are not recoverable from a delta; percentiles fall back to the
  // covering bucket's bounds ([512, 1024) for 1000ns).
  EXPECT_EQ(delta.min_ns, 0u);
  EXPECT_GE(delta.percentile_ns(50), 512.0);
  EXPECT_LE(delta.percentile_ns(50), 1024.0);
}

TEST(Histogram, MergeAccumulatesAcrossClients) {
  Registry r("unit");
  DurationHistogram& a = r.find_or_create<DurationHistogram>("a");
  DurationHistogram& b = r.find_or_create<DurationHistogram>("b");
  a.record(10);
  b.record(30);
  DurationHistogram::State sum = a.snapshot();
  sum += b.snapshot();
  EXPECT_EQ(sum.count, 2u);
  EXPECT_EQ(sum.sum_ns, 40u);
  EXPECT_EQ(sum.min_ns, 10u);
  EXPECT_EQ(sum.max_ns, 30u);
}

// ---------------------------------------------------------------------------
// Exporters

Registry& seeded_registry(Registry& r) {
  r.find_or_create<Counter>("b/count").inc(2);
  r.find_or_create<Gauge>("a/depth").set(4);
  r.find_or_create<StatGauge>("c/queue").sample(1.5);
  r.find_or_create<DurationHistogram>("a/lat").record(1000);
  r.add_probe("d/live", [] { return std::uint64_t{9}; });
  return r;
}

TEST(Dump, CsvIsSortedAndStable) {
  Registry r("unit");
  seeded_registry(r);
  std::ostringstream a, b;
  write_csv(a, {&r});
  write_csv(b, {&r});
  EXPECT_EQ(a.str(), b.str());
  const std::string csv = a.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "path,kind,field,value");
  // Rows come out in sorted path order.
  EXPECT_LT(csv.find("unit/a/depth"), csv.find("unit/a/lat"));
  EXPECT_LT(csv.find("unit/a/lat"), csv.find("unit/b/count"));
  EXPECT_LT(csv.find("unit/b/count"), csv.find("unit/c/queue"));
  EXPECT_NE(csv.find("unit/b/count,counter,value,2"), std::string::npos);
  EXPECT_NE(csv.find("unit/d/live,probe,value,9"), std::string::npos);
}

TEST(Dump, JsonSortsAcrossRegistries) {
  Registry eng("engine/1");
  Registry cl("client/9");
  eng.find_or_create<Counter>("x").inc();
  cl.find_or_create<Counter>("x").inc();
  std::ostringstream os;
  // Handed over out of order: the dump re-sorts by full path.
  write_json(os, {&eng, &cl});
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_LT(json.find("\"client/9/x\""), json.find("\"engine/1/x\""));
  EXPECT_NE(json.find("\"kind\": \"counter\""), std::string::npos);
}

TEST(Trace, ChromeJsonCarriesSpansAndProcessNames) {
  TraceLog log;
  log.set_process_name(1, "engine/1");
  log.span("rpc", "update ->1", 1, 0x20, 1000, 5000);
  log.span("media", "write 4096B", 1, 0, 2000, 3000);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.count("rpc"), 1u);
  EXPECT_EQ(log.count("media"), 1u);
  EXPECT_EQ(log.count("rebuild"), 0u);
  std::ostringstream os;
  log.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"update ->1\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 4"), std::string::npos);  // 4000ns -> 4us
}

// ---------------------------------------------------------------------------
// End-to-end: same-seed runs dump byte-identical metrics, and attaching a
// span sink changes nothing about the simulation.

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 2;
  return cfg;
}

ior::IorConfig small_job(ior::Api api, bool fpp) {
  ior::IorConfig cfg;
  cfg.api = api;
  cfg.transfer_size = 256 * kKiB;
  cfg.block_size = 1 * kMiB;
  cfg.segments = 2;
  cfg.file_per_process = fpp;
  return cfg;
}

struct DumpDigest {
  std::string csv;
  std::string json;
  std::uint64_t trace_hash = 0;
  double write_seconds = 0;
  double read_seconds = 0;
  std::uint64_t rpc_p99_write = 0;
};

DumpDigest run_and_dump(ior::Api api, bool fpp, TraceLog* sink = nullptr) {
  Testbed tb(small_cluster());
  if (sink != nullptr) tb.sched().set_span_sink(sink);
  tb.start();
  ior::IorRunner runner(tb, /*ppn=*/4);
  const ior::IorResult res = runner.run(small_job(api, fpp));
  tb.stop();
  DumpDigest d;
  std::ostringstream csv, json;
  tb.dump_metrics(csv, DumpFormat::csv);
  tb.dump_metrics(json, DumpFormat::json);
  d.csv = csv.str();
  d.json = json.str();
  d.trace_hash = tb.sched().trace_hash();
  d.write_seconds = res.write.seconds;
  d.read_seconds = res.read.seconds;
  d.rpc_p99_write = std::uint64_t(res.write_rpc_latency.percentile_ns(99));
  return d;
}

class DumpDeterminism
    : public ::testing::TestWithParam<std::tuple<ior::Api, bool /*file_per_process*/>> {};

TEST_P(DumpDeterminism, SameSeedRunsDumpByteIdentically) {
  const auto [api, fpp] = GetParam();
  const DumpDigest first = run_and_dump(api, fpp);
  const DumpDigest second = run_and_dump(api, fpp);
  EXPECT_EQ(first.csv, second.csv) << "CSV dump drifted across same-seed runs";
  EXPECT_EQ(first.json, second.json) << "JSON dump drifted across same-seed runs";
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  // The dumps are real: data-path metrics are present and non-trivial.
  EXPECT_NE(first.csv.find("rpc/update/sent"), std::string::npos);
  EXPECT_NE(first.csv.find("fabric/messages"), std::string::npos);
  EXPECT_NE(first.json.find("svc/update/time_ns"), std::string::npos);
  EXPECT_GT(first.rpc_p99_write, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    EasyAndHard, DumpDeterminism,
    ::testing::Combine(::testing::Values(ior::Api::dfs, ior::Api::mpiio, ior::Api::hdf5),
                       ::testing::Values(true, false)),
    [](const auto& tp) {
      return std::string(ior::to_string(std::get<0>(tp.param))) +
             (std::get<1>(tp.param) ? "_easy" : "_hard");
    });

TEST(SpanSink, AttachingATraceLogPerturbsNothing) {
  const DumpDigest bare = run_and_dump(ior::Api::dfs, /*fpp=*/true);
  TraceLog log;
  const DumpDigest traced = run_and_dump(ior::Api::dfs, /*fpp=*/true, &log);
  // The observability acceptance bar: identical event trace, identical
  // bandwidth numbers, identical metric dumps — with spans collected.
  EXPECT_EQ(bare.trace_hash, traced.trace_hash);
  EXPECT_EQ(bare.write_seconds, traced.write_seconds);
  EXPECT_EQ(bare.read_seconds, traced.read_seconds);
  EXPECT_EQ(bare.csv, traced.csv);
  EXPECT_GT(log.count("rpc"), 0u);
  EXPECT_GT(log.count("xfer"), 0u);
  EXPECT_GT(log.count("media"), 0u);
}

TEST(SpanSink, RebuildTasksEmitSpans) {
  Testbed tb(small_cluster());
  TraceLog log;
  tb.sched().set_span_sink(&log);
  tb.start();
  auto schedule = fault::Schedule::parse("crash@5ms:e3");
  ASSERT_TRUE(schedule.ok());
  tb.inject_faults(*schedule, /*seed=*/7);
  ior::IorRunner runner(tb, /*ppn=*/4);
  ior::IorConfig job = small_job(ior::Api::daos_array, /*fpp=*/false);
  job.oclass = std::uint8_t(client::ObjClass::RP_2GX);
  (void)runner.run(job);
  EXPECT_TRUE(tb.wait_rebuild());
  tb.stop();
  EXPECT_GT(log.count("rebuild"), 0u);
  EXPECT_GT(log.count("rpc"), 0u);
  std::ostringstream os;
  log.write_chrome_json(os);
  EXPECT_NE(os.str().find("\"rebuild\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault-injection counters match the schedule exactly.

std::uint64_t counter_value(const Registry& r, const std::string& path) {
  const Counter* c = r.find<Counter>(path);
  return c != nullptr ? c->value() : 0;
}

TEST(FaultCounters, DroppedCallsAreCountedExactly) {
  Testbed tb(small_cluster());
  tb.start();
  // Deterministically drop the first 3 object-update RPCs: the client's
  // retry loop must send 4, see 3 timeouts, and complete 1.
  int update_calls = 0;
  tb.domain().set_fault_hook(
      [&update_calls](net::NodeId, net::NodeId, std::uint16_t opcode) {
        net::CallFault f;
        if (opcode == engine::kOpObjUpdate && update_calls < 3) {
          ++update_calls;
          f.drop = true;
        }
        return f;
      });
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    client::KvObject kv(cl, kPoolUuid, client::make_oid(1, client::ObjClass::S1));
    std::vector<std::byte> v(8);
    CO_ASSERT_ERRNO(co_await kv.put("d", "a", v), Errno::ok);
  });
  tb.domain().set_fault_hook(nullptr);
  tb.stop();

  const Registry& reg = tb.client(0).telemetry();
  EXPECT_EQ(counter_value(reg, "rpc/update/sent"), 4u);
  EXPECT_EQ(counter_value(reg, "rpc/update/timed_out"), 3u);
  EXPECT_EQ(counter_value(reg, "rpc/update/completed"), 1u);
  EXPECT_EQ(counter_value(reg, "retry/attempts"), 3u);
  EXPECT_GT(counter_value(reg, "retry/backoff_ns"), 0u);
  const DurationHistogram* lat = reg.find<DurationHistogram>("rpc/update/latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->state().count, 1u);  // only the completed call is timed
}

std::uint64_t sum_counters_with_suffix(const std::vector<const Registry*>& regs,
                                       const std::string& suffix) {
  std::uint64_t n = 0;
  for (const Registry* r : regs) {
    for (const auto& [path, node] : r->nodes()) {
      if (path.ends_with(suffix) && node->kind() == Kind::counter) {
        n += r->find<Counter>(path)->value();
      }
    }
  }
  return n;
}

TEST(FaultCounters, TimeoutTotalsMatchTheInjectorSchedule) {
  Testbed tb(small_cluster());
  tb.start();
  // A 150ms total-drop window against engine 1: every timed-out RPC in the
  // whole cluster during this run comes from the injector, so the summed
  // per-opcode timeout counters must equal its drop count exactly.
  auto schedule = fault::Schedule::parse("drop@0-150ms:e1:1");
  ASSERT_TRUE(schedule.ok());
  const fault::Injector& inj = tb.inject_faults(*schedule, /*seed=*/3);
  ior::IorRunner runner(tb, /*ppn=*/4);
  (void)runner.run(small_job(ior::Api::dfs, /*fpp=*/true));
  tb.stop();

  const std::uint64_t dropped = inj.calls_dropped();
  EXPECT_GT(dropped, 0u) << "the drop window never fired — the test lost its teeth";
  EXPECT_EQ(sum_counters_with_suffix(tb.registries(), "/timed_out"), dropped);
  // Client retries recovered every drop aimed at them: whatever the clients
  // lost, they re-sent (engine-to-engine traffic retries at its own layer).
  std::uint64_t client_timeouts = 0;
  for (std::uint32_t c = 0; c < tb.client_node_count(); ++c) {
    client_timeouts += sum_counters_with_suffix({&tb.client(c).telemetry()}, "/timed_out");
  }
  std::uint64_t client_retries = 0;
  for (std::uint32_t c = 0; c < tb.client_node_count(); ++c) {
    client_retries += counter_value(tb.client(c).telemetry(), "retry/attempts");
  }
  EXPECT_GE(client_retries, client_timeouts > 0 ? 1u : 0u);
}

// ---------------------------------------------------------------------------
// Vectorized-I/O telemetry: engines histogram the extents carried per object
// RPC, clients count what coalescing saved — exact numbers for an exact job.

TEST(BatchTelemetry, ExtentHistogramsAndCoalescingCountersAreExact) {
  Testbed tb(small_cluster());
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    // 16 x 4 KiB chunks on S1: one target, so the write is one 16-extent
    // batch and the readback one 16-extent fetch.
    client::ArrayObject arr(cl, kPoolUuid, client::make_oid(9, client::ObjClass::S1), 4096);
    std::vector<std::byte> data(16 * 4096, std::byte{5});
    CO_ASSERT_ERRNO(co_await arr.write(0, data.size(), data), Errno::ok);
    std::vector<std::byte> out(data.size());
    auto filled = co_await arr.read(0, out);
    CO_ASSERT_TRUE(filled.ok() && *filled == data.size());
  });
  tb.stop();

  DurationHistogram::State upd, fet;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    const Registry& reg = tb.engine(e).telemetry();
    if (const auto* h = reg.find<DurationHistogram>("rpc/obj_update/extents_per_rpc")) {
      upd.count += h->state().count;
      upd.sum_ns += h->state().sum_ns;
    }
    if (const auto* h = reg.find<DurationHistogram>("rpc/obj_fetch/extents_per_rpc")) {
      fet.count += h->state().count;
      fet.sum_ns += h->state().sum_ns;
    }
  }
  EXPECT_EQ(upd.count, 1u);    // one batched update RPC...
  EXPECT_EQ(upd.sum_ns, 16u);  // ...carrying all 16 extents
  EXPECT_EQ(fet.count, 1u);
  EXPECT_EQ(fet.sum_ns, 16u);

  const Registry& creg = tb.client(0).telemetry();
  EXPECT_EQ(counter_value(creg, "batch/extents_coalesced"), 32u);  // 16 write + 16 read
  EXPECT_EQ(counter_value(creg, "batch/rpcs_saved"), 30u);         // 15 + 15
}

TEST(BatchTelemetry, CapOneLeavesCoalescingCountersAtZero) {
  ClusterConfig cluster = small_cluster();
  cluster.client.max_batch_extents = 1;
  Testbed tb(cluster);
  tb.start();
  tb.run([&]() -> CoTask<void> {
    auto& cl = tb.client(0);
    CO_ASSERT_OK(co_await cl.cont_create(kPoolUuid, {}));
    client::ArrayObject arr(cl, kPoolUuid, client::make_oid(9, client::ObjClass::S1), 4096);
    std::vector<std::byte> data(16 * 4096, std::byte{5});
    CO_ASSERT_ERRNO(co_await arr.write(0, data.size(), data), Errno::ok);
  });
  tb.stop();

  std::uint64_t rpcs = 0, extents = 0;
  for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
    if (const auto* h = tb.engine(e).telemetry().find<DurationHistogram>(
            "rpc/obj_update/extents_per_rpc")) {
      rpcs += h->state().count;
      extents += h->state().sum_ns;
    }
  }
  EXPECT_EQ(rpcs, 16u);     // one RPC per extent on the legacy path
  EXPECT_EQ(extents, 16u);  // every RPC carried exactly one extent
  const Registry& creg = tb.client(0).telemetry();
  EXPECT_EQ(counter_value(creg, "batch/extents_coalesced"), 0u);
  EXPECT_EQ(counter_value(creg, "batch/rpcs_saved"), 0u);
}

}  // namespace
}  // namespace daosim::telemetry
