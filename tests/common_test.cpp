// Coverage for the common error vocabulary (Result<T>, Errno, errno_name),
// the sim::Timer cancel/armed/fired state machine, and the empty-set
// behavior of the statistics helpers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace daosim {
namespace {

// ---------------------------------------------------------------- Result<T>

TEST(ResultTest, ValueStateAccessors) {
  Result<int> r(7);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), Errno::ok);
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, ErrorStateAccessors) {
  Result<int> r(Errno::no_entry);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), Errno::no_entry);
}

TEST(ResultTest, ValueOnErrorThrowsDaosimError) {
  Result<int> r(Errno::io);
  EXPECT_THROW((void)r.value(), DaosimError);
  try {
    (void)r.value();
    FAIL() << "value() on error state must throw";
  } catch (const DaosimError& e) {
    EXPECT_NE(std::string(e.what()).find("EIO"), std::string::npos)
        << "message should name the errno: " << e.what();
  }
}

TEST(ResultTest, DereferenceOnErrorThrows) {
  Result<std::string> r(Errno::perm);
  EXPECT_THROW(r->size(), DaosimError);
  const Result<std::string> cr(Errno::perm);
  EXPECT_THROW((void)*cr, DaosimError);
}

TEST(ResultTest, MutableAndRvalueAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "d";
  EXPECT_EQ(*r, "abcd");
  // Rvalue access moves the payload out.
  Result<std::unique_ptr<int>> pr(std::make_unique<int>(5));
  std::unique_ptr<int> p = std::move(pr).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5);
}

TEST(ResultTest, MemberAccessThroughArrow) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultVoidTest, DefaultIsOk) {
  Result<void> r;
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), Errno::ok);
}

TEST(ResultVoidTest, CarriesErrno) {
  Result<void> r(Errno::busy);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error(), Errno::busy);
}

TEST(ResultVoidTest, OkErrnoMeansOk) {
  Result<void> r(Errno::ok);
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------------- errno_name

TEST(ErrnoTest, EveryEnumeratorHasADistinctName) {
  const std::pair<Errno, const char*> expected[] = {
      {Errno::ok, "OK"},
      {Errno::no_entry, "ENOENT"},
      {Errno::exists, "EEXIST"},
      {Errno::not_dir, "ENOTDIR"},
      {Errno::is_dir, "EISDIR"},
      {Errno::not_empty, "ENOTEMPTY"},
      {Errno::invalid, "EINVAL"},
      {Errno::no_space, "ENOSPC"},
      {Errno::busy, "EBUSY"},
      {Errno::io, "EIO"},
      {Errno::bad_fd, "EBADF"},
      {Errno::perm, "EPERM"},
      {Errno::again, "EAGAIN"},
      {Errno::name_too_long, "ENAMETOOLONG"},
      {Errno::not_supported, "ENOTSUP"},
      {Errno::stale, "ESTALE"},
      {Errno::timed_out, "ETIMEDOUT"},
  };
  for (const auto& [e, name] : expected) {
    EXPECT_STREQ(errno_name(e), name);
  }
  // Out-of-range values degrade to the placeholder rather than crashing.
  EXPECT_STREQ(errno_name(static_cast<Errno>(9999)), "E?");
}

// ---------------------------------------------------------------- sim::Timer

TEST(TimerTest, DefaultConstructedIsNotArmed) {
  sim::Timer t;
  EXPECT_FALSE(t.armed());
  t.cancel();  // cancel on an empty timer is a no-op
  EXPECT_FALSE(t.armed());
}

TEST(TimerTest, ArmedUntilFired) {
  sim::Scheduler s;
  bool fired = false;
  sim::Timer t = s.schedule_callback(10, [&] { fired = true; });
  EXPECT_TRUE(t.armed());
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(t.armed()) << "a fired timer is no longer armed";
}

TEST(TimerTest, CancelledTimerNeverFires) {
  sim::Scheduler s;
  bool fired = false;
  sim::Timer t = s.schedule_callback(10, [&] { fired = true; });
  t.cancel();
  EXPECT_FALSE(t.armed());
  s.run();
  EXPECT_FALSE(fired) << "a cancelled timer's callback must never run";
  EXPECT_EQ(s.events_processed(), 1u) << "the queue slot still drains";
}

TEST(TimerTest, CancelAfterFireIsANoOp) {
  sim::Scheduler s;
  int hits = 0;
  sim::Timer t = s.schedule_callback(5, [&] { ++hits; });
  s.run();
  EXPECT_EQ(hits, 1);
  t.cancel();
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(hits, 1);
}

TEST(TimerTest, CancelMidRunBeforeExpiry) {
  sim::Scheduler s;
  bool late_fired = false;
  sim::Timer late = s.schedule_callback(100, [&] { late_fired = true; });
  s.schedule_callback(10, [&] { late.cancel(); });
  s.run();
  EXPECT_FALSE(late_fired);
  EXPECT_FALSE(late.armed());
}

// ------------------------------------------------- empty-set statistics

// Empty extrema used to silently return the +/-infinity seeds; they are now
// rejected outright, mirroring Samples::percentile().
TEST(StatsEmptyTest, SummaryMinMaxThrowOnEmpty) {
  sim::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);  // moments keep their defined-empty values
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_THROW((void)s.min(), DaosimError);
  EXPECT_THROW((void)s.max(), DaosimError);
  s.add(3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(StatsEmptyTest, SamplesSummarizeThrowsOnEmpty) {
  sim::Samples s;
  EXPECT_THROW((void)s.summarize(), DaosimError);
  EXPECT_THROW((void)s.percentile(50.0), DaosimError);
  s.add(1.0);
  s.add(2.0);
  const sim::Summary sum = s.summarize();
  EXPECT_EQ(sum.count(), 2u);
  EXPECT_EQ(sum.min(), 1.0);
  EXPECT_EQ(sum.max(), 2.0);
}

TEST(TimerTest, RearmingReplacesState) {
  sim::Scheduler s;
  int first = 0, second = 0;
  sim::Timer t = s.schedule_callback(10, [&] { ++first; });
  // Overwriting the handle drops control of the first callback (it still
  // fires — only cancel() suppresses) and arms the second.
  t = s.schedule_callback(20, [&] { ++second; });
  EXPECT_TRUE(t.armed());
  s.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
  EXPECT_FALSE(t.armed());
}

}  // namespace
}  // namespace daosim
