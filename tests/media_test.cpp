// Tests for the storage media models.
#include <gtest/gtest.h>

#include "media/dcpmm.hpp"
#include "sim/scheduler.hpp"

namespace daosim::media {
namespace {

using sim::CoTask;
using sim::Time;

DcpmmConfig flat_config() {
  DcpmmConfig cfg;
  cfg.read_bytes_per_sec = 2e9;
  cfg.write_bytes_per_sec = 1e9;
  cfg.read_latency = 100;
  cfg.write_latency = 50;
  cfg.read_eff = {};
  cfg.write_eff = {};
  return cfg;
}

TEST(Dcpmm, ReadWriteAsymmetry) {
  sim::Scheduler s;
  DcpmmInterleaveSet pmem(s, flat_config());
  Time read_done = 0, write_done = 0;
  s.spawn([&]() -> CoTask<void> {
    co_await pmem.read(2'000'000);
    read_done = s.now();
  });
  s.run();
  s.spawn([&]() -> CoTask<void> {
    co_await pmem.write(2'000'000);
    write_done = s.now() - read_done;
  });
  s.run();
  EXPECT_NEAR(double(read_done), 100 + 1'000'000.0, 5.0);   // 2MB @ 2B/ns
  EXPECT_NEAR(double(write_done), 50 + 2'000'000.0, 5.0);   // 2MB @ 1B/ns
}

TEST(Dcpmm, ReadsAndWritesUseSeparateChannels) {
  sim::Scheduler s;
  DcpmmInterleaveSet pmem(s, flat_config());
  Time done = 0;
  s.spawn([&]() -> CoTask<void> {
    co_await pmem.read(2'000'000);
    done = std::max(done, s.now());
  });
  s.spawn([&]() -> CoTask<void> {
    co_await pmem.write(1'000'000);
    done = std::max(done, s.now());
  });
  s.run();
  // Concurrent: both finish around 1ms, not 2ms serialized.
  EXPECT_LT(done, Time(1'100'000));
}

TEST(Dcpmm, EfficiencyCurveSlowsManyWriters) {
  sim::Scheduler s;
  auto cfg = flat_config();
  cfg.write_eff = {2, 1.0, 0.25};  // beyond 2 writers efficiency drops fast
  DcpmmInterleaveSet pmem(s, cfg);
  Time done = 0;
  for (int i = 0; i < 8; ++i) {
    s.spawn([&]() -> CoTask<void> {
      co_await pmem.write(1'000'000);
      done = std::max(done, s.now());
    });
  }
  s.run();
  // 8 writers, eff(8) = max(0.25, (2/8)^1) = 0.25 -> 8MB at 0.25 GB/s.
  EXPECT_NEAR(double(done), 50 + 32'000'000.0, 100.0);
}

TEST(Dcpmm, ByteCountersTrack) {
  sim::Scheduler s;
  DcpmmInterleaveSet pmem(s, flat_config());
  s.spawn([&]() -> CoTask<void> {
    co_await pmem.write(1234);
    co_await pmem.read(777);
  });
  s.run();
  EXPECT_EQ(pmem.bytes_written(), 1234u);
  EXPECT_EQ(pmem.bytes_read(), 777u);
}

TEST(Nvme, QueueDepthLimitsConcurrency) {
  sim::Scheduler s;
  NvmeConfig cfg;
  cfg.bytes_per_sec = 1e9;
  cfg.read_latency = 1000;
  cfg.write_latency = 1000;
  cfg.queue_depth = 2;
  NvmeDevice dev(s, cfg);
  Time done = 0;
  for (int i = 0; i < 4; ++i) {
    s.spawn([&]() -> CoTask<void> {
      co_await dev.write(1000);
      done = std::max(done, s.now());
    });
  }
  s.run();
  // With QD=2, the 4 ops' fixed latencies overlap pairwise: at least 2 rounds.
  EXPECT_GE(done, Time(2 * 1000));
}

TEST(Nvme, StreamingBandwidth) {
  sim::Scheduler s;
  NvmeConfig cfg;
  cfg.bytes_per_sec = 2e9;
  cfg.read_latency = 0;
  cfg.write_latency = 0;
  NvmeDevice dev(s, cfg);
  Time done = 0;
  s.spawn([&]() -> CoTask<void> {
    co_await dev.read(4'000'000);
    done = s.now();
  });
  s.run();
  EXPECT_NEAR(double(done), 2'000'000.0, 5.0);
}

}  // namespace
}  // namespace daosim::media
