// B+ tree unit and property tests. The property suites drive the tree with
// randomized workloads and cross-check every observable behaviour against a
// std::map oracle, validating structural invariants after each phase.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "sim/random.hpp"
#include "vos/btree.hpp"

namespace daosim::vos {
namespace {

TEST(BPlusTree, EmptyTree) {
  BPlusTree<int, int> t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.begin(), t.end());
  t.validate();
}

TEST(BPlusTree, InsertFindSingle) {
  BPlusTree<int, std::string> t;
  EXPECT_TRUE(t.insert_or_assign(7, "seven"));
  ASSERT_NE(t.find(7), nullptr);
  EXPECT_EQ(*t.find(7), "seven");
  EXPECT_EQ(t.find(8), nullptr);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTree, AssignOverwrites) {
  BPlusTree<int, int> t;
  EXPECT_TRUE(t.insert_or_assign(1, 10));
  EXPECT_FALSE(t.insert_or_assign(1, 20));
  EXPECT_EQ(*t.find(1), 20);
  EXPECT_EQ(t.size(), 1u);
}

TEST(BPlusTree, SplitsAtCapacity) {
  BPlusTree<int, int> t;  // MaxKeys = 15
  for (int i = 0; i < 100; ++i) t.insert_or_assign(i, i * i);
  t.validate();
  EXPECT_EQ(t.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(t.find(i), nullptr) << i;
    EXPECT_EQ(*t.find(i), i * i);
  }
}

TEST(BPlusTree, ReverseInsertionStaysSorted) {
  BPlusTree<int, int> t;
  for (int i = 99; i >= 0; --i) t.insert_or_assign(i, i);
  t.validate();
  int expect = 0;
  for (auto it = t.begin(); it != t.end(); ++it) EXPECT_EQ(it.key(), expect++);
  EXPECT_EQ(expect, 100);
}

TEST(BPlusTree, EraseLeafOnly) {
  BPlusTree<int, int> t;
  for (int i = 0; i < 5; ++i) t.insert_or_assign(i, i);
  EXPECT_TRUE(t.erase(2));
  EXPECT_FALSE(t.erase(2));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.find(2), nullptr);
  t.validate();
}

TEST(BPlusTree, EraseEverythingAscending) {
  BPlusTree<int, int> t;
  for (int i = 0; i < 200; ++i) t.insert_or_assign(i, i);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.erase(i)) << i;
    t.validate();
  }
  EXPECT_TRUE(t.empty());
}

TEST(BPlusTree, EraseEverythingDescending) {
  BPlusTree<int, int> t;
  for (int i = 0; i < 200; ++i) t.insert_or_assign(i, i);
  for (int i = 199; i >= 0; --i) {
    ASSERT_TRUE(t.erase(i)) << i;
    t.validate();
  }
  EXPECT_TRUE(t.empty());
}

TEST(BPlusTree, LowerBoundSemantics) {
  BPlusTree<int, int> t;
  for (int i = 0; i < 100; i += 10) t.insert_or_assign(i, i);
  auto it = t.lower_bound(35);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 40);
  it = t.lower_bound(40);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 40);
  it = t.lower_bound(91);
  EXPECT_FALSE(it.valid());
  it = t.lower_bound(-5);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.key(), 0);
}

TEST(BPlusTree, IterationCoversAllInOrder) {
  BPlusTree<int, int> t;
  sim::Xoshiro256 rng(3);
  std::map<int, int> oracle;
  for (int i = 0; i < 1000; ++i) {
    const int k = int(rng.uniform(5000));
    t.insert_or_assign(k, i);
    oracle[k] = i;
  }
  auto oit = oracle.begin();
  for (auto it = t.begin(); it != t.end(); ++it, ++oit) {
    ASSERT_NE(oit, oracle.end());
    EXPECT_EQ(it.key(), oit->first);
    EXPECT_EQ(it.value(), oit->second);
  }
  EXPECT_EQ(oit, oracle.end());
}

TEST(BPlusTree, MoveOnlyValues) {
  BPlusTree<int, std::unique_ptr<int>> t;
  for (int i = 0; i < 100; ++i) t.insert_or_assign(i, std::make_unique<int>(i));
  for (int i = 0; i < 100; i += 2) t.erase(i);
  t.validate();
  ASSERT_NE(t.find(51), nullptr);
  EXPECT_EQ(**t.find(51), 51);
  EXPECT_EQ(t.find(50), nullptr);
}

TEST(BPlusTree, StringKeys) {
  BPlusTree<std::string, int> t;
  t.insert_or_assign("delta", 4);
  t.insert_or_assign("alpha", 1);
  t.insert_or_assign("charlie", 3);
  t.insert_or_assign("bravo", 2);
  int expect = 1;
  for (auto it = t.begin(); it != t.end(); ++it) EXPECT_EQ(it.value(), expect++);
}

TEST(BPlusTree, ClearResets) {
  BPlusTree<int, int> t;
  for (int i = 0; i < 50; ++i) t.insert_or_assign(i, i);
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(10), nullptr);
  t.insert_or_assign(1, 1);
  EXPECT_EQ(t.size(), 1u);
  t.validate();
}

// Property: a random mix of inserts, overwrites and erases matches std::map
// exactly (size, membership, values, ordered iteration), and invariants hold.
class BTreeOracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeOracleProperty, MatchesStdMap) {
  sim::Xoshiro256 rng(GetParam());
  BPlusTree<std::uint64_t, std::uint64_t> t;
  std::map<std::uint64_t, std::uint64_t> oracle;
  const std::uint64_t key_space = 1 + rng.uniform(2000);
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t k = rng.uniform(key_space);
    switch (rng.uniform(3)) {
      case 0:
      case 1: {  // insert / overwrite
        const std::uint64_t v = rng();
        const bool inserted = t.insert_or_assign(k, v);
        EXPECT_EQ(inserted, oracle.find(k) == oracle.end());
        oracle[k] = v;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(t.erase(k), oracle.erase(k) > 0);
        break;
      }
    }
  }
  t.validate();
  EXPECT_EQ(t.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_NE(t.find(k), nullptr) << k;
    EXPECT_EQ(*t.find(k), v);
  }
  auto oit = oracle.begin();
  for (auto it = t.begin(); it != t.end(); ++it, ++oit) {
    EXPECT_EQ(it.key(), oit->first);
  }
  // lower_bound agreement on random probes.
  for (int probe = 0; probe < 200; ++probe) {
    const std::uint64_t k = rng.uniform(key_space + 10);
    auto ti = t.lower_bound(k);
    auto oi = oracle.lower_bound(k);
    if (oi == oracle.end()) {
      EXPECT_FALSE(ti.valid());
    } else {
      ASSERT_TRUE(ti.valid());
      EXPECT_EQ(ti.key(), oi->first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeOracleProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Property: dense churn around the underflow boundary exercises every
// borrow/merge path.
class BTreeChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BTreeChurnProperty, SurvivesTightChurn) {
  sim::Xoshiro256 rng(GetParam() * 7919);
  BPlusTree<int, int> t;
  std::map<int, int> oracle;
  for (int round = 0; round < 40; ++round) {
    // Grow.
    for (int i = 0; i < 120; ++i) {
      const int k = int(rng.uniform(300));
      t.insert_or_assign(k, round);
      oracle[k] = round;
    }
    t.validate();
    // Shrink hard.
    for (int i = 0; i < 140; ++i) {
      const int k = int(rng.uniform(300));
      EXPECT_EQ(t.erase(k), oracle.erase(k) > 0);
    }
    t.validate();
    EXPECT_EQ(t.size(), oracle.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeChurnProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace daosim::vos
