// End-to-end IOR tests: every backend writes and reads back verified data in
// both easy (file-per-process) and hard (shared-file) modes on a small
// cluster, and the bandwidth accounting is sane.
#include <gtest/gtest.h>

#include "co_assert.hpp"
#include "ior/ior.hpp"

namespace daosim::ior {
namespace {

using cluster::ClusterConfig;
using cluster::Testbed;

ClusterConfig small_cluster(std::uint32_t client_nodes = 2) {
  ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = client_nodes;
  return cfg;
}

IorConfig small_job(Api api, bool fpp) {
  IorConfig cfg;
  cfg.api = api;
  cfg.transfer_size = 256 * kKiB;
  cfg.block_size = 1 * kMiB;
  cfg.segments = 2;
  cfg.file_per_process = fpp;
  cfg.verify = true;
  return cfg;
}

class IorBackends
    : public ::testing::TestWithParam<std::tuple<Api, bool /*file_per_process*/>> {};

TEST_P(IorBackends, WritesAndReadsBackVerified) {
  const auto [api, fpp] = GetParam();
  Testbed tb(small_cluster());
  tb.start();
  IorRunner runner(tb, /*ppn=*/4);
  const IorResult res = runner.run(small_job(api, fpp));

  EXPECT_EQ(res.verify_errors, 0u) << to_string(api);
  EXPECT_EQ(res.read_fill_errors, 0u) << to_string(api);
  // 8 ranks x 1 MiB x 2 segments = 16 MiB per phase.
  EXPECT_EQ(res.write.bytes, 16u * kMiB);
  EXPECT_EQ(res.read.bytes, 16u * kMiB);
  EXPECT_GT(res.write.seconds, 0.0);
  EXPECT_GT(res.read.seconds, 0.0);
  EXPECT_GT(res.write.gib_per_sec(), 0.0);
  tb.stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllApis, IorBackends,
    ::testing::Combine(::testing::Values(Api::posix, Api::dfs, Api::mpiio, Api::hdf5,
                                         Api::daos_array),
                       ::testing::Values(true, false)),
    [](const auto& tp) {
      return std::string(to_string(std::get<0>(tp.param))) +
             (std::get<1>(tp.param) ? "_easy" : "_hard");
    });

TEST(Ior, CollectiveMpiioSharedFileVerifies) {
  Testbed tb(small_cluster());
  tb.start();
  IorRunner runner(tb, 4);
  auto cfg = small_job(Api::mpiio, /*fpp=*/false);
  cfg.collective = true;
  const IorResult res = runner.run(cfg);
  EXPECT_EQ(res.verify_errors, 0u);
  EXPECT_EQ(res.read_fill_errors, 0u);
  tb.stop();
}

TEST(Ior, ReorderTasksReadsNeighbourData) {
  Testbed tb(small_cluster());
  tb.start();
  IorRunner runner(tb, 4);
  auto cfg = small_job(Api::dfs, true);
  cfg.reorder_tasks = true;
  const IorResult res = runner.run(cfg);
  EXPECT_EQ(res.verify_errors, 0u);
  tb.stop();
}

TEST(Ior, NoReorderAlsoVerifies) {
  Testbed tb(small_cluster());
  tb.start();
  IorRunner runner(tb, 4);
  auto cfg = small_job(Api::dfs, false);
  cfg.reorder_tasks = false;
  const IorResult res = runner.run(cfg);
  EXPECT_EQ(res.verify_errors, 0u);
  tb.stop();
}

TEST(Ior, ReadAtSnapshotVerifiesOnPinnedEpoch) {
  Testbed tb(small_cluster());
  tb.start();
  IorRunner runner(tb, 4);
  for (const bool fpp : {true, false}) {
    auto cfg = small_job(Api::daos_array, fpp);
    cfg.read_at_snapshot = true;
    const IorResult res = runner.run(cfg);
    EXPECT_EQ(res.verify_errors, 0u) << (fpp ? "easy" : "hard");
    EXPECT_EQ(res.read_fill_errors, 0u) << (fpp ? "easy" : "hard");
  }
  // Each job registered its read-phase snapshot with the pool service.
  tb.run([&]() -> sim::CoTask<void> {
    auto snaps = co_await tb.client(0).list_snapshots(cluster::kPoolUuid);
    CO_ASSERT_OK(snaps);
    CO_ASSERT_EQ(snaps->size(), 2u);
  });
  tb.stop();
}

TEST(Ior, MultipleJobsOnOneRunner) {
  Testbed tb(small_cluster());
  tb.start();
  IorRunner runner(tb, 2);
  for (Api api : {Api::dfs, Api::posix}) {
    auto cfg = small_job(api, true);
    const IorResult res = runner.run(cfg);
    EXPECT_EQ(res.verify_errors, 0u) << to_string(api);
  }
  tb.stop();
}

TEST(Ior, ObjectClassChangesPlacementSpread) {
  // S1 file-per-process with few ranks touches few targets; SX touches many.
  Testbed tb1(small_cluster(1));
  tb1.start();
  IorRunner r1(tb1, 2);
  auto cfg = small_job(Api::dfs, true);
  cfg.oclass = std::uint8_t(client::ObjClass::S1);
  cfg.verify = false;
  (void)r1.run(cfg);
  std::uint64_t s1_engines = 0;
  for (std::uint32_t e = 0; e < tb1.engine_count(); ++e) {
    s1_engines += tb1.engine(e).updates_served() > 0;
  }
  tb1.stop();

  Testbed tb2(small_cluster(1));
  tb2.start();
  IorRunner r2(tb2, 2);
  cfg.oclass = std::uint8_t(client::ObjClass::SX);
  (void)r2.run(cfg);
  std::uint64_t sx_engines = 0;
  for (std::uint32_t e = 0; e < tb2.engine_count(); ++e) {
    sx_engines += tb2.engine(e).updates_served() > 0;
  }
  tb2.stop();
  EXPECT_GE(sx_engines, s1_engines);
  EXPECT_EQ(sx_engines, 4u);  // SX spreads over every engine
}

TEST(Ior, MetadataOnlyModeRunsLargeJob) {
  auto ccfg = small_cluster();
  ccfg.payload = vos::PayloadMode::discard;
  Testbed tb(ccfg);
  tb.start();
  IorRunner runner(tb, 4);
  IorConfig cfg;
  cfg.api = Api::dfs;
  cfg.transfer_size = 4 * kMiB;
  cfg.block_size = 32 * kMiB;  // 8 ranks x 32 MiB with no payload memory
  cfg.verify = false;
  const IorResult res = runner.run(cfg);
  EXPECT_EQ(res.read_fill_errors, 0u);
  EXPECT_GT(res.write.gib_per_sec(), 0.0);
  EXPECT_GT(res.read.gib_per_sec(), 0.0);
  tb.stop();
}

TEST(Ior, ReadsFasterThanWrites) {
  // Optane's read/write asymmetry must show through the whole stack. Use the
  // shared-file mode: a single object keeps every target's stream context
  // warm, so media asymmetry (not cold-stream switching) dominates.
  auto ccfg = small_cluster();
  ccfg.payload = vos::PayloadMode::discard;
  Testbed tb(ccfg);
  tb.start();
  IorRunner runner(tb, 8);
  IorConfig cfg;
  cfg.api = Api::dfs;
  cfg.file_per_process = false;
  cfg.transfer_size = 4 * kMiB;
  cfg.block_size = 64 * kMiB;
  cfg.verify = false;
  const IorResult res = runner.run(cfg);
  EXPECT_GT(res.read.gib_per_sec(), res.write.gib_per_sec());
  tb.stop();
}

TEST(Ior, Hdf5SlowerThanDfsInEasyMode) {
  // The paper's headline FPP observation: HDF5 over DFuse well below DFS.
  auto ccfg = small_cluster();
  ccfg.payload = vos::PayloadMode::discard;
  Testbed tb(ccfg);
  tb.start();
  IorRunner runner(tb, 8);
  IorConfig cfg;
  cfg.transfer_size = 4 * kMiB;
  cfg.block_size = 32 * kMiB;
  cfg.verify = false;
  cfg.api = Api::dfs;
  const IorResult dfs_res = runner.run(cfg);
  cfg.api = Api::hdf5;
  const IorResult h5_res = runner.run(cfg);
  EXPECT_LT(h5_res.write.gib_per_sec(), dfs_res.write.gib_per_sec());
  EXPECT_LT(h5_res.read.gib_per_sec(), dfs_res.read.gib_per_sec());
  tb.stop();
}

TEST(Ior, EqDepthPipelinesTransfersAndVerifies) {
  // The daos_event model: each rank keeps eq_depth transfers in flight. A
  // deeper queue overlaps RPC round-trips and must never be slower than
  // issuing the same transfers serially — while still verifying every byte.
  auto run = [](std::uint32_t depth) {
    Testbed tb(small_cluster());
    tb.start();
    IorRunner runner(tb, /*ppn=*/4, /*chunk_size=*/64 * kKiB);
    IorConfig cfg = small_job(Api::dfs, /*fpp=*/true);
    cfg.eq_depth = depth;
    const IorResult res = runner.run(cfg);
    tb.stop();
    return res;
  };
  const IorResult eq1 = run(1);
  const IorResult eq4 = run(4);
  EXPECT_EQ(eq1.verify_errors, 0u);
  EXPECT_EQ(eq4.verify_errors, 0u);
  EXPECT_EQ(eq4.read_fill_errors, 0u);
  EXPECT_EQ(eq4.write.bytes, eq1.write.bytes);
  EXPECT_EQ(eq4.read.bytes, eq1.read.bytes);
  EXPECT_LT(eq4.write.seconds, eq1.write.seconds) << "deeper queue failed to pipeline writes";
  EXPECT_LE(eq4.read.seconds, eq1.read.seconds);
}

TEST(Ior, PatternHelpersRoundTrip) {
  std::vector<std::byte> buf(4096);
  fill_pattern(buf, 777, 42);
  EXPECT_EQ(check_pattern(buf, 777, 42), 0u);
  EXPECT_GT(check_pattern(buf, 778, 42), 0u);
  EXPECT_GT(check_pattern(buf, 777, 43), 0u);
}

}  // namespace
}  // namespace daosim::ior
