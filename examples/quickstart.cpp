// Quickstart: bring up a simulated DAOS cluster, create a container, and use
// the three API levels the paper discusses — the native KV/array object API,
// the DFS file API, and the POSIX path through a DFuse mount.
#include <cstdio>
#include <cstring>

#include "ior/ior.hpp"

using namespace daosim;
using cluster::kPoolUuid;
using sim::CoTask;

int main() {
  // A small cluster: 2 server nodes x 2 engines x 4 targets, 1 client node.
  cluster::ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cluster::Testbed tb(cfg);
  tb.start();  // elects the pool-service Raft leader

  tb.run([&]() -> CoTask<void> {
    auto& client = tb.client(0);

    // 1. Container (pool-service metadata, Raft-replicated).
    pool::ContProps props;
    props.chunk_size = 1 * kMiB;
    auto cont = co_await client.cont_create(kPoolUuid, props);
    std::printf("container created: %s\n", cont.ok() ? "ok" : errno_name(cont.error()));

    // 2. Native object API: a KV record and a striped byte array.
    client::KvObject kv(client, kPoolUuid, client::make_oid(1, client::ObjClass::S1));
    const char* msg = "hello daos";
    std::vector<std::byte> value(std::strlen(msg));
    std::memcpy(value.data(), msg, value.size());
    co_await kv.put("greetings", "en", value);
    auto got = co_await kv.get("greetings", "en");
    std::printf("kv round-trip: %.*s\n", int(got->size()),
                reinterpret_cast<const char*>(got->data()));

    client::ArrayObject arr(client, kPoolUuid, client::make_oid(2, client::ObjClass::SX),
                            1 * kMiB);
    std::vector<std::byte> data(4 * kMiB);
    ior::fill_pattern(data, 0, 7);
    co_await arr.write(0, data.size(), data);
    auto size = co_await arr.size();
    std::printf("array written: %s across %u shards\n", format_bytes(*size).c_str(),
                arr.shard_count());

    // 3. DFS: the same storage through a filesystem namespace.
    auto dfs = co_await dfs::DfsMount::mount(client, kPoolUuid);
    (void)co_await (*dfs)->mkdir("/demo");
    dfs::OpenFlags oflags;
    oflags.create = true;
    auto file = co_await (*dfs)->open("/demo/data.bin", oflags);
    co_await file->write(0, data.size(), data);
    auto st = co_await (*dfs)->stat("/demo/data.bin");
    std::printf("dfs file size: %s\n", format_bytes(st->size).c_str());

    // 4. POSIX through DFuse (what MPI-IO and HDF5 use in the paper).
    posix::DfuseMount dfuse(tb.sched(), **dfs, posix::DfuseConfig{});
    posix::VfsOpenFlags pflags;
    auto fd = co_await dfuse.open("/demo/data.bin", pflags);
    std::vector<std::byte> back(data.size());
    auto n = co_await dfuse.pread(*fd, 0, back);
    std::printf("posix read back %s, pattern %s (virtual time %.3f ms)\n",
                format_bytes(*n).c_str(),
                ior::check_pattern(back, 0, 7) == 0 ? "OK" : "CORRUPT",
                double(tb.sched().now()) / 1e6);
    (void)co_await dfuse.close(*fd);
  });

  tb.stop();
  return 0;
}
