// ior_cli: a command-line IOR front-end for the simulated cluster, with the
// familiar flag names. Example:
//   ior_cli -a DFS -t 8m -b 32m -N 8 -n 16 -F -o SX
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fault/fault.hpp"
#include "ior/ior.hpp"
#include "telemetry/telemetry.hpp"

using namespace daosim;

namespace {

std::uint64_t parse_size(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || v <= 0) return 0;  // caller treats 0 as a parse error
  std::uint64_t mult = 1;
  if (end != nullptr) {
    switch (*end) {
      case 'k': case 'K': mult = kKiB; break;
      case 'm': case 'M': mult = kMiB; break;
      case 'g': case 'G': mult = kGiB; break;
      default: break;
    }
  }
  return std::uint64_t(v * double(mult));
}

int usage() {
  std::fprintf(stderr,
               "usage: ior_cli [options]\n"
               "  -a API     POSIX | DFS | MPIIO | HDF5 | DAOS   (default DFS)\n"
               "  -t SIZE    transfer size (default 8m)\n"
               "  -b SIZE    block size per rank (default 32m)\n"
               "  -s N       segments (default 1)\n"
               "  -N N       client nodes (default 4)\n"
               "  -n N       ranks per node (default 16)\n"
               "  -F         file-per-process (easy mode; default shared file)\n"
               "  -c         MPI-IO collective buffering\n"
               "  -o CLASS   object class S1|S2|S4|S8|SX|RP_2G1|RP_2G2|RP_2GX (default SX)\n"
               "  -S N       server nodes (default 8)\n"
               "  -V         store payloads and verify data\n"
               "  --eq-depth N      transfers in flight per rank via the client\n"
               "                    event queue (default 1 = blocking; docs/io_path.md)\n"
               "  --max-batch-extents N  extents coalesced per object RPC\n"
               "                    (default 16; 1 = legacy one-RPC-per-extent)\n"
               "  --faults SPEC     fault schedule, e.g. crash@200ms:e3 (docs/faults.md)\n"
               "  --fault-seed N    seed for probabilistic faults (default 1)\n"
               "  --wait-rebuild    after the job, wait for self-healing to converge\n"
               "  --rebuild-inflight N  per-engine rebuild transfer slots (default 4)\n"
               "  --metrics-dump PATH   dump the metric tree after the job (.csv ext\n"
               "                        selects CSV, anything else JSON; docs/telemetry.md)\n"
               "  --trace-out PATH      Chrome trace-event JSON of RPC/transfer/rebuild\n"
               "                        spans (open in Perfetto / chrome://tracing)\n"
               "  --trace-sample N      trace 1 in N client ops (default 1 = all, 0 = off;\n"
               "                        seeded and deterministic; docs/tracing.md)\n"
               "  --critical-path       print per-op critical-path stage attribution\n"
               "                        (implied by --trace-out / --slow-ops)\n"
               "  --slow-ops US         after the job, dump the top-10 sampled ops taking\n"
               "                        at least US microseconds, with stage breakdowns\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ior::IorConfig cfg;
  cfg.api = ior::Api::dfs;
  cfg.file_per_process = false;
  std::uint32_t client_nodes = 4, ppn = 16, servers = 8;
  bool verify = false;
  std::string fault_spec;
  std::uint64_t fault_seed = 1;
  bool wait_rebuild = false;
  std::uint32_t rebuild_inflight = 4;
  std::uint32_t max_batch_extents = client::ClientConfig{}.max_batch_extents;
  std::string metrics_path;
  std::string trace_path;
  std::uint64_t trace_sample = 1;
  bool critical_path = false;
  std::int64_t slow_us = -1;  // < 0: no slow-op dump

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Long flags accept both "--flag value" and "--flag=value".
    std::string inline_val;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_val = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> const char* {
      if (has_inline) return inline_val.c_str();
      if (++i >= argc) {
        std::fprintf(stderr, "ior_cli: %s requires a value\n", arg.c_str());
        std::exit(usage());
      }
      return argv[i];
    };
    if (arg == "-a") {
      const std::string api = next();
      if (api == "POSIX") cfg.api = ior::Api::posix;
      else if (api == "DFS") cfg.api = ior::Api::dfs;
      else if (api == "MPIIO") cfg.api = ior::Api::mpiio;
      else if (api == "HDF5") cfg.api = ior::Api::hdf5;
      else if (api == "DAOS") cfg.api = ior::Api::daos_array;
      else return usage();
    } else if (arg == "-t") cfg.transfer_size = parse_size(next());
    else if (arg == "-b") cfg.block_size = parse_size(next());
    else if (arg == "-s") cfg.segments = std::uint32_t(std::atoi(next()));
    else if (arg == "-N") client_nodes = std::uint32_t(std::atoi(next()));
    else if (arg == "-n") ppn = std::uint32_t(std::atoi(next()));
    else if (arg == "-F") cfg.file_per_process = true;
    else if (arg == "-c") cfg.collective = true;
    else if (arg == "-S") servers = std::uint32_t(std::atoi(next()));
    else if (arg == "-V") verify = true;
    else if (arg == "--eq-depth") {
      const int v = std::atoi(next());
      if (v <= 0) {
        std::fprintf(stderr, "ior_cli: --eq-depth must be positive\n");
        return usage();
      }
      cfg.eq_depth = std::uint32_t(v);
    }
    else if (arg == "--max-batch-extents") {
      const int v = std::atoi(next());
      if (v <= 0) {
        std::fprintf(stderr, "ior_cli: --max-batch-extents must be positive\n");
        return usage();
      }
      max_batch_extents = std::uint32_t(v);
    }
    else if (arg == "--faults") fault_spec = next();
    else if (arg == "--fault-seed") fault_seed = std::uint64_t(std::strtoull(next(), nullptr, 10));
    else if (arg == "--wait-rebuild") wait_rebuild = true;
    else if (arg == "--rebuild-inflight") {
      const int v = std::atoi(next());
      if (v <= 0) {
        std::fprintf(stderr, "ior_cli: --rebuild-inflight must be positive\n");
        return usage();
      }
      rebuild_inflight = std::uint32_t(v);
    }
    else if (arg == "--metrics-dump") metrics_path = next();
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--trace-sample") {
      const char* v = next();
      char* end = nullptr;
      trace_sample = std::uint64_t(std::strtoull(v, &end, 10));
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "ior_cli: --trace-sample must be a non-negative integer\n");
        return usage();
      }
    }
    else if (arg == "--critical-path") critical_path = true;
    else if (arg == "--slow-ops") {
      const char* v = next();
      char* end = nullptr;
      slow_us = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || slow_us < 0) {
        std::fprintf(stderr, "ior_cli: --slow-ops must be a non-negative microsecond count\n");
        return usage();
      }
    }
    else if (arg == "-o") {
      const std::string oc = next();
      using client::ObjClass;
      if (oc == "S1") cfg.oclass = std::uint8_t(ObjClass::S1);
      else if (oc == "S2") cfg.oclass = std::uint8_t(ObjClass::S2);
      else if (oc == "S4") cfg.oclass = std::uint8_t(ObjClass::S4);
      else if (oc == "S8") cfg.oclass = std::uint8_t(ObjClass::S8);
      else if (oc == "SX") cfg.oclass = std::uint8_t(ObjClass::SX);
      else if (oc == "RP_2G1") cfg.oclass = std::uint8_t(ObjClass::RP_2G1);
      else if (oc == "RP_2G2") cfg.oclass = std::uint8_t(ObjClass::RP_2G2);
      else if (oc == "RP_2GX") cfg.oclass = std::uint8_t(ObjClass::RP_2GX);
      else return usage();
    } else {
      return usage();
    }
  }
  cfg.verify = verify;

  if (cfg.transfer_size == 0 || cfg.block_size == 0 || cfg.segments == 0 ||
      client_nodes == 0 || ppn == 0 || servers == 0) {
    std::fprintf(stderr, "ior_cli: sizes and counts must be positive\n");
    return usage();
  }
  if (cfg.block_size % cfg.transfer_size != 0) {
    std::fprintf(stderr, "ior_cli: block size (-b) must be a multiple of transfer size (-t)\n");
    return usage();
  }
  if (cfg.collective && cfg.eq_depth > 1) {
    std::fprintf(stderr,
                 "ior_cli: --eq-depth > 1 is incompatible with collective I/O (-c): "
                 "two-phase exchange orders each rank's transfers\n");
    return usage();
  }

  cluster::ClusterConfig ccfg;
  ccfg.server_nodes = servers;
  ccfg.engines_per_server = 2;
  ccfg.targets_per_engine = 8;
  ccfg.client_nodes = client_nodes;
  ccfg.payload = verify ? vos::PayloadMode::store : vos::PayloadMode::discard;
  ccfg.rebuild.max_inflight = rebuild_inflight;
  ccfg.client.max_batch_extents = max_batch_extents;
  ccfg.client.trace_sample = trace_sample;
  ccfg.client.trace_seed = ccfg.seed;

  std::printf("IOR (daosim) -a %s %s t=%s b=%s segs=%u  %u nodes x %u ppn, %u servers\n",
              ior::to_string(cfg.api), cfg.file_per_process ? "file-per-process" : "shared-file",
              format_bytes(cfg.transfer_size).c_str(), format_bytes(cfg.block_size).c_str(),
              cfg.segments, client_nodes, ppn, servers);

  cluster::Testbed tb(ccfg);
  telemetry::TraceLog trace;
  const bool tracing = !trace_path.empty() || critical_path || slow_us >= 0;
  if (tracing) {
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      trace.set_process_name(tb.engine(e).node(), strfmt("engine/%u", tb.engine(e).node()));
    }
    for (std::uint32_t c = 0; c < tb.client_node_count(); ++c) {
      const net::NodeId n = tb.client(c).endpoint().node();
      trace.set_process_name(n, strfmt("client/%u", n));
    }
    // The chrome dump wants the full span log; in-process analysis only
    // needs the sampled trees, so skip the rest when not writing a file.
    trace.set_keep_unsampled(!trace_path.empty());
    tb.attach_trace(&trace);
  }
  tb.start();
  if (!fault_spec.empty()) {
    Result<fault::Schedule> sched = fault::Schedule::parse(fault_spec);
    if (!sched.ok()) {
      std::fprintf(stderr, "ior_cli: bad --faults spec '%s' (see docs/faults.md)\n",
                   fault_spec.c_str());
      return 2;
    }
    if (!sched->validate(tb.engine_count(), ccfg.targets_per_engine).ok()) {
      std::fprintf(stderr,
                   "ior_cli: --faults names an engine/target outside the cluster "
                   "(%u engines x %u targets)\n",
                   tb.engine_count(), ccfg.targets_per_engine);
      return 2;
    }
    const fault::Injector& inj = tb.inject_faults(*sched, fault_seed);
    std::printf("faults: %zu events armed, seed %llu\n", sched->events().size(),
                static_cast<unsigned long long>(fault_seed));
    (void)inj;
  }
  ior::IorRunner runner(tb, ppn);
  const ior::IorResult res = runner.run(cfg);
  std::printf("write: %10.2f GiB/s  (%s in %.3f s)\n", res.write.gib_per_sec(),
              format_bytes(res.write.bytes).c_str(), res.write.seconds);
  std::printf("read:  %10.2f GiB/s  (%s in %.3f s)\n", res.read.gib_per_sec(),
              format_bytes(res.read.bytes).c_str(), res.read.seconds);
  if (res.write_rpc_latency.count > 0) {
    std::printf("write rpc: %llu updates, p50 %.1f us, p99 %.1f us\n",
                static_cast<unsigned long long>(res.write_rpc_latency.count),
                res.write_rpc_latency.percentile_ns(50) / 1e3,
                res.write_rpc_latency.percentile_ns(99) / 1e3);
  }
  if (res.read_rpc_latency.count > 0) {
    std::printf("read rpc:  %llu fetches, p50 %.1f us, p99 %.1f us\n",
                static_cast<unsigned long long>(res.read_rpc_latency.count),
                res.read_rpc_latency.percentile_ns(50) / 1e3,
                res.read_rpc_latency.percentile_ns(99) / 1e3);
  }
  if (tracing) {
    // Critical-path attribution next to the p50/p99 lines: mean us per op,
    // split across the six pipeline stages (docs/tracing.md).
    const auto prof = trace.profile_ops();
    std::printf("critical path (1/%llu sampled, mean us/op by stage):\n",
                static_cast<unsigned long long>(trace_sample));
    std::printf("  %-14s %8s", "op", "count");
    for (std::size_t st = 0; st < telemetry::TraceLog::kStages; ++st) {
      std::printf(" %12s", telemetry::TraceLog::stage_name(st));
    }
    std::printf(" %12s\n", "total");
    for (const auto& [name, p] : prof) {
      std::printf("  %-14s %8llu", name.c_str(), static_cast<unsigned long long>(p.count));
      for (std::size_t st = 0; st < telemetry::TraceLog::kStages; ++st) {
        std::printf(" %12.1f", double(p.stages.ns[st]) / double(p.count) / 1e3);
      }
      std::printf(" %12.1f\n", double(p.stages.total_ns()) / double(p.count) / 1e3);
    }
  }
  if (slow_us >= 0) {
    std::ostringstream slow;
    tb.dump_slow_ops(slow, sim::Time(slow_us) * 1000, 10);
    std::printf("%s", slow.str().c_str());
  }
  if (verify) {
    std::printf("verify: %llu bad bytes, %llu short reads\n",
                static_cast<unsigned long long>(res.verify_errors),
                static_cast<unsigned long long>(res.read_fill_errors));
  }
  if (res.data_loss_events > 0) {
    std::printf("data loss: %llu reads hit a group with every replica gone\n",
                static_cast<unsigned long long>(res.data_loss_events));
  }
  if (wait_rebuild) {
    const bool healed = tb.wait_rebuild();
    std::uint64_t moved = 0;
    for (std::uint32_t e = 0; e < tb.engine_count(); ++e) {
      moved += tb.rebuild_service(e).bytes_rebuilt();
    }
    std::printf("rebuild: %s, %s re-replicated\n", healed ? "converged" : "TIMED OUT",
                format_bytes(moved).c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::fprintf(stderr, "ior_cli: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    const bool csv = metrics_path.size() >= 4 &&
                     metrics_path.compare(metrics_path.size() - 4, 4, ".csv") == 0;
    tb.dump_metrics(os, csv ? telemetry::DumpFormat::csv : telemetry::DumpFormat::json);
    std::printf("metrics: %s (%s)\n", metrics_path.c_str(), csv ? "csv" : "json");
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    if (!os) {
      std::fprintf(stderr, "ior_cli: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace.write_chrome_json(os);
    std::printf("trace: %s (%zu spans)\n", trace_path.c_str(), trace.size());
  }
  tb.stop();
  return 0;
}
