// Producer/consumer over DTX and snapshots: a producer commits each batch of
// records as ONE distributed transaction (all-or-nothing across the shards
// the batch lands on), then registers a container snapshot naming that
// consistent cut. A consumer on another client node reads every batch at its
// snapshot epoch while the producer races ahead — torn batches are
// impossible by construction, and each verified snapshot is destroyed so
// aggregation can reclaim the superseded versions behind it.
#include <cstdio>
#include <cstring>

#include "client/tx.hpp"
#include "ior/ior.hpp"

using namespace daosim;
using cluster::kPoolUuid;
using sim::CoTask;

namespace {

constexpr std::uint32_t kBatches = 20;
constexpr std::uint32_t kRecords = 8;  // per batch, spread across shards

std::vector<std::byte> record_value(std::uint32_t batch, std::uint32_t rec) {
  const std::string s = strfmt("batch=%u rec=%u payload", batch, rec);
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

}  // namespace

int main() {
  cluster::ClusterConfig cfg;
  cfg.server_nodes = 2;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 4;
  cfg.client_nodes = 2;  // producer on node 0, consumer on node 1
  cluster::Testbed tb(cfg);
  tb.start();

  const auto oid = client::make_oid(1, client::ObjClass::RP_2G2);
  std::uint64_t produced = 0, verified = 0, torn = 0, reclaimed = 0;

  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, {});
    DAOSIM_REQUIRE(created.ok(), "cont_create: %s", errno_name(created.error()));

    // Snapshot epochs flow producer -> consumer; 0 is the end-of-stream mark.
    sim::Channel<vos::Epoch> ready(tb.sched());

    sim::WaitGroup wg(tb.sched());
    wg.spawn([&]() -> CoTask<void> {  // producer
      auto& cl = tb.client(0);
      for (std::uint32_t b = 0; b < kBatches; ++b) {
        const Errno rc =
            co_await cl.run_tx(kPoolUuid, [&](client::TxHandle& tx) -> CoTask<Errno> {
              for (std::uint32_t r = 0; r < kRecords; ++r) {
                tx.kv_put(oid, strfmt("b%03u", b), strfmt("r%u", r), record_value(b, r));
              }
              co_return Errno::ok;
            });
        DAOSIM_REQUIRE(rc == Errno::ok, "batch %u commit: %s", b, errno_name(rc));
        ++produced;
        auto snap = co_await cl.snapshot_create(kPoolUuid);
        DAOSIM_REQUIRE(snap.ok(), "snapshot: %s", errno_name(snap.error()));
        ready.push(*snap);
      }
      ready.push(0);
    });

    wg.spawn([&]() -> CoTask<void> {  // consumer
      auto& cl = tb.client(1);
      client::KvObject kv(cl, kPoolUuid, oid);
      for (std::uint32_t b = 0;; ++b) {
        const vos::Epoch snap = co_await ready.pop();
        if (snap == 0) break;
        // Batch b committed before snapshot b was cut: every record must be
        // present at that epoch, byte-for-byte — a missing or partial batch
        // would mean the transaction tore.
        for (std::uint32_t r = 0; r < kRecords; ++r) {
          auto got = co_await kv.get(strfmt("b%03u", b), strfmt("r%u", r), snap);
          if (!got.ok() || *got != record_value(b, r)) ++torn;
        }
        // And batch b+1 (commit epoch above the cut, if committed at all)
        // must be invisible at it.
        auto ahead = co_await kv.get(strfmt("b%03u", b + 1), "r0", snap);
        if (ahead.ok()) ++torn;
        ++verified;
        // Done with this cut: unpin it and let aggregation squash history.
        auto gone = co_await cl.snapshot_destroy(kPoolUuid, snap);
        DAOSIM_REQUIRE(gone.ok(), "snapshot_destroy: %s", errno_name(gone.error()));
        if (b % 5 == 4 && (co_await cl.cont_aggregate(kPoolUuid)).ok()) ++reclaimed;
      }
    });
    co_await wg.wait();
  });

  std::printf("produced %llu batches (%u records each), verified %llu snapshots, "
              "%llu torn reads, %llu aggregation passes\n",
              static_cast<unsigned long long>(produced), kRecords,
              static_cast<unsigned long long>(verified),
              static_cast<unsigned long long>(torn),
              static_cast<unsigned long long>(reclaimed));
  tb.stop();
  return torn == 0 ? 0 : 1;
}
