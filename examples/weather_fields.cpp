// Weather-field I/O: the workload motivating the authors' interest in DAOS
// (ECMWF numerical weather prediction). A model step writes hundreds of
// small-ish 2D fields (one file each, like FDB objects); a post-processing
// step reads a subset back. This is the many-small-files pattern that
// stresses parallel-filesystem metadata — exactly where the paper argues
// object stores help.
#include <cstdio>

#include "ior/ior.hpp"

using namespace daosim;
using cluster::kPoolUuid;
using sim::CoTask;

namespace {

constexpr std::uint32_t kWriters = 16;       // model ranks on one client node
constexpr std::uint32_t kFieldsPerRank = 24; // fields per step per rank
constexpr std::uint64_t kFieldBytes = 2 * kMiB;  // one global field at ~9 km

CoTask<void> write_step(dfs::DfsMount& dfs, std::uint32_t rank, std::uint32_t step,
                        std::shared_ptr<std::uint64_t> bytes) {
  for (std::uint32_t f = 0; f < kFieldsPerRank; ++f) {
    const std::string path =
        strfmt("/fdb/step%02u/rank%02u.field%02u.grib", step, rank, f);
    dfs::OpenFlags flags;
    flags.create = true;
    flags.oclass = std::uint8_t(client::ObjClass::S2);  // small files: low stripe
    auto file = co_await dfs.open(path, flags);
    if (!file.ok()) continue;
    std::vector<std::byte> field(kFieldBytes);
    ior::fill_pattern(field, 0, rank * 1000 + f);
    (void)co_await file->write(0, field.size(), field);
    *bytes += kFieldBytes;
  }
}

CoTask<void> read_fields(dfs::DfsMount& dfs, std::uint32_t rank, std::uint32_t step,
                         std::shared_ptr<std::uint64_t> bytes,
                         std::shared_ptr<std::uint64_t> errors) {
  // Post-processing reads every 4th field of the previous step.
  for (std::uint32_t f = rank % 4; f < kFieldsPerRank; f += 4) {
    const std::string path =
        strfmt("/fdb/step%02u/rank%02u.field%02u.grib", step, rank, f);
    auto file = co_await dfs.open(path, dfs::OpenFlags{});
    if (!file.ok()) {
      ++*errors;
      continue;
    }
    std::vector<std::byte> out(kFieldBytes);
    auto n = co_await file->read(0, out);
    if (!n.ok() || *n != kFieldBytes ||
        ior::check_pattern(out, 0, rank * 1000 + f) != 0) {
      ++*errors;
    }
    *bytes += kFieldBytes;
  }
}

}  // namespace

int main() {
  cluster::ClusterConfig cfg;
  cfg.server_nodes = 4;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 8;
  cluster::Testbed tb(cfg);
  tb.start();

  tb.run([&]() -> CoTask<void> {
    auto& client = tb.client(0);
    auto created = co_await client.cont_create(kPoolUuid, pool::ContProps{1 * kMiB, 0});
    DAOSIM_REQUIRE(created.ok(), "cont_create: %s", errno_name(created.error()));
    auto mount = co_await dfs::DfsMount::mount(client, kPoolUuid);
    auto& dfs = **mount;
    (void)co_await dfs.mkdir("/fdb");

    for (std::uint32_t step = 0; step < 2; ++step) {
      const std::string dir = strfmt("/fdb/step%02u", step);
      (void)co_await dfs.mkdir(dir);

      auto bytes = std::make_shared<std::uint64_t>(0);
      const sim::Time t0 = tb.sched().now();
      sim::WaitGroup wg(tb.sched());
      for (std::uint32_t r = 0; r < kWriters; ++r) wg.spawn(write_step(dfs, r, step, bytes));
      co_await wg.wait();
      const double ws = sim::to_seconds(tb.sched().now() - t0);
      std::printf("step %u: wrote %4u fields (%s) in %6.1f ms -> %6.2f GiB/s\n", step,
                  kWriters * kFieldsPerRank, format_bytes(*bytes).c_str(), ws * 1e3,
                  double(*bytes) / double(kGiB) / ws);

      auto rbytes = std::make_shared<std::uint64_t>(0);
      auto errors = std::make_shared<std::uint64_t>(0);
      const sim::Time t1 = tb.sched().now();
      sim::WaitGroup rg(tb.sched());
      for (std::uint32_t r = 0; r < kWriters; ++r) {
        rg.spawn(read_fields(dfs, r, step, rbytes, errors));
      }
      co_await rg.wait();
      const double rs = sim::to_seconds(tb.sched().now() - t1);
      std::printf("step %u: post-processed %s in %6.1f ms -> %6.2f GiB/s (%llu errors)\n",
                  step, format_bytes(*rbytes).c_str(), rs * 1e3,
                  double(*rbytes) / double(kGiB) / rs, static_cast<unsigned long long>(*errors));
    }
    // The namespace is enumerable like any filesystem.
    auto steps = co_await dfs.readdir("/fdb");
    std::printf("catalogue: %zu steps under /fdb\n", steps->size());
  });

  tb.stop();
  return 0;
}
