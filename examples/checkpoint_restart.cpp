// Checkpoint/restart: the classic HPC bulk-I/O pattern (IOR easy mode is its
// proxy). A 64-rank job on 4 client nodes checkpoints through the POSIX
// (DFuse) interface — the path unmodified applications use — then commits a
// per-node checkpoint manifest as one distributed transaction each (the
// bulk-synchronous epilogue: a restart sees a node's manifest entirely or
// not at all, never a torn file list), and finally restarts and reads the
// checkpoint back, with integrity verification against the manifest.
#include <cstdio>
#include <cstring>

#include "client/tx.hpp"
#include "ior/ior.hpp"

using namespace daosim;
using cluster::kPoolUuid;
using sim::CoTask;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kPpn = 16;
constexpr std::uint64_t kRankState = 16 * kMiB;

std::vector<std::byte> manifest_entry(std::uint32_t rank) {
  const std::string s = strfmt("/ckpt/rank%04u.dat %llu", rank,
                               static_cast<unsigned long long>(kRankState));
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

CoTask<void> checkpoint_rank(posix::DfuseMount& mount, std::uint32_t rank,
                             std::shared_ptr<std::uint64_t> errors) {
  const std::string path = strfmt("/ckpt/rank%04u.dat", rank);
  posix::VfsOpenFlags flags;
  flags.create = true;
  flags.truncate = true;
  flags.oclass = std::uint8_t(client::ObjClass::S2);
  auto fd = co_await mount.open(path, flags);
  if (!fd.ok()) {
    ++*errors;
    co_return;
  }
  std::vector<std::byte> state(kRankState);
  ior::fill_pattern(state, 0, rank);
  auto n = co_await mount.pwrite(*fd, 0, state.size(), state);
  if (!n.ok() || *n != kRankState) ++*errors;
  (void)co_await mount.fsync(*fd);
  (void)co_await mount.close(*fd);
}

CoTask<void> restart_rank(posix::DfuseMount& mount, std::uint32_t rank,
                          std::shared_ptr<std::uint64_t> errors) {
  const std::string path = strfmt("/ckpt/rank%04u.dat", rank);
  auto fd = co_await mount.open(path, posix::VfsOpenFlags{.read_only = true});
  if (!fd.ok()) {
    ++*errors;
    co_return;
  }
  std::vector<std::byte> state(kRankState);
  auto n = co_await mount.pread(*fd, 0, state);
  if (!n.ok() || *n != kRankState || ior::check_pattern(state, 0, rank) != 0) ++*errors;
  (void)co_await mount.close(*fd);
}

}  // namespace

int main() {
  cluster::ClusterConfig cfg;
  cfg.server_nodes = 4;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 8;
  cfg.client_nodes = kNodes;
  cluster::Testbed tb(cfg);
  tb.start();

  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, pool::ContProps{1 * kMiB, 0});
    DAOSIM_REQUIRE(created.ok(), "cont_create: %s", errno_name(created.error()));
    // One DFS + DFuse mount per client node, as deployed in practice.
    std::vector<std::unique_ptr<dfs::DfsMount>> dfs_mounts;
    std::vector<std::unique_ptr<posix::DfuseMount>> mounts;
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      auto m = co_await dfs::DfsMount::mount(tb.client(n), kPoolUuid);
      dfs_mounts.push_back(std::move(*m));
      mounts.push_back(std::make_unique<posix::DfuseMount>(tb.sched(), *dfs_mounts.back(),
                                                           posix::DfuseConfig{}));
    }
    (void)co_await dfs_mounts[0]->mkdir("/ckpt");

    auto errors = std::make_shared<std::uint64_t>(0);
    const sim::Time t0 = tb.sched().now();
    sim::WaitGroup wg(tb.sched());
    for (std::uint32_t r = 0; r < kNodes * kPpn; ++r) {
      wg.spawn(checkpoint_rank(*mounts[r / kPpn], r, errors));
    }
    co_await wg.wait();
    const double ws = sim::to_seconds(tb.sched().now() - t0);
    const double gib = double(kNodes * kPpn) * double(kRankState) / double(kGiB);
    std::printf("checkpoint: %3.0f GiB from %u ranks in %6.1f ms -> %6.2f GiB/s (%llu errors)\n",
                gib, kNodes * kPpn, ws * 1e3, gib / ws, static_cast<unsigned long long>(*errors));

    // Bulk-synchronous epilogue: each node publishes its ranks' manifest
    // entries as ONE transaction on a replicated KV object. 64 files land in
    // 4 atomic commits — a crash can lose a whole node's manifest, but never
    // leave a partial one pointing at half-described state.
    const auto moid = client::make_oid(0xCC, client::ObjClass::RP_2G1);
    sim::WaitGroup mg(tb.sched());
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      mg.spawn([&, n]() -> CoTask<void> {
        const Errno rc = co_await tb.client(n).run_tx(
            kPoolUuid, [&](client::TxHandle& tx) -> CoTask<Errno> {
              for (std::uint32_t r = n * kPpn; r < (n + 1) * kPpn; ++r) {
                tx.kv_put(moid, "manifest", strfmt("rank%04u", r), manifest_entry(r));
              }
              co_return Errno::ok;
            });
        if (rc != Errno::ok) ++*errors;
      });
    }
    co_await mg.wait();
    std::printf("manifest:   %u entries committed in %u transactions\n", kNodes * kPpn,
                kNodes);

    // Restart first trusts the manifest, then the data it names.
    client::KvObject manifest(tb.client(0), kPoolUuid, moid);
    std::uint64_t intact = 0;
    for (std::uint32_t r = 0; r < kNodes * kPpn; ++r) {
      auto e = co_await manifest.get("manifest", strfmt("rank%04u", r));
      if (e.ok() && *e == manifest_entry(r)) ++intact;
    }
    if (intact != kNodes * kPpn) ++*errors;
    std::printf("restart:    manifest intact (%llu/%u entries)\n",
                static_cast<unsigned long long>(intact), kNodes * kPpn);

    const sim::Time t1 = tb.sched().now();
    sim::WaitGroup rg(tb.sched());
    for (std::uint32_t r = 0; r < kNodes * kPpn; ++r) {
      rg.spawn(restart_rank(*mounts[r / kPpn], r, errors));
    }
    co_await rg.wait();
    const double rs = sim::to_seconds(tb.sched().now() - t1);
    std::printf("restart:    %3.0f GiB in %6.1f ms -> %6.2f GiB/s (%llu errors)\n", gib,
                rs * 1e3, gib / rs, static_cast<unsigned long long>(*errors));
  });

  tb.stop();
  return 0;
}
