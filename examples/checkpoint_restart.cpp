// Checkpoint/restart: the classic HPC bulk-I/O pattern (IOR easy mode is its
// proxy). A 64-rank job on 4 client nodes checkpoints through the POSIX
// (DFuse) interface — the path unmodified applications use — then restarts
// and reads the checkpoint back, with integrity verification.
#include <cstdio>

#include "ior/ior.hpp"

using namespace daosim;
using cluster::kPoolUuid;
using sim::CoTask;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kPpn = 16;
constexpr std::uint64_t kRankState = 16 * kMiB;

CoTask<void> checkpoint_rank(posix::DfuseMount& mount, std::uint32_t rank,
                             std::shared_ptr<std::uint64_t> errors) {
  const std::string path = strfmt("/ckpt/rank%04u.dat", rank);
  posix::VfsOpenFlags flags;
  flags.create = true;
  flags.truncate = true;
  flags.oclass = std::uint8_t(client::ObjClass::S2);
  auto fd = co_await mount.open(path, flags);
  if (!fd.ok()) {
    ++*errors;
    co_return;
  }
  std::vector<std::byte> state(kRankState);
  ior::fill_pattern(state, 0, rank);
  auto n = co_await mount.pwrite(*fd, 0, state.size(), state);
  if (!n.ok() || *n != kRankState) ++*errors;
  (void)co_await mount.fsync(*fd);
  (void)co_await mount.close(*fd);
}

CoTask<void> restart_rank(posix::DfuseMount& mount, std::uint32_t rank,
                          std::shared_ptr<std::uint64_t> errors) {
  const std::string path = strfmt("/ckpt/rank%04u.dat", rank);
  auto fd = co_await mount.open(path, posix::VfsOpenFlags{.read_only = true});
  if (!fd.ok()) {
    ++*errors;
    co_return;
  }
  std::vector<std::byte> state(kRankState);
  auto n = co_await mount.pread(*fd, 0, state);
  if (!n.ok() || *n != kRankState || ior::check_pattern(state, 0, rank) != 0) ++*errors;
  (void)co_await mount.close(*fd);
}

}  // namespace

int main() {
  cluster::ClusterConfig cfg;
  cfg.server_nodes = 4;
  cfg.engines_per_server = 2;
  cfg.targets_per_engine = 8;
  cfg.client_nodes = kNodes;
  cluster::Testbed tb(cfg);
  tb.start();

  tb.run([&]() -> CoTask<void> {
    auto created = co_await tb.client(0).cont_create(kPoolUuid, pool::ContProps{1 * kMiB, 0});
    DAOSIM_REQUIRE(created.ok(), "cont_create: %s", errno_name(created.error()));
    // One DFS + DFuse mount per client node, as deployed in practice.
    std::vector<std::unique_ptr<dfs::DfsMount>> dfs_mounts;
    std::vector<std::unique_ptr<posix::DfuseMount>> mounts;
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      auto m = co_await dfs::DfsMount::mount(tb.client(n), kPoolUuid);
      dfs_mounts.push_back(std::move(*m));
      mounts.push_back(std::make_unique<posix::DfuseMount>(tb.sched(), *dfs_mounts.back(),
                                                           posix::DfuseConfig{}));
    }
    (void)co_await dfs_mounts[0]->mkdir("/ckpt");

    auto errors = std::make_shared<std::uint64_t>(0);
    const sim::Time t0 = tb.sched().now();
    sim::WaitGroup wg(tb.sched());
    for (std::uint32_t r = 0; r < kNodes * kPpn; ++r) {
      wg.spawn(checkpoint_rank(*mounts[r / kPpn], r, errors));
    }
    co_await wg.wait();
    const double ws = sim::to_seconds(tb.sched().now() - t0);
    const double gib = double(kNodes * kPpn) * double(kRankState) / double(kGiB);
    std::printf("checkpoint: %3.0f GiB from %u ranks in %6.1f ms -> %6.2f GiB/s (%llu errors)\n",
                gib, kNodes * kPpn, ws * 1e3, gib / ws, static_cast<unsigned long long>(*errors));

    const sim::Time t1 = tb.sched().now();
    sim::WaitGroup rg(tb.sched());
    for (std::uint32_t r = 0; r < kNodes * kPpn; ++r) {
      rg.spawn(restart_rank(*mounts[r / kPpn], r, errors));
    }
    co_await rg.wait();
    const double rs = sim::to_seconds(tb.sched().now() - t1);
    std::printf("restart:    %3.0f GiB in %6.1f ms -> %6.2f GiB/s (%llu errors)\n", gib,
                rs * 1e3, gib / rs, static_cast<unsigned long long>(*errors));
  });

  tb.stop();
  return 0;
}
