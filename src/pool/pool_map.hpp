// The pool map: the authoritative list of storage targets a pool spans.
// Clients receive it at connect time and place objects algorithmically
// against it (no per-I/O metadata lookups — the core DAOS scaling idea).
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "vos/types.hpp"

namespace daosim::pool {

struct TargetRef {
  net::NodeId engine = 0;      // fabric node of the owning engine
  std::uint32_t target = 0;    // target index within that engine
  bool up = true;
};

struct PoolMap {
  vos::Uuid pool;
  std::uint32_t version = 1;
  std::vector<TargetRef> targets;

  std::uint32_t target_count() const { return std::uint32_t(targets.size()); }
};

/// Container properties fixed at create time.
struct ContProps {
  std::uint64_t chunk_size = 1 << 20;  // DFS/array chunking (DAOS default 1 MiB)
  std::uint8_t oclass = 0;             // default object class (client enum value)
};

}  // namespace daosim::pool
