// The pool map: the authoritative list of storage targets a pool spans.
// Clients receive it at connect time and place objects algorithmically
// against it (no per-I/O metadata lookups — the core DAOS scaling idea).
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "vos/types.hpp"

namespace daosim::pool {

/// Target health as recorded in the pool map. `up` and `excluded` are
/// authoritative (replicated through the pool service); `down` is a client's
/// local suspicion — RPCs to the target timed out but the eviction has not
/// been committed yet. See docs/faults.md for the state machine.
enum class TargetHealth : std::uint8_t { up, down, excluded };

inline const char* to_string(TargetHealth h) {
  switch (h) {
    case TargetHealth::up: return "UP";
    case TargetHealth::down: return "DOWN";
    case TargetHealth::excluded: return "EXCLUDED";
  }
  return "?";
}

struct TargetRef {
  net::NodeId engine = 0;      // fabric node of the owning engine
  std::uint32_t target = 0;    // target index within that engine
  TargetHealth health = TargetHealth::up;
};

struct PoolMap {
  vos::Uuid pool;
  std::uint32_t version = 1;
  std::vector<TargetRef> targets;

  std::uint32_t target_count() const { return std::uint32_t(targets.size()); }
  std::uint32_t excluded_count() const {
    std::uint32_t n = 0;
    for (const auto& t : targets) n += (t.health == TargetHealth::excluded) ? 1 : 0;
    return n;
  }
};

/// Container properties fixed at create time.
struct ContProps {
  std::uint64_t chunk_size = 1 << 20;  // DFS/array chunking (DAOS default 1 MiB)
  std::uint8_t oclass = 0;             // default object class (client enum value)
};

}  // namespace daosim::pool
