// The pool service: DAOS's Raft-replicated metadata service, co-located with
// a subset of engines. It owns container metadata (create/open/destroy,
// properties) and object-ID range allocation, all serialized through the
// Raft log so every replica applies the same transactional updates.
//
// Commands are line-oriented strings (deterministic, snapshot-friendly):
//   cont_create <hi> <lo> <chunk> <oclass>   -> "ok" | "EEXIST"
//   cont_open <hi> <lo>                      -> "ok <chunk> <oclass>" | "ENOENT"
//   cont_destroy <hi> <lo>                   -> "ok" | "ENOENT"
//   alloc_oids <hi> <lo> <count>             -> "ok <base>" | "ENOENT"
//   list_conts                               -> "ok <n> <hi> <lo> ..."
//   pool_evict <engine>                      -> "ok <map_version>"   (idempotent)
//   pool_reint <engine>                      -> "ok <map_version>"   (idempotent)
//   map_query                                -> "ok <map_version> <k> <engine> ..."
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "net/rpc.hpp"
#include "pool/pool_map.hpp"
#include "raft/raft.hpp"

namespace daosim::pool {

/// Raft state machine holding the pool's container metadata.
class PoolMetaSm final : public raft::StateMachine {
 public:
  std::string apply(const std::string& command) override;
  std::string snapshot() const override;
  void restore(const std::string& snap) override;

  struct ContMeta {
    ContProps props;
    std::uint64_t oid_counter = 1;
  };
  const std::map<vos::Uuid, ContMeta>& containers() const { return containers_; }

  /// Pool-map health state, replicated through the Raft log. The version
  /// starts at 1 (the map handed out at connect) and bumps exactly once per
  /// effective eviction/reintegration; repeated evictions of the same engine
  /// are no-ops returning the current version.
  std::uint32_t map_version() const { return map_version_; }
  const std::set<net::NodeId>& excluded_engines() const { return excluded_; }

 private:
  std::map<vos::Uuid, ContMeta> containers_;
  std::uint32_t map_version_ = 1;
  std::set<net::NodeId> excluded_;
};

/// One pool-service replica, sharing an engine's RPC endpoint. The replica
/// answers kOpPoolSvc requests: the Raft leader executes the command, others
/// redirect with a leader hint.
class PoolServiceReplica {
 public:
  PoolServiceReplica(net::RpcEndpoint& ep, std::vector<net::NodeId> replicas, PoolMap map,
                     raft::RaftConfig cfg, std::uint64_t seed);

  void start() { raft_->start(); }
  void stop() { raft_->stop(); }
  bool is_leader() const { return raft_->is_leader(); }
  raft::RaftNode& raft() { return *raft_; }
  const PoolMap& pool_map() const { return map_; }
  const PoolMetaSm& meta() const { return sm_; }

 private:
  sim::CoTask<net::Reply> on_client_command(net::Request req);

  net::RpcEndpoint& ep_;
  PoolMap map_;
  PoolMetaSm sm_;
  std::unique_ptr<raft::RaftNode> raft_;
};

}  // namespace daosim::pool
