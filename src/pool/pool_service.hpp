// The pool service: DAOS's Raft-replicated metadata service, co-located with
// a subset of engines. It owns container metadata (create/open/destroy,
// properties) and object-ID range allocation, all serialized through the
// Raft log so every replica applies the same transactional updates.
//
// Commands are line-oriented strings (deterministic, snapshot-friendly):
//   cont_create <hi> <lo> <chunk> <oclass>   -> "ok" | "EEXIST"
//   cont_open <hi> <lo>                      -> "ok <chunk> <oclass>" | "ENOENT"
//   cont_destroy <hi> <lo>                   -> "ok" | "ENOENT"
//   alloc_oids <hi> <lo> <count>             -> "ok <base>" | "ENOENT"
//   list_conts                               -> "ok <n> <hi> <lo> ..."
//   pool_evict <engine>                      -> "ok <map_version>"   (idempotent)
//   pool_reint <engine>                      -> "ok <map_version>"   (idempotent)
//   map_query                                -> "ok <map_version> <k> <engine> ..."
//   rebuild_done <engine> <version>          -> "ok" | "ok dup" | "ok stale"
//   snap_create <hi> <lo> <epoch>            -> "ok" | "ENOENT"
//   snap_destroy <hi> <lo> <epoch>           -> "ok" | "ENOENT"
//   snap_list <hi> <lo>                      -> "ok <n> <epoch> ..." | "ENOENT"
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/rpc.hpp"
#include "pool/pool_map.hpp"
#include "raft/raft.hpp"
#include "telemetry/telemetry.hpp"

namespace daosim::pool {

/// Raft state machine holding the pool's container metadata.
class PoolMetaSm final : public raft::StateMachine {
 public:
  std::string apply(const std::string& command) override;
  std::string snapshot() const override;
  void restore(const std::string& snap) override;

  struct ContMeta {
    ContProps props;
    std::uint64_t oid_counter = 1;
    /// Container snapshot epochs (Raft-replicated like the rest of the
    /// metadata). Readers pin an epoch in this set; aggregation must stay
    /// below the lowest entry so pinned history is never merged away.
    std::set<vos::Epoch> snapshots;
  };
  const std::map<vos::Uuid, ContMeta>& containers() const { return containers_; }

  /// Pool-map health state, replicated through the Raft log. The version
  /// starts at 1 (the map handed out at connect) and bumps exactly once per
  /// effective eviction/reintegration; repeated evictions of the same engine
  /// are no-ops returning the current version.
  std::uint32_t map_version() const { return map_version_; }
  const std::set<net::NodeId>& excluded_engines() const { return excluded_; }

  /// One committed membership change, for the IV delta log. Rebuild requeues
  /// bump map_version() without a membership change, so the log is sparse:
  /// a fetcher applies the deltas then jumps its version to the responder's
  /// latest (MapFetchResp::latest_version).
  struct MapDelta {
    std::uint32_t version = 0;
    net::NodeId engine = 0;
    bool excluded = false;  // true: eviction; false: reintegration
  };
  /// Append-only since version 1 — deltas_since(v) is complete for any v.
  const std::vector<MapDelta>& map_deltas() const { return deltas_; }
  std::vector<MapDelta> deltas_since(std::uint32_t version) const;

  /// One rebuild task, Raft-replicated with the rest of the pool metadata:
  /// created when an eviction (or reintegration resync) becomes effective,
  /// complete when every surviving participant reported rebuild_done for its
  /// map version — so a leader crash mid-rebuild resumes from the committed
  /// `done` set instead of redoing (or losing) the task.
  struct RebuildTask {
    std::uint32_t version = 0;        // map version the task was created at
    bool resync = false;              // reintegration catch-up, not eviction
    net::NodeId node = 0;             // the evicted / reintegrated engine
    std::uint32_t since_version = 0;  // resync: map version of the eviction
    std::set<net::NodeId> excluded;   // exclusion set at task creation
    std::set<net::NodeId> participants;
    std::set<net::NodeId> done;
    bool superseded = false;  // a newer map change restarted the scan
    bool complete() const {
      if (superseded) return true;
      for (const net::NodeId p : participants) {
        if (!done.contains(p)) return false;
      }
      return true;
    }
  };

  /// Engine roster (static cluster config, derived from the pool map by every
  /// replica identically — not part of the replicated state). Rebuild tasks
  /// are only created once the roster is known.
  void set_engines(std::set<net::NodeId> engines) { engines_ = std::move(engines); }

  const std::map<std::uint32_t, RebuildTask>& rebuild_tasks() const { return rebuilds_; }
  const RebuildTask* rebuild_task(std::uint32_t version) const;
  /// Highest-version task still in flight.
  std::optional<std::uint32_t> newest_incomplete_rebuild() const;
  /// All in-flight task versions, ascending (the leader drives each in turn:
  /// after a re-queue several tasks can be pending at once).
  std::vector<std::uint32_t> incomplete_rebuilds() const;
  std::size_t rebuilds_incomplete() const;

 private:
  void start_rebuild(bool resync, net::NodeId node, std::uint32_t since_version);
  /// Creates one rebuild task at the current map version against the current
  /// exclusion set and surviving-engine roster.
  void queue_task(bool resync, net::NodeId node, std::uint32_t since_version);

  std::map<vos::Uuid, ContMeta> containers_;
  std::uint32_t map_version_ = 1;
  std::set<net::NodeId> excluded_;
  std::set<net::NodeId> engines_;
  std::map<net::NodeId, std::uint32_t> evicted_at_;  // engine -> eviction map version
  std::map<std::uint32_t, RebuildTask> rebuilds_;    // keyed by map version
  std::vector<MapDelta> deltas_;                     // IV delta log, version-ascending
};

/// One pool-service replica, sharing an engine's RPC endpoint. The replica
/// answers kOpPoolSvc requests: the Raft leader executes the command, others
/// redirect with a leader hint.
class PoolServiceReplica {
 public:
  PoolServiceReplica(net::RpcEndpoint& ep, std::vector<net::NodeId> replicas, PoolMap map,
                     raft::RaftConfig cfg, std::uint64_t seed);

  void start();
  void stop();
  bool is_leader() const { return raft_->is_leader(); }
  raft::RaftNode& raft() { return *raft_; }
  const PoolMap& pool_map() const { return map_; }
  const PoolMetaSm& meta() const { return sm_; }

  /// This replica's metric tree ("pool/<node>"): leader-side command and
  /// rebuild-report counters plus task/map-version probes.
  telemetry::Registry& telemetry() { return metrics_; }
  const telemetry::Registry& telemetry() const { return metrics_; }

 private:
  sim::CoTask<net::Reply> on_client_command(net::Request req);
  sim::CoTask<net::Reply> on_rebuild_done(net::Request req);
  /// Leader-side rebuild coordinator: a periodic tick that drives the newest
  /// incomplete task (scan -> assign). Runs on every replica; only the
  /// current leader acts, so a new leader resumes a crashed leader's task
  /// from the Raft-committed state.
  sim::CoTask<void> coordinator_loop();
  sim::CoTask<void> drive_task(std::uint32_t version);

  net::RpcEndpoint& ep_;
  PoolMap map_;
  PoolMetaSm sm_;
  telemetry::Registry metrics_;
  telemetry::Counter* commands_applied_ = nullptr;
  telemetry::Counter* rebuild_reports_ = nullptr;
  std::unique_ptr<raft::RaftNode> raft_;
  bool coord_running_ = false;
  bool driving_ = false;
  /// Consecutive scan/assign RPC failures per (task, engine): an engine that
  /// keeps failing mid-rebuild is itself evicted so the task converges.
  std::map<std::pair<std::uint32_t, net::NodeId>, int> scan_fail_;
};

}  // namespace daosim::pool
