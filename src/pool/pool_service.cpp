#include "pool/pool_service.hpp"

#include <sstream>

#include "engine/proto.hpp"

namespace daosim::pool {

using net::Body;
using net::Reply;
using net::Request;

namespace {
/// Coordinator tick: how often the leader checks for (and re-drives)
/// incomplete rebuild tasks. Re-driving is idempotent — scans are read-only
/// and rebuild_done is duplicate-guarded — so a lost RPC just costs a tick.
constexpr sim::Time kCoordTick = 50 * sim::kMs;
/// Consecutive failed scan/assign RPCs before the coordinator evicts the
/// unresponsive participant (models SWIM-style failure detection; without it
/// a participant that crashes mid-rebuild wedges the task forever).
constexpr int kScanFailEvict = 3;

// Trace-digest tags for rebuild coordination milestones.
constexpr std::uint64_t kTraceRebuildDrive = 0xFA17E005'0000'0000ULL;
constexpr std::uint64_t kTraceRebuildAssign = 0xFA17E006'0000'0000ULL;
constexpr std::uint64_t kTraceRebuildDone = 0xFA17E007'0000'0000ULL;
}  // namespace

std::string PoolMetaSm::apply(const std::string& command) {
  std::istringstream is(command);
  std::string op;
  is >> op;
  if (op == "cont_create") {
    vos::Uuid u;
    ContMeta meta;
    std::uint64_t chunk = 0;
    unsigned oclass = 0;
    is >> u.hi >> u.lo >> chunk >> oclass;
    meta.props.chunk_size = chunk;
    meta.props.oclass = std::uint8_t(oclass);
    if (containers_.contains(u)) return "EEXIST";
    containers_.emplace(u, meta);
    return "ok";
  }
  if (op == "cont_open") {
    vos::Uuid u;
    is >> u.hi >> u.lo;
    auto it = containers_.find(u);
    if (it == containers_.end()) return "ENOENT";
    return strfmt("ok %llu %u", static_cast<unsigned long long>(it->second.props.chunk_size),
                  unsigned(it->second.props.oclass));
  }
  if (op == "cont_destroy") {
    vos::Uuid u;
    is >> u.hi >> u.lo;
    return containers_.erase(u) > 0 ? "ok" : "ENOENT";
  }
  if (op == "alloc_oids") {
    vos::Uuid u;
    std::uint64_t count = 0;
    is >> u.hi >> u.lo >> count;
    auto it = containers_.find(u);
    if (it == containers_.end()) return "ENOENT";
    const std::uint64_t base = it->second.oid_counter;
    it->second.oid_counter += count;
    return strfmt("ok %llu", static_cast<unsigned long long>(base));
  }
  if (op == "list_conts") {
    std::ostringstream os;
    os << "ok " << containers_.size();
    for (const auto& [u, meta] : containers_) os << ' ' << u.hi << ' ' << u.lo;
    return os.str();
  }
  if (op == "pool_evict") {
    net::NodeId engine = 0;
    is >> engine;
    if (excluded_.insert(engine).second) {
      ++map_version_;
      evicted_at_[engine] = map_version_;
      // Delta log BEFORE start_rebuild: requeues may bump map_version_ again
      // without a membership change, and the log records only the latter.
      deltas_.push_back(MapDelta{map_version_, engine, /*excluded=*/true});
      start_rebuild(/*resync=*/false, engine, 0);
    }
    return strfmt("ok %u", map_version_);
  }
  if (op == "pool_reint") {
    net::NodeId engine = 0;
    is >> engine;
    if (excluded_.erase(engine) > 0) {
      ++map_version_;
      deltas_.push_back(MapDelta{map_version_, engine, /*excluded=*/false});
      const auto it = evicted_at_.find(engine);
      start_rebuild(/*resync=*/true, engine, it != evicted_at_.end() ? it->second : 0);
    }
    return strfmt("ok %u", map_version_);
  }
  if (op == "rebuild_done") {
    net::NodeId engine = 0;
    std::uint32_t version = 0;
    is >> engine >> version;
    auto it = rebuilds_.find(version);
    if (it == rebuilds_.end()) return "ok stale";
    // Duplicate-apply guard: a retried report (lost reply, re-driven task)
    // must not double-count the engine.
    if (!it->second.done.insert(engine).second) return "ok dup";
    return "ok";
  }
  if (op == "snap_create") {
    vos::Uuid u;
    vos::Epoch e = 0;
    is >> u.hi >> u.lo >> e;
    auto it = containers_.find(u);
    if (it == containers_.end()) return "ENOENT";
    it->second.snapshots.insert(e);  // idempotent: re-creating is a no-op
    return "ok";
  }
  if (op == "snap_destroy") {
    vos::Uuid u;
    vos::Epoch e = 0;
    is >> u.hi >> u.lo >> e;
    auto it = containers_.find(u);
    if (it == containers_.end()) return "ENOENT";
    return it->second.snapshots.erase(e) > 0 ? "ok" : "ENOENT";
  }
  if (op == "snap_list") {
    vos::Uuid u;
    is >> u.hi >> u.lo;
    auto it = containers_.find(u);
    if (it == containers_.end()) return "ENOENT";
    std::ostringstream os;
    os << "ok " << it->second.snapshots.size();
    for (const vos::Epoch e : it->second.snapshots) os << ' ' << e;
    return os.str();
  }
  if (op == "map_query") {
    std::ostringstream os;
    os << "ok " << map_version_ << ' ' << excluded_.size();
    for (const net::NodeId e : excluded_) os << ' ' << e;
    return os.str();
  }
  return "EINVAL";
}

void PoolMetaSm::start_rebuild(bool resync, net::NodeId node, std::uint32_t since_version) {
  if (engines_.empty()) return;  // no roster: rebuild coordination disabled
  // A newer map change invalidates in-flight scans (they ran against a stale
  // exclusion set), but superseding must not drop their work: an eviction
  // scan only re-replicates onto substitutes for the current exclusion set,
  // and a resync scan only pushes one engine's window diff. Anything the new
  // event's own scan does not cover is re-queued as a fresh task against the
  // new map.
  bool requeue_repair = false;
  std::map<net::NodeId, std::uint32_t> requeue_resyncs;  // node -> since_version
  for (auto& [v, t] : rebuilds_) {
    if (t.complete()) continue;
    t.superseded = true;
    if (t.resync) {
      // A pending resync survives unless its engine was evicted again (then
      // the eviction rebuild restores its replicas from the survivors) or
      // this very event re-creates it.
      if (t.node != node && !excluded_.contains(t.node)) {
        requeue_resyncs.emplace(t.node, t.since_version);
      }
    } else if (resync) {
      // A reintegration scan does not re-replicate data for engines that are
      // still excluded: carry the pending eviction repair forward.
      requeue_repair = true;
    }
  }
  queue_task(resync, node, since_version);
  for (const auto& [n, since] : requeue_resyncs) {
    ++map_version_;
    queue_task(/*resync=*/true, n, since);
  }
  if (requeue_repair && !excluded_.empty()) {
    ++map_version_;
    queue_task(/*resync=*/false, /*node=*/0, /*since_version=*/0);
  }
}

void PoolMetaSm::queue_task(bool resync, net::NodeId node, std::uint32_t since_version) {
  RebuildTask task;
  task.version = map_version_;
  task.resync = resync;
  task.node = node;
  task.since_version = since_version;
  task.excluded = excluded_;
  for (const net::NodeId e : engines_) {
    if (!excluded_.contains(e)) task.participants.insert(e);
  }
  if (task.participants.empty()) return;
  rebuilds_.emplace(map_version_, std::move(task));
}

std::vector<PoolMetaSm::MapDelta> PoolMetaSm::deltas_since(std::uint32_t version) const {
  std::vector<MapDelta> out;
  for (const MapDelta& d : deltas_) {
    if (d.version > version) out.push_back(d);
  }
  return out;
}

const PoolMetaSm::RebuildTask* PoolMetaSm::rebuild_task(std::uint32_t version) const {
  const auto it = rebuilds_.find(version);
  return it == rebuilds_.end() ? nullptr : &it->second;
}

std::optional<std::uint32_t> PoolMetaSm::newest_incomplete_rebuild() const {
  std::optional<std::uint32_t> out;
  for (const auto& [v, t] : rebuilds_) {
    if (!t.complete()) out = v;
  }
  return out;
}

std::vector<std::uint32_t> PoolMetaSm::incomplete_rebuilds() const {
  std::vector<std::uint32_t> out;
  for (const auto& [v, t] : rebuilds_) {
    if (!t.complete()) out.push_back(v);
  }
  return out;
}

std::size_t PoolMetaSm::rebuilds_incomplete() const {
  std::size_t n = 0;
  for (const auto& [v, t] : rebuilds_) {
    if (!t.complete()) ++n;
  }
  return n;
}

std::string PoolMetaSm::snapshot() const {
  std::ostringstream os;
  os << containers_.size() << '\n';
  for (const auto& [u, m] : containers_) {
    os << u.hi << ' ' << u.lo << ' ' << m.props.chunk_size << ' ' << unsigned(m.props.oclass)
       << ' ' << m.oid_counter << '\n';
  }
  os << map_version_ << ' ' << excluded_.size();
  for (const net::NodeId e : excluded_) os << ' ' << e;
  os << '\n';
  os << evicted_at_.size();
  for (const auto& [e, v] : evicted_at_) os << ' ' << e << ' ' << v;
  os << '\n';
  os << rebuilds_.size() << '\n';
  for (const auto& [v, t] : rebuilds_) {
    os << t.version << ' ' << (t.resync ? 1 : 0) << ' ' << t.node << ' ' << t.since_version
       << ' ' << (t.superseded ? 1 : 0);
    os << ' ' << t.excluded.size();
    for (const net::NodeId e : t.excluded) os << ' ' << e;
    os << ' ' << t.participants.size();
    for (const net::NodeId e : t.participants) os << ' ' << e;
    os << ' ' << t.done.size();
    for (const net::NodeId e : t.done) os << ' ' << e;
    os << '\n';
  }
  // Container snapshot epochs, appended last so older snapshots (without the
  // section) still restore.
  std::size_t with_snaps = 0;
  for (const auto& [u, m] : containers_) with_snaps += m.snapshots.empty() ? 0 : 1;
  os << with_snaps << '\n';
  for (const auto& [u, m] : containers_) {
    if (m.snapshots.empty()) continue;
    os << u.hi << ' ' << u.lo << ' ' << m.snapshots.size();
    for (const vos::Epoch e : m.snapshots) os << ' ' << e;
    os << '\n';
  }
  // IV delta log, appended last so older snapshots still restore.
  os << deltas_.size() << '\n';
  for (const MapDelta& d : deltas_) {
    os << d.version << ' ' << d.engine << ' ' << (d.excluded ? 1 : 0) << '\n';
  }
  return os.str();
}

void PoolMetaSm::restore(const std::string& snap) {
  containers_.clear();
  map_version_ = 1;
  excluded_.clear();
  evicted_at_.clear();
  rebuilds_.clear();
  deltas_.clear();
  if (snap.empty()) return;
  std::istringstream is(snap);
  std::size_t n = 0;
  is >> n;
  for (std::size_t i = 0; i < n; ++i) {
    vos::Uuid u;
    ContMeta m;
    std::uint64_t chunk = 0;
    unsigned oclass = 0;
    is >> u.hi >> u.lo >> chunk >> oclass >> m.oid_counter;
    m.props.chunk_size = chunk;
    m.props.oclass = std::uint8_t(oclass);
    containers_.emplace(u, m);
  }
  std::size_t nexcluded = 0;
  if (is >> map_version_ >> nexcluded) {
    for (std::size_t i = 0; i < nexcluded; ++i) {
      net::NodeId e = 0;
      is >> e;
      excluded_.insert(e);
    }
  } else {
    map_version_ = 1;  // snapshot from before health tracking existed
    return;
  }
  std::size_t nevict = 0;
  if (!(is >> nevict)) return;  // snapshot from before rebuild tracking existed
  for (std::size_t i = 0; i < nevict; ++i) {
    net::NodeId e = 0;
    std::uint32_t v = 0;
    is >> e >> v;
    evicted_at_[e] = v;
  }
  std::size_t ntasks = 0;
  is >> ntasks;
  const auto read_set = [&is](std::set<net::NodeId>& out) {
    std::size_t count = 0;
    is >> count;
    for (std::size_t i = 0; i < count; ++i) {
      net::NodeId e = 0;
      is >> e;
      out.insert(e);
    }
  };
  for (std::size_t i = 0; i < ntasks; ++i) {
    RebuildTask t;
    int resync = 0;
    int superseded = 0;
    is >> t.version >> resync >> t.node >> t.since_version >> superseded;
    t.resync = resync != 0;
    t.superseded = superseded != 0;
    read_set(t.excluded);
    read_set(t.participants);
    read_set(t.done);
    rebuilds_.emplace(t.version, std::move(t));
  }
  std::size_t nsnap = 0;
  if (!(is >> nsnap)) return;  // snapshot from before container snapshots existed
  for (std::size_t i = 0; i < nsnap; ++i) {
    vos::Uuid u;
    std::size_t count = 0;
    is >> u.hi >> u.lo >> count;
    auto it = containers_.find(u);
    for (std::size_t k = 0; k < count; ++k) {
      vos::Epoch e = 0;
      is >> e;
      if (it != containers_.end()) it->second.snapshots.insert(e);
    }
  }
  std::size_t ndelta = 0;
  if (!(is >> ndelta)) return;  // snapshot from before the IV delta log existed
  for (std::size_t i = 0; i < ndelta; ++i) {
    MapDelta d;
    int excluded = 0;
    is >> d.version >> d.engine >> excluded;
    d.excluded = excluded != 0;
    deltas_.push_back(d);
  }
}

PoolServiceReplica::PoolServiceReplica(net::RpcEndpoint& ep, std::vector<net::NodeId> replicas,
                                       PoolMap map, raft::RaftConfig cfg, std::uint64_t seed)
    : ep_(ep), map_(std::move(map)), metrics_(strfmt("pool/%u", ep.node())) {
  std::set<net::NodeId> engines;
  for (const auto& t : map_.targets) engines.insert(t.engine);
  sm_.set_engines(std::move(engines));
  commands_applied_ = &metrics_.find_or_create<telemetry::Counter>("commands_applied");
  rebuild_reports_ = &metrics_.find_or_create<telemetry::Counter>("rebuild/done_reports");
  metrics_.add_probe("rebuild/tasks_total", [this] { return sm_.rebuild_tasks().size(); });
  metrics_.add_probe("rebuild/tasks_incomplete", [this] { return sm_.rebuilds_incomplete(); });
  metrics_.add_probe("map_version", [this] { return sm_.map_version(); });
  raft_ = std::make_unique<raft::RaftNode>(ep_, std::move(replicas), sm_, cfg, seed);
  ep_.register_handler(engine::kOpPoolSvc,
                       [this](Request r) { return on_client_command(std::move(r)); });
  ep_.register_handler(engine::kOpRebuildDone,
                       [this](Request r) { return on_rebuild_done(std::move(r)); });
}

void PoolServiceReplica::start() {
  raft_->start();
  if (!coord_running_) {
    coord_running_ = true;
    sim::CoTask<void> loop = coordinator_loop();
    ep_.domain().scheduler().spawn(std::move(loop));
  }
}

void PoolServiceReplica::stop() {
  coord_running_ = false;
  raft_->stop();
}

sim::CoTask<void> PoolServiceReplica::coordinator_loop() {
  sim::Scheduler& sched = ep_.domain().scheduler();
  while (coord_running_) {
    co_await sched.delay(kCoordTick);
    if (!coord_running_) break;
    if (!raft_->is_leader() || driving_) continue;
    const std::vector<std::uint32_t> versions = sm_.incomplete_rebuilds();
    if (versions.empty()) continue;
    driving_ = true;
    // Drive every pending task, oldest first: after a re-queue, an eviction
    // repair and one or more resyncs can be in flight at the same time.
    for (const std::uint32_t version : versions) {
      if (!coord_running_ || !raft_->is_leader()) break;
      co_await drive_task(version);
    }
    driving_ = false;
  }
}

sim::CoTask<void> PoolServiceReplica::drive_task(std::uint32_t version) {
  const PoolMetaSm::RebuildTask* tp = sm_.rebuild_task(version);
  if (tp == nullptr) co_return;
  const PoolMetaSm::RebuildTask task = *tp;  // copy: sm_ may change under us
  if (task.complete()) co_return;
  ep_.domain().scheduler().trace_note(kTraceRebuildDrive ^ version);

  engine::RebuildScanReq base;
  base.version = task.version;
  base.resync = task.resync;
  base.reint_node = task.resync ? task.node : 0;
  base.since_version = task.since_version;
  base.excluded.assign(task.excluded.begin(), task.excluded.end());

  // Phase 1: every participant scans its VOS trees and reports the entries it
  // is the canonical source for. Done participants are NOT skipped here —
  // `done` means an engine finished its destination-side assignment, but its
  // scan feeds other destinations' assignments. A re-driven task (failed
  // pulls, leader crash, lost reply) must see the full entry set, or the
  // remaining destinations would silently complete against a partial one.
  // Scans are read-only and mark-recording is first-wins, so re-scanning a
  // done engine is idempotent.
  std::vector<engine::RebuildEntry> entries;
  for (const net::NodeId node : task.participants) {
    engine::RebuildScanReq req = base;
    Body body = Body::make(std::move(req));
    Reply r = co_await ep_.call(node, engine::kOpRebuildScan, std::move(body), 512);
    if (r.status != Errno::ok) {
      if (++scan_fail_[{version, node}] >= kScanFailEvict) {
        co_await raft_->submit(strfmt("pool_evict %u", node));
      }
      co_return;  // superseded or retried next tick
    }
    scan_fail_.erase({version, node});
    auto& resp = r.body.get<engine::RebuildScanResp>();
    entries.insert(entries.end(), resp.entries.begin(), resp.entries.end());
  }

  // Phase 2: hand each participant the entries it is the destination for. An
  // empty assignment still obliges the engine to report rebuild_done, so the
  // task's `done` set can cover every participant.
  std::map<net::NodeId, std::vector<engine::RebuildEntry>> by_dst;
  for (const auto& e : entries) by_dst[map_.targets[e.dst].engine].push_back(e);
  for (const net::NodeId node : task.participants) {
    if (task.done.contains(node)) continue;
    engine::RebuildScanReq req = base;
    req.assign = true;
    if (const auto it = by_dst.find(node); it != by_dst.end()) req.entries = it->second;
    const std::uint64_t wire = 512 + 64 * req.entries.size();
    Body body = Body::make(std::move(req));
    Reply r = co_await ep_.call(node, engine::kOpRebuildScan, std::move(body), wire);
    if (r.status != Errno::ok) {
      if (++scan_fail_[{version, node}] >= kScanFailEvict) {
        co_await raft_->submit(strfmt("pool_evict %u", node));
      }
      co_return;
    }
    scan_fail_.erase({version, node});
  }
  ep_.domain().scheduler().trace_note(kTraceRebuildAssign ^ version);
}

sim::CoTask<net::Reply> PoolServiceReplica::on_rebuild_done(net::Request req) {
  const auto& r = req.body.get<engine::RebuildDoneReq>();
  if (!raft_->is_leader()) {
    engine::RebuildDoneResp resp{raft_->leader_hint()};
    co_return Reply{Errno::again, 64, Body::make(std::move(resp))};
  }
  raft::SubmitResult sr = co_await raft_->submit(
      strfmt("rebuild_done %u %u", r.engine, r.version));
  if (sr.status != Errno::ok) {
    engine::RebuildDoneResp resp{sr.leader_hint};
    co_return Reply{sr.status, 64, Body::make(std::move(resp))};
  }
  rebuild_reports_->inc();
  ep_.domain().scheduler().trace_note(kTraceRebuildDone ^ (std::uint64_t(r.version) << 16) ^
                                      r.engine);
  engine::RebuildDoneResp resp{raft_->leader_hint()};
  co_return Reply{Errno::ok, 64, Body::make(std::move(resp))};
}

sim::CoTask<net::Reply> PoolServiceReplica::on_client_command(net::Request req) {
  const auto& r = req.body.get<engine::PoolSvcReq>();
  if (!raft_->is_leader()) {
    engine::PoolSvcResp resp{{}, raft_->leader_hint()};
    co_return Reply{Errno::again, 64, Body::make(std::move(resp))};
  }
  raft::SubmitResult sr = co_await raft_->submit(r.command);
  if (sr.status != Errno::ok) {
    engine::PoolSvcResp resp{{}, sr.leader_hint};
    co_return Reply{sr.status, 64, Body::make(std::move(resp))};
  }
  commands_applied_->inc();
  engine::PoolSvcResp resp{std::move(sr.response), raft_->leader_hint()};
  co_return Reply{Errno::ok, 64 + resp.response.size(), Body::make(std::move(resp))};
}

}  // namespace daosim::pool
