#include "pool/pool_service.hpp"

#include <sstream>

#include "engine/proto.hpp"

namespace daosim::pool {

using net::Body;
using net::Reply;
using net::Request;

std::string PoolMetaSm::apply(const std::string& command) {
  std::istringstream is(command);
  std::string op;
  is >> op;
  if (op == "cont_create") {
    vos::Uuid u;
    ContMeta meta;
    std::uint64_t chunk = 0;
    unsigned oclass = 0;
    is >> u.hi >> u.lo >> chunk >> oclass;
    meta.props.chunk_size = chunk;
    meta.props.oclass = std::uint8_t(oclass);
    if (containers_.contains(u)) return "EEXIST";
    containers_.emplace(u, meta);
    return "ok";
  }
  if (op == "cont_open") {
    vos::Uuid u;
    is >> u.hi >> u.lo;
    auto it = containers_.find(u);
    if (it == containers_.end()) return "ENOENT";
    return strfmt("ok %llu %u", static_cast<unsigned long long>(it->second.props.chunk_size),
                  unsigned(it->second.props.oclass));
  }
  if (op == "cont_destroy") {
    vos::Uuid u;
    is >> u.hi >> u.lo;
    return containers_.erase(u) > 0 ? "ok" : "ENOENT";
  }
  if (op == "alloc_oids") {
    vos::Uuid u;
    std::uint64_t count = 0;
    is >> u.hi >> u.lo >> count;
    auto it = containers_.find(u);
    if (it == containers_.end()) return "ENOENT";
    const std::uint64_t base = it->second.oid_counter;
    it->second.oid_counter += count;
    return strfmt("ok %llu", static_cast<unsigned long long>(base));
  }
  if (op == "list_conts") {
    std::ostringstream os;
    os << "ok " << containers_.size();
    for (const auto& [u, meta] : containers_) os << ' ' << u.hi << ' ' << u.lo;
    return os.str();
  }
  if (op == "pool_evict") {
    net::NodeId engine = 0;
    is >> engine;
    if (excluded_.insert(engine).second) ++map_version_;
    return strfmt("ok %u", map_version_);
  }
  if (op == "pool_reint") {
    net::NodeId engine = 0;
    is >> engine;
    if (excluded_.erase(engine) > 0) ++map_version_;
    return strfmt("ok %u", map_version_);
  }
  if (op == "map_query") {
    std::ostringstream os;
    os << "ok " << map_version_ << ' ' << excluded_.size();
    for (const net::NodeId e : excluded_) os << ' ' << e;
    return os.str();
  }
  return "EINVAL";
}

std::string PoolMetaSm::snapshot() const {
  std::ostringstream os;
  os << containers_.size() << '\n';
  for (const auto& [u, m] : containers_) {
    os << u.hi << ' ' << u.lo << ' ' << m.props.chunk_size << ' ' << unsigned(m.props.oclass)
       << ' ' << m.oid_counter << '\n';
  }
  os << map_version_ << ' ' << excluded_.size();
  for (const net::NodeId e : excluded_) os << ' ' << e;
  os << '\n';
  return os.str();
}

void PoolMetaSm::restore(const std::string& snap) {
  containers_.clear();
  map_version_ = 1;
  excluded_.clear();
  if (snap.empty()) return;
  std::istringstream is(snap);
  std::size_t n = 0;
  is >> n;
  for (std::size_t i = 0; i < n; ++i) {
    vos::Uuid u;
    ContMeta m;
    std::uint64_t chunk = 0;
    unsigned oclass = 0;
    is >> u.hi >> u.lo >> chunk >> oclass >> m.oid_counter;
    m.props.chunk_size = chunk;
    m.props.oclass = std::uint8_t(oclass);
    containers_.emplace(u, m);
  }
  std::size_t nexcluded = 0;
  if (is >> map_version_ >> nexcluded) {
    for (std::size_t i = 0; i < nexcluded; ++i) {
      net::NodeId e = 0;
      is >> e;
      excluded_.insert(e);
    }
  } else {
    map_version_ = 1;  // snapshot from before health tracking existed
  }
}

PoolServiceReplica::PoolServiceReplica(net::RpcEndpoint& ep, std::vector<net::NodeId> replicas,
                                       PoolMap map, raft::RaftConfig cfg, std::uint64_t seed)
    : ep_(ep), map_(std::move(map)) {
  raft_ = std::make_unique<raft::RaftNode>(ep_, std::move(replicas), sm_, cfg, seed);
  ep_.register_handler(engine::kOpPoolSvc,
                       [this](Request r) { return on_client_command(std::move(r)); });
}

sim::CoTask<net::Reply> PoolServiceReplica::on_client_command(net::Request req) {
  const auto& r = req.body.get<engine::PoolSvcReq>();
  if (!raft_->is_leader()) {
    engine::PoolSvcResp resp{{}, raft_->leader_hint()};
    co_return Reply{Errno::again, 64, Body::make(std::move(resp))};
  }
  raft::SubmitResult sr = co_await raft_->submit(r.command);
  if (sr.status != Errno::ok) {
    engine::PoolSvcResp resp{{}, sr.leader_hint};
    co_return Reply{sr.status, 64, Body::make(std::move(resp))};
  }
  engine::PoolSvcResp resp{std::move(sr.response), raft_->leader_hint()};
  co_return Reply{Errno::ok, 64 + resp.response.size(), Body::make(std::move(resp))};
}

}  // namespace daosim::pool
