// Storage media models.
//
// DcpmmInterleaveSet models one socket's Optane DCPMM AppDirect interleave
// set (six 256 GiB DIMMs on NEXTGenIO): byte-addressable, asymmetric
// read/write bandwidth, sub-microsecond access latency, and a concave
// efficiency curve under many concurrent streams (Optane's well-documented
// behaviour when writers interleave).
//
// NvmeDevice models a block SSD: per-op latency, queue depth, and symmetric
// streaming bandwidth. DAOS uses NVMe for bulk data when Optane holds only
// metadata; the testbed configures Optane as primary, matching the paper.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/bandwidth.hpp"
#include "sim/co_task.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"

namespace daosim::media {

struct DcpmmConfig {
  double read_bytes_per_sec = 38e9;   // 6-DIMM interleave set, sequential read
  double write_bytes_per_sec = 13e9;  // sequential write (asymmetric)
  sim::Time read_latency = 300;       // ns, per access
  sim::Time write_latency = 150;      // ns (write lands in WPQ buffer)
  sim::EfficiencyCurve read_eff{8, 0.12, 0.70};
  sim::EfficiencyCurve write_eff{4, 0.20, 0.55};
  std::uint64_t capacity_bytes = 6ULL * 256 * 1024 * 1024 * 1024;
};

class DcpmmInterleaveSet {
 public:
  DcpmmInterleaveSet(sim::Scheduler& s, DcpmmConfig cfg = {});
  DcpmmInterleaveSet(const DcpmmInterleaveSet&) = delete;
  DcpmmInterleaveSet& operator=(const DcpmmInterleaveSet&) = delete;

  sim::CoTask<void> read(std::uint64_t bytes);
  sim::CoTask<void> write(std::uint64_t bytes);

  const DcpmmConfig& config() const { return cfg_; }
  std::uint64_t bytes_read() const { return read_bw_->bytes_served(); }
  std::uint64_t bytes_written() const { return write_bw_->bytes_served(); }

 private:
  sim::Scheduler& sched_;
  DcpmmConfig cfg_;
  std::unique_ptr<sim::SharedBandwidth> read_bw_;
  std::unique_ptr<sim::SharedBandwidth> write_bw_;
};

struct NvmeConfig {
  double bytes_per_sec = 3.2e9;        // PCIe gen3 x4 class device
  sim::Time read_latency = 80 * sim::kUs;
  sim::Time write_latency = 20 * sim::kUs;
  std::uint32_t queue_depth = 128;
};

class NvmeDevice {
 public:
  NvmeDevice(sim::Scheduler& s, NvmeConfig cfg = {});
  NvmeDevice(const NvmeDevice&) = delete;
  NvmeDevice& operator=(const NvmeDevice&) = delete;

  sim::CoTask<void> read(std::uint64_t bytes);
  sim::CoTask<void> write(std::uint64_t bytes);

  const NvmeConfig& config() const { return cfg_; }

 private:
  sim::CoTask<void> io(std::uint64_t bytes, sim::Time latency);

  sim::Scheduler& sched_;
  NvmeConfig cfg_;
  std::unique_ptr<sim::SharedBandwidth> bw_;
  sim::Semaphore slots_;
};

}  // namespace daosim::media
