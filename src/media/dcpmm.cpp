#include "media/dcpmm.hpp"

namespace daosim::media {

DcpmmInterleaveSet::DcpmmInterleaveSet(sim::Scheduler& s, DcpmmConfig cfg)
    : sched_(s),
      cfg_(cfg),
      read_bw_(std::make_unique<sim::SharedBandwidth>(s, cfg.read_bytes_per_sec, cfg.read_eff)),
      write_bw_(std::make_unique<sim::SharedBandwidth>(s, cfg.write_bytes_per_sec, cfg.write_eff)) {}

sim::CoTask<void> DcpmmInterleaveSet::read(std::uint64_t bytes) {
  co_await sched_.delay(cfg_.read_latency);
  co_await read_bw_->transfer(bytes);
}

sim::CoTask<void> DcpmmInterleaveSet::write(std::uint64_t bytes) {
  co_await sched_.delay(cfg_.write_latency);
  co_await write_bw_->transfer(bytes);
}

NvmeDevice::NvmeDevice(sim::Scheduler& s, NvmeConfig cfg)
    : sched_(s),
      cfg_(cfg),
      bw_(std::make_unique<sim::SharedBandwidth>(s, cfg.bytes_per_sec)),
      slots_(s, cfg.queue_depth) {}

sim::CoTask<void> NvmeDevice::io(std::uint64_t bytes, sim::Time latency) {
  co_await slots_.acquire();
  co_await sched_.delay(latency);
  co_await bw_->transfer(bytes);
  slots_.release();
}

sim::CoTask<void> NvmeDevice::read(std::uint64_t bytes) { return io(bytes, cfg_.read_latency); }
sim::CoTask<void> NvmeDevice::write(std::uint64_t bytes) { return io(bytes, cfg_.write_latency); }

}  // namespace daosim::media
