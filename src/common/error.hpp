// Common error-handling vocabulary for daosim.
//
// Two regimes, following the C++ Core Guidelines (E.2 / E.14):
//  * programming errors and broken invariants  -> exceptions (DaosimError)
//  * expected, recoverable failures (e.g. DFS lookup of a missing path)
//    -> Errno codes carried in Result<T>.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace daosim {

/// printf-style formatting into a std::string (libstdc++ 12 lacks <format>).
inline std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

/// Root exception for invariant violations and unrecoverable failures.
class DaosimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws DaosimError with a printf-formatted message.
[[noreturn]] inline void raise(std::string msg) { throw DaosimError(std::move(msg)); }

#define DAOSIM_REQUIRE(cond, ...)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::daosim::raise(::daosim::strfmt("%s:%d: requirement failed: %s: ", \
                                       __FILE__, __LINE__, #cond) +      \
                      ::daosim::strfmt(__VA_ARGS__));                    \
    }                                                                    \
  } while (0)

/// Recoverable error codes, mirroring the POSIX/DAOS errno values the paper's
/// interfaces surface to applications.
enum class Errno : int {
  ok = 0,
  no_entry,        // ENOENT
  exists,          // EEXIST
  not_dir,         // ENOTDIR
  is_dir,          // EISDIR
  not_empty,       // ENOTEMPTY
  invalid,         // EINVAL
  no_space,        // ENOSPC
  busy,            // EBUSY
  io,              // EIO
  bad_fd,          // EBADF
  perm,            // EPERM
  again,           // EAGAIN
  name_too_long,   // ENAMETOOLONG
  not_supported,   // ENOTSUP
  stale,           // ESTALE (e.g. pool map out of date)
  timed_out,       // ETIMEDOUT
  data_loss,       // every replica of a redundancy group is gone
  tx_restart,      // DER_TX_RESTART: transaction conflict, restart it
};

inline const char* errno_name(Errno e) {
  switch (e) {
    case Errno::ok: return "OK";
    case Errno::no_entry: return "ENOENT";
    case Errno::exists: return "EEXIST";
    case Errno::not_dir: return "ENOTDIR";
    case Errno::is_dir: return "EISDIR";
    case Errno::not_empty: return "ENOTEMPTY";
    case Errno::invalid: return "EINVAL";
    case Errno::no_space: return "ENOSPC";
    case Errno::busy: return "EBUSY";
    case Errno::io: return "EIO";
    case Errno::bad_fd: return "EBADF";
    case Errno::perm: return "EPERM";
    case Errno::again: return "EAGAIN";
    case Errno::name_too_long: return "ENAMETOOLONG";
    case Errno::not_supported: return "ENOTSUP";
    case Errno::stale: return "ESTALE";
    case Errno::timed_out: return "ETIMEDOUT";
    case Errno::data_loss: return "EDATALOSS";
    case Errno::tx_restart: return "ETXRESTART";
  }
  return "E?";
}

/// Minimal expected-like result type (std::expected is C++23).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Errno err) : state_(err) {}             // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  Errno error() const { return ok() ? Errno::ok : std::get<Errno>(state_); }

  T& value() & {
    check();
    return std::get<T>(state_);
  }
  const T& value() const& {
    check();
    return std::get<T>(state_);
  }
  T&& value() && {
    check();
    return std::move(std::get<T>(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void check() const {
    if (!ok()) raise(strfmt("Result::value() on error %s", errno_name(std::get<Errno>(state_))));
  }
  std::variant<T, Errno> state_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : err_(Errno::ok) {}
  Result(Errno err) : err_(err) {}  // NOLINT(google-explicit-constructor)
  bool ok() const { return err_ == Errno::ok; }
  explicit operator bool() const { return ok(); }
  Errno error() const { return err_; }

 private:
  Errno err_;
};

}  // namespace daosim
