// Byte- and time-unit helpers shared across the codebase.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace daosim {

constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;
constexpr std::uint64_t kTiB = 1024ULL * kGiB;

constexpr double kKB = 1e3;
constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

/// Renders a byte count as a compact human-readable string ("8 MiB", "1.5 GiB").
inline std::string format_bytes(std::uint64_t bytes) {
  if (bytes % kGiB == 0 && bytes >= kGiB) return strfmt("%llu GiB", static_cast<unsigned long long>(bytes / kGiB));
  if (bytes % kMiB == 0 && bytes >= kMiB) return strfmt("%llu MiB", static_cast<unsigned long long>(bytes / kMiB));
  if (bytes % kKiB == 0 && bytes >= kKiB) return strfmt("%llu KiB", static_cast<unsigned long long>(bytes / kKiB));
  if (bytes >= kGiB) return strfmt("%.2f GiB", double(bytes) / double(kGiB));
  if (bytes >= kMiB) return strfmt("%.2f MiB", double(bytes) / double(kMiB));
  if (bytes >= kKiB) return strfmt("%.2f KiB", double(bytes) / double(kKiB));
  return strfmt("%llu B", static_cast<unsigned long long>(bytes));
}

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

/// Rounds `a` up to the next multiple of `b`.
constexpr std::uint64_t round_up(std::uint64_t a, std::uint64_t b) { return ceil_div(a, b) * b; }

}  // namespace daosim
