// Runtime invariant auditing, gated behind the DAOSIM_AUDIT compile
// definition (CMake -DDAOSIM_AUDIT=ON).
//
// Audit checks are stronger than DAOSIM_REQUIRE preconditions: they sit on
// hot paths (every B+ tree mutation, every bandwidth fair-share round) and
// re-derive properties the code is supposed to maintain by construction.
// They are compiled to nothing in normal builds but stay type-checked, so
// audit code cannot bit-rot.
#pragma once

#include "common/error.hpp"

namespace daosim {

#if defined(DAOSIM_AUDIT)
inline constexpr bool kAuditEnabled = true;
#else
inline constexpr bool kAuditEnabled = false;
#endif

}  // namespace daosim

/// Checks `cond` (with a DaosimError on failure) only in audit builds. The
/// condition is still compiled in normal builds — dead-code-eliminated, never
/// evaluated — so it must be valid, side-effect-free code.
#define DAOSIM_AUDIT_CHECK(cond, ...)           \
  do {                                          \
    if constexpr (::daosim::kAuditEnabled) {    \
      DAOSIM_REQUIRE(cond, __VA_ARGS__);        \
    }                                           \
  } while (0)
