#include "cluster/testbed.hpp"

namespace daosim::cluster {

Testbed::Testbed(ClusterConfig cfg) : cfg_(cfg), fabric_(sched_, cfg.fabric) {
  DAOSIM_REQUIRE(cfg_.server_nodes > 0 && cfg_.engines_per_server > 0, "bad cluster config");
  DAOSIM_REQUIRE(cfg_.client_nodes > 0, "need at least one client node");
  fabric_.set_telemetry(&fabric_metrics_);
  domain_ = std::make_unique<net::RpcDomain>(fabric_);

  // Human-readable opcode labels for metric paths and trace spans.
  domain_->name_opcode(raft::kOpRequestVote, "vote");
  domain_->name_opcode(raft::kOpAppendEntries, "append");
  domain_->name_opcode(raft::kOpInstallSnapshot, "snapshot");
  domain_->name_opcode(engine::kOpObjUpdate, "update");
  domain_->name_opcode(engine::kOpObjFetch, "fetch");
  domain_->name_opcode(engine::kOpObjEnumDkeys, "enum_dkeys");
  domain_->name_opcode(engine::kOpObjEnumAkeys, "enum_akeys");
  domain_->name_opcode(engine::kOpObjPunch, "punch");
  domain_->name_opcode(engine::kOpObjQuery, "query");
  domain_->name_opcode(engine::kOpPoolSvc, "pool_svc");
  domain_->name_opcode(engine::kOpRebuildScan, "rebuild_scan");
  domain_->name_opcode(engine::kOpRebuildFetch, "rebuild_fetch");
  domain_->name_opcode(engine::kOpRebuildDone, "rebuild_done");
  domain_->name_opcode(engine::kOpTxPrepare, "tx_prepare");
  domain_->name_opcode(engine::kOpTxCommit, "tx_commit");
  domain_->name_opcode(engine::kOpTxAbort, "tx_abort");
  domain_->name_opcode(engine::kOpTxResolve, "tx_resolve");
  domain_->name_opcode(engine::kOpContAggregate, "cont_aggregate");
  domain_->name_opcode(engine::kOpSwimPing, "swim_ping");
  domain_->name_opcode(engine::kOpSwimPingReq, "swim_ping_req");
  domain_->name_opcode(engine::kOpMapFetch, "map_fetch");

  // Engines: one fabric node per engine (each socket binds one rail of the
  // server's dual-rail NIC), one DCPMM interleave set per socket.
  engine::EngineConfig ecfg = cfg_.engine;
  ecfg.targets = cfg_.targets_per_engine;
  ecfg.payload = cfg_.payload;
  const std::uint32_t total_engines = cfg_.server_nodes * cfg_.engines_per_server;
  for (std::uint32_t e = 0; e < total_engines; ++e) {
    const net::NodeId node = fabric_.add_node(/*rails=*/1);
    sockets_.push_back(std::make_unique<media::DcpmmInterleaveSet>(sched_, cfg_.dcpmm));
    engines_.push_back(
        std::make_unique<engine::Engine>(*domain_, node, *sockets_.back(), ecfg));
  }

  // Pool map: every target of every engine, in engine-major order.
  map_.pool = kPoolUuid;
  for (auto& eng : engines_) {
    for (std::uint32_t t = 0; t < eng->target_count(); ++t) {
      map_.targets.push_back(pool::TargetRef{eng->node(), t, pool::TargetHealth::up});
    }
  }

  // Pool service replicas co-located with the first engines.
  const std::uint32_t nsvc = std::min(cfg_.svc_replicas, total_engines);
  for (std::uint32_t s = 0; s < nsvc; ++s) svc_nodes_.push_back(engines_[s]->node());
  for (std::uint32_t s = 0; s < nsvc; ++s) {
    svc_.push_back(std::make_unique<pool::PoolServiceReplica>(
        engines_[s]->endpoint(), svc_nodes_, map_, cfg_.raft, cfg_.seed + s));
  }

  // One rebuild service per engine, answering the pool-service coordinator's
  // scan/assign RPCs against this pool's membership.
  for (auto& eng : engines_) {
    rebuilds_.push_back(
        std::make_unique<rebuild::RebuildService>(*eng, map_, svc_nodes_, cfg_.rebuild));
  }

  // One DTX service per engine: 2PC shard handlers plus the orphan reaper.
  for (auto& eng : engines_) {
    dtxs_.push_back(std::make_unique<dtx::DtxService>(*eng, map_, svc_nodes_, cfg_.dtx));
  }

  // One aggregation service per engine, constrained by the co-indexed
  // rebuild service's resync floors (loops spawn only when cfg.agg.enabled).
  for (std::uint32_t e = 0; e < total_engines; ++e) {
    aggs_.push_back(std::make_unique<agg::AggregationService>(*engines_[e], rebuilds_[e].get(),
                                                              svc_nodes_, cfg_.agg));
  }

  // One SWIM service per engine: failure-detector probes (only when enabled)
  // plus the always-on kOpMapFetch handler of the IV dissemination tree.
  // Engines co-located with a pool-service replica are tree roots: they read
  // the Raft-committed map state directly instead of fetching over RPC.
  std::vector<net::NodeId> engine_nodes;
  for (auto& eng : engines_) engine_nodes.push_back(eng->node());
  for (std::uint32_t e = 0; e < total_engines; ++e) {
    swims_.push_back(std::make_unique<swim::SwimService>(
        *engines_[e], e, engine_nodes, svc_nodes_, cfg_.swim, cfg_.seed + 0x5717 + e));
  }
  for (std::uint32_t s = 0; s < nsvc; ++s) {
    pool::PoolServiceReplica* rep = svc_[s].get();
    swims_[s]->set_local_map_source([rep](std::uint32_t since) {
      engine::MapFetchResp resp;
      resp.latest_version = rep->meta().map_version();
      for (const auto& d : rep->meta().deltas_since(since)) {
        resp.deltas.push_back(engine::MapDeltaEntry{d.version, d.engine, d.excluded});
      }
      return resp;
    });
  }

  // Client nodes (dual-rail NICs) with one DaosClient each.
  for (std::uint32_t c = 0; c < cfg_.client_nodes; ++c) {
    const net::NodeId node = fabric_.add_node();
    clients_.push_back(
        std::make_unique<client::DaosClient>(*domain_, node, map_, svc_nodes_, cfg_.client));
  }
}

Testbed::~Testbed() {
  if (started_) stop();
}

void Testbed::start() {
  DAOSIM_REQUIRE(!started_, "testbed already started");
  for (auto& s : svc_) s->start();
  for (auto& d : dtxs_) d->start();
  if (cfg_.swim.enabled) {
    for (auto& w : swims_) w->start();
  }
  if (cfg_.agg.enabled) {
    for (auto& a : aggs_) a->start();
  }
  started_ = true;
  // Run until the pool service has a leader.
  const sim::Time deadline = sched_.now() + 10 * sim::kSec;
  while (sched_.now() < deadline) {
    sched_.run_until(sched_.now() + 20 * sim::kMs);
    for (auto& s : svc_) {
      if (s->is_leader()) return;
    }
  }
  raise("pool service failed to elect a leader");
}

void Testbed::stop() {
  if (!started_) return;
  for (auto& s : svc_) s->stop();
  for (auto& d : dtxs_) d->stop();
  for (auto& w : swims_) w->stop();
  for (auto& a : aggs_) a->stop();
  started_ = false;
  sched_.run();  // drain retired service loops
}

sim::CoTask<void> Testbed::wrap_main(sim::CoTask<void> main, bool& done) {
  co_await std::move(main);
  done = true;
}

void Testbed::run(sim::CoTask<void> main) {
  DAOSIM_REQUIRE(started_, "start() the testbed before run()");
  bool done = false;
  sched_.spawn(wrap_main(std::move(main), done));
  // Hard cap: a year of virtual time — any workload hitting this is hung.
  const sim::Time cap = sched_.now() + 365ULL * 24 * 3600 * sim::kSec;
  while (!done && sched_.now() < cap) {
    const bool more = sched_.run_until(sched_.now() + 100 * sim::kMs);
    if (!more && !done) {
      raise("testbed workload blocked with no pending events");
    }
  }
  DAOSIM_REQUIRE(done, "testbed workload exceeded the virtual time cap");
}

fault::Injector& Testbed::inject_faults(const fault::Schedule& s, std::uint64_t seed) {
  if (!injector_) {
    fault::Hooks hooks;
    hooks.engine_count = engine_count();
    hooks.node_of = [this](std::uint32_t e) { return engines_[e]->node(); };
    hooks.crash = [this](std::uint32_t e) { crash_engine(e); };
    hooks.restart = [this](std::uint32_t e) { restart_engine(e); };
    hooks.stall = [this](std::uint32_t e, std::uint32_t t, sim::Time d) {
      engines_[e]->stall_target(t, d);
    };
    injector_ = std::make_unique<fault::Injector>(*domain_, std::move(hooks), seed);
  }
  injector_->arm(s);
  return *injector_;
}

void Testbed::crash_engine(std::uint32_t i) {
  DAOSIM_REQUIRE(i < engines_.size(), "crash_engine: no engine %u", i);
  const net::NodeId node = engines_[i]->node();
  // A co-located pool-service replica loses its volatile Raft state with the
  // engine (its stable log lives on the DCPMM interleave set and survives).
  for (std::uint32_t s = 0; s < svc_.size(); ++s) {
    if (svc_nodes_[s] == node && svc_[s]->raft().running()) svc_[s]->raft().crash();
  }
  engines_[i]->endpoint().set_down(true);
}

void Testbed::restart_engine(std::uint32_t i) {
  DAOSIM_REQUIRE(i < engines_.size(), "restart_engine: no engine %u", i);
  const net::NodeId node = engines_[i]->node();
  // Pin resync epoch floors before the endpoint comes back up, so the first
  // post-restart client write is already above the floor.
  rebuilds_[i]->note_restart();
  // Schedule the DTX resync sweep: prepared-but-undecided entries left by
  // the crash are resolved against their leader shards shortly after the
  // endpoint reopens.
  dtxs_[i]->note_restart();
  // Bump the SWIM incarnation past any suspicion accrued while down, so the
  // engine refutes instead of being (re-)declared dead on rejoin.
  swims_[i]->note_restart();
  // Drop the aggregator's cached pool-service leader hint (the leader may
  // have moved while the engine was down).
  aggs_[i]->note_restart();
  engines_[i]->endpoint().set_down(false);
  for (std::uint32_t s = 0; s < svc_.size(); ++s) {
    if (svc_nodes_[s] == node && !svc_[s]->raft().running()) svc_[s]->raft().restart();
  }
}

bool Testbed::wait_rebuild(sim::Time timeout) {
  DAOSIM_REQUIRE(started_, "start() the testbed before wait_rebuild()");
  const sim::Time deadline = sched_.now() + timeout;
  while (sched_.now() < deadline) {
    if (const auto l = svc_leader()) {
      if (svc_[*l]->meta().rebuilds_incomplete() == 0) return true;
    }
    sched_.run_until(sched_.now() + 20 * sim::kMs);
  }
  return false;
}

std::optional<std::uint32_t> Testbed::svc_leader() const {
  for (std::uint32_t s = 0; s < svc_.size(); ++s) {
    if (svc_[s]->is_leader()) return s;
  }
  return std::nullopt;
}

std::uint64_t Testbed::total_updates() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->updates_served();
  return n;
}
std::uint64_t Testbed::total_fetches() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->fetches_served();
  return n;
}
std::uint64_t Testbed::total_shard_cache_misses() const {
  std::uint64_t n = 0;
  for (const auto& e : engines_) n += e->shard_cache_misses();
  return n;
}

std::vector<const telemetry::Registry*> Testbed::registries() const {
  std::vector<const telemetry::Registry*> regs;
  regs.push_back(&fabric_metrics_);
  for (const auto& e : engines_) regs.push_back(&e->telemetry());
  for (const auto& s : svc_) regs.push_back(&s->telemetry());
  for (const auto& c : clients_) regs.push_back(&c->telemetry());
  return regs;
}

void Testbed::dump_metrics(std::ostream& os, telemetry::DumpFormat fmt) const {
  telemetry::write_dump(os, registries(), fmt);
}

telemetry::DurationHistogram::State Testbed::client_rpc_latency(const std::string& op) const {
  telemetry::DurationHistogram::State sum;
  for (const auto& c : clients_) {
    const auto* h =
        c->telemetry().find<telemetry::DurationHistogram>("rpc/" + op + "/latency_ns");
    if (h != nullptr) sum += h->state();
  }
  return sum;
}

void Testbed::attach_trace(telemetry::TraceLog* log) {
  trace_log_ = log;
  sched_.set_span_sink(log);
}

void Testbed::dump_slow_ops(std::ostream& os, sim::Time threshold, std::size_t top_k) const {
  if (trace_log_ == nullptr) return;
  trace_log_->write_slow_ops(os, threshold, top_k);
}

}  // namespace daosim::cluster
