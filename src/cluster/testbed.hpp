// Testbed: assembles the simulated NEXTGenIO-like cluster the paper
// benchmarks on — server nodes with two DAOS engines each (one per socket,
// each with its own DCPMM interleave set and fabric rail), a Raft-replicated
// pool service on the first engines, and a set of client nodes.
#pragma once

#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "agg/agg.hpp"
#include "client/client.hpp"
#include "dtx/dtx.hpp"
#include "engine/engine.hpp"
#include "fault/fault.hpp"
#include "media/dcpmm.hpp"
#include "net/fabric.hpp"
#include "net/rpc.hpp"
#include "pool/pool_service.hpp"
#include "rebuild/rebuild.hpp"
#include "sim/scheduler.hpp"
#include "swim/swim.hpp"
#include "telemetry/telemetry.hpp"

namespace daosim::cluster {

struct ClusterConfig {
  std::uint32_t server_nodes = 8;        // NEXTGenIO benchmark deployment
  std::uint32_t engines_per_server = 2;  // one per socket
  std::uint32_t targets_per_engine = 8;
  std::uint32_t client_nodes = 1;
  std::uint32_t svc_replicas = 3;  // pool service Raft group size
  net::FabricConfig fabric{};      // dual-rail for clients; engines bind 1 rail
  media::DcpmmConfig dcpmm{};
  engine::EngineConfig engine{};
  client::ClientConfig client{};  // batching knobs for every testbed client
  raft::RaftConfig raft{};
  vos::PayloadMode payload = vos::PayloadMode::store;
  rebuild::RebuildConfig rebuild{};  // per-engine rebuild throttle
  dtx::DtxConfig dtx{};              // per-engine DTX reaper/resync knobs
  swim::SwimConfig swim{};           // failure detector + IV relay; off by default
  agg::AggConfig agg{};              // background epoch aggregation; off by default
  std::uint64_t seed = 42;
};

/// The benchmark pool's UUID (one pool spanning every target, as deployed
/// for the paper's runs).
constexpr vos::Uuid kPoolUuid{0xDA05, 0x1};

class Testbed {
 public:
  explicit Testbed(ClusterConfig cfg);
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Starts the pool service and runs until a Raft leader is established.
  void start();
  /// Stops services and drains the event queue.
  void stop();

  /// Runs `main` to completion while the services keep ticking.
  void run(sim::CoTask<void> main);
  template <typename F>
    requires requires(F f) {
      { f() } -> std::same_as<sim::CoTask<void>>;
    }
  void run(F f) {
    run(invoke_holding(std::move(f)));
  }

  sim::Scheduler& sched() { return sched_; }
  net::Fabric& fabric() { return fabric_; }
  net::RpcDomain& domain() { return *domain_; }
  const pool::PoolMap& pool_map() const { return map_; }
  const std::vector<net::NodeId>& svc_nodes() const { return svc_nodes_; }
  const ClusterConfig& config() const { return cfg_; }

  std::uint32_t engine_count() const { return std::uint32_t(engines_.size()); }
  engine::Engine& engine(std::uint32_t i) { return *engines_[i]; }

  std::uint32_t client_node_count() const { return std::uint32_t(clients_.size()); }
  /// The DaosClient living on client node `i` (all ranks on that node share it).
  client::DaosClient& client(std::uint32_t i) { return *clients_[i]; }

  // --- fault injection ---

  /// Arms a fault schedule against this cluster (event times are offsets
  /// from now()). Crash/restart/stall events resolve engine indices to the
  /// right engine endpoint — and to its co-located pool-service replica,
  /// whose Raft node crashes/restarts along with it.
  fault::Injector& inject_faults(const fault::Schedule& s, std::uint64_t seed);

  /// Network-level crash of engine `i`: its endpoint goes down (in-flight
  /// replies are lost) and any co-located pool-service replica crashes.
  /// VOS state survives, as on persistent media.
  void crash_engine(std::uint32_t i);
  /// Brings a crashed engine back; a co-located replica recovers from its
  /// stable Raft state. The engine stays EXCLUDED from placement until a
  /// pool_reint command reintegrates it (explicit, as in DAOS).
  void restart_engine(std::uint32_t i);

  std::uint32_t svc_replica_count() const { return std::uint32_t(svc_.size()); }
  pool::PoolServiceReplica& svc_replica(std::uint32_t i) { return *svc_[i]; }
  /// Index of the current pool-service leader replica, if any.
  std::optional<std::uint32_t> svc_leader() const;

  /// Engine `i`'s rebuild service (scan/pull counters, throttle config).
  rebuild::RebuildService& rebuild_service(std::uint32_t i) { return *rebuilds_[i]; }
  /// Engine `i`'s DTX service (2PC handlers, orphan reaper, resync).
  dtx::DtxService& dtx_service(std::uint32_t i) { return *dtxs_[i]; }
  /// Engine `i`'s SWIM failure detector / IV map relay (probing only when
  /// ClusterConfig::swim.enabled; the kOpMapFetch handler always serves).
  swim::SwimService& swim_service(std::uint32_t i) { return *swims_[i]; }
  /// Engine `i`'s background aggregation service (flattening only when
  /// ClusterConfig::agg.enabled).
  agg::AggregationService& agg_service(std::uint32_t i) { return *aggs_[i]; }
  /// Barrier: runs the simulation until the pool service's Raft-committed
  /// rebuild state shows no incomplete task (every eviction healed, every
  /// reintegration resynced). Returns false if `timeout` virtual time passes
  /// first — e.g. too few surviving engines to ever elect a leader.
  bool wait_rebuild(sim::Time timeout = 60 * sim::kSec);

  /// Aggregate engine-side counters (for reports and shape assertions).
  std::uint64_t total_updates() const;
  std::uint64_t total_fetches() const;
  std::uint64_t total_shard_cache_misses() const;

  // --- telemetry ---

  /// Every metric registry in the cluster: fabric, engines, pool-service
  /// replicas, clients. Order is fixed; exporters re-sort by path anyway.
  std::vector<const telemetry::Registry*> registries() const;
  /// Deterministic snapshot dump of all registries (sorted paths —
  /// byte-identical across same-seed runs).
  void dump_metrics(std::ostream& os,
                    telemetry::DumpFormat fmt = telemetry::DumpFormat::json) const;
  /// Summed client-side completed-RPC latency histogram for opcode label
  /// `op` ("update", "fetch") — the per-phase breakdown source for IOR.
  telemetry::DurationHistogram::State client_rpc_latency(const std::string& op) const;

  /// Attaches `log` as the scheduler's span sink (nullptr detaches). Purely
  /// observational: toggling it never changes timings or trace_hash().
  void attach_trace(telemetry::TraceLog* log);
  telemetry::TraceLog* trace_log() const { return trace_log_; }
  /// Deterministic slow-op report from the attached trace log: the top-k
  /// sampled client ops at or above `threshold`, each with its critical-path
  /// stage breakdown (see TraceLog::write_slow_ops). No-op when no log is
  /// attached.
  void dump_slow_ops(std::ostream& os, sim::Time threshold, std::size_t top_k = 10) const;

 private:
  template <typename F>
  static sim::CoTask<void> invoke_holding(F f) {
    co_await f();
  }
  static sim::CoTask<void> wrap_main(sim::CoTask<void> main, bool& done);

  ClusterConfig cfg_;
  sim::Scheduler sched_;
  telemetry::Registry fabric_metrics_{"fabric"};  // before fabric_: bound in its ctor body
  net::Fabric fabric_;
  std::unique_ptr<net::RpcDomain> domain_;
  std::vector<std::unique_ptr<media::DcpmmInterleaveSet>> sockets_;
  std::vector<std::unique_ptr<engine::Engine>> engines_;
  std::vector<std::unique_ptr<pool::PoolServiceReplica>> svc_;
  std::vector<net::NodeId> svc_nodes_;
  std::vector<std::unique_ptr<rebuild::RebuildService>> rebuilds_;  // one per engine
  std::vector<std::unique_ptr<dtx::DtxService>> dtxs_;              // one per engine
  std::vector<std::unique_ptr<swim::SwimService>> swims_;           // one per engine
  std::vector<std::unique_ptr<agg::AggregationService>> aggs_;      // one per engine
  std::vector<std::unique_ptr<client::DaosClient>> clients_;
  pool::PoolMap map_;
  /// Declared after domain_/engines_/svc_: the injector's destructor
  /// uninstalls its hooks from the domain, so it must die first.
  std::unique_ptr<fault::Injector> injector_;
  telemetry::TraceLog* trace_log_ = nullptr;  // observed only, never owned
  bool started_ = false;
};

}  // namespace daosim::cluster
