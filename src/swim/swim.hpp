// Engine-side SWIM failure detector + IV map relay: each engine runs a
// randomized round-robin probe loop over the membership (direct ping, then
// indirect ping-req through k witnesses), tracks alive/suspect/dead states
// with incarnation-number refutation, piggybacks membership updates on every
// probe and ack, and feeds confirmed-dead verdicts into the pool service as
// Raft-replicated auto-evictions — so failure detection no longer depends on
// client traffic, and a merely-stalled engine refutes suspicion instead of
// being evicted.
//
// The same service is the engine half of IV-style incremental map
// dissemination: every engine keeps a local pool-map delta log and a cached
// map version (stamped on each reply it serves — net::Reply::map_version),
// hears newer versions through SWIM gossip, and pulls the missing deltas
// over a tree rooted at the pool service (engines co-located with a replica
// read the Raft-committed state directly, zero RPCs; everyone else fetches
// kOpMapFetch from its tree parent). Protocol, parameters, and the failure
// matrix: docs/membership.md.
#pragma once

#include <optional>
#include <vector>

#include "engine/engine.hpp"
#include "sim/random.hpp"

namespace daosim::swim {

struct SwimConfig {
  /// Off by default: with SWIM off no probe traffic exists, engine cached
  /// map versions never move, and every pre-SWIM trace is bit-identical.
  bool enabled = false;
  /// One direct probe (of the next rotation member) per period.
  sim::Time probe_period = 500 * sim::kMs;
  /// Suspect -> dead. Must comfortably exceed one full probe round plus the
  /// gossip hops a refutation needs to travel (see docs/membership.md).
  sim::Time suspect_timeout = 2 * sim::kSec;
  /// Indirect probes (ping-req witnesses) tried after a failed direct probe.
  std::uint32_t witnesses = 2;
  /// IV dissemination tree fan-out: member i fetches deltas from member
  /// (i-1)/iv_fanout, falling back to the root on parent failure.
  std::uint32_t iv_fanout = 4;
};

/// One SwimService per engine (DtxService-style): registers the 0x60-block
/// handlers at construction, probes only between start()/stop().
class SwimService {
 public:
  /// @param index      this engine's index in `members` (testbed engine index)
  /// @param members    every engine's fabric node, in engine-index order —
  ///                   identical on all engines, so tree shape and witness
  ///                   choice agree everywhere
  /// @param svc_nodes  pool-service replica nodes (for pool_evict submission)
  SwimService(engine::Engine& eng, std::uint32_t index, std::vector<net::NodeId> members,
              std::vector<net::NodeId> svc_nodes, SwimConfig cfg, std::uint64_t seed);
  SwimService(const SwimService&) = delete;
  SwimService& operator=(const SwimService&) = delete;

  /// Spawns the probe loop (idempotent). stop() lets it retire.
  void start();
  void stop();

  /// Called by the harness when this engine comes back up after a crash:
  /// bumps our incarnation past any suspicion accrued while down, so the
  /// first post-restart gossip exchange refutes instead of confirming.
  void note_restart();

  /// Root wiring: engines co-located with a pool-service replica read the
  /// Raft-committed map state directly (version + deltas since a version)
  /// instead of fetching over the tree. The callback must be passive.
  using LocalMapSource = std::function<engine::MapFetchResp(std::uint32_t since)>;
  void set_local_map_source(LocalMapSource src) { local_map_source_ = std::move(src); }

  const SwimConfig& config() const { return cfg_; }
  std::uint64_t probes_sent() const;
  std::uint64_t suspects_raised() const;
  std::uint64_t refutations() const;
  std::uint64_t deaths_declared() const;
  std::uint64_t delta_fetches() const;
  /// This engine's view of `member` (by engine index), for test assertions.
  bool sees_dead(std::uint32_t member) const { return state_[member].dead; }
  bool sees_suspect(std::uint32_t member) const { return state_[member].suspect; }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  struct Member {
    std::uint64_t incarnation = 0;
    bool suspect = false;
    sim::Time suspect_since = 0;
    bool dead = false;      // local verdict (stops probing; gossiped as suspicion)
    bool excluded = false;  // map-confirmed (authoritative; delta log said so)
    bool evict_tried = false;
  };

  sim::CoTask<net::Reply> on_ping(net::Request req);
  sim::CoTask<net::Reply> on_ping_req(net::Request req);
  sim::CoTask<net::Reply> on_map_fetch(net::Request req);

  sim::CoTask<void> probe_loop();
  sim::CoTask<void> probe_once();
  sim::CoTask<void> sweep_suspects();
  /// Submits `pool_evict` for member `m` with bounded attempts; marks
  /// evict_tried so one death declaration yields at most one submission
  /// campaign (a partitioned minority must not replay stale verdicts after
  /// the partition heals — refutation revives the member instead).
  sim::CoTask<void> submit_evict(std::uint32_t m);

  /// Next rotation member to probe (skips self, dead, excluded); reshuffles
  /// the permutation when exhausted. kNone when nobody is probeable.
  std::uint32_t next_member();
  std::vector<std::uint32_t> pick_witnesses(std::uint32_t subject) const;
  std::optional<std::uint32_t> member_index(net::NodeId node) const;
  bool probeable(std::uint32_t m) const;

  /// The piggyback: our own alive entry plus every live suspicion (including
  /// locally-dead-but-unconfirmed members, so a wrong verdict keeps being
  /// challenged until the victim refutes it).
  std::vector<engine::SwimMemberUpdate> gossip() const;
  void process_updates(const std::vector<engine::SwimMemberUpdate>& updates);
  void note_remote_map_version(std::uint32_t v);
  void apply_map_fetch(const engine::MapFetchResp& resp);
  /// Roots: pick up newly committed deltas from the co-located replica.
  void poll_local_root();
  /// Non-roots: pull missing deltas from the tree parent (root fallback).
  /// Single-flight: concurrent triggers coalesce into the running fetch.
  sim::CoTask<void> fetch_deltas();
  net::NodeId parent_node() const;

  engine::Engine& eng_;
  sim::Scheduler& sched_;
  std::uint32_t index_;
  std::vector<net::NodeId> members_;
  std::vector<net::NodeId> svc_nodes_;
  std::optional<net::NodeId> svc_hint_;  // last pool-service leader that answered
  SwimConfig cfg_;
  sim::Xoshiro256 rng_;
  std::vector<Member> state_;  // parallel to members_
  std::uint64_t incarnation_ = 0;
  std::vector<std::uint32_t> rotation_;
  std::size_t rotation_pos_ = 0;
  /// Local IV delta log: complete from version 1 (we start there and only
  /// ever append fetched suffixes), so any engine can serve kOpMapFetch.
  std::vector<engine::MapDeltaEntry> deltas_;
  std::uint32_t target_version_ = 1;  // highest map version heard of
  bool fetching_ = false;             // single-flight guard for fetch_deltas
  LocalMapSource local_map_source_;
  bool running_ = false;
  bool sweeping_ = false;
  telemetry::Counter* probes_ = nullptr;
  telemetry::Counter* ping_reqs_ = nullptr;
  telemetry::Counter* suspects_ = nullptr;
  telemetry::Counter* refutations_ = nullptr;
  telemetry::Counter* deaths_declared_ = nullptr;
  telemetry::Counter* delta_fetches_ = nullptr;
};

}  // namespace daosim::swim
