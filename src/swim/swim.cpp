#include "swim/swim.hpp"

#include <sstream>
#include <utility>

namespace daosim::swim {

using net::Body;
using net::Reply;
using net::Request;

namespace {
// Trace-digest tags folded into the deterministic run hash (0xFA17E010..E013).
constexpr std::uint64_t kTraceSwimSuspect = 0xFA17E010'0000'0000ULL;
constexpr std::uint64_t kTraceSwimRefute = 0xFA17E011'0000'0000ULL;
constexpr std::uint64_t kTraceSwimDead = 0xFA17E012'0000'0000ULL;
constexpr std::uint64_t kTraceIvFetch = 0xFA17E013'0000'0000ULL;

/// Wire size of a SWIM probe / ack / delta fetch (small control messages).
constexpr std::uint64_t kSwimMsgBytes = 128;

// pool_evict submission: bounded attempts with the usual leader-hint
// redirect; a failed campaign is NOT retried (see submit_evict).
constexpr int kEvictAttempts = 4;
constexpr sim::Time kEvictRetryDelay = 50 * sim::kMs;

// Delta fetch: bounded rounds per trigger; the probe loop re-triggers while
// the engine remains behind, so giving up costs one probe period.
constexpr int kFetchRounds = 8;
constexpr sim::Time kFetchRetryDelay = 20 * sim::kMs;
}  // namespace

SwimService::SwimService(engine::Engine& eng, std::uint32_t index,
                         std::vector<net::NodeId> members, std::vector<net::NodeId> svc_nodes,
                         SwimConfig cfg, std::uint64_t seed)
    : eng_(eng),
      sched_(eng.endpoint().domain().scheduler()),
      index_(index),
      members_(std::move(members)),
      svc_nodes_(std::move(svc_nodes)),
      cfg_(cfg),
      rng_(seed),
      state_(members_.size()) {
  DAOSIM_REQUIRE(index_ < members_.size(), "swim: member index %u out of range", index_);
  DAOSIM_REQUIRE(members_[index_] == eng_.node(), "swim: member list disagrees with engine");
  eng_.endpoint().register_handler(
      engine::kOpSwimPing, [this](Request req) { return on_ping(std::move(req)); });
  eng_.endpoint().register_handler(
      engine::kOpSwimPingReq, [this](Request req) { return on_ping_req(std::move(req)); });
  eng_.endpoint().register_handler(
      engine::kOpMapFetch, [this](Request req) { return on_map_fetch(std::move(req)); });
  telemetry::Registry& reg = eng_.telemetry();
  probes_ = &reg.find_or_create<telemetry::Counter>("swim/probes");
  ping_reqs_ = &reg.find_or_create<telemetry::Counter>("swim/ping_reqs");
  suspects_ = &reg.find_or_create<telemetry::Counter>("swim/suspects");
  refutations_ = &reg.find_or_create<telemetry::Counter>("swim/refutations");
  deaths_declared_ = &reg.find_or_create<telemetry::Counter>("swim/deaths_declared");
  delta_fetches_ = &reg.find_or_create<telemetry::Counter>("map/delta_fetches");
}

std::uint64_t SwimService::probes_sent() const { return probes_->value(); }
std::uint64_t SwimService::suspects_raised() const { return suspects_->value(); }
std::uint64_t SwimService::refutations() const { return refutations_->value(); }
std::uint64_t SwimService::deaths_declared() const { return deaths_declared_->value(); }
std::uint64_t SwimService::delta_fetches() const { return delta_fetches_->value(); }

void SwimService::start() {
  if (running_) return;
  running_ = true;
  sim::CoTask<void> loop = probe_loop();
  sched_.spawn(std::move(loop));
}

void SwimService::stop() { running_ = false; }

void SwimService::note_restart() {
  // Others may have accrued suspicion (or a local death verdict) against any
  // incarnation we gossiped before the crash; jumping past them lets our
  // first post-restart alive entry override all of it.
  incarnation_ += 2;
}

std::optional<std::uint32_t> SwimService::member_index(net::NodeId node) const {
  for (std::uint32_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == node) return i;
  }
  return std::nullopt;
}

bool SwimService::probeable(std::uint32_t m) const {
  return m != index_ && !state_[m].dead && !state_[m].excluded;
}

std::uint32_t SwimService::next_member() {
  bool any = false;
  for (std::uint32_t i = 0; i < state_.size(); ++i) any = any || probeable(i);
  if (!any) return kNone;
  // Randomized round robin (the SWIM paper's probe order): walk a shuffled
  // permutation, reshuffling on wrap, so every member is probed within one
  // round yet the order varies — deterministically, from the seeded rng.
  for (;;) {
    if (rotation_pos_ >= rotation_.size()) {
      rotation_.resize(members_.size());
      for (std::uint32_t i = 0; i < rotation_.size(); ++i) rotation_[i] = i;
      rng_.shuffle(rotation_);
      rotation_pos_ = 0;
    }
    const std::uint32_t m = rotation_[rotation_pos_++];
    if (probeable(m)) return m;
  }
}

std::vector<std::uint32_t> SwimService::pick_witnesses(std::uint32_t subject) const {
  // Deterministic: the next alive members after the subject in index order.
  std::vector<std::uint32_t> out;
  for (std::uint32_t step = 1; step < members_.size() && out.size() < cfg_.witnesses; ++step) {
    const std::uint32_t m = (subject + step) % std::uint32_t(members_.size());
    if (m != index_ && m != subject && probeable(m)) out.push_back(m);
  }
  return out;
}

std::vector<engine::SwimMemberUpdate> SwimService::gossip() const {
  std::vector<engine::SwimMemberUpdate> out;
  out.push_back(engine::SwimMemberUpdate{eng_.node(), incarnation_, false});
  for (std::uint32_t m = 0; m < state_.size(); ++m) {
    const Member& mi = state_[m];
    // Suspicions ride every message; a local death verdict that the map has
    // not confirmed keeps riding too, so a wrong verdict (partitioned
    // observer) keeps being challenged until the victim refutes it.
    if (mi.excluded) continue;
    if (mi.suspect || mi.dead) {
      out.push_back(engine::SwimMemberUpdate{members_[m], mi.incarnation, true});
    }
  }
  return out;
}

void SwimService::process_updates(const std::vector<engine::SwimMemberUpdate>& updates) {
  for (const engine::SwimMemberUpdate& u : updates) {
    if (u.member == eng_.node()) {
      // Somebody suspects us: refute by bumping our incarnation. The bumped
      // alive entry rides our next ack/probe and overrides the suspicion.
      if (u.suspect && u.incarnation >= incarnation_) {
        incarnation_ = u.incarnation + 1;
        refutations_->inc();
        sched_.trace_note(kTraceSwimRefute ^ (std::uint64_t(index_) << 32) ^ incarnation_);
      }
      continue;
    }
    const std::optional<std::uint32_t> idx = member_index(u.member);
    if (!idx) continue;
    Member& mi = state_[*idx];
    if (mi.excluded) continue;  // map-confirmed state is authoritative
    if (u.suspect) {
      // Suspicion wins ties (SWIM: suspect(i) overrides alive(i)).
      if (u.incarnation >= mi.incarnation && !mi.suspect && !mi.dead) {
        mi.suspect = true;
        mi.suspect_since = sched_.now();
        suspects_->inc();
        sched_.trace_note(kTraceSwimSuspect ^ (std::uint64_t(index_) << 32) ^ *idx);
      }
      if (u.incarnation > mi.incarnation) mi.incarnation = u.incarnation;
    } else if (u.incarnation > mi.incarnation) {
      // A strictly newer alive entry is a refutation: it clears suspicion
      // and revives a locally-dead member the map never confirmed dead.
      mi.incarnation = u.incarnation;
      mi.suspect = false;
      mi.dead = false;
      mi.evict_tried = false;
    }
  }
}

// ---------------------------------------------------------------------------
// Handlers

sim::CoTask<net::Reply> SwimService::on_ping(net::Request req) {
  const auto& r = req.body.get<engine::SwimPingReq>();
  process_updates(r.updates);
  note_remote_map_version(r.map_version);
  engine::SwimPingResp resp;
  resp.map_version = eng_.cached_map_version();
  resp.updates = gossip();
  co_return Reply{Errno::ok, kSwimMsgBytes, Body::make(std::move(resp))};
}

sim::CoTask<net::Reply> SwimService::on_ping_req(net::Request req) {
  // Witness role: ping the subject on the prober's behalf. The indirect path
  // is what separates "the subject is dead" from "my link to it is bad".
  const auto& r = req.body.get<engine::SwimPingReqReq>();
  process_updates(r.updates);
  note_remote_map_version(r.map_version);
  const net::NodeId subject = r.subject;
  engine::SwimPingReq ping;
  ping.from = eng_.node();
  ping.map_version = eng_.cached_map_version();
  ping.updates = gossip();
  Body body = Body::make(std::move(ping));
  // req.ctx threads the prober's trace through the relay: probe -> ping-req
  // -> relayed ping shows up as one chain across three nodes.
  Reply sub = co_await eng_.endpoint().call(subject, engine::kOpSwimPing, std::move(body),
                                            kSwimMsgBytes, req.ctx);
  engine::SwimPingResp resp;
  resp.subject_acked = sub.status == Errno::ok;
  if (sub.status == Errno::ok) {
    const auto& ack = sub.body.get<engine::SwimPingResp>();
    process_updates(ack.updates);
    note_remote_map_version(ack.map_version);
  }
  resp.map_version = eng_.cached_map_version();
  resp.updates = gossip();
  co_return Reply{Errno::ok, kSwimMsgBytes, Body::make(std::move(resp))};
}

sim::CoTask<net::Reply> SwimService::on_map_fetch(net::Request req) {
  const auto& r = req.body.get<engine::MapFetchReq>();
  engine::MapFetchResp resp;
  if (local_map_source_) {
    // Root: answer from the co-located replica's Raft-committed state.
    resp = local_map_source_(r.since);
  } else {
    resp.latest_version = eng_.cached_map_version();
    for (const engine::MapDeltaEntry& d : deltas_) {
      if (d.version > r.since) resp.deltas.push_back(d);
    }
  }
  const std::uint64_t wire = kSwimMsgBytes + 16 * resp.deltas.size();
  co_return Reply{Errno::ok, wire, Body::make(std::move(resp))};
}

// ---------------------------------------------------------------------------
// IV map dissemination

void SwimService::note_remote_map_version(std::uint32_t v) {
  if (v <= target_version_) return;
  target_version_ = v;
  if (local_map_source_) {
    poll_local_root();  // a root is never more than one poll behind its replica
    return;
  }
  if (!fetching_ && running_ && !eng_.endpoint().is_down()) {
    sim::CoTask<void> task = fetch_deltas();
    sched_.spawn(std::move(task));
  }
}

void SwimService::poll_local_root() {
  if (!local_map_source_) return;
  const engine::MapFetchResp resp = local_map_source_(eng_.cached_map_version());
  if (resp.latest_version > eng_.cached_map_version()) apply_map_fetch(resp);
}

void SwimService::apply_map_fetch(const engine::MapFetchResp& resp) {
  const std::uint32_t before = eng_.cached_map_version();
  for (const engine::MapDeltaEntry& d : resp.deltas) {
    if (d.version <= before) continue;  // already have it
    deltas_.push_back(d);
    const std::optional<std::uint32_t> idx = member_index(d.engine);
    if (!idx || *idx == index_) continue;
    Member& mi = state_[*idx];
    if (d.excluded) {
      // Eviction committed: the verdict is final, stop probing the member.
      mi.excluded = true;
      mi.dead = true;
      mi.suspect = false;
      mi.evict_tried = true;
    } else {
      // Reintegration: the member is back; start from a clean slate.
      mi.excluded = false;
      mi.dead = false;
      mi.suspect = false;
      mi.evict_tried = false;
    }
  }
  if (resp.latest_version > before) {
    eng_.set_cached_map_version(resp.latest_version);
    if (resp.latest_version > target_version_) target_version_ = resp.latest_version;
  }
}

net::NodeId SwimService::parent_node() const {
  const std::uint32_t fanout = cfg_.iv_fanout > 0 ? cfg_.iv_fanout : 1;
  const std::uint32_t parent = index_ == 0 ? 0 : (index_ - 1) / fanout;
  return members_[parent];
}

sim::CoTask<void> SwimService::fetch_deltas() {
  if (fetching_) co_return;  // single-flight: the running fetch covers us
  fetching_ = true;
  for (int round = 0; round < kFetchRounds; ++round) {
    if (!running_ || eng_.endpoint().is_down()) break;
    if (target_version_ <= eng_.cached_map_version()) break;
    // Tree parent first; on failure (or a parent as stale as us) fall back
    // to the tree root, which is a pool-service engine and authoritative.
    const net::NodeId src = round == 0 ? parent_node() : members_[0];
    engine::MapFetchReq req{eng_.cached_map_version()};
    Body body = Body::make(std::move(req));
    Reply r =
        co_await eng_.endpoint().call(src, engine::kOpMapFetch, std::move(body), kSwimMsgBytes);
    if (r.status == Errno::ok) {
      const auto& resp = r.body.get<engine::MapFetchResp>();
      if (resp.latest_version > eng_.cached_map_version()) {
        delta_fetches_->inc();
        apply_map_fetch(resp);
        sched_.trace_note(kTraceIvFetch ^ (std::uint64_t(index_) << 32) ^
                          eng_.cached_map_version());
        continue;
      }
    }
    co_await sched_.delay(kFetchRetryDelay);
  }
  fetching_ = false;
}

// ---------------------------------------------------------------------------
// Probe loop

sim::CoTask<void> SwimService::probe_loop() {
  while (running_) {
    co_await sched_.delay(cfg_.probe_period);
    if (!running_) break;
    if (eng_.endpoint().is_down()) continue;  // a crashed engine acts on restart
    poll_local_root();
    co_await probe_once();
    co_await sweep_suspects();
    if (!local_map_source_ && target_version_ > eng_.cached_map_version() && !fetching_) {
      co_await fetch_deltas();  // backstop; normally triggered from gossip
    }
  }
}

sim::CoTask<void> SwimService::probe_once() {
  const std::uint32_t m = next_member();
  if (m == kNone) co_return;
  const net::NodeId subject = members_[m];
  probes_->inc();
  // Every probe round is a trace root (no sampling): the direct ping and any
  // witness fan assemble into one tree under the "probe" span emitted by the
  // guard below. Id allocation is a pure counter bump.
  const sim::TraceContext ctx = sim::TraceContext::root(sched_.alloc_span_id());
  const sim::Time probe_t0 = sched_.now();
  struct ProbeSpan {
    sim::Scheduler& sched;
    net::NodeId node;
    net::NodeId subject;
    sim::Time t0;
    sim::TraceContext ctx;
    ~ProbeSpan() {
      if (sim::SpanSink* sink = sched.span_sink()) {
        sink->span("probe", strfmt("probe ->%u", subject), node, 0, t0, sched.now(), ctx);
      }
    }
  } probe_span{sched_, eng_.node(), subject, probe_t0, ctx};
  engine::SwimPingReq ping;
  ping.from = eng_.node();
  ping.map_version = eng_.cached_map_version();
  ping.updates = gossip();
  Body body = Body::make(std::move(ping));
  Reply r = co_await eng_.endpoint().call(subject, engine::kOpSwimPing, std::move(body),
                                          kSwimMsgBytes, ctx);
  if (r.status == Errno::ok) {
    const auto& ack = r.body.get<engine::SwimPingResp>();
    process_updates(ack.updates);
    note_remote_map_version(ack.map_version);
    co_return;
  }
  // Direct probe failed: try k witnesses before suspecting. The witnesses'
  // own links to the subject stand in for ours, so a one-way partition or a
  // dropped probe does not immediately indict the subject.
  const std::vector<std::uint32_t> witnesses = pick_witnesses(m);
  for (const std::uint32_t w : witnesses) {
    ping_reqs_->inc();
    engine::SwimPingReqReq rr;
    rr.from = eng_.node();
    rr.subject = subject;
    rr.map_version = eng_.cached_map_version();
    rr.updates = gossip();
    Body rbody = Body::make(std::move(rr));
    Reply wr = co_await eng_.endpoint().call(members_[w], engine::kOpSwimPingReq,
                                             std::move(rbody), kSwimMsgBytes, ctx);
    if (wr.status != Errno::ok) continue;
    const auto& ack = wr.body.get<engine::SwimPingResp>();
    process_updates(ack.updates);
    note_remote_map_version(ack.map_version);
    if (ack.subject_acked) co_return;  // reachable through the witness: alive
  }
  Member& mi = state_[m];
  if (!mi.suspect && !mi.dead && !mi.excluded) {
    mi.suspect = true;
    mi.suspect_since = sched_.now();
    suspects_->inc();
    sched_.trace_note(kTraceSwimSuspect ^ (std::uint64_t(index_) << 32) ^ m);
  }
}

sim::CoTask<void> SwimService::sweep_suspects() {
  if (sweeping_) co_return;
  sweeping_ = true;
  const sim::Time now = sched_.now();
  for (std::uint32_t m = 0; m < state_.size(); ++m) {
    if (state_[m].suspect && !state_[m].dead &&
        now - state_[m].suspect_since >= cfg_.suspect_timeout) {
      state_[m].suspect = false;
      state_[m].dead = true;
      deaths_declared_->inc();
      sched_.trace_note(kTraceSwimDead ^ (std::uint64_t(index_) << 32) ^ m);
    }
    if (state_[m].dead && !state_[m].excluded && !state_[m].evict_tried) {
      co_await submit_evict(m);  // state_ re-indexed after the suspension
    }
  }
  sweeping_ = false;
}

sim::CoTask<void> SwimService::submit_evict(std::uint32_t m) {
  // One campaign per death declaration: if the pool service is unreachable
  // (we may be the partitioned minority), do NOT retry later — a stale
  // verdict replayed after the partition heals would evict a healthy
  // engine. If the member is truly dead, a detector that CAN reach the
  // service evicts it; if we were wrong, refutation revives the member.
  state_[m].evict_tried = true;
  const net::NodeId member = members_[m];
  for (int attempt = 0; attempt < kEvictAttempts; ++attempt) {
    const net::NodeId dst =
        svc_hint_ ? *svc_hint_ : svc_nodes_[std::size_t(attempt) % svc_nodes_.size()];
    engine::PoolSvcReq preq{strfmt("pool_evict %u", member)};
    Body body = Body::make(std::move(preq));
    Reply r =
        co_await eng_.endpoint().call(dst, engine::kOpPoolSvc, std::move(body), kSwimMsgBytes);
    if (r.status == Errno::ok) {
      svc_hint_ = dst;
      // The committed eviction comes back as a delta; apply_map_fetch marks
      // the member excluded when it arrives.
      std::istringstream is(r.body.get<engine::PoolSvcResp>().response);
      std::string status;
      std::uint32_t version = 0;
      if (is >> status >> version && status == "ok") note_remote_map_version(version);
      co_return;
    }
    svc_hint_.reset();
    if (r.status == Errno::again && r.body.has_value()) {
      svc_hint_ = r.body.get<engine::PoolSvcResp>().leader_hint;
    }
    co_await sched_.delay(kEvictRetryDelay);
  }
}

}  // namespace daosim::swim
