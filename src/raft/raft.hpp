// Raft consensus over the simulated fabric.
//
// DAOS replicates its pool and container metadata through a Raft-based
// service (§II of the paper: "a RAFT-based consensus algorithm for
// distributed, transactional indexing"). This is a from-scratch Raft with
// leader election, log replication, commitment, client sessions, and
// log-compaction snapshots, following the Raft paper's rules. The pool
// service (src/pool) runs its metadata state machine on top of it.
//
// Stable state (term, vote, log, snapshot) survives crash()/restart();
// volatile state (role, commit index, applied state machine) is rebuilt,
// matching Raft's persistence contract.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/rpc.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"

namespace daosim::raft {

/// Replicated state machine interface. Commands and snapshots are opaque
/// byte strings; apply() must be deterministic.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual std::string apply(const std::string& command) = 0;
  virtual std::string snapshot() const = 0;
  virtual void restore(const std::string& snapshot) = 0;
};

struct RaftConfig {
  sim::Time election_timeout_min = 150 * sim::kMs;
  sim::Time election_timeout_max = 300 * sim::kMs;
  sim::Time heartbeat_interval = 50 * sim::kMs;
  /// Compact the log once it exceeds this many entries.
  std::size_t snapshot_threshold = 4096;
};

struct LogEntry {
  std::uint64_t term = 0;
  std::string command;  // empty = no-op barrier entry
};

/// Outcome of RaftNode::submit.
struct SubmitResult {
  Errno status = Errno::ok;
  std::string response;                        // state machine output when ok
  std::optional<net::NodeId> leader_hint{};    // populated on Errno::again
};

// RPC opcodes used by Raft (shared RpcEndpoint with other services).
constexpr std::uint16_t kOpRequestVote = 0x10;
constexpr std::uint16_t kOpAppendEntries = 0x11;
constexpr std::uint16_t kOpInstallSnapshot = 0x12;

class RaftNode {
 public:
  /// @param ep       this replica's RPC endpoint (handlers are registered)
  /// @param members  fabric node ids of all replicas, including this one
  RaftNode(net::RpcEndpoint& ep, std::vector<net::NodeId> members, StateMachine& sm,
           RaftConfig cfg, std::uint64_t seed);

  RaftNode(const RaftNode&) = delete;
  RaftNode& operator=(const RaftNode&) = delete;

  /// Spawns the election ticker and apply loop.
  void start();
  /// Graceful stop: halts all loops, fails pending submissions.
  void stop();
  /// Simulated crash: node drops off the network and loses volatile state.
  void crash();
  /// Recovers from stable storage and rejoins.
  void restart();

  /// Replicates `command`; completes once it is committed and applied on this
  /// leader. Non-leaders fail fast with Errno::again plus a leader hint.
  sim::CoTask<SubmitResult> submit(std::string command);

  bool is_leader() const { return role_ == Role::leader && running_; }
  bool running() const { return running_; }
  std::uint64_t current_term() const { return term_; }
  std::optional<net::NodeId> leader_hint() const { return leader_hint_; }
  net::NodeId id() const { return ep_.node(); }

  // Introspection for tests and reports.
  std::uint64_t commit_index() const { return commit_; }
  std::uint64_t last_applied() const { return applied_; }
  std::uint64_t last_log_index() const { return snap_last_index_ + log_.size(); }
  std::uint64_t log_size() const { return log_.size(); }
  std::uint64_t snapshot_index() const { return snap_last_index_; }
  /// Returns the command at 1-based log index, if still in the log.
  std::optional<LogEntry> entry_at(std::uint64_t index) const;

 private:
  enum class Role { follower, candidate, leader };

  struct Waiter {
    explicit Waiter(sim::Scheduler& s) : done(s) {}
    sim::Event done;
    std::uint64_t term = 0;
    std::string response;
    bool failed = false;
  };

  // --- message types (carried in net::Body) ---
  struct VoteReq {
    std::uint64_t term;
    net::NodeId candidate;
    std::uint64_t last_log_index;
    std::uint64_t last_log_term;
  };
  struct VoteResp {
    std::uint64_t term;
    bool granted;
  };
  struct AppendReq {
    std::uint64_t term;
    net::NodeId leader;
    std::uint64_t prev_index;
    std::uint64_t prev_term;
    std::vector<LogEntry> entries;
    std::uint64_t leader_commit;
  };
  struct AppendResp {
    std::uint64_t term;
    bool success;
    std::uint64_t match_index;
    std::uint64_t conflict_index;
  };
  struct SnapReq {
    std::uint64_t term;
    net::NodeId leader;
    std::uint64_t last_index;
    std::uint64_t last_term;
    std::string data;
  };
  struct SnapResp {
    std::uint64_t term;
  };

  // --- coroutine loops ---
  sim::CoTask<void> ticker();
  sim::CoTask<void> apply_loop();
  sim::CoTask<void> replicator(net::NodeId peer);
  sim::CoTask<void> run_election();
  sim::CoTask<void> solicit_vote(net::NodeId peer, std::uint64_t term,
                                 std::shared_ptr<struct VoteTally> tally);

  // --- RPC handlers ---
  sim::CoTask<net::Reply> on_request_vote(net::Request req);
  sim::CoTask<net::Reply> on_append_entries(net::Request req);
  sim::CoTask<net::Reply> on_install_snapshot(net::Request req);

  // --- helpers ---
  void become_follower(std::uint64_t term);
  void become_leader();
  void advance_commit();
  void fail_waiters();
  void maybe_compact();
  void poke_replicators();
  void halt(bool drop_network);
  std::uint64_t term_at(std::uint64_t index) const;
  sim::Time random_timeout();
  static std::uint64_t entries_wire_size(const std::vector<LogEntry>& es);

  net::RpcEndpoint& ep_;
  sim::Scheduler& sched_;
  std::vector<net::NodeId> members_;
  StateMachine& sm_;
  RaftConfig cfg_;
  sim::Xoshiro256 rng_;

  // Stable state (survives crash).
  std::uint64_t term_ = 0;
  std::optional<net::NodeId> voted_for_{};
  std::deque<LogEntry> log_;  // log_[i] has 1-based index snap_last_index_+1+i
  std::uint64_t snap_last_index_ = 0;
  std::uint64_t snap_last_term_ = 0;
  std::string snap_data_;

  // Volatile state.
  bool running_ = false;
  Role role_ = Role::follower;
  std::optional<net::NodeId> leader_hint_{};
  std::uint64_t commit_ = 0;
  std::uint64_t applied_ = 0;
  sim::Time last_heartbeat_ = 0;
  sim::Time election_deadline_ = 0;
  std::uint64_t epoch_ = 0;  // bumped on stop/crash to retire old loops
  std::map<net::NodeId, std::uint64_t> next_index_;
  std::map<net::NodeId, std::uint64_t> match_index_;
  std::unique_ptr<sim::Event> apply_notify_;
  std::map<net::NodeId, std::unique_ptr<sim::Event>> peer_notify_;
  std::map<std::uint64_t, Waiter*> waiters_;  // log index -> submitter
};

}  // namespace daosim::raft
