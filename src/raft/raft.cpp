#include "raft/raft.hpp"

#include <algorithm>

namespace daosim::raft {

using net::Body;
using net::Reply;
using net::Request;

namespace {
constexpr std::uint64_t kControlMsgBytes = 64;
constexpr std::size_t kMaxEntriesPerAppend = 256;
constexpr sim::Time kTickInterval = 10 * sim::kMs;
}  // namespace

/// Shared tally for one election round.
struct VoteTally {
  std::size_t granted = 1;  // own vote
  bool decided = false;
};

RaftNode::RaftNode(net::RpcEndpoint& ep, std::vector<net::NodeId> members, StateMachine& sm,
                   RaftConfig cfg, std::uint64_t seed)
    : ep_(ep),
      sched_(ep.domain().scheduler()),
      members_(std::move(members)),
      sm_(sm),
      cfg_(cfg),
      rng_(seed ^ (0x5851F42D4C957F2DULL * (ep.node() + 1))) {
  DAOSIM_REQUIRE(!members_.empty(), "raft group cannot be empty");
  DAOSIM_REQUIRE(std::find(members_.begin(), members_.end(), ep_.node()) != members_.end(),
                 "this node must be a group member");
  apply_notify_ = std::make_unique<sim::Event>(sched_);
  for (auto m : members_) {
    if (m != ep_.node()) peer_notify_[m] = std::make_unique<sim::Event>(sched_);
  }
  ep_.register_handler(kOpRequestVote, [this](Request r) { return on_request_vote(std::move(r)); });
  ep_.register_handler(kOpAppendEntries,
                       [this](Request r) { return on_append_entries(std::move(r)); });
  ep_.register_handler(kOpInstallSnapshot,
                       [this](Request r) { return on_install_snapshot(std::move(r)); });
}

sim::Time RaftNode::random_timeout() {
  const sim::Time span = cfg_.election_timeout_max - cfg_.election_timeout_min;
  return cfg_.election_timeout_min + (span ? rng_.uniform(span) : 0);
}

std::uint64_t RaftNode::term_at(std::uint64_t index) const {
  if (index == 0) return 0;
  if (index == snap_last_index_) return snap_last_term_;
  DAOSIM_REQUIRE(index > snap_last_index_ && index <= last_log_index(),
                 "term_at(%llu) outside log [%llu, %llu]", static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(snap_last_index_), static_cast<unsigned long long>(last_log_index()));
  return log_[index - snap_last_index_ - 1].term;
}

std::optional<LogEntry> RaftNode::entry_at(std::uint64_t index) const {
  if (index <= snap_last_index_ || index > last_log_index()) return std::nullopt;
  return log_[index - snap_last_index_ - 1];
}

std::uint64_t RaftNode::entries_wire_size(const std::vector<LogEntry>& es) {
  std::uint64_t b = kControlMsgBytes;
  for (const auto& e : es) b += e.command.size() + 24;
  return b;
}

void RaftNode::start() {
  DAOSIM_REQUIRE(!running_, "raft node already running");
  running_ = true;
  ++epoch_;
  role_ = Role::follower;
  election_deadline_ = sched_.now() + random_timeout();
  sched_.spawn(ticker());
  sched_.spawn(apply_loop());
}

void RaftNode::halt(bool drop_network) {
  running_ = false;
  ++epoch_;
  role_ = Role::follower;
  fail_waiters();
  apply_notify_->set();
  for (auto& [peer, ev] : peer_notify_) ev->set();
  if (drop_network) ep_.set_down(true);
}

void RaftNode::stop() { halt(/*drop_network=*/false); }

void RaftNode::crash() { halt(/*drop_network=*/true); }

void RaftNode::restart() {
  DAOSIM_REQUIRE(!running_, "restart of a running node");
  ep_.set_down(false);
  leader_hint_.reset();
  commit_ = snap_last_index_;
  applied_ = snap_last_index_;
  sm_.restore(snap_data_);
  apply_notify_->reset();
  for (auto& [peer, ev] : peer_notify_) ev->reset();
  start();
}

void RaftNode::become_follower(std::uint64_t term) {
  const bool was_leader = role_ == Role::leader;
  term_ = term;
  role_ = Role::follower;
  voted_for_.reset();
  election_deadline_ = sched_.now() + random_timeout();
  if (was_leader) fail_waiters();
}

void RaftNode::become_leader() {
  role_ = Role::leader;
  leader_hint_ = ep_.node();
  for (auto m : members_) {
    if (m == ep_.node()) continue;
    next_index_[m] = last_log_index() + 1;
    match_index_[m] = 0;
  }
  // Barrier no-op: commits entries from previous terms (Raft §5.4.2).
  log_.push_back(LogEntry{term_, ""});
  for (auto m : members_) {
    if (m != ep_.node()) sched_.spawn(replicator(m));
  }
  advance_commit();
  poke_replicators();
}

void RaftNode::poke_replicators() {
  for (auto& [peer, ev] : peer_notify_) ev->set();
}

void RaftNode::fail_waiters() {
  for (auto& [idx, w] : waiters_) {
    w->failed = true;
    w->done.set();
  }
  waiters_.clear();
}

void RaftNode::advance_commit() {
  if (role_ != Role::leader) return;
  std::vector<std::uint64_t> matches;
  matches.push_back(last_log_index());
  for (auto m : members_) {
    if (m != ep_.node()) matches.push_back(match_index_[m]);
  }
  std::sort(matches.begin(), matches.end(), std::greater<>());
  const std::uint64_t majority_match = matches[members_.size() / 2];
  if (majority_match > commit_ && majority_match > snap_last_index_ &&
      term_at(majority_match) == term_) {
    commit_ = majority_match;
    apply_notify_->set();
  }
}

void RaftNode::maybe_compact() {
  if (log_.size() <= cfg_.snapshot_threshold || applied_ <= snap_last_index_) return;
  snap_data_ = sm_.snapshot();
  snap_last_term_ = term_at(applied_);
  const std::uint64_t drop = applied_ - snap_last_index_;
  log_.erase(log_.begin(), log_.begin() + std::ptrdiff_t(drop));
  snap_last_index_ = applied_;
}

// ---------------------------------------------------------------------------
// Loops

sim::CoTask<void> RaftNode::ticker() {
  const std::uint64_t epoch = epoch_;
  while (running_ && epoch == epoch_) {
    co_await sched_.delay(kTickInterval);
    if (!running_ || epoch != epoch_) co_return;
    if (role_ == Role::leader) continue;
    if (sched_.now() >= election_deadline_) {
      sched_.spawn(run_election());
      election_deadline_ = sched_.now() + random_timeout();
    }
  }
}

sim::CoTask<void> RaftNode::run_election() {
  if (!running_ || role_ == Role::leader) co_return;
  ++term_;
  role_ = Role::candidate;
  voted_for_ = ep_.node();
  leader_hint_.reset();
  auto tally = std::make_shared<VoteTally>();
  const std::uint64_t majority = members_.size() / 2 + 1;
  const std::uint64_t term = term_;
  if (tally->granted >= majority) {  // single-node group
    tally->decided = true;
    become_leader();
    co_return;
  }
  for (auto m : members_) {
    if (m != ep_.node()) sched_.spawn(solicit_vote(m, term, tally));
  }
}

sim::CoTask<void> RaftNode::solicit_vote(net::NodeId peer, std::uint64_t term,
                                         std::shared_ptr<VoteTally> tally) {
  VoteReq req{term, ep_.node(), last_log_index(), term_at(last_log_index())};
  Reply r = co_await ep_.call(peer, kOpRequestVote, Body::make(req), kControlMsgBytes);
  if (!running_ || term_ != term || role_ != Role::candidate || tally->decided) co_return;
  if (r.status != Errno::ok) co_return;
  const auto& resp = r.body.get<VoteResp>();
  if (resp.term > term_) {
    become_follower(resp.term);
    co_return;
  }
  if (resp.granted && ++tally->granted >= members_.size() / 2 + 1) {
    tally->decided = true;
    become_leader();
  }
}

sim::CoTask<void> RaftNode::replicator(net::NodeId peer) {
  const std::uint64_t epoch = epoch_;
  const std::uint64_t term = term_;
  // peer_notify_ is filled once per membership and entries are never erased;
  // the unique_ptr indirection keeps each Event's address stable regardless.
  auto& notify = *peer_notify_.at(peer);  // daosim-check: allow(ref-across-suspend): insert-only map of unique_ptr; Event address is stable
  while (running_ && epoch == epoch_ && role_ == Role::leader && term_ == term) {
    std::uint64_t ni = next_index_[peer];
    if (ni <= snap_last_index_) {
      // Follower is behind the compacted log: ship the snapshot.
      SnapReq req{term, ep_.node(), snap_last_index_, snap_last_term_, snap_data_};
      Reply r = co_await ep_.call(peer, kOpInstallSnapshot, Body::make(req),
                                  kControlMsgBytes + snap_data_.size());
      if (!running_ || epoch != epoch_ || term_ != term || role_ != Role::leader) co_return;
      if (r.status == Errno::ok) {
        const auto& resp = r.body.get<SnapResp>();
        if (resp.term > term_) {
          become_follower(resp.term);
          co_return;
        }
        next_index_[peer] = snap_last_index_ + 1;
        match_index_[peer] = snap_last_index_;
      }
      continue;
    }

    const std::uint64_t prev = ni - 1;
    AppendReq req{term, ep_.node(), prev, term_at(prev), {}, commit_};
    const std::uint64_t first = ni - snap_last_index_ - 1;
    const std::size_t count =
        std::min(kMaxEntriesPerAppend, log_.size() - std::size_t(first));
    req.entries.assign(log_.begin() + std::ptrdiff_t(first),
                       log_.begin() + std::ptrdiff_t(first + count));
    Reply r = co_await ep_.call(peer, kOpAppendEntries, Body::make(std::move(req)),
                                entries_wire_size(req.entries));
    if (!running_ || epoch != epoch_ || term_ != term || role_ != Role::leader) co_return;
    if (r.status == Errno::ok) {
      const auto& resp = r.body.get<AppendResp>();
      if (resp.term > term_) {
        become_follower(resp.term);
        co_return;
      }
      if (resp.success) {
        match_index_[peer] = std::max(match_index_[peer], resp.match_index);
        next_index_[peer] = match_index_[peer] + 1;
        advance_commit();
      } else {
        next_index_[peer] = std::max<std::uint64_t>(
            1, std::min(resp.conflict_index, last_log_index()));
        continue;  // retry immediately with the earlier index
      }
    }
    // Nothing new to send? Sleep until poked or the heartbeat interval.
    if (next_index_[peer] > last_log_index()) {
      notify.reset();
      if (next_index_[peer] > last_log_index()) {
        co_await notify.wait_for(cfg_.heartbeat_interval);
      }
    }
  }
}

sim::CoTask<void> RaftNode::apply_loop() {
  const std::uint64_t epoch = epoch_;
  while (running_ && epoch == epoch_) {
    co_await apply_notify_->wait();
    if (!running_ || epoch != epoch_) co_return;
    apply_notify_->reset();
    while (applied_ < commit_) {
      ++applied_;
      auto entry = entry_at(applied_);
      DAOSIM_REQUIRE(entry.has_value(), "committed entry %llu missing from log",
                     static_cast<unsigned long long>(applied_));
      std::string response = entry->command.empty() ? std::string() : sm_.apply(entry->command);
      auto it = waiters_.find(applied_);
      if (it != waiters_.end()) {
        Waiter* w = it->second;
        waiters_.erase(it);
        if (w->term == entry->term) {
          w->response = std::move(response);
        } else {
          w->failed = true;  // a different leader's entry landed at our index
        }
        w->done.set();
      }
    }
    maybe_compact();
  }
}

// ---------------------------------------------------------------------------
// Client interface

sim::CoTask<SubmitResult> RaftNode::submit(std::string command) {
  if (!running_ || role_ != Role::leader) {
    co_return SubmitResult{Errno::again, {}, leader_hint_};
  }
  log_.push_back(LogEntry{term_, std::move(command)});
  const std::uint64_t index = last_log_index();
  Waiter waiter(sched_);
  waiter.term = term_;
  waiters_[index] = &waiter;
  advance_commit();  // single-node groups commit immediately
  poke_replicators();
  co_await waiter.done.wait();
  if (waiter.failed) {
    co_return SubmitResult{Errno::stale, {}, leader_hint_};
  }
  co_return SubmitResult{Errno::ok, std::move(waiter.response), ep_.node()};
}

// ---------------------------------------------------------------------------
// RPC handlers

sim::CoTask<net::Reply> RaftNode::on_request_vote(net::Request req) {
  if (!running_) co_return Reply{Errno::busy, 0, {}};
  const auto& rv = req.body.get<VoteReq>();
  VoteResp resp{term_, false};
  if (rv.term > term_) become_follower(rv.term);
  resp.term = term_;
  const bool up_to_date =
      rv.last_log_term > term_at(last_log_index()) ||
      (rv.last_log_term == term_at(last_log_index()) && rv.last_log_index >= last_log_index());
  if (rv.term == term_ && up_to_date &&
      (!voted_for_.has_value() || *voted_for_ == rv.candidate)) {
    voted_for_ = rv.candidate;
    resp.granted = true;
    election_deadline_ = sched_.now() + random_timeout();
  }
  co_return Reply{Errno::ok, kControlMsgBytes, Body::make(resp)};
}

sim::CoTask<net::Reply> RaftNode::on_append_entries(net::Request req) {
  if (!running_) co_return Reply{Errno::busy, 0, {}};
  auto& ae = req.body.get<AppendReq>();
  AppendResp resp{term_, false, 0, 0};
  if (ae.term < term_) {
    co_return Reply{Errno::ok, kControlMsgBytes, Body::make(resp)};
  }
  if (ae.term > term_ || role_ == Role::candidate) become_follower(ae.term);
  resp.term = term_;
  leader_hint_ = ae.leader;
  election_deadline_ = sched_.now() + random_timeout();

  if (ae.prev_index > last_log_index()) {
    resp.conflict_index = last_log_index() + 1;
    co_return Reply{Errno::ok, kControlMsgBytes, Body::make(resp)};
  }
  if (ae.prev_index > snap_last_index_ && term_at(ae.prev_index) != ae.prev_term) {
    // Back up over the whole conflicting term in one round trip.
    const std::uint64_t bad_term = term_at(ae.prev_index);
    std::uint64_t ci = ae.prev_index;
    while (ci > snap_last_index_ + 1 && term_at(ci - 1) == bad_term) --ci;
    resp.conflict_index = ci;
    co_return Reply{Errno::ok, kControlMsgBytes, Body::make(resp)};
  }

  for (std::size_t k = 0; k < ae.entries.size(); ++k) {
    const std::uint64_t idx = ae.prev_index + 1 + k;
    if (idx <= snap_last_index_) continue;  // already covered by our snapshot
    if (idx <= last_log_index()) {
      if (term_at(idx) == ae.entries[k].term) continue;
      log_.erase(log_.begin() + std::ptrdiff_t(idx - snap_last_index_ - 1), log_.end());
    }
    log_.push_back(ae.entries[k]);
  }
  resp.success = true;
  resp.match_index = ae.prev_index + ae.entries.size();
  if (ae.leader_commit > commit_) {
    commit_ = std::min(ae.leader_commit, last_log_index());
    apply_notify_->set();
  }
  co_return Reply{Errno::ok, kControlMsgBytes, Body::make(resp)};
}

sim::CoTask<net::Reply> RaftNode::on_install_snapshot(net::Request req) {
  if (!running_) co_return Reply{Errno::busy, 0, {}};
  const auto& snap = req.body.get<SnapReq>();
  if (snap.term < term_) {
    co_return Reply{Errno::ok, kControlMsgBytes, Body::make(SnapResp{term_})};
  }
  if (snap.term > term_ || role_ == Role::candidate) become_follower(snap.term);
  leader_hint_ = snap.leader;
  election_deadline_ = sched_.now() + random_timeout();
  if (snap.last_index > snap_last_index_) {
    sm_.restore(snap.data);
    snap_data_ = snap.data;
    snap_last_index_ = snap.last_index;
    snap_last_term_ = snap.last_term;
    log_.clear();
    commit_ = std::max(commit_, snap.last_index);
    applied_ = snap.last_index;
  }
  co_return Reply{Errno::ok, kControlMsgBytes, Body::make(SnapResp{term_})};
}

}  // namespace daosim::raft
