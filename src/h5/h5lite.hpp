// H5Lite: a compact HDF5-like self-describing container format over a Vfs.
//
// Reproduces the structural behaviour that matters for the paper's "HDF5
// over DFuse" results:
//   * a real file format: superblock @0, root-group symbol table, per-dataset
//     object headers, contiguous raw-data allocation at end-of-file;
//   * a metadata cache: headers are dirtied by raw I/O (mtime tracking) and
//     flushed every `mdc_flush_every` operations and at close — each flush is
//     a small write through the mount;
//   * a bounded internal conversion/sieve buffer: the sec2-style driver moves
//     raw data in `conversion_buffer`-sized serial pieces, so large transfers
//     become chains of latency-bound requests through DFuse (the mechanism
//     behind HDF5's file-per-process slow-down in Fig. 1). The mpio-style
//     driver (`direct_large_io`) bypasses the buffer for large aligned I/O,
//     matching HDF5's better shared-file behaviour in Fig. 2.
//
// Payload note: with PayloadMode::discard the underlying store returns zeros,
// so open() cannot re-parse serialized metadata from disk. Callers then share
// one H5Meta shadow per file across ranks (the IOR harness does this); with
// payloads stored, open() genuinely parses the bytes it reads back.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "posix/vfs.hpp"

namespace daosim::h5 {

struct H5Config {
  std::uint64_t conversion_buffer = 256 * 1024;
  bool direct_large_io = false;   // mpio-like driver behaviour
  std::uint32_t mdc_flush_every = 16;
  std::uint64_t header_bytes = 512;      // object header allocation
  std::uint64_t superblock_bytes = 96;
  std::uint64_t symtab_bytes = 2048;     // root-group symbol table block
};

struct DsetMeta {
  std::uint64_t header_addr = 0;
  std::uint64_t data_addr = 0;
  std::uint64_t size_bytes = 0;  // dataspace extent
};

/// Logical file metadata (the contents of the metadata blocks).
struct H5Meta {
  bool created = false;
  std::uint64_t eof = 0;
  std::map<std::string, DsetMeta> datasets;
  std::map<std::string, std::uint64_t> attributes;  // name -> byte size
};

class H5File;

/// An open dataset: a contiguous byte extent with hyperslab-style access.
class H5Dataset {
 public:
  /// Writes `length` bytes at dataset-relative `offset` (serial conversion-
  /// buffer pieces unless the driver does direct large I/O).
  sim::CoTask<Errno> write(std::uint64_t offset, std::uint64_t length,
                           std::span<const std::byte> data);
  sim::CoTask<Result<std::uint64_t>> read(std::uint64_t offset, std::span<std::byte> out);

  std::uint64_t size() const { return meta_.size_bytes; }
  const std::string& name() const { return name_; }

 private:
  friend class H5File;
  H5Dataset(H5File* file, std::string name, DsetMeta meta)
      : file_(file), name_(std::move(name)), meta_(meta) {}
  H5File* file_;
  std::string name_;
  DsetMeta meta_;
};

class H5File {
 public:
  /// Creates a new file: writes superblock, root-group header and symbol
  /// table. `shadow` may be shared across ranks opening the same file.
  static sim::CoTask<Result<std::unique_ptr<H5File>>> create(posix::Vfs& vfs,
                                                             const std::string& path,
                                                             std::shared_ptr<H5Meta> shadow,
                                                             H5Config cfg = {});
  /// Opens an existing file: reads and parses superblock + symbol table
  /// (falling back to the shared shadow when payloads are not stored).
  static sim::CoTask<Result<std::unique_ptr<H5File>>> open(posix::Vfs& vfs,
                                                           const std::string& path,
                                                           std::shared_ptr<H5Meta> shadow,
                                                           H5Config cfg = {});

  /// Allocates a contiguous dataset of `size_bytes` and writes its header.
  sim::CoTask<Result<H5Dataset>> create_dataset(const std::string& name,
                                                std::uint64_t size_bytes);
  sim::CoTask<Result<H5Dataset>> open_dataset(const std::string& name);
  /// Small attribute write (lands in the object header block).
  sim::CoTask<Errno> write_attribute(const std::string& name, std::uint64_t bytes);

  /// Flushes dirty metadata-cache entries.
  sim::CoTask<Errno> flush();
  /// Flush + close the fd. Must be called before destruction.
  sim::CoTask<Errno> close();

  const H5Config& config() const { return cfg_; }
  std::uint64_t metadata_writes() const { return metadata_writes_; }
  std::uint64_t raw_ops() const { return raw_ops_; }

 private:
  friend class H5Dataset;
  H5File(posix::Vfs& vfs, posix::Fd fd, std::shared_ptr<H5Meta> meta, H5Config cfg)
      : vfs_(vfs), fd_(fd), meta_(std::move(meta)), cfg_(cfg) {}

  sim::CoTask<Errno> write_metadata_block(std::uint64_t addr, std::uint64_t bytes,
                                          const std::string& payload);
  sim::CoTask<Errno> note_raw_op();  // metadata-cache dirtying / periodic flush

  std::string serialize_symtab() const;
  static std::optional<H5Meta> parse_symtab(std::span<const std::byte> sb,
                                            std::span<const std::byte> symtab);

  posix::Vfs& vfs_;
  posix::Fd fd_;
  std::shared_ptr<H5Meta> meta_;
  H5Config cfg_;
  bool open_ = true;
  std::uint32_t dirty_ops_ = 0;
  std::uint64_t metadata_writes_ = 0;
  std::uint64_t raw_ops_ = 0;
};

}  // namespace daosim::h5
