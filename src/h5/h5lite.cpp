#include "h5/h5lite.hpp"

#include <cstring>
#include <sstream>

namespace daosim::h5 {

namespace {
constexpr char kMagic[8] = {'\x89', 'H', '5', 'L', 'I', 'T', 'E', '\n'};

std::vector<std::byte> to_bytes(const std::string& s, std::uint64_t block) {
  std::vector<std::byte> out(std::size_t(block), std::byte{0});
  DAOSIM_REQUIRE(s.size() <= block, "metadata block overflow (%zu > %llu)", s.size(),
                 static_cast<unsigned long long>(block));
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}
}  // namespace

// ---------------------------------------------------------------------------
// Serialization: superblock carries the magic + eof; the symbol table block
// lists datasets and attributes in a line format.

std::string H5File::serialize_symtab() const {
  std::ostringstream os;
  os << "SYMTAB " << meta_->datasets.size() << ' ' << meta_->attributes.size() << ' '
     << meta_->eof << '\n';
  for (const auto& [name, d] : meta_->datasets) {
    os << "D " << name << ' ' << d.header_addr << ' ' << d.data_addr << ' ' << d.size_bytes
       << '\n';
  }
  for (const auto& [name, bytes] : meta_->attributes) {
    os << "A " << name << ' ' << bytes << '\n';
  }
  return os.str();
}

std::optional<H5Meta> H5File::parse_symtab(std::span<const std::byte> sb,
                                           std::span<const std::byte> symtab) {
  if (sb.size() < 8 || std::memcmp(sb.data(), kMagic, 8) != 0) return std::nullopt;
  std::string text(reinterpret_cast<const char*>(symtab.data()), symtab.size());
  std::istringstream is(text);
  std::string tag;
  is >> tag;
  if (tag != "SYMTAB") return std::nullopt;
  std::size_t ndsets = 0, nattrs = 0;
  H5Meta meta;
  is >> ndsets >> nattrs >> meta.eof;
  for (std::size_t i = 0; i < ndsets; ++i) {
    std::string d, name;
    DsetMeta dm;
    is >> d >> name >> dm.header_addr >> dm.data_addr >> dm.size_bytes;
    if (d != "D") return std::nullopt;
    meta.datasets[name] = dm;
  }
  for (std::size_t i = 0; i < nattrs; ++i) {
    std::string a, name;
    std::uint64_t bytes;
    is >> a >> name >> bytes;
    if (a != "A") return std::nullopt;
    meta.attributes[name] = bytes;
  }
  meta.created = true;
  return meta;
}

// ---------------------------------------------------------------------------
// Lifecycle

sim::CoTask<Errno> H5File::write_metadata_block(std::uint64_t addr, std::uint64_t bytes,
                                                const std::string& payload) {
  ++metadata_writes_;
  auto block = to_bytes(payload, bytes);
  auto rc = co_await vfs_.pwrite(fd_, addr, bytes, block);
  co_return rc.ok() ? Errno::ok : rc.error();
}

sim::CoTask<Result<std::unique_ptr<H5File>>> H5File::create(posix::Vfs& vfs,
                                                            const std::string& path,
                                                            std::shared_ptr<H5Meta> shadow,
                                                            H5Config cfg) {
  DAOSIM_REQUIRE(shadow != nullptr, "H5 shadow metadata required");
  posix::VfsOpenFlags flags;
  flags.create = true;
  flags.truncate = true;
  auto fd = co_await vfs.open(path, flags);
  if (!fd.ok()) co_return fd.error();
  auto file = std::unique_ptr<H5File>(new H5File(vfs, *fd, std::move(shadow), cfg));
  auto& meta = *file->meta_;
  meta = H5Meta{};
  meta.created = true;
  meta.eof = cfg.superblock_bytes + cfg.header_bytes + cfg.symtab_bytes;
  // Superblock (magic) + root group object header + symbol table block.
  std::string sb(kMagic, 8);
  Errno rc = co_await file->write_metadata_block(0, cfg.superblock_bytes, sb);
  if (rc != Errno::ok) co_return rc;
  rc = co_await file->write_metadata_block(cfg.superblock_bytes, cfg.header_bytes, "ROOT");
  if (rc != Errno::ok) co_return rc;
  rc = co_await file->write_metadata_block(cfg.superblock_bytes + cfg.header_bytes,
                                           cfg.symtab_bytes, file->serialize_symtab());
  if (rc != Errno::ok) co_return rc;
  co_return std::move(file);
}

sim::CoTask<Result<std::unique_ptr<H5File>>> H5File::open(posix::Vfs& vfs,
                                                          const std::string& path,
                                                          std::shared_ptr<H5Meta> shadow,
                                                          H5Config cfg) {
  DAOSIM_REQUIRE(shadow != nullptr, "H5 shadow metadata required");
  posix::VfsOpenFlags flags;
  auto fd = co_await vfs.open(path, flags);
  if (!fd.ok()) co_return fd.error();
  auto file = std::unique_ptr<H5File>(new H5File(vfs, *fd, shadow, cfg));
  // Read superblock and symbol table (two metadata reads, as HDF5 does).
  std::vector<std::byte> sb(std::size_t(cfg.superblock_bytes));
  auto r1 = co_await vfs.pread(*fd, 0, sb);
  if (!r1.ok()) co_return r1.error();
  std::vector<std::byte> symtab(std::size_t(cfg.symtab_bytes));
  auto r2 = co_await vfs.pread(*fd, cfg.superblock_bytes + cfg.header_bytes, symtab);
  if (!r2.ok()) co_return r2.error();
  if (auto parsed = parse_symtab(sb, symtab)) {
    *file->meta_ = std::move(*parsed);
  } else if (!shadow->created) {
    // Zeroed payload (discard mode) and no shared shadow: not an H5 file.
    co_return Errno::invalid;
  }
  co_return std::move(file);
}

sim::CoTask<Result<H5Dataset>> H5File::create_dataset(const std::string& name,
                                                      std::uint64_t size_bytes) {
  DAOSIM_REQUIRE(open_, "file closed");
  if (meta_->datasets.contains(name)) co_return Errno::exists;
  DsetMeta dm;
  dm.header_addr = meta_->eof;
  dm.data_addr = meta_->eof + cfg_.header_bytes;
  dm.size_bytes = size_bytes;
  meta_->eof += cfg_.header_bytes + size_bytes;
  meta_->datasets[name] = dm;
  // Object header write + symbol-table update (late data allocation).
  Errno rc = co_await write_metadata_block(dm.header_addr, cfg_.header_bytes, "DSET " + name);
  if (rc != Errno::ok) co_return rc;
  rc = co_await write_metadata_block(cfg_.superblock_bytes + cfg_.header_bytes,
                                     cfg_.symtab_bytes, serialize_symtab());
  if (rc != Errno::ok) co_return rc;
  co_return H5Dataset(this, name, dm);
}

sim::CoTask<Result<H5Dataset>> H5File::open_dataset(const std::string& name) {
  DAOSIM_REQUIRE(open_, "file closed");
  auto it = meta_->datasets.find(name);
  if (it == meta_->datasets.end()) co_return Errno::no_entry;
  // Copy the entry before suspending: the shadow H5Meta is shared across
  // ranks, and a concurrent open() re-parses it wholesale while we sit in
  // the pread below, invalidating iterators into the map.
  const DsetMeta dm = it->second;
  // Header read (charged; content authoritative from parsed/shared meta).
  std::vector<std::byte> hdr(std::size_t(cfg_.header_bytes));
  auto rc = co_await vfs_.pread(fd_, dm.header_addr, hdr);
  if (!rc.ok()) co_return rc.error();
  co_return H5Dataset(this, name, dm);
}

sim::CoTask<Errno> H5File::write_attribute(const std::string& name, std::uint64_t bytes) {
  DAOSIM_REQUIRE(open_, "file closed");
  meta_->attributes[name] = bytes;
  co_return co_await write_metadata_block(cfg_.superblock_bytes + cfg_.header_bytes,
                                          cfg_.symtab_bytes, serialize_symtab());
}

sim::CoTask<Errno> H5File::note_raw_op() {
  ++raw_ops_;
  if (++dirty_ops_ >= cfg_.mdc_flush_every) {
    dirty_ops_ = 0;
    // Evict the dirtied object header (mtime update) from the MDC.
    co_return co_await write_metadata_block(cfg_.superblock_bytes, cfg_.header_bytes, "ROOT");
  }
  co_return Errno::ok;
}

sim::CoTask<Errno> H5File::flush() {
  DAOSIM_REQUIRE(open_, "file closed");
  dirty_ops_ = 0;
  co_return co_await write_metadata_block(cfg_.superblock_bytes + cfg_.header_bytes,
                                          cfg_.symtab_bytes, serialize_symtab());
}

sim::CoTask<Errno> H5File::close() {
  if (!open_) co_return Errno::bad_fd;
  Errno rc = co_await flush();
  open_ = false;
  const Errno c = co_await vfs_.close(fd_);
  co_return rc != Errno::ok ? rc : c;
}

// ---------------------------------------------------------------------------
// Dataset raw I/O

sim::CoTask<Errno> H5Dataset::write(std::uint64_t offset, std::uint64_t length,
                                    std::span<const std::byte> data) {
  DAOSIM_REQUIRE(data.empty() || data.size() == length, "payload size mismatch");
  if (offset + length > meta_.size_bytes) co_return Errno::invalid;
  H5File& f = *file_;
  const Errno mdc = co_await f.note_raw_op();
  if (mdc != Errno::ok) co_return mdc;
  const std::uint64_t base = meta_.data_addr + offset;
  if (f.cfg_.direct_large_io && length >= f.cfg_.conversion_buffer) {
    auto rc = co_await f.vfs_.pwrite(f.fd_, base, length, data);
    co_return rc.ok() ? Errno::ok : rc.error();
  }
  // sec2-style path: serial conversion-buffer pieces.
  std::uint64_t pos = 0;
  while (pos < length) {
    const std::uint64_t piece = std::min(f.cfg_.conversion_buffer, length - pos);
    std::span<const std::byte> slice;
    if (!data.empty()) slice = data.subspan(std::size_t(pos), std::size_t(piece));
    auto rc = co_await f.vfs_.pwrite(f.fd_, base + pos, piece, slice);
    if (!rc.ok()) co_return rc.error();
    pos += piece;
  }
  co_return Errno::ok;
}

sim::CoTask<Result<std::uint64_t>> H5Dataset::read(std::uint64_t offset,
                                                   std::span<std::byte> out) {
  if (offset + out.size() > meta_.size_bytes) co_return Errno::invalid;
  H5File& f = *file_;
  ++f.raw_ops_;
  const std::uint64_t base = meta_.data_addr + offset;
  if (f.cfg_.direct_large_io && out.size() >= f.cfg_.conversion_buffer) {
    co_return co_await f.vfs_.pread(f.fd_, base, out);
  }
  std::uint64_t total = 0;
  std::uint64_t pos = 0;
  while (pos < out.size()) {
    const std::uint64_t piece = std::min<std::uint64_t>(f.cfg_.conversion_buffer,
                                                        out.size() - pos);
    auto rc = co_await f.vfs_.pread(f.fd_, base + pos,
                                    out.subspan(std::size_t(pos), std::size_t(piece)));
    if (!rc.ok()) co_return rc.error();
    total += *rc;
    pos += piece;
  }
  co_return total;
}

}  // namespace daosim::h5
