#include "dtx/dtx.hpp"

#include <set>
#include <sstream>
#include <utility>

namespace daosim::dtx {

using net::Body;
using net::Reply;

namespace {
// Trace tags folded into the deterministic run hash (0xFA17E009..E00D).
constexpr std::uint64_t kTraceTxPrepare = 0xFA17E009'0000'0000ULL;
constexpr std::uint64_t kTraceTxCommit = 0xFA17E00A'0000'0000ULL;
constexpr std::uint64_t kTraceTxAbort = 0xFA17E00B'0000'0000ULL;
constexpr std::uint64_t kTraceTxResolve = 0xFA17E00C'0000'0000ULL;
constexpr std::uint64_t kTraceTxReap = 0xFA17E00D'0000'0000ULL;

constexpr std::uint64_t tx_tag(std::uint64_t client, std::uint64_t seq) {
  return (client << 32) ^ seq;
}

// Pool-service map_query (engine_excluded): bounded attempts per sweep; a
// failed query is simply not authoritative and the next sweep asks again.
constexpr int kMapQueryAttempts = 3;
constexpr sim::Time kMapQueryRetryDelay = 50 * sim::kMs;
constexpr std::uint64_t kMapQueryWireBytes = 128;
}  // namespace

DtxService::DtxService(engine::Engine& eng, pool::PoolMap base_map,
                       std::vector<net::NodeId> svc_nodes, DtxConfig cfg)
    : eng_(eng),
      sched_(eng.endpoint().domain().scheduler()),
      base_map_(std::move(base_map)),
      svc_nodes_(std::move(svc_nodes)),
      cfg_(cfg) {
  eng_.endpoint().register_handler(
      engine::kOpTxPrepare, [this](net::Request req) { return on_prepare(std::move(req)); });
  eng_.endpoint().register_handler(
      engine::kOpTxCommit, [this](net::Request req) { return on_commit(std::move(req)); });
  eng_.endpoint().register_handler(
      engine::kOpTxAbort, [this](net::Request req) { return on_abort(std::move(req)); });
  eng_.endpoint().register_handler(
      engine::kOpTxResolve, [this](net::Request req) { return on_resolve(std::move(req)); });
  eng_.endpoint().register_handler(engine::kOpContAggregate, [this](net::Request req) {
    return on_aggregate(std::move(req));
  });
  telemetry::Registry& reg = eng_.telemetry();
  prepares_ = &reg.find_or_create<telemetry::Counter>("dtx/prepares");
  conflicts_ = &reg.find_or_create<telemetry::Counter>("dtx/conflicts");
  commits_ = &reg.find_or_create<telemetry::Counter>("dtx/commits");
  aborts_ = &reg.find_or_create<telemetry::Counter>("dtx/aborts");
  resolves_ = &reg.find_or_create<telemetry::Counter>("dtx/resolves");
  orphans_aborted_ = &reg.find_or_create<telemetry::Counter>("dtx/orphans_aborted");
  resyncs_resolved_ = &reg.find_or_create<telemetry::Counter>("dtx/resyncs_resolved");
}

std::uint64_t DtxService::orphans_aborted() const { return orphans_aborted_->value(); }
std::uint64_t DtxService::resyncs_resolved() const { return resyncs_resolved_->value(); }

void DtxService::start() {
  if (running_) return;
  running_ = true;
  sim::CoTask<void> loop = reaper_loop();
  sched_.spawn(std::move(loop));
}

void DtxService::stop() { running_ = false; }

void DtxService::note_restart() {
  // Delay one tick so the endpoint is back up before resolve RPCs go out
  // (the harness pins restart state before reopening the endpoint).
  sim::CoTask<void> task = [](DtxService* self) -> sim::CoTask<void> {
    co_await self->sched_.delay(10 * sim::kMs);
    co_await self->sweep(/*force=*/true);
  }(this);
  sched_.spawn(std::move(task));
}

sim::CoTask<net::Reply> DtxService::on_prepare(net::Request req) {
  const auto& r = req.body.get<engine::TxPrepareReq>();
  std::uint64_t bytes = 0;
  for (const auto& op : r.ops) bytes += op.length;
  // Staging cost: the prepare record persists the ops plus a table entry
  // through the target's xstream and media write path, like a foreground
  // update (rebuild_write charges exactly that).
  co_await eng_.rebuild_write(r.target, bytes + 64 * (r.ops.size() + 1));
  // Shard lookup after the last suspension (suspension-safety audit).
  vos::VosContainer& cont = eng_.vos_target(r.target).container(r.cont);
  vos::DtxEntry entry;
  entry.id = vos::DtxId{r.tx_client, r.tx_seq};
  entry.epoch = r.epoch;
  entry.leader = r.leader;
  entry.prepared_at = sched_.now();
  entry.ops.reserve(r.ops.size());
  for (const auto& op : r.ops) {
    vos::DtxOp o;
    o.oid = op.oid;
    o.dkey = op.dkey;
    o.akey = op.akey;
    o.single_value = op.type == engine::RecordType::single_value;
    o.offset = op.offset;
    o.length = op.length;
    o.array_end_hint = op.array_end_hint;
    o.data = op.data;
    entry.ops.push_back(std::move(o));
  }
  const Errno st = cont.dtx_prepare(std::move(entry));
  prepares_->inc();
  if (st == Errno::tx_restart) conflicts_->inc();
  sched_.trace_note(kTraceTxPrepare ^ tx_tag(r.tx_client, r.tx_seq));
  co_return Reply{st, engine::kObjRpcHeader, {}};
}

sim::CoTask<net::Reply> DtxService::on_commit(net::Request req) {
  const auto& r = req.body.get<engine::TxDecideReq>();
  co_await eng_.rebuild_write(r.target, 64);  // decision record
  vos::VosContainer& cont = eng_.vos_target(r.target).container(r.cont);
  const bool ok = cont.dtx_commit(vos::DtxId{r.tx_client, r.tx_seq});
  commits_->inc();
  sched_.trace_note(kTraceTxCommit ^ tx_tag(r.tx_client, r.tx_seq));
  // A commit that runs into a sticky abort (the reaper won the race) tells
  // the coordinator to restart.
  co_return Reply{ok ? Errno::ok : Errno::tx_restart, engine::kObjRpcHeader, {}};
}

sim::CoTask<net::Reply> DtxService::on_abort(net::Request req) {
  const auto& r = req.body.get<engine::TxDecideReq>();
  co_await eng_.rebuild_write(r.target, 64);
  vos::VosContainer& cont = eng_.vos_target(r.target).container(r.cont);
  const vos::DtxId id{r.tx_client, r.tx_seq};
  cont.dtx_abort(id);
  aborts_->inc();
  sched_.trace_note(kTraceTxAbort ^ tx_tag(r.tx_client, r.tx_seq));
  // Report the decision that now stands: `aborted` normally, `committed`
  // when a sticky commit record already existed. The participant fence path
  // (settle) needs to know which way the race went.
  engine::TxResolveResp resp;
  resp.state = cont.dtx_state(id);
  co_return Reply{Errno::ok, engine::kObjRpcHeader, Body::make(resp)};
}

sim::CoTask<net::Reply> DtxService::on_resolve(net::Request req) {
  const auto& r = req.body.get<engine::TxResolveReq>();
  co_await eng_.rebuild_read(r.target, 64);
  vos::VosContainer& cont = eng_.vos_target(r.target).container(r.cont);
  engine::TxResolveResp resp;
  resp.state = cont.dtx_state(vos::DtxId{r.tx_client, r.tx_seq});
  co_return Reply{Errno::ok, engine::kObjRpcHeader, Body::make(resp)};
}

sim::CoTask<net::Reply> DtxService::on_aggregate(net::Request req) {
  const auto& r = req.body.get<engine::ContAggregateReq>();
  co_await eng_.rebuild_write(r.target, 64);
  eng_.vos_target(r.target).container(r.cont).aggregate(r.upto);
  co_return Reply{Errno::ok, engine::kObjRpcHeader, {}};
}

sim::CoTask<void> DtxService::reaper_loop() {
  while (running_) {
    co_await sched_.delay(cfg_.reap_tick);
    if (!running_) break;
    if (eng_.endpoint().is_down()) continue;  // a crashed engine acts on restart
    co_await sweep(/*force=*/false);
  }
}

std::vector<DtxService::SweepItem> DtxService::collect_prepared() const {
  std::vector<SweepItem> items;
  const sim::Time now = sched_.now();
  for (std::uint32_t t = 0; t < eng_.target_count(); ++t) {
    vos::VosTarget& vt = eng_.vos_target(t);
    for (const vos::Uuid& uuid : vt.list_containers()) {
      const vos::VosContainer* cont = vt.find_container(uuid);
      if (cont == nullptr) continue;
      for (const vos::DtxId& id : cont->dtx_prepared_ids()) {
        const vos::DtxEntry* e = cont->dtx_find_prepared(id);
        if (e == nullptr) continue;
        items.push_back(SweepItem{t, uuid, id, e->leader,
                                  now - sim::Time(e->prepared_at)});
      }
    }
  }
  return items;
}

sim::CoTask<void> DtxService::sweep(bool force) {
  if (sweeping_) co_return;
  sweeping_ = true;
  // Copy the worklist out of VOS first: settle() suspends on RPCs and media,
  // and no container reference may live across those suspensions.
  const std::vector<SweepItem> items = collect_prepared();
  // Drop failure counters for entries that settled by other means (a late
  // client decision landed between sweeps), so the map cannot grow without
  // bound and a re-prepared id starts from a clean count.
  std::set<EntryKey> live;
  for (const SweepItem& item : items) live.insert({item.target, item.cont, item.id});
  std::erase_if(resolve_failures_,
                [&live](const auto& kv) { return !live.contains(kv.first); });
  for (const SweepItem& item : items) {
    if (!force && item.age < cfg_.orphan_timeout) continue;
    co_await settle(item);
  }
  sweeping_ = false;
}

sim::CoTask<void> DtxService::settle(SweepItem item) {
  DAOSIM_REQUIRE(item.leader < base_map_.targets.size(), "dtx leader out of range");
  const pool::TargetRef lt = base_map_.targets[item.leader];
  vos::DtxState verdict = vos::DtxState::unknown;
  if (lt.engine == eng_.node()) {
    // The leader shard lives on this engine: consult its tables directly
    // (no suspension, so the transient container references are safe).
    verdict = eng_.vos_target(lt.target).container(item.cont).dtx_state(item.id);
    if (verdict == vos::DtxState::prepared || verdict == vos::DtxState::unknown) {
      if (item.age < cfg_.orphan_timeout) co_return;
      // Authoritative orphan abort: the coordinator is gone, and the sticky
      // decision sends any late commit attempt into tx_restart.
      eng_.vos_target(lt.target).container(item.cont).dtx_abort(item.id);
      orphans_aborted_->inc();
      sched_.trace_note(kTraceTxReap ^ tx_tag(item.id.client, item.id.seq));
      verdict = vos::DtxState::aborted;
    }
  } else {
    const EntryKey fkey{item.target, item.cont, item.id};
    resolves_->inc();
    engine::TxResolveReq rreq;
    rreq.cont = item.cont;
    rreq.tx_client = item.id.client;
    rreq.tx_seq = item.id.seq;
    rreq.target = lt.target;
    Body body = Body::make(rreq);
    Reply rep = co_await eng_.endpoint().call(lt.engine, engine::kOpTxResolve, std::move(body),
                                              engine::kObjRpcHeader);
    if (rep.status != Errno::ok) {
      // Leader unreachable. Normally the next sweep just retries, but a
      // leader engine that is gone for good would leave this entry prepared
      // forever, pinning dtx_min_prepared_epoch and the aggregation floor.
      // Commit requires the leader's durable decision record, which nobody
      // else can reach either, so once the pool map shows the engine
      // EXCLUDED — or resolves have kept failing well past the orphan
      // window (the backstop for maps that never converge) — an abort is
      // authoritative.
      if (item.age < cfg_.orphan_timeout) co_return;
      const std::uint32_t failures = ++resolve_failures_[fkey];
      bool abandoned = failures >= cfg_.abandon_resolve_failures;
      if (!abandoned && !svc_nodes_.empty() && failures % 4 == 0) {
        abandoned = co_await engine_excluded(lt.engine);
      }
      if (!abandoned) co_return;
      resolve_failures_.erase(fkey);
      verdict = vos::DtxState::aborted;
      orphans_aborted_->inc();
      sched_.trace_note(kTraceTxReap ^ tx_tag(item.id.client, item.id.seq));
    } else {
      resolve_failures_.erase(fkey);
      verdict = rep.body.get<engine::TxResolveResp>().state;
      if (verdict == vos::DtxState::prepared) co_return;  // undecided: keep waiting
      if (verdict == vos::DtxState::unknown) {
        // No leader record: the transaction can never commit (commit
        // requires the leader's durable decision), but give an in-flight
        // prepare its grace period before declaring the coordinator dead.
        if (item.age < cfg_.orphan_timeout) co_return;
        // Fence the leader BEFORE aborting locally: a prepare RPC may still
        // be in flight (the client retry policy allows several seconds per
        // attempt), and without a sticky abort at the leader a late prepare
        // could land there, the client would commit at the leader, and the
        // commit fan-out would bounce off our local abort — the transaction
        // reported committed with this shard's writes lost.
        engine::TxDecideReq areq;
        areq.cont = item.cont;
        areq.tx_client = item.id.client;
        areq.tx_seq = item.id.seq;
        areq.target = lt.target;
        Body abody = Body::make(areq);
        Reply arep = co_await eng_.endpoint().call(lt.engine, engine::kOpTxAbort,
                                                   std::move(abody), engine::kObjRpcHeader);
        if (arep.status != Errno::ok) co_return;  // fence failed: retry next sweep
        const auto fenced = arep.body.get<engine::TxResolveResp>().state;
        if (fenced == vos::DtxState::committed) {
          // The fence lost the race: a late prepare+commit landed at the
          // leader first. The decision is durable — honour it.
          verdict = vos::DtxState::committed;
        } else {
          verdict = vos::DtxState::aborted;
          orphans_aborted_->inc();
          sched_.trace_note(kTraceTxReap ^ tx_tag(item.id.client, item.id.seq));
        }
      }
    }
  }
  co_await eng_.rebuild_write(item.target, 64);  // local decision record
  vos::VosContainer& cont = eng_.vos_target(item.target).container(item.cont);
  if (cont.dtx_state(item.id) != vos::DtxState::prepared) co_return;  // settled under us
  if (verdict == vos::DtxState::committed) {
    cont.dtx_commit(item.id);
  } else {
    cont.dtx_abort(item.id);
  }
  resyncs_resolved_->inc();
  sched_.trace_note(kTraceTxResolve ^ tx_tag(item.id.client, item.id.seq));
}

sim::CoTask<bool> DtxService::engine_excluded(net::NodeId engine) {
  // The same map_query the clients use, with the usual leader-hint redirect
  // dance (see RebuildService::report_done for the engine-side idiom).
  for (int attempt = 0; attempt < kMapQueryAttempts; ++attempt) {
    const net::NodeId dst =
        svc_hint_ ? *svc_hint_ : svc_nodes_[std::size_t(attempt) % svc_nodes_.size()];
    engine::PoolSvcReq preq{"map_query"};
    Body body = Body::make(std::move(preq));
    Reply r = co_await eng_.endpoint().call(dst, engine::kOpPoolSvc, std::move(body),
                                            kMapQueryWireBytes);
    if (r.status == Errno::ok) {
      svc_hint_ = dst;
      std::istringstream is(r.body.get<engine::PoolSvcResp>().response);
      std::string status;
      std::uint32_t version = 0;
      std::size_t count = 0;
      is >> status >> version >> count;
      if (status != "ok") co_return false;
      for (std::size_t i = 0; i < count; ++i) {
        net::NodeId e = 0;
        is >> e;
        if (e == engine) co_return true;
      }
      co_return false;
    }
    svc_hint_.reset();
    if (r.status == Errno::again && r.body.has_value()) {
      svc_hint_ = r.body.get<engine::PoolSvcResp>().leader_hint;
    }
    co_await sched_.delay(kMapQueryRetryDelay);
  }
  co_return false;  // pool service unreachable: not authoritative, keep waiting
}

}  // namespace daosim::dtx
