// Engine-side DTX service: serves the two-phase-commit RPCs a client
// coordinator fans over the participating shards (prepare / commit / abort),
// answers resolve queries against the leader shard's decision table, and
// runs the recovery machinery — a periodic orphan reaper plus a resync pass
// after engine restart — that settles prepared-but-undecided entries left by
// client or engine crashes. Also serves snapshot-floored container
// aggregation. Protocol and failure matrix: docs/dtx.md.
#pragma once

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "engine/engine.hpp"
#include "pool/pool_map.hpp"

namespace daosim::dtx {

struct DtxConfig {
  /// Age at which a prepared-but-undecided transaction is treated as a
  /// crashed coordinator's orphan: the leader shard aborts it (sticky — a
  /// later commit attempt gets Errno::tx_restart); a participant asks the
  /// leader and settles on the answer. Must sit well above a healthy
  /// prepare-to-decide round trip.
  sim::Time orphan_timeout = 2 * sim::kSec;
  /// Reaper sweep period per engine.
  sim::Time reap_tick = 250 * sim::kMs;
  /// A participant entry whose leader shard never answers resolve RPCs can
  /// never commit (commit requires the leader's durable decision record,
  /// which nobody else can reach either), so it must not stay prepared
  /// forever pinning dtx_min_prepared_epoch and the aggregation floor.
  /// Past orphan_timeout the reaper consults the pool service's exclusion
  /// list (map_query) and aborts once the leader's engine is EXCLUDED; as a
  /// backstop for maps that never converge, this many consecutive failed
  /// resolves force the same authoritative abort.
  std::uint32_t abandon_resolve_failures = 16;
};

class DtxService {
 public:
  /// @param base_map   the pool map at assembly time (membership only; maps
  ///                   the leader shard's map-target index to its engine)
  /// @param svc_nodes  pool-service replica nodes (for map_query when a
  ///                   leader shard stays unreachable; empty disables the
  ///                   exclusion check, leaving only the failure backstop)
  DtxService(engine::Engine& eng, pool::PoolMap base_map, std::vector<net::NodeId> svc_nodes,
             DtxConfig cfg = {});
  DtxService(const DtxService&) = delete;
  DtxService& operator=(const DtxService&) = delete;

  /// Spawns the orphan-reaper loop (idempotent). stop() lets it retire.
  void start();
  void stop();

  /// Called by the harness when this engine comes back up after a crash:
  /// schedules a resync sweep that resolves every locally prepared entry
  /// against its leader shard, so undecided state never outlives the
  /// restart by more than one sweep.
  void note_restart();

  const DtxConfig& config() const { return cfg_; }
  std::uint64_t orphans_aborted() const;
  std::uint64_t resyncs_resolved() const;

 private:
  /// One prepared entry picked up by a sweep, copied out of VOS so the RPC
  /// suspension never spans a container reference.
  struct SweepItem {
    std::uint32_t target = 0;  // local target index holding the entry
    vos::Uuid cont;
    vos::DtxId id;
    std::uint32_t leader = 0;  // pool-map target index of the leader shard
    sim::Time age = 0;
  };

  sim::CoTask<net::Reply> on_prepare(net::Request req);
  sim::CoTask<net::Reply> on_commit(net::Request req);
  sim::CoTask<net::Reply> on_abort(net::Request req);
  sim::CoTask<net::Reply> on_resolve(net::Request req);
  sim::CoTask<net::Reply> on_aggregate(net::Request req);

  sim::CoTask<void> reaper_loop();
  /// Scans every local shard for prepared entries and settles what it can:
  /// leader-local orphans past the timeout are aborted; participant entries
  /// (past the timeout, or all of them when `force`) are resolved against
  /// the leader shard. `force` is the post-restart resync mode.
  sim::CoTask<void> sweep(bool force);
  std::vector<SweepItem> collect_prepared() const;
  sim::CoTask<void> settle(SweepItem item);
  /// Asks the pool service (map_query, with the usual leader-hint redirect)
  /// whether `engine` is in the Raft-committed exclusion list. False when
  /// the service is unreachable — absence of evidence is not authoritative.
  sim::CoTask<bool> engine_excluded(net::NodeId engine);

  /// Identifies one local prepared entry across sweeps (for the
  /// consecutive-resolve-failure backstop).
  using EntryKey = std::tuple<std::uint32_t, vos::Uuid, vos::DtxId>;

  engine::Engine& eng_;
  sim::Scheduler& sched_;
  pool::PoolMap base_map_;
  std::vector<net::NodeId> svc_nodes_;
  std::optional<net::NodeId> svc_hint_;  // last pool-service leader that answered
  /// Consecutive failed leader resolves per prepared entry; reset on any
  /// successful resolve and pruned when the entry settles by other means.
  std::map<EntryKey, std::uint32_t> resolve_failures_;
  DtxConfig cfg_;
  bool running_ = false;
  bool sweeping_ = false;
  telemetry::Counter* prepares_ = nullptr;
  telemetry::Counter* conflicts_ = nullptr;
  telemetry::Counter* commits_ = nullptr;
  telemetry::Counter* aborts_ = nullptr;
  telemetry::Counter* resolves_ = nullptr;
  telemetry::Counter* orphans_aborted_ = nullptr;
  telemetry::Counter* resyncs_resolved_ = nullptr;
};

}  // namespace daosim::dtx
