// Deterministic fault injection for the simulated cluster.
//
// A fault::Schedule is a list of simulated-time fault events — node crash,
// node restart, transient RPC drop/delay windows, single-target stalls —
// built programmatically or parsed from the compact spec grammar used by
// `ior_cli --faults` (see docs/faults.md). A fault::Injector arms a schedule
// against a Scheduler + RpcDomain: point events become cancellable timer
// callbacks, windows become per-call hooks in net/rpc (probabilistic drops,
// seeded) and net/fabric (added latency). Every injected fault folds into the
// scheduler's trace_hash() digest, so a seeded fault run is bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "net/rpc.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace daosim::fault {

enum class Kind : std::uint8_t { crash, restart, drop, delay, stall, partition };

const char* to_string(Kind k);

/// Wildcard engine selector: the event applies to every engine.
constexpr std::uint32_t kAllEngines = 0xFFFFFFFFu;

/// One fault event. Times are offsets from the moment the schedule is armed.
struct Event {
  Kind kind = Kind::crash;
  sim::Time at = 0;            // point events: when; windows: start
  sim::Time until = 0;         // drop/delay windows: end (exclusive)
  std::uint32_t engine = 0;    // engine index (not fabric node), or kAllEngines
  std::uint32_t target = 0;    // stall only: target index within the engine
  double probability = 1.0;    // drop only: per-call drop probability
  sim::Time amount = 0;        // delay: per-call extra latency; stall: duration
  // partition only: engine-index groups whose cross traffic is severed for
  // the window. Symmetric by default; oneway drops only group_a -> group_b.
  std::vector<std::uint32_t> group_a;
  std::vector<std::uint32_t> group_b;
  bool oneway = false;
};

/// An ordered list of fault events; build with the fluent methods or parse
/// from the spec grammar. Schedules are plain data — arm them with Injector.
class Schedule {
 public:
  Schedule& crash(sim::Time at, std::uint32_t engine);
  Schedule& restart(sim::Time at, std::uint32_t engine);
  Schedule& drop(sim::Time from, sim::Time until, std::uint32_t engine, double probability);
  Schedule& delay(sim::Time from, sim::Time until, std::uint32_t engine, sim::Time extra);
  Schedule& stall(sim::Time at, std::uint32_t engine, std::uint32_t target, sim::Time duration);
  /// Network partition window: every RPC between `group_a` and `group_b`
  /// (engine-index sets, disjoint and non-empty) is dropped unconditionally
  /// while the window is open. With `oneway`, only group_a -> group_b traffic
  /// is severed (asymmetric link failure); replies from B still cross.
  Schedule& partition(sim::Time from, sim::Time until, std::vector<std::uint32_t> group_a,
                      std::vector<std::uint32_t> group_b, bool oneway = false);

  /// Parses the comma-separated spec grammar, e.g.
  ///   crash@200ms:e3,restart@1.5s:e3,drop@0-500ms:e1:0.3,
  ///   delay@100ms-1s:*:200us,stall@50ms:e0.2:30ms,
  ///   partition@1s-4s:e0+e1|e2+e3,partition@1s-4s:e0>e1
  /// Times take us/ms/s suffixes (bare numbers are seconds). Partition groups
  /// are '+'-joined engine selectors split by '|' (symmetric) or '>'
  /// (one-way, left drops toward right). Fails with Errno::invalid on
  /// malformed input (including the empty string).
  static Result<Schedule> parse(std::string_view spec);

  /// Checks every event against a concrete cluster shape: engine indices must
  /// be < engine_count and stall targets < targets_per_engine. The grammar
  /// cannot know the cluster size, so CLI front-ends call this before arming
  /// (Injector::arm asserts the same invariant). Fails with Errno::invalid.
  Result<void> validate(std::uint32_t engine_count, std::uint32_t targets_per_engine) const;

  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<Event> events_;
};

/// Embedder-supplied actions binding fault events to a concrete cluster
/// (the testbed wires these to engine/raft/pool plumbing).
struct Hooks {
  std::function<void(std::uint32_t engine)> crash;
  std::function<void(std::uint32_t engine)> restart;
  std::function<void(std::uint32_t engine, std::uint32_t target, sim::Time duration)> stall;
  /// Engine index -> fabric node, for matching RPC traffic against windows.
  std::function<net::NodeId(std::uint32_t engine)> node_of;
  std::uint32_t engine_count = 0;
};

/// Arms schedules against a live cluster. Owns the RPC fault hook and fabric
/// delay hook for its domain (one Injector per RpcDomain); uninstalls them on
/// destruction. Drop decisions come from a seeded Xoshiro256 consumed in
/// call order, so one seed yields one trace.
class Injector {
 public:
  Injector(net::RpcDomain& domain, Hooks hooks, std::uint64_t seed);
  ~Injector();
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Registers every event of `s`, offset from the scheduler's current time.
  /// May be called repeatedly to layer schedules.
  void arm(const Schedule& s);

  std::uint64_t faults_injected() const { return injected_; }
  std::uint64_t calls_dropped() const { return dropped_; }
  std::uint64_t calls_delayed() const { return delayed_; }
  std::uint64_t calls_partitioned() const { return partitioned_; }

 private:
  struct Window {
    Kind kind = Kind::drop;
    sim::Time from = 0;
    sim::Time until = 0;
    net::NodeId node = 0;  // matched against call src/dst
    bool all_nodes = false;
    double probability = 1.0;
    sim::Time amount = 0;
    // partition only: fabric-node groups (resolved from engine indices at
    // arm time) and the one-way flag.
    std::vector<net::NodeId> nodes_a;
    std::vector<net::NodeId> nodes_b;
    bool oneway = false;
  };

  void fire(const Event& ev);
  net::CallFault on_call(net::NodeId src, net::NodeId dst);
  sim::Time on_transfer(net::NodeId src, net::NodeId dst);
  bool window_matches(const Window& w, net::NodeId src, net::NodeId dst) const;

  net::RpcDomain& domain_;
  sim::Scheduler& sched_;
  Hooks hooks_;
  sim::Xoshiro256 rng_;
  std::vector<Window> windows_;
  std::vector<sim::Timer> timers_;
  std::uint64_t injected_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t partitioned_ = 0;
};

}  // namespace daosim::fault
