#include "fault/fault.hpp"

#include <algorithm>
#include <charconv>

namespace daosim::fault {

namespace {

// Trace-digest tags: every injected fault is folded into trace_hash() as
// tag ^ detail, keeping fault runs bit-reproducible end to end.
constexpr std::uint64_t kTraceFault = 0xFA017'0000'0000ULL;
constexpr std::uint64_t kTraceDrop = 0xFA0D2'0000'0000ULL;
constexpr std::uint64_t kTracePartition = 0xFA0D3'0000'0000ULL;

/// Parses "200ms" / "1.5s" / "300us" / bare seconds. Returns false on junk.
bool parse_time(std::string_view s, sim::Time& out) {
  if (s.empty()) return false;
  double value = 0.0;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [rest, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || value < 0) return false;
  const std::string_view suffix(rest, std::size_t(end - rest));
  double scale = double(sim::kSec);
  if (suffix == "us") scale = double(sim::kUs);
  else if (suffix == "ms") scale = double(sim::kMs);
  else if (suffix == "s" || suffix.empty()) scale = double(sim::kSec);
  else return false;
  out = sim::Time(value * scale);
  return true;
}

/// Parses "e3" / "e0.2" (engine.target) / "*". Returns false on junk.
bool parse_selector(std::string_view s, std::uint32_t& engine, std::uint32_t* target) {
  if (s == "*") {
    engine = kAllEngines;
    return target == nullptr;  // stall needs a concrete engine.target
  }
  if (s.size() < 2 || s[0] != 'e') return false;
  s.remove_prefix(1);
  const std::size_t dot = s.find('.');
  std::string_view epart = s.substr(0, dot);
  auto [p1, ec1] = std::from_chars(epart.data(), epart.data() + epart.size(), engine);
  if (ec1 != std::errc{} || p1 != epart.data() + epart.size()) return false;
  if (target == nullptr) return dot == std::string_view::npos;
  if (dot == std::string_view::npos) return false;
  std::string_view tpart = s.substr(dot + 1);
  auto [p2, ec2] = std::from_chars(tpart.data(), tpart.data() + tpart.size(), *target);
  return ec2 == std::errc{} && p2 == tpart.data() + tpart.size() && !tpart.empty();
}

/// Parses one bare engine token "eN" (no '.' target part, no wildcard).
bool parse_engine_token(std::string_view s, std::uint32_t& engine) {
  if (s.size() < 2 || s[0] != 'e') return false;
  s.remove_prefix(1);
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), engine);
  return ec == std::errc{} && p == s.data() + s.size();
}

/// Parses a partition group: '+'-joined engine tokens, e.g. "e0+e1+e5".
bool parse_group(std::string_view s, std::vector<std::uint32_t>& out) {
  for (;;) {
    const std::size_t plus = s.find('+');
    std::uint32_t e = 0;
    if (!parse_engine_token(s.substr(0, plus), e)) return false;
    out.push_back(e);
    if (plus == std::string_view::npos) return true;
    s = s.substr(plus + 1);
  }
}

/// Splits "T" or "T1-T2" at the dash (the dash never appears inside a time).
bool parse_time_range(std::string_view s, sim::Time& from, sim::Time& until, bool window) {
  const std::size_t dash = s.find('-');
  if (!window) {
    return dash == std::string_view::npos && parse_time(s, from);
  }
  if (dash == std::string_view::npos) return false;
  return parse_time(s.substr(0, dash), from) && parse_time(s.substr(dash + 1), until) &&
         until > from;
}

}  // namespace

const char* to_string(Kind k) {
  switch (k) {
    case Kind::crash: return "crash";
    case Kind::restart: return "restart";
    case Kind::drop: return "drop";
    case Kind::delay: return "delay";
    case Kind::stall: return "stall";
    case Kind::partition: return "partition";
  }
  return "?";
}

Schedule& Schedule::crash(sim::Time at, std::uint32_t engine) {
  events_.push_back(Event{Kind::crash, at, 0, engine, 0, 1.0, 0});
  return *this;
}

Schedule& Schedule::restart(sim::Time at, std::uint32_t engine) {
  events_.push_back(Event{Kind::restart, at, 0, engine, 0, 1.0, 0});
  return *this;
}

Schedule& Schedule::drop(sim::Time from, sim::Time until, std::uint32_t engine,
                         double probability) {
  DAOSIM_REQUIRE(probability > 0.0 && probability <= 1.0, "drop probability out of (0,1]");
  DAOSIM_REQUIRE(until > from, "empty drop window");
  events_.push_back(Event{Kind::drop, from, until, engine, 0, probability, 0});
  return *this;
}

Schedule& Schedule::delay(sim::Time from, sim::Time until, std::uint32_t engine,
                          sim::Time extra) {
  DAOSIM_REQUIRE(extra > 0, "delay amount must be positive");
  DAOSIM_REQUIRE(until > from, "empty delay window");
  events_.push_back(Event{Kind::delay, from, until, engine, 0, 1.0, extra});
  return *this;
}

Schedule& Schedule::stall(sim::Time at, std::uint32_t engine, std::uint32_t target,
                          sim::Time duration) {
  DAOSIM_REQUIRE(duration > 0, "stall duration must be positive");
  events_.push_back(Event{Kind::stall, at, 0, engine, target, 1.0, duration});
  return *this;
}

Schedule& Schedule::partition(sim::Time from, sim::Time until,
                              std::vector<std::uint32_t> group_a,
                              std::vector<std::uint32_t> group_b, bool oneway) {
  DAOSIM_REQUIRE(until > from, "empty partition window");
  DAOSIM_REQUIRE(!group_a.empty() && !group_b.empty(), "empty partition group");
  for (std::uint32_t a : group_a) {
    DAOSIM_REQUIRE(std::find(group_b.begin(), group_b.end(), a) == group_b.end(),
                   "engine %u on both sides of a partition", a);
  }
  Event ev{Kind::partition, from, until, 0, 0, 1.0, 0};
  ev.group_a = std::move(group_a);
  ev.group_b = std::move(group_b);
  ev.oneway = oneway;
  events_.push_back(std::move(ev));
  return *this;
}

Result<Schedule> Schedule::parse(std::string_view spec) {
  if (spec.empty()) return Errno::invalid;
  Schedule out;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = (comma == std::string_view::npos) ? std::string_view{} : spec.substr(comma + 1);

    const std::size_t at_pos = item.find('@');
    if (at_pos == std::string_view::npos) return Errno::invalid;
    const std::string_view kind_str = item.substr(0, at_pos);
    std::string_view rest = item.substr(at_pos + 1);

    // rest = time[-time]:selector[:arg]
    const std::size_t c1 = rest.find(':');
    if (c1 == std::string_view::npos) return Errno::invalid;
    const std::string_view time_str = rest.substr(0, c1);
    rest = rest.substr(c1 + 1);
    const std::size_t c2 = rest.find(':');
    const std::string_view sel_str = rest.substr(0, c2);
    const std::string_view arg_str =
        (c2 == std::string_view::npos) ? std::string_view{} : rest.substr(c2 + 1);

    sim::Time from = 0, until = 0;
    std::uint32_t engine = 0, target = 0;
    if (kind_str == "crash" || kind_str == "restart") {
      if (!parse_time_range(time_str, from, until, /*window=*/false)) return Errno::invalid;
      if (!parse_selector(sel_str, engine, nullptr) || engine == kAllEngines) {
        return Errno::invalid;
      }
      if (!arg_str.empty()) return Errno::invalid;
      if (kind_str == "crash") out.crash(from, engine);
      else out.restart(from, engine);
    } else if (kind_str == "drop") {
      if (!parse_time_range(time_str, from, until, /*window=*/true)) return Errno::invalid;
      if (!parse_selector(sel_str, engine, nullptr)) return Errno::invalid;
      double p = 0.0;
      auto [pe, ec] = std::from_chars(arg_str.data(), arg_str.data() + arg_str.size(), p);
      if (ec != std::errc{} || pe != arg_str.data() + arg_str.size() || p <= 0.0 || p > 1.0) {
        return Errno::invalid;
      }
      out.drop(from, until, engine, p);
    } else if (kind_str == "delay") {
      if (!parse_time_range(time_str, from, until, /*window=*/true)) return Errno::invalid;
      if (!parse_selector(sel_str, engine, nullptr)) return Errno::invalid;
      sim::Time extra = 0;
      if (!parse_time(arg_str, extra) || extra == 0) return Errno::invalid;
      out.delay(from, until, engine, extra);
    } else if (kind_str == "stall") {
      if (!parse_time_range(time_str, from, until, /*window=*/false)) return Errno::invalid;
      if (!parse_selector(sel_str, engine, &target)) return Errno::invalid;
      sim::Time duration = 0;
      if (!parse_time(arg_str, duration) || duration == 0) return Errno::invalid;
      out.stall(from, engine, target, duration);
    } else if (kind_str == "partition") {
      if (!parse_time_range(time_str, from, until, /*window=*/true)) return Errno::invalid;
      if (!arg_str.empty()) return Errno::invalid;
      // groupA|groupB severs both directions; groupA>groupB only A->B.
      std::size_t sep = sel_str.find('|');
      bool oneway = false;
      if (sep == std::string_view::npos) {
        sep = sel_str.find('>');
        oneway = true;
      }
      if (sep == std::string_view::npos) return Errno::invalid;
      std::vector<std::uint32_t> ga, gb;
      if (!parse_group(sel_str.substr(0, sep), ga)) return Errno::invalid;
      if (!parse_group(sel_str.substr(sep + 1), gb)) return Errno::invalid;
      for (std::uint32_t a : ga) {
        if (std::find(gb.begin(), gb.end(), a) != gb.end()) return Errno::invalid;
      }
      out.partition(from, until, std::move(ga), std::move(gb), oneway);
    } else {
      return Errno::invalid;
    }
  }
  return out;
}

Result<void> Schedule::validate(std::uint32_t engine_count,
                                std::uint32_t targets_per_engine) const {
  for (const Event& ev : events_) {
    if (ev.kind == Kind::partition) {
      for (std::uint32_t e : ev.group_a) {
        if (e >= engine_count) return Errno::invalid;
      }
      for (std::uint32_t e : ev.group_b) {
        if (e >= engine_count) return Errno::invalid;
      }
      continue;
    }
    if (ev.engine != kAllEngines && ev.engine >= engine_count) return Errno::invalid;
    if (ev.kind == Kind::stall && ev.target >= targets_per_engine) return Errno::invalid;
  }
  return Result<void>{};
}

// ---------------------------------------------------------------------------
// Injector

Injector::Injector(net::RpcDomain& domain, Hooks hooks, std::uint64_t seed)
    : domain_(domain), sched_(domain.scheduler()), hooks_(std::move(hooks)), rng_(seed) {
  DAOSIM_REQUIRE(hooks_.crash && hooks_.restart && hooks_.stall && hooks_.node_of,
                 "fault::Injector needs a full hook set");
  DAOSIM_REQUIRE(hooks_.engine_count > 0, "fault::Injector needs at least one engine");
  domain_.set_fault_hook(
      [this](net::NodeId src, net::NodeId dst, std::uint16_t) { return on_call(src, dst); });
  domain_.fabric().set_delay_hook(
      [this](net::NodeId src, net::NodeId dst) { return on_transfer(src, dst); });
}

Injector::~Injector() {
  domain_.set_fault_hook(nullptr);
  domain_.fabric().set_delay_hook(nullptr);
  for (auto& t : timers_) t.cancel();
}

void Injector::arm(const Schedule& s) {
  const sim::Time base = sched_.now();
  for (const Event& ev : s.events()) {
    DAOSIM_REQUIRE(ev.engine == kAllEngines || ev.engine < hooks_.engine_count,
                   "fault event names engine %u of %u", ev.engine, hooks_.engine_count);
    switch (ev.kind) {
      case Kind::crash:
      case Kind::restart:
      case Kind::stall: {
        const Event fired = ev;  // copy into the closure; `s` may not outlive us
        timers_.push_back(sched_.schedule_callback(base + ev.at, [this, fired] { fire(fired); }));
        break;
      }
      case Kind::drop:
      case Kind::delay: {
        Window w;
        w.kind = ev.kind;
        w.from = base + ev.at;
        w.until = base + ev.until;
        w.all_nodes = (ev.engine == kAllEngines);
        w.node = w.all_nodes ? 0 : hooks_.node_of(ev.engine);
        w.probability = ev.probability;
        w.amount = ev.amount;
        windows_.push_back(w);
        break;
      }
      case Kind::partition: {
        Window w;
        w.kind = Kind::partition;
        w.from = base + ev.at;
        w.until = base + ev.until;
        w.oneway = ev.oneway;
        for (std::uint32_t e : ev.group_a) {
          DAOSIM_REQUIRE(e < hooks_.engine_count, "partition names engine %u of %u", e,
                         hooks_.engine_count);
          w.nodes_a.push_back(hooks_.node_of(e));
        }
        for (std::uint32_t e : ev.group_b) {
          DAOSIM_REQUIRE(e < hooks_.engine_count, "partition names engine %u of %u", e,
                         hooks_.engine_count);
          w.nodes_b.push_back(hooks_.node_of(e));
        }
        windows_.push_back(std::move(w));
        break;
      }
    }
  }
}

void Injector::fire(const Event& ev) {
  ++injected_;
  sched_.trace_note(kTraceFault ^ (std::uint64_t(ev.kind) << 32) ^ ev.engine);
  switch (ev.kind) {
    case Kind::crash: hooks_.crash(ev.engine); break;
    case Kind::restart: hooks_.restart(ev.engine); break;
    case Kind::stall: hooks_.stall(ev.engine, ev.target, ev.amount); break;
    default: break;  // windows never fire as point events
  }
}

bool Injector::window_matches(const Window& w, net::NodeId src, net::NodeId dst) const {
  const sim::Time now = sched_.now();
  if (now < w.from || now >= w.until) return false;
  return w.all_nodes || src == w.node || dst == w.node;
}

net::CallFault Injector::on_call(net::NodeId src, net::NodeId dst) {
  net::CallFault fault;
  // Partition windows first, and with NO rng draw: a severed link drops every
  // matching call unconditionally, so layering a partition onto a schedule
  // never perturbs the seeded probability stream of coexisting drop windows.
  const sim::Time now = sched_.now();
  for (const Window& w : windows_) {
    if (w.kind != Kind::partition || now < w.from || now >= w.until) continue;
    auto in = [](const std::vector<net::NodeId>& g, net::NodeId n) {
      return std::find(g.begin(), g.end(), n) != g.end();
    };
    const bool a_to_b = in(w.nodes_a, src) && in(w.nodes_b, dst);
    const bool b_to_a = in(w.nodes_b, src) && in(w.nodes_a, dst);
    if (a_to_b || (!w.oneway && b_to_a)) {
      fault.drop = true;
      ++partitioned_;
      sched_.trace_note(kTracePartition ^ (std::uint64_t(src) << 32) ^ dst);
      return fault;
    }
  }
  for (const Window& w : windows_) {
    if (w.kind != Kind::drop || !window_matches(w, src, dst)) continue;
    // One rng draw per matching call: calls are dispatched in deterministic
    // order, so the drop pattern replays exactly for a given seed.
    if (rng_.uniform01() < w.probability) {
      fault.drop = true;
      ++dropped_;
      sched_.trace_note(kTraceDrop ^ (std::uint64_t(src) << 32) ^ dst);
      break;
    }
  }
  return fault;
}

sim::Time Injector::on_transfer(net::NodeId src, net::NodeId dst) {
  sim::Time extra = 0;
  for (const Window& w : windows_) {
    if (w.kind == Kind::delay && window_matches(w, src, dst)) extra += w.amount;
  }
  if (extra > 0) ++delayed_;
  return extra;
}

}  // namespace daosim::fault
