// MPI-IO layer (the ROMIO equivalent the paper drives over a DFuse mount).
//
// CollectiveFile is a shared-file handle opened collectively by every rank.
// Independent read_at/write_at go straight to the rank's Vfs (DFuse in the
// benchmarks). The _all variants implement two-phase collective buffering:
// one aggregator per client node, contiguous file domains, data shuffled to
// aggregators over the fabric, then large contiguous Vfs I/O.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "mpi/mpi.hpp"
#include "posix/vfs.hpp"

namespace daosim::mpiio {

struct MpiIoConfig {
  std::uint64_t cb_buffer_size = 16 << 20;  // ROMIO cb_buffer_size default
};

class CollectiveFile {
 public:
  CollectiveFile(mpi::MpiWorld& world, MpiIoConfig cfg = {});

  /// Collective open: every rank calls with its node-local Vfs. Rank 0
  /// creates/truncates; all ranks then open.
  sim::CoTask<Errno> open(mpi::Comm comm, posix::Vfs& vfs, const std::string& path,
                          posix::VfsOpenFlags flags);
  sim::CoTask<Errno> close(mpi::Comm comm);

  // --- independent I/O ---
  sim::CoTask<Result<std::uint64_t>> write_at(mpi::Comm comm, std::uint64_t offset,
                                              std::uint64_t length,
                                              std::span<const std::byte> data);
  sim::CoTask<Result<std::uint64_t>> read_at(mpi::Comm comm, std::uint64_t offset,
                                             std::span<std::byte> out);

  // --- collective (two-phase) I/O ---
  sim::CoTask<Result<std::uint64_t>> write_at_all(mpi::Comm comm, std::uint64_t offset,
                                                  std::uint64_t length,
                                                  std::span<const std::byte> data);
  sim::CoTask<Result<std::uint64_t>> read_at_all(mpi::Comm comm, std::uint64_t offset,
                                                 std::span<std::byte> out);

  sim::CoTask<Result<std::uint64_t>> size(mpi::Comm comm);

 private:
  struct RankState {
    posix::Vfs* vfs = nullptr;
    posix::Fd fd = -1;
  };
  struct Contribution {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::span<const std::byte> wdata{};  // writes
    std::span<std::byte> rdata{};        // reads
  };

  /// Ranks acting as aggregators: the lowest rank on each client node.
  bool is_aggregator(int rank) const;
  std::vector<int> aggregators() const;
  sim::CoTask<void> shuffle_and_write(int me, std::uint64_t lo, std::uint64_t hi,
                                      std::shared_ptr<Errno> status);
  sim::CoTask<void> read_and_scatter(int me, std::uint64_t lo, std::uint64_t hi,
                                     std::shared_ptr<Errno> status);

  mpi::MpiWorld& world_;
  MpiIoConfig cfg_;
  std::vector<RankState> ranks_;
  std::vector<Contribution> pending_;  // per-rank slots for the current collective
};

}  // namespace daosim::mpiio
