#include "mpiio/mpiio.hpp"

#include <algorithm>

namespace daosim::mpiio {

using posix::VfsOpenFlags;

CollectiveFile::CollectiveFile(mpi::MpiWorld& world, MpiIoConfig cfg)
    : world_(world), cfg_(cfg) {
  ranks_.resize(std::size_t(world.size()));
  pending_.resize(std::size_t(world.size()));
}

bool CollectiveFile::is_aggregator(int rank) const {
  const net::NodeId node = world_.node_of(rank);
  for (int r = 0; r < rank; ++r) {
    if (world_.node_of(r) == node) return false;
  }
  return true;
}

std::vector<int> CollectiveFile::aggregators() const {
  std::vector<int> out;
  for (int r = 0; r < world_.size(); ++r) {
    if (is_aggregator(r)) out.push_back(r);
  }
  return out;
}

sim::CoTask<Errno> CollectiveFile::open(mpi::Comm comm, posix::Vfs& vfs,
                                        const std::string& path, VfsOpenFlags flags) {
  // Rank 0 creates the file; everyone else opens it afterwards (the barrier
  // is the collective-open synchronisation ROMIO performs).
  if (comm.rank() == 0) {
    auto fd = co_await vfs.open(path, flags);
    if (!fd.ok()) co_return fd.error();
    ranks_[0] = RankState{&vfs, *fd};
  }
  co_await comm.barrier();
  if (comm.rank() != 0) {
    VfsOpenFlags oflags = flags;
    oflags.create = false;
    oflags.excl = false;
    oflags.truncate = false;
    auto fd = co_await vfs.open(path, oflags);
    if (!fd.ok()) co_return fd.error();
    ranks_[std::size_t(comm.rank())] = RankState{&vfs, *fd};
  }
  co_await comm.barrier();
  co_return Errno::ok;
}

sim::CoTask<Errno> CollectiveFile::close(mpi::Comm comm) {
  auto& st = ranks_[std::size_t(comm.rank())];
  if (st.vfs == nullptr) co_return Errno::bad_fd;
  const Errno rc = co_await st.vfs->close(st.fd);
  st = RankState{};
  co_await comm.barrier();
  co_return rc;
}

sim::CoTask<Result<std::uint64_t>> CollectiveFile::write_at(mpi::Comm comm,
                                                            std::uint64_t offset,
                                                            std::uint64_t length,
                                                            std::span<const std::byte> data) {
  auto& st = ranks_[std::size_t(comm.rank())];
  if (st.vfs == nullptr) co_return Errno::bad_fd;
  co_return co_await st.vfs->pwrite(st.fd, offset, length, data);
}

sim::CoTask<Result<std::uint64_t>> CollectiveFile::read_at(mpi::Comm comm,
                                                           std::uint64_t offset,
                                                           std::span<std::byte> out) {
  auto& st = ranks_[std::size_t(comm.rank())];
  if (st.vfs == nullptr) co_return Errno::bad_fd;
  co_return co_await st.vfs->pread(st.fd, offset, out);
}

sim::CoTask<Result<std::uint64_t>> CollectiveFile::size(mpi::Comm comm) {
  auto& st = ranks_[std::size_t(comm.rank())];
  if (st.vfs == nullptr) co_return Errno::bad_fd;
  co_return co_await st.vfs->fsize(st.fd);
}

// ---------------------------------------------------------------------------
// Two-phase collective I/O

sim::CoTask<void> CollectiveFile::shuffle_and_write(int me, std::uint64_t lo, std::uint64_t hi,
                                                    std::shared_ptr<Errno> status) {
  // Phase 1: pull every contribution overlapping my file domain [lo, hi).
  auto& st = ranks_[std::size_t(me)];
  const bool has_payload = std::any_of(pending_.begin(), pending_.end(),
                                       [](const Contribution& c) { return !c.wdata.empty(); });
  std::vector<std::byte> buf;
  if (has_payload) buf.assign(std::size_t(hi - lo), std::byte{0});

  sim::WaitGroup wg(world_.scheduler());
  for (int r = 0; r < world_.size(); ++r) {
    const Contribution& c = pending_[std::size_t(r)];
    const std::uint64_t s = std::max(lo, c.offset);
    const std::uint64_t e = std::min(hi, c.offset + c.length);
    if (s >= e) continue;
    if (!c.wdata.empty()) {
      std::copy_n(c.wdata.begin() + std::ptrdiff_t(s - c.offset), e - s,
                  buf.begin() + std::ptrdiff_t(s - lo));
    }
    if (r != me) {
      // Charge the shuffle transfer from the contributor's node to mine.
      wg.spawn(world_.charge_transfer(r, me, e - s));
    }
  }
  co_await wg.wait();

  // Phase 2: write only the union of contributed ranges (never the holes
  // between them — those may hold live data from earlier rounds), coalesced
  // into cb_buffer_size pieces.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;
  for (const auto& c : pending_) {
    const std::uint64_t s = std::max(lo, c.offset);
    const std::uint64_t e = std::min(hi, c.offset + c.length);
    if (s < e) runs.emplace_back(s, e);
  }
  std::sort(runs.begin(), runs.end());
  std::size_t kept = 0;
  for (const auto& r : runs) {
    if (kept > 0 && r.first <= runs[kept - 1].second) {
      runs[kept - 1].second = std::max(runs[kept - 1].second, r.second);
    } else {
      runs[kept++] = r;
    }
  }
  runs.resize(kept);
  for (const auto& [rs, re] : runs) {
    std::uint64_t pos = rs;
    while (pos < re) {
      const std::uint64_t piece = std::min(cfg_.cb_buffer_size, re - pos);
      std::span<const std::byte> slice;
      if (has_payload) {
        slice = std::span<const std::byte>(buf).subspan(std::size_t(pos - lo),
                                                        std::size_t(piece));
      }
      auto rc = co_await st.vfs->pwrite(st.fd, pos, piece, slice);
      if (!rc.ok()) *status = rc.error();
      pos += piece;
    }
  }
}

sim::CoTask<Result<std::uint64_t>> CollectiveFile::write_at_all(mpi::Comm comm,
                                                                std::uint64_t offset,
                                                                std::uint64_t length,
                                                                std::span<const std::byte> data) {
  const int me = comm.rank();
  pending_[std::size_t(me)] = Contribution{offset, length, data, {}};
  co_await comm.barrier();  // offset/length exchange (allgather)

  // Global extent and per-aggregator contiguous file domains.
  std::uint64_t glo = ~0ULL, ghi = 0;
  for (const auto& c : pending_) {
    if (c.length == 0) continue;
    glo = std::min(glo, c.offset);
    ghi = std::max(ghi, c.offset + c.length);
  }
  auto status = std::make_shared<Errno>(Errno::ok);
  if (glo < ghi) {
    const auto aggs = aggregators();
    const std::uint64_t span = ghi - glo;
    const std::uint64_t per = (span + aggs.size() - 1) / aggs.size();
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a] != me) continue;
      const std::uint64_t lo = glo + a * per;
      const std::uint64_t hi = std::min(ghi, lo + per);
      if (lo < hi) co_await shuffle_and_write(me, lo, hi, status);
    }
  }
  co_await comm.barrier();  // collective completion
  pending_[std::size_t(me)] = Contribution{};
  if (*status != Errno::ok) co_return *status;
  co_return length;
}

sim::CoTask<void> CollectiveFile::read_and_scatter(int me, std::uint64_t lo, std::uint64_t hi,
                                                   std::shared_ptr<Errno> status) {
  auto& st = ranks_[std::size_t(me)];
  std::vector<std::byte> buf(std::size_t(hi - lo));
  std::uint64_t pos = lo;
  while (pos < hi) {
    const std::uint64_t piece = std::min(cfg_.cb_buffer_size, hi - pos);
    auto rc = co_await st.vfs->pread(
        st.fd, pos, std::span<std::byte>(buf).subspan(std::size_t(pos - lo), std::size_t(piece)));
    if (!rc.ok()) *status = rc.error();
    pos += piece;
  }
  // Scatter to contributors (copy + fabric charge).
  sim::WaitGroup wg(world_.scheduler());
  for (int r = 0; r < world_.size(); ++r) {
    Contribution& c = pending_[std::size_t(r)];
    const std::uint64_t s = std::max(lo, c.offset);
    const std::uint64_t e = std::min(hi, c.offset + c.length);
    if (s >= e) continue;
    if (!c.rdata.empty()) {
      std::copy_n(buf.begin() + std::ptrdiff_t(s - lo), e - s,
                  c.rdata.begin() + std::ptrdiff_t(s - c.offset));
    }
    if (r != me) {
      wg.spawn(world_.charge_transfer(me, r, e - s));
    }
  }
  co_await wg.wait();
}

sim::CoTask<Result<std::uint64_t>> CollectiveFile::read_at_all(mpi::Comm comm,
                                                               std::uint64_t offset,
                                                               std::span<std::byte> out) {
  const int me = comm.rank();
  pending_[std::size_t(me)] = Contribution{offset, out.size(), {}, out};
  co_await comm.barrier();

  std::uint64_t glo = ~0ULL, ghi = 0;
  for (const auto& c : pending_) {
    if (c.length == 0) continue;
    glo = std::min(glo, c.offset);
    ghi = std::max(ghi, c.offset + c.length);
  }
  auto status = std::make_shared<Errno>(Errno::ok);
  if (glo < ghi) {
    const auto aggs = aggregators();
    const std::uint64_t span = ghi - glo;
    const std::uint64_t per = (span + aggs.size() - 1) / aggs.size();
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a] != me) continue;
      const std::uint64_t lo = glo + a * per;
      const std::uint64_t hi = std::min(ghi, lo + per);
      if (lo < hi) co_await read_and_scatter(me, lo, hi, status);
    }
  }
  co_await comm.barrier();
  pending_[std::size_t(me)] = Contribution{};
  if (*status != Errno::ok) co_return *status;
  co_return out.size();
}

}  // namespace daosim::mpiio
