// Deterministic PRNG for the simulation: xoshiro256++ seeded via splitmix64.
// Every stochastic choice in daosim flows through one of these so a run is
// exactly reproducible from its seed.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace daosim::sim {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's unbiased multiply-shift method.
  std::uint64_t uniform(std::uint64_t bound) {
    DAOSIM_REQUIRE(bound > 0, "uniform bound must be positive");
    // Rejection loop guarantees exact uniformity.
    __uint128_t m = __uint128_t((*this)()) * bound;
    auto lo = std::uint64_t(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = __uint128_t((*this)()) * bound;
        lo = std::uint64_t(m);
      }
    }
    return std::uint64_t(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return double((*this)() >> 11) * 0x1.0p-53; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u = uniform01();
    while (u <= 0.0) u = uniform01();
    return -mean * std::log(u);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[uniform(i)]);
    }
  }

  /// Deterministically derives an independent sub-stream (e.g. per rank).
  Xoshiro256 fork(std::uint64_t salt) {
    return Xoshiro256((*this)() ^ (salt * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace daosim::sim
