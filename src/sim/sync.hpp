// Cooperative synchronisation primitives for simulated processes: Event,
// Semaphore, Mutex, Channel and WaitGroup. All are single-threaded (the
// simulation is cooperative); "blocking" means suspending the coroutine until
// another process signals it through the scheduler.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/scheduler.hpp"

namespace daosim::sim {

/// One-to-many level-triggered event. wait() completes immediately if the
/// event is set; otherwise the waiter suspends until set() fires.
class Event {
 public:
  explicit Event(Scheduler& s) : sched_(s) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  auto wait() {
    struct Awaiter {
      Event& e;
      bool await_ready() const noexcept { return e.set_; }
      void await_suspend(std::coroutine_handle<> h) { e.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Timed wait: resumes with true when the event fires, false on timeout.
  auto wait_for(Time timeout) { return TimedAwaiter{*this, timeout}; }

  void set() {
    set_ = true;
    for (auto h : waiters_) sched_.schedule(sched_.now(), h);
    waiters_.clear();
    for (auto* w : timed_waiters_) {
      w->timer.cancel();
      w->fired = true;
      sched_.schedule(sched_.now(), w->handle);
    }
    timed_waiters_.clear();
  }

  void reset() { set_ = false; }
  bool is_set() const { return set_; }
  std::size_t waiter_count() const { return waiters_.size() + timed_waiters_.size(); }

 private:
  struct TimedAwaiter {
    Event& e;
    Time timeout;
    bool fired = false;
    Timer timer{};
    std::coroutine_handle<> handle{};

    bool await_ready() const noexcept { return e.set_; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      e.timed_waiters_.push_back(this);
      timer = e.sched_.schedule_callback(e.sched_.now() + timeout, [this] {
        std::erase(e.timed_waiters_, this);
        fired = false;
        e.sched_.schedule(e.sched_.now(), handle);
      });
    }
    bool await_resume() const noexcept { return fired || e.set_; }
  };

  Scheduler& sched_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
  std::vector<TimedAwaiter*> timed_waiters_;
};

/// FIFO counting semaphore. release() hands the permit directly to the oldest
/// waiter, preserving arrival order.
class Semaphore {
 public:
  Semaphore(Scheduler& s, std::size_t permits) : sched_(s), permits_(permits) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept {
        if (sem.permits_ > 0) {
          --sem.permits_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sched_.schedule(sched_.now(), h);  // permit handed to waiter
    } else {
      ++permits_;
    }
  }

  std::size_t available() const { return permits_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Scheduler& sched_;
  std::size_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Scoped-release mutex built on Semaphore.
class Mutex {
 public:
  explicit Mutex(Scheduler& s) : sem_(s, 1) {}
  auto lock() { return sem_.acquire(); }
  void unlock() { sem_.release(); }

 private:
  Semaphore sem_;
};

/// RAII guard: `auto g = co_await ScopedLock::acquire(mutex);`
class ScopedLock {
 public:
  static CoTask<ScopedLock> acquire(Mutex& m) {
    co_await m.lock();
    co_return ScopedLock(&m);
  }
  ScopedLock(ScopedLock&& o) noexcept : m_(std::exchange(o.m_, nullptr)) {}
  ScopedLock& operator=(ScopedLock&& o) noexcept {
    if (this != &o) {
      release();
      m_ = std::exchange(o.m_, nullptr);
    }
    return *this;
  }
  ~ScopedLock() { release(); }

 private:
  explicit ScopedLock(Mutex* m) : m_(m) {}
  void release() {
    if (m_) {
      m_->unlock();
      m_ = nullptr;
    }
  }
  Mutex* m_;
};

/// Unbounded FIFO channel. pop() suspends while the channel is empty.
template <typename T>
class Channel {
 public:
  explicit Channel(Scheduler& s) : sched_(s) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void push(T v) {
    if (!poppers_.empty()) {
      PopAwaiter* p = poppers_.front();
      poppers_.pop_front();
      p->value.emplace(std::move(v));
      sched_.schedule(sched_.now(), p->handle);
    } else {
      buf_.push_back(std::move(v));
    }
  }

  auto pop() { return PopAwaiter{*this}; }

  std::size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }

 private:
  struct PopAwaiter {
    Channel& ch;
    std::optional<T> value{};
    std::coroutine_handle<> handle{};
    bool await_ready() noexcept {
      if (!ch.buf_.empty()) {
        value.emplace(std::move(ch.buf_.front()));
        ch.buf_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      ch.poppers_.push_back(this);
    }
    T await_resume() { return std::move(*value); }
  };

  Scheduler& sched_;
  std::deque<T> buf_;
  std::deque<PopAwaiter*> poppers_;
};

/// Fork/join helper: spawn N child tasks, then `co_await wg.wait()`.
/// wait() completes immediately when nothing is pending.
class WaitGroup {
 public:
  explicit WaitGroup(Scheduler& s) : sched_(s), done_(s) { done_.set(); }

  void spawn(CoTask<void> t) {
    ++pending_;
    done_.reset();
    sched_.spawn(wrap(std::move(t)));
  }

  /// Callable overload keeping the closure alive (see Scheduler::spawn).
  template <typename F>
    requires requires(F f) {
      { f() } -> std::same_as<CoTask<void>>;
    }
  void spawn(F f) {
    spawn(invoke_holding(std::move(f)));
  }

  auto wait() { return done_.wait(); }
  std::size_t pending() const { return pending_; }

 private:
  template <typename F>
  static CoTask<void> invoke_holding(F f) {
    co_await f();
  }

  CoTask<void> wrap(CoTask<void> t) {
    co_await std::move(t);
    DAOSIM_REQUIRE(pending_ > 0, "WaitGroup underflow");
    if (--pending_ == 0) done_.set();
  }

  Scheduler& sched_;
  Event done_;
  std::size_t pending_ = 0;
};

/// Runs all tasks concurrently and completes when every one has finished.
inline CoTask<void> when_all(Scheduler& s, std::vector<CoTask<void>> tasks) {
  WaitGroup wg(s);
  for (auto& t : tasks) wg.spawn(std::move(t));
  co_await wg.wait();
}

/// Two-task convenience overload.
inline CoTask<void> when_all(Scheduler& s, CoTask<void> a, CoTask<void> b) {
  std::vector<CoTask<void>> v;
  v.push_back(std::move(a));
  v.push_back(std::move(b));
  return when_all(s, std::move(v));
}

}  // namespace daosim::sim
