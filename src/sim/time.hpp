// Virtual time for the discrete-event simulation. All timing in daosim is
// expressed in integer nanoseconds of simulated time.
#pragma once

#include <cstdint>

namespace daosim::sim {

using Time = std::uint64_t;  // nanoseconds of virtual time

constexpr Time kNs = 1;
constexpr Time kUs = 1000 * kNs;
constexpr Time kMs = 1000 * kUs;
constexpr Time kSec = 1000 * kMs;

/// Converts a virtual duration to seconds (for bandwidth math / reporting).
constexpr double to_seconds(Time t) { return double(t) * 1e-9; }

}  // namespace daosim::sim
