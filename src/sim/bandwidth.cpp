#include "sim/bandwidth.hpp"

#include <algorithm>
#include <cmath>

#include "common/audit.hpp"
#include "common/error.hpp"

namespace daosim::sim {

namespace {
// Completion slack: remaining bytes below this count as done. Keeps the
// floating-point fair-share arithmetic from scheduling zero-length rounds.
constexpr double kEpsilonBytes = 1e-3;
}  // namespace

double EfficiencyCurve::operator()(std::size_t n) const {
  if (n <= knee || alpha <= 0.0) return 1.0;
  return std::max(floor, std::pow(double(knee) / double(n), alpha));
}

SharedBandwidth::SharedBandwidth(Scheduler& s, double bytes_per_sec, EfficiencyCurve eff)
    : sched_(s), rate_ns_(bytes_per_sec * 1e-9), eff_(eff) {
  DAOSIM_REQUIRE(bytes_per_sec > 0.0, "bandwidth must be positive");
}

void SharedBandwidth::add_flow(double bytes, std::coroutine_handle<> h) {
  advance();
  if (flows_.empty()) busy_since_ = sched_.now();
  flows_.push_back(Flow{bytes, h});
  reschedule();
}

void SharedBandwidth::advance() {
  const Time now = sched_.now();
  if (flows_.empty() || now <= last_update_) {
    last_update_ = now;
    return;
  }
  const double elapsed = double(now - last_update_);
  const double per_flow = elapsed * rate_ns_ * eff_(flows_.size()) / double(flows_.size());
  double served_round = 0.0;
  bool clipped = false;
  for (auto& f : flows_) {
    const double served = std::min(f.remaining, per_flow);
    if (f.remaining < per_flow) clipped = true;
    f.remaining -= served;
    bytes_served_ += served;
    served_round += served;
  }
  last_update_ = now;
  // Audit (DAOSIM_AUDIT): fair sharing must conserve capacity. The round can
  // never serve more than the link could carry, and when no flow ran out of
  // demand mid-round the allocations must sum to exactly the link capacity.
  if constexpr (kAuditEnabled) {
    const double capacity = elapsed * rate_ns_ * eff_(flows_.size());
    const double slack = capacity * 1e-9 + kEpsilonBytes;
    DAOSIM_REQUIRE(served_round <= capacity + slack,
                   "audit: fair-share round served %.3f bytes over capacity %.3f",
                   served_round, capacity);
    DAOSIM_REQUIRE(clipped || std::abs(served_round - capacity) <= slack,
                   "audit: unclipped round served %.3f != capacity %.3f",
                   served_round, capacity);
  }
}

void SharedBandwidth::reschedule() {
  next_.cancel();
  if (flows_.empty()) return;
  double min_remaining = flows_.front().remaining;
  for (const auto& f : flows_) min_remaining = std::min(min_remaining, f.remaining);
  const double per_flow_rate = rate_ns_ * eff_(flows_.size()) / double(flows_.size());
  const double dt = std::max(0.0, min_remaining) / per_flow_rate;
  const Time fire = sched_.now() + Time(std::ceil(dt));
  next_ = sched_.schedule_callback(fire, [this] { on_completion(); });
}

void SharedBandwidth::on_completion() {
  advance();
  // Resume every flow that has (numerically) finished.
  std::vector<std::coroutine_handle<>> done;
  std::size_t kept = 0;
  for (auto& f : flows_) {
    if (f.remaining <= kEpsilonBytes) {
      done.push_back(f.h);
    } else {
      flows_[kept++] = f;
    }
  }
  flows_.resize(kept);
  if (flows_.empty() && !done.empty()) busy_accum_ += sched_.now() - busy_since_;
  reschedule();
  for (auto h : done) sched_.schedule(sched_.now(), h);
}

Time SharedBandwidth::busy_time() const {
  Time t = busy_accum_;
  if (!flows_.empty()) t += sched_.now() - busy_since_;
  return t;
}

}  // namespace daosim::sim
