// The discrete-event scheduler: a priority queue of (time, sequence) ordered
// events driving coroutine resumptions and plain callbacks under a virtual
// clock. Single-threaded and fully deterministic.
#pragma once

#include <concepts>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/co_task.hpp"
#include "sim/time.hpp"

namespace daosim::sim {

class Scheduler;

/// Causal trace context: identifies one span inside one trace tree. A context
/// is allocated at a trace root (a sampled client op, a DTX commit, a rebuild
/// assignment, a SWIM probe round) and handed down the call chain; each hop
/// derives a child with `child()`. All-zero means "not traced" — span ids are
/// never 0, so `active()` distinguishes sampled from unsampled work, and a
/// child of an inactive context stays inactive (sampling decisions propagate
/// for free). Plain value type: copying or dropping one never schedules.
struct TraceContext {
  std::uint64_t trace_id = 0;   ///< root span id of the whole tree
  std::uint64_t span_id = 0;    ///< this span
  std::uint64_t parent_id = 0;  ///< enclosing span (0 for the root)

  bool active() const { return trace_id != 0; }
  /// Derives the context of a child span with the given freshly-allocated id
  /// (see Scheduler::alloc_span_id). Inactive contexts stay inactive.
  TraceContext child(std::uint64_t id) const {
    return active() ? TraceContext{trace_id, id, span_id} : TraceContext{};
  }
  /// Starts a new trace tree rooted at span `id`. The only sanctioned way to
  /// originate a context (see the orphan-span lint rule): everything below a
  /// root must derive via child(), so every span id has a reachable parent.
  static TraceContext root(std::uint64_t id) { return TraceContext{id, id, 0}; }
};

/// Passive receiver for structured trace spans (RPCs, media transfers,
/// rebuild tasks). Implementations record the span; they must not touch the
/// scheduler — a sink never schedules events, so attaching one cannot change
/// `trace_hash()` or any simulated timing.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  /// One completed span: `category` is a static label ("rpc", "xfer",
  /// "media", "rebuild", "op", "svc", "queue", "vos", ...), `name` a
  /// human-readable description, `pid`/`tid` a process/track grouping
  /// (typically node id / opcode or stream), [begin, end] the simulated-time
  /// interval and `ctx` the causal linkage (inactive when the work was not
  /// sampled into a trace tree).
  virtual void span(const char* category, std::string name, std::uint32_t pid,
                    std::uint64_t tid, Time begin, Time end, TraceContext ctx = {}) = 0;
};

/// Handle to a cancellable callback timer (see Scheduler::schedule_callback).
class Timer {
 public:
  Timer() = default;
  /// Cancels the timer; a cancelled timer's callback never fires.
  void cancel() {
    if (state_) state_->cancelled = true;
    state_.reset();
  }
  bool armed() const { return state_ && !state_->cancelled && !state_->fired; }

 private:
  friend class Scheduler;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
  };
  explicit Timer(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  /// Destroys the frames of detached processes still suspended at teardown
  /// (e.g. blocked forever after a deadlock, or parked beyond the horizon of
  /// the last run_until). Each root frame owns its CoTask chain, so this
  /// unwinds whole processes.
  ~Scheduler();

  Time now() const { return now_; }

  /// Resumes `h` at virtual time `at` (>= now). Events with equal time fire
  /// in scheduling order.
  void schedule(Time at, std::coroutine_handle<> h);

  /// Runs `fn` at virtual time `at` unless the returned Timer is cancelled.
  Timer schedule_callback(Time at, std::function<void()> fn);

  /// Launches `t` as a detached top-level process starting at the current
  /// time. Exceptions escaping the process abort run().
  void spawn(CoTask<void> t);

  /// Spawns a callable returning CoTask<void>. The callable is moved into a
  /// wrapper coroutine frame so lambda captures stay alive for the process's
  /// lifetime — always prefer this over spawning `lambda()` directly, which
  /// dangles the closure (CppCoreGuidelines CP.51).
  template <typename F>
    requires requires(F f) {
      { f() } -> std::same_as<CoTask<void>>;
    }
  void spawn(F f) {
    spawn(invoke_holding(std::move(f)));
  }

  /// Awaitable that suspends the current coroutine for `dt` virtual time.
  auto delay(Time dt) {
    struct Awaiter {
      Scheduler& s;
      Time dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { s.schedule(s.now_ + dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Awaitable that reschedules the current coroutine behind all events
  /// already pending at the current time.
  auto yield() { return delay(0); }

  /// Drains the event queue. Throws the first exception that escaped a
  /// spawned process, or DaosimError if processes remain blocked (deadlock).
  void run();

  /// Runs until the virtual clock would pass `t`; returns true if events
  /// remain. Processes blocked on future events keep their state.
  bool run_until(Time t);

  std::size_t live_processes() const { return live_; }
  std::uint64_t events_processed() const { return events_; }

  /// Determinism-audit digest: an FNV-1a hash folding every dispatched event
  /// as the tuple (virtual time, sequence number, kind). Two runs of the same
  /// scenario must produce bit-identical digests; any divergence means hidden
  /// nondeterminism (wall-clock input, hash-order iteration, an unseeded RNG)
  /// leaked into event scheduling.
  std::uint64_t trace_hash() const { return trace_hash_; }

  /// Folds an externally-observed simulation fact into the trace digest —
  /// fault injections, recovery actions, pool-map transitions. Anything that
  /// changes the course of a run but is not itself a queue event must be
  /// noted here so fault runs stay bit-reproducible end to end.
  void trace_note(std::uint64_t v) { fold_trace(v); }

  /// Opt-in structured tracing: when a sink is attached, instrumented
  /// components emit spans to it. Null (the default) disables emission; the
  /// sink is observed-only, never owned, and never scheduled, so toggling it
  /// leaves `trace_hash()` and all timings bit-identical.
  void set_span_sink(SpanSink* sink) { span_sink_ = sink; }
  SpanSink* span_sink() const { return span_sink_; }

  /// Allocates a fresh nonzero span id for trace contexts. A bare counter
  /// increment: it never schedules and never feeds the trace digest, and it
  /// is bumped unconditionally at instrumentation sites (whether or not a
  /// sink is attached or the op was sampled), so span ids — and therefore
  /// trace JSON — are bit-identical across same-seed runs and unchanged by
  /// toggling the sink.
  std::uint64_t alloc_span_id() { return ++next_span_id_; }

 private:
  struct Detached {
    struct promise_type {
      Detached get_return_object() {
        return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept {
        // The frame self-destroys after this; drop it from the live registry.
        if (sched) sched->unregister_detached(slot);
        return {};
      }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }  // body catches
      Scheduler* sched = nullptr;
      std::size_t slot = 0;
    };
    std::coroutine_handle<promise_type> h;
  };
  Detached run_detached(CoTask<void> t);
  void unregister_detached(std::size_t slot) noexcept;

  template <typename F>
  static CoTask<void> invoke_holding(F f) {
    co_await f();
  }

  struct Item {
    Time at;
    std::uint64_t seq;
    std::coroutine_handle<> h;            // exactly one of h / cb is set
    std::shared_ptr<Timer::State> cb;
    bool operator>(const Item& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  /// What a dispatched event did, folded into the trace digest.
  enum class EventKind : std::uint8_t { resume = 0, callback = 1, cancelled = 2 };

  void dispatch(Item& it);
  void finish_run();
  void fold_trace(std::uint64_t v) {
    // FNV-1a over the value's 8 little-endian bytes.
    for (int i = 0; i < 8; ++i) {
      trace_hash_ ^= (v >> (8 * i)) & 0xFF;
      trace_hash_ *= 0x100000001B3ULL;
    }
  }

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::size_t live_ = 0;
  std::uint64_t trace_hash_ = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  std::uint64_t next_span_id_ = 0;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::coroutine_handle<Detached::promise_type>> detached_;
  SpanSink* span_sink_ = nullptr;
};

}  // namespace daosim::sim
