// The discrete-event scheduler: a priority queue of (time, sequence) ordered
// events driving coroutine resumptions and plain callbacks under a virtual
// clock. Single-threaded and fully deterministic.
#pragma once

#include <concepts>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/co_task.hpp"
#include "sim/time.hpp"

namespace daosim::sim {

class Scheduler;

/// Handle to a cancellable callback timer (see Scheduler::schedule_callback).
class Timer {
 public:
  Timer() = default;
  /// Cancels the timer; a cancelled timer's callback never fires.
  void cancel() {
    if (state_) state_->cancelled = true;
    state_.reset();
  }
  bool armed() const { return state_ && !state_->cancelled && !state_->fired; }

 private:
  friend class Scheduler;
  struct State {
    std::function<void()> fn;
    bool cancelled = false;
    bool fired = false;
  };
  explicit Timer(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Time now() const { return now_; }

  /// Resumes `h` at virtual time `at` (>= now). Events with equal time fire
  /// in scheduling order.
  void schedule(Time at, std::coroutine_handle<> h);

  /// Runs `fn` at virtual time `at` unless the returned Timer is cancelled.
  Timer schedule_callback(Time at, std::function<void()> fn);

  /// Launches `t` as a detached top-level process starting at the current
  /// time. Exceptions escaping the process abort run().
  void spawn(CoTask<void> t);

  /// Spawns a callable returning CoTask<void>. The callable is moved into a
  /// wrapper coroutine frame so lambda captures stay alive for the process's
  /// lifetime — always prefer this over spawning `lambda()` directly, which
  /// dangles the closure (CppCoreGuidelines CP.51).
  template <typename F>
    requires requires(F f) {
      { f() } -> std::same_as<CoTask<void>>;
    }
  void spawn(F f) {
    spawn(invoke_holding(std::move(f)));
  }

  /// Awaitable that suspends the current coroutine for `dt` virtual time.
  auto delay(Time dt) {
    struct Awaiter {
      Scheduler& s;
      Time dt;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { s.schedule(s.now_ + dt, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  /// Awaitable that reschedules the current coroutine behind all events
  /// already pending at the current time.
  auto yield() { return delay(0); }

  /// Drains the event queue. Throws the first exception that escaped a
  /// spawned process, or DaosimError if processes remain blocked (deadlock).
  void run();

  /// Runs until the virtual clock would pass `t`; returns true if events
  /// remain. Processes blocked on future events keep their state.
  bool run_until(Time t);

  std::size_t live_processes() const { return live_; }
  std::uint64_t events_processed() const { return events_; }

 private:
  struct Detached {
    struct promise_type {
      Detached get_return_object() {
        return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_never final_suspend() noexcept { return {}; }
      void return_void() noexcept {}
      void unhandled_exception() noexcept { std::terminate(); }  // body catches
    };
    std::coroutine_handle<> h;
  };
  Detached run_detached(CoTask<void> t);

  template <typename F>
  static CoTask<void> invoke_holding(F f) {
    co_await f();
  }

  struct Item {
    Time at;
    std::uint64_t seq;
    std::coroutine_handle<> h;            // exactly one of h / cb is set
    std::shared_ptr<Timer::State> cb;
    bool operator>(const Item& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void dispatch(Item& it);
  void finish_run();

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
  std::size_t live_ = 0;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace daosim::sim
