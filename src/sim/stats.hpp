// Small statistics helpers used by benchmarks and reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace daosim::sim {

/// Streaming summary (Welford) with min/max.
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / double(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  /// Extrema are only defined once a sample exists; asking an empty summary
  /// would silently yield the +/-infinity seeds (or a made-up 0.0), so it is
  /// rejected outright — mirroring Samples::percentile().
  double min() const {
    DAOSIM_REQUIRE(n_ > 0, "min of empty summary");
    return min_;
  }
  double max() const {
    DAOSIM_REQUIRE(n_ > 0, "max of empty summary");
    return max_;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample reservoir with exact percentiles (fine for the sample counts the
/// benches produce).
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return data_.size(); }

  double percentile(double p) {
    DAOSIM_REQUIRE(!data_.empty(), "percentile of empty sample set");
    DAOSIM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
    const double idx = p / 100.0 * double(data_.size() - 1);
    const auto lo = std::size_t(idx);
    const auto hi = std::min(lo + 1, data_.size() - 1);
    const double frac = idx - double(lo);
    return data_[lo] * (1.0 - frac) + data_[hi] * frac;
  }

  double median() { return percentile(50.0); }

  /// Summarizing an empty set is rejected like percentile(): the Summary it
  /// would return has no defined min()/max().
  Summary summarize() const {
    DAOSIM_REQUIRE(!data_.empty(), "summarize of empty sample set");
    Summary s;
    for (double x : data_) s.add(x);
    return s;
  }

 private:
  std::vector<double> data_;
  bool sorted_ = true;
};

}  // namespace daosim::sim
