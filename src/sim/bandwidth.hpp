// SharedBandwidth: a processor-sharing bandwidth resource.
//
// Concurrent transfers share the pipe fairly: with n active flows each is
// served at rate * efficiency(n) / n. This models NICs, switch ports and
// storage media channels. An optional concave efficiency curve captures the
// throughput loss real devices exhibit under heavy stream interleaving
// (notably Optane DCPMM, whose effective bandwidth degrades with many
// concurrent writers).
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace daosim::sim {

/// Total-rate multiplier as a function of the number of active flows.
/// eff(n) = 1 for n <= knee, then decays as (knee/n)^alpha towards `floor`.
struct EfficiencyCurve {
  std::uint32_t knee = ~0u;  // default: no degradation
  double alpha = 0.0;
  double floor = 1.0;

  double operator()(std::size_t n) const;
};

class SharedBandwidth {
 public:
  /// @param bytes_per_sec  aggregate capacity of the pipe
  SharedBandwidth(Scheduler& s, double bytes_per_sec, EfficiencyCurve eff = {});
  SharedBandwidth(const SharedBandwidth&) = delete;
  SharedBandwidth& operator=(const SharedBandwidth&) = delete;

  /// Awaitable: completes once `bytes` have been served under fair sharing.
  auto transfer(std::uint64_t bytes) { return TransferAwaiter{*this, double(bytes)}; }

  double rate_bytes_per_sec() const { return rate_ns_ * 1e9; }
  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t bytes_served() const { return std::uint64_t(bytes_served_); }
  /// Total virtual time during which at least one flow was active.
  Time busy_time() const;

 private:
  struct Flow {
    double remaining;
    std::coroutine_handle<> h;
  };

  struct TransferAwaiter {
    SharedBandwidth& bw;
    double bytes;
    bool await_ready() const noexcept { return bytes <= 0.0; }
    void await_suspend(std::coroutine_handle<> h) { bw.add_flow(bytes, h); }
    void await_resume() const noexcept {}
  };

  void add_flow(double bytes, std::coroutine_handle<> h);
  void advance();     // apply service accrued since last_update_
  void reschedule();  // (re)arm the next-completion timer
  void on_completion();

  Scheduler& sched_;
  double rate_ns_;  // bytes per nanosecond
  EfficiencyCurve eff_;
  std::vector<Flow> flows_;
  Time last_update_ = 0;
  Timer next_;
  double bytes_served_ = 0.0;
  Time busy_accum_ = 0;
  Time busy_since_ = 0;
};

}  // namespace daosim::sim
