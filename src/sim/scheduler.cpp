#include "sim/scheduler.hpp"

#include "common/error.hpp"

namespace daosim::sim {

void Scheduler::schedule(Time at, std::coroutine_handle<> h) {
  DAOSIM_REQUIRE(at >= now_, "scheduling into the past (at=%llu now=%llu)",
                 static_cast<unsigned long long>(at), static_cast<unsigned long long>(now_));
  queue_.push(Item{at, seq_++, h, nullptr});
}

Timer Scheduler::schedule_callback(Time at, std::function<void()> fn) {
  DAOSIM_REQUIRE(at >= now_, "scheduling into the past (at=%llu now=%llu)",
                 static_cast<unsigned long long>(at), static_cast<unsigned long long>(now_));
  auto state = std::make_shared<Timer::State>();
  state->fn = std::move(fn);
  queue_.push(Item{at, seq_++, nullptr, state});
  return Timer(state);
}

Scheduler::Detached Scheduler::run_detached(CoTask<void> t) {
  try {
    co_await std::move(t);
  } catch (...) {
    errors_.push_back(std::current_exception());
  }
  --live_;
}

void Scheduler::spawn(CoTask<void> t) {
  ++live_;
  Detached d = run_detached(std::move(t));
  d.h.promise().sched = this;
  d.h.promise().slot = detached_.size();
  detached_.push_back(d.h);
  schedule(now_, d.h);
}

void Scheduler::unregister_detached(std::size_t slot) noexcept {
  detached_[slot] = detached_.back();
  detached_[slot].promise().slot = slot;
  detached_.pop_back();
}

Scheduler::~Scheduler() {
  // Processes still suspended here would otherwise leak their frames. destroy()
  // runs the frame's local destructors (unwinding the owned CoTask chain) but
  // not final_suspend, so null the back-pointer and tear down back-to-front.
  while (!detached_.empty()) {
    auto h = detached_.back();
    detached_.pop_back();
    h.promise().sched = nullptr;
    h.destroy();
  }
}

void Scheduler::dispatch(Item& it) {
  now_ = it.at;
  ++events_;
  EventKind kind;
  if (it.h) {
    kind = EventKind::resume;
  } else {
    kind = it.cb->cancelled ? EventKind::cancelled : EventKind::callback;
  }
  fold_trace(it.at);
  fold_trace(it.seq);
  fold_trace(std::uint64_t(kind));
  if (it.h) {
    it.h.resume();
  } else if (!it.cb->cancelled) {
    it.cb->fired = true;
    it.cb->fn();
  }
}

void Scheduler::finish_run() {
  if (!errors_.empty()) {
    auto e = errors_.front();
    errors_.clear();
    std::rethrow_exception(e);
  }
}

void Scheduler::run() {
  while (!queue_.empty()) {
    Item it = queue_.top();
    queue_.pop();
    dispatch(it);
    if (!errors_.empty()) finish_run();
  }
  finish_run();
  if (live_ > 0) {
    raise(strfmt("deadlock: %zu process(es) blocked with no pending events", live_));
  }
}

bool Scheduler::run_until(Time t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    Item it = queue_.top();
    queue_.pop();
    dispatch(it);
    if (!errors_.empty()) finish_run();
  }
  finish_run();
  if (now_ < t) now_ = t;
  return !queue_.empty();
}

}  // namespace daosim::sim
