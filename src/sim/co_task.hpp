// CoTask<T>: the lazily-started coroutine task used throughout the simulator.
//
// A CoTask owns its coroutine frame. Awaiting it (only valid on an rvalue,
// and at most once) starts the coroutine; when the coroutine finishes, control
// transfers symmetrically back to the awaiter. Exceptions propagate to the
// awaiter at the co_await expression.
//
// TOOLCHAIN NOTE (GCC 12 workaround): do not build non-trivially-destructible
// prvalues (lambda closures, request structs, nested CoTask chains) inside a
// co_await operand expression — GCC 12 destroys such temporaries twice
// (fixed in GCC 13). Hoist them into named locals and pass with std::move:
//   auto op = [...](){...};            // NOT: co_await eq.launch([...]{...})
//   co_await eq.launch(std::move(op));
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace daosim::sim {

template <typename T>
class [[nodiscard]] CoTask;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation{};
  std::exception_ptr exception{};

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] CoTask {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value{};
    CoTask get_return_object() {
      return CoTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
    T take() {
      if (exception) std::rethrow_exception(exception);
      return std::move(*value);
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  CoTask() noexcept = default;
  explicit CoTask(Handle h) noexcept : h_(h) {}
  CoTask(CoTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  CoTask& operator=(CoTask&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // start the child coroutine
      }
      T await_resume() { return h.promise().take(); }
    };
    DAOSIM_REQUIRE(h_, "co_await on an empty CoTask");
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_{};
};

template <>
class [[nodiscard]] CoTask<void> {
 public:
  struct promise_type : detail::PromiseBase {
    CoTask get_return_object() {
      return CoTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
    void take() {
      if (exception) std::rethrow_exception(exception);
    }
  };
  using Handle = std::coroutine_handle<promise_type>;

  CoTask() noexcept = default;
  explicit CoTask(Handle h) noexcept : h_(h) {}
  CoTask(CoTask&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  CoTask& operator=(CoTask&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  CoTask(const CoTask&) = delete;
  CoTask& operator=(const CoTask&) = delete;
  ~CoTask() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() { h.promise().take(); }
    };
    DAOSIM_REQUIRE(h_, "co_await on an empty CoTask");
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_{};
};

}  // namespace daosim::sim
