// IOR reimplementation (the paper's benchmark, §III).
//
// Supports the paper's modes and backends:
//   * easy  = file-per-process, hard = single shared file;
//   * backends: POSIX (DFuse mount), DFS (libdfs — the "DAOS" lines in the
//     figures), MPIIO (over DFuse), HDF5 (H5Lite over DFuse), and the native
//     DAOS array API (the paper's §V future-work backend);
//   * per-rank block split into transfer-size operations, write phase then
//     read phase (optionally rank-shifted, IOR -C), bandwidth computed from
//     barrier-to-barrier virtual time, optional data verification.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/units.hpp"
#include "cluster/testbed.hpp"
#include "dfs/dfs.hpp"
#include "h5/h5lite.hpp"
#include "mpi/mpi.hpp"
#include "mpiio/mpiio.hpp"
#include "posix/dfuse.hpp"

namespace daosim::ior {

enum class Api { posix, dfs, mpiio, hdf5, daos_array };

const char* to_string(Api api);

struct IorConfig {
  Api api = Api::dfs;
  std::uint64_t transfer_size = 8 * kMiB;
  std::uint64_t block_size = 64 * kMiB;  // per rank per segment
  std::uint32_t segments = 1;
  bool file_per_process = true;  // easy; false = hard (shared file)
  bool collective = false;       // MPIIO collective buffering (-c)
  bool reorder_tasks = true;     // IOR -C: read a neighbour's data
  bool verify = false;           // compare read data (payload mode store only)
  std::uint8_t oclass = std::uint8_t(client::ObjClass::SX);
  std::string test_dir = "/ior";
  bool do_write = true;
  bool do_read = true;
  /// Transfers each rank keeps in flight through its client EventQueue
  /// (daos_event model). 1 = fully serial, matching classic blocking IOR.
  std::uint32_t eq_depth = 1;
  /// daos_array API only: after the write barrier, rank 0 snapshots the
  /// container and the read phase runs at that epoch — verification is
  /// isolated from anything written concurrently (see docs/dtx.md).
  bool read_at_snapshot = false;
};

struct PhaseResult {
  double seconds = 0;
  std::uint64_t bytes = 0;
  double gib_per_sec() const { return seconds > 0 ? double(bytes) / double(kGiB) / seconds : 0; }
};

struct IorResult {
  PhaseResult write;
  PhaseResult read;
  std::uint64_t verify_errors = 0;
  std::uint64_t read_fill_errors = 0;  // short reads
  /// Reads that hit a redundancy group with every replica gone
  /// (Errno::data_loss). Counted, not fatal: IOR keeps going, like a real
  /// job riding out a degraded pool.
  std::uint64_t data_loss_events = 0;
  /// Client-observed object-RPC latency during each phase: the delta of the
  /// summed per-client "rpc/update/latency_ns" (write) / "rpc/fetch/latency_ns"
  /// (read) histograms between the phase barriers. Delta states report exact
  /// count/sum and bucket-resolution percentiles; min/max are unavailable (0).
  telemetry::DurationHistogram::State write_rpc_latency;
  telemetry::DurationHistogram::State read_rpc_latency;
};

/// Drives IOR jobs on a testbed. One runner per testbed; per-client-node DFS
/// and DFuse mounts are created lazily and reused across runs.
class IorRunner {
 public:
  /// @param chunk_size  DFS container chunk size (DAOS default 1 MiB)
  /// @param dfuse       DFuse mount tuning (ablation A2)
  IorRunner(cluster::Testbed& tb, std::uint32_t ppn, std::uint64_t chunk_size = 1 * kMiB,
            posix::DfuseConfig dfuse = {});

  /// Runs one IOR job (write+read) and returns aggregate bandwidths.
  IorResult run(const IorConfig& cfg);

  std::uint32_t ppn() const { return ppn_; }
  std::uint32_t ranks() const { return ppn_ * tb_.client_node_count(); }

  /// Identity of the most recent job's files, for out-of-band readback
  /// (e.g. verifying rebuilt replicas after the job finished). daos_array
  /// file-per-process rank r uses OID sequence oid_base + r and pattern seed
  /// file_seed ^ mix64(r); shared files use oid_base and file_seed directly.
  struct JobInfo {
    std::string dir;
    std::uint64_t file_seed = 0;
    std::uint64_t oid_base = 0;  // daos_array backend only
  };
  const JobInfo& last_job() const { return last_job_; }

 private:
  struct NodeCtx {
    std::unique_ptr<dfs::DfsMount> dfs;
    std::unique_ptr<posix::DfuseMount> dfuse;
  };
  struct JobState;  // per-run shared state (see ior.cpp)

  sim::CoTask<void> setup();
  sim::CoTask<void> job_main(const IorConfig* cfg, IorResult* result);
  sim::CoTask<void> rank_body(mpi::Comm comm, const IorConfig* cfg,
                              std::shared_ptr<JobState> st);

  cluster::Testbed& tb_;
  std::uint32_t ppn_;
  std::uint64_t chunk_size_;
  posix::DfuseConfig dfuse_cfg_;
  bool setup_done_ = false;
  std::vector<NodeCtx> nodes_;
  std::unique_ptr<mpi::MpiWorld> world_;
  std::uint64_t job_seq_ = 0;
  JobInfo last_job_;
};

/// Deterministic data pattern IOR stamps into write buffers: 8-byte words
/// derived from the absolute file offset and a file seed.
void fill_pattern(std::span<std::byte> buf, std::uint64_t file_offset, std::uint64_t seed);
/// Returns the number of mismatching bytes.
std::uint64_t check_pattern(std::span<const std::byte> buf, std::uint64_t file_offset,
                            std::uint64_t seed);

}  // namespace daosim::ior
