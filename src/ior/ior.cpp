#include "ior/ior.hpp"

#include <cstring>

namespace daosim::ior {

using client::ArrayObject;
using client::mix64;
using cluster::kPoolUuid;

const char* to_string(Api api) {
  switch (api) {
    case Api::posix: return "POSIX";
    case Api::dfs: return "DFS";
    case Api::mpiio: return "MPIIO";
    case Api::hdf5: return "HDF5";
    case Api::daos_array: return "DAOS";
  }
  return "?";
}

void fill_pattern(std::span<std::byte> buf, std::uint64_t file_offset, std::uint64_t seed) {
  for (std::size_t i = 0; i < buf.size(); i += 8) {
    const std::uint64_t word = mix64((file_offset + i) ^ seed);
    const std::size_t n = std::min<std::size_t>(8, buf.size() - i);
    std::memcpy(buf.data() + i, &word, n);
  }
}

std::uint64_t check_pattern(std::span<const std::byte> buf, std::uint64_t file_offset,
                            std::uint64_t seed) {
  std::uint64_t bad = 0;
  for (std::size_t i = 0; i < buf.size(); i += 8) {
    const std::uint64_t word = mix64((file_offset + i) ^ seed);
    const std::size_t n = std::min<std::size_t>(8, buf.size() - i);
    if (std::memcmp(buf.data() + i, &word, n) != 0) bad += n;
  }
  return bad;
}

/// Per-job shared state, visible to every rank coroutine.
struct IorRunner::JobState {
  std::string dir;
  std::uint64_t file_seed = 0;
  double write_start = 0, write_end = 0;
  double read_start = 0, read_end = 0;
  /// Client RPC-latency histogram snapshots at the phase barriers (rank 0),
  /// so the result can report per-phase deltas. Pure reads of passive
  /// counters: taking them cannot perturb timing or trace_hash().
  telemetry::DurationHistogram::State update_at_write_start, update_at_write_end;
  telemetry::DurationHistogram::State fetch_at_read_start, fetch_at_read_end;
  std::uint64_t verify_errors = 0;
  std::uint64_t fill_errors = 0;
  std::uint64_t data_loss_errors = 0;
  std::unique_ptr<mpiio::CollectiveFile> cfile;
  std::map<std::string, std::shared_ptr<h5::H5Meta>> h5meta;
  std::uint64_t oid_base = 0;  // daos_array backend
  /// Snapshot epoch the read phase is pinned to (read_at_snapshot); 0 = none.
  vos::Epoch snapshot_epoch = 0;
};

IorRunner::IorRunner(cluster::Testbed& tb, std::uint32_t ppn, std::uint64_t chunk_size,
                     posix::DfuseConfig dfuse)
    : tb_(tb), ppn_(ppn), chunk_size_(chunk_size), dfuse_cfg_(dfuse) {
  DAOSIM_REQUIRE(ppn_ > 0, "ppn must be positive");
  DAOSIM_REQUIRE(chunk_size_ > 0, "chunk size must be positive");
}

sim::CoTask<void> IorRunner::setup() {
  auto& c0 = tb_.client(0);
  pool::ContProps props;
  props.chunk_size = chunk_size_;
  (void)co_await c0.cont_create(kPoolUuid, props);  // daosim-lint: allow(ignored-result): EEXIST on reruns of setup() is expected
  nodes_.resize(tb_.client_node_count());
  std::vector<net::NodeId> rank_nodes;
  for (std::uint32_t i = 0; i < tb_.client_node_count(); ++i) {
    auto mount = co_await dfs::DfsMount::mount(tb_.client(i), kPoolUuid);
    DAOSIM_REQUIRE(mount.ok(), "DFS mount failed on client node %u: %s", i,
                   errno_name(mount.error()));
    nodes_[i].dfs = std::move(*mount);
    nodes_[i].dfuse =
        std::make_unique<posix::DfuseMount>(tb_.sched(), *nodes_[i].dfs, dfuse_cfg_);
    for (std::uint32_t r = 0; r < ppn_; ++r) {
      rank_nodes.push_back(tb_.client(i).endpoint().node());
    }
  }
  world_ = std::make_unique<mpi::MpiWorld>(tb_.sched(), tb_.fabric(), std::move(rank_nodes));
  setup_done_ = true;
}

IorResult IorRunner::run(const IorConfig& cfg) {
  IorResult result;
  tb_.run(job_main(&cfg, &result));
  ++job_seq_;
  return result;
}

sim::CoTask<void> IorRunner::job_main(const IorConfig* cfg, IorResult* result) {
  if (!setup_done_) co_await setup();
  auto st = std::make_shared<JobState>();
  st->file_seed = mix64(0xF17E5EED ^ (job_seq_ + 1));
  st->dir = strfmt("%s/job%llu", cfg->test_dir.c_str(), static_cast<unsigned long long>(job_seq_));
  {
    const Errno mk1 = co_await nodes_[0].dfs->mkdir(cfg->test_dir);
    DAOSIM_REQUIRE(mk1 == Errno::ok || mk1 == Errno::exists, "mkdir %s: %s",
                   cfg->test_dir.c_str(), errno_name(mk1));
    const Errno mk2 = co_await nodes_[0].dfs->mkdir(st->dir);
    DAOSIM_REQUIRE(mk2 == Errno::ok, "mkdir %s: %s", st->dir.c_str(), errno_name(mk2));
  }
  const int p = int(ranks());
  if (cfg->api == Api::mpiio && !cfg->file_per_process) {
    st->cfile = std::make_unique<mpiio::CollectiveFile>(*world_);
  }
  if (cfg->api == Api::hdf5) {
    if (cfg->file_per_process) {
      for (int r = 0; r < p; ++r) {
        const std::string path = strfmt("%s/testFile.%08d", st->dir.c_str(), r);
        st->h5meta[path] = std::make_shared<h5::H5Meta>();
      }
    } else {
      const std::string path = st->dir + "/testFile";
      st->h5meta[path] = std::make_shared<h5::H5Meta>();
    }
  }
  if (cfg->api == Api::daos_array) {
    // The native array backend bypasses the namespace: lease an OID range.
    auto base = co_await tb_.client(0).alloc_oids(kPoolUuid, std::uint64_t(p) + 1);
    DAOSIM_REQUIRE(base.ok(), "oid allocation failed");
    st->oid_base = *base;
  }

  // Hoisted into a named local (GCC 12 co_await temporary workaround).
  std::function<sim::CoTask<void>(mpi::Comm)> body = [this, cfg, st](mpi::Comm comm) {
    return rank_body(comm, cfg, st);
  };
  co_await world_->run_spmd(std::move(body));

  const std::uint64_t total =
      std::uint64_t(p) * cfg->block_size * cfg->segments;
  if (cfg->do_write) {
    result->write.seconds = st->write_end - st->write_start;
    result->write.bytes = total;
    result->write_rpc_latency = st->update_at_write_end - st->update_at_write_start;
  }
  if (cfg->do_read) {
    result->read.seconds = st->read_end - st->read_start;
    result->read.bytes = total;
    result->read_rpc_latency = st->fetch_at_read_end - st->fetch_at_read_start;
  }
  result->verify_errors = st->verify_errors;
  result->read_fill_errors = st->fill_errors;
  result->data_loss_events = st->data_loss_errors;
  last_job_ = JobInfo{st->dir, st->file_seed, st->oid_base};
}

namespace {

/// Uniform handle over the five backends for one rank's file.
struct RankFile {
  // exactly one of these is active
  posix::Vfs* vfs = nullptr;
  posix::Fd fd = -1;
  std::unique_ptr<dfs::File> dfs_file;
  std::unique_ptr<ArrayObject> array;
  mpiio::CollectiveFile* cfile = nullptr;
  bool collective = false;
  std::unique_ptr<h5::H5File> h5file;
  std::optional<h5::H5Dataset> h5dset;
  mpi::Comm comm;
  /// Visibility bound for array reads (read-at-snapshot); other backends
  /// always read present state.
  vos::Epoch read_epoch = vos::kEpochMax;

  sim::CoTask<Errno> write(std::uint64_t off, std::uint64_t len,
                           std::span<const std::byte> data) {
    if (vfs != nullptr) {
      auto rc = co_await vfs->pwrite(fd, off, len, data);
      co_return rc.ok() ? Errno::ok : rc.error();
    }
    if (dfs_file != nullptr) co_return co_await dfs_file->write(off, len, data);
    if (array != nullptr) co_return co_await array->write(off, len, data);
    if (cfile != nullptr) {
      auto rc = collective ? co_await cfile->write_at_all(comm, off, len, data)
                           : co_await cfile->write_at(comm, off, len, data);
      co_return rc.ok() ? Errno::ok : rc.error();
    }
    if (h5dset.has_value()) co_return co_await h5dset->write(off, len, data);
    co_return Errno::bad_fd;
  }

  /// Returns filled bytes.
  sim::CoTask<Result<std::uint64_t>> read(std::uint64_t off, std::span<std::byte> out) {
    if (vfs != nullptr) co_return co_await vfs->pread(fd, off, out);
    if (dfs_file != nullptr) co_return co_await dfs_file->read(off, out);
    if (array != nullptr) co_return co_await array->read(off, out, read_epoch);
    if (cfile != nullptr) {
      if (collective) co_return co_await cfile->read_at_all(comm, off, out);
      co_return co_await cfile->read_at(comm, off, out);
    }
    if (h5dset.has_value()) co_return co_await h5dset->read(off, out);
    co_return Errno::bad_fd;
  }

  sim::CoTask<Errno> close() {
    if (vfs != nullptr) {
      const Errno rc = co_await vfs->close(fd);
      vfs = nullptr;
      co_return rc;
    }
    if (dfs_file != nullptr) {
      dfs_file.reset();
      co_return Errno::ok;
    }
    if (array != nullptr) {
      array.reset();
      co_return Errno::ok;
    }
    if (cfile != nullptr) {
      const Errno rc = co_await cfile->close(comm);
      cfile = nullptr;
      co_return rc;
    }
    if (h5file != nullptr) {
      h5dset.reset();
      const Errno rc = co_await h5file->close();
      h5file.reset();
      co_return rc;
    }
    co_return Errno::ok;
  }
};

}  // namespace

sim::CoTask<void> IorRunner::rank_body(mpi::Comm comm, const IorConfig* cfg,
                                       std::shared_ptr<JobState> st) {
  const int me = comm.rank();
  const int p = comm.size();
  NodeCtx& node = nodes_[std::size_t(me) / ppn_];
  const bool store = tb_.config().payload == vos::PayloadMode::store;
  const std::uint64_t rank_bytes = cfg->block_size * cfg->segments;
  const std::uint64_t dset_bytes = cfg->file_per_process
                                       ? rank_bytes
                                       : std::uint64_t(p) * cfg->block_size * cfg->segments;
  const std::uint32_t transfers = std::uint32_t(cfg->block_size / cfg->transfer_size);
  DAOSIM_REQUIRE(transfers * cfg->transfer_size == cfg->block_size,
                 "block size must be a multiple of transfer size");
  DAOSIM_REQUIRE(cfg->eq_depth >= 1, "eq_depth must be >= 1");
  // Collective MPI-IO interleaves barriers across ranks; overlapping two
  // collective calls from one rank would mismatch them.
  DAOSIM_REQUIRE(cfg->eq_depth == 1 || !cfg->collective,
                 "eq_depth > 1 is incompatible with collective I/O");

  auto path_of = [&](int file_rank) {
    return cfg->file_per_process
               ? strfmt("%s/testFile.%08d", st->dir.c_str(), file_rank)
               : st->dir + "/testFile";
  };
  auto file_offset = [&](int block_rank, std::uint32_t seg, std::uint32_t t) -> std::uint64_t {
    if (cfg->file_per_process) {
      return std::uint64_t(seg) * cfg->block_size + std::uint64_t(t) * cfg->transfer_size;
    }
    return (std::uint64_t(seg) * std::uint64_t(p) + std::uint64_t(block_rank)) *
               cfg->block_size +
           std::uint64_t(t) * cfg->transfer_size;
  };
  auto seed_of = [&](int file_rank) {
    return cfg->file_per_process ? st->file_seed ^ mix64(std::uint64_t(file_rank))
                                 : st->file_seed;
  };

  // Opens this rank's view of the file for the given phase.
  auto open_file = [&](int file_rank, bool writing) -> sim::CoTask<Result<RankFile>> {
    RankFile rf;
    rf.comm = comm;
    const std::string path = path_of(file_rank);
    switch (cfg->api) {
      case Api::posix: {
        posix::VfsOpenFlags flags;
        flags.create = writing;
        flags.read_only = !writing;
        flags.oclass = cfg->oclass;
        auto fd = co_await node.dfuse->open(path, flags);
        if (!fd.ok()) co_return fd.error();
        rf.vfs = node.dfuse.get();
        rf.fd = *fd;
        break;
      }
      case Api::dfs: {
        dfs::OpenFlags flags;
        flags.create = writing;
        flags.oclass = cfg->oclass;
        auto f = co_await node.dfs->open(path, flags);
        if (!f.ok()) co_return f.error();
        rf.dfs_file = std::make_unique<dfs::File>(std::move(*f));
        break;
      }
      case Api::daos_array: {
        const std::uint64_t seq =
            st->oid_base + (cfg->file_per_process ? std::uint64_t(file_rank) : 0);
        const auto oid = client::make_oid(seq, client::ObjClass(cfg->oclass));
        rf.array = std::make_unique<ArrayObject>(tb_.client(std::uint32_t(me) / ppn_),
                                                 kPoolUuid, oid, 1 * kMiB);
        if (!writing && st->snapshot_epoch != 0) rf.read_epoch = st->snapshot_epoch;
        break;
      }
      case Api::mpiio: {
        if (cfg->file_per_process) {  // ROMIO ufs driver on the mount, COMM_SELF
          posix::VfsOpenFlags flags;
          flags.create = writing;
          flags.read_only = !writing;
          flags.oclass = cfg->oclass;
          auto fd = co_await node.dfuse->open(path, flags);
          if (!fd.ok()) co_return fd.error();
          rf.vfs = node.dfuse.get();
          rf.fd = *fd;
        } else {
          posix::VfsOpenFlags flags;
          flags.create = writing;
          flags.oclass = cfg->oclass;
          const Errno rc = co_await st->cfile->open(comm, *node.dfuse, path, flags);
          if (rc != Errno::ok) co_return rc;
          rf.cfile = st->cfile.get();
          rf.collective = cfg->collective;
        }
        break;
      }
      case Api::hdf5: {
        h5::H5Config hcfg;
        hcfg.direct_large_io = !cfg->file_per_process;  // mpio-like shared driver
        auto shadow = st->h5meta.at(path);
        if (cfg->file_per_process) {
          if (writing) {
            auto f = co_await h5::H5File::create(*node.dfuse, path, shadow, hcfg);
            if (!f.ok()) co_return f.error();
            rf.h5file = std::move(*f);
            auto d = co_await rf.h5file->create_dataset("data", dset_bytes);
            if (!d.ok()) co_return d.error();
            rf.h5dset = *d;
          } else {
            auto f = co_await h5::H5File::open(*node.dfuse, path, shadow, hcfg);
            if (!f.ok()) co_return f.error();
            rf.h5file = std::move(*f);
            auto d = co_await rf.h5file->open_dataset("data");
            if (!d.ok()) co_return d.error();
            rf.h5dset = *d;
          }
        } else {
          // Shared file: rank 0 creates file + dataset, everyone else opens.
          if (writing && me == 0) {
            auto f = co_await h5::H5File::create(*node.dfuse, path, shadow, hcfg);
            if (!f.ok()) co_return f.error();
            rf.h5file = std::move(*f);
            auto d = co_await rf.h5file->create_dataset("data", dset_bytes);
            if (!d.ok()) co_return d.error();
            rf.h5dset = *d;
          }
          co_await comm.barrier();
          if (rf.h5file == nullptr) {
            auto f = co_await h5::H5File::open(*node.dfuse, path, shadow, hcfg);
            if (!f.ok()) co_return f.error();
            rf.h5file = std::move(*f);
            auto d = co_await rf.h5file->open_dataset("data");
            if (!d.ok()) co_return d.error();
            rf.h5dset = *d;
          }
        }
        break;
      }
    }
    co_return std::move(rf);
  };

  // ------------------------------------------------------------------ write
  if (cfg->do_write) {
    co_await comm.barrier();
    if (me == 0) {
      st->write_start = comm.wtime();
      st->update_at_write_start = tb_.client_rpc_latency("update");
    }

    auto rf = co_await open_file(me, /*writing=*/true);
    DAOSIM_REQUIRE(rf.ok(), "rank %d: write open failed: %s", me, errno_name(rf.error()));
    const std::uint64_t seed = seed_of(me);
    // Async window (daos_event model): up to eq_depth transfers in flight per
    // rank; depth 1 degenerates to the classic blocking IOR loop. The rank
    // frame outlives wait_all(), so by-reference captures are safe.
    client::EventQueue eq(tb_.sched(), cfg->eq_depth);
    for (std::uint32_t seg = 0; seg < cfg->segments; ++seg) {
      for (std::uint32_t t = 0; t < transfers; ++t) {
        const std::uint64_t off = file_offset(me, seg, t);
        auto op = [&, off]() -> sim::CoTask<void> {
          std::vector<std::byte> wbuf;  // per-op buffer: bounded by eq_depth
          std::span<const std::byte> data;
          if (store) {
            wbuf.resize(std::size_t(cfg->transfer_size));
            fill_pattern(wbuf, off, seed);
            data = wbuf;
          }
          const Errno wrc = co_await rf->write(off, cfg->transfer_size, data);
          DAOSIM_REQUIRE(wrc == Errno::ok, "rank %d: write failed: %s", me, errno_name(wrc));
        };
        co_await eq.launch(std::move(op));
      }
    }
    co_await eq.wait_all();
    const Errno rc = co_await rf->close();
    DAOSIM_REQUIRE(rc == Errno::ok, "rank %d: close failed: %s", me, errno_name(rc));
    co_await comm.barrier();
    if (me == 0) {
      st->write_end = comm.wtime();
      st->update_at_write_end = tb_.client_rpc_latency("update");
    }
  }

  // ------------------------------------------------------------------- read
  if (cfg->do_read) {
    const int target = cfg->reorder_tasks ? (me + 1) % p : me;
    if (cfg->read_at_snapshot && cfg->api == Api::daos_array) {
      // Rank 0 pins the epoch cut every rank reads at; the barrier publishes
      // it before any read opens.
      if (me == 0) {
        auto snap = co_await tb_.client(0).snapshot_create(cluster::kPoolUuid);
        DAOSIM_REQUIRE(snap.ok(), "read_at_snapshot: snapshot_create failed: %s",
                       errno_name(snap.error()));
        st->snapshot_epoch = *snap;
      }
      co_await comm.barrier();
    }
    co_await comm.barrier();
    if (me == 0) {
      st->read_start = comm.wtime();
      st->fetch_at_read_start = tb_.client_rpc_latency("fetch");
    }

    auto rf = co_await open_file(target, /*writing=*/false);
    DAOSIM_REQUIRE(rf.ok(), "rank %d: read open failed: %s", me, errno_name(rf.error()));
    const std::uint64_t seed = seed_of(target);
    client::EventQueue eq(tb_.sched(), cfg->eq_depth);
    for (std::uint32_t seg = 0; seg < cfg->segments; ++seg) {
      for (std::uint32_t t = 0; t < transfers; ++t) {
        const std::uint64_t off = file_offset(target, seg, t);
        auto op = [&, off]() -> sim::CoTask<void> {
          // Per-op sink (bounded by eq_depth); in discard mode the payload
          // bytes never materialize, only the size matters.
          std::vector<std::byte> rbuf(std::size_t(cfg->transfer_size));
          std::uint64_t filled = cfg->transfer_size;
          auto n = co_await rf->read(off, rbuf);
          if (!n.ok() && n.error() == Errno::data_loss) {
            // Every replica of the group is gone: count the event, read on.
            ++st->data_loss_errors;
            filled = 0;
          } else {
            DAOSIM_REQUIRE(n.ok(), "rank %d: read failed: %s", me, errno_name(n.error()));
            filled = *n;
            if (store && cfg->verify) st->verify_errors += check_pattern(rbuf, off, seed);
          }
          if (filled != cfg->transfer_size) ++st->fill_errors;
        };
        co_await eq.launch(std::move(op));
      }
    }
    co_await eq.wait_all();
    const Errno rc = co_await rf->close();
    DAOSIM_REQUIRE(rc == Errno::ok, "rank %d: read close failed: %s", me, errno_name(rc));
    co_await comm.barrier();
    if (me == 0) {
      st->read_end = comm.wtime();
      st->fetch_at_read_end = tb_.client_rpc_latency("fetch");
    }
  }
}

}  // namespace daosim::ior
