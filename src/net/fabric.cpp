#include "net/fabric.hpp"

#include <algorithm>
#include <cinttypes>

#include "common/error.hpp"

namespace daosim::net {

namespace {
sim::CoTask<void> stage(sim::SharedBandwidth& bw, std::uint64_t bytes) {
  co_await bw.transfer(bytes);
}
}  // namespace

Fabric::Fabric(sim::Scheduler& sched, FabricConfig cfg) : sched_(sched), cfg_(cfg) {
  DAOSIM_REQUIRE(cfg_.rail_bytes_per_sec > 0 && cfg_.rails_per_node > 0, "bad fabric config");
}

NodeId Fabric::add_node(std::uint32_t rails) {
  if (rails == 0) rails = cfg_.rails_per_node;
  const double nic_rate = cfg_.rail_bytes_per_sec * rails;
  Node n;
  n.egress = std::make_unique<sim::SharedBandwidth>(sched_, nic_rate);
  n.ingress = std::make_unique<sim::SharedBandwidth>(sched_, nic_rate);
  nodes_.push_back(std::move(n));
  switch_.reset();  // re-size the core switch for the new node count
  return NodeId(nodes_.size() - 1);
}

void Fabric::ensure_switch() {
  if (switch_) return;
  double rate = cfg_.switch_bytes_per_sec;
  if (rate <= 0.0) {
    // Non-blocking: capacity equal to the sum of all NIC rates.
    rate = cfg_.rail_bytes_per_sec * cfg_.rails_per_node * double(std::max<std::size_t>(nodes_.size(), 1));
  }
  switch_ = std::make_unique<sim::SharedBandwidth>(sched_, rate);
}

void Fabric::set_telemetry(telemetry::Registry* reg) {
  telemetry_ = reg;
  for (Node& n : nodes_) {
    n.tx = nullptr;
    n.rx = nullptr;
  }
  messages_metric_ = reg ? &reg->find_or_create<telemetry::Counter>("messages") : nullptr;
  queue_delay_ =
      reg ? &reg->find_or_create<telemetry::DurationHistogram>("queue_delay_ns") : nullptr;
}

void Fabric::bind_node_counters(NodeId n) {
  if (nodes_[n].tx != nullptr) return;
  nodes_[n].tx = &telemetry_->find_or_create<telemetry::Counter>(strfmt("node/%u/tx_bytes", n));
  nodes_[n].rx = &telemetry_->find_or_create<telemetry::Counter>(strfmt("node/%u/rx_bytes", n));
}

sim::CoTask<void> Fabric::transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                                   sim::TraceContext ctx) {
  DAOSIM_REQUIRE(src < nodes_.size() && dst < nodes_.size(), "unknown fabric node");
  ++messages_;
  const std::uint64_t wire = bytes + cfg_.message_header_bytes;
  nodes_[src].bytes_sent += wire;
  if (messages_metric_) {
    messages_metric_->inc();
    bind_node_counters(src);
    bind_node_counters(dst);
    nodes_[src].tx->inc(wire);
    nodes_[dst].rx->inc(wire);
  }
  if (src == dst) {  // loopback: shared-memory copy, no NIC involvement
    co_await sched_.delay(cfg_.latency / 2);
    co_return;
  }
  ensure_switch();
  sim::Time latency = cfg_.latency;
  if (delay_hook_) latency += delay_hook_(src, dst);
  // Span id allocated unconditionally (sink or not, sampled or not) so ids
  // stay bit-identical when tracing toggles.
  const sim::TraceContext xfer_ctx = ctx.child(sched_.alloc_span_id());
  const sim::Time t0 = sched_.now();
  co_await sched_.delay(latency);
  // Cut-through: the transfer completes when the last byte has cleared the
  // slowest of the three shared stages; we serve them concurrently.
  const sim::Time stages_begin = sched_.now();
  std::vector<sim::CoTask<void>> stages;
  stages.push_back(stage(*nodes_[src].egress, wire));
  stages.push_back(stage(*switch_, wire));
  stages.push_back(stage(*nodes_[dst].ingress, wire));
  co_await sim::when_all(sched_, std::move(stages));
  if (queue_delay_) {
    // Queueing delay: measured stage time beyond the contention-free
    // serialization time through the slowest of the three pipes.
    const double min_rate =
        std::min({nodes_[src].egress->rate_bytes_per_sec(), switch_->rate_bytes_per_sec(),
                  nodes_[dst].ingress->rate_bytes_per_sec()});
    const auto ideal = sim::Time(double(wire) / min_rate * 1e9);
    const sim::Time elapsed = sched_.now() - stages_begin;
    queue_delay_->record(elapsed > ideal ? elapsed - ideal : 0);
  }
  if (sim::SpanSink* sink = sched_.span_sink()) {
    sink->span("xfer", strfmt("%u->%u %" PRIu64 "B", src, dst, wire), src, dst, t0,
               sched_.now(), xfer_ctx);
  }
}

std::uint64_t Fabric::bytes_sent(NodeId n) const {
  DAOSIM_REQUIRE(n < nodes_.size(), "unknown fabric node");
  return nodes_[n].bytes_sent;
}

}  // namespace daosim::net
