// Minimal typed RPC layer over the simulated fabric (the Mercury/CART
// equivalent in DAOS). A call moves the request body across the fabric,
// runs the registered coroutine handler on the destination node (handlers
// charge their own CPU/media time), then moves the reply back.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "net/fabric.hpp"
#include "sim/co_task.hpp"
#include "telemetry/telemetry.hpp"

namespace daosim::net {

/// Type-erased message body. Bodies are shared_ptr-held so zero-copy
/// "serialization" is safe while the wire size still drives timing.
class Body {
 public:
  Body() = default;
  template <typename T>
  static Body make(T value) {
    Body b;
    b.ptr_ = std::make_shared<T>(std::move(value));
    return b;
  }
  template <typename T>
  const T& get() const {
    DAOSIM_REQUIRE(ptr_, "empty RPC body");
    return *std::static_pointer_cast<const T>(ptr_);
  }
  template <typename T>
  T& get() {
    DAOSIM_REQUIRE(ptr_, "empty RPC body");
    return *std::static_pointer_cast<T>(ptr_);
  }
  bool has_value() const { return ptr_ != nullptr; }

 private:
  std::shared_ptr<void> ptr_;
};

struct Reply {
  Errno status = Errno::ok;
  std::uint64_t wire_bytes = 0;  // reply payload size for timing
  Body body;
  /// IV piggyback: the callee's cached pool-map version, stamped on every
  /// served reply when the callee installed a map-version source (engines
  /// do). 0 = no source; callers treat it as "no information". This is how
  /// clients learn about map changes passively instead of polling.
  std::uint32_t map_version = 0;
  /// Causal trace context of the server-side span that produced this reply,
  /// stamped centrally in RpcEndpoint::call (like map_version). Inactive
  /// when the call was not part of a sampled trace.
  sim::TraceContext ctx;
};

struct Request {
  NodeId source = 0;
  std::uint64_t wire_bytes = 0;  // request payload size for timing
  Body body;
  /// Causal trace context for the handler: the server-side "svc" span's own
  /// context, stamped centrally in RpcEndpoint::call. Handlers derive child
  /// spans (queue wait, VOS, media) from it with ctx.child().
  sim::TraceContext ctx;
};

using Handler = std::function<sim::CoTask<Reply>(Request)>;

class RpcEndpoint;

/// Per-call fault-injection verdict (see RpcDomain::set_fault_hook).
struct CallFault {
  bool drop = false;          // swallow the request: caller sees a timeout
  sim::Time extra_delay = 0;  // added to the request path before the wire
};

/// One RPC address space per fabric: resolves NodeId -> endpoint.
class RpcDomain {
 public:
  explicit RpcDomain(Fabric& fabric) : fabric_(fabric) {}
  RpcDomain(const RpcDomain&) = delete;
  RpcDomain& operator=(const RpcDomain&) = delete;

  Fabric& fabric() { return fabric_; }
  sim::Scheduler& scheduler() { return fabric_.scheduler(); }

  /// Fault-injection hook: consulted at the top of every call. Dropped calls
  /// burn the full RPC timeout (the client cannot tell a dropped request from
  /// a dead server). The hook must be deterministic for a given
  /// (src, dst, opcode, virtual time) or traces diverge.
  using FaultHook = std::function<CallFault(NodeId src, NodeId dst, std::uint16_t opcode)>;
  void set_fault_hook(FaultHook h) { fault_hook_ = std::move(h); }

  /// Human-readable opcode label used in metric paths and trace spans
  /// ("update", "rebuild_scan"). Unnamed opcodes fall back to "op%04x".
  void name_opcode(std::uint16_t opcode, std::string name) {
    opcode_names_[opcode] = std::move(name);
  }
  std::string opcode_name(std::uint16_t opcode) const {
    const auto it = opcode_names_.find(opcode);
    return it != opcode_names_.end() ? it->second : strfmt("op%04x", opcode);
  }

 private:
  friend class RpcEndpoint;
  Fabric& fabric_;
  std::unordered_map<NodeId, RpcEndpoint*> endpoints_;
  FaultHook fault_hook_;
  std::map<std::uint16_t, std::string> opcode_names_;
};

/// Per-node RPC endpoint: registers handlers, issues calls.
class RpcEndpoint {
 public:
  RpcEndpoint(RpcDomain& domain, NodeId node);
  ~RpcEndpoint();
  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  NodeId node() const { return node_; }
  RpcDomain& domain() { return domain_; }

  void register_handler(std::uint16_t opcode, Handler h);

  /// Issues an RPC to `dst` and awaits the reply. Calls to nodes without an
  /// endpoint or handler fail with Errno::no_entry / Errno::not_supported.
  /// `ctx` is the caller's trace context: the RPC's client-side span becomes
  /// its child and the server-side handler span a grandchild; both request
  /// and reply are stamped centrally here (see Request::ctx / Reply::ctx).
  sim::CoTask<Reply> call(NodeId dst, std::uint16_t opcode, Body body,
                          std::uint64_t request_bytes, sim::TraceContext ctx = {});

  /// Marks this endpoint unreachable (for failure injection); calls to it
  /// time out with Errno::timed_out after `timeout`.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Bounds concurrent outgoing calls from this endpoint. Calls beyond the
  /// cap fail immediately with Errno::busy instead of parking a waiter —
  /// otherwise a retry storm against a dead node grows the event queue
  /// without bound (every unreachable call holds a timeout timer).
  void set_max_inflight(std::size_t n) { max_inflight_ = n; }
  std::size_t inflight_calls() const { return inflight_; }
  std::uint64_t busy_rejections() const { return busy_rejections_; }

  std::uint64_t calls_made() const { return calls_; }
  std::uint64_t calls_served() const { return served_; }

  /// Installs the IV piggyback source: every reply served by this endpoint
  /// is stamped with the value it returns (the engine's cached pool-map
  /// version). Stamping is passive — reading the source takes no virtual
  /// time and schedules nothing. nullptr-equivalent (default) stamps 0.
  void set_map_version_source(std::function<std::uint32_t()> f) {
    map_version_source_ = std::move(f);
  }

  /// Attaches a metric registry: per-opcode sent/completed/timed_out/busy
  /// counters and a completed-call latency histogram land under
  /// "rpc/<opcode name>/", plus an in-flight gauge at "rpc/inflight".
  /// Recording is passive (no scheduling); nullptr detaches.
  void set_telemetry(telemetry::Registry* reg);
  telemetry::Registry* telemetry() const { return telemetry_; }

 private:
  struct OpMetrics {
    telemetry::Counter* sent = nullptr;
    telemetry::Counter* completed = nullptr;
    telemetry::Counter* timed_out = nullptr;
    telemetry::Counter* busy = nullptr;
    telemetry::DurationHistogram* latency = nullptr;
  };

  struct InflightGuard {
    InflightGuard(std::size_t& n, telemetry::Gauge* g) : n_(n), g_(g) {
      ++n_;
      if (g_) g_->set(std::int64_t(n_));
    }
    ~InflightGuard() {
      --n_;
      if (g_) g_->set(std::int64_t(n_));
    }
    InflightGuard(const InflightGuard&) = delete;
    InflightGuard& operator=(const InflightGuard&) = delete;
    std::size_t& n_;
    telemetry::Gauge* g_;
  };

  /// Lazily builds the per-opcode metric set; requires telemetry_ != null.
  OpMetrics& op_metrics(std::uint16_t opcode);

  RpcDomain& domain_;
  NodeId node_;
  bool down_ = false;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  std::uint64_t calls_ = 0;
  std::uint64_t served_ = 0;
  std::size_t inflight_ = 0;
  std::size_t max_inflight_ = 1024;
  std::uint64_t busy_rejections_ = 0;
  std::function<std::uint32_t()> map_version_source_;
  telemetry::Registry* telemetry_ = nullptr;
  telemetry::Gauge* inflight_gauge_ = nullptr;
  std::unordered_map<std::uint16_t, OpMetrics> op_metrics_;  // keyed lookups only
};

/// Timeout used when calling an unreachable node.
constexpr sim::Time kRpcTimeout = 100 * sim::kMs;

}  // namespace daosim::net
