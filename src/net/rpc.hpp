// Minimal typed RPC layer over the simulated fabric (the Mercury/CART
// equivalent in DAOS). A call moves the request body across the fabric,
// runs the registered coroutine handler on the destination node (handlers
// charge their own CPU/media time), then moves the reply back.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/error.hpp"
#include "net/fabric.hpp"
#include "sim/co_task.hpp"

namespace daosim::net {

/// Type-erased message body. Bodies are shared_ptr-held so zero-copy
/// "serialization" is safe while the wire size still drives timing.
class Body {
 public:
  Body() = default;
  template <typename T>
  static Body make(T value) {
    Body b;
    b.ptr_ = std::make_shared<T>(std::move(value));
    return b;
  }
  template <typename T>
  const T& get() const {
    DAOSIM_REQUIRE(ptr_, "empty RPC body");
    return *std::static_pointer_cast<const T>(ptr_);
  }
  template <typename T>
  T& get() {
    DAOSIM_REQUIRE(ptr_, "empty RPC body");
    return *std::static_pointer_cast<T>(ptr_);
  }
  bool has_value() const { return ptr_ != nullptr; }

 private:
  std::shared_ptr<void> ptr_;
};

struct Reply {
  Errno status = Errno::ok;
  std::uint64_t wire_bytes = 0;  // reply payload size for timing
  Body body;
};

struct Request {
  NodeId source = 0;
  std::uint64_t wire_bytes = 0;  // request payload size for timing
  Body body;
};

using Handler = std::function<sim::CoTask<Reply>(Request)>;

class RpcEndpoint;

/// Per-call fault-injection verdict (see RpcDomain::set_fault_hook).
struct CallFault {
  bool drop = false;          // swallow the request: caller sees a timeout
  sim::Time extra_delay = 0;  // added to the request path before the wire
};

/// One RPC address space per fabric: resolves NodeId -> endpoint.
class RpcDomain {
 public:
  explicit RpcDomain(Fabric& fabric) : fabric_(fabric) {}
  RpcDomain(const RpcDomain&) = delete;
  RpcDomain& operator=(const RpcDomain&) = delete;

  Fabric& fabric() { return fabric_; }
  sim::Scheduler& scheduler() { return fabric_.scheduler(); }

  /// Fault-injection hook: consulted at the top of every call. Dropped calls
  /// burn the full RPC timeout (the client cannot tell a dropped request from
  /// a dead server). The hook must be deterministic for a given
  /// (src, dst, opcode, virtual time) or traces diverge.
  using FaultHook = std::function<CallFault(NodeId src, NodeId dst, std::uint16_t opcode)>;
  void set_fault_hook(FaultHook h) { fault_hook_ = std::move(h); }

 private:
  friend class RpcEndpoint;
  Fabric& fabric_;
  std::unordered_map<NodeId, RpcEndpoint*> endpoints_;
  FaultHook fault_hook_;
};

/// Per-node RPC endpoint: registers handlers, issues calls.
class RpcEndpoint {
 public:
  RpcEndpoint(RpcDomain& domain, NodeId node);
  ~RpcEndpoint();
  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  NodeId node() const { return node_; }
  RpcDomain& domain() { return domain_; }

  void register_handler(std::uint16_t opcode, Handler h);

  /// Issues an RPC to `dst` and awaits the reply. Calls to nodes without an
  /// endpoint or handler fail with Errno::no_entry / Errno::not_supported.
  sim::CoTask<Reply> call(NodeId dst, std::uint16_t opcode, Body body,
                          std::uint64_t request_bytes);

  /// Marks this endpoint unreachable (for failure injection); calls to it
  /// time out with Errno::timed_out after `timeout`.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Bounds concurrent outgoing calls from this endpoint. Calls beyond the
  /// cap fail immediately with Errno::busy instead of parking a waiter —
  /// otherwise a retry storm against a dead node grows the event queue
  /// without bound (every unreachable call holds a timeout timer).
  void set_max_inflight(std::size_t n) { max_inflight_ = n; }
  std::size_t inflight_calls() const { return inflight_; }
  std::uint64_t busy_rejections() const { return busy_rejections_; }

  std::uint64_t calls_made() const { return calls_; }
  std::uint64_t calls_served() const { return served_; }

 private:
  struct InflightGuard {
    explicit InflightGuard(std::size_t& n) : n_(n) { ++n_; }
    ~InflightGuard() { --n_; }
    InflightGuard(const InflightGuard&) = delete;
    InflightGuard& operator=(const InflightGuard&) = delete;
    std::size_t& n_;
  };

  RpcDomain& domain_;
  NodeId node_;
  bool down_ = false;
  std::unordered_map<std::uint16_t, Handler> handlers_;
  std::uint64_t calls_ = 0;
  std::uint64_t served_ = 0;
  std::size_t inflight_ = 0;
  std::size_t max_inflight_ = 1024;
  std::uint64_t busy_rejections_ = 0;
};

/// Timeout used when calling an unreachable node.
constexpr sim::Time kRpcTimeout = 100 * sim::kMs;

}  // namespace daosim::net
