#include "net/rpc.hpp"

namespace daosim::net {

RpcEndpoint::RpcEndpoint(RpcDomain& domain, NodeId node) : domain_(domain), node_(node) {
  auto [it, inserted] = domain_.endpoints_.emplace(node, this);
  (void)it;
  DAOSIM_REQUIRE(inserted, "duplicate RPC endpoint for node %u", node);
}

RpcEndpoint::~RpcEndpoint() { domain_.endpoints_.erase(node_); }

void RpcEndpoint::register_handler(std::uint16_t opcode, Handler h) {
  handlers_[opcode] = std::move(h);
}

void RpcEndpoint::set_telemetry(telemetry::Registry* reg) {
  telemetry_ = reg;
  op_metrics_.clear();
  inflight_gauge_ = reg ? &reg->find_or_create<telemetry::Gauge>("rpc/inflight") : nullptr;
}

RpcEndpoint::OpMetrics& RpcEndpoint::op_metrics(std::uint16_t opcode) {
  auto it = op_metrics_.find(opcode);
  if (it != op_metrics_.end()) return it->second;
  const std::string base = "rpc/" + domain_.opcode_name(opcode) + "/";
  OpMetrics m;
  m.sent = &telemetry_->find_or_create<telemetry::Counter>(base + "sent");
  m.completed = &telemetry_->find_or_create<telemetry::Counter>(base + "completed");
  m.timed_out = &telemetry_->find_or_create<telemetry::Counter>(base + "timed_out");
  m.busy = &telemetry_->find_or_create<telemetry::Counter>(base + "busy");
  m.latency = &telemetry_->find_or_create<telemetry::DurationHistogram>(base + "latency_ns");
  return op_metrics_.emplace(opcode, m).first->second;
}

sim::CoTask<Reply> RpcEndpoint::call(NodeId dst, std::uint16_t opcode, Body body,
                                     std::uint64_t request_bytes, sim::TraceContext ctx) {
  OpMetrics* m = telemetry_ != nullptr ? &op_metrics(opcode) : nullptr;
  if (inflight_ >= max_inflight_) {
    ++busy_rejections_;
    if (m) m->busy->inc();
    co_return Reply{Errno::busy, 0, {}};
  }
  InflightGuard guard(inflight_, inflight_gauge_);
  ++calls_;
  if (m) m->sent->inc();
  auto& fabric = domain_.fabric_;
  // Trace contexts: the client-side "rpc" span is a child of the caller's
  // context, the server-side "svc" span (emitted below, around the handler)
  // its child in turn. Span ids are allocated unconditionally — a pure
  // counter bump — so ids never depend on the sink or on sampling.
  const sim::TraceContext rpc_ctx = ctx.child(fabric.scheduler().alloc_span_id());
  const sim::TraceContext svc_ctx = rpc_ctx.child(fabric.scheduler().alloc_span_id());
  const sim::Time t0 = fabric.scheduler().now();
  // Span emission and metric recording are passive: they never schedule,
  // so attaching telemetry cannot perturb trace_hash() or timings.
  const auto emit_span = [&](const char* suffix) {
    if (sim::SpanSink* sink = fabric.scheduler().span_sink()) {
      sink->span("rpc", domain_.opcode_name(opcode) + suffix + strfmt(" ->%u", dst), node_,
                 opcode, t0, fabric.scheduler().now(), rpc_ctx);
    }
  };

  if (domain_.fault_hook_) {
    const CallFault fault = domain_.fault_hook_(node_, dst, opcode);
    if (fault.drop) {
      // The request vanished on the wire; the caller burns the full timeout.
      co_await fabric.scheduler().delay(kRpcTimeout);
      if (m) m->timed_out->inc();
      emit_span("!timeout");
      co_return Reply{Errno::timed_out, 0, {}};
    }
    if (fault.extra_delay > 0) co_await fabric.scheduler().delay(fault.extra_delay);
  }

  co_await fabric.transfer(node_, dst, request_bytes, rpc_ctx);

  // The awaits between this lookup and its uses sit on co_return paths, and
  // endpoints_ nodes are erased only in ~RpcEndpoint (a crash flips down_,
  // it never unregisters), so the iterator cannot dangle here.
  auto it = domain_.endpoints_.find(dst);  // daosim-check: allow(ref-across-suspend): erase only in ~RpcEndpoint; awaits co_return
  if (it == domain_.endpoints_.end() || it->second->down_ || down_) {
    // Destination unreachable (crashed node / partition): model a timeout.
    co_await fabric.scheduler().delay(kRpcTimeout);
    if (m) m->timed_out->inc();
    emit_span("!timeout");
    co_return Reply{Errno::timed_out, 0, {}};
  }
  RpcEndpoint& server = *it->second;
  // Handlers are registered once at endpoint setup and never erased, so the
  // handler map cannot rehash under the co_await that invokes hit->second.
  auto hit = server.handlers_.find(opcode);  // daosim-check: allow(ref-across-suspend): handlers_ is insert-once at setup
  if (hit == server.handlers_.end()) {
    co_return Reply{Errno::not_supported, 0, {}};
  }
  ++server.served_;
  Request req{node_, request_bytes, std::move(body), svc_ctx};
  const sim::Time t_svc = fabric.scheduler().now();
  Reply reply = co_await hit->second(std::move(req));
  // Central server-side span: every handler (engine ops, DTX, rebuild, SWIM,
  // pool service) gets its service interval recorded without touching it.
  if (sim::SpanSink* sink = fabric.scheduler().span_sink()) {
    sink->span("svc", domain_.opcode_name(opcode), dst, opcode, t_svc,
               fabric.scheduler().now(), svc_ctx);
  }

  // The server may have crashed while the handler ran (the handler had
  // already mutated server state): the reply is lost, the caller times out.
  // This is exactly the window where a retry duplicate-applies an update.
  auto again = domain_.endpoints_.find(dst);
  if (again == domain_.endpoints_.end() || again->second->down_ || down_) {
    co_await fabric.scheduler().delay(kRpcTimeout);
    if (m) m->timed_out->inc();
    emit_span("!timeout");
    co_return Reply{Errno::timed_out, 0, {}};
  }
  // IV piggyback: stamp the callee's cached pool-map version on the reply.
  // Central so every handler gets it for free; reading the source is passive.
  if (again->second->map_version_source_) {
    reply.map_version = again->second->map_version_source_();
  }
  // Trace piggyback: stamp the server-side context on the reply, centrally,
  // so callers can link what served them without every handler cooperating.
  reply.ctx = svc_ctx;

  co_await fabric.transfer(dst, node_, reply.wire_bytes, rpc_ctx);
  if (m) {
    m->completed->inc();
    m->latency->record(fabric.scheduler().now() - t0);
  }
  emit_span("");
  co_return reply;
}

}  // namespace daosim::net
