// Simulated high-performance fabric (the OFI layer under DAOS).
//
// Each node has a full-duplex NIC (per-direction SharedBandwidth sized as
// rails × per-rail rate, matching NEXTGenIO's dual-rail Omni-Path). Transfers
// pay a fixed propagation/software latency plus fair-shared bandwidth at the
// sender egress, a core-switch aggregate pipe, and the receiver ingress
// concurrently (cut-through approximation).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/bandwidth.hpp"
#include "sim/co_task.hpp"
#include "sim/scheduler.hpp"
#include "sim/sync.hpp"
#include "sim/time.hpp"
#include "telemetry/telemetry.hpp"

namespace daosim::net {

using NodeId = std::uint32_t;

struct FabricConfig {
  double rail_bytes_per_sec = 12.5e9;  // one 100 Gb/s rail
  std::uint32_t rails_per_node = 2;    // NEXTGenIO: dual-rail Omni-Path
  sim::Time latency = 3 * sim::kUs;    // per-message software + wire latency
  /// Aggregate core-switch capacity; 0 = non-blocking (sized on demand).
  double switch_bytes_per_sec = 0.0;
  std::uint64_t message_header_bytes = 128;
};

class Fabric {
 public:
  Fabric(sim::Scheduler& sched, FabricConfig cfg = {});
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers a new node; returns its id (dense, starting at 0).
  /// `rails` overrides the per-node rail count (0 = config default) — DAOS
  /// engines bind one rail per socket while client nodes use both.
  NodeId add_node(std::uint32_t rails = 0);

  std::size_t node_count() const { return nodes_.size(); }
  const FabricConfig& config() const { return cfg_; }
  sim::Scheduler& scheduler() { return sched_; }

  /// Moves `bytes` (plus the message header) from `src` to `dst`, completing
  /// when the last byte lands. Loopback messages pay latency only. `ctx` is
  /// the caller's trace context; the transfer's "xfer" span is emitted as its
  /// child (inactive context = unlinked span, exactly as before).
  sim::CoTask<void> transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                             sim::TraceContext ctx = {});

  std::uint64_t bytes_sent(NodeId n) const;
  std::uint64_t messages_sent() const { return messages_; }

  /// Fault-injection hook: consulted per non-loopback transfer; the returned
  /// duration is added to the message latency (0 = unaffected). The hook must
  /// be deterministic for a given (src, dst, virtual time) or traces diverge.
  using DelayHook = std::function<sim::Time(NodeId src, NodeId dst)>;
  void set_delay_hook(DelayHook h) { delay_hook_ = std::move(h); }

  /// Attaches a metric registry: per-node wire-byte counters under
  /// "node/<id>/{tx,rx}_bytes", a message counter, and a queueing-delay
  /// histogram (time spent beyond the contention-free serialization time of
  /// each transfer). Recording is passive; nullptr detaches.
  void set_telemetry(telemetry::Registry* reg);

 private:
  struct Node {
    std::unique_ptr<sim::SharedBandwidth> egress;
    std::unique_ptr<sim::SharedBandwidth> ingress;
    std::uint64_t bytes_sent = 0;
    telemetry::Counter* tx = nullptr;  // lazily bound when telemetry is on
    telemetry::Counter* rx = nullptr;
  };

  void ensure_switch();
  void bind_node_counters(NodeId n);

  sim::Scheduler& sched_;
  FabricConfig cfg_;
  std::vector<Node> nodes_;
  std::unique_ptr<sim::SharedBandwidth> switch_;
  std::uint64_t messages_ = 0;
  DelayHook delay_hook_;
  telemetry::Registry* telemetry_ = nullptr;
  telemetry::Counter* messages_metric_ = nullptr;
  telemetry::DurationHistogram* queue_delay_ = nullptr;
};

}  // namespace daosim::net
