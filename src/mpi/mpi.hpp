// Simulated MPI runtime: SPMD ranks are coroutines pinned to client nodes;
// point-to-point messages and collectives move real bytes over the simulated
// fabric (loopback for ranks sharing a node). Provides the subset IOR and
// the MPI-IO layer need: barrier, reduce/allreduce, bcast, send/recv, wtime.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "net/fabric.hpp"
#include "sim/sync.hpp"

namespace daosim::mpi {

enum class ReduceOp { min, max, sum };

class MpiWorld;

/// Per-rank communicator handle (MPI_COMM_WORLD).
class Comm {
 public:
  Comm() = default;
  Comm(MpiWorld* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const;
  double wtime() const;  // virtual seconds

  sim::CoTask<void> barrier();
  sim::CoTask<double> allreduce(double value, ReduceOp op);
  /// Broadcast charges tree-communication time; in-process data is shared.
  sim::CoTask<void> bcast_bytes(std::uint64_t bytes, int root);
  sim::CoTask<void> send(int dst, std::uint64_t bytes, double value = 0.0);
  sim::CoTask<double> recv(int src);

 private:
  MpiWorld* world_ = nullptr;
  int rank_ = 0;
};

/// The job: ranks mapped onto client fabric nodes (ppn ranks per node).
class MpiWorld {
 public:
  MpiWorld(sim::Scheduler& sched, net::Fabric& fabric, std::vector<net::NodeId> rank_nodes);

  int size() const { return int(rank_nodes_.size()); }
  Comm comm(int rank) { return Comm(this, rank); }
  sim::Scheduler& scheduler() { return sched_; }
  net::NodeId node_of(int rank) const { return rank_nodes_[std::size_t(rank)]; }

  /// Runs `body(comm)` on every rank and completes when all ranks return.
  sim::CoTask<void> run_spmd(std::function<sim::CoTask<void>(Comm)> body);

  /// Charges a bulk data movement between two ranks' nodes (used by the
  /// MPI-IO two-phase shuffle, where data is exchanged outside mailboxes).
  sim::CoTask<void> charge_transfer(int src_rank, int dst_rank, std::uint64_t bytes) {
    return transfer(src_rank, dst_rank, bytes);
  }

 private:
  friend class Comm;

  struct Msg {
    double value;
  };

  sim::Channel<Msg>& mailbox(int src, int dst);
  sim::CoTask<void> transfer(int src, int dst, std::uint64_t bytes);
  sim::CoTask<void> send_msg(int src, int dst, std::uint64_t bytes, double value);
  sim::CoTask<double> recv_msg(int src, int dst);

  sim::CoTask<void> rank_main(std::shared_ptr<std::function<sim::CoTask<void>(Comm)>> body,
                              int rank);

  static double combine(double a, double b, ReduceOp op);

  sim::Scheduler& sched_;
  net::Fabric& fabric_;
  std::vector<net::NodeId> rank_nodes_;
  std::map<std::uint64_t, std::unique_ptr<sim::Channel<Msg>>> mailboxes_;
};

/// Control-message size for collectives (header + one double).
constexpr std::uint64_t kCollectiveMsgBytes = 72;

}  // namespace daosim::mpi
