#include "mpi/mpi.hpp"

#include <algorithm>

#include "sim/time.hpp"

namespace daosim::mpi {

MpiWorld::MpiWorld(sim::Scheduler& sched, net::Fabric& fabric,
                   std::vector<net::NodeId> rank_nodes)
    : sched_(sched), fabric_(fabric), rank_nodes_(std::move(rank_nodes)) {
  DAOSIM_REQUIRE(!rank_nodes_.empty(), "empty MPI job");
}

int Comm::size() const { return world_->size(); }

double Comm::wtime() const { return sim::to_seconds(world_->sched_.now()); }

sim::Channel<MpiWorld::Msg>& MpiWorld::mailbox(int src, int dst) {
  const std::uint64_t key = (std::uint64_t(std::uint32_t(src)) << 32) | std::uint32_t(dst);
  auto it = mailboxes_.find(key);
  if (it == mailboxes_.end()) {
    it = mailboxes_.emplace(key, std::make_unique<sim::Channel<Msg>>(sched_)).first;
  }
  return *it->second;
}

sim::CoTask<void> MpiWorld::transfer(int src, int dst, std::uint64_t bytes) {
  return fabric_.transfer(node_of(src), node_of(dst), bytes);
}

sim::CoTask<void> MpiWorld::send_msg(int src, int dst, std::uint64_t bytes, double value) {
  co_await transfer(src, dst, bytes);
  mailbox(src, dst).push(Msg{value});
}

sim::CoTask<double> MpiWorld::recv_msg(int src, int dst) {
  Msg m = co_await mailbox(src, dst).pop();
  co_return m.value;
}

double MpiWorld::combine(double a, double b, ReduceOp op) {
  switch (op) {
    case ReduceOp::min: return std::min(a, b);
    case ReduceOp::max: return std::max(a, b);
    case ReduceOp::sum: return a + b;
  }
  return a;
}

sim::CoTask<void> Comm::send(int dst, std::uint64_t bytes, double value) {
  return world_->send_msg(rank_, dst, bytes, value);
}

sim::CoTask<double> Comm::recv(int src) { return world_->recv_msg(src, rank_); }

sim::CoTask<double> Comm::allreduce(double value, ReduceOp op) {
  MpiWorld& w = *world_;
  const int p = w.size();
  const int me = rank_;
  double acc = value;
  // Binomial-tree reduce to rank 0 ...
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((me & mask) != 0) {
      co_await w.send_msg(me, me - mask, kCollectiveMsgBytes, acc);
      break;
    }
    if (me + mask < p) {
      const double got = co_await w.recv_msg(me + mask, me);
      acc = MpiWorld::combine(acc, got, op);
    }
  }
  // ... then binomial-tree broadcast of the result.
  int highest = 1;
  while (highest < p) highest <<= 1;
  for (int mask = highest >> 1; mask >= 1; mask >>= 1) {
    if ((me & (mask - 1)) != 0) continue;
    if ((me & mask) != 0) {
      acc = co_await w.recv_msg(me - mask, me);
    } else if (me + mask < p) {
      co_await w.send_msg(me, me + mask, kCollectiveMsgBytes, acc);
    }
  }
  co_return acc;
}

sim::CoTask<void> Comm::barrier() {
  (void)co_await allreduce(0.0, ReduceOp::max);
}

sim::CoTask<void> Comm::bcast_bytes(std::uint64_t bytes, int root) {
  MpiWorld& w = *world_;
  const int p = w.size();
  // Rotate so the tree is rooted at `root`.
  const int vme = (rank_ - root + p) % p;
  int highest = 1;
  while (highest < p) highest <<= 1;
  for (int mask = highest >> 1; mask >= 1; mask >>= 1) {
    if ((vme & (mask - 1)) != 0) continue;
    if ((vme & mask) != 0) {
      (void)co_await w.recv_msg((vme - mask + root) % p, rank_);
    } else if (vme + mask < p) {
      co_await w.send_msg(rank_, (vme + mask + root) % p, kCollectiveMsgBytes + bytes, 0.0);
    }
  }
}


sim::CoTask<void> MpiWorld::run_spmd(std::function<sim::CoTask<void>(Comm)> body) {
  auto shared = std::make_shared<std::function<sim::CoTask<void>(Comm)>>(std::move(body));
  sim::WaitGroup wg(sched_);
  for (int r = 0; r < size(); ++r) {
    wg.spawn(rank_main(shared, r));
  }
  co_await wg.wait();
}

sim::CoTask<void> MpiWorld::rank_main(
    std::shared_ptr<std::function<sim::CoTask<void>(Comm)>> body, int rank) {
  co_await (*body)(Comm(this, rank));
}

}  // namespace daosim::mpi
