// Engine-side rebuild service: answers the pool-service coordinator's
// rebuild_scan RPCs (find objects whose redundancy group lost a replica, or
// whose reintegrated replica is stale), pulls the missing records from the
// surviving source over rebuild_fetch, applies them to the local VOS, and
// reports rebuild_done to the Raft leader.
//
// Throttling: a bounded number of pulls is in flight per engine
// (RebuildConfig::max_inflight), and every transfer is charged through the
// engine's xstream + media path, so rebuild traffic shares bandwidth with
// foreground I/O instead of starving it. See docs/rebuild.md.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "engine/engine.hpp"
#include "pool/pool_map.hpp"
#include "sim/sync.hpp"

namespace daosim::rebuild {

struct RebuildConfig {
  /// Throttle knob: concurrent rebuild pulls per destination engine.
  std::uint32_t max_inflight = 4;
};

class RebuildService {
 public:
  /// @param base_map   the pool map at connect time (membership only; health
  ///                   is taken from each scan request's exclusion list)
  /// @param svc_nodes  pool-service replica nodes (for rebuild_done reports)
  RebuildService(engine::Engine& eng, pool::PoolMap base_map,
                 std::vector<net::NodeId> svc_nodes, RebuildConfig cfg = {});
  RebuildService(const RebuildService&) = delete;
  RebuildService& operator=(const RebuildService&) = delete;

  const RebuildConfig& config() const { return cfg_; }
  std::uint64_t records_rebuilt() const { return records_; }
  std::uint64_t bytes_rebuilt() const { return bytes_; }
  std::uint32_t peak_inflight() const { return peak_inflight_; }

  /// Called by the harness when this engine comes back up after a crash.
  /// Records each local container's epoch clock as a resync floor: the clock
  /// is frozen while the engine is down, so everything at or below the floor
  /// is pre-eviction state a later resync may overwrite, and everything above
  /// it is a post-reintegration client write that must not be shadowed.
  void note_restart();

  /// Lowest resync epoch floor this engine may still compare record epochs
  /// against: the minimum over restart floors and the floors pinned by
  /// resync tasks that have not completed; vos::kEpochMax when none.
  /// Background aggregation must not flatten across a resync floor —
  /// coalescing stamps a merged extent with the run's newest epoch, which
  /// could lift a pre-eviction byte above the floor and make a later resync
  /// preserve it as if it were a post-reintegration write.
  vos::Epoch min_resync_floor() const;

 private:
  sim::CoTask<net::Reply> on_scan(net::Request req);
  sim::CoTask<net::Reply> on_fetch(net::Request req);

  /// Walks this engine's VOS trees and reports the entries it is the
  /// canonical source for (CPU-only; the data moves later, throttled).
  engine::RebuildScanResp scan_local(const engine::RebuildScanReq& req);
  /// Flattens one object's records for the requested group (source side).
  engine::RebuildFetchResp fetch_records(const engine::RebuildFetchReq& req) const;

  sim::CoTask<void> run_assignment(std::uint32_t version,
                                   std::vector<engine::RebuildEntry> entries);
  /// `ctx` is the assignment's trace root: each pull's fetch RPC and its
  /// local read/write charges hang beneath it as one rebuild trace tree.
  sim::CoTask<void> pull_entry(std::uint32_t version, engine::RebuildEntry entry,
                               sim::TraceContext ctx, std::shared_ptr<bool> failed);
  void apply_records(std::uint32_t version, const engine::RebuildEntry& entry,
                     const engine::RebuildFetchResp& resp);
  sim::CoTask<void> report_done(std::uint32_t version);

  /// Pins this resync task's destination-side epoch floors on the first
  /// scan/assign receipt naming this engine as the reintegrated node.
  void record_task_floors(std::uint32_t version);
  vos::Epoch task_floor(std::uint32_t version, std::uint32_t target,
                        const vos::Uuid& cont) const;

  engine::Engine& eng_;
  sim::Scheduler& sched_;
  pool::PoolMap base_map_;
  std::vector<net::NodeId> svc_nodes_;
  RebuildConfig cfg_;
  sim::Semaphore inflight_;
  std::uint32_t cur_inflight_ = 0;
  std::uint32_t peak_inflight_ = 0;
  std::set<std::uint32_t> active_;     // task versions currently pulling
  std::set<std::uint32_t> completed_;  // task versions fully applied locally
  /// Resync marks: (eviction map version, in-engine target, container) ->
  /// the container's epoch when the eviction was first scanned. A later
  /// pool_reint resync only copies records newer than the mark (epoch diff,
  /// not full copy). Epoch clocks are per-(target, container), so marks are
  /// recorded exactly where they are later consumed.
  std::map<std::tuple<std::uint32_t, std::uint32_t, vos::Uuid>, vos::Epoch> marks_;
  /// Per-(target, container) epoch clock at the most recent restart. The
  /// clock freezes while the engine is down, so this separates pre-eviction
  /// records (<= floor) from post-reintegration client writes (> floor).
  std::map<std::pair<std::uint32_t, vos::Uuid>, vos::Epoch> restart_floors_;
  /// Resync floors pinned per task version at the first scan/assign receipt
  /// (restart floor when one exists, current clock otherwise — for live
  /// evictions that never went through a restart). Containers absent at
  /// pin time default to floor 0, i.e. everything they hold is preserved:
  /// a container created after reintegration has no pre-eviction state.
  std::map<std::uint32_t, std::map<std::pair<std::uint32_t, vos::Uuid>, vos::Epoch>>
      task_floors_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  // Metrics live under the owning engine's registry ("engine/<node>/rebuild/...").
  telemetry::Counter* records_pulled_ = nullptr;
  telemetry::Counter* bytes_pulled_ = nullptr;
  telemetry::Counter* resync_bytes_ = nullptr;
  telemetry::DurationHistogram* task_time_ = nullptr;
};

}  // namespace daosim::rebuild
