#include "rebuild/rebuild.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <span>
#include <utility>

#include "client/object_class.hpp"
#include "client/placement.hpp"

namespace daosim::rebuild {

namespace {
/// Trace tag folded into the deterministic run hash per applied entry.
constexpr std::uint64_t kTraceRebuildPull = 0xFA17E008'0000'0000ULL;

constexpr int kFetchAttempts = 3;
constexpr int kDoneAttempts = 16;
constexpr sim::Time kDoneRetryDelay = 20 * sim::kMs;
}  // namespace

RebuildService::RebuildService(engine::Engine& eng, pool::PoolMap base_map,
                               std::vector<net::NodeId> svc_nodes, RebuildConfig cfg)
    : eng_(eng),
      sched_(eng.endpoint().domain().scheduler()),
      base_map_(std::move(base_map)),
      svc_nodes_(std::move(svc_nodes)),
      cfg_(cfg),
      inflight_(sched_, cfg.max_inflight) {
  DAOSIM_REQUIRE(cfg.max_inflight >= 1, "rebuild needs at least one transfer slot");
  eng_.endpoint().register_handler(
      engine::kOpRebuildScan, [this](net::Request req) { return on_scan(std::move(req)); });
  eng_.endpoint().register_handler(
      engine::kOpRebuildFetch, [this](net::Request req) { return on_fetch(std::move(req)); });
  telemetry::Registry& reg = eng_.telemetry();
  records_pulled_ = &reg.find_or_create<telemetry::Counter>("rebuild/records_pulled");
  bytes_pulled_ = &reg.find_or_create<telemetry::Counter>("rebuild/bytes_pulled");
  resync_bytes_ = &reg.find_or_create<telemetry::Counter>("rebuild/resync_bytes");
  task_time_ = &reg.find_or_create<telemetry::DurationHistogram>("rebuild/task_time_ns");
}

sim::CoTask<net::Reply> RebuildService::on_scan(net::Request req) {
  const auto& r = req.body.get<engine::RebuildScanReq>();
  // Resync targeting this engine: pin the destination-side epoch floors now
  // (first receipt wins), before any pulled window image can be applied.
  if (r.resync && r.reint_node == eng_.node()) record_task_floors(r.version);
  if (!r.assign) {
    engine::RebuildScanResp resp = scan_local(r);
    const std::uint64_t wire = 128 + 64 * resp.entries.size();
    co_return net::Reply{Errno::ok, wire, net::Body::make(std::move(resp))};
  }
  if (completed_.contains(r.version)) {
    // Re-driven task (lost reply or a new leader resuming): the local work is
    // done, only the Raft-committed done marker is missing. Report again; the
    // state machine dup-guards.
    sim::CoTask<void> rep = report_done(r.version);
    sched_.spawn(std::move(rep));
  } else if (active_.insert(r.version).second) {
    sim::CoTask<void> run = run_assignment(r.version, r.entries);
    sched_.spawn(std::move(run));
  }
  // Already active: the running assignment will report when it lands.
  co_return net::Reply{Errno::ok, 64, {}};
}

sim::CoTask<net::Reply> RebuildService::on_fetch(net::Request req) {
  const auto& r = req.body.get<engine::RebuildFetchReq>();
  engine::RebuildFetchResp resp = fetch_records(r);
  // Source-side cost: the export streams through the target's xstream and
  // media read path like a foreground fetch. req.ctx links the read into the
  // puller's trace tree across the fabric hop.
  co_await eng_.rebuild_read(r.target, resp.bytes, req.ctx);
  const std::uint64_t wire = engine::kObjRpcHeader + resp.bytes;
  co_return net::Reply{Errno::ok, wire, net::Body::make(std::move(resp))};
}

engine::RebuildScanResp RebuildService::scan_local(const engine::RebuildScanReq& req) {
  engine::RebuildScanResp resp;
  const std::uint32_t n = base_map_.target_count();

  // Health views derived from the task's exclusion set (not live health, so a
  // re-driven scan is deterministic). The resync `window` view additionally
  // excludes the reintegrating engine: it is the layout clients wrote against
  // while that engine was away, i.e. where the window's data lives.
  const auto is_excluded = [&req](net::NodeId e) {
    return std::find(req.excluded.begin(), req.excluded.end(), e) != req.excluded.end();
  };
  pool::PoolMap degraded = base_map_;
  for (auto& t : degraded.targets) {
    t.health = is_excluded(t.engine) ? pool::TargetHealth::excluded : pool::TargetHealth::up;
  }
  pool::PoolMap window = degraded;
  if (req.resync) {
    for (auto& t : window.targets) {
      if (t.engine == req.reint_node) t.health = pool::TargetHealth::excluded;
    }
  }
  const auto degraded_out = [&degraded](std::uint32_t t) {
    return degraded.targets[t].health == pool::TargetHealth::excluded;
  };

  for (std::uint32_t mi = 0; mi < n; ++mi) {
    if (base_map_.targets[mi].engine != eng_.node()) continue;
    const std::uint32_t ti = base_map_.targets[mi].target;
    vos::VosTarget& vt = eng_.vos_target(ti);
    for (const vos::Uuid& uuid : vt.list_containers()) {
      const vos::VosContainer* cont = vt.find_container(uuid);
      if (cont == nullptr) continue;
      if (!req.resync) {
        // Epoch mark for a later reintegration resync: only records newer
        // than this need to flow back. emplace keeps the first mark, so a
        // re-driven scan does not advance it.
        marks_.emplace(std::make_tuple(req.version, ti, uuid), cont->current_epoch());
      }
      vos::Epoch mark = 0;
      if (req.resync) {
        const auto it = marks_.find(std::make_tuple(req.since_version, ti, uuid));
        if (it != marks_.end()) mark = it->second;
      }
      for (const vos::ObjId oid : cont->list_objects()) {
        const auto clsb = std::uint8_t(oid.hi >> 56);
        if (clsb < 1 || clsb > 8) continue;  // not a classed object
        const auto cls = client::ObjClass(clsb);
        const std::uint32_t reps = client::replica_count(cls);
        if (reps < 2) continue;  // unreplicated: nothing to heal
        const std::uint32_t groups = client::group_count(cls, n);
        const client::GroupLayout nominal =
            client::compute_nominal_layout(oid, groups, reps, base_map_);
        if (!req.resync) {
          const client::GroupLayout current =
              client::compute_group_layout(oid, groups, reps, degraded);
          for (std::uint32_t g = 0; g < groups; ++g) {
            // Canonical source: the first surviving nominal replica. A group
            // with no survivor cannot be rebuilt (clients see data_loss).
            std::uint32_t src = n;
            for (std::uint32_t r = 0; r < reps; ++r) {
              if (!degraded_out(nominal.at(g, r))) {
                src = nominal.at(g, r);
                break;
              }
            }
            if (src != mi) continue;  // another target/engine is canonical
            for (std::uint32_t r = 0; r < reps; ++r) {
              if (!degraded_out(nominal.at(g, r))) continue;  // replica survives
              const std::uint32_t dst = current.at(g, r);
              if (dst == src || degraded_out(dst)) continue;
              resp.entries.push_back({uuid, oid, g, src, dst, 0, false});
            }
          }
        } else {
          // Resync: the engine that covered for the reintegrated replica
          // during the window pushes the epoch diff back to the nominal slot.
          const client::GroupLayout windowl =
              client::compute_group_layout(oid, groups, reps, window);
          for (std::uint32_t g = 0; g < groups; ++g) {
            for (std::uint32_t r = 0; r < reps; ++r) {
              const std::uint32_t dst = nominal.at(g, r);
              if (base_map_.targets[dst].engine != req.reint_node) continue;
              const std::uint32_t src = windowl.at(g, r);
              if (src != mi || src == dst) continue;
              resp.entries.push_back({uuid, oid, g, src, dst, mark, true});
            }
          }
        }
      }
    }
  }
  return resp;
}

engine::RebuildFetchResp RebuildService::fetch_records(const engine::RebuildFetchReq& req) const {
  engine::RebuildFetchResp resp;
  const vos::VosContainer* cont = eng_.vos_target(req.target).find_container(req.cont);
  if (cont == nullptr) return resp;
  const std::uint32_t groups =
      client::group_count(client::class_of(req.oid), base_map_.target_count());
  for (auto& rec : cont->export_object(req.oid, req.min_epoch)) {
    // Same group routing the client uses: array dkeys are decimal chunk
    // indices, KV dkeys hash the key string.
    const std::uint32_t g =
        rec.is_array
            ? client::array_chunk_group(req.oid, std::strtoull(rec.dkey.c_str(), nullptr, 10),
                                        groups)
            : client::kv_dkey_group(rec.dkey, groups);
    if (g != req.group) continue;
    engine::RebuildRecord out;
    out.dkey = std::move(rec.dkey);
    out.akey = std::move(rec.akey);
    out.type = rec.is_array ? engine::RecordType::array : engine::RecordType::single_value;
    out.length = rec.length;
    if (!rec.data.empty()) {
      out.data = std::make_shared<std::vector<std::byte>>(std::move(rec.data));
    }
    resp.bytes += out.length;
    resp.records.push_back(std::move(out));
  }
  resp.array_end = cont->array_end_hint(req.oid);
  return resp;
}

void RebuildService::note_restart() {
  for (std::uint32_t t = 0; t < eng_.target_count(); ++t) {
    vos::VosTarget& vt = eng_.vos_target(t);
    for (const vos::Uuid& uuid : vt.list_containers()) {
      if (const vos::VosContainer* cont = vt.find_container(uuid)) {
        // Latest restart wins: each crash/restart cycle starts a new
        // eviction generation, and only the newest one can have a pending
        // resync (a re-eviction supersedes and drops the old resync task).
        restart_floors_[{t, uuid}] = cont->current_epoch();
      }
    }
  }
}

void RebuildService::record_task_floors(std::uint32_t version) {
  if (task_floors_.contains(version)) return;
  auto& floors = task_floors_[version];
  for (std::uint32_t t = 0; t < eng_.target_count(); ++t) {
    vos::VosTarget& vt = eng_.vos_target(t);
    for (const vos::Uuid& uuid : vt.list_containers()) {
      const vos::VosContainer* cont = vt.find_container(uuid);
      if (cont == nullptr) continue;
      const auto it = restart_floors_.find({t, uuid});
      // No restart floor (live eviction, no crash): fall back to the clock
      // at first receipt. Post-reint writes racing ahead of this RPC slip
      // under the fallback floor — a window the restart path closes.
      floors[{t, uuid}] = it != restart_floors_.end() ? it->second : cont->current_epoch();
    }
  }
}

vos::Epoch RebuildService::min_resync_floor() const {
  vos::Epoch floor = vos::kEpochMax;
  // Restart floors stay live after the resync that consumed them: a future
  // eviction of this engine pins its task floors from the same marks, so
  // aggregation stays conservative below the newest restart generation.
  for (const auto& [key, e] : restart_floors_) floor = std::min(floor, e);
  for (const auto& [version, floors] : task_floors_) {
    if (completed_.contains(version)) continue;
    for (const auto& [key, e] : floors) floor = std::min(floor, e);
  }
  return floor;
}

vos::Epoch RebuildService::task_floor(std::uint32_t version, std::uint32_t target,
                                      const vos::Uuid& cont) const {
  const auto it = task_floors_.find(version);
  if (it == task_floors_.end()) return 0;
  const auto fit = it->second.find({target, cont});
  return fit != it->second.end() ? fit->second : 0;
}

sim::CoTask<void> RebuildService::run_assignment(std::uint32_t version,
                                                 std::vector<engine::RebuildEntry> entries) {
  const sim::Time t0 = sched_.now();
  // Every assignment is a trace root (no sampling — rebuilds are rare and
  // always worth a tree); the id allocation is a pure counter bump.
  const sim::TraceContext ctx = sim::TraceContext::root(sched_.alloc_span_id());
  auto failed = std::make_shared<bool>(false);
  sim::WaitGroup wg(sched_);
  for (const auto& e : entries) {
    wg.spawn(pull_entry(version, e, ctx, failed));
  }
  co_await wg.wait();
  active_.erase(version);
  task_time_->record(sched_.now() - t0);
  if (sim::SpanSink* sink = sched_.span_sink()) {
    sink->span("rebuild", strfmt("task v%u%s", version, *failed ? " (failed)" : ""),
               eng_.node(), version, t0, sched_.now(), ctx);
  }
  if (*failed) co_return;  // coordinator re-drives the task next tick
  completed_.insert(version);
  co_await report_done(version);
}

sim::CoTask<void> RebuildService::pull_entry(std::uint32_t version, engine::RebuildEntry entry,
                                             sim::TraceContext ctx,
                                             std::shared_ptr<bool> failed) {
  // Throttle: at most cfg_.max_inflight transfers pull concurrently, so
  // rebuild never monopolises the engine's xstreams and media bandwidth.
  co_await inflight_.acquire();
  ++cur_inflight_;
  peak_inflight_ = std::max(peak_inflight_, cur_inflight_);

  engine::RebuildFetchReq req;
  req.cont = entry.cont;
  req.oid = entry.oid;
  req.target = base_map_.targets[entry.src].target;
  req.group = entry.group;
  req.min_epoch = entry.min_epoch;

  const net::NodeId src_engine = base_map_.targets[entry.src].engine;
  engine::RebuildFetchResp resp;
  bool ok = false;
  if (src_engine == eng_.node()) {
    // Source and destination share this engine: skip the fabric, still pay
    // the source-side read.
    resp = fetch_records(req);
    co_await eng_.rebuild_read(req.target, resp.bytes, ctx);
    ok = true;
  } else {
    for (int attempt = 0; attempt < kFetchAttempts && !ok; ++attempt) {
      net::Body body = net::Body::make(req);
      net::Reply r = co_await eng_.endpoint().call(src_engine, engine::kOpRebuildFetch,
                                                   std::move(body), 256, ctx);
      if (r.status == Errno::ok) {
        resp = std::move(r.body.get<engine::RebuildFetchResp>());
        ok = true;
      }
    }
  }
  if (!ok) {
    *failed = true;
  } else {
    apply_records(version, entry, resp);
    co_await eng_.rebuild_write(base_map_.targets[entry.dst].target, resp.bytes, ctx);
    sched_.trace_note(kTraceRebuildPull ^ entry.oid.lo ^ (std::uint64_t(entry.dst) << 32));
  }
  --cur_inflight_;
  inflight_.release();
}

void RebuildService::apply_records(std::uint32_t version, const engine::RebuildEntry& entry,
                                   const engine::RebuildFetchResp& resp) {
  const std::uint32_t ti = base_map_.targets[entry.dst].target;
  vos::VosContainer& cont = eng_.vos_target(ti).container(entry.cont);
  const bool store = cont.payload_mode() == vos::PayloadMode::store;
  // Resync cut: records the destination wrote at or below the floor are
  // pre-eviction state the window image supersedes; anything above it is an
  // acknowledged post-reintegration client write that must stay on top.
  const vos::Epoch floor = entry.resync ? task_floor(version, ti, entry.cont) : 0;
  for (const auto& rec : resp.records) {
    if (rec.type == engine::RecordType::single_value) {
      // Eviction rebuild: a value already present here landed during the
      // degraded window (this destination held nothing for the group before)
      // and is newer than the pulled image — keep it. A resync overwrites
      // pre-eviction state, but skips values (and punches) this replica
      // wrote after reintegration: those are newer than the window image.
      if (!entry.resync && cont.kv_get(entry.oid, rec.dkey, rec.akey, vos::kEpochMax).exists) {
        ++records_;
        continue;
      }
      if (entry.resync && cont.kv_latest_epoch(entry.oid, rec.dkey, rec.akey) > floor) {
        ++records_;
        continue;
      }
      std::span<const std::byte> val;
      if (rec.data != nullptr) val = std::span<const std::byte>(*rec.data);
      cont.kv_put(entry.oid, rec.dkey, rec.akey, val, cont.next_epoch());
    } else {
      // VOS epochs are append-only, so the pulled image must land at a fresh
      // epoch. To keep it from shadowing newer local bytes, merge those over
      // the image first: for an eviction rebuild everything local is newer
      // (degraded-window writes); for a resync only bytes written after the
      // reintegration floor are (pre-eviction bytes lose to the image).
      std::vector<std::byte> img(rec.length, std::byte{0});
      if (store && rec.data != nullptr) {
        std::copy(rec.data->begin(), rec.data->end(), img.begin());
      }
      const std::uint64_t local_size =
          cont.array_size(entry.oid, rec.dkey, rec.akey, vos::kEpochMax);
      if (local_size > img.size()) img.resize(local_size, std::byte{0});
      if (store && (local_size > 0 || entry.resync)) {
        std::vector<std::byte> local(img.size());
        std::vector<bool> mask;
        cont.array_read_masked(entry.oid, rec.dkey, rec.akey, 0, local, mask, vos::kEpochMax);
        if (entry.resync) {
          // Only bytes touched after the floor are newer than the image; a
          // post-reint punch masks too (its bytes read back as zeros).
          mask.assign(img.size(), false);
          cont.array_mask_newer(entry.oid, rec.dkey, rec.akey, 0, floor, mask);
        }
        for (std::size_t i = 0; i < img.size(); ++i) {
          if (mask[i]) img[i] = local[i];
        }
      }
      const auto data = store ? std::span<const std::byte>(img) : std::span<const std::byte>();
      cont.array_write(entry.oid, rec.dkey, rec.akey, 0, img.size(), data, cont.next_epoch());
    }
    ++records_;
    records_pulled_->inc();
  }
  if (resp.array_end > 0) cont.note_array_end(entry.oid, resp.array_end);
  bytes_ += resp.bytes;
  bytes_pulled_->inc(resp.bytes);
  if (entry.resync) resync_bytes_->inc(resp.bytes);
}

sim::CoTask<void> RebuildService::report_done(std::uint32_t version) {
  engine::RebuildDoneReq done{eng_.node(), version};
  std::optional<net::NodeId> hint;
  for (int attempt = 0; attempt < kDoneAttempts; ++attempt) {
    const net::NodeId dst =
        hint ? *hint : svc_nodes_[std::size_t(attempt) % svc_nodes_.size()];
    hint.reset();
    net::Body body = net::Body::make(done);
    net::Reply r =
        co_await eng_.endpoint().call(dst, engine::kOpRebuildDone, std::move(body), 128);
    if (r.status == Errno::ok) co_return;
    if (r.status == Errno::again && r.body.has_value()) {
      hint = r.body.get<engine::RebuildDoneResp>().leader_hint;
    }
    co_await sched_.delay(kDoneRetryDelay);
  }
  // Give up quietly: the coordinator re-drives incomplete tasks, the assign
  // handler re-reports from completed_, and the state machine dup-guards.
}

}  // namespace daosim::rebuild
