#include "posix/dfuse.hpp"

namespace daosim::posix {

DfuseMount::DfuseMount(sim::Scheduler& sched, dfs::DfsMount& dfs, DfuseConfig cfg)
    : sched_(sched),
      dfs_(dfs),
      cfg_(cfg),
      threads_(sched, cfg.daemon_threads),
      window_(sched, cfg.kernel_window) {}

sim::CoTask<void> DfuseMount::request_gate_enter() {
  ++requests_;
  co_await window_.acquire();
  co_await sched_.delay(cfg_.op_cost);  // user/kernel crossing + queueing
  co_await threads_.acquire();
}

void DfuseMount::request_gate_exit() {
  threads_.release();
  window_.release();
}

sim::CoTask<Result<Fd>> DfuseMount::open(const std::string& path, VfsOpenFlags flags) {
  co_await request_gate_enter();
  dfs::OpenFlags dflags;
  dflags.create = flags.create;
  dflags.excl = flags.excl;
  dflags.truncate = flags.truncate;
  dflags.chunk_size = flags.chunk_size;
  dflags.oclass = flags.oclass;
  auto file = co_await dfs_.open(path, dflags);
  request_gate_exit();
  if (!file.ok()) co_return file.error();
  const Fd fd = next_fd_++;
  fds_[fd] = OpenFile{std::make_shared<dfs::File>(std::move(*file))};
  co_return fd;
}

sim::CoTask<Errno> DfuseMount::close(Fd fd) {
  // FUSE release is async; no round trip charged to the caller.
  co_return fds_.erase(fd) > 0 ? Errno::ok : Errno::bad_fd;
}

sim::CoTask<void> DfuseMount::write_piece(Fd fd, std::uint64_t offset, std::uint64_t length,
                                          std::span<const std::byte> data,
                                          std::shared_ptr<Errno> status) {
  co_await request_gate_enter();
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    *status = Errno::bad_fd;
    request_gate_exit();
    co_return;
  }
  // Pin the file before suspending: a concurrent close() erases the fd table
  // entry (invalidating `it` and dropping its reference) while we sit in the
  // DFS write below.
  const std::shared_ptr<dfs::File> file = it->second.file;
  const Errno st = co_await file->write(offset, length, data);
  if (st != Errno::ok) *status = st;
  request_gate_exit();
}

sim::CoTask<void> DfuseMount::read_piece(Fd fd, std::uint64_t offset, std::span<std::byte> out,
                                         std::shared_ptr<Errno> status,
                                         std::shared_ptr<std::uint64_t> filled) {
  co_await request_gate_enter();
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    *status = Errno::bad_fd;
    request_gate_exit();
    co_return;
  }
  // Pin the file before suspending (see write_piece).
  const std::shared_ptr<dfs::File> file = it->second.file;
  auto n = co_await file->read(offset, out);
  if (n.ok()) {
    *filled += *n;
  } else {
    *status = n.error();
  }
  request_gate_exit();
}

sim::CoTask<Result<std::uint64_t>> DfuseMount::pwrite(Fd fd, std::uint64_t offset,
                                                      std::uint64_t length,
                                                      std::span<const std::byte> data) {
  if (!fds_.contains(fd)) co_return Errno::bad_fd;
  // The kernel splits the syscall into max_request_bytes FUSE writes and
  // pipelines them (async FUSE); completion when all land.
  auto status = std::make_shared<Errno>(Errno::ok);
  sim::WaitGroup wg(sched_);
  std::uint64_t pos = 0;
  while (pos < length) {
    const std::uint64_t piece = std::min(cfg_.max_request_bytes, length - pos);
    std::span<const std::byte> slice;
    if (!data.empty()) slice = data.subspan(std::size_t(pos), std::size_t(piece));
    wg.spawn(write_piece(fd, offset + pos, piece, slice, status));
    pos += piece;
  }
  co_await wg.wait();
  if (*status != Errno::ok) co_return *status;
  co_return length;
}

sim::CoTask<Result<std::uint64_t>> DfuseMount::pread(Fd fd, std::uint64_t offset,
                                                     std::span<std::byte> out) {
  if (!fds_.contains(fd)) co_return Errno::bad_fd;
  auto status = std::make_shared<Errno>(Errno::ok);
  auto filled = std::make_shared<std::uint64_t>(0);
  sim::WaitGroup wg(sched_);
  std::uint64_t pos = 0;
  while (pos < out.size()) {
    const std::uint64_t piece = std::min<std::uint64_t>(cfg_.max_request_bytes, out.size() - pos);
    wg.spawn(read_piece(fd, offset + pos, out.subspan(std::size_t(pos), std::size_t(piece)),
                        status, filled));
    pos += piece;
  }
  co_await wg.wait();
  if (*status != Errno::ok) co_return *status;
  co_return *filled;
}

sim::CoTask<Result<std::uint64_t>> DfuseMount::fsize(Fd fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Errno::bad_fd;
  // Pin the file before the gate suspends us (see write_piece): the lookup
  // above is pre-suspension, but `it` would not survive a concurrent close().
  const std::shared_ptr<dfs::File> file = it->second.file;
  co_await request_gate_enter();
  auto sz = co_await file->size();
  request_gate_exit();
  if (!sz.ok()) co_return sz.error();
  co_return *sz;
}

sim::CoTask<Errno> DfuseMount::fsync(Fd fd) {
  if (!fds_.contains(fd)) co_return Errno::bad_fd;
  co_await request_gate_enter();
  request_gate_exit();  // DFS I/O is synchronous server-side: nothing to flush
  co_return Errno::ok;
}

sim::CoTask<Result<VfsStat>> DfuseMount::stat(const std::string& path) {
  co_await request_gate_enter();
  auto st = co_await dfs_.stat(path);
  request_gate_exit();
  if (!st.ok()) co_return st.error();
  co_return VfsStat{st->type == dfs::FileType::directory,
                    st->type == dfs::FileType::symlink, st->size};
}

sim::CoTask<Errno> DfuseMount::mkdir(const std::string& path) {
  co_await request_gate_enter();
  const Errno st = co_await dfs_.mkdir(path);
  request_gate_exit();
  co_return st;
}

sim::CoTask<Result<std::vector<std::string>>> DfuseMount::readdir(const std::string& path) {
  co_await request_gate_enter();
  auto names = co_await dfs_.readdir(path);
  request_gate_exit();
  co_return names;
}

sim::CoTask<Errno> DfuseMount::unlink(const std::string& path) {
  co_await request_gate_enter();
  const Errno st = co_await dfs_.unlink(path);
  request_gate_exit();
  co_return st;
}

sim::CoTask<Errno> DfuseMount::rmdir(const std::string& path) {
  co_await request_gate_enter();
  const Errno st = co_await dfs_.rmdir(path);
  request_gate_exit();
  co_return st;
}

sim::CoTask<Errno> DfuseMount::rename(const std::string& from, const std::string& to) {
  co_await request_gate_enter();
  const Errno st = co_await dfs_.rename(from, to);
  request_gate_exit();
  co_return st;
}

}  // namespace daosim::posix
