#include "posix/vfs.hpp"

#include <algorithm>

namespace daosim::posix {

Result<std::string> MemVfs::parent_of(const std::string& path) {
  if (path.empty() || path[0] != '/') return Errno::invalid;
  const auto pos = path.find_last_of('/');
  if (pos == std::string::npos || path.size() == 1) return Errno::invalid;
  return pos == 0 ? std::string("/") : path.substr(0, pos);
}

sim::CoTask<Result<Fd>> MemVfs::open(const std::string& path, VfsOpenFlags flags) {
  auto it = files_.find(path);
  if (it != files_.end()) {
    if (it->second.is_dir) co_return Errno::is_dir;
    if (flags.create && flags.excl) co_return Errno::exists;
    if (flags.truncate) it->second.data.clear();
  } else {
    if (!flags.create) co_return Errno::no_entry;
    auto parent = parent_of(path);
    if (!parent.ok()) co_return parent.error();
    auto pit = files_.find(*parent);
    if (pit == files_.end() || !pit->second.is_dir) co_return Errno::no_entry;
    files_[path] = Node{false, {}};
  }
  const Fd fd = next_fd_++;
  fds_[fd] = path;
  co_return fd;
}

sim::CoTask<Errno> MemVfs::close(Fd fd) {
  co_return fds_.erase(fd) > 0 ? Errno::ok : Errno::bad_fd;
}

sim::CoTask<Result<std::uint64_t>> MemVfs::pread(Fd fd, std::uint64_t offset,
                                                 std::span<std::byte> out) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Errno::bad_fd;
  auto& data = files_.at(it->second).data;
  std::fill(out.begin(), out.end(), std::byte{0});
  if (offset >= data.size()) co_return std::uint64_t{0};
  const std::uint64_t n = std::min<std::uint64_t>(out.size(), data.size() - offset);
  std::copy_n(data.begin() + std::ptrdiff_t(offset), n, out.begin());
  co_return n;
}

sim::CoTask<Result<std::uint64_t>> MemVfs::pwrite(Fd fd, std::uint64_t offset,
                                                  std::uint64_t length,
                                                  std::span<const std::byte> data) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Errno::bad_fd;
  auto& file = files_.at(it->second).data;
  if (file.size() < offset + length) file.resize(offset + length);
  if (!data.empty()) {
    DAOSIM_REQUIRE(data.size() == length, "payload size mismatch");
    std::copy(data.begin(), data.end(), file.begin() + std::ptrdiff_t(offset));
  }
  co_return length;
}

sim::CoTask<Result<std::uint64_t>> MemVfs::fsize(Fd fd) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) co_return Errno::bad_fd;
  co_return std::uint64_t(files_.at(it->second).data.size());
}

sim::CoTask<Errno> MemVfs::fsync(Fd fd) {
  co_return fds_.contains(fd) ? Errno::ok : Errno::bad_fd;
}

sim::CoTask<Result<VfsStat>> MemVfs::stat(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) co_return Errno::no_entry;
  co_return VfsStat{it->second.is_dir, false, it->second.data.size()};
}

sim::CoTask<Errno> MemVfs::mkdir(const std::string& path) {
  if (files_.contains(path)) co_return Errno::exists;
  auto parent = parent_of(path);
  if (!parent.ok()) co_return parent.error();
  auto pit = files_.find(*parent);
  if (pit == files_.end() || !pit->second.is_dir) co_return Errno::no_entry;
  files_[path] = Node{true, {}};
  co_return Errno::ok;
}

sim::CoTask<Result<std::vector<std::string>>> MemVfs::readdir(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) co_return Errno::no_entry;
  if (!it->second.is_dir) co_return Errno::not_dir;
  std::vector<std::string> names;
  const std::string prefix = path == "/" ? "/" : path + "/";
  for (auto& [p, node] : files_) {
    if (p.size() > prefix.size() && p.starts_with(prefix) &&
        p.find('/', prefix.size()) == std::string::npos) {
      names.push_back(p.substr(prefix.size()));
    }
  }
  co_return names;
}

sim::CoTask<Errno> MemVfs::unlink(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) co_return Errno::no_entry;
  if (it->second.is_dir) co_return Errno::is_dir;
  files_.erase(it);
  co_return Errno::ok;
}

sim::CoTask<Errno> MemVfs::rmdir(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) co_return Errno::no_entry;
  if (!it->second.is_dir) co_return Errno::not_dir;
  const std::string prefix = path + "/";
  for (auto& [p, node] : files_) {
    if (p.starts_with(prefix)) co_return Errno::not_empty;
  }
  files_.erase(it);
  co_return Errno::ok;
}

sim::CoTask<Errno> MemVfs::rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end()) co_return Errno::no_entry;
  auto dst = files_.find(to);
  if (dst != files_.end() && dst->second.is_dir) co_return Errno::is_dir;
  files_[to] = std::move(it->second);
  files_.erase(from);
  co_return Errno::ok;
}

}  // namespace daosim::posix
