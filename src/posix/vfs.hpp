// Vfs: the POSIX-style file interface the paper's upper layers consume.
// MPI-IO (src/mpiio) and H5Lite (src/h5) are written against this interface;
// in the benchmarks they run on DfuseMount (src/posix/dfuse.hpp), exactly as
// the paper runs MPI-I/O and HDF5 on a DFuse mount point. MemVfs is a
// zero-cost in-memory implementation for unit tests.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/co_task.hpp"

namespace daosim::posix {

using Fd = int;

struct VfsOpenFlags {
  bool create = false;
  bool excl = false;
  bool truncate = false;
  bool read_only = false;
  // DAOS extensions surfaced through dfuse mount options / ioctl:
  std::uint64_t chunk_size = 0;  // 0 = container default
  std::uint8_t oclass = 0;       // 0 = container default
};

struct VfsStat {
  bool is_dir = false;
  bool is_symlink = false;
  std::uint64_t size = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  virtual sim::CoTask<Result<Fd>> open(const std::string& path, VfsOpenFlags flags) = 0;
  virtual sim::CoTask<Errno> close(Fd fd) = 0;
  virtual sim::CoTask<Result<std::uint64_t>> pread(Fd fd, std::uint64_t offset,
                                                   std::span<std::byte> out) = 0;
  /// `data` may be empty (metadata-only benchmarking mode); `length` rules.
  virtual sim::CoTask<Result<std::uint64_t>> pwrite(Fd fd, std::uint64_t offset,
                                                    std::uint64_t length,
                                                    std::span<const std::byte> data) = 0;
  virtual sim::CoTask<Result<std::uint64_t>> fsize(Fd fd) = 0;
  virtual sim::CoTask<Errno> fsync(Fd fd) = 0;
  virtual sim::CoTask<Result<VfsStat>> stat(const std::string& path) = 0;
  virtual sim::CoTask<Errno> mkdir(const std::string& path) = 0;
  virtual sim::CoTask<Result<std::vector<std::string>>> readdir(const std::string& path) = 0;
  virtual sim::CoTask<Errno> unlink(const std::string& path) = 0;
  virtual sim::CoTask<Errno> rmdir(const std::string& path) = 0;
  virtual sim::CoTask<Errno> rename(const std::string& from, const std::string& to) = 0;
};

/// In-memory Vfs with POSIX semantics and zero simulated cost. Used by the
/// mpiio/h5 unit tests; the real benchmarks use DfuseMount.
class MemVfs final : public Vfs {
 public:
  sim::CoTask<Result<Fd>> open(const std::string& path, VfsOpenFlags flags) override;
  sim::CoTask<Errno> close(Fd fd) override;
  sim::CoTask<Result<std::uint64_t>> pread(Fd fd, std::uint64_t offset,
                                           std::span<std::byte> out) override;
  sim::CoTask<Result<std::uint64_t>> pwrite(Fd fd, std::uint64_t offset, std::uint64_t length,
                                            std::span<const std::byte> data) override;
  sim::CoTask<Result<std::uint64_t>> fsize(Fd fd) override;
  sim::CoTask<Errno> fsync(Fd fd) override;
  sim::CoTask<Result<VfsStat>> stat(const std::string& path) override;
  sim::CoTask<Errno> mkdir(const std::string& path) override;
  sim::CoTask<Result<std::vector<std::string>>> readdir(const std::string& path) override;
  sim::CoTask<Errno> unlink(const std::string& path) override;
  sim::CoTask<Errno> rmdir(const std::string& path) override;
  sim::CoTask<Errno> rename(const std::string& from, const std::string& to) override;

  std::size_t file_count() const { return files_.size(); }

 private:
  static Result<std::string> parent_of(const std::string& path);

  struct Node {
    bool is_dir = false;
    std::vector<std::byte> data;
  };
  std::map<std::string, Node> files_{{"/", Node{true, {}}}};
  std::map<Fd, std::string> fds_;
  Fd next_fd_ = 3;
};

}  // namespace daosim::posix
