// DfuseMount: the paper's DFuse — a FUSE daemon re-exporting DFS as a POSIX
// mount. Applications (IOR's POSIX backend, MPI-I/O, HDF5) issue ordinary
// file calls; each becomes one or more FUSE requests that pay a kernel
// round-trip and are serviced by a bounded daemon thread pool calling libdfs.
//
// Cost model per request:
//   caller  -> [kernel crossing + queueing]   (op_cost, serial per request)
//   daemon  -> thread-pool slot held while the DFS/libdaos call runs
//   kernel splits large reads/writes into max_request_bytes pieces and keeps
//   up to `kernel_window` of them in flight (async FUSE).
#pragma once

#include <map>
#include <memory>

#include "dfs/dfs.hpp"
#include "posix/vfs.hpp"
#include "sim/sync.hpp"

namespace daosim::posix {

struct DfuseConfig {
  std::uint64_t max_request_bytes = 1 << 20;  // FUSE_MAX_PAGES era default
  sim::Time op_cost = 35 * sim::kUs;          // user->kernel->daemon crossing
  std::uint32_t daemon_threads = 32;
  std::uint32_t kernel_window = 64;  // async FUSE in-flight requests per mount
};

class DfuseMount final : public Vfs {
 public:
  DfuseMount(sim::Scheduler& sched, dfs::DfsMount& dfs, DfuseConfig cfg = {});

  sim::CoTask<Result<Fd>> open(const std::string& path, VfsOpenFlags flags) override;
  sim::CoTask<Errno> close(Fd fd) override;
  sim::CoTask<Result<std::uint64_t>> pread(Fd fd, std::uint64_t offset,
                                           std::span<std::byte> out) override;
  sim::CoTask<Result<std::uint64_t>> pwrite(Fd fd, std::uint64_t offset, std::uint64_t length,
                                            std::span<const std::byte> data) override;
  sim::CoTask<Result<std::uint64_t>> fsize(Fd fd) override;
  sim::CoTask<Errno> fsync(Fd fd) override;
  sim::CoTask<Result<VfsStat>> stat(const std::string& path) override;
  sim::CoTask<Errno> mkdir(const std::string& path) override;
  sim::CoTask<Result<std::vector<std::string>>> readdir(const std::string& path) override;
  sim::CoTask<Errno> unlink(const std::string& path) override;
  sim::CoTask<Errno> rmdir(const std::string& path) override;
  sim::CoTask<Errno> rename(const std::string& from, const std::string& to) override;

  std::uint64_t requests_served() const { return requests_; }
  const DfuseConfig& config() const { return cfg_; }

 private:
  /// Charges one FUSE request's crossing cost and holds a daemon thread for
  /// the duration of `body`.
  sim::CoTask<void> request_gate_enter();
  void request_gate_exit();

  sim::CoTask<void> write_piece(Fd fd, std::uint64_t offset, std::uint64_t length,
                                std::span<const std::byte> data,
                                std::shared_ptr<Errno> status);
  sim::CoTask<void> read_piece(Fd fd, std::uint64_t offset, std::span<std::byte> out,
                               std::shared_ptr<Errno> status,
                               std::shared_ptr<std::uint64_t> filled);

  // Shared ownership mirrors the kernel's FUSE refcounting: a release() that
  // races an in-flight request drops the table entry, but the dfs::File stays
  // alive until the last suspended request holding it completes. Holding the
  // map iterator across a suspension instead was a use-after-free (a
  // concurrent close() erases the node and destroys the file mid-request).
  struct OpenFile {
    std::shared_ptr<dfs::File> file;
  };

  sim::Scheduler& sched_;
  dfs::DfsMount& dfs_;
  DfuseConfig cfg_;
  sim::Semaphore threads_;
  sim::Semaphore window_;
  std::map<Fd, OpenFile> fds_;
  Fd next_fd_ = 3;
  std::uint64_t requests_ = 0;
};

}  // namespace daosim::posix
