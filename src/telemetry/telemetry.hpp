// d_tm-style hierarchical telemetry: a path-addressed tree of counters,
// gauges, stat-gauges and duration histograms, one Registry root per engine,
// client, pool service and fabric, plus deterministic CSV/JSON exporters and
// a Chrome trace-event span sink. All instrumentation is passive — recording
// a metric never schedules an event, so enabling telemetry leaves
// Scheduler::trace_hash() and every simulated timing bit-identical.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace daosim::telemetry {

/// Causal trace context (trace_id / span_id / parent_id) threaded through the
/// request path. Defined in sim so SpanSink can carry it; re-exported here
/// because telemetry is its natural home for users.
using TraceContext = sim::TraceContext;

enum class Kind : std::uint8_t { counter, gauge, stat_gauge, histogram, probe };

const char* kind_name(Kind k);

/// One exported (field, preformatted value) pair of a node. Values are
/// formatted once, deterministically, so CSV and JSON dumps are byte-stable.
struct Field {
  const char* name;
  std::string value;
};

/// Base of every metric node in a Registry tree.
class Node {
 public:
  explicit Node(Kind k) : kind_(k) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Kind kind() const { return kind_; }
  /// Appends this node's fields in a fixed order.
  virtual void fields(std::vector<Field>& out) const = 0;

 private:
  Kind kind_;
};

/// Monotonic event count (d_tm counter).
class Counter final : public Node {
 public:
  Counter() : Node(Kind::counter) {}
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void fields(std::vector<Field>& out) const override;

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level with a high-water mark (d_tm gauge).
class Gauge final : public Node {
 public:
  Gauge() : Node(Kind::gauge) {}
  void set(std::int64_t v) {
    value_ = v;
    max_ = std::max(max_, v);
  }
  void add(std::int64_t d) { set(value_ + d); }
  std::int64_t value() const { return value_; }
  std::int64_t max_seen() const { return max_; }
  void fields(std::vector<Field>& out) const override;

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

/// Gauge with streaming statistics over every sampled level (d_tm stats
/// gauge); wraps the existing sim::Summary.
class StatGauge final : public Node {
 public:
  StatGauge() : Node(Kind::stat_gauge) {}
  void sample(double v) { stats_.add(v); }
  const sim::Summary& stats() const { return stats_; }
  void fields(std::vector<Field>& out) const override;

 private:
  sim::Summary stats_;
};

/// Fixed-bucket duration histogram over simulated nanoseconds: 65 log2
/// buckets (bucket k counts durations with bit_width k, i.e. [2^(k-1), 2^k)),
/// plus exact count/sum/min/max. Snapshots are plain values, so callers can
/// diff two snapshots to get a per-phase histogram.
class DurationHistogram final : public Node {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Value snapshot of a histogram; supports merge (+=), per-phase delta (-)
  /// and bucket-interpolated percentiles.
  struct State {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t min_ns = 0;  // meaningful only when count > 0
    std::uint64_t max_ns = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    State& operator+=(const State& o);
    /// Bucket-wise difference `*this - earlier`; min/max are not recoverable
    /// from a delta and come back as 0 (percentile() then clamps to bucket
    /// bounds only).
    State operator-(const State& earlier) const;
    double mean_ns() const { return count ? double(sum_ns) / double(count) : 0.0; }
    /// p in [0, 100]; linear interpolation inside the covering bucket,
    /// clamped to the exact min/max when they are known. 0.0 when empty.
    double percentile_ns(double p) const;
  };

  DurationHistogram() : Node(Kind::histogram) {}
  void record(sim::Time ns);
  const State& state() const { return s_; }
  State snapshot() const { return s_; }
  void fields(std::vector<Field>& out) const override;

 private:
  State s_;
};

/// Value polled at dump time from a callback — exports counters that live as
/// plain members elsewhere (VOS tree stats, pool-service task counts)
/// without coupling those layers to telemetry.
class Probe final : public Node {
 public:
  explicit Probe(std::function<std::uint64_t()> fn) : Node(Kind::probe), fn_(std::move(fn)) {}
  std::uint64_t value() const { return fn_(); }
  void fields(std::vector<Field>& out) const override;

 private:
  std::function<std::uint64_t()> fn_;
};

/// One metric tree root ("engine/3", "client/12", "pool/0", "fabric").
/// Nodes are addressed by '/'-separated paths below the root and stored in a
/// sorted map, so iteration — and therefore every dump — is deterministic.
class Registry {
 public:
  explicit Registry(std::string root) : root_(std::move(root)) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  const std::string& root() const { return root_; }

  /// Returns the node at `path`, creating it if absent. The only sanctioned
  /// way to materialize a metric (see the `untracked-metric` lint rule);
  /// rejects a path already holding a different kind.
  template <typename T>
  T& find_or_create(const std::string& path) {
    auto it = nodes_.find(path);
    if (it == nodes_.end()) it = nodes_.emplace(path, std::make_unique<T>()).first;
    T* p = dynamic_cast<T*>(it->second.get());
    DAOSIM_REQUIRE(p != nullptr, "telemetry node %s/%s already exists with kind %s",
                   root_.c_str(), path.c_str(), kind_name(it->second->kind()));
    return *p;
  }

  /// Probes carry a callback, so they get a dedicated registration.
  Probe& add_probe(const std::string& path, std::function<std::uint64_t()> fn);

  /// Lookup without creation; nullptr when absent or of another kind.
  template <typename T>
  const T* find(const std::string& path) const {
    const auto it = nodes_.find(path);
    return it == nodes_.end() ? nullptr : dynamic_cast<const T*>(it->second.get());
  }

  const std::map<std::string, std::unique_ptr<Node>>& nodes() const { return nodes_; }

 private:
  std::string root_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
};

enum class DumpFormat : std::uint8_t { csv, json };

/// Snapshot dump of a set of registries, rows sorted by full path
/// (`<root>/<path>`). Byte-identical across same-seed runs.
void write_csv(std::ostream& os, const std::vector<const Registry*>& regs);
void write_json(std::ostream& os, const std::vector<const Registry*>& regs);
void write_dump(std::ostream& os, const std::vector<const Registry*>& regs, DumpFormat fmt);

/// Span sink accumulating structured trace events, serializable as Chrome
/// trace-event JSON (chrome://tracing, Perfetto). Spans carry their causal
/// TraceContext; cross-process parent/child edges become Perfetto flow
/// events ("s"/"f") so the viewer draws arrows between nodes.
class TraceLog final : public sim::SpanSink {
 public:
  struct Span {
    const char* category;
    std::string name;
    std::uint32_t pid;
    std::uint64_t tid;
    sim::Time begin;
    sim::Time end;
    TraceContext ctx;
  };

  void span(const char* category, std::string name, std::uint32_t pid, std::uint64_t tid,
            sim::Time begin, sim::Time end, TraceContext ctx = {}) override;

  /// Labels a pid track in the viewer ("engine/3", "client/12").
  void set_process_name(std::uint32_t pid, std::string name);

  std::size_t size() const { return spans_.size(); }
  /// Count of recorded spans in `category`.
  std::size_t count(const std::string& category) const;
  const std::vector<Span>& spans() const { return spans_; }

  void write_chrome_json(std::ostream& os) const;

  // -- Critical-path attribution ------------------------------------------
  // Six pipeline stages; every span category maps to one. tools/
  // trace_analyze.py implements the identical segmentation so in-process and
  // offline breakdowns agree.
  static constexpr std::size_t kStages = 6;
  static const char* stage_name(std::size_t stage);
  /// Stage index for a span category ("rpc" -> fabric, "vos" -> vos, ...).
  /// Root/self categories ("op", "tx", "rebuild", "probe", ...) map to the
  /// client-queue stage — time no deeper span claims.
  static std::size_t stage_of(const char* category);

  struct StageBreakdown {
    std::array<std::uint64_t, kStages> ns{};
    std::uint64_t total_ns() const;
  };

  /// Attributes the wall time of trace `trace_id`'s root span to stages by
  /// segmenting the root interval at every span boundary and charging each
  /// segment to its deepest covering span (ties: later pipeline stage, then
  /// smaller span id). Segments always partition the root interval exactly,
  /// so the breakdown sums to the root's duration.
  StageBreakdown attribute(std::uint64_t trace_id) const;

  /// Per-op-name aggregate: every sampled "op" root span's breakdown, summed
  /// by op name ("arr_write", "kv_put", ...). One pass over the log (spans
  /// grouped by trace id), so profiling a whole IOR job is linear-ish rather
  /// than one full scan per op.
  struct OpProfile {
    std::uint64_t count = 0;
    StageBreakdown stages;  // summed over the ops; divide by count for means
  };
  std::map<std::string, OpProfile> profile_ops() const;

  /// Deterministic slow-op report: client "op" root spans at least
  /// `threshold` long, top `top_k` by (duration desc, begin asc, span id
  /// asc), each with its per-stage breakdown.
  void write_slow_ops(std::ostream& os, sim::Time threshold, std::size_t top_k) const;

  /// When false, spans without an active trace context are dropped at record
  /// time, bounding memory to the sampled traces (bench sweeps run with 1/N
  /// sampling and this off). Default keeps everything, as a raw span log.
  void set_keep_unsampled(bool keep) { keep_unsampled_ = keep; }

 private:
  std::vector<Span> spans_;
  std::map<std::uint32_t, std::string> process_names_;
  bool keep_unsampled_ = true;
};

}  // namespace daosim::telemetry
