#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cinttypes>

namespace daosim::telemetry {

namespace {

std::string u64_str(std::uint64_t v) { return strfmt("%" PRIu64, v); }
std::string i64_str(std::int64_t v) { return strfmt("%" PRId64, v); }

// %.17g round-trips every finite double bit-exactly, so formatting is as
// deterministic as the value itself.
std::string f64_str(double v) { return strfmt("%.17g", v); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Row {
  std::string path;  // <root>/<node path>
  Kind kind;
  std::vector<Field> fields;
};

std::vector<Row> flatten(const std::vector<const Registry*>& regs) {
  std::vector<Row> rows;
  for (const Registry* reg : regs) {
    if (reg == nullptr) continue;
    for (const auto& [path, node] : reg->nodes()) {
      Row r{reg->root() + "/" + path, node->kind(), {}};
      node->fields(r.fields);
      rows.push_back(std::move(r));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.path < b.path; });
  return rows;
}

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::counter: return "counter";
    case Kind::gauge: return "gauge";
    case Kind::stat_gauge: return "stat_gauge";
    case Kind::histogram: return "histogram";
    case Kind::probe: return "probe";
  }
  return "unknown";
}

void Counter::fields(std::vector<Field>& out) const {
  out.push_back({"value", u64_str(value_)});
}

void Gauge::fields(std::vector<Field>& out) const {
  out.push_back({"value", i64_str(value_)});
  out.push_back({"max", i64_str(max_)});
}

void StatGauge::fields(std::vector<Field>& out) const {
  const bool any = stats_.count() > 0;
  out.push_back({"count", u64_str(stats_.count())});
  out.push_back({"mean", f64_str(stats_.mean())});
  out.push_back({"min", f64_str(any ? stats_.min() : 0.0)});
  out.push_back({"max", f64_str(any ? stats_.max() : 0.0)});
}

DurationHistogram::State& DurationHistogram::State::operator+=(const State& o) {
  if (o.count > 0) {
    min_ns = count == 0 ? o.min_ns : std::min(min_ns, o.min_ns);
    max_ns = count == 0 ? o.max_ns : std::max(max_ns, o.max_ns);
  }
  count += o.count;
  sum_ns += o.sum_ns;
  for (std::size_t k = 0; k < kBuckets; ++k) buckets[k] += o.buckets[k];
  return *this;
}

DurationHistogram::State DurationHistogram::State::operator-(const State& earlier) const {
  DAOSIM_REQUIRE(count >= earlier.count && sum_ns >= earlier.sum_ns,
                 "histogram delta against a later snapshot");
  State d;
  d.count = count - earlier.count;
  d.sum_ns = sum_ns - earlier.sum_ns;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    DAOSIM_REQUIRE(buckets[k] >= earlier.buckets[k], "histogram delta bucket underflow");
    d.buckets[k] = buckets[k] - earlier.buckets[k];
  }
  return d;
}

double DurationHistogram::State::percentile_ns(double p) const {
  DAOSIM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (count == 0) return 0.0;
  const double rank = p / 100.0 * double(count - 1);  // 0-based sample rank
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (buckets[k] == 0) continue;
    if (double(seen + buckets[k] - 1) >= rank) {
      // Interpolate inside bucket k, whose durations have bit_width k.
      const double lo = k == 0 ? 0.0 : std::ldexp(1.0, int(k) - 1);
      const double hi = std::ldexp(1.0, int(k));
      const double frac =
          buckets[k] == 1 ? 0.0 : (rank - double(seen)) / double(buckets[k] - 1);
      double v = lo + frac * (hi - lo);
      if (max_ns > 0) v = std::min(v, double(max_ns));
      if (min_ns > 0) v = std::max(v, double(min_ns));
      return v;
    }
    seen += buckets[k];
  }
  return double(max_ns);
}

void DurationHistogram::record(sim::Time ns) {
  if (s_.count == 0) {
    s_.min_ns = ns;
    s_.max_ns = ns;
  } else {
    s_.min_ns = std::min(s_.min_ns, ns);
    s_.max_ns = std::max(s_.max_ns, ns);
  }
  ++s_.count;
  s_.sum_ns += ns;
  const std::size_t k = ns == 0 ? 0 : std::size_t(std::bit_width(ns));
  ++s_.buckets[std::min(k, kBuckets - 1)];
}

void DurationHistogram::fields(std::vector<Field>& out) const {
  out.push_back({"count", u64_str(s_.count)});
  out.push_back({"sum_ns", u64_str(s_.sum_ns)});
  out.push_back({"min_ns", u64_str(s_.count ? s_.min_ns : 0)});
  out.push_back({"max_ns", u64_str(s_.count ? s_.max_ns : 0)});
  out.push_back({"p50_ns", f64_str(s_.percentile_ns(50.0))});
  out.push_back({"p99_ns", f64_str(s_.percentile_ns(99.0))});
}

void Probe::fields(std::vector<Field>& out) const {
  out.push_back({"value", u64_str(fn_())});
}

Probe& Registry::add_probe(const std::string& path, std::function<std::uint64_t()> fn) {
  auto [it, inserted] = nodes_.emplace(path, std::make_unique<Probe>(std::move(fn)));
  DAOSIM_REQUIRE(inserted, "telemetry probe %s/%s already exists", root_.c_str(), path.c_str());
  return *static_cast<Probe*>(it->second.get());
}

void write_csv(std::ostream& os, const std::vector<const Registry*>& regs) {
  os << "path,kind,field,value\n";
  for (const Row& r : flatten(regs)) {
    for (const Field& f : r.fields) {
      os << r.path << ',' << kind_name(r.kind) << ',' << f.name << ',' << f.value << '\n';
    }
  }
}

void write_json(std::ostream& os, const std::vector<const Registry*>& regs) {
  os << "{\n";
  const std::vector<Row> rows = flatten(regs);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "  \"" << json_escape(r.path) << "\": {\"kind\": \"" << kind_name(r.kind) << '"';
    for (const Field& f : r.fields) os << ", \"" << f.name << "\": " << f.value;
    os << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  os << "}\n";
}

void write_dump(std::ostream& os, const std::vector<const Registry*>& regs, DumpFormat fmt) {
  if (fmt == DumpFormat::csv) {
    write_csv(os, regs);
  } else {
    write_json(os, regs);
  }
}

void TraceLog::span(const char* category, std::string name, std::uint32_t pid,
                    std::uint64_t tid, sim::Time begin, sim::Time end) {
  spans_.push_back({category, std::move(name), pid, tid, begin, end});
}

void TraceLog::set_process_name(std::uint32_t pid, std::string name) {
  process_names_[pid] = std::move(name);
}

std::size_t TraceLog::count(const std::string& category) const {
  std::size_t n = 0;
  for (const Span& s : spans_) n += category == s.category ? 1 : 0;
  return n;
}

void TraceLog::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    os << (first ? "" : ",\n") << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << pid << ", \"tid\": 0, \"args\": {\"name\": \"" << json_escape(name) << "\"}}";
    first = false;
  }
  for (const Span& s : spans_) {
    // Chrome trace timestamps are microseconds; keep ns precision as a
    // fraction. "X" is a complete (begin+duration) event.
    os << (first ? "" : ",\n") << "  {\"name\": \"" << json_escape(s.name) << "\", \"cat\": \""
       << s.category << "\", \"ph\": \"X\", \"ts\": " << f64_str(double(s.begin) / 1000.0)
       << ", \"dur\": " << f64_str(double(s.end - s.begin) / 1000.0) << ", \"pid\": " << s.pid
       << ", \"tid\": " << s.tid << "}";
    first = false;
  }
  os << "\n]}\n";
}

}  // namespace daosim::telemetry
