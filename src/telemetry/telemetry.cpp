#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cinttypes>
#include <string_view>

namespace daosim::telemetry {

namespace {

std::string u64_str(std::uint64_t v) { return strfmt("%" PRIu64, v); }
std::string i64_str(std::int64_t v) { return strfmt("%" PRId64, v); }

// %.17g round-trips every finite double bit-exactly, so formatting is as
// deterministic as the value itself.
std::string f64_str(double v) { return strfmt("%.17g", v); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Row {
  std::string path;  // <root>/<node path>
  Kind kind;
  std::vector<Field> fields;
};

std::vector<Row> flatten(const std::vector<const Registry*>& regs) {
  std::vector<Row> rows;
  for (const Registry* reg : regs) {
    if (reg == nullptr) continue;
    for (const auto& [path, node] : reg->nodes()) {
      Row r{reg->root() + "/" + path, node->kind(), {}};
      node->fields(r.fields);
      rows.push_back(std::move(r));
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.path < b.path; });
  return rows;
}

}  // namespace

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::counter: return "counter";
    case Kind::gauge: return "gauge";
    case Kind::stat_gauge: return "stat_gauge";
    case Kind::histogram: return "histogram";
    case Kind::probe: return "probe";
  }
  return "unknown";
}

void Counter::fields(std::vector<Field>& out) const {
  out.push_back({"value", u64_str(value_)});
}

void Gauge::fields(std::vector<Field>& out) const {
  out.push_back({"value", i64_str(value_)});
  out.push_back({"max", i64_str(max_)});
}

void StatGauge::fields(std::vector<Field>& out) const {
  const bool any = stats_.count() > 0;
  out.push_back({"count", u64_str(stats_.count())});
  out.push_back({"mean", f64_str(stats_.mean())});
  out.push_back({"min", f64_str(any ? stats_.min() : 0.0)});
  out.push_back({"max", f64_str(any ? stats_.max() : 0.0)});
}

DurationHistogram::State& DurationHistogram::State::operator+=(const State& o) {
  if (o.count > 0) {
    min_ns = count == 0 ? o.min_ns : std::min(min_ns, o.min_ns);
    max_ns = count == 0 ? o.max_ns : std::max(max_ns, o.max_ns);
  }
  count += o.count;
  sum_ns += o.sum_ns;
  for (std::size_t k = 0; k < kBuckets; ++k) buckets[k] += o.buckets[k];
  return *this;
}

DurationHistogram::State DurationHistogram::State::operator-(const State& earlier) const {
  DAOSIM_REQUIRE(count >= earlier.count && sum_ns >= earlier.sum_ns,
                 "histogram delta against a later snapshot");
  State d;
  d.count = count - earlier.count;
  d.sum_ns = sum_ns - earlier.sum_ns;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    DAOSIM_REQUIRE(buckets[k] >= earlier.buckets[k], "histogram delta bucket underflow");
    d.buckets[k] = buckets[k] - earlier.buckets[k];
  }
  return d;
}

double DurationHistogram::State::percentile_ns(double p) const {
  DAOSIM_REQUIRE(p >= 0.0 && p <= 100.0, "percentile out of range");
  if (count == 0) return 0.0;
  const double rank = p / 100.0 * double(count - 1);  // 0-based sample rank
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (buckets[k] == 0) continue;
    if (double(seen + buckets[k] - 1) >= rank) {
      // Interpolate inside bucket k, whose durations have bit_width k.
      const double lo = k == 0 ? 0.0 : std::ldexp(1.0, int(k) - 1);
      const double hi = std::ldexp(1.0, int(k));
      const double frac =
          buckets[k] == 1 ? 0.0 : (rank - double(seen)) / double(buckets[k] - 1);
      double v = lo + frac * (hi - lo);
      if (max_ns > 0) v = std::min(v, double(max_ns));
      if (min_ns > 0) v = std::max(v, double(min_ns));
      return v;
    }
    seen += buckets[k];
  }
  return double(max_ns);
}

void DurationHistogram::record(sim::Time ns) {
  if (s_.count == 0) {
    s_.min_ns = ns;
    s_.max_ns = ns;
  } else {
    s_.min_ns = std::min(s_.min_ns, ns);
    s_.max_ns = std::max(s_.max_ns, ns);
  }
  ++s_.count;
  s_.sum_ns += ns;
  const std::size_t k = ns == 0 ? 0 : std::size_t(std::bit_width(ns));
  ++s_.buckets[std::min(k, kBuckets - 1)];
}

void DurationHistogram::fields(std::vector<Field>& out) const {
  out.push_back({"count", u64_str(s_.count)});
  out.push_back({"sum_ns", u64_str(s_.sum_ns)});
  out.push_back({"min_ns", u64_str(s_.count ? s_.min_ns : 0)});
  out.push_back({"max_ns", u64_str(s_.count ? s_.max_ns : 0)});
  out.push_back({"p50_ns", f64_str(s_.percentile_ns(50.0))});
  out.push_back({"p99_ns", f64_str(s_.percentile_ns(99.0))});
  // Log2 bucket vector, trimmed to the last occupied bucket (a JSON array;
  // the CSV writer quotes it). tools/metrics_diff.py diffs these
  // element-wise, so percentile shifts are explainable bucket by bucket.
  std::size_t last = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    if (s_.buckets[k] > 0) last = k + 1;
  }
  std::string b = "[";
  for (std::size_t k = 0; k < last; ++k) {
    if (k > 0) b += ',';
    b += u64_str(s_.buckets[k]);
  }
  b += ']';
  out.push_back({"buckets", std::move(b)});
}

void Probe::fields(std::vector<Field>& out) const {
  out.push_back({"value", u64_str(fn_())});
}

Probe& Registry::add_probe(const std::string& path, std::function<std::uint64_t()> fn) {
  auto [it, inserted] = nodes_.emplace(path, std::make_unique<Probe>(std::move(fn)));
  DAOSIM_REQUIRE(inserted, "telemetry probe %s/%s already exists", root_.c_str(), path.c_str());
  return *static_cast<Probe*>(it->second.get());
}

namespace {

// RFC 4180 quoting for values embedding commas/quotes (histogram bucket
// arrays); plain values pass through untouched so existing dumps are stable.
std::string csv_field(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_csv(std::ostream& os, const std::vector<const Registry*>& regs) {
  os << "path,kind,field,value\n";
  for (const Row& r : flatten(regs)) {
    for (const Field& f : r.fields) {
      os << r.path << ',' << kind_name(r.kind) << ',' << f.name << ',' << csv_field(f.value)
         << '\n';
    }
  }
}

void write_json(std::ostream& os, const std::vector<const Registry*>& regs) {
  os << "{\n";
  const std::vector<Row> rows = flatten(regs);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "  \"" << json_escape(r.path) << "\": {\"kind\": \"" << kind_name(r.kind) << '"';
    for (const Field& f : r.fields) os << ", \"" << f.name << "\": " << f.value;
    os << (i + 1 < rows.size() ? "},\n" : "}\n");
  }
  os << "}\n";
}

void write_dump(std::ostream& os, const std::vector<const Registry*>& regs, DumpFormat fmt) {
  if (fmt == DumpFormat::csv) {
    write_csv(os, regs);
  } else {
    write_json(os, regs);
  }
}

void TraceLog::span(const char* category, std::string name, std::uint32_t pid,
                    std::uint64_t tid, sim::Time begin, sim::Time end, TraceContext ctx) {
  if (!keep_unsampled_ && !ctx.active()) return;
  spans_.push_back({category, std::move(name), pid, tid, begin, end, ctx});
}

void TraceLog::set_process_name(std::uint32_t pid, std::string name) {
  process_names_[pid] = std::move(name);
}

std::size_t TraceLog::count(const std::string& category) const {
  std::size_t n = 0;
  for (const Span& s : spans_) n += category == s.category ? 1 : 0;
  return n;
}

void TraceLog::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    os << (first ? "" : ",\n") << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << pid << ", \"tid\": 0, \"args\": {\"name\": \"" << json_escape(name) << "\"}}";
    first = false;
  }
  for (const Span& s : spans_) {
    // Chrome trace timestamps are microseconds; keep ns precision as a
    // fraction. "X" is a complete (begin+duration) event. Traced spans carry
    // their causal ids in args so offline tools can rebuild the tree.
    os << (first ? "" : ",\n") << "  {\"name\": \"" << json_escape(s.name) << "\", \"cat\": \""
       << s.category << "\", \"ph\": \"X\", \"ts\": " << f64_str(double(s.begin) / 1000.0)
       << ", \"dur\": " << f64_str(double(s.end - s.begin) / 1000.0) << ", \"pid\": " << s.pid
       << ", \"tid\": " << s.tid;
    if (s.ctx.active()) {
      os << ", \"args\": {\"trace\": " << s.ctx.trace_id << ", \"span\": " << s.ctx.span_id
         << ", \"parent\": " << s.ctx.parent_id << "}";
    }
    os << "}";
    first = false;
  }
  // Flow events: one "s"/"f" pair per cross-process parent/child edge, so
  // Perfetto draws an arrow from the parent's track to the child's. The flow
  // id is the child's span id (unique per edge).
  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& s : spans_) {
    if (s.ctx.active()) by_id.emplace(s.ctx.span_id, &s);
  }
  for (const Span& s : spans_) {
    if (!s.ctx.active() || s.ctx.parent_id == 0) continue;
    const auto it = by_id.find(s.ctx.parent_id);
    if (it == by_id.end() || it->second->pid == s.pid) continue;
    const Span& p = *it->second;
    const std::string ts = f64_str(double(s.begin) / 1000.0);
    os << (first ? "" : ",\n") << "  {\"name\": \"flow\", \"cat\": \"trace\", \"ph\": \"s\", "
       << "\"id\": " << s.ctx.span_id << ", \"pid\": " << p.pid << ", \"tid\": " << p.tid
       << ", \"ts\": " << ts << "},\n"
       << "  {\"name\": \"flow\", \"cat\": \"trace\", \"ph\": \"f\", \"bp\": \"e\", \"id\": "
       << s.ctx.span_id << ", \"pid\": " << s.pid << ", \"tid\": " << s.tid
       << ", \"ts\": " << ts << "}";
    first = false;
  }
  os << "\n]}\n";
}

const char* TraceLog::stage_name(std::size_t stage) {
  static constexpr const char* kNames[kStages] = {"client-queue", "fabric", "engine-queue",
                                                  "service",      "vos",    "media"};
  DAOSIM_REQUIRE(stage < kStages, "stage index %zu out of range", stage);
  return kNames[stage];
}

std::size_t TraceLog::stage_of(const char* category) {
  const std::string_view c = category;
  if (c == "rpc" || c == "xfer") return 1;  // fabric
  if (c == "queue") return 2;               // engine-queue
  if (c == "svc") return 3;                 // service
  if (c == "vos") return 4;                 // vos
  if (c == "media") return 5;               // media
  // op / batch / credit / retry and background roots (tx, rebuild, probe):
  // client-side or self time, claimed only when no deeper span covers it.
  return 0;
}

std::uint64_t TraceLog::StageBreakdown::total_ns() const {
  std::uint64_t t = 0;
  for (const std::uint64_t v : ns) t += v;
  return t;
}

namespace {

/// Stage breakdown of one trace's spans (keyed by span id — sorted, so the
/// tie-breaks below are deterministic and "smaller span id wins" falls out
/// of iteration order). Shared by attribute() and profile_ops().
TraceLog::StageBreakdown attribute_group(const std::map<std::uint64_t, const TraceLog::Span*>& by_id,
                                         const TraceLog::Span* root) {
  using Span = TraceLog::Span;
  TraceLog::StageBreakdown out;
  if (root == nullptr) return out;
  // Depth (hops to the root) decides segment ownership: deepest span wins.
  std::map<std::uint64_t, std::size_t> depth;
  for (const auto& [id, sp] : by_id) {
    std::size_t d = 0;
    const Span* cur = sp;
    while (cur->ctx.parent_id != 0 && d <= by_id.size()) {
      const auto it = by_id.find(cur->ctx.parent_id);
      if (it == by_id.end()) break;  // orphan: treat its link as the root
      cur = it->second;
      ++d;
    }
    depth[id] = d;
  }
  // Segment the root interval at every span boundary; charge each segment to
  // the deepest covering span (tie: later stage, then smaller span id). The
  // segments partition [root.begin, root.end], so stage times sum exactly to
  // the root duration.
  std::vector<sim::Time> cuts{root->begin, root->end};
  for (const auto& [id, sp] : by_id) {
    if (sp->begin > root->begin && sp->begin < root->end) cuts.push_back(sp->begin);
    if (sp->end > root->begin && sp->end < root->end) cuts.push_back(sp->end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const sim::Time a = cuts[i];
    const sim::Time b = cuts[i + 1];
    std::size_t win_stage = 0;
    std::size_t win_depth = 0;
    bool found = false;
    for (const auto& [id, sp] : by_id) {
      if (sp->begin > a || sp->end < b) continue;  // does not cover [a, b]
      const std::size_t d = depth[id];
      const std::size_t st = TraceLog::stage_of(sp->category);
      if (!found || d > win_depth || (d == win_depth && st > win_stage)) {
        found = true;
        win_depth = d;
        win_stage = st;
      }
    }
    out.ns[win_stage] += b - a;  // the root always covers, so found holds
  }
  return out;
}

}  // namespace

TraceLog::StageBreakdown TraceLog::attribute(std::uint64_t trace_id) const {
  std::map<std::uint64_t, const Span*> by_id;
  const Span* root = nullptr;
  for (const Span& s : spans_) {
    if (s.ctx.trace_id != trace_id || !s.ctx.active()) continue;
    by_id.emplace(s.ctx.span_id, &s);
    if (s.ctx.parent_id == 0) root = &s;
  }
  return attribute_group(by_id, root);
}

std::map<std::string, TraceLog::OpProfile> TraceLog::profile_ops() const {
  // Group spans by trace id once, then attribute each sampled op's tree.
  std::map<std::uint64_t, std::map<std::uint64_t, const Span*>> traces;
  std::map<std::uint64_t, const Span*> roots;
  for (const Span& s : spans_) {
    if (!s.ctx.active()) continue;
    traces[s.ctx.trace_id].emplace(s.ctx.span_id, &s);
    if (s.ctx.parent_id == 0 && std::string_view(s.category) == "op") {
      roots[s.ctx.trace_id] = &s;
    }
  }
  std::map<std::string, OpProfile> out;
  for (const auto& [trace_id, root] : roots) {
    const StageBreakdown bd = attribute_group(traces[trace_id], root);
    OpProfile& p = out[root->name];
    ++p.count;
    for (std::size_t st = 0; st < kStages; ++st) p.stages.ns[st] += bd.ns[st];
  }
  return out;
}

void TraceLog::write_slow_ops(std::ostream& os, sim::Time threshold, std::size_t top_k) const {
  std::vector<const Span*> ops;
  for (const Span& s : spans_) {
    if (std::string_view(s.category) == "op" && s.ctx.active() && s.ctx.parent_id == 0 &&
        s.end - s.begin >= threshold) {
      ops.push_back(&s);
    }
  }
  std::sort(ops.begin(), ops.end(), [](const Span* a, const Span* b) {
    const sim::Time da = a->end - a->begin;
    const sim::Time db = b->end - b->begin;
    if (da != db) return da > db;
    if (a->begin != b->begin) return a->begin < b->begin;
    return a->ctx.span_id < b->ctx.span_id;
  });
  if (ops.size() > top_k) ops.resize(top_k);
  os << "slow ops >= " << threshold << " ns: " << ops.size() << "\n";
  for (const Span* sp : ops) {
    const StageBreakdown bd = attribute(sp->ctx.trace_id);
    os << strfmt("  trace %" PRIu64 " pid %u %s: %" PRIu64 " ns", sp->ctx.trace_id, sp->pid,
                 sp->name.c_str(), sp->end - sp->begin);
    for (std::size_t st = 0; st < kStages; ++st) {
      os << strfmt(" | %s %" PRIu64, stage_name(st), bd.ns[st]);
    }
    os << "\n";
  }
}

}  // namespace daosim::telemetry
