// Engine-side background aggregation service: incrementally flattens each
// local VOS shard's committed epoch history into single-version extents,
// reclaiming version-stack depth so sustained overwrite traffic keeps O(log n)
// read-side visibility resolution instead of accreting an ever-deeper history.
//
// The service only ever merges strictly below a safety floor it derives per
// pass:
//   floor = min( shard epoch clock at collection,
//                oldest container snapshot - 1   (pool-service snap_list),
//                rebuild min_resync_floor()      (restart/resync epoch marks),
//                dtx_min_prepared_epoch() - 1    (clamped inside VOS) )
// so snapshot reads, in-flight transactions, and rebuild's epoch-diff resync
// all see byte-identical history before and after a pass. See docs/vos.md.
//
// Throttling mirrors the rebuild/DTX services: a tick-driven loop with a
// per-pass shard credit, every descent and rewrite charged through the
// engine's xstream + media path so aggregation shares bandwidth with
// foreground I/O. Disabled (the default) the service spawns nothing and
// registers no metrics: same-seed traces are bit-identical to a build
// without it.
#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "rebuild/rebuild.hpp"

namespace daosim::agg {

struct AggConfig {
  /// Master switch. Off (default) = the service never runs and never touches
  /// telemetry, keeping pre-existing same-seed traces bit-identical.
  bool enabled = false;
  /// Pass period per engine.
  sim::Time tick = 500 * sim::kMs;
  /// Credit cap: container shards aggregated per pass. A persistent cursor
  /// round-robins the remainder across passes so every shard is eventually
  /// visited even when the credit is smaller than the shard count.
  std::uint32_t shards_per_run = 4;
};

class AggregationService {
 public:
  /// @param rebuild    this engine's rebuild service (resync floor source);
  ///                   may be null in minimal harnesses (no floor constraint)
  /// @param svc_nodes  pool-service replica nodes for snap_list queries;
  ///                   empty disables the snapshot floor (no snapshots exist
  ///                   without a pool service to create them)
  AggregationService(engine::Engine& eng, rebuild::RebuildService* rebuild,
                     std::vector<net::NodeId> svc_nodes, AggConfig cfg = {});
  AggregationService(const AggregationService&) = delete;
  AggregationService& operator=(const AggregationService&) = delete;

  /// Spawns the aggregation loop (idempotent; no-op unless cfg.enabled).
  void start();
  void stop();

  /// Called by the harness when this engine comes back up after a crash.
  /// Passes are shard-atomic (the merge itself never suspends), so recovery
  /// is just dropping the cached pool-service leader hint; the loop resumes
  /// from its cursor on the next tick.
  void note_restart();

  const AggConfig& config() const { return cfg_; }
  std::uint64_t runs() const;
  std::uint64_t extents_retired() const;
  std::uint64_t bytes_flattened() const;
  std::uint64_t deferred_on_floor() const;

 private:
  /// One shard picked up by a pass, copied out of VOS so RPC and media
  /// suspensions never span a container reference.
  struct ShardItem {
    std::uint32_t target = 0;  // local target index
    vos::Uuid cont;
    vos::Epoch epoch_clock = 0;  // shard clock at collection time
  };

  sim::CoTask<void> agg_loop();
  sim::CoTask<void> run_pass();
  std::vector<ShardItem> collect_shards() const;
  /// Highest epoch the container's snapshots allow aggregating to:
  /// vos::kEpochMax when unconstrained (no snapshots, or the pool service
  /// never saw the container), nullopt when the service is unreachable —
  /// absence of evidence is not a license to merge.
  sim::CoTask<std::optional<vos::Epoch>> snapshot_ceiling(vos::Uuid cont);
  /// The shard-atomic merge itself, isolated in a plain function so no
  /// container reference exists inside the coroutine frame.
  vos::VosContainer::AggregateResult aggregate_shard(std::uint32_t target, const vos::Uuid& cont,
                                                     vos::Epoch upto);

  engine::Engine& eng_;
  sim::Scheduler& sched_;
  rebuild::RebuildService* rebuild_;
  std::vector<net::NodeId> svc_nodes_;
  std::optional<net::NodeId> svc_hint_;  // last pool-service leader that answered
  AggConfig cfg_;
  bool running_ = false;
  bool passing_ = false;
  /// Last shard aggregated: the next pass resumes strictly after it (in
  /// (target, uuid) order, wrapping), so a small credit still covers every
  /// shard deterministically.
  std::optional<std::pair<std::uint32_t, vos::Uuid>> cursor_;
  // Metrics live under "engine/<node>/vos/agg/..." — created only when the
  // service is enabled so disabled runs dump identical metric trees.
  telemetry::Counter* runs_ = nullptr;
  telemetry::Counter* retired_ = nullptr;
  telemetry::Counter* flattened_ = nullptr;
  telemetry::Counter* deferred_ = nullptr;
  telemetry::Gauge* floor_epoch_ = nullptr;
};

}  // namespace daosim::agg
