#include "agg/agg.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace daosim::agg {

using net::Body;
using net::Reply;

namespace {
// Trace tag folded into the deterministic run hash, one note per aggregated
// shard (0xFA17E00E; DTX owns ..E009-E00D). Emitted only when the service is
// enabled, so the knob perturbs the trace and "off" stays bit-identical.
constexpr std::uint64_t kTraceAgg = 0xFA17E00E'0000'0000ULL;

// Pool-service snap_list: bounded attempts per shard; a failed query defers
// the shard (deferred_on_floor) and the next pass asks again.
constexpr int kSnapQueryAttempts = 3;
constexpr sim::Time kSnapQueryRetryDelay = 50 * sim::kMs;
constexpr std::uint64_t kSnapQueryWireBytes = 128;

// Media charge for walking a shard's object/dkey/akey trees before merging
// (the pass's read-side cost even when nothing is retired).
constexpr std::uint64_t kDescentBytes = 256;
}  // namespace

AggregationService::AggregationService(engine::Engine& eng, rebuild::RebuildService* rebuild,
                                       std::vector<net::NodeId> svc_nodes, AggConfig cfg)
    : eng_(eng),
      sched_(eng.endpoint().domain().scheduler()),
      rebuild_(rebuild),
      svc_nodes_(std::move(svc_nodes)),
      cfg_(cfg) {
  if (!cfg_.enabled) return;  // keep the metric tree untouched when off
  telemetry::Registry& reg = eng_.telemetry();
  runs_ = &reg.find_or_create<telemetry::Counter>("vos/agg/runs");
  retired_ = &reg.find_or_create<telemetry::Counter>("vos/agg/extents_retired");
  flattened_ = &reg.find_or_create<telemetry::Counter>("vos/agg/bytes_flattened");
  deferred_ = &reg.find_or_create<telemetry::Counter>("vos/agg/deferred_on_floor");
  floor_epoch_ = &reg.find_or_create<telemetry::Gauge>("vos/agg/floor_epoch");
}

std::uint64_t AggregationService::runs() const { return runs_ ? runs_->value() : 0; }
std::uint64_t AggregationService::extents_retired() const {
  return retired_ ? retired_->value() : 0;
}
std::uint64_t AggregationService::bytes_flattened() const {
  return flattened_ ? flattened_->value() : 0;
}
std::uint64_t AggregationService::deferred_on_floor() const {
  return deferred_ ? deferred_->value() : 0;
}

void AggregationService::start() {
  if (!cfg_.enabled || running_) return;
  running_ = true;
  sim::CoTask<void> loop = agg_loop();
  sched_.spawn(std::move(loop));
}

void AggregationService::stop() { running_ = false; }

void AggregationService::note_restart() {
  // The pool-service leader may have moved while this engine was down.
  svc_hint_.reset();
}

sim::CoTask<void> AggregationService::agg_loop() {
  while (running_) {
    co_await sched_.delay(cfg_.tick);
    if (!running_) break;
    if (eng_.endpoint().is_down()) continue;  // crashed engines idle until restart
    co_await run_pass();
  }
}

std::vector<AggregationService::ShardItem> AggregationService::collect_shards() const {
  std::vector<ShardItem> items;
  for (std::uint32_t t = 0; t < eng_.target_count(); ++t) {
    vos::VosTarget& vt = eng_.vos_target(t);
    for (const vos::Uuid& uuid : vt.list_containers()) {
      const vos::VosContainer* cont = vt.find_container(uuid);
      if (cont == nullptr || cont->current_epoch() == 0) continue;
      items.push_back(ShardItem{t, uuid, cont->current_epoch()});
    }
  }
  return items;  // (target, uuid) order: targets ascending, uuids map-sorted
}

vos::VosContainer::AggregateResult AggregationService::aggregate_shard(std::uint32_t target,
                                                                       const vos::Uuid& cont,
                                                                       vos::Epoch upto) {
  return eng_.vos_target(target).container(cont).aggregate(upto);
}

sim::CoTask<void> AggregationService::run_pass() {
  if (passing_) co_return;  // a slow pass outliving its tick never doubles up
  passing_ = true;
  // Copy the worklist out of VOS first: snap_list RPCs and media charges
  // suspend, and no container reference may live across those suspensions.
  const std::vector<ShardItem> items = collect_shards();
  // Resume strictly after the cursor (wrapping) so a credit smaller than the
  // shard count still visits every shard across consecutive passes.
  std::size_t start = 0;
  if (cursor_) {
    while (start < items.size() &&
           std::pair(items[start].target, items[start].cont) <= *cursor_) {
      ++start;
    }
  }
  // Snapshot ceilings are per container, not per shard: query each uuid once
  // per pass and share the answer across its target shards.
  std::map<vos::Uuid, std::optional<vos::Epoch>> snap_cache;
  std::uint32_t credits = cfg_.shards_per_run;
  for (std::size_t i = 0; i < items.size() && credits > 0; ++i) {
    const ShardItem& item = items[(start + i) % items.size()];
    if (!running_ || eng_.endpoint().is_down()) break;  // stopped or crashed mid-pass
    std::optional<vos::Epoch> ceiling;
    if (const auto sit = snap_cache.find(item.cont); sit != snap_cache.end()) {
      ceiling = sit->second;
    } else {
      ceiling = co_await snapshot_ceiling(item.cont);
      snap_cache[item.cont] = ceiling;
    }
    if (!ceiling) {
      // Pool service unreachable: the snapshot floor is unknown, and merging
      // on a guess could destroy history a snapshot still pins.
      if (deferred_) deferred_->inc();
      continue;
    }
    vos::Epoch upto = std::min(item.epoch_clock, *ceiling);
    if (rebuild_ != nullptr) upto = std::min(upto, rebuild_->min_resync_floor());
    if (upto == 0) {
      if (deferred_) deferred_->inc();
      continue;
    }
    --credits;
    cursor_ = {item.target, item.cont};
    // Walking the shard's index trees reads media through the target's
    // xstream, sharing bandwidth with foreground I/O.
    co_await eng_.rebuild_read(item.target, kDescentBytes);
    if (eng_.endpoint().is_down()) break;  // crashed during the descent
    // The merge itself is shard-atomic: no suspension between the container
    // lookup and the aggregate (aggregate_shard holds the only reference).
    // VOS clamps `upto` below the oldest prepared DTX epoch internally.
    const vos::VosContainer::AggregateResult r = aggregate_shard(item.target, item.cont, upto);
    if (floor_epoch_) floor_epoch_->set(static_cast<std::int64_t>(r.upto));
    if (r.extents_retired > 0) {
      if (retired_) retired_->inc(r.extents_retired);
      if (flattened_) flattened_->inc(r.bytes_flattened);
      // Rewriting the merged extents is a media write on the same target.
      co_await eng_.rebuild_write(item.target, r.bytes_flattened + 64);
    }
    sched_.trace_note(kTraceAgg ^ (std::uint64_t(item.target) << 40) ^ item.cont.lo ^ r.upto);
  }
  if (runs_) runs_->inc();
  passing_ = false;
}

sim::CoTask<std::optional<vos::Epoch>> AggregationService::snapshot_ceiling(vos::Uuid cont) {
  // No pool service wired (minimal harness): nothing can create snapshots.
  if (svc_nodes_.empty()) co_return vos::kEpochMax;
  // The same snap_list command the client's cont_aggregate issues, with the
  // usual leader-hint redirect dance (see DtxService::engine_excluded).
  for (int attempt = 0; attempt < kSnapQueryAttempts; ++attempt) {
    const net::NodeId dst =
        svc_hint_ ? *svc_hint_ : svc_nodes_[std::size_t(attempt) % svc_nodes_.size()];
    engine::PoolSvcReq preq{strfmt("snap_list %llu %llu",
                                   static_cast<unsigned long long>(cont.hi),
                                   static_cast<unsigned long long>(cont.lo))};
    Body body = Body::make(std::move(preq));
    Reply r = co_await eng_.endpoint().call(dst, engine::kOpPoolSvc, std::move(body),
                                            kSnapQueryWireBytes);
    if (r.status == Errno::ok) {
      svc_hint_ = dst;
      std::istringstream is(r.body.get<engine::PoolSvcResp>().response);
      std::string status;
      is >> status;
      // ENOENT = the pool service never saw this container (created outside
      // cont_create): no snapshot can exist for it either.
      if (status == "ENOENT") co_return vos::kEpochMax;
      if (status != "ok") co_return std::nullopt;
      std::size_t n = 0;
      is >> n;
      if (n == 0) co_return vos::kEpochMax;
      vos::Epoch min_snap = 0;
      is >> min_snap;  // epochs arrive sorted ascending
      co_return min_snap == 0 ? 0 : min_snap - 1;  // never merge across a snapshot
    }
    svc_hint_.reset();
    if (r.status == Errno::again && r.body.has_value()) {
      svc_hint_ = r.body.get<engine::PoolSvcResp>().leader_hint;
    }
    co_await sched_.delay(kSnapQueryRetryDelay);
  }
  co_return std::nullopt;  // unreachable: not authoritative, defer the shard
}

}  // namespace daosim::agg
