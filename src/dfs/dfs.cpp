#include "dfs/dfs.hpp"

#include <cstring>

namespace daosim::dfs {

using client::ArrayObject;
using client::KvObject;
using client::ObjClass;

namespace {
/// Root directory object: sequence 0 (the allocator hands out >= 1).
vos::ObjId root_oid() { return client::make_oid(0, kDirObjClass); }

constexpr std::uint64_t kOidBatch = 1024;
inline const vos::Key kSuperblockDkey = "__dfs_superblock__";
inline const std::string kSbMagic = "DFS1";
}  // namespace

// ---------------------------------------------------------------------------
// Dirent codec (fixed little-endian layout + symlink tail)

std::vector<std::byte> DfsMount::encode(const Dirent& e) {
  std::vector<std::byte> out(8 + 8 + 1 + 8 + 1 + e.symlink_target.size());
  std::size_t p = 0;
  auto put64 = [&](std::uint64_t v) {
    std::memcpy(out.data() + p, &v, 8);
    p += 8;
  };
  put64(e.oid.hi);
  put64(e.oid.lo);
  out[p++] = std::byte(e.type);
  put64(e.chunk_size);
  out[p++] = std::byte(e.oclass);
  std::memcpy(out.data() + p, e.symlink_target.data(), e.symlink_target.size());
  return out;
}

Dirent DfsMount::decode(std::span<const std::byte> raw) {
  DAOSIM_REQUIRE(raw.size() >= 26, "corrupt dirent (%zu bytes)", raw.size());
  Dirent e;
  std::size_t p = 0;
  auto get64 = [&] {
    std::uint64_t v;
    std::memcpy(&v, raw.data() + p, 8);
    p += 8;
    return v;
  };
  e.oid.hi = get64();
  e.oid.lo = get64();
  e.type = FileType(raw[p++]);
  e.chunk_size = get64();
  e.oclass = std::uint8_t(raw[p++]);
  e.symlink_target.assign(reinterpret_cast<const char*>(raw.data() + p), raw.size() - p);
  return e;
}

// ---------------------------------------------------------------------------
// Mount

DfsMount::DfsMount(client::DaosClient& client, vos::Uuid cont, pool::ContProps props)
    : client_(client), cont_(cont), props_(props) {
  if (props_.chunk_size == 0) props_.chunk_size = 1 << 20;
  if (props_.oclass >= 1 && props_.oclass <= 5) {
    default_oclass_ = ObjClass(props_.oclass);
  }
  root_ = Dirent{root_oid(), FileType::directory, 0, std::uint8_t(kDirObjClass), {}};
}

sim::CoTask<Result<std::unique_ptr<DfsMount>>> DfsMount::mount(client::DaosClient& client,
                                                               vos::Uuid cont) {
  auto info = co_await client.cont_open(cont);
  if (!info.ok()) co_return info.error();
  auto m = std::unique_ptr<DfsMount>(new DfsMount(client, cont, info->props));
  // Superblock: a KV record on the root object; created on first mount.
  KvObject rootobj(client, cont, root_oid());
  auto sb = co_await rootobj.get(kSuperblockDkey, kEntryAkey);
  if (!sb.ok()) {
    if (sb.error() != Errno::no_entry) co_return sb.error();
    std::vector<std::byte> magic(kSbMagic.size());
    std::memcpy(magic.data(), kSbMagic.data(), kSbMagic.size());
    const Errno put = co_await rootobj.put(kSuperblockDkey, kEntryAkey, magic);
    if (put != Errno::ok) co_return put;
  }
  co_return std::move(m);
}

// ---------------------------------------------------------------------------
// Path handling

Result<std::vector<std::string>> DfsMount::split(const std::string& path) {
  if (path.empty() || path[0] != '/') return Errno::invalid;
  std::vector<std::string> comps;
  std::size_t i = 1;
  while (i < path.size()) {
    std::size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    if (j > i) {
      std::string c = path.substr(i, j - i);
      if (c == "." || c == "..") return Errno::invalid;  // no relative links
      if (c.size() > 255) return Errno::name_too_long;
      comps.push_back(std::move(c));
    }
    i = j + 1;
  }
  return comps;
}

sim::CoTask<Result<Dirent>> DfsMount::lookup(const Dirent& dir, const std::string& name) {
  if (dir.type != FileType::directory) co_return Errno::not_dir;
  KvObject obj(client_, cont_, dir.oid);
  auto raw = co_await obj.get(name, kEntryAkey);
  if (!raw.ok()) co_return raw.error();
  co_return decode(*raw);
}

sim::CoTask<Result<Dirent>> DfsMount::resolve_parent(const std::vector<std::string>& comps) {
  Dirent cur = root_;
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    auto next = co_await lookup(cur, comps[i]);
    if (!next.ok()) co_return next.error();
    if (next->type != FileType::directory) co_return Errno::not_dir;
    cur = *next;
  }
  co_return cur;
}

sim::CoTask<Errno> DfsMount::insert_entry(const Dirent& dir, const std::string& name,
                                          const Dirent& entry, bool excl) {
  KvObject obj(client_, cont_, dir.oid);
  std::vector<std::byte> raw = encode(entry);
  co_return co_await obj.put(name, kEntryAkey, raw, excl);
}

sim::CoTask<Errno> DfsMount::remove_entry(const Dirent& dir, const std::string& name) {
  KvObject obj(client_, cont_, dir.oid);
  co_return co_await obj.punch_dkey(name);
}

sim::CoTask<Result<vos::ObjId>> DfsMount::alloc_oid(ObjClass oclass) {
  if (oid_next_ >= oid_limit_) {
    auto base = co_await client_.alloc_oids(cont_, kOidBatch);
    if (!base.ok()) co_return base.error();
    oid_next_ = *base;
    oid_limit_ = *base + kOidBatch;
  }
  co_return client::make_oid(oid_next_++, oclass);
}

// ---------------------------------------------------------------------------
// Namespace operations

sim::CoTask<Errno> DfsMount::mkdir(const std::string& path) {
  auto comps = split(path);
  if (!comps.ok()) co_return comps.error();
  if (comps->empty()) co_return Errno::exists;  // mkdir("/")
  auto parent = co_await resolve_parent(*comps);
  if (!parent.ok()) co_return parent.error();
  auto existing = co_await lookup(*parent, comps->back());
  if (existing.ok()) co_return Errno::exists;
  if (existing.error() != Errno::no_entry) co_return existing.error();
  auto oid = co_await alloc_oid(kDirObjClass);
  if (!oid.ok()) co_return oid.error();
  Dirent d{*oid, FileType::directory, 0, std::uint8_t(kDirObjClass), {}};
  // Conditional insert resolves concurrent mkdir() races server-side.
  co_return co_await insert_entry(*parent, comps->back(), d, /*excl=*/true);
}

sim::CoTask<Result<File>> DfsMount::open(const std::string& path, OpenFlags flags) {
  auto comps = split(path);
  if (!comps.ok()) co_return comps.error();
  if (comps->empty()) co_return Errno::is_dir;
  auto parent = co_await resolve_parent(*comps);
  if (!parent.ok()) co_return parent.error();

  auto existing = co_await lookup(*parent, comps->back());
  if (existing.ok()) {
    if (flags.create && flags.excl) co_return Errno::exists;
    if (existing->type == FileType::directory) co_return Errno::is_dir;
    if (existing->type == FileType::symlink) co_return Errno::invalid;  // no follow here
    const std::uint64_t chunk =
        existing->chunk_size ? existing->chunk_size : props_.chunk_size;
    auto arr = std::make_unique<ArrayObject>(client_, cont_, existing->oid, chunk);
    if (flags.truncate) {
      const Errno st = co_await arr->punch();
      if (st != Errno::ok) co_return st;
    }
    co_return File(std::move(arr));
  }
  if (existing.error() != Errno::no_entry) co_return existing.error();
  if (!flags.create) co_return Errno::no_entry;

  const ObjClass oclass =
      (flags.oclass >= 1 && flags.oclass <= 5) ? ObjClass(flags.oclass) : default_oclass_;
  const std::uint64_t chunk = flags.chunk_size ? flags.chunk_size : props_.chunk_size;
  auto oid = co_await alloc_oid(oclass);
  if (!oid.ok()) co_return oid.error();
  Dirent e{*oid, FileType::regular, chunk, std::uint8_t(oclass), {}};
  // Conditional insert: when ranks race to O_CREAT the same path (IOR's
  // shared-file mode), exactly one object wins; losers adopt it.
  const Errno ins = co_await insert_entry(*parent, comps->back(), e, /*excl=*/true);
  if (ins == Errno::exists) {
    if (flags.excl) co_return Errno::exists;
    auto winner = co_await lookup(*parent, comps->back());
    if (!winner.ok()) co_return winner.error();
    if (winner->type != FileType::regular) co_return Errno::is_dir;
    const std::uint64_t wchunk = winner->chunk_size ? winner->chunk_size : props_.chunk_size;
    co_return File(std::make_unique<ArrayObject>(client_, cont_, winner->oid, wchunk));
  }
  if (ins != Errno::ok) co_return ins;
  co_return File(std::make_unique<ArrayObject>(client_, cont_, *oid, chunk));
}

sim::CoTask<Result<Stat>> DfsMount::stat(const std::string& path) {
  auto comps = split(path);
  if (!comps.ok()) co_return comps.error();
  if (comps->empty()) co_return Stat{FileType::directory, 0, root_.oid};
  auto parent = co_await resolve_parent(*comps);
  if (!parent.ok()) co_return parent.error();
  auto e = co_await lookup(*parent, comps->back());
  if (!e.ok()) co_return e.error();
  Stat st{e->type, 0, e->oid};
  if (e->type == FileType::regular) {
    ArrayObject arr(client_, cont_, e->oid,
                    e->chunk_size ? e->chunk_size : props_.chunk_size);
    auto sz = co_await arr.size();
    if (!sz.ok()) co_return sz.error();
    st.size = *sz;
  } else if (e->type == FileType::symlink) {
    st.size = e->symlink_target.size();
  }
  co_return st;
}

sim::CoTask<Result<std::vector<std::string>>> DfsMount::readdir(const std::string& path) {
  auto comps = split(path);
  if (!comps.ok()) co_return comps.error();
  Dirent dir = root_;
  if (!comps->empty()) {
    auto parent = co_await resolve_parent(*comps);
    if (!parent.ok()) co_return parent.error();
    auto e = co_await lookup(*parent, comps->back());
    if (!e.ok()) co_return e.error();
    if (e->type != FileType::directory) co_return Errno::not_dir;
    dir = *e;
  }
  KvObject obj(client_, cont_, dir.oid);
  auto keys = co_await obj.list_dkeys();
  if (!keys.ok()) co_return keys.error();
  std::vector<std::string> names;
  for (auto& k : *keys) {
    if (k != kSuperblockDkey) names.push_back(std::move(k));
  }
  co_return names;
}

sim::CoTask<Errno> DfsMount::unlink(const std::string& path) {
  auto comps = split(path);
  if (!comps.ok()) co_return comps.error();
  if (comps->empty()) co_return Errno::is_dir;
  auto parent = co_await resolve_parent(*comps);
  if (!parent.ok()) co_return parent.error();
  auto e = co_await lookup(*parent, comps->back());
  if (!e.ok()) co_return e.error();
  if (e->type == FileType::directory) co_return Errno::is_dir;
  if (e->type == FileType::regular) {
    ArrayObject arr(client_, cont_, e->oid,
                    e->chunk_size ? e->chunk_size : props_.chunk_size);
    const Errno st = co_await arr.punch();
    if (st != Errno::ok) co_return st;
  }
  co_return co_await remove_entry(*parent, comps->back());
}

sim::CoTask<Errno> DfsMount::rmdir(const std::string& path) {
  auto comps = split(path);
  if (!comps.ok()) co_return comps.error();
  if (comps->empty()) co_return Errno::busy;  // cannot remove root
  auto parent = co_await resolve_parent(*comps);
  if (!parent.ok()) co_return parent.error();
  auto e = co_await lookup(*parent, comps->back());
  if (!e.ok()) co_return e.error();
  if (e->type != FileType::directory) co_return Errno::not_dir;
  KvObject obj(client_, cont_, e->oid);
  auto keys = co_await obj.list_dkeys();
  if (!keys.ok()) co_return keys.error();
  if (!keys->empty()) co_return Errno::not_empty;
  const Errno st = co_await obj.punch();
  if (st != Errno::ok) co_return st;
  co_return co_await remove_entry(*parent, comps->back());
}

sim::CoTask<Errno> DfsMount::rename(const std::string& from, const std::string& to) {
  auto fc = split(from);
  if (!fc.ok()) co_return fc.error();
  auto tc = split(to);
  if (!tc.ok()) co_return tc.error();
  if (fc->empty() || tc->empty()) co_return Errno::invalid;
  auto fparent = co_await resolve_parent(*fc);
  if (!fparent.ok()) co_return fparent.error();
  auto e = co_await lookup(*fparent, fc->back());
  if (!e.ok()) co_return e.error();
  auto tparent = co_await resolve_parent(*tc);
  if (!tparent.ok()) co_return tparent.error();
  auto dst = co_await lookup(*tparent, tc->back());
  if (dst.ok() && dst->type == FileType::directory) co_return Errno::is_dir;
  if (!dst.ok() && dst.error() != Errno::no_entry) co_return dst.error();
  const Errno ins = co_await insert_entry(*tparent, tc->back(), *e);
  if (ins != Errno::ok) co_return ins;
  co_return co_await remove_entry(*fparent, fc->back());
}

sim::CoTask<Errno> DfsMount::symlink(const std::string& target, const std::string& linkpath) {
  auto comps = split(linkpath);
  if (!comps.ok()) co_return comps.error();
  if (comps->empty()) co_return Errno::exists;
  auto parent = co_await resolve_parent(*comps);
  if (!parent.ok()) co_return parent.error();
  auto existing = co_await lookup(*parent, comps->back());
  if (existing.ok()) co_return Errno::exists;
  if (existing.error() != Errno::no_entry) co_return existing.error();
  Dirent e{vos::ObjId{}, FileType::symlink, 0, 0, target};
  e.oid = client::make_oid(0, client::ObjClass::S1);  // no backing object
  co_return co_await insert_entry(*parent, comps->back(), e, /*excl=*/true);
}

sim::CoTask<Result<std::string>> DfsMount::readlink(const std::string& path) {
  auto comps = split(path);
  if (!comps.ok()) co_return comps.error();
  if (comps->empty()) co_return Errno::invalid;
  auto parent = co_await resolve_parent(*comps);
  if (!parent.ok()) co_return parent.error();
  auto e = co_await lookup(*parent, comps->back());
  if (!e.ok()) co_return e.error();
  if (e->type != FileType::symlink) co_return Errno::invalid;
  co_return e->symlink_target;
}

sim::CoTask<Errno> DfsMount::truncate(const std::string& path) {
  auto comps = split(path);
  if (!comps.ok()) co_return comps.error();
  if (comps->empty()) co_return Errno::is_dir;
  auto parent = co_await resolve_parent(*comps);
  if (!parent.ok()) co_return parent.error();
  auto e = co_await lookup(*parent, comps->back());
  if (!e.ok()) co_return e.error();
  if (e->type != FileType::regular) co_return Errno::is_dir;
  ArrayObject arr(client_, cont_, e->oid, e->chunk_size ? e->chunk_size : props_.chunk_size);
  co_return co_await arr.punch();
}

// ---------------------------------------------------------------------------
// File

sim::CoTask<Errno> File::write(std::uint64_t offset, std::uint64_t length,
                               std::span<const std::byte> data) {
  return array_->write(offset, length, data);
}
sim::CoTask<Result<std::uint64_t>> File::read(std::uint64_t offset, std::span<std::byte> out) {
  return array_->read(offset, out);
}
sim::CoTask<Result<std::uint64_t>> File::size() { return array_->size(); }

}  // namespace daosim::dfs
