// DFS — the DAOS File System (libdfs equivalent).
//
// A POSIX-like namespace encoded in DAOS objects, as in the paper (§II):
// directories are KV objects mapping entry name -> serialized dirent
// (including the entry's object ID, mode, chunk size and object class);
// regular files are byte-array objects chunked across shards. The DFS API is
// what IOR's "DFS backend" drives directly; DFuse (src/posix) re-exports it
// through a POSIX mount.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "client/client.hpp"

namespace daosim::dfs {

enum class FileType : std::uint8_t { directory = 1, regular = 2, symlink = 3 };

struct Dirent {
  vos::ObjId oid;
  FileType type = FileType::regular;
  std::uint64_t chunk_size = 0;  // 0 = container default
  std::uint8_t oclass = 0;       // client::ObjClass value; 0 = default
  std::string symlink_target;    // symlinks only
};

struct Stat {
  FileType type = FileType::regular;
  std::uint64_t size = 0;
  vos::ObjId oid;
};

/// An open regular file.
class File {
 public:
  sim::CoTask<Errno> write(std::uint64_t offset, std::uint64_t length,
                           std::span<const std::byte> data);
  sim::CoTask<Result<std::uint64_t>> read(std::uint64_t offset, std::span<std::byte> out);
  sim::CoTask<Result<std::uint64_t>> size();
  vos::ObjId oid() const { return array_->oid(); }
  std::uint64_t chunk_size() const { return array_->chunk_size(); }

 private:
  friend class DfsMount;
  explicit File(std::unique_ptr<client::ArrayObject> array) : array_(std::move(array)) {}
  std::unique_ptr<client::ArrayObject> array_;
};

/// Options for create/open.
struct OpenFlags {
  bool create = false;
  bool excl = false;            // with create: fail if it exists
  bool truncate = false;
  std::uint64_t chunk_size = 0; // 0 = container default
  std::uint8_t oclass = 0;      // 0 = container default
};

/// A mounted DFS container. All paths are absolute ("/a/b/c").
class DfsMount {
 public:
  /// Mounts `cont` (creating the superblock and root directory on first
  /// mount). The container must already exist in the pool service.
  static sim::CoTask<Result<std::unique_ptr<DfsMount>>> mount(client::DaosClient& client,
                                                              vos::Uuid cont);

  // --- namespace operations ---
  sim::CoTask<Errno> mkdir(const std::string& path);
  sim::CoTask<Result<File>> open(const std::string& path, OpenFlags flags);
  sim::CoTask<Result<Stat>> stat(const std::string& path);
  sim::CoTask<Result<std::vector<std::string>>> readdir(const std::string& path);
  sim::CoTask<Errno> unlink(const std::string& path);
  sim::CoTask<Errno> rmdir(const std::string& path);
  sim::CoTask<Errno> rename(const std::string& from, const std::string& to);
  sim::CoTask<Errno> symlink(const std::string& target, const std::string& linkpath);
  sim::CoTask<Result<std::string>> readlink(const std::string& path);
  sim::CoTask<Errno> truncate(const std::string& path);  // to zero (punch)

  client::DaosClient& client() { return client_; }
  vos::Uuid container() const { return cont_; }
  std::uint64_t default_chunk_size() const { return props_.chunk_size; }
  client::ObjClass default_oclass() const { return default_oclass_; }

 private:
  DfsMount(client::DaosClient& client, vos::Uuid cont, pool::ContProps props);

  /// Splits "/a/b/c" into components; Errno::invalid for malformed paths.
  static Result<std::vector<std::string>> split(const std::string& path);
  /// Resolves the directory holding the path's final component.
  sim::CoTask<Result<Dirent>> resolve_parent(const std::vector<std::string>& comps);
  /// Looks up one entry in directory `dir`.
  sim::CoTask<Result<Dirent>> lookup(const Dirent& dir, const std::string& name);
  sim::CoTask<Errno> insert_entry(const Dirent& dir, const std::string& name,
                                  const Dirent& entry, bool excl = false);
  sim::CoTask<Errno> remove_entry(const Dirent& dir, const std::string& name);
  sim::CoTask<Result<vos::ObjId>> alloc_oid(client::ObjClass oclass);

  static std::vector<std::byte> encode(const Dirent& e);
  static Dirent decode(std::span<const std::byte> raw);

  client::DaosClient& client_;
  vos::Uuid cont_;
  pool::ContProps props_;
  client::ObjClass default_oclass_ = client::ObjClass::SX;
  Dirent root_;
  // OID allocation batch (DAOS clients lease ranges from the container svc).
  std::uint64_t oid_next_ = 0;
  std::uint64_t oid_limit_ = 0;
};

/// Directory objects use this class (entries hashed across a few shards).
constexpr client::ObjClass kDirObjClass = client::ObjClass::S4;
/// The akey under which a dirent value is stored.
inline const vos::Key kEntryAkey = "entry";

}  // namespace daosim::dfs
