// Pool-map refresh paths: the full point query against the pool-service
// leader (refresh_pool_map) and the IV fast path (refresh_to_version) that
// pulls version deltas from whichever engine's stamped reply revealed the
// staleness. This file is the only client module allowed to issue the raw
// leader map query — the direct-map-query lint rule keeps every other
// src/client/ file off the leader, so map dissemination load stays O(1) in
// client count (see docs/membership.md).
#include <set>
#include <sstream>

#include "client/client.hpp"

namespace daosim::client {

namespace {
constexpr std::uint64_t kMapMsgBytes = 128;

// Trace-digest tags (continuing the 0xFA17E0xx client block in client.cpp).
constexpr std::uint64_t kTraceMapRefresh = 0xFA17E002'0000'0000ULL;
constexpr std::uint64_t kTraceStaleness = 0xFA17E014'0000'0000ULL;
constexpr std::uint64_t kTraceDeltaApply = 0xFA17E015'0000'0000ULL;
}  // namespace

sim::CoTask<Result<void>> DaosClient::refresh_pool_map() {
  ++map_refreshes_;
  ++map_full_fetches_;
  auto res = co_await svc_command("map_query");
  if (!res.ok()) co_return res.error();
  std::istringstream is(*res);
  std::string status;
  std::uint32_t version = 0;
  std::size_t count = 0;
  is >> status >> version >> count;
  if (status != "ok") co_return Errno::io;
  std::set<net::NodeId> excluded;
  for (std::size_t i = 0; i < count; ++i) {
    net::NodeId e = 0;
    is >> e;
    excluded.insert(e);
  }
  if (version <= map_.version) co_return Result<void>{};
  map_.version = version;
  for (auto& t : map_.targets) {
    if (excluded.contains(t.engine)) {
      t.health = pool::TargetHealth::excluded;
    } else if (t.health == pool::TargetHealth::excluded) {
      t.health = pool::TargetHealth::up;  // reintegrated
    }
  }
  sched_.trace_note(kTraceMapRefresh ^ version);
  co_return Result<void>{};
}

void DaosClient::apply_map_deltas(std::uint32_t latest,
                                  const std::vector<engine::MapDeltaEntry>& deltas) {
  for (const auto& d : deltas) {
    if (d.version <= map_.version) continue;  // already reflected locally
    for (auto& t : map_.targets) {
      if (t.engine != d.engine) continue;
      t.health = d.excluded ? pool::TargetHealth::excluded : pool::TargetHealth::up;
    }
  }
  map_.version = latest;
  sched_.trace_note(kTraceDeltaApply ^ latest);
}

sim::CoTask<void> DaosClient::refresh_to_version(std::uint32_t version, net::NodeId source) {
  if (refresh_gate_ != nullptr) {
    auto gate = refresh_gate_;  // keep the Event alive across the wait
    co_await gate->wait();
    co_return;
  }
  if (version <= map_.version) co_return;
  auto gate = std::make_shared<sim::Event>(sched_);
  refresh_gate_ = gate;
  sched_.trace_note(kTraceStaleness ^ version);
  // Delta fetch from the engine whose stamped reply revealed the staleness:
  // any engine serves kOpMapFetch from its local delta log, so this never
  // touches the pool-service leader.
  engine::MapFetchReq req{map_.version};
  net::Body body = net::Body::make(std::move(req));
  net::Reply r = co_await call_with_deadline(source, engine::kOpMapFetch, std::move(body),
                                             kMapMsgBytes, retry_.deadline);
  bool applied = false;
  if (r.status == Errno::ok && r.body.has_value()) {
    const auto& resp = r.body.get<engine::MapFetchResp>();
    if (resp.latest_version > map_.version) {
      ++map_delta_fetches_;
      apply_map_deltas(resp.latest_version, resp.deltas);
      applied = true;
    }
  }
  if (!applied) {
    // The engine couldn't serve deltas (SWIM off, crashed mid-fetch, or its
    // own log hadn't caught up) — fall back to the authoritative point query.
    (void)co_await refresh_pool_map();  // daosim-lint: allow(ignored-result): best-effort; targets stay DOWN and the next staleness trigger retries
  }
  refresh_gate_.reset();
  gate->set();
}

}  // namespace daosim::client
