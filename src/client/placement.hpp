// Client-side algorithmic placement: object shard -> pool target, computed
// from the object ID and the pool map alone (no per-I/O metadata service
// traffic — DAOS's key scalability property).
//
// Shard 0 lands on a pseudo-random target (jump consistent hash); the
// remaining shards walk the target ring with an odd, object-specific stride,
// giving every multi-shard object a collision-free layout (a permutation of
// targets) while different objects start at independent positions —
// reproducing the balls-into-bins behaviour that differentiates S1/S2/SX in
// the paper's figures.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "pool/pool_map.hpp"
#include "vos/types.hpp"

namespace daosim::client {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Lamping & Veach jump consistent hash: key -> bucket in [0, buckets).
constexpr std::uint32_t jump_consistent_hash(std::uint64_t key, std::uint32_t buckets) {
  std::int64_t b = -1, j = 0;
  while (j < std::int64_t(buckets)) {
    b = j;
    key = key * 2862933555777941757ULL + 1;
    j = std::int64_t(double(b + 1) * (double(1LL << 31) / double((key >> 33) + 1)));
  }
  return std::uint32_t(b);
}

/// The per-object target ring: position i of the object's permutation of the
/// pool's targets. Shards occupy positions [0, shards); positions beyond
/// supply deterministic substitutes when a placed target is excluded.
struct PlacementRing {
  std::uint32_t start = 0;
  std::uint32_t stride = 1;
  std::uint32_t pool_targets = 1;

  PlacementRing(vos::ObjId oid, std::uint32_t targets) : pool_targets(targets) {
    const std::uint64_t h = mix64(oid.hi ^ mix64(oid.lo));
    start = jump_consistent_hash(h, pool_targets);
    // Odd ring stride co-prime with the target count -> a permutation.
    stride = 1 + 2 * std::uint32_t(mix64(h) % std::max(1u, pool_targets / 2));
    while (std::gcd(stride, pool_targets) != 1) stride += 2;
  }

  std::uint32_t at(std::uint32_t position) const {
    return std::uint32_t((start + std::uint64_t(position) * stride) % pool_targets);
  }
};

/// Per-object shard layout: layout[s] is the pool-map target index of shard s.
inline std::vector<std::uint32_t> compute_layout(vos::ObjId oid, std::uint32_t shards,
                                                 std::uint32_t pool_targets) {
  DAOSIM_REQUIRE(shards >= 1 && shards <= pool_targets, "bad shard count %u (pool %u)", shards,
                 pool_targets);
  const PlacementRing ring(oid, pool_targets);
  std::vector<std::uint32_t> layout(shards);
  for (std::uint32_t s = 0; s < shards; ++s) layout[s] = ring.at(s);
  return layout;
}

/// Health-aware layout: identical to the plain overload while every target is
/// healthy, so existing placements are undisturbed. A shard whose target is
/// EXCLUDED walks forward along the object's ring (from its own position) to
/// the first non-excluded target — deterministic, map-version-driven, and
/// local to the affected shards, mirroring how DAOS rebuilds layouts against
/// a newer pool map.
inline std::vector<std::uint32_t> compute_layout(vos::ObjId oid, std::uint32_t shards,
                                                 const pool::PoolMap& map) {
  const std::uint32_t n = map.target_count();
  DAOSIM_REQUIRE(shards >= 1 && shards <= n, "bad shard count %u (pool %u)", shards, n);
  const PlacementRing ring(oid, n);
  std::vector<std::uint32_t> layout(shards);
  const auto excluded = [&map](std::uint32_t t) {
    return map.targets[t].health == pool::TargetHealth::excluded;
  };
  for (std::uint32_t s = 0; s < shards; ++s) {
    std::uint32_t pick = ring.at(s);
    for (std::uint32_t step = 1; excluded(pick) && step < n; ++step) {
      pick = ring.at(s + step);
    }
    layout[s] = pick;  // every target excluded: keep the original placement
  }
  return layout;
}

/// Distribution-key hash -> shard index (DAOS hashes the dkey to pick the
/// shard; array chunk indices are dkeys).
inline std::uint32_t dkey_to_shard(std::uint64_t dkey_hash, std::uint32_t shards) {
  return std::uint32_t(mix64(dkey_hash) % shards);
}

/// Redundancy-group routing, shared between the client object handles and the
/// rebuild scanner (both must agree on which group owns a dkey). Array chunk
/// indices mix in oid.lo; KV dkeys hash the key string.
inline std::uint32_t array_chunk_group(vos::ObjId oid, std::uint64_t chunk_idx,
                                       std::uint32_t groups) {
  return dkey_to_shard(chunk_idx ^ mix64(oid.lo), groups);
}
inline std::uint32_t kv_dkey_group(const vos::Key& dkey, std::uint32_t groups) {
  return dkey_to_shard(std::hash<std::string>{}(dkey), groups);
}

/// Layout of a replicated object: `groups` redundancy groups of `replicas`
/// targets each, group-major (`targets[g*replicas + r]`). Replicas of one
/// group never share an engine (the failure domain), so losing an engine
/// costs at most one replica per group.
struct GroupLayout {
  std::uint32_t replicas = 1;
  std::vector<std::uint32_t> targets;  // group-major

  std::uint32_t groups() const {
    return replicas == 0 ? 0 : std::uint32_t(targets.size()) / replicas;
  }
  std::uint32_t at(std::uint32_t group, std::uint32_t replica) const {
    return targets[std::size_t(group) * replicas + replica];
  }
  std::size_t size() const { return targets.size(); }
};

/// Nominal group layout, ignoring health: where replicas live on an intact
/// pool. Slot (g, r) starts at ring position g*R+r and walks forward past
/// targets whose engine already hosts an earlier replica of the same group
/// (replicas never share a failure domain). With replicas == 1 there is no
/// constraint to walk past, so S-class placements are byte-identical to the
/// classic compute_layout. Degraded reads and the rebuild scanner diff this
/// against the health-aware layout to find lost replicas.
inline GroupLayout compute_nominal_layout(vos::ObjId oid, std::uint32_t groups,
                                          std::uint32_t replicas, const pool::PoolMap& map) {
  const std::uint32_t n = map.target_count();
  DAOSIM_REQUIRE(groups >= 1 && replicas >= 1 && groups * replicas <= n,
                 "bad group layout %ux%u (pool %u)", groups, replicas, n);
  const PlacementRing ring(oid, n);
  GroupLayout out;
  out.replicas = replicas;
  out.targets.resize(std::size_t(groups) * replicas);
  for (std::uint32_t g = 0; g < groups; ++g) {
    std::vector<net::NodeId> used;  // engines already hosting a replica of g
    for (std::uint32_t r = 0; r < replicas; ++r) {
      const std::uint32_t pos = g * replicas + r;
      const auto engine_used = [&](std::uint32_t t) {
        const net::NodeId e = map.targets[t].engine;
        return std::find(used.begin(), used.end(), e) != used.end();
      };
      std::uint32_t pick = ring.at(pos);
      for (std::uint32_t step = 1; engine_used(pick) && step < n; ++step) {
        pick = ring.at(pos + step);
      }
      if (engine_used(pick)) pick = ring.at(pos);  // single-engine pool: give up
      out.targets[std::size_t(g) * replicas + r] = pick;
      used.push_back(map.targets[pick].engine);
    }
  }
  return out;
}

/// Health-aware group layout: replicas on healthy targets keep their nominal
/// placement (they never move); a replica whose nominal target is EXCLUDED
/// walks forward along the ring to the first non-excluded substitute on an
/// engine distinct from the group's surviving replicas and earlier
/// substitutes. With replicas == 1 this degenerates to the classic
/// health-aware compute_layout walk.
inline GroupLayout compute_group_layout(vos::ObjId oid, std::uint32_t groups,
                                        std::uint32_t replicas, const pool::PoolMap& map) {
  GroupLayout out = compute_nominal_layout(oid, groups, replicas, map);
  const std::uint32_t n = map.target_count();
  const PlacementRing ring(oid, n);
  const auto excluded = [&map](std::uint32_t t) {
    return map.targets[t].health == pool::TargetHealth::excluded;
  };
  for (std::uint32_t g = 0; g < groups; ++g) {
    std::vector<net::NodeId> used;  // engines of the group's surviving replicas
    for (std::uint32_t r = 0; r < replicas; ++r) {
      const std::uint32_t t = out.at(g, r);
      if (!excluded(t)) used.push_back(map.targets[t].engine);
    }
    for (std::uint32_t r = 0; r < replicas; ++r) {
      const std::uint32_t pos = g * replicas + r;
      if (!excluded(out.at(g, r))) continue;  // healthy replicas never move
      const auto engine_used = [&](std::uint32_t t) {
        const net::NodeId e = map.targets[t].engine;
        return std::find(used.begin(), used.end(), e) != used.end();
      };
      std::uint32_t pick = ring.at(pos);
      for (std::uint32_t step = 1; (excluded(pick) || engine_used(pick)) && step < n; ++step) {
        pick = ring.at(pos + step);
      }
      // Walk exhausted (tiny or mostly-excluded pools): relax the distinct-
      // engine constraint, keeping the nominal placement as the last resort.
      if (excluded(pick) || engine_used(pick)) {
        pick = ring.at(pos);
        for (std::uint32_t step = 1; excluded(pick) && step < n; ++step) {
          pick = ring.at(pos + step);
        }
      }
      out.targets[std::size_t(g) * replicas + r] = pick;
      used.push_back(map.targets[pick].engine);
    }
  }
  return out;
}

}  // namespace daosim::client
