// Object classes: how many shards (targets) an object is striped over.
// Mirrors DAOS's S1/S2/S4/S8/SX classes from the paper ("objects ... S1
// through to SX ... distributed across DAOS engines in a similar manner to
// Lustre file striping"), plus the replicated RP_* classes (2 replicas per
// redundancy group; docs.daos.io self-healing design). The class is encoded
// in the object ID's high bits, exactly like daos_obj_generate_oid does.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/error.hpp"
#include "vos/types.hpp"

namespace daosim::client {

enum class ObjClass : std::uint8_t {
  S1 = 1,  // single shard
  S2 = 2,
  S4 = 3,
  S8 = 4,
  SX = 5,      // one shard per pool target (full striping)
  RP_2G1 = 6,  // 2 replicas x 1 redundancy group
  RP_2G2 = 7,  // 2 replicas x 2 redundancy groups
  RP_2GX = 8,  // 2 replicas x max groups (half the pool's targets)
};

inline const char* to_string(ObjClass c) {
  switch (c) {
    case ObjClass::S1: return "S1";
    case ObjClass::S2: return "S2";
    case ObjClass::S4: return "S4";
    case ObjClass::S8: return "S8";
    case ObjClass::SX: return "SX";
    case ObjClass::RP_2G1: return "RP_2G1";
    case ObjClass::RP_2G2: return "RP_2G2";
    case ObjClass::RP_2GX: return "RP_2GX";
  }
  return "S?";
}

/// Replicas per redundancy group: 1 for the striped S classes.
inline std::uint32_t replica_count(ObjClass c) {
  switch (c) {
    case ObjClass::RP_2G1:
    case ObjClass::RP_2G2:
    case ObjClass::RP_2GX: return 2;
    default: return 1;
  }
}

/// Redundancy groups (the unit dkeys hash over). For the S classes this is
/// the shard count; RP classes bound groups so groups * replicas fits the
/// pool.
inline std::uint32_t group_count(ObjClass c, std::uint32_t pool_targets) {
  DAOSIM_REQUIRE(pool_targets > 0, "empty pool");
  switch (c) {
    case ObjClass::S1: return 1;
    case ObjClass::S2: return std::min(2u, pool_targets);
    case ObjClass::S4: return std::min(4u, pool_targets);
    case ObjClass::S8: return std::min(8u, pool_targets);
    case ObjClass::SX: return pool_targets;
    case ObjClass::RP_2G1: return 1;
    case ObjClass::RP_2G2: return std::min(2u, std::max(1u, pool_targets / 2));
    case ObjClass::RP_2GX: return std::max(1u, pool_targets / 2);
  }
  return 1;
}

/// Total layout slots (groups x replicas).
inline std::uint32_t shard_count(ObjClass c, std::uint32_t pool_targets) {
  return group_count(c, pool_targets) * replica_count(c);
}

/// Packs the class into oid.hi's top byte (sequence below), like DAOS.
inline vos::ObjId make_oid(std::uint64_t seq, ObjClass c) {
  return vos::ObjId{std::uint64_t(c) << 56, seq};
}

inline ObjClass class_of(vos::ObjId oid) {
  const auto c = std::uint8_t(oid.hi >> 56);
  DAOSIM_REQUIRE(c >= 1 && c <= 8, "oid %llx has no valid object class",
                 static_cast<unsigned long long>(oid.hi));
  return ObjClass(c);
}

}  // namespace daosim::client
