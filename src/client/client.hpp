// libdaos equivalent: the client-side API the paper's interface stack builds
// on. A DaosClient lives on one client node; it talks to the pool service
// (container metadata, OID allocation) and directly to engines for object
// I/O, placing shards algorithmically from the pool map.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "client/object_class.hpp"
#include "client/placement.hpp"
#include "engine/proto.hpp"
#include "net/rpc.hpp"
#include "pool/pool_map.hpp"
#include "sim/sync.hpp"

namespace daosim::client {

/// Bounded asynchronous operation queue (the daos_event/EQ model): launch
/// operations without blocking, then await completion of all of them.
class EventQueue {
 public:
  /// @param max_inflight 0 = unbounded
  EventQueue(sim::Scheduler& s, std::size_t max_inflight = 0)
      : sched_(s), wg_(s), slots_(max_inflight > 0
                                      ? std::make_unique<sim::Semaphore>(s, max_inflight)
                                      : nullptr) {}

  /// Launches `op`; suspends only while the queue is at max_inflight.
  sim::CoTask<void> launch(sim::CoTask<void> op) {
    if (slots_ != nullptr) co_await slots_->acquire();
    // Hoisted into a named local: GCC 12 miscompiles coroutine temporaries
    // passed directly into another coroutine's by-value parameter.
    sim::CoTask<void> wrapped = run(std::move(op));
    wg_.spawn(std::move(wrapped));
  }

  /// Callable overload keeping the closure alive (see Scheduler::spawn).
  template <typename F>
    requires requires(F f) {
      { f() } -> std::same_as<sim::CoTask<void>>;
    }
  sim::CoTask<void> launch(F f) {
    return launch(invoke_holding(std::move(f)));
  }

  /// Completes when every launched operation has finished.
  auto wait_all() { return wg_.wait(); }
  std::size_t inflight() const { return wg_.pending(); }

 private:
  template <typename F>
  static sim::CoTask<void> invoke_holding(F f) {
    co_await f();
  }

  sim::CoTask<void> run(sim::CoTask<void> op) {
    co_await std::move(op);
    if (slots_ != nullptr) slots_->release();
  }
  sim::Scheduler& sched_;
  sim::WaitGroup wg_;
  std::unique_ptr<sim::Semaphore> slots_;
};

struct ContInfo {
  vos::Uuid uuid;
  pool::ContProps props;
};

class DaosClient {
 public:
  /// @param node          this client's fabric node
  /// @param map           the pool map obtained at pool connect
  /// @param svc_replicas  engines hosting the pool service (Raft group)
  DaosClient(net::RpcDomain& domain, net::NodeId node, pool::PoolMap map,
             std::vector<net::NodeId> svc_replicas);

  net::RpcEndpoint& endpoint() { return ep_; }
  sim::Scheduler& scheduler() { return sched_; }
  const pool::PoolMap& pool_map() const { return map_; }

  // --- pool service operations ---
  sim::CoTask<Result<ContInfo>> cont_create(vos::Uuid uuid, pool::ContProps props);
  sim::CoTask<Result<ContInfo>> cont_open(vos::Uuid uuid);
  sim::CoTask<Result<void>> cont_destroy(vos::Uuid uuid);
  /// Allocates a contiguous range of object sequence numbers; returns base.
  sim::CoTask<Result<std::uint64_t>> alloc_oids(vos::Uuid cont, std::uint64_t count);

  // --- raw object RPC (used by the handles and by DFS) ---
  sim::CoTask<net::Reply> call_target(std::uint32_t map_target, std::uint16_t opcode,
                                      net::Body body, std::uint64_t wire_bytes);

  std::uint64_t rpcs_sent() const { return ep_.calls_made(); }

 private:
  sim::CoTask<Result<std::string>> svc_command(std::string cmd);

  net::RpcEndpoint ep_;
  sim::Scheduler& sched_;
  pool::PoolMap map_;
  std::vector<net::NodeId> svc_replicas_;
  std::optional<net::NodeId> cached_leader_;
};

/// KV-style object handle (DAOS "multi-level KV" API): dkey -> akey -> value.
class KvObject {
 public:
  KvObject(DaosClient& client, vos::Uuid cont, vos::ObjId oid);

  /// With `excl`, fails with Errno::exists when the dkey already holds a
  /// visible record (DAOS conditional insert).
  sim::CoTask<Errno> put(const vos::Key& dkey, const vos::Key& akey,
                         std::span<const std::byte> value, bool excl = false);
  sim::CoTask<Result<std::vector<std::byte>>> get(const vos::Key& dkey, const vos::Key& akey);
  sim::CoTask<Result<std::vector<vos::Key>>> list_dkeys();
  sim::CoTask<Errno> punch();
  sim::CoTask<Errno> punch_dkey(const vos::Key& dkey);

  vos::ObjId oid() const { return oid_; }

 private:
  std::uint32_t shard_of(const vos::Key& dkey) const;

  DaosClient& client_;
  vos::Uuid cont_;
  vos::ObjId oid_;
  std::vector<std::uint32_t> layout_;
};

/// Byte-array object handle (the DAOS array API): a flat address space
/// chunked into dkeys and striped over the object's shards.
class ArrayObject {
 public:
  ArrayObject(DaosClient& client, vos::Uuid cont, vos::ObjId oid, std::uint64_t chunk_size);

  /// Writes `length` logical bytes at `offset`. `data` must be either
  /// length bytes or empty (metadata-only mode for large benchmarks).
  sim::CoTask<Errno> write(std::uint64_t offset, std::uint64_t length,
                           std::span<const std::byte> data);
  /// Reads into `out`; returns bytes overlapping written data.
  sim::CoTask<Result<std::uint64_t>> read(std::uint64_t offset, std::span<std::byte> out);
  /// Array size = high-water mark of all completed writes.
  sim::CoTask<Result<std::uint64_t>> size();
  sim::CoTask<Errno> punch();

  vos::ObjId oid() const { return oid_; }
  std::uint64_t chunk_size() const { return chunk_; }
  std::uint32_t shard_count() const { return std::uint32_t(layout_.size()); }

 private:
  std::uint32_t shard_of_chunk(std::uint64_t chunk_idx) const {
    return dkey_to_shard(chunk_idx ^ mix64(oid_.lo), std::uint32_t(layout_.size()));
  }

  // Per-piece coroutines (explicit parameters; see CP.51 note in scheduler.hpp).
  sim::CoTask<void> update_piece(std::uint32_t map_target, engine::ObjUpdateReq req,
                                 std::uint64_t wire, std::shared_ptr<Errno> status);
  sim::CoTask<void> fetch_piece(std::uint32_t map_target, engine::ObjFetchReq req,
                                std::span<std::byte> dst, std::shared_ptr<Errno> status,
                                std::shared_ptr<std::uint64_t> filled);
  sim::CoTask<void> query_piece(std::uint32_t map_target, engine::ObjQueryReq req,
                                std::shared_ptr<Errno> status,
                                std::shared_ptr<std::uint64_t> max_end);

  DaosClient& client_;
  vos::Uuid cont_;
  vos::ObjId oid_;
  std::uint64_t chunk_;
  std::vector<std::uint32_t> layout_;
};

}  // namespace daosim::client
